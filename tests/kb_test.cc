#include <gtest/gtest.h>

#include <algorithm>

#include "kb/domain_taxonomy.h"
#include "kb/knowledge_base.h"
#include "kb/synthetic_kb.h"

namespace docs::kb {
namespace {

TEST(DomainTaxonomyTest, Has26YahooDomains) {
  auto taxonomy = DomainTaxonomy::YahooAnswers26();
  EXPECT_EQ(taxonomy.size(), 26u);
}

TEST(DomainTaxonomyTest, IndexOfKnownDomains) {
  auto taxonomy = DomainTaxonomy::YahooAnswers26();
  for (const char* name :
       {"Sports", "Food", "Cars", "Travel", "Entertain", "Science",
        "Business", "Politics"}) {
    auto index = taxonomy.IndexOf(name);
    ASSERT_TRUE(index.ok()) << name;
    EXPECT_EQ(taxonomy.name(index.value()), name);
  }
}

TEST(DomainTaxonomyTest, IndexOfUnknownFails) {
  auto taxonomy = DomainTaxonomy::YahooAnswers26();
  EXPECT_FALSE(taxonomy.IndexOf("Quidditch").ok());
}

TEST(DomainTaxonomyTest, CategoriesMapToDomains) {
  auto taxonomy = DomainTaxonomy::FromNames({"A", "B"});
  ASSERT_TRUE(taxonomy.AddCategory("/x/a", 0).ok());
  ASSERT_TRUE(taxonomy.AddCategory("/x/b", 1).ok());
  EXPECT_EQ(taxonomy.DomainOfCategory("/x/a").value(), 0u);
  EXPECT_EQ(taxonomy.DomainOfCategory("/x/b").value(), 1u);
  EXPECT_FALSE(taxonomy.DomainOfCategory("/x/c").ok());
}

TEST(DomainTaxonomyTest, DuplicateCategoryRejected) {
  auto taxonomy = DomainTaxonomy::FromNames({"A"});
  ASSERT_TRUE(taxonomy.AddCategory("/x/a", 0).ok());
  EXPECT_FALSE(taxonomy.AddCategory("/x/a", 0).ok());
}

TEST(DomainTaxonomyTest, OutOfRangeDomainRejected) {
  auto taxonomy = DomainTaxonomy::FromNames({"A"});
  EXPECT_FALSE(taxonomy.AddCategory("/x/a", 5).ok());
}

TEST(KnowledgeBaseTest, AddConceptValidatesArity) {
  KnowledgeBase kb(DomainTaxonomy::FromNames({"A", "B"}));
  Concept bad;
  bad.title = "X";
  bad.domain_indicator = {1};  // wrong size
  EXPECT_FALSE(kb.AddConcept(bad).ok());
}

TEST(KnowledgeBaseTest, AddConceptValidatesPopularity) {
  KnowledgeBase kb(DomainTaxonomy::FromNames({"A"}));
  Concept bad;
  bad.title = "X";
  bad.domain_indicator = {1};
  bad.popularity = 0.0;
  EXPECT_FALSE(kb.AddConcept(bad).ok());
}

TEST(KnowledgeBaseTest, AliasLookupIsCaseAndPunctuationInsensitive) {
  KnowledgeBase kb(DomainTaxonomy::FromNames({"A"}));
  Concept c;
  c.title = "Shaquille Oneal";
  c.domain_indicator = {1};
  auto id = kb.AddConcept(c);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(kb.AddAlias("Shaquille O'Neal", id.value()).ok());
  EXPECT_TRUE(kb.HasAlias("shaquille o neal"));
  EXPECT_TRUE(kb.HasAlias("SHAQUILLE O'NEAL"));
  ASSERT_EQ(kb.LookupAlias("shaquille o'neal").size(), 1u);
}

TEST(KnowledgeBaseTest, AliasIsIdempotentPerConcept) {
  KnowledgeBase kb(DomainTaxonomy::FromNames({"A"}));
  Concept c;
  c.title = "X";
  c.domain_indicator = {1};
  auto id = kb.AddConcept(c);
  ASSERT_TRUE(kb.AddAlias("x", id.value()).ok());
  ASSERT_TRUE(kb.AddAlias("x", id.value()).ok());
  EXPECT_EQ(kb.LookupAlias("x").size(), 1u);
}

TEST(KnowledgeBaseTest, AmbiguousAliasReturnsAllCandidates) {
  KnowledgeBase kb(DomainTaxonomy::FromNames({"A", "B"}));
  Concept a, b;
  a.title = "Alpha";
  a.domain_indicator = {1, 0};
  b.title = "Beta";
  b.domain_indicator = {0, 1};
  auto ida = kb.AddConcept(a);
  auto idb = kb.AddConcept(b);
  ASSERT_TRUE(kb.AddAlias("shared", ida.value()).ok());
  ASSERT_TRUE(kb.AddAlias("shared", idb.value()).ok());
  EXPECT_EQ(kb.LookupAlias("shared").size(), 2u);
}

TEST(KnowledgeBaseTest, AliasToUnknownConceptRejected) {
  KnowledgeBase kb(DomainTaxonomy::FromNames({"A"}));
  EXPECT_FALSE(kb.AddAlias("ghost", 7).ok());
}

TEST(KnowledgeBaseTest, IndicatorFromCategories) {
  auto taxonomy = DomainTaxonomy::FromNames({"A", "B", "C"});
  ASSERT_TRUE(taxonomy.AddCategory("/cat/a", 0).ok());
  ASSERT_TRUE(taxonomy.AddCategory("/cat/c", 2).ok());
  KnowledgeBase kb(std::move(taxonomy));
  auto indicator = kb.IndicatorFromCategories({"/cat/a", "/cat/c", "/unknown"});
  EXPECT_EQ(indicator, (std::vector<uint8_t>{1, 0, 1}));
}

TEST(KnowledgeBaseTest, MaxAliasWordsTracksLongest) {
  KnowledgeBase kb(DomainTaxonomy::FromNames({"A"}));
  Concept c;
  c.title = "X";
  c.domain_indicator = {1};
  auto id = kb.AddConcept(c);
  ASSERT_TRUE(kb.AddAlias("one two three four", id.value()).ok());
  EXPECT_EQ(kb.max_alias_words(), 4u);
}

// --- Synthetic KB -----------------------------------------------------------

class SyntheticKbTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { kb_ = new SyntheticKb(BuildSyntheticKb()); }
  static void TearDownTestSuite() {
    delete kb_;
    kb_ = nullptr;
  }
  static SyntheticKb* kb_;
};

SyntheticKb* SyntheticKbTest::kb_ = nullptr;

TEST_F(SyntheticKbTest, HasThousandsOfConcepts) {
  EXPECT_GT(kb_->knowledge_base.num_concepts(), 1500u);
}

TEST_F(SyntheticKbTest, MichaelJordanIsAmbiguous) {
  const auto& candidates = kb_->knowledge_base.LookupAlias("Michael Jordan");
  // Player + computer scientist + actor + fanout distractors.
  ASSERT_GE(candidates.size(), 3u);
  bool has_player = false, has_scientist = false, has_actor = false;
  for (const auto& entry : candidates) {
    const auto& title = kb_->knowledge_base.GetConcept(entry.id).title;
    has_player |= (title == "Michael Jordan");
    has_scientist |= (title == "Michael I Jordan");
    has_actor |= (title == "Michael B Jordan");
  }
  EXPECT_TRUE(has_player);
  EXPECT_TRUE(has_scientist);
  EXPECT_TRUE(has_actor);
}

TEST_F(SyntheticKbTest, NbaAliasCoversBothAssociations) {
  const auto& candidates = kb_->knowledge_base.LookupAlias("NBA");
  bool has_basketball = false, has_bar = false;
  for (const auto& entry : candidates) {
    const auto& title = kb_->knowledge_base.GetConcept(entry.id).title;
    has_basketball |= (title == "National Basketball Association");
    has_bar |= (title == "National Bar Association");
  }
  EXPECT_TRUE(has_basketball);
  EXPECT_TRUE(has_bar);
}

TEST_F(SyntheticKbTest, PlayerMichaelJordanSpansSportsAndEntertain) {
  const auto& taxonomy = kb_->knowledge_base.taxonomy();
  const auto canon = CanonicalDomains::Resolve(taxonomy);
  for (ConceptId id = 0; id < kb_->knowledge_base.num_concepts(); ++id) {
    const auto& c = kb_->knowledge_base.GetConcept(id);
    if (c.title == "Michael Jordan") {
      EXPECT_EQ(c.domain_indicator[canon.sports], 1);
      EXPECT_EQ(c.domain_indicator[canon.entertain], 1);
      return;
    }
  }
  FAIL() << "player concept not found";
}

TEST_F(SyntheticKbTest, AliasFanoutReachesTwenty) {
  // Every curated alias is padded to ~20 candidates (the Wikifier top-20).
  const auto& candidates = kb_->knowledge_base.LookupAlias("Kobe Bryant");
  EXPECT_GE(candidates.size(), 15u);
  EXPECT_LE(candidates.size(), 20u);
}

TEST_F(SyntheticKbTest, PoolsNonEmptyAndResolvable) {
  const auto& pools = kb_->pools;
  for (const auto* pool :
       {&pools.nba_players, &pools.foods, &pools.cars, &pools.countries,
        &pools.films, &pools.mountains, &pools.actors, &pools.musicians,
        &pools.business_people, &pools.politicians, &pools.scientists}) {
    ASSERT_FALSE(pool->empty());
    for (const auto& name : *pool) {
      EXPECT_TRUE(kb_->knowledge_base.HasAlias(name)) << name;
    }
  }
}

TEST_F(SyntheticKbTest, DomainKeywordsCoverAllDomains) {
  ASSERT_EQ(kb_->domain_keywords.size(), 26u);
  for (const auto& keywords : kb_->domain_keywords) {
    EXPECT_FALSE(keywords.empty());
  }
}

TEST_F(SyntheticKbTest, DeterministicForSameSeed) {
  SyntheticKbOptions options;
  options.filler_concepts_per_domain = 5;
  auto a = BuildSyntheticKb(options);
  auto b = BuildSyntheticKb(options);
  ASSERT_EQ(a.knowledge_base.num_concepts(), b.knowledge_base.num_concepts());
  for (ConceptId id = 0; id < a.knowledge_base.num_concepts(); ++id) {
    EXPECT_EQ(a.knowledge_base.GetConcept(id).title,
              b.knowledge_base.GetConcept(id).title);
  }
}

TEST_F(SyntheticKbTest, IndicatorVectorsMatchTaxonomyArity) {
  for (ConceptId id = 0; id < kb_->knowledge_base.num_concepts(); ++id) {
    EXPECT_EQ(kb_->knowledge_base.GetConcept(id).domain_indicator.size(), 26u);
  }
}

}  // namespace
}  // namespace docs::kb
