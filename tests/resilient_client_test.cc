// ResilientCrowdClient behavior: retryable-vs-fatal classification, backoff
// budgets, reconnect-and-resume across a gateway restart, duplicate-ack
// handling when a response is lost after the answer applied, and the
// slow-peer SO_SNDTIMEO regression (a peer that stops reading must surface
// as a timeout, not a wedged client).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/crowd_client.h"
#include "client/resilient_client.h"
#include "common/fault_injection.h"
#include "core/concurrent_docs_system.h"
#include "core/durable_docs_system.h"
#include "datasets/dataset.h"
#include "kb/synthetic_kb.h"
#include "server/crowd_gateway.h"

namespace docs::client {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

class ResilientClientTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new kb::SyntheticKb(kb::BuildSyntheticKb());
    dataset_ = new datasets::Dataset(datasets::MakeItemDataset(*kb_));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete kb_;
    dataset_ = nullptr;
    kb_ = nullptr;
  }
  void TearDown() override { FaultInjector::Global().DisarmAll(); }

  static std::unique_ptr<core::ConcurrentDocsSystem> LoadedSystem() {
    core::DocsSystemOptions options;
    options.golden_count = 4;
    options.lease_duration = 0;
    auto system = std::make_unique<core::ConcurrentDocsSystem>(
        &kb_->knowledge_base, options);
    std::vector<core::TaskInput> inputs;
    for (const auto& task : dataset_->tasks) {
      inputs.push_back({task.text, task.num_choices()});
    }
    auto truths = dataset_->Truths();
    EXPECT_TRUE(system->AddTasks(inputs, &truths).ok());
    return system;
  }

  static ResilientClientOptions FastOptions(uint16_t port) {
    ResilientClientOptions options;
    options.port = port;
    options.socket.recv_timeout_ms = 2000;
    options.socket.send_timeout_ms = 2000;
    options.initial_backoff_ms = 1;
    options.max_backoff_ms = 20;
    options.nonce = 0x5EED;
    return options;
  }

  static kb::SyntheticKb* kb_;
  static datasets::Dataset* dataset_;
};

kb::SyntheticKb* ResilientClientTest::kb_ = nullptr;
datasets::Dataset* ResilientClientTest::dataset_ = nullptr;

TEST_F(ResilientClientTest, ClassifiesTransientVersusFatal) {
  // Transient: transport failures and server-side "try again".
  EXPECT_TRUE(ResilientCrowdClient::IsRetryable(StatusCode::kUnavailable));
  EXPECT_TRUE(ResilientCrowdClient::IsRetryable(StatusCode::kIoError));
  EXPECT_TRUE(ResilientCrowdClient::IsRetryable(StatusCode::kDataLoss));
  // Fatal: the server's verdict on a delivered request — retrying the same
  // bytes can only get the same answer.
  EXPECT_FALSE(ResilientCrowdClient::IsRetryable(StatusCode::kInvalidArgument));
  EXPECT_FALSE(ResilientCrowdClient::IsRetryable(StatusCode::kNotFound));
  EXPECT_FALSE(ResilientCrowdClient::IsRetryable(StatusCode::kAlreadyExists));
  EXPECT_FALSE(ResilientCrowdClient::IsRetryable(StatusCode::kOutOfRange));
  EXPECT_FALSE(
      ResilientCrowdClient::IsRetryable(StatusCode::kFailedPrecondition));
  EXPECT_FALSE(ResilientCrowdClient::IsRetryable(StatusCode::kOk));
}

TEST_F(ResilientClientTest, ExhaustsAttemptBudgetAgainstDeadPort) {
  // Reserve a port nothing listens on.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const uint16_t port = ntohs(addr.sin_port);
  ::close(fd);  // bound but never listened: connects are refused

  ResilientClientOptions options = FastOptions(port);
  options.max_attempts = 3;
  ResilientCrowdClient client(options);
  std::vector<uint64_t> tasks;
  const Status status = client.RequestTasks("w0", 2, &tasks);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(ResilientCrowdClient::IsRetryable(status.code()));
  EXPECT_EQ(client.stats().retries, 2u);     // attempts 2 and 3
  EXPECT_EQ(client.stats().reconnects, 0u);  // never connected at all
}

TEST_F(ResilientClientTest, FatalVerdictIsNotRetried) {
  auto system = LoadedSystem();
  server::CrowdGateway gateway(system.get());
  ASSERT_TRUE(gateway.Start().ok());

  ResilientCrowdClient client(FastOptions(gateway.port()));
  std::vector<uint64_t> tasks;
  ASSERT_TRUE(client.RequestTasks("w0", 2, &tasks).ok());
  // choice 99 is out of range for every task: the server's verdict comes
  // back verbatim on the first attempt.
  EXPECT_EQ(client.SubmitAnswer("w0", 0, 99).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(client.stats().retries, 0u);
  gateway.Stop();
}

TEST_F(ResilientClientTest, RidesThroughGatewayRestart) {
  const std::string dir = ::testing::TempDir() + "/resilient_restart";
  ::mkdir(dir.c_str(), 0755);
  std::remove((dir + "/state.ckpt").c_str());
  std::remove((dir + "/answers.wal").c_str());
  auto system = LoadedSystem();
  core::DurableDocsSystem durable(system.get(), {dir});
  auto gateway =
      std::make_unique<server::CrowdGateway>(&durable);
  ASSERT_TRUE(gateway->Start().ok());
  const uint16_t port = gateway->port();

  ResilientClientOptions options = FastOptions(port);
  options.max_attempts = 200;
  options.op_deadline_ms = 30000;
  ResilientCrowdClient client(options);
  std::vector<uint64_t> tasks;
  ASSERT_TRUE(client.RequestTasks("w0", 2, &tasks).ok());
  ASSERT_TRUE(client.SubmitAnswer("w0", 0, 0).ok());

  // Take the gateway down; bring a replacement up on the same port (same
  // durable layer — it already recovered) a beat later.
  gateway->Stop();
  gateway.reset();
  std::thread reviver([&] {
    std::this_thread::sleep_for(milliseconds(150));
    server::CrowdGatewayOptions gateway_options;
    gateway_options.port = port;
    gateway = std::make_unique<server::CrowdGateway>(&durable,
                                                     gateway_options);
    Status started = OkStatus();
    for (int attempt = 0; attempt < 100; ++attempt) {
      started = gateway->Start();
      if (started.ok()) break;
      std::this_thread::sleep_for(milliseconds(20));
    }
    ASSERT_TRUE(started.ok()) << started.ToString();
  });

  // Issued into the outage: retries + reconnect carry it to the new server.
  const Status submitted = client.SubmitAnswer("w0", 1, 1);
  reviver.join();
  EXPECT_TRUE(submitted.ok()) << submitted.ToString();
  EXPECT_GE(client.stats().retries, 1u);
  EXPECT_GE(client.stats().reconnects, 1u);
  EXPECT_EQ(system->num_answers(), 2u);
  gateway->Stop();
}

TEST_F(ResilientClientTest, LostAckRetriesAreDeduplicatedNotDoubleApplied) {
  // Plain (non-durable) gateway: a response dropped after the answer was
  // applied makes the retry surface kAlreadyExists from the facade's
  // (worker, task) check — which the client must count as success.
  auto system = LoadedSystem();
  server::CrowdGateway gateway(system.get());
  ASSERT_TRUE(gateway.Start().ok());

  ResilientClientOptions options = FastOptions(gateway.port());
  options.max_attempts = 50;
  ResilientCrowdClient client(options);
  std::vector<uint64_t> tasks;
  ASSERT_TRUE(client.RequestTasks("w0", 2, &tasks).ok());

  FaultInjector::Global().ArmProbabilistic(server::kFaultGatewayWrite, 0.3);
  size_t submitted = 0;
  for (size_t task = 0; task < 40; ++task) {
    const Status status =
        client.SubmitAnswer("w0", task, static_cast<uint32_t>(task % 2));
    ASSERT_TRUE(status.ok()) << status.ToString();
    ++submitted;
    if (client.stats().duplicate_acks > 0 && task >= 10) break;
  }
  FaultInjector::Global().DisarmAll();

  EXPECT_GT(client.stats().retries, 0u);
  EXPECT_GT(client.stats().duplicate_acks, 0u);
  // The exactly-once half of the contract: every acked submission applied
  // exactly once, no matter how many acks the chaos ate.
  EXPECT_EQ(system->num_answers(), submitted);
  gateway.Stop();
}

TEST_F(ResilientClientTest, NoncesDifferingOnlyInHighBitsDoNotCollide) {
  const std::string dir = ::testing::TempDir() + "/resilient_nonce_ns";
  ::mkdir(dir.c_str(), 0755);
  std::remove((dir + "/state.ckpt").c_str());
  std::remove((dir + "/answers.wal").c_str());
  auto system = LoadedSystem();
  core::DurableDocsSystem durable(system.get(), {dir});
  server::CrowdGateway gateway(&durable);
  ASSERT_TRUE(gateway.Start().ok());

  // Two clients whose reproducibility nonces agree in the low 32 bits. An
  // id namespace built from the low half alone would make them generate
  // identical request_id sequences — and since both submit for the same
  // worker, the gateway would dedup client B's first *fresh* answer against
  // client A's submission and silently drop it.
  ResilientClientOptions a_options = FastOptions(gateway.port());
  a_options.nonce = (1ULL << 32) | 7;
  ResilientClientOptions b_options = FastOptions(gateway.port());
  b_options.nonce = (2ULL << 32) | 7;
  ResilientCrowdClient a(a_options);
  ResilientCrowdClient b(b_options);

  std::vector<uint64_t> tasks;
  ASSERT_TRUE(a.RequestTasks("w0", 2, &tasks).ok());
  ASSERT_TRUE(a.SubmitAnswer("w0", 0, 0).ok());
  ASSERT_TRUE(b.SubmitAnswer("w0", 1, 1).ok());

  EXPECT_EQ(system->num_answers(), 2u);
  EXPECT_EQ(durable.stats().answers_deduped, 0u);
  gateway.Stop();
}

TEST_F(ResilientClientTest, SendTimesOutAgainstAPeerThatStopsReading) {
  // A listener that accepts and then never reads: the kernel buffers fill
  // and send() would block forever without SO_SNDTIMEO.
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  const int rcvbuf = 4096;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);

  std::atomic<int> peer_fd{-1};
  std::thread acceptor([&] {
    peer_fd.store(::accept(listen_fd, nullptr, nullptr));
  });

  CrowdClientOptions options;
  options.send_timeout_ms = 200;
  options.recv_timeout_ms = 200;
  options.send_buffer_bytes = 4096;
  CrowdClient client(options);
  ASSERT_TRUE(client.Connect("127.0.0.1", ntohs(addr.sin_port)).ok());
  acceptor.join();
  ASSERT_GE(peer_fd.load(), 0);

  // Fill every buffer between us and the dead peer without blocking.
  std::vector<char> junk(4096, 'x');
  while (::send(client.native_handle(), junk.data(), junk.size(),
                MSG_DONTWAIT | MSG_NOSIGNAL) > 0) {
  }
  while (::send(client.native_handle(), junk.data(), 1,
                MSG_DONTWAIT | MSG_NOSIGNAL) > 0) {
  }

  // The next real call must fail within the timeout, not hang the thread.
  const auto start = steady_clock::now();
  const Status status = client.SubmitAnswer("w0", 0, 0);
  const auto elapsed = steady_clock::now() - start;
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("timed out"), std::string::npos)
      << status.ToString();
  EXPECT_LT(elapsed, std::chrono::seconds(5));

  ::close(peer_fd.load());
  ::close(listen_fd);
}

}  // namespace
}  // namespace docs::client
