#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/math_utils.h"
#include "common/rng.h"
#include "core/incremental_ti.h"
#include "core/truth_inference.h"
#include "crowd/worker_pool.h"

namespace docs::core {
namespace {

std::vector<Task> TwoDomainTasks(size_t n) {
  std::vector<Task> tasks(n);
  for (size_t i = 0; i < n; ++i) {
    tasks[i].domain_vector = {i % 2 == 0 ? 1.0 : 0.0, i % 2 == 0 ? 0.0 : 1.0};
    tasks[i].num_choices = 2;
  }
  return tasks;
}

TEST(IncrementalTiTest, InitialStateIsUniform) {
  IncrementalTruthInference engine(TwoDomainTasks(3));
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(engine.task_truth(i)[0], 0.5, 1e-12);
    EXPECT_NEAR(engine.task_truth(i)[1], 0.5, 1e-12);
  }
}

TEST(IncrementalTiTest, RejectsOutOfRange) {
  IncrementalTruthInference engine(TwoDomainTasks(2));
  EXPECT_FALSE(engine.OnAnswer(0, 5, 0).ok());
  EXPECT_FALSE(engine.OnAnswer(0, 0, 7).ok());
}

TEST(IncrementalTiTest, RejectsDuplicateAnswer) {
  IncrementalTruthInference engine(TwoDomainTasks(2));
  ASSERT_TRUE(engine.OnAnswer(0, 0, 1).ok());
  EXPECT_TRUE(engine.HasAnswered(0, 0));
  EXPECT_FALSE(engine.OnAnswer(0, 0, 1).ok());
  EXPECT_EQ(engine.num_answers(), 1u);
}

TEST(IncrementalTiTest, SingleAnswerMatchesBatchStepOne) {
  auto tasks = TwoDomainTasks(1);
  IncrementalTruthInference engine(tasks);
  ASSERT_TRUE(engine.OnAnswer(0, 0, 1).ok());

  // Batch reference with the same (default) quality the worker had at
  // submission time.
  std::vector<WorkerQuality> qualities(1);
  qualities[0].quality = {engine.options().default_quality,
                          engine.options().default_quality};
  qualities[0].weight = {0.0, 0.0};
  Matrix reference = ComputeTruthMatrix(tasks[0], {{0, 0, 1}}, qualities,
                                        engine.options().quality_clamp);
  EXPECT_LT(reference.MaxAbsDiff(engine.truth_matrix(0)), 1e-9);
}

TEST(IncrementalTiTest, WorkerQualityUpdateFollowsPaperFormula) {
  auto tasks = TwoDomainTasks(1);  // task 0 fully in domain 0
  TruthInferenceOptions options;
  options.quality_prior_strength = 0.0;  // the paper's exact Eq. 5 update
  IncrementalTruthInference engine(std::move(tasks), options);
  const double q0 = engine.options().default_quality;
  ASSERT_TRUE(engine.OnAnswer(0, 0, 1).ok());
  const double s_after = engine.task_truth(0)[1];
  // q_k = (q*u + s_{i,a}*r_k)/(u + r_k) with u = 0, r_0 = 1 -> s_after.
  EXPECT_NEAR(engine.worker_quality(0).quality[0], s_after, 1e-12);
  EXPECT_NEAR(engine.worker_quality(0).weight[0], 1.0, 1e-12);
  // Domain 1 has r = 0: quality unchanged, weight 0.
  EXPECT_NEAR(engine.worker_quality(0).quality[1], q0, 1e-12);
  EXPECT_NEAR(engine.worker_quality(0).weight[1], 0.0, 1e-12);
}

TEST(IncrementalTiTest, PriorWorkersQualityAdjustedOnNewAnswer) {
  auto tasks = TwoDomainTasks(1);
  TruthInferenceOptions options;
  options.quality_prior_strength = 0.0;  // the paper's exact step-2 rule
  IncrementalTruthInference engine(std::move(tasks), options);
  ASSERT_TRUE(engine.OnAnswer(0, 0, 1).ok());
  const double q_before = engine.worker_quality(0).quality[0];
  const double s_before = engine.task_truth(0)[1];
  ASSERT_TRUE(engine.OnAnswer(1, 0, 1).ok());  // agreeing second worker
  const double s_after = engine.task_truth(0)[1];
  // Agreement raises the shared truth mass, which lifts worker 0's quality
  // by (s_new - s_old) * r / u exactly (the Section 4.2 step-2 rule).
  EXPECT_GT(s_after, s_before);
  EXPECT_NEAR(engine.worker_quality(0).quality[0],
              q_before + (s_after - s_before), 1e-9);
}

TEST(IncrementalTiTest, MapSmoothedUpdateShrinksTowardSeed) {
  // With a positive prior strength the first answer moves the quality only
  // partially away from the seed: q = (q0 * prior + s * r) / (prior + r).
  auto tasks = TwoDomainTasks(1);
  TruthInferenceOptions options;
  options.quality_prior_strength = 2.0;
  IncrementalTruthInference engine(std::move(tasks), options);
  const double q0 = engine.options().default_quality;
  ASSERT_TRUE(engine.OnAnswer(0, 0, 1).ok());
  const double s_after = engine.task_truth(0)[1];
  EXPECT_NEAR(engine.worker_quality(0).quality[0],
              (q0 * 2.0 + s_after) / 3.0, 1e-12);
}

TEST(IncrementalTiTest, SetWorkerQualitySeedsBothStatsAndSeed) {
  IncrementalTruthInference engine(TwoDomainTasks(2));
  WorkerQuality expert;
  expert.quality = {0.95, 0.6};
  expert.weight = {10.0, 10.0};
  ASSERT_TRUE(engine.SetWorkerQuality(0, expert).ok());
  EXPECT_NEAR(engine.worker_quality(0).quality[0], 0.95, 1e-12);
}

TEST(IncrementalTiTest, SetWorkerQualityRejectsDimensionMismatch) {
  IncrementalTruthInference engine(TwoDomainTasks(2));
  WorkerQuality narrow;
  narrow.quality = {0.9};  // tasks span two domains
  narrow.weight = {1.0};
  EXPECT_EQ(engine.SetWorkerQuality(0, narrow).code(),
            StatusCode::kInvalidArgument);

  WorkerQuality lopsided;
  lopsided.quality = {0.9, 0.8};
  lopsided.weight = {1.0};  // weight vector too short
  EXPECT_EQ(engine.SetWorkerQuality(0, lopsided).code(),
            StatusCode::kInvalidArgument);

  // The rejected seeds must not have corrupted worker 0's state: the next
  // answer still runs the full-dimension quality update without faulting.
  ASSERT_TRUE(engine.OnAnswer(0, 0, 1).ok());
  EXPECT_EQ(engine.worker_quality(0).quality.size(), 2u);

  WorkerQuality good;
  good.quality = {0.9, 0.8};
  good.weight = {5.0, 5.0};
  EXPECT_TRUE(engine.SetWorkerQuality(1, good).ok());
}

TEST(IncrementalTiTest, RetroUpdateKeepsQualitiesInRange) {
  // Regression for the retro-update clamp: the Section 4.2 correction
  // q += (s_new - s_old) * r / mass is first-order, not convex, and the
  // stored estimate must stay a probability through adversarial streams
  // (early contrarian answers followed by agreeing floods, with periodic
  // full re-inference in between) or Eq. 4 takes log of a negative number.
  const size_t n = 12;
  std::vector<Task> tasks(n);
  for (size_t i = 0; i < n; ++i) {
    tasks[i].domain_vector = {i % 2 == 0 ? 0.9 : 0.1, i % 2 == 0 ? 0.1 : 0.9};
    tasks[i].num_choices = 2;
  }
  TruthInferenceOptions options;
  options.quality_prior_strength = 0.0;  // the paper's exact update
  IncrementalTruthInference engine(std::move(tasks), options);

  auto all_in_range = [&] {
    for (size_t w = 0; w < engine.num_workers(); ++w) {
      for (double q : engine.worker_quality(w).quality) {
        ASSERT_GE(q, 0.0);
        ASSERT_LE(q, 1.0);
      }
    }
  };
  for (size_t i = 0; i < n; ++i) {
    // Worker 0 answers first, while her accumulated mass is small...
    ASSERT_TRUE(engine.OnAnswer(0, i, 0).ok());
    all_in_range();
    // ...then a flood of disagreeing workers swings s_i, and every flood
    // answer retro-adjusts worker 0 by the full delta over that small mass.
    for (size_t w = 1; w <= 15; ++w) {
      ASSERT_TRUE(engine.OnAnswer(w, i, 1).ok());
      all_in_range();
    }
    if (i % 4 == 3) {
      engine.RunFullInference();
      all_in_range();
    }
  }
}

TEST(IncrementalTiTest, FullInferenceRestoresBatchParity) {
  // The incremental estimates drift from the batch fixed point between
  // re-inference runs (Section 4.2 accepts the drift for O(1) updates);
  // RunFullInference snaps the worker qualities back to the exact batch
  // values. Pin both halves: bounded drift before, bit-equality after.
  const size_t n = 50, num_workers = 15, m = 2;
  auto tasks = TwoDomainTasks(n);
  Rng rng(11);
  crowd::WorkerPoolOptions pool_options;
  pool_options.num_workers = num_workers;
  auto workers = crowd::MakeWorkerPool(m, {0, 1}, pool_options, 11);

  IncrementalTruthInference engine(tasks);
  std::vector<Answer> answers;
  for (size_t i = 0; i < n; ++i) {
    for (size_t a = 0; a < 7; ++a) {
      const size_t w = (i * 3 + a * 4) % num_workers;
      if (engine.HasAnswered(w, i)) continue;
      const size_t choice =
          crowd::GenerateAnswer(workers[w], i % 2, i % 2, 2, rng);
      answers.push_back({i, w, choice});
      ASSERT_TRUE(engine.OnAnswer(w, i, choice).ok());
    }
  }

  TruthInference batch(engine.options());
  const auto reference = batch.Run(tasks, engine.num_workers(), answers);

  double drift_before = 0.0;
  for (size_t w = 0; w < engine.num_workers(); ++w) {
    for (size_t k = 0; k < m; ++k) {
      const double q = engine.worker_quality(w).quality[k];
      ASSERT_GE(q, 0.0);
      ASSERT_LE(q, 1.0);
      drift_before = std::max(
          drift_before, std::fabs(q - reference.worker_quality[w].quality[k]));
    }
  }
  EXPECT_GT(drift_before, 0.0);   // the one-pass estimates do drift...
  EXPECT_LT(drift_before, 0.25);  // ...but stay near the batch fixed point.

  engine.RunFullInference();
  for (size_t w = 0; w < engine.num_workers(); ++w) {
    EXPECT_EQ(engine.worker_quality(w).quality,
              reference.worker_quality[w].quality)
        << "worker " << w;
    EXPECT_EQ(engine.worker_quality(w).weight,
              reference.worker_quality[w].weight)
        << "worker " << w;
  }
}

TEST(IncrementalTiTest, RunFullInferenceMatchesBatchEngine) {
  const size_t n = 40, num_workers = 15, m = 2;
  auto tasks = TwoDomainTasks(n);
  Rng rng(5);
  crowd::WorkerPoolOptions pool_options;
  pool_options.num_workers = num_workers;
  auto workers = crowd::MakeWorkerPool(m, {0, 1}, pool_options, 5);

  IncrementalTruthInference incremental(tasks);
  std::vector<Answer> answers;
  for (size_t i = 0; i < n; ++i) {
    const size_t domain = i % 2;
    for (size_t a = 0; a < 5; ++a) {
      const size_t w = (i + a * 3) % num_workers;
      if (incremental.HasAnswered(w, i)) continue;
      const size_t choice =
          crowd::GenerateAnswer(workers[w], domain, i % 2, 2, rng);
      answers.push_back({i, w, choice});
      ASSERT_TRUE(incremental.OnAnswer(w, i, choice).ok());
    }
  }
  incremental.RunFullInference();

  TruthInference batch(incremental.options());
  auto reference = batch.Run(tasks, incremental.num_workers(), answers);
  // RunFullInference refreshes the cached M/s from the *converged* worker
  // qualities (one extra E-step beyond where the batch engine stopped), so
  // agreement is up to the convergence tolerance, not bit-exact.
  for (size_t i = 0; i < n; ++i) {
    EXPECT_LT(L1Distance(incremental.task_truth(i), reference.task_truth[i]),
              1e-4);
  }
  EXPECT_EQ(incremental.InferredChoices(), reference.inferred_choice);
  for (size_t w = 0; w < incremental.num_workers(); ++w) {
    for (size_t k = 0; k < m; ++k) {
      EXPECT_NEAR(incremental.worker_quality(w).quality[k],
                  reference.worker_quality[w].quality[k], 1e-9);
    }
  }
}

TEST(IncrementalTiTest, IncrementalTracksBatchApproximately) {
  // Without periodic re-runs the incremental engine should still land on
  // mostly the same truths as the batch engine (Section 4.2 notes it may be
  // slightly worse, not wildly different).
  const size_t n = 60, num_workers = 20, m = 2;
  auto tasks = TwoDomainTasks(n);
  Rng rng(6);
  crowd::WorkerPoolOptions pool_options;
  pool_options.num_workers = num_workers;
  auto workers = crowd::MakeWorkerPool(m, {0, 1}, pool_options, 6);

  IncrementalTruthInference incremental(tasks);
  std::vector<Answer> answers;
  for (size_t i = 0; i < n; ++i) {
    for (size_t a = 0; a < 7; ++a) {
      const size_t w = (i * 5 + a * 2) % num_workers;
      if (incremental.HasAnswered(w, i)) continue;
      const size_t choice =
          crowd::GenerateAnswer(workers[w], i % 2, i % 2, 2, rng);
      answers.push_back({i, w, choice});
      ASSERT_TRUE(incremental.OnAnswer(w, i, choice).ok());
    }
  }
  TruthInference batch(incremental.options());
  auto reference = batch.Run(tasks, incremental.num_workers(), answers);
  size_t agree = 0;
  auto choices = incremental.InferredChoices();
  for (size_t i = 0; i < n; ++i) agree += choices[i] == reference.inferred_choice[i];
  EXPECT_GT(static_cast<double>(agree) / n, 0.85);
}

TEST(IncrementalTiTest, TruthStaysNormalized) {
  auto tasks = TwoDomainTasks(4);
  IncrementalTruthInference engine(tasks);
  Rng rng(8);
  for (size_t w = 0; w < 6; ++w) {
    for (size_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(engine.OnAnswer(w, i, rng.UniformInt(2)).ok());
      EXPECT_TRUE(IsDistribution(engine.task_truth(i), 1e-9));
    }
  }
}

TEST(IncrementalTiTest, SetWorkerQualityRejectsCorruptValues) {
  // Seeds arrive from stores and checkpoints, i.e. from disk: corrupt values
  // must come back as InvalidArgument, not sail into the EM update.
  IncrementalTruthInference engine(TwoDomainTasks(2));

  WorkerQuality poisoned;
  poisoned.quality = {std::nan(""), 0.8};
  poisoned.weight = {1.0, 1.0};
  EXPECT_EQ(engine.SetWorkerQuality(0, poisoned).code(),
            StatusCode::kInvalidArgument);

  WorkerQuality inflated;
  inflated.quality = {1.5, 0.8};  // Eq. 5 qualities live in [0, 1]
  inflated.weight = {1.0, 1.0};
  EXPECT_EQ(engine.SetWorkerQuality(0, inflated).code(),
            StatusCode::kInvalidArgument);

  WorkerQuality negative_weight;
  negative_weight.quality = {0.9, 0.8};
  negative_weight.weight = {-1.0, 1.0};
  EXPECT_EQ(engine.SetWorkerQuality(0, negative_weight).code(),
            StatusCode::kInvalidArgument);

  // Rejections leave the worker untouched and answerable.
  ASSERT_TRUE(engine.OnAnswer(0, 0, 0).ok());
  for (double q : engine.worker_quality(0).quality) {
    EXPECT_TRUE(std::isfinite(q));
  }
}

// --- Bounds, answered-set shape, epoch tags ----------------------------------

TEST(IncrementalTiTest, HasAnsweredOutOfRangeReadsFalse) {
  // Regression: HasAnswered(worker, task) with task >= num_tasks() used to
  // index past the end of the per-worker bitmap. Both out-of-range axes must
  // read as "not answered".
  IncrementalTruthInference engine(TwoDomainTasks(2));
  ASSERT_TRUE(engine.OnAnswer(0, 0, 1).ok());

  EXPECT_FALSE(engine.HasAnswered(0, 2));            // task past the list
  EXPECT_FALSE(engine.HasAnswered(0, size_t{1} << 40));
  EXPECT_FALSE(engine.HasAnswered(7, 0));            // unknown worker
  EXPECT_FALSE(engine.HasAnswered(7, size_t{1} << 40));
  EXPECT_TRUE(engine.HasAnswered(0, 0));
}

TEST(IncrementalTiTest, AnsweredTasksIsSortedRegardlessOfSubmissionOrder) {
  IncrementalTruthInference engine(TwoDomainTasks(6));
  for (size_t task : {4u, 1u, 5u, 0u, 2u}) {
    ASSERT_TRUE(engine.OnAnswer(0, task, 0).ok());
  }
  const std::vector<size_t> expected = {0, 1, 2, 4, 5};
  EXPECT_EQ(engine.answered_tasks(0), expected);
  EXPECT_TRUE(engine.answered_tasks(3).empty());  // never-seen worker
  for (size_t task : expected) EXPECT_TRUE(engine.HasAnswered(0, task));
  EXPECT_FALSE(engine.HasAnswered(0, 3));
}

TEST(IncrementalTiTest, OnAnswerBumpsTaskSubmitterAndRetroWorkers) {
  // The benefit cache keys on these epochs, so every quality/truth movement
  // must be visible: an answer touches its task, the submitting worker, and
  // (via the step-2 retro update) every prior answerer of the same task.
  IncrementalTruthInference engine(TwoDomainTasks(3));
  engine.EnsureWorker(0);
  engine.EnsureWorker(1);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(engine.task_epoch(i), 1u);
  EXPECT_EQ(engine.worker_epoch(0), 1u);
  EXPECT_EQ(engine.worker_epoch(1), 1u);

  ASSERT_TRUE(engine.OnAnswer(0, 0, 1).ok());
  EXPECT_EQ(engine.task_epoch(0), 2u);
  EXPECT_EQ(engine.task_epoch(1), 1u);  // untouched task
  EXPECT_EQ(engine.worker_epoch(0), 2u);
  EXPECT_EQ(engine.worker_epoch(1), 1u);  // uninvolved worker

  // Worker 1 answers the same task: worker 0 answered it before, so her
  // quality is retro-adjusted and her epoch must move too.
  ASSERT_TRUE(engine.OnAnswer(1, 0, 0).ok());
  EXPECT_EQ(engine.task_epoch(0), 3u);
  EXPECT_EQ(engine.worker_epoch(1), 2u);
  EXPECT_EQ(engine.worker_epoch(0), 3u);

  // A disjoint task leaves worker 0 alone.
  ASSERT_TRUE(engine.OnAnswer(1, 1, 0).ok());
  EXPECT_EQ(engine.task_epoch(1), 2u);
  EXPECT_EQ(engine.worker_epoch(1), 3u);
  EXPECT_EQ(engine.worker_epoch(0), 3u);
}

TEST(IncrementalTiTest, QualitySeedBumpsEpochAndFullInferenceBumpsGeneration) {
  IncrementalTruthInference engine(TwoDomainTasks(2));
  engine.EnsureWorker(0);
  engine.EnsureWorker(1);

  WorkerQuality seed;
  seed.quality = {0.9, 0.8};
  seed.weight = {2.0, 2.0};
  ASSERT_TRUE(engine.SetWorkerQuality(0, seed).ok());
  EXPECT_EQ(engine.worker_epoch(0), 2u);
  EXPECT_EQ(engine.worker_epoch(1), 1u);

  ASSERT_TRUE(engine.OnAnswer(0, 0, 1).ok());
  ASSERT_TRUE(engine.OnAnswer(1, 1, 0).ok());
  const uint64_t task0 = engine.task_epoch(0);
  const uint64_t task1 = engine.task_epoch(1);
  const uint64_t worker0 = engine.worker_epoch(0);
  const uint64_t worker1 = engine.worker_epoch(1);
  const uint64_t generation = engine.generation();
  EXPECT_EQ(generation, 1u);  // starts live, like the epochs

  // The full re-run replaces every task's and worker's parameters behind ONE
  // generation bump — O(1) invalidation of all cached benefits. The per-item
  // epochs must NOT move: walking every task and worker to bump them is
  // exactly the O(n) cost the generation exists to avoid.
  engine.RunFullInference();
  EXPECT_EQ(engine.generation(), generation + 1);
  EXPECT_EQ(engine.task_epoch(0), task0);
  EXPECT_EQ(engine.task_epoch(1), task1);
  EXPECT_EQ(engine.worker_epoch(0), worker0);
  EXPECT_EQ(engine.worker_epoch(1), worker1);

  // The mutation log (the index's repair feed) is truncated at the bump:
  // every pre-generation entry is obsolete, so the window advances past them.
  EXPECT_EQ(engine.mutation_log_begin(), engine.mutation_log_end());
}

}  // namespace
}  // namespace docs::core
