#include <gtest/gtest.h>

#include <cmath>

#include "common/math_utils.h"
#include "common/rng.h"
#include "core/domain_vector.h"
#include "kb/synthetic_kb.h"

namespace docs::core {
namespace {

// The exact instance of Table 2 of the paper, with D = {politics, sports,
// films} (m = 3): three entities, candidate probabilities and indicator
// vectors as printed.
std::vector<EntityObservation> Table2Instance() {
  std::vector<EntityObservation> entities(3);
  entities[0].link_probabilities = {0.7, 0.2, 0.1};
  entities[0].indicators = {{0, 1, 1}, {0, 0, 0}, {0, 0, 1}};
  entities[1].link_probabilities = {0.8, 0.2};
  entities[1].indicators = {{0, 1, 0}, {0, 0, 0}};
  entities[2].link_probabilities = {1.0};
  entities[2].indicators = {{0, 1, 0}};
  return entities;
}

TEST(DomainVectorTest, Table2ExampleMatchesPaper) {
  auto entities = Table2Instance();
  auto r = ComputeDomainVector(entities, 3);
  // The paper reports r^t = [0, 0.78, 0.22].
  EXPECT_NEAR(r[0], 0.0, 1e-12);
  EXPECT_NEAR(r[1], 0.78, 0.005);
  EXPECT_NEAR(r[2], 0.22, 0.005);
}

TEST(DomainVectorTest, Table2EnumerationAgrees) {
  auto entities = Table2Instance();
  auto fast = ComputeDomainVector(entities, 3);
  auto slow = ComputeDomainVectorByEnumeration(entities, 3);
  ASSERT_EQ(slow.size(), 3u);
  for (size_t k = 0; k < 3; ++k) EXPECT_NEAR(fast[k], slow[k], 1e-12);
}

TEST(DomainVectorTest, EmptyEntitiesYieldZeros) {
  auto r = ComputeDomainVector({}, 4);
  EXPECT_EQ(r, (std::vector<double>{0.0, 0.0, 0.0, 0.0}));
}

TEST(DomainVectorTest, SingleUnambiguousEntity) {
  std::vector<EntityObservation> entities(1);
  entities[0].link_probabilities = {1.0};
  entities[0].indicators = {{0, 1, 1}};
  auto r = ComputeDomainVector(entities, 3);
  EXPECT_NEAR(r[0], 0.0, 1e-12);
  EXPECT_NEAR(r[1], 0.5, 1e-12);
  EXPECT_NEAR(r[2], 0.5, 1e-12);
}

TEST(DomainVectorTest, AllZeroIndicatorLinkingsLoseMass) {
  // With probability 0.4 the only linking has an all-zero indicator, so the
  // result sums to 0.6 (the dm != 0 guard of Algorithm 1).
  std::vector<EntityObservation> entities(1);
  entities[0].link_probabilities = {0.6, 0.4};
  entities[0].indicators = {{1, 0}, {0, 0}};
  auto r = ComputeDomainVector(entities, 2);
  EXPECT_NEAR(Sum(r), 0.6, 1e-12);
}

TEST(DomainVectorTest, CountLinkingsMultiplies) {
  auto entities = Table2Instance();
  EXPECT_EQ(CountLinkings(entities), 6u);  // 3 * 2 * 1
  EXPECT_EQ(CountLinkings({}), 1u);
}

TEST(DomainVectorTest, EnumerationRespectsCap) {
  auto entities = Table2Instance();
  EXPECT_TRUE(ComputeDomainVectorByEnumeration(entities, 3, 5).empty());
  EXPECT_FALSE(ComputeDomainVectorByEnumeration(entities, 3, 6).empty());
}

// --- Property sweep: Algorithm 1 == Equation 1 on random instances. --------

class DveEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(DveEquivalenceTest, Algorithm1MatchesEnumeration) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  const size_t m = 2 + rng.UniformInt(5);
  const size_t num_entities = 1 + rng.UniformInt(4);
  std::vector<EntityObservation> entities(num_entities);
  for (auto& entity : entities) {
    const size_t c = 1 + rng.UniformInt(4);
    entity.link_probabilities = rng.Dirichlet(c, 1.0);
    entity.indicators.resize(c);
    for (auto& h : entity.indicators) {
      h.resize(m);
      for (auto& bit : h) bit = rng.Bernoulli(0.5) ? 1 : 0;
    }
  }
  auto fast = ComputeDomainVector(entities, m);
  auto slow = ComputeDomainVectorByEnumeration(entities, m);
  ASSERT_EQ(fast.size(), slow.size());
  for (size_t k = 0; k < m; ++k) {
    EXPECT_NEAR(fast[k], slow[k], 1e-9) << "domain " << k;
  }
  // The domain vector mass never exceeds 1.
  EXPECT_LE(Sum(fast), 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, DveEquivalenceTest,
                         ::testing::Range(0, 40));

// --- End-to-end estimator over the synthetic KB ----------------------------

class EstimatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new kb::SyntheticKb(kb::BuildSyntheticKb());
  }
  static void TearDownTestSuite() {
    delete kb_;
    kb_ = nullptr;
  }
  static kb::SyntheticKb* kb_;
};

kb::SyntheticKb* EstimatorTest::kb_ = nullptr;

TEST_F(EstimatorTest, SportsTaskLandsOnSports) {
  DomainVectorEstimator estimator(&kb_->knowledge_base);
  auto r = estimator.Estimate(
      "Does Michael Jordan win more NBA championships than Kobe Bryant?");
  ASSERT_TRUE(IsDistribution(r, 1e-9));
  const auto canon =
      kb::CanonicalDomains::Resolve(kb_->knowledge_base.taxonomy());
  EXPECT_EQ(ArgMax(r), canon.sports);
  // As in the paper's example, the Entertain domain receives some mass via
  // the Space Jam connection of the player concept.
  EXPECT_GT(r[canon.entertain], 0.0);
}

TEST_F(EstimatorTest, MountainComparisonLandsOnScience) {
  DomainVectorEstimator estimator(&kb_->knowledge_base);
  auto r = estimator.Estimate("Compare the height of Mount Everest and K2.");
  const auto canon =
      kb::CanonicalDomains::Resolve(kb_->knowledge_base.taxonomy());
  EXPECT_EQ(ArgMax(r), canon.science);
}

TEST_F(EstimatorTest, PlayerHeightComparisonLandsOnSports) {
  // Same surface template as the mountain task — the KB separates them.
  DomainVectorEstimator estimator(&kb_->knowledge_base);
  auto r =
      estimator.Estimate("Compare the height of Stephen Curry and Kobe Bryant.");
  const auto canon =
      kb::CanonicalDomains::Resolve(kb_->knowledge_base.taxonomy());
  EXPECT_EQ(ArgMax(r), canon.sports);
}

TEST_F(EstimatorTest, NoEntityTextIsUniform) {
  DomainVectorEstimator estimator(&kb_->knowledge_base);
  auto r = estimator.Estimate("hmm nothing to see here at all");
  ASSERT_EQ(r.size(), 26u);
  for (double v : r) EXPECT_NEAR(v, 1.0 / 26.0, 1e-12);
}

TEST_F(EstimatorTest, EstimateWithEntitiesExposesMentions) {
  DomainVectorEstimator estimator(&kb_->knowledge_base);
  std::vector<nlp::LinkedEntity> entities;
  auto r = estimator.EstimateWithEntities(
      "Which food contains more calories, Chocolate or Honey?", &entities);
  EXPECT_TRUE(IsDistribution(r, 1e-9));
  EXPECT_GE(entities.size(), 2u);
}

TEST_F(EstimatorTest, ResultAlwaysNormalized) {
  DomainVectorEstimator estimator(&kb_->knowledge_base);
  for (const char* text :
       {"Is the Toyota Prius an electric vehicle?",
        "Did Leonardo DiCaprio star in Titanic?",
        "Which country has a larger population, France or Germany?",
        "Who founded the larger company, Bill Gates or Elon Musk?"}) {
    auto r = estimator.Estimate(text);
    EXPECT_TRUE(IsDistribution(r, 1e-9)) << text;
  }
}

}  // namespace
}  // namespace docs::core
