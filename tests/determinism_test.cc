// End-to-end determinism sweep for the parallel inference/assignment engine:
// thread counts 1/2/4/8 must produce byte-identical truth vectors, worker
// qualities and task selections. Every comparison below is exact double
// equality (operator== on the vectors), not a tolerance check — that is the
// contract the deterministic chunking in common/parallel.h provides.
// scripts/ci.sh additionally runs this binary under TSan.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "client/crowd_client.h"
#include "common/rng.h"
#include "core/concurrent_docs_system.h"
#include "core/docs_system.h"
#include "core/incremental_ti.h"
#include "core/task_assignment.h"
#include "core/truth_inference.h"
#include "crowd/worker_pool.h"
#include "datasets/dataset.h"
#include "kb/synthetic_kb.h"
#include "server/crowd_gateway.h"

namespace docs::core {
namespace {

constexpr size_t kThreadSweep[] = {1, 2, 4, 8};

/// A mid-size synthetic inference instance: n tasks over m domains, answered
/// by a pool of workers of mixed reliability.
struct Instance {
  std::vector<Task> tasks;
  std::vector<Answer> answers;
  size_t num_workers;
};

Instance MakeInstance(size_t n, size_t m, size_t num_workers, uint64_t seed) {
  Instance instance;
  instance.num_workers = num_workers;
  Rng rng(seed);
  instance.tasks.resize(n);
  for (auto& task : instance.tasks) {
    task.domain_vector = rng.Dirichlet(m, 0.5);
    task.num_choices = 2 + rng.UniformInt(3);  // 2..4 choices
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t a = 0; a < 7; ++a) {
      instance.answers.push_back(
          {i, (i * 5 + a * 11) % num_workers,
           rng.UniformInt(instance.tasks[i].num_choices)});
    }
  }
  return instance;
}

bool SameQualities(const std::vector<WorkerQuality>& a,
                   const std::vector<WorkerQuality>& b) {
  if (a.size() != b.size()) return false;
  for (size_t w = 0; w < a.size(); ++w) {
    if (a[w].quality != b[w].quality || a[w].weight != b[w].weight) {
      return false;
    }
  }
  return true;
}

TEST(DeterminismTest, TruthInferenceSweepIsByteIdentical) {
  const Instance instance = MakeInstance(150, 8, 40, 21);

  TruthInferenceOptions options;
  options.num_threads = 1;
  TruthInference baseline_engine(options);
  const TruthInferenceResult baseline = baseline_engine.Run(
      instance.tasks, instance.num_workers, instance.answers);

  for (size_t threads : kThreadSweep) {
    TruthInferenceOptions sweep = options;
    sweep.num_threads = threads;
    TruthInference engine(sweep);
    const TruthInferenceResult result =
        engine.Run(instance.tasks, instance.num_workers, instance.answers);

    EXPECT_EQ(result.iterations_run, baseline.iterations_run);
    EXPECT_EQ(result.inferred_choice, baseline.inferred_choice);
    EXPECT_EQ(result.task_truth, baseline.task_truth) << threads << " threads";
    EXPECT_TRUE(SameQualities(result.worker_quality, baseline.worker_quality))
        << threads << " threads";
    EXPECT_EQ(result.delta_history, baseline.delta_history);
    for (size_t i = 0; i < result.truth_matrices.size(); ++i) {
      ASSERT_EQ(result.truth_matrices[i].data(),
                baseline.truth_matrices[i].data())
          << "task " << i << ", " << threads << " threads";
    }
  }
}

TEST(DeterminismTest, IncrementalFullInferenceSweepIsByteIdentical) {
  const Instance instance = MakeInstance(80, 6, 25, 33);

  auto run = [&](size_t threads) {
    TruthInferenceOptions options;
    options.num_threads = threads;
    IncrementalTruthInference engine(instance.tasks, options);
    for (const Answer& answer : instance.answers) {
      EXPECT_TRUE(engine.OnAnswer(answer.worker, answer.task, answer.choice)
                      .ok());
    }
    engine.RunFullInference();
    return engine;
  };

  IncrementalTruthInference baseline = run(1);
  for (size_t threads : kThreadSweep) {
    IncrementalTruthInference swept = run(threads);
    EXPECT_EQ(swept.InferredChoices(), baseline.InferredChoices())
        << threads << " threads";
    for (size_t i = 0; i < instance.tasks.size(); ++i) {
      ASSERT_EQ(swept.task_truth(i), baseline.task_truth(i))
          << "task " << i << ", " << threads << " threads";
      ASSERT_EQ(swept.truth_matrix(i).data(), baseline.truth_matrix(i).data())
          << "task " << i << ", " << threads << " threads";
    }
    for (size_t w = 0; w < instance.num_workers; ++w) {
      ASSERT_EQ(swept.worker_quality(w).quality,
                baseline.worker_quality(w).quality)
          << "worker " << w << ", " << threads << " threads";
    }
  }
}

TEST(DeterminismTest, SelectTopKSweepIsIdentical) {
  const Instance instance = MakeInstance(120, 8, 30, 45);
  // Score against a converged inference state.
  TruthInferenceOptions ti_options;
  ti_options.num_threads = 1;
  const TruthInferenceResult state = TruthInference(ti_options).Run(
      instance.tasks, instance.num_workers, instance.answers);

  Rng rng(7);
  std::vector<double> worker_quality = rng.Dirichlet(8, 4.0);
  for (double& q : worker_quality) q = 0.4 + q;
  std::vector<uint8_t> eligible(instance.tasks.size(), 1);
  for (size_t i = 0; i < eligible.size(); i += 9) eligible[i] = 0;

  TaskAssignerOptions options;
  options.num_threads = 1;
  const auto baseline =
      TaskAssigner(options).SelectTopK(instance.tasks, state.truth_matrices,
                                       state.task_truth, worker_quality,
                                       eligible, 15);
  ASSERT_EQ(baseline.size(), 15u);
  for (size_t threads : kThreadSweep) {
    TaskAssignerOptions sweep = options;
    sweep.num_threads = threads;
    EXPECT_EQ(TaskAssigner(sweep).SelectTopK(
                  instance.tasks, state.truth_matrices, state.task_truth,
                  worker_quality, eligible, 15),
              baseline)
        << threads << " threads";
  }
}

/// Full-system sweep: identical answer streams into DocsSystem instances that
/// differ only in num_threads must yield identical selections (every rule),
/// inferred truths and worker qualities — including across the periodic
/// RunFullInference every `reinfer_every` answers.
class DocsSystemDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new kb::SyntheticKb(kb::BuildSyntheticKb());
  }
  static void TearDownTestSuite() {
    delete kb_;
    kb_ = nullptr;
  }
  static kb::SyntheticKb* kb_;
};

kb::SyntheticKb* DocsSystemDeterminismTest::kb_ = nullptr;

TEST_F(DocsSystemDeterminismTest, ServingPathSweepIsIdentical) {
  const auto dataset = datasets::MakeItemDataset(*kb_);
  const auto truths = dataset.Truths();
  std::vector<TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }

  crowd::WorkerPoolOptions pool_options;
  pool_options.num_workers = 12;
  const auto workers = crowd::MakeWorkerPool(
      kb_->knowledge_base.num_domains(), dataset.label_to_domain, pool_options,
      99);

  for (SelectionRule rule :
       {SelectionRule::kBenefit, SelectionRule::kDomainMax,
        SelectionRule::kUncertainty, SelectionRule::kQualityBlind}) {
    auto drive = [&](size_t threads) {
      DocsSystemOptions options;
      options.golden_count = 5;
      options.reinfer_every = 40;  // exercise RunFullInference mid-stream
      options.selection_rule = rule;
      options.num_threads = threads;
      auto system =
          std::make_unique<DocsSystem>(&kb_->knowledge_base, options);
      EXPECT_TRUE(system->AddTasks(inputs, &truths).ok());

      std::vector<std::vector<size_t>> selections;
      Rng rng(17);  // identical answer stream for every thread count
      for (size_t round = 0; round < 30; ++round) {
        const size_t w = system->WorkerIndex("w" + std::to_string(round % 12));
        auto selected = system->SelectTasks(w, 4);
        selections.push_back(selected);
        for (size_t task : selected) {
          const size_t choice = crowd::GenerateAnswer(
              workers[round % 12], dataset.tasks[task].true_domain,
              dataset.tasks[task].truth, dataset.tasks[task].num_choices(),
              rng);
          system->OnAnswer(w, task, choice);
        }
      }
      return std::make_pair(std::move(system), std::move(selections));
    };

    auto [baseline_system, baseline_selections] = drive(1);
    const auto baseline_choices = baseline_system->InferredChoices();
    for (size_t threads : kThreadSweep) {
      auto [system, selections] = drive(threads);
      EXPECT_EQ(selections, baseline_selections)
          << "rule " << static_cast<int>(rule) << ", " << threads
          << " threads";
      EXPECT_EQ(system->InferredChoices(), baseline_choices)
          << "rule " << static_cast<int>(rule) << ", " << threads
          << " threads";
      for (size_t w = 0; w < 12; ++w) {
        ASSERT_EQ(system->inference().worker_quality(w).quality,
                  baseline_system->inference().worker_quality(w).quality)
            << "worker " << w << ", rule " << static_cast<int>(rule) << ", "
            << threads << " threads";
      }
    }
  }
}

/// The tentpole oracle for the sharded serving core: the SAME campaign driven
/// over real TCP through gateways that differ only in reactor count and
/// scoring-thread count must leave bit-identical posteriors, selections and
/// worker qualities. Requests are driven sequentially (one at a time, rotating
/// over 12 connections that round-robin across the reactors), so the answer
/// order is fixed and any divergence isolates a reactor- or thread-dependent
/// code path — hand-off, sharded scoring, per-shard cache rows, pool fallback.
TEST_F(DocsSystemDeterminismTest, GatewayServingSweepIsIdenticalAcrossReactors) {
  const auto dataset = datasets::MakeItemDataset(*kb_);
  const auto truths = dataset.Truths();
  std::vector<TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }
  crowd::WorkerPoolOptions pool_options;
  pool_options.num_workers = 12;
  const auto workers = crowd::MakeWorkerPool(
      kb_->knowledge_base.num_domains(), dataset.label_to_domain, pool_options,
      99);

  struct Outcome {
    std::vector<std::vector<uint64_t>> selections;
    std::vector<size_t> choices;
    std::vector<std::vector<double>> qualities;
  };
  auto drive = [&](SelectionRule rule, size_t threads, size_t reactors) {
    DocsSystemOptions options;
    options.golden_count = 5;  // exclusive golden path, then the sharded one
    options.reinfer_every = 40;
    options.selection_rule = rule;
    options.num_threads = threads;
    ConcurrentDocsSystem system(&kb_->knowledge_base, options);
    EXPECT_TRUE(system.AddTasks(inputs, &truths).ok());
    server::CrowdGatewayOptions gateway_options;
    gateway_options.num_reactors = reactors;
    server::CrowdGateway gateway(&system, gateway_options);
    EXPECT_TRUE(gateway.Start().ok());

    client::CrowdClientOptions client_options;
    client_options.recv_timeout_ms = 5000;
    std::vector<std::unique_ptr<client::CrowdClient>> conns;
    for (size_t w = 0; w < 12; ++w) {
      conns.push_back(std::make_unique<client::CrowdClient>(client_options));
      EXPECT_TRUE(conns[w]->Connect("127.0.0.1", gateway.port()).ok());
    }

    Outcome outcome;
    Rng rng(17);  // identical answer stream for every configuration
    for (size_t round = 0; round < 24; ++round) {
      const size_t w = round % 12;
      const std::string id = "w" + std::to_string(w);
      std::vector<uint64_t> hit;
      EXPECT_TRUE(conns[w]->RequestTasks(id, 4, &hit).ok());
      outcome.selections.push_back(hit);
      for (uint64_t task : hit) {
        const size_t choice = crowd::GenerateAnswer(
            workers[w], dataset.tasks[task].true_domain,
            dataset.tasks[task].truth, dataset.tasks[task].num_choices(), rng);
        const Status answered =
            conns[w]->SubmitAnswer(id, task, static_cast<uint32_t>(choice));
        EXPECT_TRUE(answered.ok()) << answered.ToString();
      }
    }
    gateway.Stop();
    outcome.choices = system.InferredChoices();
    for (size_t w = 0; w < 12; ++w) {
      outcome.qualities.push_back(system.WithLocked([&](DocsSystem& inner) {
        return inner.inference().worker_quality(w).quality;
      }));
    }
    return outcome;
  };

  for (SelectionRule rule :
       {SelectionRule::kBenefit, SelectionRule::kDomainMax,
        SelectionRule::kUncertainty, SelectionRule::kQualityBlind}) {
    const Outcome baseline = drive(rule, 1, 1);
    for (size_t reactors : {size_t{1}, size_t{2}, size_t{4}}) {
      for (size_t threads : kThreadSweep) {
        if (reactors == 1 && threads == 1) continue;  // the baseline itself
        const Outcome swept = drive(rule, threads, reactors);
        EXPECT_EQ(swept.selections, baseline.selections)
            << "rule " << static_cast<int>(rule) << ", " << reactors
            << " reactors, " << threads << " threads";
        EXPECT_EQ(swept.choices, baseline.choices)
            << "rule " << static_cast<int>(rule) << ", " << reactors
            << " reactors, " << threads << " threads";
        ASSERT_EQ(swept.qualities, baseline.qualities)
            << "rule " << static_cast<int>(rule) << ", " << reactors
            << " reactors, " << threads << " threads";
      }
    }
  }
}

}  // namespace
}  // namespace docs::core
