#include <gtest/gtest.h>

#include <fstream>
#include <set>

#include "datasets/dataset.h"
#include "datasets/dataset_io.h"
#include "kb/synthetic_kb.h"

namespace docs::datasets {
namespace {

class DatasetsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new kb::SyntheticKb(kb::BuildSyntheticKb());
  }
  static void TearDownTestSuite() {
    delete kb_;
    kb_ = nullptr;
  }
  static kb::SyntheticKb* kb_;
};

kb::SyntheticKb* DatasetsTest::kb_ = nullptr;

void CheckDatasetInvariants(const Dataset& dataset) {
  ASSERT_FALSE(dataset.tasks.empty());
  ASSERT_EQ(dataset.domain_labels.size(), dataset.label_to_domain.size());
  for (const auto& task : dataset.tasks) {
    EXPECT_FALSE(task.text.empty());
    EXPECT_GE(task.num_choices(), 2u);
    EXPECT_LT(task.truth, task.num_choices());
    ASSERT_LT(task.label, dataset.domain_labels.size());
    EXPECT_EQ(task.true_domain, dataset.label_to_domain[task.label]);
  }
}

TEST_F(DatasetsTest, ItemShape) {
  auto dataset = MakeItemDataset(*kb_);
  EXPECT_EQ(dataset.name, "Item");
  EXPECT_EQ(dataset.tasks.size(), 360u);  // 4 domains x 90
  CheckDatasetInvariants(dataset);
  std::vector<size_t> per_label(4, 0);
  for (const auto& task : dataset.tasks) ++per_label[task.label];
  for (size_t count : per_label) EXPECT_EQ(count, 90u);
}

TEST_F(DatasetsTest, ItemTextIsHighlyTemplated) {
  // All NBA tasks share the same template prefix — the property that makes
  // LDA succeed on Item (Fig. 3(a)).
  auto dataset = MakeItemDataset(*kb_);
  for (const auto& task : dataset.tasks) {
    if (task.label != 0) continue;
    EXPECT_EQ(task.text.rfind("Which player wins more NBA championships", 0),
              0u);
  }
}

TEST_F(DatasetsTest, FourDomainShape) {
  auto dataset = MakeFourDomainDataset(*kb_);
  EXPECT_EQ(dataset.name, "4D");
  EXPECT_EQ(dataset.tasks.size(), 400u);
  CheckDatasetInvariants(dataset);
}

TEST_F(DatasetsTest, FourDomainHasCrossDomainLookalikes) {
  // The height-comparison trap: textually near-identical tasks in NBA and
  // Mountain (the paper's example of what defeats text-similarity methods).
  auto dataset = MakeFourDomainDataset(*kb_);
  bool nba_height = false, mountain_height = false;
  for (const auto& task : dataset.tasks) {
    if (task.text.rfind("Compare the height of", 0) == 0) {
      if (task.label == 0) nba_height = true;
      if (task.label == 3) mountain_height = true;
    }
  }
  EXPECT_TRUE(nba_height);
  EXPECT_TRUE(mountain_height);
}

TEST_F(DatasetsTest, FourDomainTemplateVariety) {
  auto dataset = MakeFourDomainDataset(*kb_);
  // Each domain uses at least 4 distinct template stems.
  for (size_t label = 0; label < 4; ++label) {
    std::set<std::string> stems;
    for (const auto& task : dataset.tasks) {
      if (task.label != label) continue;
      stems.insert(task.text.substr(0, 10));
    }
    EXPECT_GE(stems.size(), 4u) << "label " << label;
  }
}

TEST_F(DatasetsTest, QaShape) {
  auto dataset = MakeQaDataset(*kb_);
  EXPECT_EQ(dataset.name, "QA");
  EXPECT_EQ(dataset.tasks.size(), 1000u);
  CheckDatasetInvariants(dataset);
  // QA has multi-choice tasks beyond binary.
  bool has_three = false;
  for (const auto& task : dataset.tasks) {
    if (task.num_choices() >= 3) has_three = true;
  }
  EXPECT_TRUE(has_three);
}

TEST_F(DatasetsTest, QaCustomSize) {
  auto dataset = MakeQaDataset(*kb_, 120);
  EXPECT_EQ(dataset.tasks.size(), 120u);
}

TEST_F(DatasetsTest, SfvShape) {
  auto dataset = MakeSfvDataset(*kb_);
  EXPECT_EQ(dataset.name, "SFV");
  EXPECT_EQ(dataset.tasks.size(), 328u);
  CheckDatasetInvariants(dataset);
  // SFV tasks offer up to 6 choices collected from QA systems.
  size_t max_choices = 0;
  for (const auto& task : dataset.tasks) {
    max_choices = std::max(max_choices, task.num_choices());
  }
  EXPECT_GE(max_choices, 5u);
  EXPECT_LE(max_choices, 6u);
}

TEST_F(DatasetsTest, ChoicesAreDistinctStrings) {
  for (const auto& name : AllDatasetNames()) {
    auto dataset = MakeDatasetByName(name, *kb_);
    for (const auto& task : dataset.tasks) {
      std::set<std::string> unique(task.choices.begin(), task.choices.end());
      EXPECT_EQ(unique.size(), task.choices.size()) << name << ": " << task.text;
    }
  }
}

TEST_F(DatasetsTest, DeterministicGeneration) {
  auto a = MakeFourDomainDataset(*kb_, 2);
  auto b = MakeFourDomainDataset(*kb_, 2);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].text, b.tasks[i].text);
    EXPECT_EQ(a.tasks[i].truth, b.tasks[i].truth);
  }
}

TEST_F(DatasetsTest, MakeDatasetByName) {
  for (const auto& name : AllDatasetNames()) {
    EXPECT_FALSE(MakeDatasetByName(name, *kb_).tasks.empty()) << name;
  }
  EXPECT_TRUE(MakeDatasetByName("Nope", *kb_).tasks.empty());
}

TEST_F(DatasetsTest, TruthsAndDomainsAccessors) {
  auto dataset = MakeItemDataset(*kb_);
  auto truths = dataset.Truths();
  auto domains = dataset.TrueDomains();
  ASSERT_EQ(truths.size(), dataset.tasks.size());
  ASSERT_EQ(domains.size(), dataset.tasks.size());
  EXPECT_EQ(truths[0], dataset.tasks[0].truth);
  EXPECT_EQ(domains[0], dataset.tasks[0].true_domain);
}

TEST_F(DatasetsTest, TsvRoundTrip) {
  auto original = MakeItemDataset(*kb_);
  const std::string path = ::testing::TempDir() + "/item.tsv";
  ASSERT_TRUE(SaveDatasetTsv(original, path).ok());
  auto loaded = LoadDatasetTsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->name, original.name);
  EXPECT_EQ(loaded->domain_labels, original.domain_labels);
  EXPECT_EQ(loaded->label_to_domain, original.label_to_domain);
  ASSERT_EQ(loaded->tasks.size(), original.tasks.size());
  for (size_t i = 0; i < original.tasks.size(); ++i) {
    EXPECT_EQ(loaded->tasks[i].text, original.tasks[i].text);
    EXPECT_EQ(loaded->tasks[i].choices, original.tasks[i].choices);
    EXPECT_EQ(loaded->tasks[i].truth, original.tasks[i].truth);
    EXPECT_EQ(loaded->tasks[i].label, original.tasks[i].label);
    EXPECT_EQ(loaded->tasks[i].true_domain, original.tasks[i].true_domain);
  }
}

TEST_F(DatasetsTest, TsvRejectsMissingHeader) {
  const std::string path = ::testing::TempDir() + "/noheader.tsv";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "0\t0\ta|b\tsome text\n";
  }
  EXPECT_FALSE(LoadDatasetTsv(path).ok());
}

TEST_F(DatasetsTest, TsvRejectsBadRows) {
  const std::string path = ::testing::TempDir() + "/bad.tsv";
  const char* bad_rows[] = {
      "0\t5\ta|b\ttruth out of range",
      "7\t0\ta|b\tlabel out of range",
      "0\t0\tonly-one-choice\ttoo few choices",
      "0\t0\ta|b",  // missing text column
  };
  for (const char* row : bad_rows) {
    {
      std::ofstream out(path, std::ios::trunc);
      out << "# docstasks 1\n# label 0 3 X\n" << row << "\n";
    }
    EXPECT_FALSE(LoadDatasetTsv(path).ok()) << row;
  }
}

TEST_F(DatasetsTest, TsvSaveRejectsForbiddenCharacters) {
  Dataset dataset;
  dataset.name = "bad";
  dataset.domain_labels = {"X"};
  dataset.label_to_domain = {0};
  TaskSpec task;
  task.text = "contains\ttab";
  task.choices = {"a", "b"};
  dataset.tasks.push_back(task);
  EXPECT_FALSE(
      SaveDatasetTsv(dataset, ::testing::TempDir() + "/forbidden.tsv").ok());
}

}  // namespace
}  // namespace docs::datasets
