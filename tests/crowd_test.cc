#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "baselines/assigners.h"
#include "crowd/campaign.h"
#include "crowd/worker_pool.h"
#include "datasets/dataset.h"
#include "kb/synthetic_kb.h"

namespace docs::crowd {
namespace {

class CrowdTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new kb::SyntheticKb(kb::BuildSyntheticKb());
  }
  static void TearDownTestSuite() {
    delete kb_;
    kb_ = nullptr;
  }
  static kb::SyntheticKb* kb_;
};

kb::SyntheticKb* CrowdTest::kb_ = nullptr;

TEST(WorkerPoolTest, GeneratesRequestedWorkers) {
  WorkerPoolOptions options;
  options.num_workers = 50;
  auto workers = MakeWorkerPool(26, {1, 2}, options, 42);
  ASSERT_EQ(workers.size(), 50u);
  for (const auto& worker : workers) {
    ASSERT_EQ(worker.true_quality.size(), 26u);
    for (double q : worker.true_quality) {
      EXPECT_GE(q, 0.0);
      EXPECT_LE(q, 1.0);
    }
    EXPECT_GT(worker.activity, 0.0);
  }
}

TEST(WorkerPoolTest, NonSpammersHaveExpertDomains) {
  WorkerPoolOptions options;
  options.num_workers = 100;
  options.spammer_fraction = 0.0;
  auto workers = MakeWorkerPool(10, {0, 1, 2, 3}, options, 43);
  size_t with_expert = 0;
  for (const auto& worker : workers) {
    const double mx =
        *std::max_element(worker.true_quality.begin(), worker.true_quality.end());
    if (mx >= options.expert_min) ++with_expert;
  }
  EXPECT_EQ(with_expert, workers.size());
}

TEST(WorkerPoolTest, FocusDomainsBiasExpertise) {
  WorkerPoolOptions options;
  options.num_workers = 200;
  options.spammer_fraction = 0.0;
  options.focus_probability = 1.0;
  auto workers = MakeWorkerPool(26, {5}, options, 44);
  size_t expert_in_focus = 0;
  for (const auto& worker : workers) {
    if (worker.true_quality[5] >= options.expert_min) ++expert_in_focus;
  }
  // With focus_probability 1 every expert domain draw targets domain 5.
  EXPECT_GT(expert_in_focus, 150u);
}

TEST(WorkerPoolTest, DeterministicPerSeed) {
  WorkerPoolOptions options;
  options.num_workers = 10;
  auto a = MakeWorkerPool(4, {0}, options, 7);
  auto b = MakeWorkerPool(4, {0}, options, 7);
  for (size_t w = 0; w < 10; ++w) {
    EXPECT_EQ(a[w].true_quality, b[w].true_quality);
  }
}

TEST(GenerateAnswerTest, PerfectWorkerAlwaysCorrect) {
  SimulatedWorker worker;
  worker.true_quality = {1.0};
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(GenerateAnswer(worker, 0, 2, 4, rng), 2u);
  }
}

TEST(GenerateAnswerTest, HopelessWorkerNeverCorrect) {
  SimulatedWorker worker;
  worker.true_quality = {0.0};
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const size_t answer = GenerateAnswer(worker, 0, 2, 4, rng);
    EXPECT_NE(answer, 2u);
    EXPECT_LT(answer, 4u);
  }
}

TEST(GenerateAnswerTest, AccuracyMatchesQuality) {
  SimulatedWorker worker;
  worker.true_quality = {0.8, 0.4};
  Rng rng(3);
  int correct_d0 = 0, correct_d1 = 0;
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) {
    correct_d0 += GenerateAnswer(worker, 0, 1, 2, rng) == 1;
    correct_d1 += GenerateAnswer(worker, 1, 1, 2, rng) == 1;
  }
  EXPECT_NEAR(correct_d0 / static_cast<double>(trials), 0.8, 0.03);
  EXPECT_NEAR(correct_d1 / static_cast<double>(trials), 0.4, 0.03);
}

TEST_F(CrowdTest, CollectAnswersReachesTargetRedundancy) {
  auto dataset = datasets::MakeItemDataset(*kb_);
  WorkerPoolOptions pool_options;
  pool_options.num_workers = 80;
  auto workers = MakeWorkerPool(26, dataset.label_to_domain, pool_options, 9);
  CollectionOptions options;
  options.answers_per_task = 10;
  auto result = CollectAnswers(dataset, workers, options);
  EXPECT_EQ(result.answers.size(), dataset.tasks.size() * 10);
  std::vector<size_t> per_task(dataset.tasks.size(), 0);
  for (const auto& answer : result.answers) ++per_task[answer.task];
  for (size_t count : per_task) EXPECT_EQ(count, 10u);
}

TEST(GenerateAnswerTest, DifficultyPullsAccuracyTowardChance) {
  SimulatedWorker worker;
  worker.true_quality = {0.9};
  Rng rng(44);
  const int trials = 6000;
  auto accuracy_at = [&](double difficulty) {
    int correct = 0;
    for (int i = 0; i < trials; ++i) {
      correct +=
          GenerateAnswerWithDifficulty(worker, 0, 1, 2, difficulty, rng) == 1;
    }
    return correct / static_cast<double>(trials);
  };
  EXPECT_NEAR(accuracy_at(0.0), 0.9, 0.03);
  EXPECT_NEAR(accuracy_at(0.5), 0.9 * 0.5 + 0.5 * 0.5, 0.03);
  EXPECT_NEAR(accuracy_at(1.0), 0.5, 0.03);
}

TEST_F(CrowdTest, CollectionCostMatchesPaperArithmetic) {
  // Item: 360 tasks x 10 answers / 20 per HIT x $0.1 = $18 when every HIT is
  // full; partially-filled tail HITs can only add to the cost.
  auto dataset = datasets::MakeItemDataset(*kb_);
  WorkerPoolOptions pool_options;
  pool_options.num_workers = 80;
  auto workers = MakeWorkerPool(26, dataset.label_to_domain, pool_options, 12);
  CollectionOptions options;
  options.answers_per_task = 10;
  options.hit_size = 20;
  auto result = CollectAnswers(dataset, workers, options);
  EXPECT_GE(result.cost_dollars, 18.0 - 1e-9);
  EXPECT_LT(result.cost_dollars, 18.0 * 1.5);
  EXPECT_NEAR(result.cost_dollars, result.hits * 0.1, 1e-9);
}

TEST_F(CrowdTest, CollectAnswersNoDuplicateWorkerTaskPairs) {
  auto dataset = datasets::MakeItemDataset(*kb_);
  WorkerPoolOptions pool_options;
  pool_options.num_workers = 60;
  auto workers = MakeWorkerPool(26, dataset.label_to_domain, pool_options, 10);
  auto result = CollectAnswers(dataset, workers, {});
  std::set<std::pair<size_t, size_t>> seen;
  for (const auto& answer : result.answers) {
    EXPECT_TRUE(seen.insert({answer.worker, answer.task}).second);
  }
}

TEST_F(CrowdTest, CampaignRespectsBudgetAndNoRepeats) {
  auto dataset = datasets::MakeItemDataset(*kb_);
  WorkerPoolOptions pool_options;
  pool_options.num_workers = 70;
  auto workers = MakeWorkerPool(26, dataset.label_to_domain, pool_options, 11);

  std::vector<size_t> num_choices;
  for (const auto& task : dataset.tasks) num_choices.push_back(task.num_choices());
  baselines::RandomAssigner random_policy(num_choices, 1);
  baselines::AskItAssigner askit_policy(num_choices);

  CampaignOptions options;
  options.total_answers_per_policy = 600;
  options.tasks_per_policy_per_hit = 3;
  auto outcomes = RunAssignmentCampaign(
      dataset, workers, {&random_policy, &askit_policy}, options);
  ASSERT_EQ(outcomes.size(), 2u);
  for (const auto& outcome : outcomes) {
    EXPECT_EQ(outcome.answers_collected, 600u);
    EXPECT_EQ(outcome.inferred_choices.size(), dataset.tasks.size());
    EXPECT_GT(outcome.assignment_calls, 0u);
    EXPECT_GE(outcome.worst_assignment_seconds, 0.0);
  }
}

TEST_F(CrowdTest, TasksWithOneHotDomains) {
  auto dataset = datasets::MakeItemDataset(*kb_);
  auto tasks = TasksWithOneHotDomains(dataset, 26);
  ASSERT_EQ(tasks.size(), dataset.tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_NEAR(tasks[i].domain_vector[dataset.tasks[i].true_domain], 1.0,
                1e-12);
    EXPECT_EQ(tasks[i].num_choices, dataset.tasks[i].num_choices());
  }
}

}  // namespace
}  // namespace docs::crowd
