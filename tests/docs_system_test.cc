#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/docs_system.h"
#include "crowd/worker_pool.h"
#include "datasets/dataset.h"
#include "kb/synthetic_kb.h"

namespace docs::core {
namespace {

class DocsSystemTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new kb::SyntheticKb(kb::BuildSyntheticKb());
  }
  static void TearDownTestSuite() {
    delete kb_;
    kb_ = nullptr;
  }

  // Builds a DOCS instance over the Item dataset with golden tasks enabled.
  static std::unique_ptr<DocsSystem> MakeSystem(
      const datasets::Dataset& dataset, size_t golden_count = 10) {
    DocsSystemOptions options;
    options.golden_count = golden_count;
    options.reinfer_every = 50;
    auto system = std::make_unique<DocsSystem>(&kb_->knowledge_base, options);
    std::vector<TaskInput> inputs;
    for (const auto& task : dataset.tasks) {
      inputs.push_back({task.text, task.num_choices()});
    }
    auto truths = dataset.Truths();
    EXPECT_TRUE(system->AddTasks(inputs, &truths).ok());
    return system;
  }

  static kb::SyntheticKb* kb_;
};

kb::SyntheticKb* DocsSystemTest::kb_ = nullptr;

TEST_F(DocsSystemTest, AddTasksRunsDveAndSelectsGolden) {
  auto dataset = datasets::MakeItemDataset(*kb_);
  auto system = MakeSystem(dataset, 10);
  EXPECT_EQ(system->tasks().size(), dataset.tasks.size());
  EXPECT_EQ(system->golden_tasks().size(), 10u);
  for (const auto& task : system->tasks()) {
    double total = 0.0;
    for (double v : task.domain_vector) total += v;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_F(DocsSystemTest, AddTasksTwiceFails) {
  auto dataset = datasets::MakeItemDataset(*kb_);
  auto system = MakeSystem(dataset);
  std::vector<TaskInput> inputs = {{"extra task", 2}};
  EXPECT_FALSE(system->AddTasks(inputs).ok());
}

TEST_F(DocsSystemTest, RejectsSingleChoiceTasks) {
  DocsSystem system(&kb_->knowledge_base);
  std::vector<TaskInput> inputs = {{"bad", 1}};
  EXPECT_FALSE(system.AddTasks(inputs).ok());
}

TEST_F(DocsSystemTest, NewWorkerGetsGoldenTasksFirst) {
  auto dataset = datasets::MakeItemDataset(*kb_);
  auto system = MakeSystem(dataset, 8);
  const size_t worker = system->WorkerIndex("w0");
  auto selected = system->SelectTasks(worker, 5);
  ASSERT_EQ(selected.size(), 5u);
  std::set<size_t> golden(system->golden_tasks().begin(),
                          system->golden_tasks().end());
  for (size_t task : selected) EXPECT_TRUE(golden.count(task)) << task;
}

TEST_F(DocsSystemTest, GoldenPhaseEndsAfterAllGoldenAnswered) {
  auto dataset = datasets::MakeItemDataset(*kb_);
  auto system = MakeSystem(dataset, 6);
  const size_t worker = system->WorkerIndex("w0");
  // Answer all golden tasks (correctly).
  for (int round = 0; round < 3; ++round) {
    auto selected = system->SelectTasks(worker, 2);
    for (size_t task : selected) {
      system->OnAnswer(worker, task, dataset.tasks[task].truth);
    }
  }
  auto post = system->SelectTasks(worker, 5);
  std::set<size_t> golden(system->golden_tasks().begin(),
                          system->golden_tasks().end());
  for (size_t task : post) EXPECT_FALSE(golden.count(task)) << task;
}

TEST_F(DocsSystemTest, WorkerNeverReceivesSameTaskTwice) {
  auto dataset = datasets::MakeItemDataset(*kb_);
  auto system = MakeSystem(dataset, 4);
  const size_t worker = system->WorkerIndex("w0");
  std::set<size_t> received;
  for (int round = 0; round < 20; ++round) {
    auto selected = system->SelectTasks(worker, 3);
    for (size_t task : selected) {
      EXPECT_TRUE(received.insert(task).second) << "task repeated: " << task;
      system->OnAnswer(worker, task, 0);
    }
  }
}

TEST_F(DocsSystemTest, GoldenInitializationSeparatesExpertFromSpammer) {
  auto dataset = datasets::MakeItemDataset(*kb_);
  auto system = MakeSystem(dataset, 10);
  const auto canon =
      kb::CanonicalDomains::Resolve(kb_->knowledge_base.taxonomy());

  const size_t expert = system->WorkerIndex("expert");
  const size_t spammer = system->WorkerIndex("spammer");
  Rng rng(3);
  // The expert answers all golden tasks correctly, the spammer randomly.
  for (int round = 0; round < 5; ++round) {
    for (size_t task : system->SelectTasks(expert, 2)) {
      system->OnAnswer(expert, task, dataset.tasks[task].truth);
    }
    for (size_t task : system->SelectTasks(spammer, 2)) {
      system->OnAnswer(spammer, task, rng.UniformInt(2));
    }
  }
  const auto& q_expert = system->inference().worker_quality(expert);
  const auto& q_spammer = system->inference().worker_quality(spammer);
  EXPECT_GT(q_expert.quality[canon.sports], q_spammer.quality[canon.sports]);
}

TEST_F(DocsSystemTest, DMaxConfigurationSelectsMatchingDomain) {
  auto dataset = datasets::MakeItemDataset(*kb_);
  DocsSystemOptions options;
  options.golden_count = 0;  // skip golden phase
  options.selection_rule = SelectionRule::kDomainMax;
  options.display_name = "D-Max";
  DocsSystem system(&kb_->knowledge_base, options);
  std::vector<TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }
  ASSERT_TRUE(system.AddTasks(inputs).ok());
  EXPECT_EQ(system.name(), "D-Max");

  const auto canon =
      kb::CanonicalDomains::Resolve(kb_->knowledge_base.taxonomy());
  const size_t worker = system.WorkerIndex("food-expert");
  WorkerQuality quality;
  quality.quality.assign(26, 0.5);
  quality.quality[canon.food] = 0.98;
  quality.weight.assign(26, 10.0);
  // Seed via the store-loading path equivalent: direct quality override.
  ASSERT_TRUE(const_cast<IncrementalTruthInference&>(system.inference())
                  .SetWorkerQuality(worker, quality)
                  .ok());
  auto selected = system.SelectTasks(worker, 5);
  ASSERT_EQ(selected.size(), 5u);
  for (size_t task : selected) {
    EXPECT_EQ(dataset.tasks[task].true_domain, canon.food)
        << dataset.tasks[task].text;
  }
}

TEST_F(DocsSystemTest, UncertaintyRuleIgnoresWorkerAndPrefersOpenTasks) {
  auto dataset = datasets::MakeItemDataset(*kb_);
  DocsSystemOptions options;
  options.golden_count = 0;
  options.selection_rule = SelectionRule::kUncertainty;
  options.display_name = "uncertainty";
  DocsSystem system(&kb_->knowledge_base, options);
  std::vector<TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }
  ASSERT_TRUE(system.AddTasks(inputs).ok());
  const size_t w0 = system.WorkerIndex("w0");
  const size_t w1 = system.WorkerIndex("w1");

  // Pour consistent answers into task 3 so its entropy collapses.
  for (const char* id : {"a", "b", "c", "d", "e", "f"}) {
    system.OnAnswer(system.WorkerIndex(id), 3, 0);
  }
  auto selected = system.SelectTasks(w0, 10);
  for (size_t task : selected) EXPECT_NE(task, 3u);
  // Worker identity does not change the ranking under this rule.
  EXPECT_EQ(selected, system.SelectTasks(w1, 10));
}

TEST_F(DocsSystemTest, QualityBlindRuleNeutralizesDomainMatch) {
  auto dataset = datasets::MakeItemDataset(*kb_);
  const auto canon =
      kb::CanonicalDomains::Resolve(kb_->knowledge_base.taxonomy());

  auto build = [&](SelectionRule rule) {
    DocsSystemOptions options;
    options.golden_count = 0;
    options.selection_rule = rule;
    auto system = std::make_unique<DocsSystem>(&kb_->knowledge_base, options);
    std::vector<TaskInput> inputs;
    for (const auto& task : dataset.tasks) {
      inputs.push_back({task.text, task.num_choices()});
    }
    EXPECT_TRUE(system->AddTasks(inputs).ok());
    const size_t worker = system->WorkerIndex("expert");
    WorkerQuality quality;
    quality.quality.assign(26, 0.5);
    quality.quality[canon.food] = 0.98;
    quality.weight.assign(26, 10.0);
    EXPECT_TRUE(const_cast<IncrementalTruthInference&>(system->inference())
                    .SetWorkerQuality(worker, quality)
                    .ok());
    return system;
  };

  // Full benefit routes the food expert to food tasks; the quality-blind
  // ablation has no basis to prefer them.
  auto full = build(SelectionRule::kBenefit);
  auto blind = build(SelectionRule::kQualityBlind);
  const size_t w_full = full->WorkerIndex("expert");
  const size_t w_blind = blind->WorkerIndex("expert");
  auto count_food = [&](const std::vector<size_t>& selected) {
    size_t food = 0;
    for (size_t task : selected) {
      food += dataset.tasks[task].true_domain == canon.food;
    }
    return food;
  };
  EXPECT_GT(count_food(full->SelectTasks(w_full, 10)),
            count_food(blind->SelectTasks(w_blind, 10)));
}

TEST_F(DocsSystemTest, PersistenceRoundTripViaWorkerStore) {
  auto dataset = datasets::MakeItemDataset(*kb_);
  auto system = MakeSystem(dataset, 5);
  const size_t worker = system->WorkerIndex("w0");
  for (int round = 0; round < 3; ++round) {
    for (size_t task : system->SelectTasks(worker, 2)) {
      system->OnAnswer(worker, task, dataset.tasks[task].truth);
    }
  }
  auto store = storage::WorkerStore::InMemory(26);
  ASSERT_TRUE(system->SaveWorker("w0", &store).ok());

  // A new session: the returning worker skips the golden phase and keeps
  // her profile.
  auto fresh = MakeSystem(dataset, 5);
  ASSERT_TRUE(fresh->LoadWorker("w0", store).ok());
  const size_t reloaded = fresh->WorkerIndex("w0");
  auto selected = fresh->SelectTasks(reloaded, 3);
  std::set<size_t> golden(fresh->golden_tasks().begin(),
                          fresh->golden_tasks().end());
  size_t golden_hits = 0;
  for (size_t task : selected) golden_hits += golden.count(task);
  EXPECT_LT(golden_hits, selected.size());  // not forced through golden
  const auto& quality = fresh->inference().worker_quality(reloaded);
  EXPECT_EQ(quality.quality.size(), 26u);
}

TEST_F(DocsSystemTest, LoadWorkerRejectsMismatchedDomainCount) {
  auto dataset = datasets::MakeItemDataset(*kb_);
  auto system = MakeSystem(dataset, 5);

  // A store written against an older KB revision with fewer domains: its
  // records must be rejected up front, not fed into the inference state.
  auto stale_store = storage::WorkerStore::InMemory(7);
  auto record = storage::WorkerQualityRecord::Fresh(7, 0.9);
  ASSERT_TRUE(stale_store.Put("veteran", record).ok());

  const Status status = system->LoadWorker("veteran", stale_store);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // The rejected load must not have left a half-registered profile behind:
  // the worker still goes through the golden probe like any newcomer.
  const size_t worker = system->WorkerIndex("veteran");
  auto selected = system->SelectTasks(worker, 3);
  std::set<size_t> golden(system->golden_tasks().begin(),
                          system->golden_tasks().end());
  for (size_t task : selected) EXPECT_TRUE(golden.count(task)) << task;
}

TEST_F(DocsSystemTest, LoadWorkerBeforeAddTasksFails) {
  DocsSystem system(&kb_->knowledge_base);
  auto store = storage::WorkerStore::InMemory(26);
  auto record = storage::WorkerQualityRecord::Fresh(26, 0.8);
  ASSERT_TRUE(store.Put("early-bird", record).ok());
  EXPECT_EQ(system.LoadWorker("early-bird", store).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(DocsSystemTest, LoadUnknownWorkerFails) {
  auto dataset = datasets::MakeItemDataset(*kb_);
  auto system = MakeSystem(dataset);
  auto store = storage::WorkerStore::InMemory(26);
  EXPECT_FALSE(system->LoadWorker("ghost", store).ok());
}

TEST_F(DocsSystemTest, SaveUnknownWorkerFails) {
  auto dataset = datasets::MakeItemDataset(*kb_);
  auto system = MakeSystem(dataset);
  auto store = storage::WorkerStore::InMemory(26);
  EXPECT_FALSE(system->SaveWorker("ghost", &store).ok());
}

TEST_F(DocsSystemTest, InferredChoicesCoversAllTasks) {
  auto dataset = datasets::MakeItemDataset(*kb_);
  auto system = MakeSystem(dataset, 0);
  EXPECT_EQ(system->InferredChoices().size(), dataset.tasks.size());
}

}  // namespace
}  // namespace docs::core
