// Unit and stress tests for the deterministic thread pool
// (src/common/parallel.h): chunk math, full index coverage, thread-count
// invariance of chunk-ordered reductions, and reuse across many regions.
// scripts/ci.sh also runs this binary under TSan (DOCS_SANITIZE=thread).

#include "common/parallel.h"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace docs {
namespace {

TEST(ChunkMathTest, NumChunksCoversIndexSpace) {
  EXPECT_EQ(NumChunks(0), 0u);
  EXPECT_EQ(NumChunks(1), 1u);
  EXPECT_EQ(NumChunks(kParallelGrain), 1u);
  EXPECT_EQ(NumChunks(kParallelGrain + 1), 2u);
  EXPECT_EQ(NumChunks(10, 3), 4u);
  // grain 0 is treated as 1 rather than dividing by zero.
  EXPECT_EQ(NumChunks(5, 0), 5u);
}

TEST(ThreadPoolTest, ReportsRequestedThreadCount) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  ThreadPool sequential(1);
  EXPECT_EQ(sequential.num_threads(), 1u);
  ThreadPool hardware(0);
  EXPECT_GE(hardware.num_threads(), 1u);
}

TEST(ThreadPoolTest, RunExecutesEveryChunkExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    ThreadPool pool(threads);
    const size_t num_chunks = 157;
    std::vector<std::atomic<uint32_t>> hits(num_chunks);
    for (auto& h : hits) h.store(0);
    pool.Run(num_chunks, [&](size_t c) { hits[c].fetch_add(1); });
    for (size_t c = 0; c < num_chunks; ++c) {
      EXPECT_EQ(hits[c].load(), 1u) << "chunk " << c << ", " << threads
                                    << " threads";
    }
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyRegions) {
  ThreadPool pool(4);
  for (size_t round = 0; round < 200; ++round) {
    std::atomic<size_t> sum{0};
    const size_t chunks = 1 + round % 13;
    pool.Run(chunks, [&](size_t c) { sum.fetch_add(c + 1); });
    EXPECT_EQ(sum.load(), chunks * (chunks + 1) / 2) << "round " << round;
  }
}

TEST(ParallelForTest, VisitsEveryIndexOnceForAnyThreadCount) {
  const size_t n = 1000;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<uint32_t>> hits(n);
    for (auto& h : hits) h.store(0);
    ParallelFor(&pool, n, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
    }
  }
}

TEST(ParallelForTest, NullPoolRunsSequentially) {
  std::vector<size_t> order;
  ParallelFor(nullptr, 40, [&](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 40u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelForTest, SlotWritesMatchSequentialBaseline) {
  const size_t n = 513;  // deliberately not a multiple of the grain
  std::vector<double> expected(n);
  for (size_t i = 0; i < n; ++i) {
    expected[i] = 1.0 / (1.0 + static_cast<double>(i));
  }
  for (size_t threads : {size_t{2}, size_t{4}, size_t{8}}) {
    ThreadPool pool(threads);
    std::vector<double> got(n, 0.0);
    ParallelFor(&pool, n,
                [&](size_t i) { got[i] = 1.0 / (1.0 + static_cast<double>(i)); });
    EXPECT_EQ(got, expected);
  }
}

// The floating-point core of the determinism contract: a chunk-ordered
// reduction over values whose sum is order-sensitive in double precision is
// bit-identical for every thread count (and for the sequential execution).
TEST(ParallelReduceTest, ChunkOrderedSumIsThreadCountInvariant) {
  const size_t n = 4096;
  std::vector<double> values(n);
  // Wildly varying magnitudes make double addition order-sensitive.
  for (size_t i = 0; i < n; ++i) {
    values[i] = (i % 2 == 0 ? 1.0 : -1.0) *
                std::pow(10.0, static_cast<double>(i % 17) - 8.0) *
                (1.0 + static_cast<double>(i) * 1e-5);
  }
  auto chunk_sum = [&](size_t begin, size_t end, double& partial) {
    for (size_t i = begin; i < end; ++i) partial += values[i];
  };
  auto merge = [](double& acc, const double& partial) { acc += partial; };

  double sequential = 0.0;
  ParallelReduce(nullptr, n, sequential, chunk_sum, merge);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{3}, size_t{4},
                         size_t{8}}) {
    ThreadPool pool(threads);
    double parallel = 0.0;
    ParallelReduce(&pool, n, parallel, chunk_sum, merge);
    // Bitwise equality, not EXPECT_DOUBLE_EQ: the whole point is that the
    // reduction tree does not depend on the thread count.
    EXPECT_EQ(parallel, sequential) << threads << " threads";
  }
}

TEST(ParallelReduceTest, VectorPartialsMergeInChunkOrder) {
  const size_t n = 200;
  struct Partial {
    std::vector<size_t> seen;
  };
  ThreadPool pool(4);
  Partial result;
  ParallelReduce(
      &pool, n, result,
      [](size_t begin, size_t end, Partial& p) {
        for (size_t i = begin; i < end; ++i) p.seen.push_back(i);
      },
      [](Partial& acc, const Partial& p) {
        acc.seen.insert(acc.seen.end(), p.seen.begin(), p.seen.end());
      });
  // Chunk-ordered merging of in-order chunks reconstructs 0..n-1 exactly.
  ASSERT_EQ(result.seen.size(), n);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(result.seen[i], i);
}

TEST(ThreadPoolTest, StressManySmallRegions) {
  ThreadPool pool(8);
  std::atomic<uint64_t> total{0};
  for (size_t round = 0; round < 500; ++round) {
    pool.Run(16, [&](size_t c) { total.fetch_add(c); });
  }
  EXPECT_EQ(total.load(), 500ull * (15 * 16 / 2));
}

}  // namespace
}  // namespace docs
