// Unit and stress tests for the deterministic thread pool
// (src/common/parallel.h): chunk math, full index coverage, thread-count
// invariance of chunk-ordered reductions, and reuse across many regions.
// scripts/ci.sh also runs this binary under TSan (DOCS_SANITIZE=thread).

#include "common/parallel.h"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace docs {
namespace {

TEST(ChunkMathTest, NumChunksCoversIndexSpace) {
  EXPECT_EQ(NumChunks(0), 0u);
  EXPECT_EQ(NumChunks(1), 1u);
  EXPECT_EQ(NumChunks(kParallelGrain), 1u);
  EXPECT_EQ(NumChunks(kParallelGrain + 1), 2u);
  EXPECT_EQ(NumChunks(10, 3), 4u);
  // grain 0 is treated as 1 rather than dividing by zero.
  EXPECT_EQ(NumChunks(5, 0), 5u);
}

TEST(ThreadPoolTest, ReportsRequestedThreadCount) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  ThreadPool sequential(1);
  EXPECT_EQ(sequential.num_threads(), 1u);
  ThreadPool hardware(0);
  EXPECT_GE(hardware.num_threads(), 1u);
}

TEST(ThreadPoolTest, RunExecutesEveryChunkExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    ThreadPool pool(threads);
    const size_t num_chunks = 157;
    std::vector<std::atomic<uint32_t>> hits(num_chunks);
    for (auto& h : hits) h.store(0);
    pool.Run(num_chunks, [&](size_t c) { hits[c].fetch_add(1); });
    for (size_t c = 0; c < num_chunks; ++c) {
      EXPECT_EQ(hits[c].load(), 1u) << "chunk " << c << ", " << threads
                                    << " threads";
    }
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyRegions) {
  ThreadPool pool(4);
  for (size_t round = 0; round < 200; ++round) {
    std::atomic<size_t> sum{0};
    const size_t chunks = 1 + round % 13;
    pool.Run(chunks, [&](size_t c) { sum.fetch_add(c + 1); });
    EXPECT_EQ(sum.load(), chunks * (chunks + 1) / 2) << "round " << round;
  }
}

TEST(ParallelForTest, VisitsEveryIndexOnceForAnyThreadCount) {
  const size_t n = 1000;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<uint32_t>> hits(n);
    for (auto& h : hits) h.store(0);
    ParallelFor(&pool, n, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
    }
  }
}

TEST(ParallelForTest, NullPoolRunsSequentially) {
  std::vector<size_t> order;
  ParallelFor(nullptr, 40, [&](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 40u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelForTest, SlotWritesMatchSequentialBaseline) {
  const size_t n = 513;  // deliberately not a multiple of the grain
  std::vector<double> expected(n);
  for (size_t i = 0; i < n; ++i) {
    expected[i] = 1.0 / (1.0 + static_cast<double>(i));
  }
  for (size_t threads : {size_t{2}, size_t{4}, size_t{8}}) {
    ThreadPool pool(threads);
    std::vector<double> got(n, 0.0);
    ParallelFor(&pool, n,
                [&](size_t i) { got[i] = 1.0 / (1.0 + static_cast<double>(i)); });
    EXPECT_EQ(got, expected);
  }
}

// The floating-point core of the determinism contract: a chunk-ordered
// reduction over values whose sum is order-sensitive in double precision is
// bit-identical for every thread count (and for the sequential execution).
TEST(ParallelReduceTest, ChunkOrderedSumIsThreadCountInvariant) {
  const size_t n = 4096;
  std::vector<double> values(n);
  // Wildly varying magnitudes make double addition order-sensitive.
  for (size_t i = 0; i < n; ++i) {
    values[i] = (i % 2 == 0 ? 1.0 : -1.0) *
                std::pow(10.0, static_cast<double>(i % 17) - 8.0) *
                (1.0 + static_cast<double>(i) * 1e-5);
  }
  auto chunk_sum = [&](size_t begin, size_t end, double& partial) {
    for (size_t i = begin; i < end; ++i) partial += values[i];
  };
  auto merge = [](double& acc, const double& partial) { acc += partial; };

  double sequential = 0.0;
  ParallelReduce(nullptr, n, sequential, chunk_sum, merge);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{3}, size_t{4},
                         size_t{8}}) {
    ThreadPool pool(threads);
    double parallel = 0.0;
    ParallelReduce(&pool, n, parallel, chunk_sum, merge);
    // Bitwise equality, not EXPECT_DOUBLE_EQ: the whole point is that the
    // reduction tree does not depend on the thread count.
    EXPECT_EQ(parallel, sequential) << threads << " threads";
  }
}

TEST(ParallelReduceTest, VectorPartialsMergeInChunkOrder) {
  const size_t n = 200;
  struct Partial {
    std::vector<size_t> seen;
  };
  ThreadPool pool(4);
  Partial result;
  ParallelReduce(
      &pool, n, result,
      [](size_t begin, size_t end, Partial& p) {
        for (size_t i = begin; i < end; ++i) p.seen.push_back(i);
      },
      [](Partial& acc, const Partial& p) {
        acc.seen.insert(acc.seen.end(), p.seen.begin(), p.seen.end());
      });
  // Chunk-ordered merging of in-order chunks reconstructs 0..n-1 exactly.
  ASSERT_EQ(result.seen.size(), n);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(result.seen[i], i);
}

TEST(ThreadPoolTest, StressManySmallRegions) {
  ThreadPool pool(8);
  std::atomic<uint64_t> total{0};
  for (size_t round = 0; round < 500; ++round) {
    pool.Run(16, [&](size_t c) { total.fetch_add(c); });
  }
  EXPECT_EQ(total.load(), 500ull * (15 * 16 / 2));
}

// Regression stress for the straggler race: with far more threads than
// chunks, most workers wake up, find every chunk already claimed, and run
// nothing. Before chunk claims were generation-checked, a worker that
// stalled between picking up a job and its first claim could — once the
// next Run() reset the chunk counter — claim a chunk of the NEW job and
// execute it through the dangling fn of the OLD one (whose stack lambda was
// already destroyed). Back-to-back tiny regions whose bodies capture
// round-owned stack state make any such cross-talk a visible wrong value
// here and a use-after-free under ASan/TSan (scripts/ci.sh runs this binary
// under both).
TEST(ThreadPoolTest, StressBackToBackTinyRegionsWithDistinctBodies) {
  ThreadPool pool(8);
  for (size_t round = 0; round < 2000; ++round) {
    const size_t chunks = 2 + round % 3;
    std::vector<uint64_t> slots(chunks, 0);
    const uint64_t stamp = round * 1000003ull + 1;
    pool.Run(chunks, [&slots, stamp](size_t c) { slots[c] = stamp + c; });
    for (size_t c = 0; c < chunks; ++c) {
      ASSERT_EQ(slots[c], stamp + c) << "round " << round << " chunk " << c;
    }
  }
}

TEST(ThreadPoolTest, RethrowsFirstExceptionAndStaysUsable) {
  ThreadPool pool(4);
  // Throwing chunks may land on worker threads or the caller; either way the
  // exception must surface from Run() instead of terminating the process,
  // and every non-throwing chunk still runs exactly once.
  std::atomic<size_t> ran{0};
  EXPECT_THROW(pool.Run(64,
                        [&](size_t c) {
                          if (c % 7 == 3) throw std::runtime_error("chunk");
                          ran.fetch_add(1);
                        }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 55u);  // 9 of the 64 chunks have c % 7 == 3
  // The failed region reset the pool state cleanly: later regions work.
  std::atomic<uint64_t> sum{0};
  pool.Run(32, [&](size_t c) { sum.fetch_add(c); });
  EXPECT_EQ(sum.load(), 32ull * 31 / 2);
}

TEST(ThreadPoolTest, InlinePathPropagatesExceptions) {
  ThreadPool pool(1);  // no workers: chunks run inline on the caller
  EXPECT_THROW(pool.Run(4, [](size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  std::atomic<uint64_t> sum{0};
  pool.Run(4, [&](size_t c) { sum.fetch_add(c); });
  EXPECT_EQ(sum.load(), 6u);
}

}  // namespace
}  // namespace docs
