#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "common/math_utils.h"
#include "common/rng.h"
#include "core/domain_vector.h"
#include "core/golden_selection.h"
#include "core/task_assignment.h"
#include "core/truth_inference.h"
#include "kb/synthetic_kb.h"
#include "nlp/entity_linker.h"
#include "storage/worker_store.h"

namespace docs {
namespace {

using core::Answer;
using core::EntityObservation;
using core::Task;
using core::WorkerQuality;

std::vector<EntityObservation> RandomEntities(Rng& rng, size_t max_entities,
                                              size_t max_candidates,
                                              size_t m) {
  const size_t num_entities = 1 + rng.UniformInt(max_entities);
  std::vector<EntityObservation> entities(num_entities);
  for (auto& entity : entities) {
    const size_t c = 1 + rng.UniformInt(max_candidates);
    entity.link_probabilities = rng.Dirichlet(c, 1.0);
    entity.indicators.resize(c);
    for (auto& h : entity.indicators) {
      h.resize(m);
      for (auto& bit : h) bit = rng.Bernoulli(0.4) ? 1 : 0;
    }
  }
  return entities;
}

// --- DVE properties -------------------------------------------------------------

class DvePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DvePropertyTest, EntityOrderInvariance) {
  // Equation 1 is symmetric in the entities, so Algorithm 1 must be too.
  Rng rng(GetParam() * 947 + 5);
  const size_t m = 2 + rng.UniformInt(5);
  auto entities = RandomEntities(rng, 4, 4, m);
  auto forward = core::ComputeDomainVector(entities, m);
  std::reverse(entities.begin(), entities.end());
  auto backward = core::ComputeDomainVector(entities, m);
  for (size_t k = 0; k < m; ++k) {
    EXPECT_NEAR(forward[k], backward[k], 1e-10);
  }
}

TEST_P(DvePropertyTest, DeterministicRecomputation) {
  Rng rng(GetParam() * 653 + 11);
  const size_t m = 2 + rng.UniformInt(4);
  auto entities = RandomEntities(rng, 3, 5, m);
  auto a = core::ComputeDomainVector(entities, m);
  auto b = core::ComputeDomainVector(entities, m);
  EXPECT_EQ(a, b);
}

TEST_P(DvePropertyTest, MassNeverExceedsOne) {
  Rng rng(GetParam() * 379 + 23);
  const size_t m = 2 + rng.UniformInt(6);
  auto entities = RandomEntities(rng, 5, 4, m);
  auto r = core::ComputeDomainVector(entities, m);
  EXPECT_LE(Sum(r), 1.0 + 1e-9);
  for (double v : r) EXPECT_GE(v, -1e-12);
}

TEST_P(DvePropertyTest, CertainLinkingCollapsesToNormalizedIndicator) {
  // One entity with a single candidate: r must equal h / sum(h).
  Rng rng(GetParam() * 149 + 31);
  const size_t m = 2 + rng.UniformInt(5);
  EntityObservation entity;
  entity.link_probabilities = {1.0};
  entity.indicators.resize(1);
  entity.indicators[0].resize(m);
  uint32_t total = 0;
  for (auto& bit : entity.indicators[0]) {
    bit = rng.Bernoulli(0.5) ? 1 : 0;
    total += bit;
  }
  auto r = core::ComputeDomainVector({entity}, m);
  for (size_t k = 0; k < m; ++k) {
    const double expected =
        total == 0 ? 0.0
                   : static_cast<double>(entity.indicators[0][k]) / total;
    EXPECT_NEAR(r[k], expected, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DvePropertyTest, ::testing::Range(0, 20));

// --- TI properties -------------------------------------------------------------

class TiPropertyTest : public ::testing::TestWithParam<int> {};

struct TiInstance {
  std::vector<Task> tasks;
  std::vector<Answer> answers;
  size_t num_workers;
};

TiInstance RandomTiInstance(Rng& rng) {
  TiInstance instance;
  const size_t m = 2 + rng.UniformInt(3);
  const size_t n = 5 + rng.UniformInt(15);
  instance.num_workers = 4 + rng.UniformInt(8);
  for (size_t i = 0; i < n; ++i) {
    Task task;
    task.domain_vector = rng.Dirichlet(m, 0.7);
    task.num_choices = 2 + rng.UniformInt(2);
    instance.tasks.push_back(std::move(task));
  }
  for (size_t i = 0; i < n; ++i) {
    std::vector<size_t> workers(instance.num_workers);
    for (size_t w = 0; w < workers.size(); ++w) workers[w] = w;
    rng.Shuffle(workers);
    const size_t redundancy =
        std::min<size_t>(3 + rng.UniformInt(3), workers.size());
    for (size_t a = 0; a < redundancy; ++a) {
      instance.answers.push_back(
          {i, workers[a], rng.UniformInt(instance.tasks[i].num_choices)});
    }
  }
  return instance;
}

TEST_P(TiPropertyTest, AnswerOrderInvariance) {
  Rng rng(GetParam() * 211 + 3);
  auto instance = RandomTiInstance(rng);
  core::TruthInference engine;
  auto a = engine.Run(instance.tasks, instance.num_workers, instance.answers);
  rng.Shuffle(instance.answers);
  auto b = engine.Run(instance.tasks, instance.num_workers, instance.answers);
  for (size_t i = 0; i < instance.tasks.size(); ++i) {
    EXPECT_LT(L1Distance(a.task_truth[i], b.task_truth[i]), 1e-9);
  }
}

TEST_P(TiPropertyTest, ChoiceRelabelingEquivariance) {
  // Swapping choice labels 0 <-> 1 on every answer swaps the truth
  // posterior entries of binary tasks.
  Rng rng(GetParam() * 389 + 7);
  auto instance = RandomTiInstance(rng);
  for (auto& task : instance.tasks) task.num_choices = 2;
  for (auto& answer : instance.answers) answer.choice %= 2;
  core::TruthInference engine;
  auto base = engine.Run(instance.tasks, instance.num_workers,
                         instance.answers);
  auto flipped_answers = instance.answers;
  for (auto& answer : flipped_answers) answer.choice = 1 - answer.choice;
  auto flipped = engine.Run(instance.tasks, instance.num_workers,
                            flipped_answers);
  for (size_t i = 0; i < instance.tasks.size(); ++i) {
    EXPECT_NEAR(base.task_truth[i][0], flipped.task_truth[i][1], 1e-9);
    EXPECT_NEAR(base.task_truth[i][1], flipped.task_truth[i][0], 1e-9);
  }
}

TEST_P(TiPropertyTest, QualitiesStayInUnitInterval) {
  Rng rng(GetParam() * 467 + 13);
  auto instance = RandomTiInstance(rng);
  core::TruthInference engine;
  auto result =
      engine.Run(instance.tasks, instance.num_workers, instance.answers);
  for (const auto& worker : result.worker_quality) {
    for (double q : worker.quality) {
      EXPECT_GE(q, -1e-12);
      EXPECT_LE(q, 1.0 + 1e-12);
    }
    for (double u : worker.weight) EXPECT_GE(u, -1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TiPropertyTest, ::testing::Range(0, 15));

// --- OTA properties --------------------------------------------------------------

class OtaPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(OtaPropertyTest, Theorem3IsConsistentWithBatchRecomputation) {
  // Applying Theorem 3 for a new answer must equal recomputing M from the
  // enlarged answer set (Eqs. 3-4) — the paper derives Theorem 3 from them.
  Rng rng(GetParam() * 769 + 29);
  const size_t m = 2 + rng.UniformInt(3);
  Task task;
  task.domain_vector = rng.Dirichlet(m, 1.0);
  task.num_choices = 2 + rng.UniformInt(2);

  const size_t num_workers = 5;
  std::vector<WorkerQuality> qualities(num_workers);
  for (auto& q : qualities) {
    q.quality.resize(m);
    for (auto& v : q.quality) v = rng.UniformDoubleRange(0.2, 0.95);
    q.weight.assign(m, 1.0);
  }
  std::vector<Answer> answers;
  for (size_t w = 0; w + 1 < num_workers; ++w) {
    answers.push_back({0, w, rng.UniformInt(task.num_choices)});
  }
  const double clamp = 0.01;
  Matrix before = core::ComputeTruthMatrix(task, answers, qualities, clamp);

  const size_t new_choice = rng.UniformInt(task.num_choices);
  Matrix via_theorem3 = core::UpdatedTruthMatrix(
      task, before, qualities[num_workers - 1].quality, new_choice, clamp);
  answers.push_back({0, num_workers - 1, new_choice});
  Matrix via_batch = core::ComputeTruthMatrix(task, answers, qualities, clamp);
  EXPECT_LT(via_theorem3.MaxAbsDiff(via_batch), 1e-9);
}

TEST_P(OtaPropertyTest, BenefitShrinksAsConfidenceGrows) {
  // Repeatedly applying consistent expert answers drives the benefit toward
  // zero — confident tasks stop being worth assigning (Section 5.1).
  Rng rng(GetParam() * 331 + 41);
  const size_t m = 3;
  Task task;
  task.domain_vector = rng.Dirichlet(m, 1.0);
  task.num_choices = 2;
  Matrix matrix(m, 2, 0.5);
  std::vector<double> quality(m);
  for (auto& q : quality) q = rng.UniformDoubleRange(0.75, 0.95);

  double previous_benefit = 1e9;
  for (int step = 0; step < 6; ++step) {
    std::vector<double> s = matrix.LeftMultiply(task.domain_vector);
    NormalizeInPlace(s);
    const double benefit = core::Benefit(task, matrix, s, quality);
    EXPECT_LE(benefit, previous_benefit + 1e-9);
    previous_benefit = benefit;
    matrix = core::UpdatedTruthMatrix(task, matrix, quality, 0);
  }
  EXPECT_LT(previous_benefit, 0.05);
}

TEST_P(OtaPropertyTest, SelectTopKStableUnderEligibleSubsets) {
  // Restricting eligibility to the selected set re-selects the same tasks.
  Rng rng(GetParam() * 503 + 59);
  const size_t n = 12, m = 3;
  std::vector<Task> tasks(n);
  std::vector<Matrix> matrices;
  std::vector<std::vector<double>> truths;
  for (auto& task : tasks) {
    task.domain_vector = rng.Dirichlet(m, 1.0);
    task.num_choices = 2;
    Matrix matrix(m, 2, 0.0);
    for (size_t d = 0; d < m; ++d) matrix.SetRow(d, rng.Dirichlet(2, 1.0));
    auto s = matrix.LeftMultiply(task.domain_vector);
    NormalizeInPlace(s);
    matrices.push_back(std::move(matrix));
    truths.push_back(std::move(s));
  }
  std::vector<double> quality(m);
  for (auto& q : quality) q = rng.UniformDoubleRange(0.3, 0.95);
  core::TaskAssigner assigner;
  std::vector<uint8_t> all(n, 1);
  auto selected = assigner.SelectTopK(tasks, matrices, truths, quality, all, 4);
  std::vector<uint8_t> narrowed(n, 0);
  for (size_t idx : selected) narrowed[idx] = 1;
  auto reselected =
      assigner.SelectTopK(tasks, matrices, truths, quality, narrowed, 4);
  EXPECT_EQ(selected, reselected);
}

INSTANTIATE_TEST_SUITE_P(Sweep, OtaPropertyTest, ::testing::Range(0, 15));

// --- Theorem 1 merge properties ---------------------------------------------------

class MergePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MergePropertyTest, MergeIsAssociativeOnWeights) {
  // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c): the weighted mean of Theorem 1 does not
  // depend on merge bracketing, so worker profiles are session-order safe.
  Rng rng(GetParam() * 607 + 71);
  const size_t m = 3;
  auto random_record = [&]() {
    storage::WorkerQualityRecord record;
    record.quality.resize(m);
    record.weight.resize(m);
    for (size_t k = 0; k < m; ++k) {
      record.quality[k] = rng.UniformDouble();
      record.weight[k] = rng.UniformDoubleRange(0.1, 10.0);
    }
    return record;
  };
  auto a = random_record(), b = random_record(), c = random_record();

  auto left = a;
  left.MergeTheorem1(b);
  left.MergeTheorem1(c);

  auto bc = b;
  bc.MergeTheorem1(c);
  auto right = a;
  right.MergeTheorem1(bc);

  for (size_t k = 0; k < m; ++k) {
    EXPECT_NEAR(left.quality[k], right.quality[k], 1e-9);
    EXPECT_NEAR(left.weight[k], right.weight[k], 1e-9);
  }
}

TEST_P(MergePropertyTest, MergeEqualsPooledRecomputation) {
  // Merging (q1, u1) and (q2, u2) equals recomputing the quality over the
  // union of the underlying answer masses — the claim of Theorem 1.
  Rng rng(GetParam() * 911 + 83);
  const double u1 = rng.UniformDoubleRange(0.5, 8.0);
  const double u2 = rng.UniformDoubleRange(0.5, 8.0);
  const double correct1 = rng.UniformDouble() * u1;
  const double correct2 = rng.UniformDouble() * u2;
  storage::WorkerQualityRecord first;
  first.quality = {correct1 / u1};
  first.weight = {u1};
  storage::WorkerQualityRecord second;
  second.quality = {correct2 / u2};
  second.weight = {u2};
  first.MergeTheorem1(second);
  EXPECT_NEAR(first.quality[0], (correct1 + correct2) / (u1 + u2), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MergePropertyTest, ::testing::Range(0, 15));

// --- Golden selection properties --------------------------------------------------

class GoldenPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GoldenPropertyTest, CountsAreDeterministicAndComplete) {
  Rng rng(GetParam() * 271 + 97);
  const size_t m = 2 + rng.UniformInt(10);
  const size_t n_prime = 1 + rng.UniformInt(40);
  auto tau = rng.Dirichlet(m, 1.5);
  auto a = core::ApproximateGoldenCounts(tau, n_prime);
  auto b = core::ApproximateGoldenCounts(tau, n_prime);
  EXPECT_EQ(a, b);
  size_t total = 0;
  for (size_t c : a) total += c;
  EXPECT_EQ(total, n_prime);
  EXPECT_TRUE(std::isfinite(core::GoldenObjective(a, tau)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, GoldenPropertyTest, ::testing::Range(0, 20));

// --- Entity linker properties -----------------------------------------------------

TEST(LinkerPropertyTest, TopCCandidatesArePrefixOfTop20) {
  auto synthetic = kb::BuildSyntheticKb();
  nlp::EntityLinkerOptions wide_options;
  wide_options.max_candidates = 20;
  nlp::EntityLinkerOptions narrow_options;
  narrow_options.max_candidates = 3;
  nlp::EntityLinker wide(&synthetic.knowledge_base, wide_options);
  nlp::EntityLinker narrow(&synthetic.knowledge_base, narrow_options);
  const char* texts[] = {
      "Does Michael Jordan win more NBA championships than Kobe Bryant?",
      "Which food contains more calories, Chocolate or Honey?",
      "Compare the height of Mount Everest and K2.",
  };
  for (const char* text : texts) {
    auto wide_entities = wide.Link(text);
    auto narrow_entities = narrow.Link(text);
    ASSERT_EQ(wide_entities.size(), narrow_entities.size()) << text;
    for (size_t e = 0; e < wide_entities.size(); ++e) {
      const size_t keep = narrow_entities[e].candidates.size();
      ASSERT_LE(keep, 3u);
      for (size_t j = 0; j < keep; ++j) {
        EXPECT_EQ(narrow_entities[e].candidates[j].concept_id,
                  wide_entities[e].candidates[j].concept_id);
      }
    }
  }
}

// --- WorkerStore fuzz --------------------------------------------------------------

TEST(WorkerStoreFuzzTest, RandomOpsMatchReferenceAcrossReopen) {
  const std::string path = ::testing::TempDir() + "/fuzz_store.log";
  std::remove(path.c_str());
  const size_t m = 4;
  std::map<std::string, storage::WorkerQualityRecord> reference;
  Rng rng(2718);

  auto random_record = [&]() {
    storage::WorkerQualityRecord record;
    record.quality.resize(m);
    record.weight.resize(m);
    for (size_t k = 0; k < m; ++k) {
      record.quality[k] = rng.UniformDouble();
      record.weight[k] = rng.UniformDoubleRange(0.0, 5.0);
    }
    return record;
  };

  for (int session = 0; session < 4; ++session) {
    auto store = storage::WorkerStore::Open(path, m);
    ASSERT_TRUE(store.ok());
    // Store state matches the reference after reopen.
    ASSERT_EQ(store->size(), reference.size());
    for (const auto& [id, expected] : reference) {
      auto loaded = store->Get(id);
      ASSERT_TRUE(loaded.ok()) << id;
      for (size_t k = 0; k < m; ++k) {
        EXPECT_NEAR(loaded->quality[k], expected.quality[k], 1e-12);
        EXPECT_NEAR(loaded->weight[k], expected.weight[k], 1e-12);
      }
    }
    for (int op = 0; op < 60; ++op) {
      const std::string id = "w" + std::to_string(rng.UniformInt(12));
      auto record = random_record();
      if (rng.Bernoulli(0.5)) {
        ASSERT_TRUE(store->Put(id, record).ok());
        reference[id] = record;
      } else {
        ASSERT_TRUE(store->Merge(id, record).ok());
        auto it = reference.find(id);
        if (it == reference.end()) {
          reference[id] = record;
        } else {
          it->second.MergeTheorem1(record);
        }
      }
    }
    if (session % 2 == 1) {
      ASSERT_TRUE(store->Compact().ok());
    }
    ASSERT_TRUE(store->Flush().ok());
  }
}

}  // namespace
}  // namespace docs
