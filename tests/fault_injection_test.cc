#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "core/concurrent_docs_system.h"
#include "core/docs_system.h"
#include "crowd/campaign.h"
#include "crowd/worker_pool.h"
#include "datasets/dataset.h"
#include "kb/synthetic_kb.h"
#include "storage/log_store.h"
#include "storage/state_checkpoint.h"

namespace docs {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Every test leaves the global injector clean so fault arming cannot leak
/// into unrelated tests.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().DisarmAll(); }
  void TearDown() override { FaultInjector::Global().DisarmAll(); }
};

// --- FaultInjector ------------------------------------------------------------

TEST_F(FaultInjectionTest, UnarmedInjectorNeverFires) {
  auto& injector = FaultInjector::Global();
  EXPECT_FALSE(injector.armed());
  EXPECT_FALSE(injector.ShouldFail("nothing.armed"));
  EXPECT_EQ(injector.hits("nothing.armed"), 0u);
  EXPECT_EQ(injector.total_fires(), 0u);
}

TEST_F(FaultInjectionTest, EveryNthFiresOnTheNth) {
  auto& injector = FaultInjector::Global();
  injector.ArmEveryNth("p", 3);
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(injector.ShouldFail("p"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true,
                                      false, false, true}));
  EXPECT_EQ(injector.hits("p"), 9u);
  EXPECT_EQ(injector.fires("p"), 3u);
}

TEST_F(FaultInjectionTest, OneShotFiresOnceAfterSkip) {
  auto& injector = FaultInjector::Global();
  injector.ArmOneShot("p", /*skip=*/2);
  EXPECT_FALSE(injector.ShouldFail("p"));
  EXPECT_FALSE(injector.ShouldFail("p"));
  EXPECT_TRUE(injector.ShouldFail("p"));
  // The shot is spent: the point disarms itself.
  EXPECT_FALSE(injector.armed());
  EXPECT_FALSE(injector.ShouldFail("p"));
  EXPECT_EQ(injector.fires("p"), 1u);
}

TEST_F(FaultInjectionTest, ProbabilisticIsSeededAndDeterministic) {
  auto& injector = FaultInjector::Global();
  auto run = [&] {
    injector.SeedRng(42);
    injector.ArmProbabilistic("p", 0.3);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) fired.push_back(injector.ShouldFail("p"));
    return fired;
  };
  auto first = run();
  auto second = run();
  EXPECT_EQ(first, second);
  const size_t fires = injector.fires("p");
  EXPECT_GT(fires, 30u);  // ~60 expected at p = 0.3
  EXPECT_LT(fires, 100u);
  injector.ArmProbabilistic("q", 0.0);
  EXPECT_FALSE(injector.ShouldFail("q"));
  injector.ArmProbabilistic("r", 1.0);
  EXPECT_TRUE(injector.ShouldFail("r"));
}

TEST_F(FaultInjectionTest, DisarmStopsFiring) {
  auto& injector = FaultInjector::Global();
  injector.ArmEveryNth("p", 1);
  EXPECT_TRUE(injector.ShouldFail("p"));
  injector.Disarm("p");
  EXPECT_FALSE(injector.armed());
  EXPECT_FALSE(injector.ShouldFail("p"));
  // Counters from the armed period stay readable.
  EXPECT_EQ(injector.fires("p"), 1u);
}

// --- LogStore under injected faults -------------------------------------------

TEST_F(FaultInjectionTest, TornAppendRecoversIntactPrefix) {
  const std::string path = TempPath("fi_torn_append.log");
  std::remove(path.c_str());
  {
    auto log = storage::LogStore::Open(path, nullptr);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->Append("first").ok());
    FaultInjector::Global().ArmOneShot(storage::kFaultAppend);
    Status status = log->Append("second");
    EXPECT_EQ(status.code(), StatusCode::kIoError);
    ASSERT_TRUE(log->Flush().ok());
  }
  // The torn half-record is on disk; replay must stop exactly after the
  // intact prefix.
  std::vector<std::string> replayed;
  auto reopened = storage::LogStore::Open(
      path, [&](const std::string& payload) { replayed.push_back(payload); });
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(replayed, (std::vector<std::string>{"first"}));
}

TEST_F(FaultInjectionTest, FlushFaultIsTransient) {
  const std::string path = TempPath("fi_flush.log");
  std::remove(path.c_str());
  auto log = storage::LogStore::Open(path, nullptr);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(log->Append("payload").ok());
  FaultInjector::Global().ArmOneShot(storage::kFaultFlush);
  EXPECT_EQ(log->Flush().code(), StatusCode::kIoError);
  EXPECT_TRUE(log->Flush().ok());  // One-shot spent: the retry succeeds.
}

TEST_F(FaultInjectionTest, CrashBeforeCompactionRenameKeepsOldLog) {
  const std::string path = TempPath("fi_compact.log");
  std::remove(path.c_str());
  auto log = storage::LogStore::Open(path, nullptr);
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(log->Append("r" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(log->Flush().ok());

  FaultInjector::Global().ArmOneShot(storage::kFaultCompactRename);
  EXPECT_EQ(log->Compact({"survivor"}).code(), StatusCode::kIoError);

  // The live log is untouched by the failed compaction...
  {
    std::vector<std::string> replayed;
    auto check = storage::LogStore::Open(
        path, [&](const std::string& payload) { replayed.push_back(payload); });
    ASSERT_TRUE(check.ok());
    EXPECT_EQ(replayed, (std::vector<std::string>{"r0", "r1", "r2"}));
  }
  // ...and the store survives the failure: appends and a compaction retry
  // still work.
  ASSERT_TRUE(log->Append("r3").ok());
  ASSERT_TRUE(log->Compact({"survivor"}).ok());
  ASSERT_TRUE(log->Append("post").ok());
  ASSERT_TRUE(log->Flush().ok());
  std::vector<std::string> replayed;
  auto reopened = storage::LogStore::Open(
      path, [&](const std::string& payload) { replayed.push_back(payload); });
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(replayed, (std::vector<std::string>{"survivor", "post"}));
}

TEST_F(FaultInjectionTest, CompactionWriteFaultKeepsOldLog) {
  const std::string path = TempPath("fi_compact_write.log");
  std::remove(path.c_str());
  auto log = storage::LogStore::Open(path, nullptr);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(log->Append("keep").ok());
  ASSERT_TRUE(log->Flush().ok());
  FaultInjector::Global().ArmOneShot(storage::kFaultCompactWrite);
  EXPECT_EQ(log->Compact({"replacement"}).code(), StatusCode::kIoError);
  std::vector<std::string> replayed;
  auto reopened = storage::LogStore::Open(
      path, [&](const std::string& payload) { replayed.push_back(payload); });
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(replayed, (std::vector<std::string>{"keep"}));
}

// --- Checkpoint saves under injected faults -----------------------------------

storage::StateCheckpoint SmallCheckpoint(size_t num_answers) {
  storage::StateCheckpoint checkpoint;
  storage::StateCheckpoint::TaskState task;
  task.domain_vector = {1.0, 0.0};
  task.num_choices = 4;
  task.known_truth = -1;
  checkpoint.tasks = {task};
  storage::StateCheckpoint::WorkerState worker;
  worker.external_id = "w";
  worker.golden_done = true;
  checkpoint.workers = {worker};
  for (size_t i = 0; i < num_answers; ++i) {
    checkpoint.answers.push_back({0, 0, i % 4});
  }
  return checkpoint;
}

TEST_F(FaultInjectionTest, FailedCheckpointSaveLeavesPreviousIntact) {
  const std::string path = TempPath("fi_ckpt.log");
  std::remove(path.c_str());
  ASSERT_TRUE(storage::SaveStateCheckpoint(SmallCheckpoint(1), path).ok());

  FaultInjector::Global().ArmOneShot(storage::kFaultCheckpointSave);
  EXPECT_EQ(storage::SaveStateCheckpoint(SmallCheckpoint(3), path).code(),
            StatusCode::kIoError);
  auto loaded = storage::LoadStateCheckpoint(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->answers.size(), 1u);  // still the old snapshot

  // Retry (the shot is spent) succeeds and replaces it.
  ASSERT_TRUE(storage::SaveStateCheckpoint(SmallCheckpoint(3), path).ok());
  loaded = storage::LoadStateCheckpoint(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->answers.size(), 3u);
}

// --- DocsSystem: leases, validation, replay hardening, retry ------------------

class SystemFaultTest : public FaultInjectionTest {
 protected:
  static void SetUpTestSuite() {
    kb_ = new kb::SyntheticKb(kb::BuildSyntheticKb());
  }
  static void TearDownTestSuite() {
    delete kb_;
    kb_ = nullptr;
  }
  static kb::SyntheticKb* kb_;
};

kb::SyntheticKb* SystemFaultTest::kb_ = nullptr;

TEST_F(SystemFaultTest, ExpireLeasesReturnsEveryAbandonedTask) {
  core::DocsSystemOptions options;
  options.golden_count = 0;
  options.lease_duration = 2;
  options.max_answers_per_task = 1;
  core::DocsSystem system(&kb_->knowledge_base, options);
  std::vector<core::TaskInput> inputs = {
      {"Is Kobe Bryant a basketball player?", 2},
      {"Is sushi Japanese food?", 2},
      {"Is the Eiffel Tower in Paris?", 2}};
  ASSERT_TRUE(system.AddTasks(inputs).ok());

  const size_t ghost = system.WorkerIndex("ghost");
  const size_t diligent = system.WorkerIndex("diligent");

  // The no-show worker takes all three tasks (clock 1, deadlines 3).
  auto granted = system.SelectTasks(ghost, 3);
  ASSERT_EQ(granted.size(), 3u);
  EXPECT_EQ(system.outstanding_leases(), 3u);

  // While the leases are live, the cap (1 answer/task) starves everyone else.
  EXPECT_TRUE(system.SelectTasks(diligent, 3).empty());  // clock 2
  EXPECT_TRUE(system.ExpireLeases(system.lease_clock()).empty());

  // One more tick reaches the deadline: every abandoned grant comes back.
  EXPECT_TRUE(system.SelectTasks(diligent, 3).empty());  // clock 3
  auto expired = system.ExpireLeases(system.lease_clock());
  ASSERT_EQ(expired.size(), 3u);
  std::set<size_t> expired_tasks;
  for (const auto& lease : expired) {
    EXPECT_EQ(lease.worker, ghost);
    expired_tasks.insert(lease.task);
  }
  EXPECT_EQ(expired_tasks,
            std::set<size_t>(granted.begin(), granted.end()));
  EXPECT_EQ(system.outstanding_leases(), 0u);

  // The pool recovered: the diligent worker now gets all three tasks, and
  // answering releases her leases one by one.
  auto reassigned = system.SelectTasks(diligent, 3);
  ASSERT_EQ(reassigned.size(), 3u);
  EXPECT_EQ(system.outstanding_leases(), 3u);
  for (size_t task : reassigned) {
    ASSERT_TRUE(system.SubmitAnswer(diligent, task, 0).ok());
  }
  EXPECT_EQ(system.outstanding_leases(), 0u);
}

TEST_F(SystemFaultTest, SubmitAnswerValidatesInput) {
  core::DocsSystemOptions options;
  options.golden_count = 0;
  core::DocsSystem system(&kb_->knowledge_base, options);

  EXPECT_EQ(system.SubmitAnswer(0, 0, 0).code(),
            StatusCode::kFailedPrecondition);  // before AddTasks

  std::vector<core::TaskInput> inputs = {{"Is K2 tall?", 2}};
  ASSERT_TRUE(system.AddTasks(inputs).ok());
  const size_t worker = system.WorkerIndex("w");

  EXPECT_EQ(system.SubmitAnswer(worker + 7, 0, 0).code(),
            StatusCode::kInvalidArgument);  // unknown worker
  EXPECT_EQ(system.SubmitAnswer(worker, 99, 0).code(),
            StatusCode::kInvalidArgument);  // unknown task
  EXPECT_EQ(system.SubmitAnswer(worker, 0, 2).code(),
            StatusCode::kOutOfRange);  // choice >= num_choices
  ASSERT_TRUE(system.SubmitAnswer(worker, 0, 1).ok());
  EXPECT_EQ(system.SubmitAnswer(worker, 0, 1).code(),
            StatusCode::kAlreadyExists);  // duplicate (worker, task)
  EXPECT_EQ(system.inference().num_answers(), 1u);
}

TEST_F(SystemFaultTest, ReplayDropsDuplicateAndCorruptAnswerRecords) {
  const std::string path = TempPath("fi_replay.log");
  std::remove(path.c_str());
  const size_t m = kb_->knowledge_base.num_domains();
  storage::StateCheckpoint checkpoint;
  storage::StateCheckpoint::TaskState task;
  task.domain_vector.assign(m, 0.0);
  task.domain_vector[0] = 1.0;
  task.num_choices = 2;
  task.known_truth = -1;
  checkpoint.tasks = {task, task};
  storage::StateCheckpoint::WorkerState worker;
  worker.external_id = "w";
  worker.golden_done = true;
  checkpoint.workers = {worker};
  // A duplicate (worker, task) record — the storage layer's structural
  // validation cannot catch it; the system replay must.
  checkpoint.answers = {{0, 0, 1}, {0, 0, 1}, {1, 0, 0}};
  ASSERT_TRUE(storage::SaveStateCheckpoint(checkpoint, path).ok());

  core::DocsSystemOptions options;
  options.golden_count = 0;
  core::DocsSystem system(&kb_->knowledge_base, options);
  ASSERT_TRUE(system.LoadCheckpoint(path).ok());
  EXPECT_EQ(system.inference().num_answers(), 2u);
  EXPECT_TRUE(system.inference().HasAnswered(0, 0));
  EXPECT_TRUE(system.inference().HasAnswered(0, 1));
}

TEST_F(SystemFaultTest, SaveCheckpointWithRetrySurvivesTransientFaults) {
  core::DocsSystemOptions options;
  options.golden_count = 0;
  core::ConcurrentDocsSystem system(&kb_->knowledge_base, options);
  std::vector<core::TaskInput> inputs = {{"Is K2 tall?", 2}};
  ASSERT_TRUE(system.AddTasks(inputs).ok());
  // Workers must be seen by RequestTasks before they may submit.
  ASSERT_FALSE(system.RequestTasks("w", 1).empty());
  ASSERT_TRUE(system.SubmitAnswer("w", 0, 1).ok());

  const std::string path = TempPath("fi_retry.log");
  std::remove(path.c_str());

  // A transient failure on the first attempt — within the attempt budget.
  core::CheckpointRetryOptions retry;
  retry.max_attempts = 4;
  retry.initial_backoff = std::chrono::milliseconds(1);
  FaultInjector::Global().ArmOneShot(storage::kFaultCheckpointSave);
  Status status = system.SaveCheckpointWithRetry(path, retry);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_GE(FaultInjector::Global().fires(storage::kFaultCheckpointSave), 1u);

  // A permanent fault exhausts the bounded budget and reports the failure.
  FaultInjector::Global().ArmProbabilistic(storage::kFaultCheckpointSave, 1.0);
  status = system.SaveCheckpointWithRetry(path, retry);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_GE(FaultInjector::Global().fires(storage::kFaultCheckpointSave), 4u);
  FaultInjector::Global().DisarmAll();

  auto restored = std::make_unique<core::DocsSystem>(&kb_->knowledge_base,
                                                     options);
  ASSERT_TRUE(restored->LoadCheckpoint(path).ok());
  EXPECT_EQ(restored->inference().num_answers(), 1u);
}

// --- The chaos campaign -------------------------------------------------------

TEST_F(SystemFaultTest, ChaosCampaignMatchesFaultFreeRun) {
  auto dataset = datasets::MakeQaDataset(*kb_, 60, 92);

  crowd::WorkerPoolOptions pool_options;
  pool_options.num_workers = 24;
  pool_options.dropout_fraction = 0.5;
  pool_options.dropout_abandon_probability = 0.7;
  auto workers =
      crowd::MakeWorkerPool(26, dataset.label_to_domain, pool_options, 51);
  size_t droppers = 0;
  for (const auto& worker : workers) {
    if (worker.abandon_probability > 0.0) ++droppers;
  }
  ASSERT_GT(droppers, 0u);

  const std::string path = TempPath("fi_chaos_ckpt.log");
  auto make_system = [&] {
    core::DocsSystemOptions options;
    options.golden_count = 5;
    options.reinfer_every = 50;
    options.lease_duration = 30;
    options.max_answers_per_task = 12;
    return std::make_unique<core::ConcurrentDocsSystem>(&kb_->knowledge_base,
                                                        options);
  };
  crowd::ChaosCampaignOptions campaign;
  campaign.hit_size = 4;
  campaign.total_answers = 400;
  campaign.seed = 123;
  campaign.expire_every = 6;
  campaign.checkpoint_every = 20;
  campaign.crash_every_checkpoints = 8;
  campaign.checkpoint_path = path;
  campaign.save_attempts = 8;

  // Chaos run: every other compaction rename "crashes", every third save
  // call fails outright. All of it must be absorbed by bounded retry.
  std::remove(path.c_str());
  auto& injector = FaultInjector::Global();
  injector.ArmEveryNth(storage::kFaultCompactRename, 2);
  injector.ArmEveryNth(storage::kFaultCheckpointSave, 3);
  auto chaotic = crowd::RunChaosCampaign(dataset, workers, make_system,
                                         campaign);
  const size_t injected_faults = injector.total_fires();
  injector.DisarmAll();

  EXPECT_TRUE(chaotic.completed);
  EXPECT_GE(injected_faults, 10u);         // >= 10 injected storage faults
  EXPECT_GE(chaotic.save_failures, 10u);   // each absorbed by a retry
  EXPECT_GE(chaotic.crashes, 2u);          // crash/recover at least twice
  EXPECT_GT(chaotic.expired_leases, 0u);   // abandonment fed back to the pool
  // >= 20% of served HITs were abandoned mid-way.
  EXPECT_GE(chaotic.abandoned_hits * 5, chaotic.hits);
  EXPECT_EQ(chaotic.rejected_answers, 0u);

  // Fault-free reference: identical seed and schedule, no faults armed.
  std::remove(path.c_str());
  auto reference = crowd::RunChaosCampaign(dataset, workers, make_system,
                                           campaign);
  EXPECT_TRUE(reference.completed);
  EXPECT_EQ(reference.save_failures, 0u);
  EXPECT_GE(reference.crashes, 2u);

  // Injected storage faults were fully recovered: the chaotic run collected
  // the same answers and inferred exactly the same truths.
  EXPECT_EQ(chaotic.answers, reference.answers);
  EXPECT_EQ(chaotic.hits, reference.hits);
  EXPECT_EQ(chaotic.abandoned_hits, reference.abandoned_hits);
  EXPECT_EQ(chaotic.expired_leases, reference.expired_leases);
  ASSERT_EQ(chaotic.inferred_choices.size(), dataset.tasks.size());
  EXPECT_EQ(chaotic.inferred_choices, reference.inferred_choices);
}

}  // namespace
}  // namespace docs
