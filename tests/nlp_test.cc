#include <gtest/gtest.h>

#include <cmath>

#include "common/math_utils.h"
#include "kb/synthetic_kb.h"
#include "nlp/entity_linker.h"

namespace docs::nlp {
namespace {

class EntityLinkerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new kb::SyntheticKb(kb::BuildSyntheticKb());
  }
  static void TearDownTestSuite() {
    delete kb_;
    kb_ = nullptr;
  }
  static kb::SyntheticKb* kb_;
};

kb::SyntheticKb* EntityLinkerTest::kb_ = nullptr;

TEST_F(EntityLinkerTest, DetectsAllEntitiesOfTable2) {
  EntityLinker linker(&kb_->knowledge_base);
  auto entities = linker.Link(
      "Does Michael Jordan win more NBA championships than Kobe Bryant?");
  ASSERT_EQ(entities.size(), 3u);
  EXPECT_EQ(entities[0].mention, "michael jordan");
  EXPECT_EQ(entities[1].mention, "nba");
  EXPECT_EQ(entities[2].mention, "kobe bryant");
}

TEST_F(EntityLinkerTest, CandidateDistributionsAreNormalized) {
  EntityLinker linker(&kb_->knowledge_base);
  auto entities = linker.Link(
      "Does Michael Jordan win more NBA championships than Kobe Bryant?");
  for (const auto& entity : entities) {
    double total = 0.0;
    for (const auto& c : entity.candidates) total += c.probability;
    EXPECT_NEAR(total, 1.0, 1e-9) << entity.mention;
  }
}

TEST_F(EntityLinkerTest, CandidatesSortedByProbability) {
  EntityLinker linker(&kb_->knowledge_base);
  auto entities = linker.Link("Compare the height of Mount Everest and K2.");
  ASSERT_FALSE(entities.empty());
  for (const auto& entity : entities) {
    for (size_t j = 1; j < entity.candidates.size(); ++j) {
      EXPECT_GE(entity.candidates[j - 1].probability,
                entity.candidates[j].probability);
    }
  }
}

TEST_F(EntityLinkerTest, SportsContextDisambiguatesMichaelJordan) {
  EntityLinker linker(&kb_->knowledge_base);
  auto entities = linker.Link(
      "Does Michael Jordan win more NBA championships than Kobe Bryant?");
  ASSERT_FALSE(entities.empty());
  const auto& top = entities[0].candidates[0];
  EXPECT_EQ(kb_->knowledge_base.GetConcept(top.concept_id).title,
            "Michael Jordan");
  EXPECT_GT(top.probability, 0.4);
}

TEST_F(EntityLinkerTest, MachineLearningContextPrefersTheScientist) {
  EntityLinker linker(&kb_->knowledge_base);
  auto entities = linker.Link(
      "Did Michael Jordan write the machine learning paper at the "
      "university as professor of statistics research?");
  ASSERT_FALSE(entities.empty());
  // The scientist should now outrank (or at least rival) the player.
  double p_player = 0.0, p_scientist = 0.0;
  for (const auto& c : entities[0].candidates) {
    const auto& title = kb_->knowledge_base.GetConcept(c.concept_id).title;
    if (title == "Michael Jordan") p_player = c.probability;
    if (title == "Michael I Jordan") p_scientist = c.probability;
  }
  EXPECT_GT(p_scientist, 0.0);
  EXPECT_GT(p_scientist, p_player * 0.5);
}

TEST_F(EntityLinkerTest, LongestMatchWins) {
  EntityLinker linker(&kb_->knowledge_base);
  // "Golden State Warriors" must match as one mention, not "Golden" etc.
  auto entities = linker.Link("Has Golden State Warriors ever won the title?");
  ASSERT_GE(entities.size(), 1u);
  EXPECT_EQ(entities[0].mention, "golden state warriors");
}

TEST_F(EntityLinkerTest, TopCOptionTruncatesCandidates) {
  EntityLinkerOptions options;
  options.max_candidates = 3;
  EntityLinker linker(&kb_->knowledge_base, options);
  auto entities = linker.Link("Is Stephen Curry a point guard?");
  ASSERT_FALSE(entities.empty());
  for (const auto& entity : entities) {
    EXPECT_LE(entity.candidates.size(), 3u);
    double total = 0.0;
    for (const auto& c : entity.candidates) total += c.probability;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_F(EntityLinkerTest, NoEntitiesInPlainText) {
  EntityLinker linker(&kb_->knowledge_base);
  auto entities = linker.Link("the of and is a with very much");
  EXPECT_TRUE(entities.empty());
}

TEST_F(EntityLinkerTest, EmptyTextYieldsNoEntities) {
  EntityLinker linker(&kb_->knowledge_base);
  EXPECT_TRUE(linker.Link("").empty());
}

TEST_F(EntityLinkerTest, TokenSpansAreConsistent) {
  EntityLinker linker(&kb_->knowledge_base);
  auto entities =
      linker.Link("Which food contains more calories, Chocolate or Honey?");
  for (const auto& entity : entities) {
    EXPECT_LT(entity.token_begin, entity.token_end);
  }
  ASSERT_GE(entities.size(), 2u);
  // Mentions appear left to right without overlap.
  for (size_t i = 1; i < entities.size(); ++i) {
    EXPECT_GE(entities[i].token_begin, entities[i - 1].token_end);
  }
}

TEST_F(EntityLinkerTest, CoherencePassSharpensAmbiguousMention) {
  // With no sport-specific context words, "Michael Jordan" is decided by
  // priors alone; the unambiguous teammate mention pulls it toward the
  // player once the coherence pass is on.
  const char* text = "Michael Jordan and Scottie Pippen";
  auto probability_of_player = [&](double coherence_weight) {
    EntityLinkerOptions options;
    options.coherence_weight = coherence_weight;
    EntityLinker linker(&kb_->knowledge_base, options);
    auto entities = linker.Link(text);
    for (const auto& entity : entities) {
      if (entity.mention != "michael jordan") continue;
      for (const auto& c : entity.candidates) {
        if (kb_->knowledge_base.GetConcept(c.concept_id).title ==
            "Michael Jordan") {
          return c.probability;
        }
      }
    }
    return 0.0;
  };
  const double without = probability_of_player(0.0);
  const double with = probability_of_player(2.0);
  EXPECT_GT(with, without);
}

TEST_F(EntityLinkerTest, CoherenceKeepsDistributionsNormalized) {
  EntityLinkerOptions options;
  options.coherence_weight = 1.5;
  EntityLinker linker(&kb_->knowledge_base, options);
  auto entities = linker.Link(
      "Does Michael Jordan win more NBA championships than Kobe Bryant?");
  for (const auto& entity : entities) {
    double total = 0.0;
    for (const auto& c : entity.candidates) total += c.probability;
    EXPECT_NEAR(total, 1.0, 1e-9) << entity.mention;
    for (size_t j = 1; j < entity.candidates.size(); ++j) {
      EXPECT_GE(entity.candidates[j - 1].probability,
                entity.candidates[j].probability);
    }
  }
}

TEST_F(EntityLinkerTest, CoherenceIsNoOpForSingleMention) {
  EntityLinkerOptions with_options;
  with_options.coherence_weight = 2.0;
  EntityLinker with(&kb_->knowledge_base, with_options);
  EntityLinker without(&kb_->knowledge_base);
  auto a = with.Link("Tell me about Kobe Bryant");
  auto b = without.Link("Tell me about Kobe Bryant");
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a[0].candidates.size(), b[0].candidates.size());
  for (size_t j = 0; j < a[0].candidates.size(); ++j) {
    EXPECT_DOUBLE_EQ(a[0].candidates[j].probability,
                     b[0].candidates[j].probability);
  }
}

TEST_F(EntityLinkerTest, AmbiguousCurryAliasHasBothSenses) {
  EntityLinker linker(&kb_->knowledge_base);
  auto entities = linker.Link("How spicy is Curry compared to Chili?");
  ASSERT_GE(entities.size(), 2u);
  // In a food context the food sense should win over any distractor.
  const auto& top = entities[0].candidates[0];
  EXPECT_EQ(kb_->knowledge_base.GetConcept(top.concept_id).title, "Curry");
}

}  // namespace
}  // namespace docs::nlp
