#include <gtest/gtest.h>

#include <cmath>

#include "common/math_utils.h"
#include "core/truth_inference.h"
#include "crowd/campaign.h"
#include "crowd/worker_pool.h"
#include "datasets/dataset.h"
#include "kb/synthetic_kb.h"

namespace docs::core {
namespace {

// The Section 4.1 running example: task t1 with r = [0, 0.78, 0.22], two
// choices, three workers with the Table 1 qualities; w1 answers "yes" (0),
// w2 and w3 answer "no" (1).
struct PaperExample {
  Task task;
  std::vector<Answer> answers;
  std::vector<WorkerQuality> qualities;
};

PaperExample MakePaperExample() {
  PaperExample ex;
  ex.task.domain_vector = {0.0, 0.78, 0.22};
  ex.task.num_choices = 2;
  ex.answers = {{0, 0, 0}, {0, 1, 1}, {0, 2, 1}};
  ex.qualities.resize(3);
  ex.qualities[0].quality = {0.3, 0.9, 0.6};
  ex.qualities[1].quality = {0.9, 0.6, 0.3};
  ex.qualities[2].quality = {0.6, 0.3, 0.9};
  for (auto& q : ex.qualities) q.weight = {1.0, 1.0, 1.0};
  return ex;
}

TEST(ComputeTruthMatrixTest, PaperRunningExample) {
  auto ex = MakePaperExample();
  Matrix truth_matrix =
      ComputeTruthMatrix(ex.task, ex.answers, ex.qualities, 0.001);
  // Paper: M(1)1 = [0.03, 0.97], M(1)2 = [0.93, 0.07], M(1)3 = [0.28, 0.72].
  EXPECT_NEAR(truth_matrix(0, 0), 0.03, 0.01);
  EXPECT_NEAR(truth_matrix(0, 1), 0.97, 0.01);
  EXPECT_NEAR(truth_matrix(1, 0), 0.93, 0.01);
  EXPECT_NEAR(truth_matrix(1, 1), 0.07, 0.01);
  EXPECT_NEAR(truth_matrix(2, 0), 0.28, 0.01);
  EXPECT_NEAR(truth_matrix(2, 1), 0.72, 0.01);

  // s1 = r x M = [0.79, 0.21]: the minority "yes" wins because w1 is the
  // sports expert and the task is mostly about sports.
  auto s = truth_matrix.LeftMultiply(ex.task.domain_vector);
  EXPECT_NEAR(s[0], 0.79, 0.01);
  EXPECT_NEAR(s[1], 0.21, 0.01);
  EXPECT_GT(s[0], s[1]);
}

TEST(ComputeTruthMatrixTest, NoAnswersYieldsUniformRows) {
  Task task;
  task.domain_vector = {0.5, 0.5};
  task.num_choices = 3;
  std::vector<WorkerQuality> qualities;
  Matrix truth_matrix = ComputeTruthMatrix(task, {}, qualities);
  for (size_t k = 0; k < 2; ++k) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(truth_matrix(k, j), 1.0 / 3.0, 1e-12);
    }
  }
}

TEST(ComputeTruthMatrixTest, SkipsStrayAnswersWithCount) {
  auto ex = MakePaperExample();
  const Matrix clean =
      ComputeTruthMatrix(ex.task, ex.answers, ex.qualities, 0.001);

  auto answers = ex.answers;
  answers.push_back({0, 9, 0});  // worker with no quality vector at all
  answers.push_back({0, 1, 5});  // choice out of range (l = 2)
  auto qualities = ex.qualities;
  qualities.emplace_back();  // worker 3 exists but with a 0-dim quality vector
  answers.push_back({0, 3, 0});

  size_t skipped = 0;
  const Matrix got =
      ComputeTruthMatrix(ex.task, answers, qualities, 0.001, &skipped);
  EXPECT_EQ(skipped, 3u);
  // The strays contribute nothing: bitwise equal to the clean computation.
  EXPECT_EQ(got.data(), clean.data());
}

TEST(ComputeTruthMatrixTest, RowsAreDistributions) {
  auto ex = MakePaperExample();
  Matrix truth_matrix = ComputeTruthMatrix(ex.task, ex.answers, ex.qualities);
  for (size_t k = 0; k < truth_matrix.rows(); ++k) {
    EXPECT_TRUE(IsDistribution(truth_matrix.Row(k), 1e-9));
  }
}

TEST(GoldenInitTest, ComputesWeightedCorrectFraction) {
  std::vector<Task> tasks(2);
  tasks[0].domain_vector = {0.9, 0.1};
  tasks[0].num_choices = 2;
  tasks[1].domain_vector = {0.2, 0.8};
  tasks[1].num_choices = 2;
  // Worker 0 answers task 0 correctly (truth 1) and task 1 wrongly.
  std::vector<Answer> answers = {{0, 0, 1}, {1, 0, 0}};
  auto qualities = InitializeQualityFromGolden(tasks, 1, answers, {0, 1},
                                               {1, 1}, 0.7, /*smoothing=*/0.0);
  ASSERT_EQ(qualities.size(), 1u);
  // Domain 0: correct mass 0.9 of total 1.1; domain 1: 0.1 of 0.9.
  EXPECT_NEAR(qualities[0].quality[0], 0.9 / 1.1, 1e-9);
  EXPECT_NEAR(qualities[0].quality[1], 0.1 / 0.9, 1e-9);
  EXPECT_NEAR(qualities[0].weight[0], 1.1, 1e-9);
  EXPECT_NEAR(qualities[0].weight[1], 0.9, 1e-9);
}

TEST(GoldenInitTest, SmoothingPullsTowardDefault) {
  std::vector<Task> tasks(1);
  tasks[0].domain_vector = {1.0};
  tasks[0].num_choices = 2;
  auto qualities =
      InitializeQualityFromGolden(tasks, 1, {}, {0}, {0}, 0.7, 1.0);
  EXPECT_NEAR(qualities[0].quality[0], 0.7, 1e-12);  // no data -> default
}

TEST(GoldenInitTest, NonGoldenAnswersIgnored) {
  std::vector<Task> tasks(2);
  for (auto& t : tasks) {
    t.domain_vector = {1.0};
    t.num_choices = 2;
  }
  // Task 1 is not golden; the wrong answer there must not hurt.
  std::vector<Answer> answers = {{0, 0, 1}, {1, 0, 0}};
  auto with = InitializeQualityFromGolden(tasks, 1, answers, {0}, {1}, 0.7, 0.0);
  EXPECT_NEAR(with[0].quality[0], 1.0, 1e-12);
}

TEST(GoldenInitTest, SkipsStrayInputsWithCount) {
  std::vector<Task> tasks(2);
  tasks[0].domain_vector = {0.9, 0.1};
  tasks[0].num_choices = 2;
  tasks[1].domain_vector = {0.2, 0.8};
  tasks[1].num_choices = 2;
  const std::vector<Answer> clean_answers = {{0, 0, 1}, {1, 0, 0}};
  const auto clean = InitializeQualityFromGolden(tasks, 1, clean_answers,
                                                 {0, 1}, {1, 1}, 0.7, 0.0);

  auto answers = clean_answers;
  answers.push_back({7, 0, 1});  // task out of range
  answers.push_back({0, 4, 1});  // worker out of range
  size_t skipped = 0;
  // The golden index 9 is out of range too: ignored rather than written out
  // of bounds (it would otherwise corrupt the truth-of-task map).
  const auto got = InitializeQualityFromGolden(
      tasks, 1, answers, {0, 1, 9}, {1, 1, 0}, 0.7, 0.0, &skipped);
  EXPECT_EQ(skipped, 2u);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].quality, clean[0].quality);
  EXPECT_EQ(got[0].weight, clean[0].weight);
}

TEST(GoldenInitTest, MismatchedGoldenArraysNeverReadOutOfBounds) {
  std::vector<Task> tasks(2);
  tasks[0].domain_vector = {0.9, 0.1};
  tasks[0].num_choices = 2;
  tasks[1].domain_vector = {0.2, 0.8};
  tasks[1].num_choices = 2;
  const std::vector<Answer> answers = {{0, 0, 1}, {1, 0, 0}};
  const auto clean =
      InitializeQualityFromGolden(tasks, 1, answers, {0}, {1}, 0.7, 0.0);

  // golden_tasks longer than golden_truth: the parallel arrays are bounded
  // by the shorter one, so the unlabeled golden entry is dropped and counted
  // (it used to read golden_truth[1] out of bounds).
  size_t skipped = 0;
  const auto got = InitializeQualityFromGolden(tasks, 1, answers, {0, 1}, {1},
                                               0.7, 0.0, &skipped);
  EXPECT_EQ(skipped, 1u);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].quality, clean[0].quality);
  EXPECT_EQ(got[0].weight, clean[0].weight);

  // golden_truth longer than golden_tasks: the excess labels have no golden
  // task to attach to and change nothing.
  const auto extra = InitializeQualityFromGolden(tasks, 1, answers, {0},
                                                 {1, 0, 1}, 0.7, 0.0);
  ASSERT_EQ(extra.size(), 1u);
  EXPECT_EQ(extra[0].quality, clean[0].quality);
  EXPECT_EQ(extra[0].weight, clean[0].weight);
}

// --- Full iterative inference on simulated crowds ---------------------------

struct SimSetup {
  std::vector<Task> tasks;
  std::vector<size_t> truths;
  std::vector<crowd::SimulatedWorker> workers;
  std::vector<Answer> answers;
};

SimSetup MakeSimSetup(size_t num_tasks, size_t num_workers, uint64_t seed) {
  SimSetup setup;
  const size_t m = 4;
  Rng rng(seed);
  crowd::WorkerPoolOptions pool_options;
  pool_options.num_workers = num_workers;
  setup.workers = crowd::MakeWorkerPool(m, {0, 1, 2, 3}, pool_options, seed);
  for (size_t i = 0; i < num_tasks; ++i) {
    Task task;
    task.domain_vector.assign(m, 0.0);
    const size_t domain = i % m;
    task.domain_vector[domain] = 1.0;
    task.num_choices = 2;
    setup.tasks.push_back(task);
    setup.truths.push_back(rng.UniformInt(2));
  }
  // 10 answers per task from distinct random workers.
  for (size_t i = 0; i < num_tasks; ++i) {
    std::vector<size_t> order(num_workers);
    for (size_t w = 0; w < num_workers; ++w) order[w] = w;
    rng.Shuffle(order);
    const size_t domain = i % m;
    for (size_t a = 0; a < 10 && a < num_workers; ++a) {
      const size_t w = order[a];
      const size_t choice = crowd::GenerateAnswer(setup.workers[w], domain,
                                                  setup.truths[i], 2, rng);
      setup.answers.push_back({i, w, choice});
    }
  }
  return setup;
}

double Accuracy(const std::vector<size_t>& inferred,
                const std::vector<size_t>& truths) {
  size_t correct = 0;
  for (size_t i = 0; i < truths.size(); ++i) correct += inferred[i] == truths[i];
  return static_cast<double>(correct) / truths.size();
}

TEST(TruthInferenceTest, HighAccuracyOnSimulatedCrowd) {
  auto setup = MakeSimSetup(200, 60, 77);
  TruthInference engine;
  auto result = engine.Run(setup.tasks, setup.workers.size(), setup.answers);
  EXPECT_GT(Accuracy(result.inferred_choice, setup.truths), 0.9);
}

TEST(TruthInferenceTest, DeltaShrinksOverIterations) {
  auto setup = MakeSimSetup(150, 50, 78);
  TruthInferenceOptions options;
  options.max_iterations = 30;
  options.tolerance = 0.0;  // run all iterations
  TruthInference engine(options);
  auto result = engine.Run(setup.tasks, setup.workers.size(), setup.answers);
  ASSERT_GE(result.delta_history.size(), 5u);
  EXPECT_LT(result.delta_history.back(), result.delta_history.front());
  EXPECT_LT(result.delta_history.back(), 1e-3);
}

TEST(TruthInferenceTest, ConvergesEarlyWithTolerance) {
  auto setup = MakeSimSetup(100, 40, 79);
  TruthInferenceOptions options;
  options.max_iterations = 100;
  options.tolerance = 1e-6;
  TruthInference engine(options);
  auto result = engine.Run(setup.tasks, setup.workers.size(), setup.answers);
  EXPECT_LT(result.iterations_run, 100u);  // paper: u <= 20 in practice
}

TEST(TruthInferenceTest, EstimatedQualityTracksTrueQuality) {
  auto setup = MakeSimSetup(400, 30, 80);
  TruthInference engine;
  auto result = engine.Run(setup.tasks, setup.workers.size(), setup.answers);
  // Average |q - q̃| over domains where the worker answered enough tasks.
  double deviation = 0.0;
  size_t terms = 0;
  for (size_t w = 0; w < setup.workers.size(); ++w) {
    for (size_t k = 0; k < 4; ++k) {
      if (result.worker_quality[w].weight[k] < 20.0) continue;
      deviation += std::fabs(result.worker_quality[w].quality[k] -
                             setup.workers[w].true_quality[k]);
      ++terms;
    }
  }
  ASSERT_GT(terms, 0u);
  EXPECT_LT(deviation / terms, 0.1);
}

TEST(TruthInferenceTest, WeightsEqualDomainMass) {
  auto setup = MakeSimSetup(50, 20, 81);
  TruthInference engine;
  auto result = engine.Run(setup.tasks, setup.workers.size(), setup.answers);
  std::vector<std::vector<double>> expected(setup.workers.size(),
                                            std::vector<double>(4, 0.0));
  for (const auto& answer : setup.answers) {
    for (size_t k = 0; k < 4; ++k) {
      expected[answer.worker][k] += setup.tasks[answer.task].domain_vector[k];
    }
  }
  for (size_t w = 0; w < setup.workers.size(); ++w) {
    for (size_t k = 0; k < 4; ++k) {
      EXPECT_NEAR(result.worker_quality[w].weight[k], expected[w][k], 1e-9);
    }
  }
}

TEST(TruthInferenceTest, WorkersWithoutAnswersKeepSeedQuality) {
  std::vector<Task> tasks(1);
  tasks[0].domain_vector = {1.0};
  tasks[0].num_choices = 2;
  std::vector<Answer> answers = {{0, 0, 0}};
  TruthInference engine;
  // Two workers, only worker 0 answers.
  auto result = engine.Run(tasks, 2, answers);
  EXPECT_NEAR(result.worker_quality[1].quality[0],
              engine.options().default_quality, 1e-12);
  EXPECT_NEAR(result.worker_quality[1].weight[0], 0.0, 1e-12);
}

TEST(TruthInferenceTest, InitialQualitySeedsAreUsed) {
  // One task, two workers disagreeing; the seeded expert should win.
  std::vector<Task> tasks(1);
  tasks[0].domain_vector = {1.0};
  tasks[0].num_choices = 2;
  std::vector<Answer> answers = {{0, 0, 0}, {0, 1, 1}};
  std::vector<WorkerQuality> seeds(2);
  seeds[0].quality = {0.95};
  seeds[0].weight = {50.0};
  seeds[1].quality = {0.55};
  seeds[1].weight = {50.0};
  TruthInferenceOptions options;
  options.max_iterations = 1;
  TruthInference engine(options);
  auto result = engine.Run(tasks, 2, answers, &seeds);
  EXPECT_EQ(result.inferred_choice[0], 0u);
}

TEST(TruthInferenceTest, DeterministicAcrossRuns) {
  auto setup = MakeSimSetup(80, 25, 82);
  TruthInference engine;
  auto a = engine.Run(setup.tasks, setup.workers.size(), setup.answers);
  auto b = engine.Run(setup.tasks, setup.workers.size(), setup.answers);
  EXPECT_EQ(a.inferred_choice, b.inferred_choice);
  for (size_t i = 0; i < setup.tasks.size(); ++i) {
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_DOUBLE_EQ(a.task_truth[i][j], b.task_truth[i][j]);
    }
  }
}

TEST(TruthInferenceTest, EmptyInput) {
  TruthInference engine;
  auto result = engine.Run({}, 0, {});
  EXPECT_TRUE(result.task_truth.empty());
  EXPECT_TRUE(result.worker_quality.empty());
}

TEST(TruthInferenceTest, TruthsAreDistributions) {
  auto setup = MakeSimSetup(60, 20, 83);
  TruthInference engine;
  auto result = engine.Run(setup.tasks, setup.workers.size(), setup.answers);
  for (const auto& s : result.task_truth) {
    EXPECT_TRUE(IsDistribution(s, 1e-9));
  }
}

TEST(GoldenInitTest, ZeroSmoothingWithoutGoldenAnswersStaysFinite) {
  // Regression: with smoothing = 0 a worker who answered no golden task in
  // some domain hit 0/0 and walked away with NaN quality, which then poisoned
  // the first EM iteration. The guard must fall back to the default quality.
  std::vector<Task> tasks(2);
  for (auto& task : tasks) {
    task.domain_vector = {1.0};
    task.num_choices = 2;
  }
  std::vector<Answer> answers = {{0, 0, 0}};  // worker 0 answers golden task 0
  auto seeds = InitializeQualityFromGolden(tasks, /*num_workers=*/2, answers,
                                           /*golden_tasks=*/{0},
                                           /*golden_truth=*/{0},
                                           /*default_quality=*/0.7,
                                           /*smoothing=*/0.0);
  ASSERT_EQ(seeds.size(), 2u);
  EXPECT_DOUBLE_EQ(seeds[0].quality[0], 1.0);  // answered its golden correctly
  // Worker 1 never answered a golden task: default, not NaN.
  EXPECT_DOUBLE_EQ(seeds[1].quality[0], 0.7);
  EXPECT_TRUE(std::isfinite(seeds[1].quality[0]));
}

}  // namespace
}  // namespace docs::core
