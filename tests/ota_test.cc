#include <gtest/gtest.h>

#include <cmath>

#include "common/math_utils.h"
#include "common/rng.h"
#include "core/task_assignment.h"

namespace docs::core {
namespace {

// Random small OTA instance: tasks with random domain vectors and truth
// matrices, plus a random worker quality vector.
struct OtaInstance {
  std::vector<Task> tasks;
  std::vector<Matrix> matrices;
  std::vector<std::vector<double>> truths;
  std::vector<double> worker_quality;
};

OtaInstance MakeInstance(size_t n, size_t m, size_t max_choices, Rng& rng) {
  OtaInstance instance;
  for (size_t i = 0; i < n; ++i) {
    Task task;
    task.domain_vector = rng.Dirichlet(m, 1.0);
    task.num_choices = 2 + rng.UniformInt(max_choices - 1);
    Matrix truth_matrix(m, task.num_choices, 0.0);
    for (size_t k = 0; k < m; ++k) {
      truth_matrix.SetRow(k, rng.Dirichlet(task.num_choices, 1.0));
    }
    std::vector<double> s = truth_matrix.LeftMultiply(task.domain_vector);
    NormalizeInPlace(s);
    instance.tasks.push_back(std::move(task));
    instance.matrices.push_back(std::move(truth_matrix));
    instance.truths.push_back(std::move(s));
  }
  instance.worker_quality.resize(m);
  for (auto& q : instance.worker_quality) q = rng.UniformDoubleRange(0.3, 0.95);
  return instance;
}

TEST(Theorem2Test, AnswerProbabilitiesSumToOne) {
  Rng rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    auto instance = MakeInstance(1, 3 + rng.UniformInt(3), 4, rng);
    double total = 0.0;
    for (size_t a = 0; a < instance.tasks[0].num_choices; ++a) {
      const double pa = AnswerProbability(instance.tasks[0],
                                          instance.matrices[0],
                                          instance.worker_quality, a);
      EXPECT_GE(pa, 0.0);
      total += pa;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Theorem2Test, ExpertPredictsCurrentTruth) {
  // With an (almost) perfect worker and a confident matrix, the predicted
  // answer distribution concentrates on the current truth.
  Task task;
  task.domain_vector = {1.0};
  task.num_choices = 2;
  Matrix truth_matrix(1, 2, 0.0);
  truth_matrix.SetRow(0, {0.95, 0.05});
  std::vector<double> quality = {0.99};
  const double p0 = AnswerProbability(task, truth_matrix, quality, 0, 0.001);
  EXPECT_GT(p0, 0.9);
}

TEST(Theorem3Test, UpdatedRowsAreDistributions) {
  Rng rng(103);
  auto instance = MakeInstance(1, 4, 4, rng);
  for (size_t a = 0; a < instance.tasks[0].num_choices; ++a) {
    Matrix updated = UpdatedTruthMatrix(instance.tasks[0], instance.matrices[0],
                                        instance.worker_quality, a);
    for (size_t k = 0; k < updated.rows(); ++k) {
      EXPECT_TRUE(IsDistribution(updated.Row(k), 1e-9));
    }
  }
}

TEST(Theorem3Test, MatchesManualBayesUpdate) {
  Task task;
  task.domain_vector = {1.0};
  task.num_choices = 2;
  Matrix truth_matrix(1, 2, 0.0);
  truth_matrix.SetRow(0, {0.6, 0.4});
  std::vector<double> quality = {0.8};
  Matrix updated = UpdatedTruthMatrix(task, truth_matrix, quality, 0, 0.001);
  // Posterior ∝ [0.6*0.8, 0.4*0.2] = [0.48, 0.08] -> [6/7, 1/7].
  EXPECT_NEAR(updated(0, 0), 6.0 / 7.0, 1e-9);
  EXPECT_NEAR(updated(0, 1), 1.0 / 7.0, 1e-9);
}

TEST(Theorem3Test, AnswerFromExpertMovesTruthMoreThanFromNovice) {
  Task task;
  task.domain_vector = {1.0};
  task.num_choices = 2;
  Matrix truth_matrix(1, 2, 0.5);
  std::vector<double> expert = {0.95};
  std::vector<double> novice = {0.55};
  Matrix by_expert = UpdatedTruthMatrix(task, truth_matrix, expert, 0);
  Matrix by_novice = UpdatedTruthMatrix(task, truth_matrix, novice, 0);
  EXPECT_GT(by_expert(0, 0), by_novice(0, 0));
}

TEST(BenefitTest, ConfidentTaskHasTinyBenefit) {
  Task task;
  task.domain_vector = {1.0};
  task.num_choices = 2;
  Matrix confident(1, 2, 0.0);
  confident.SetRow(0, {0.99, 0.01});
  std::vector<double> s = {0.99, 0.01};
  Matrix ambiguous(1, 2, 0.5);
  std::vector<double> u = {0.5, 0.5};
  std::vector<double> quality = {0.9};
  const double benefit_confident = Benefit(task, confident, s, quality);
  const double benefit_ambiguous = Benefit(task, ambiguous, u, quality);
  EXPECT_GT(benefit_ambiguous, benefit_confident);
  EXPECT_LT(benefit_confident, 0.05);
}

TEST(BenefitTest, BetterMatchedWorkerYieldsHigherBenefit) {
  // Task fully in domain 0; worker A expert there, worker B not.
  Task task;
  task.domain_vector = {1.0, 0.0};
  task.num_choices = 2;
  Matrix truth_matrix(2, 2, 0.5);
  std::vector<double> s = {0.5, 0.5};
  std::vector<double> expert = {0.95, 0.5};
  std::vector<double> novice = {0.55, 0.95};
  EXPECT_GT(Benefit(task, truth_matrix, s, expert),
            Benefit(task, truth_matrix, s, novice));
}

TEST(BenefitTest, NonNegativeForCoherentSingleDomainModel) {
  // With a single domain the update is an exact Bayes step, so the expected
  // posterior entropy never exceeds the prior entropy (information never
  // hurts). With multiple domains and arbitrary M the bound need not hold,
  // which is why this test pins m = 1.
  Rng rng(107);
  for (int trial = 0; trial < 30; ++trial) {
    auto instance = MakeInstance(1, 1, 4, rng);
    EXPECT_GE(Benefit(instance.tasks[0], instance.matrices[0],
                      instance.truths[0], instance.worker_quality),
              -1e-9);
  }
}

// --- Theorem 4: additivity of the set benefit --------------------------------

class Theorem4Test : public ::testing::TestWithParam<int> {};

TEST_P(Theorem4Test, SetBenefitEqualsSumOfIndividualBenefits) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 6151 + 3);
  const size_t n = 2 + rng.UniformInt(3);  // 2-4 tasks
  auto instance = MakeInstance(n, 3, 3, rng);
  std::vector<size_t> subset(n);
  for (size_t i = 0; i < n; ++i) subset[i] = i;

  const double brute = BenefitOfSetBruteForce(
      instance.tasks, instance.matrices, instance.truths, subset,
      instance.worker_quality);
  double additive = 0.0;
  for (size_t i = 0; i < n; ++i) {
    additive += Benefit(instance.tasks[i], instance.matrices[i],
                        instance.truths[i], instance.worker_quality);
  }
  EXPECT_NEAR(brute, additive, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, Theorem4Test,
                         ::testing::Range(0, 25));

// --- Top-k selection ---------------------------------------------------------

TEST(TaskAssignerTest, SelectsHighestBenefitTasks) {
  Rng rng(109);
  auto instance = MakeInstance(30, 4, 3, rng);
  std::vector<uint8_t> eligible(30, 1);
  TaskAssigner assigner;
  auto selected = assigner.SelectTopK(instance.tasks, instance.matrices,
                                      instance.truths, instance.worker_quality,
                                      eligible, 5);
  ASSERT_EQ(selected.size(), 5u);
  // Verify against a full sort.
  std::vector<double> benefits(30);
  for (size_t i = 0; i < 30; ++i) {
    benefits[i] = Benefit(instance.tasks[i], instance.matrices[i],
                          instance.truths[i], instance.worker_quality);
  }
  double worst_selected = 1e9;
  for (size_t idx : selected) worst_selected = std::min(worst_selected, benefits[idx]);
  size_t better = 0;
  for (size_t i = 0; i < 30; ++i) {
    if (benefits[i] > worst_selected + 1e-12) ++better;
  }
  EXPECT_LE(better, 5u);
  // Returned in decreasing benefit order.
  for (size_t i = 1; i < selected.size(); ++i) {
    EXPECT_GE(benefits[selected[i - 1]], benefits[selected[i]] - 1e-12);
  }
}

TEST(TaskAssignerTest, RespectsEligibility) {
  Rng rng(111);
  auto instance = MakeInstance(10, 3, 3, rng);
  std::vector<uint8_t> eligible(10, 0);
  eligible[2] = eligible[7] = 1;
  TaskAssigner assigner;
  auto selected = assigner.SelectTopK(instance.tasks, instance.matrices,
                                      instance.truths, instance.worker_quality,
                                      eligible, 5);
  ASSERT_EQ(selected.size(), 2u);
  for (size_t idx : selected) {
    EXPECT_TRUE(idx == 2 || idx == 7);
  }
}

TEST(TaskAssignerTest, EmptyEligibilityReturnsNothing) {
  Rng rng(113);
  auto instance = MakeInstance(5, 3, 3, rng);
  std::vector<uint8_t> eligible(5, 0);
  TaskAssigner assigner;
  EXPECT_TRUE(assigner
                  .SelectTopK(instance.tasks, instance.matrices,
                              instance.truths, instance.worker_quality,
                              eligible, 3)
                  .empty());
}

TEST(TaskAssignerTest, SelectionIsDistinct) {
  Rng rng(115);
  auto instance = MakeInstance(20, 3, 3, rng);
  std::vector<uint8_t> eligible(20, 1);
  TaskAssigner assigner;
  auto selected = assigner.SelectTopK(instance.tasks, instance.matrices,
                                      instance.truths, instance.worker_quality,
                                      eligible, 20);
  std::vector<uint8_t> seen(20, 0);
  for (size_t idx : selected) {
    EXPECT_FALSE(seen[idx]);
    seen[idx] = 1;
  }
  EXPECT_EQ(selected.size(), 20u);
}

// --- Fused kernel: bit-exact against the allocating reference ----------------

TEST(FusedKernelTest, MatchesReferenceBitForBit) {
  // The fused scratch-arena kernel replays the reference's floating-point
  // operations in the same order, so the contract is exact equality of the
  // doubles — not a tolerance band.
  Rng rng(211);
  BenefitScratch scratch;
  for (int trial = 0; trial < 40; ++trial) {
    auto instance = MakeInstance(6, 2 + rng.UniformInt(6), 5, rng);
    for (size_t i = 0; i < instance.tasks.size(); ++i) {
      const double reference_entropy = ExpectedPosteriorEntropy(
          instance.tasks[i], instance.matrices[i], instance.worker_quality);
      const double fused_entropy = ExpectedPosteriorEntropy(
          instance.tasks[i], instance.matrices[i], instance.worker_quality,
          0.01, &scratch);
      EXPECT_EQ(reference_entropy, fused_entropy) << "trial " << trial;

      const double reference_benefit =
          Benefit(instance.tasks[i], instance.matrices[i], instance.truths[i],
                  instance.worker_quality);
      const double fused_benefit =
          Benefit(instance.tasks[i], instance.matrices[i], instance.truths[i],
                  instance.worker_quality, 0.01, &scratch);
      EXPECT_EQ(reference_benefit, fused_benefit) << "trial " << trial;
    }
  }
}

TEST(FusedKernelTest, MatchesReferenceOnSparseDomainVectors) {
  // Zeroed domain-vector entries hit the r_k == 0 skip in both kernels; the
  // skip must be bitwise-neutral (adding +0.0 vs. not adding at all).
  Rng rng(223);
  BenefitScratch scratch;
  for (int trial = 0; trial < 20; ++trial) {
    auto instance = MakeInstance(4, 5, 4, rng);
    for (auto& task : instance.tasks) {
      task.domain_vector[rng.UniformInt(5)] = 0.0;
      task.domain_vector[rng.UniformInt(5)] = 0.0;
      NormalizeInPlace(task.domain_vector);
    }
    for (size_t i = 0; i < instance.tasks.size(); ++i) {
      EXPECT_EQ(Benefit(instance.tasks[i], instance.matrices[i],
                        instance.truths[i], instance.worker_quality),
                Benefit(instance.tasks[i], instance.matrices[i],
                        instance.truths[i], instance.worker_quality, 0.01,
                        &scratch))
          << "trial " << trial;
    }
  }
}

TEST(FusedKernelTest, MatchesReferenceOnDegenerateMatrix) {
  // An all-zero truth-matrix row drives Theorem 3's denominator to zero;
  // both kernels must fall back to the same uniform posterior.
  Task task;
  task.domain_vector = {0.5, 0.5};
  task.num_choices = 3;
  Matrix truth_matrix(2, 3, 0.0);
  truth_matrix.SetRow(0, {0.6, 0.3, 0.1});  // row 1 stays all-zero
  std::vector<double> truth = {0.5, 0.3, 0.2};
  std::vector<double> quality = {0.8, 0.7};
  BenefitScratch scratch;
  EXPECT_EQ(Benefit(task, truth_matrix, truth, quality),
            Benefit(task, truth_matrix, truth, quality, 0.01, &scratch));
}

// --- Epoch-aware SelectTopK --------------------------------------------------

TEST(TaskAssignerCacheTest, CachedSelectionMatchesCachelessOverload) {
  Rng rng(227);
  auto instance = MakeInstance(40, 5, 4, rng);
  std::vector<uint8_t> eligible(40, 1);
  for (size_t i = 0; i < 40; i += 7) eligible[i] = 0;
  TaskAssignerOptions options;
  options.num_threads = 1;
  TaskAssigner assigner(options);

  const auto baseline =
      assigner.SelectTopK(instance.tasks, instance.matrices, instance.truths,
                          instance.worker_quality, eligible, 10);

  std::vector<uint64_t> task_epochs(40, 1);
  std::vector<CachedBenefit> cache(40);
  const auto cold =
      assigner.SelectTopK(instance.tasks, instance.matrices, instance.truths,
                          instance.worker_quality, eligible, 10, &task_epochs,
                          1, &cache);
  EXPECT_EQ(cold, baseline);
  for (size_t i = 0; i < 40; ++i) {
    if (!eligible[i]) continue;  // ineligible tasks are never scored
    EXPECT_EQ(cache[i].task_epoch, 1u) << "task " << i;
    EXPECT_EQ(cache[i].worker_epoch, 1u) << "task " << i;
  }

  const auto warm =
      assigner.SelectTopK(instance.tasks, instance.matrices, instance.truths,
                          instance.worker_quality, eligible, 10, &task_epochs,
                          1, &cache);
  EXPECT_EQ(warm, baseline);
}

TEST(TaskAssignerCacheTest, FreshEntriesAreServedFromTheCache) {
  // Poison one cached score without touching its epochs: the repeat call
  // must trust the entry (proof it did not rescore), and bumping the task
  // epoch must flush the poison and restore the true ranking.
  Rng rng(229);
  auto instance = MakeInstance(20, 4, 3, rng);
  std::vector<uint8_t> eligible(20, 1);
  TaskAssignerOptions options;
  options.num_threads = 1;
  TaskAssigner assigner(options);
  std::vector<uint64_t> task_epochs(20, 1);
  std::vector<CachedBenefit> cache(20);

  const auto baseline =
      assigner.SelectTopK(instance.tasks, instance.matrices, instance.truths,
                          instance.worker_quality, eligible, 5, &task_epochs,
                          1, &cache);

  cache[3].benefit += 100.0;  // dwarfs any real benefit (entropy <= log l)
  const auto poisoned =
      assigner.SelectTopK(instance.tasks, instance.matrices, instance.truths,
                          instance.worker_quality, eligible, 5, &task_epochs,
                          1, &cache);
  ASSERT_FALSE(poisoned.empty());
  EXPECT_EQ(poisoned.front(), 3u);

  task_epochs[3] = 2;  // stale -> rescored from live state
  const auto refreshed =
      assigner.SelectTopK(instance.tasks, instance.matrices, instance.truths,
                          instance.worker_quality, eligible, 5, &task_epochs,
                          1, &cache);
  EXPECT_EQ(refreshed, baseline);
  EXPECT_EQ(cache[3].task_epoch, 2u);
}

TEST(TaskAssignerCacheTest, WorkerEpochBumpInvalidatesEveryEntry) {
  Rng rng(233);
  auto instance = MakeInstance(15, 3, 3, rng);
  std::vector<uint8_t> eligible(15, 1);
  TaskAssignerOptions options;
  options.num_threads = 1;
  TaskAssigner assigner(options);
  std::vector<uint64_t> task_epochs(15, 1);
  std::vector<CachedBenefit> cache(15);

  const auto baseline =
      assigner.SelectTopK(instance.tasks, instance.matrices, instance.truths,
                          instance.worker_quality, eligible, 6, &task_epochs,
                          1, &cache);
  // Poison every entry; a worker-epoch bump must rescore all of them.
  for (auto& entry : cache) entry.benefit = -1000.0;
  const auto rescored =
      assigner.SelectTopK(instance.tasks, instance.matrices, instance.truths,
                          instance.worker_quality, eligible, 6, &task_epochs,
                          2, &cache);
  EXPECT_EQ(rescored, baseline);
  for (const auto& entry : cache) EXPECT_EQ(entry.worker_epoch, 2u);
}

TEST(TaskAssignerDeathTest, RejectsMismatchedEligibilityVector) {
  // Regression: SelectTopK indexes eligible[], matrices[] and truths[] by
  // task id; a short parallel array used to be an out-of-bounds read.
  Rng rng(7);
  auto instance = MakeInstance(5, 3, 2, rng);
  std::vector<uint8_t> eligible(4, 1);  // one short
  TaskAssigner assigner;
  EXPECT_DEATH(assigner.SelectTopK(instance.tasks, instance.matrices,
                                   instance.truths, instance.worker_quality,
                                   eligible, 2),
               "eligible.size");
}

TEST(TaskAssignerDeathTest, RejectsOutOfRangeWorkerQuality) {
  // Eq. 5 qualities live in [0, 1]; a quality of 1.5 would silently inflate
  // every benefit score.
  Rng rng(8);
  auto instance = MakeInstance(5, 3, 2, rng);
  instance.worker_quality[1] = 1.5;
  std::vector<uint8_t> eligible(5, 1);
  TaskAssigner assigner;
  EXPECT_DEATH(assigner.SelectTopK(instance.tasks, instance.matrices,
                                   instance.truths, instance.worker_quality,
                                   eligible, 2),
               "OTA worker quality");
}

}  // namespace
}  // namespace docs::core
