// Tests for the annotated synchronization wrappers (common/sync.h,
// DESIGN.md §14). The wrappers are thin by design, so these tests pin the
// behavioral contracts the rest of the repo leans on: mutual exclusion,
// try-lock semantics (including the kTryToLock scoped form), shared vs
// exclusive admission on SharedMutex, and CondVar's release/reacquire
// protocol with explicit predicate loops. The TSan CI config runs this
// suite, so a wrapper that stopped establishing happens-before would fail
// here, not in a flaky downstream suite.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "gtest/gtest.h"

namespace docs {
namespace {

TEST(MutexTest, ProvidesMutualExclusion) {
  Mutex mu;
  int counter = 0;  // guarded by mu (by convention in this test)
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(MutexTest, TryLockFailsWhileHeld) {
  Mutex mu;
  mu.Lock();
  std::atomic<bool> acquired{true};
  // TryLock must be exercised from another thread: self-try-lock on a held
  // non-recursive mutex is undefined behavior.
  std::thread prober([&] { acquired.store(mu.TryLock()); });
  prober.join();
  EXPECT_FALSE(acquired.load());
  mu.Unlock();
  std::thread prober2([&] {
    const bool ok = mu.TryLock();
    acquired.store(ok);
    if (ok) mu.Unlock();
  });
  prober2.join();
  EXPECT_TRUE(acquired.load());
}

TEST(MutexTest, ScopedTryToLockReportsOwnership) {
  Mutex mu;
  {
    MutexLock held(&mu);
    ASSERT_TRUE(held.owns_lock());
    std::atomic<bool> contender_owned{true};
    std::thread contender([&] {
      MutexLock try_lock(&mu, kTryToLock);
      contender_owned.store(try_lock.owns_lock());
    });
    contender.join();
    EXPECT_FALSE(contender_owned.load());
  }
  // Uncontended: the try form must take the lock and release it on scope
  // exit (a leaked hold would deadlock the plain MutexLock below).
  {
    MutexLock try_lock(&mu, kTryToLock);
    EXPECT_TRUE(try_lock.owns_lock());
  }
  MutexLock reacquired(&mu);
  EXPECT_TRUE(reacquired.owns_lock());
}

TEST(SharedMutexTest, AdmitsConcurrentReaders) {
  SharedMutex mu;
  constexpr int kReaders = 4;
  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      ReaderLock lock(&mu);
      const int now = inside.fetch_add(1) + 1;
      int seen = max_inside.load();
      while (now > seen && !max_inside.compare_exchange_weak(seen, now)) {
      }
      // Linger so the readers genuinely overlap.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      inside.fetch_sub(1);
    });
  }
  for (auto& reader : readers) reader.join();
  EXPECT_GT(max_inside.load(), 1) << "readers never overlapped";
}

TEST(SharedMutexTest, WriterExcludedWhileReaderHeld) {
  SharedMutex mu;
  mu.LockShared();
  std::atomic<bool> writer_got_in{true};
  std::thread writer([&] {
    const bool ok = mu.TryLock();
    writer_got_in.store(ok);
    if (ok) mu.Unlock();
  });
  writer.join();
  EXPECT_FALSE(writer_got_in.load());
  mu.UnlockShared();

  // And the reverse: a writer excludes readers.
  WriterLock exclusive(&mu);
  std::atomic<bool> reader_got_in{true};
  std::thread reader([&] {
    const bool ok = mu.TryLockShared();
    reader_got_in.store(ok);
    if (ok) mu.UnlockShared();
  });
  reader.join();
  EXPECT_FALSE(reader_got_in.load());
}

TEST(SharedMutexTest, WriterSeesAllReaderSideEffectsAfterExclusion) {
  SharedMutex mu;
  int value = 0;  // guarded by mu
  constexpr int kWriters = 4;
  constexpr int kRounds = 2000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        WriterLock lock(&mu);
        ++value;
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      ReaderLock lock(&mu);
      EXPECT_GE(value, 0);
      EXPECT_LE(value, kWriters * kRounds);
    }
  });
  for (auto& writer : writers) writer.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  ReaderLock lock(&mu);
  EXPECT_EQ(value, kWriters * kRounds);
}

TEST(CondVarTest, WaitReleasesAndReacquiresTheMutex) {
  Mutex mu;
  CondVar cv;
  bool ready = false;    // guarded by mu
  bool consumed = false;  // guarded by mu
  std::thread consumer([&] {
    MutexLock lock(&mu);
    // The explicit predicate loop the wrappers are designed around: the
    // guarded read sits in the annotated caller, not in a lambda.
    while (!ready) cv.Wait(mu);
    consumed = true;
    cv.NotifyAll();
  });
  {
    // If Wait failed to release the mutex, this Lock would deadlock.
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyAll();
  }
  {
    MutexLock lock(&mu);
    while (!consumed) cv.Wait(mu);
    // If Wait failed to reacquire before returning, the consumer's write to
    // `consumed` would race this read (the TSan config would flag it).
    EXPECT_TRUE(consumed);
  }
  consumer.join();
}

TEST(CondVarTest, NotifyOneWakesAWaiterPipeline) {
  // A tiny bounded hand-off: producer -> consumer through one slot, pinning
  // that repeated Wait/Notify cycles neither deadlock nor drop items.
  Mutex mu;
  CondVar slot_filled;
  CondVar slot_empty;
  int slot = -1;      // guarded by mu; -1 = empty
  long consumed_sum = 0;  // guarded by mu
  constexpr int kItems = 1000;
  std::thread consumer([&] {
    for (int i = 0; i < kItems; ++i) {
      MutexLock lock(&mu);
      while (slot < 0) slot_filled.Wait(mu);
      consumed_sum += slot;
      slot = -1;
      slot_empty.NotifyOne();
    }
  });
  long produced_sum = 0;
  for (int i = 0; i < kItems; ++i) {
    MutexLock lock(&mu);
    while (slot >= 0) slot_empty.Wait(mu);
    slot = i;
    produced_sum += i;
    slot_filled.NotifyOne();
  }
  consumer.join();
  MutexLock lock(&mu);
  EXPECT_EQ(consumed_sum, produced_sum);
}

TEST(MutexTest, AssertHeldIsANoOpAtRuntime) {
  // AssertHeld talks to the static analysis only; at runtime it must be
  // callable and free of side effects whenever the lock is actually held.
  Mutex mu;
  MutexLock lock(&mu);
  mu.AssertHeld();
  SharedMutex shared;
  ReaderLock reader(&shared);
  shared.AssertReaderHeld();
}

}  // namespace
}  // namespace docs
