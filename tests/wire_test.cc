#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/wire.h"

namespace docs::net {
namespace {

// Feeds `bytes` into a fresh decoder and expects exactly one frame.
Frame DecodeOne(const std::string& bytes) {
  FrameDecoder decoder;
  decoder.Append(bytes.data(), bytes.size());
  Frame frame;
  std::string error;
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kFrame)
      << error;
  EXPECT_EQ(decoder.buffered(), 0u);
  return frame;
}

TEST(WireTest, RequestTasksRoundTrip) {
  RequestTasksReq req;
  req.worker_id = "mturk:A3XK91";
  req.k = 7;
  const Frame frame = DecodeOne(EncodeFrame(EncodeRequestTasksReq(req)));
  EXPECT_EQ(frame.type, MessageType::kRequestTasksReq);
  EXPECT_EQ(frame.status, StatusCode::kOk);
  RequestTasksReq out;
  ASSERT_TRUE(DecodeRequestTasksReq(frame, &out).ok());
  EXPECT_EQ(out.worker_id, req.worker_id);
  EXPECT_EQ(out.k, req.k);
}

TEST(WireTest, RequestTasksRespRoundTrip) {
  RequestTasksResp resp;
  resp.tasks = {0, 42, 1u << 20, 7};
  RequestTasksResp out;
  ASSERT_TRUE(
      DecodeRequestTasksResp(DecodeOne(EncodeFrame(EncodeRequestTasksResp(resp))),
                             &out)
          .ok());
  EXPECT_EQ(out.tasks, resp.tasks);
}

TEST(WireTest, SubmitAnswerRoundTrip) {
  SubmitAnswerReq req;
  req.worker_id = "w";
  req.task = 123456789012345ull;
  req.choice = 3;
  SubmitAnswerReq out;
  ASSERT_TRUE(
      DecodeSubmitAnswerReq(DecodeOne(EncodeFrame(EncodeSubmitAnswerReq(req))),
                            &out)
          .ok());
  EXPECT_EQ(out.worker_id, req.worker_id);
  EXPECT_EQ(out.task, req.task);
  EXPECT_EQ(out.choice, req.choice);
}

TEST(WireTest, SubmitAnswerCarriesRequestId) {
  SubmitAnswerReq req;
  req.worker_id = "retry-worker";
  req.task = 9;
  req.choice = 2;
  req.request_id = 0xDEADBEEFCAFE0001ull;
  const Frame frame = DecodeOne(EncodeFrame(EncodeSubmitAnswerReq(req)));
  EXPECT_EQ(frame.version, kWireVersion);
  SubmitAnswerReq out;
  ASSERT_TRUE(DecodeSubmitAnswerReq(frame, &out).ok());
  EXPECT_EQ(out.request_id, req.request_id);
}

// A v1 SubmitAnswerReq (no trailing request_id) must still decode: old
// clients keep working against a v2 gateway, just without dedup.
TEST(WireTest, V1SubmitAnswerDecodesWithoutRequestId) {
  SubmitAnswerReq req;
  req.worker_id = "legacy";
  req.task = 4;
  req.choice = 1;
  Frame frame = EncodeSubmitAnswerReq(req);
  frame.version = 1;
  frame.payload.resize(frame.payload.size() - 8);  // strip the v2 request_id
  const Frame decoded = DecodeOne(EncodeFrame(frame));
  EXPECT_EQ(decoded.version, 1);
  SubmitAnswerReq out;
  out.request_id = 77;  // must be overwritten with the v1 default
  ASSERT_TRUE(DecodeSubmitAnswerReq(decoded, &out).ok());
  EXPECT_EQ(out.worker_id, "legacy");
  EXPECT_EQ(out.task, 4u);
  EXPECT_EQ(out.request_id, 0u);
}

// A frame claiming v2 but lacking the request_id bytes is torn, not legacy.
TEST(WireTest, V2SubmitAnswerMissingRequestIdIsDataLoss) {
  SubmitAnswerReq req;
  req.worker_id = "w";
  req.task = 1;
  req.choice = 0;
  Frame frame = EncodeSubmitAnswerReq(req);
  frame.payload.resize(frame.payload.size() - 8);
  SubmitAnswerReq out;
  EXPECT_EQ(DecodeSubmitAnswerReq(frame, &out).code(), StatusCode::kDataLoss);
}

TEST(WireTest, ExpireLeasesRoundTrip) {
  ExpireLeasesReq req;
  req.now = 99;
  ExpireLeasesReq out;
  ASSERT_TRUE(
      DecodeExpireLeasesReq(DecodeOne(EncodeFrame(EncodeExpireLeasesReq(req))),
                            &out)
          .ok());
  EXPECT_EQ(out.now, 99u);

  ExpireLeasesResp resp;
  resp.expired.push_back({3, 17, 21});
  resp.expired.push_back({4, 2, 22});
  ExpireLeasesResp resp_out;
  ASSERT_TRUE(DecodeExpireLeasesResp(
                  DecodeOne(EncodeFrame(EncodeExpireLeasesResp(resp))),
                  &resp_out)
                  .ok());
  ASSERT_EQ(resp_out.expired.size(), 2u);
  EXPECT_EQ(resp_out.expired[0].worker, 3u);
  EXPECT_EQ(resp_out.expired[1].task, 2u);
  EXPECT_EQ(resp_out.expired[1].deadline, 22u);
}

TEST(WireTest, StatsRoundTrip) {
  StatsResp resp;
  resp.num_tasks = 1;
  resp.num_answers = 2;
  resp.outstanding_leases = 3;
  resp.lease_clock = 4;
  resp.requests_served = 5;
  resp.requests_shed = 6;
  resp.answers_deduped = 7;
  resp.wal_records = 8;
  StatsResp out;
  ASSERT_TRUE(
      DecodeStatsResp(DecodeOne(EncodeFrame(EncodeStatsResp(resp))), &out)
          .ok());
  EXPECT_EQ(out.num_tasks, 1u);
  EXPECT_EQ(out.requests_shed, 6u);
  EXPECT_EQ(out.answers_deduped, 7u);
  EXPECT_EQ(out.wal_records, 8u);
}

// A v1 StatsResp (six counters, no durability fields) decodes with the v2
// fields zeroed rather than failing.
TEST(WireTest, V1StatsRespDecodesWithZeroDurabilityCounters) {
  StatsResp resp;
  resp.num_tasks = 11;
  resp.requests_shed = 13;
  Frame frame = EncodeStatsResp(resp);
  frame.version = 1;
  frame.payload.resize(frame.payload.size() - 16);  // strip the v2 counters
  StatsResp out;
  out.answers_deduped = 99;
  out.wal_records = 99;
  ASSERT_TRUE(DecodeStatsResp(DecodeOne(EncodeFrame(frame)), &out).ok());
  EXPECT_EQ(out.num_tasks, 11u);
  EXPECT_EQ(out.requests_shed, 13u);
  EXPECT_EQ(out.answers_deduped, 0u);
  EXPECT_EQ(out.wal_records, 0u);
}

// A server answering a v1 peer encodes at the peer's version: the frame is
// stamped v1 and the payload takes the six-counter layout without the v2
// durability trailer (which a v1 decoder would reject as trailing bytes).
TEST(WireTest, StatsRespEncodedForV1PeerOmitsDurabilityCounters) {
  StatsResp resp;
  resp.num_tasks = 3;
  resp.requests_served = 5;
  resp.answers_deduped = 7;
  resp.wal_records = 9;
  const Frame frame = EncodeStatsResp(resp, 1);
  EXPECT_EQ(frame.version, 1);
  EXPECT_EQ(frame.payload.size(), 48u);  // six u64 counters, nothing more
  StatsResp out;
  ASSERT_TRUE(DecodeStatsResp(DecodeOne(EncodeFrame(frame)), &out).ok());
  EXPECT_EQ(out.num_tasks, 3u);
  EXPECT_EQ(out.requests_served, 5u);
  EXPECT_EQ(out.answers_deduped, 0u);
  EXPECT_EQ(out.wal_records, 0u);
}

TEST(WireTest, ErrorFrameCarriesStatusAcrossTheWire) {
  const Status original = InvalidArgumentError("duplicate answer");
  const Frame frame = DecodeOne(EncodeFrame(
      MakeErrorFrame(MessageType::kSubmitAnswerResp, original)));
  EXPECT_EQ(frame.type, MessageType::kSubmitAnswerResp);
  const Status restored = FrameStatus(frame);
  EXPECT_EQ(restored.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(restored.message(), "duplicate answer");
}

TEST(WireTest, EveryStatusCodeSurvivesTheWireMapping) {
  const StatusCode all[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kAlreadyExists,
      StatusCode::kFailedPrecondition, StatusCode::kOutOfRange,
      StatusCode::kInternal,     StatusCode::kIoError,
      StatusCode::kDataLoss,     StatusCode::kUnavailable,
  };
  for (StatusCode code : all) {
    EXPECT_EQ(WireToStatusCode(StatusCodeToWire(code)), code);
  }
  // Unknown wire bytes degrade to kInternal instead of asserting.
  EXPECT_EQ(WireToStatusCode(250), StatusCode::kInternal);
}

TEST(WireTest, ResponseTypePairing) {
  EXPECT_TRUE(IsRequestType(MessageType::kRequestTasksReq));
  EXPECT_FALSE(IsRequestType(MessageType::kRequestTasksResp));
  EXPECT_EQ(ResponseTypeFor(MessageType::kStatsReq), MessageType::kStatsResp);
  EXPECT_EQ(ResponseTypeFor(MessageType::kExpireLeasesReq),
            MessageType::kExpireLeasesResp);
}

TEST(WireTest, TornDeliveryByteByByte) {
  SubmitAnswerReq req;
  req.worker_id = "torn-frame-worker";
  req.task = 5;
  req.choice = 1;
  const std::string bytes = EncodeFrame(EncodeSubmitAnswerReq(req));
  FrameDecoder decoder;
  Frame frame;
  // Every proper prefix must yield kNeedMore; the final byte completes it.
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.Append(&bytes[i], 1);
    EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kNeedMore)
        << "after byte " << i;
  }
  decoder.Append(&bytes[bytes.size() - 1], 1);
  ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Result::kFrame);
  SubmitAnswerReq out;
  ASSERT_TRUE(DecodeSubmitAnswerReq(frame, &out).ok());
  EXPECT_EQ(out.worker_id, req.worker_id);
}

TEST(WireTest, CoalescedFramesDecodeInOrder) {
  std::string stream;
  for (uint32_t k = 1; k <= 3; ++k) {
    RequestTasksReq req;
    req.worker_id = "w" + std::to_string(k);
    req.k = k;
    stream += EncodeFrame(EncodeRequestTasksReq(req));
  }
  FrameDecoder decoder;
  decoder.Append(stream.data(), stream.size());
  for (uint32_t k = 1; k <= 3; ++k) {
    Frame frame;
    ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Result::kFrame);
    RequestTasksReq out;
    ASSERT_TRUE(DecodeRequestTasksReq(frame, &out).ok());
    EXPECT_EQ(out.k, k);
  }
  Frame extra;
  EXPECT_EQ(decoder.Next(&extra), FrameDecoder::Result::kNeedMore);
}

TEST(WireTest, BadMagicIsAStickyProtocolError) {
  std::string bytes = EncodeFrame(EncodeStatsReq());
  bytes[0] = 'X';
  FrameDecoder decoder;
  decoder.Append(bytes.data(), bytes.size());
  Frame frame;
  std::string error;
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kError);
  EXPECT_NE(error.find("magic"), std::string::npos);
  // Sticky: feeding good bytes afterwards cannot resynchronize the stream.
  const std::string good = EncodeFrame(EncodeStatsReq());
  decoder.Append(good.data(), good.size());
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kError);
  EXPECT_TRUE(decoder.broken());
}

TEST(WireTest, WrongVersionRejected) {
  std::string bytes = EncodeFrame(EncodeStatsReq());
  bytes[2] = static_cast<char>(kWireVersion + 1);
  FrameDecoder decoder;
  decoder.Append(bytes.data(), bytes.size());
  Frame frame;
  std::string error;
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kError);
  EXPECT_NE(error.find("version"), std::string::npos);
}

TEST(WireTest, UnknownTypeRejected) {
  std::string bytes = EncodeFrame(EncodeStatsReq());
  bytes[3] = static_cast<char>(200);
  FrameDecoder decoder;
  decoder.Append(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kError);
}

TEST(WireTest, OversizedPayloadLengthRejectedWithoutAllocating) {
  std::string bytes = EncodeFrame(EncodeStatsReq());
  // Claim a payload far beyond kMaxPayloadSize.
  bytes[8] = static_cast<char>(0xff);
  bytes[9] = static_cast<char>(0xff);
  bytes[10] = static_cast<char>(0xff);
  bytes[11] = static_cast<char>(0x7f);
  FrameDecoder decoder;
  decoder.Append(bytes.data(), bytes.size());
  Frame frame;
  std::string error;
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Result::kError);
  EXPECT_NE(error.find("kMaxPayloadSize"), std::string::npos);
}

TEST(WireTest, NonzeroReservedBytesRejected) {
  std::string bytes = EncodeFrame(EncodeStatsReq());
  bytes[6] = 1;
  FrameDecoder decoder;
  decoder.Append(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kError);
}

TEST(WireTest, TruncatedPayloadDecodeFailsCleanly) {
  SubmitAnswerReq req;
  req.worker_id = "worker";
  req.task = 1;
  req.choice = 0;
  Frame frame = EncodeSubmitAnswerReq(req);
  frame.payload.resize(frame.payload.size() - 3);  // cut into the integers
  SubmitAnswerReq out;
  EXPECT_EQ(DecodeSubmitAnswerReq(frame, &out).code(), StatusCode::kDataLoss);
}

TEST(WireTest, TrailingGarbageAfterBodyRejected) {
  Frame frame = EncodeExpireLeasesReq({7});
  frame.payload.push_back('\0');
  ExpireLeasesReq out;
  EXPECT_EQ(DecodeExpireLeasesReq(frame, &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(WireTest, DecodeOfMismatchedTypeRejected) {
  const Frame frame = EncodeStatsReq();
  RequestTasksReq out;
  EXPECT_EQ(DecodeRequestTasksReq(frame, &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(WireTest, OverlongWorkerIdNeverDecodes) {
  RequestTasksReq req;
  req.worker_id.assign(kMaxWorkerIdSize + 1, 'x');
  req.k = 1;
  // The encoder refuses to smuggle the id; the decoder rejects the marker.
  RequestTasksReq out;
  EXPECT_FALSE(
      DecodeRequestTasksReq(DecodeOne(EncodeFrame(EncodeRequestTasksReq(req))),
                            &out)
          .ok());
}

}  // namespace
}  // namespace docs::net
