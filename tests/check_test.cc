// Contract-layer tests: death tests for every DOCS_CHECK_* form, DCHECK
// no-op verification in non-debug builds, the test-hook escape hatch, and
// the domain validators' edge cases (empty span, tolerance boundary, -0.0,
// NaN). scripts/ci.sh runs this binary in both DOCS_DEBUG_CHECKS=OFF
// (release/sanitize trees) and =ON (strict tree) configurations.

#include "common/check.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/matrix.h"

namespace docs {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// --- DOCS_CHECK family -----------------------------------------------------

TEST(CheckDeathTest, CheckFiresWithExpressionAndStreamedContext) {
  EXPECT_DEATH(DOCS_CHECK(1 == 2) << "extra context " << 42,
               "DOCS_CHECK\\(1 == 2\\) failed.*extra context 42");
}

TEST(CheckDeathTest, CheckReportsFileAndLine) {
  EXPECT_DEATH(DOCS_CHECK(false), "check_test\\.cc");
}

TEST(CheckDeathTest, ComparisonFormsPrintBothOperands) {
  const int three = 3;
  const int four = 4;
  EXPECT_DEATH(DOCS_CHECK_EQ(three, four), "three == four \\(3 vs. 4\\)");
  EXPECT_DEATH(DOCS_CHECK_NE(three, three), "three != three \\(3 vs. 3\\)");
  EXPECT_DEATH(DOCS_CHECK_LT(four, three), "four < three \\(4 vs. 3\\)");
  EXPECT_DEATH(DOCS_CHECK_LE(four, three), "four <= three \\(4 vs. 3\\)");
  EXPECT_DEATH(DOCS_CHECK_GT(three, four), "three > four \\(3 vs. 4\\)");
  EXPECT_DEATH(DOCS_CHECK_GE(three, four), "three >= four \\(3 vs. 4\\)");
}

TEST(CheckTest, PassingChecksAreSilent) {
  DOCS_CHECK(true) << "never rendered";
  DOCS_CHECK_EQ(2, 2);
  DOCS_CHECK_NE(2, 3);
  DOCS_CHECK_LT(2, 3);
  DOCS_CHECK_LE(3, 3);
  DOCS_CHECK_GT(3, 2);
  DOCS_CHECK_GE(3, 3);
}

TEST(CheckTest, OperandsEvaluatedExactlyOnce) {
  int evaluations = 0;
  auto count = [&evaluations] { return ++evaluations; };
  DOCS_CHECK_GE(count(), 1);
  EXPECT_EQ(evaluations, 1);
}

TEST(CheckTest, ChecksNestCleanlyUnderIfElse) {
  // The macros must not capture a dangling else.
  if (true)
    DOCS_CHECK(true);
  else
    FAIL() << "else bound to the wrong if";
  if (false)
    DOCS_CHECK_EQ(1, 2);  // must not evaluate
  else
    SUCCEED();
}

// --- DOCS_DCHECK family ----------------------------------------------------

TEST(DCheckTest, RespectsBuildConfiguration) {
  int evaluations = 0;
  auto count = [&evaluations] { return ++evaluations; };
#if DOCS_DEBUG_CHECKS
  DOCS_DCHECK(count() == 1);
  DOCS_DCHECK_EQ(count(), 2);
  EXPECT_EQ(evaluations, 2) << "debug contracts must evaluate when enabled";
  EXPECT_DEATH(DOCS_DCHECK(false) << "armed", "DOCS_CHECK\\(false\\).*armed");
  EXPECT_DEATH(DOCS_DCHECK_LT(2, 1), "2 < 1 \\(2 vs. 1\\)");
#else
  DOCS_DCHECK(count() == 999) << "never evaluated";
  DOCS_DCHECK_EQ(count(), 999);
  DOCS_DCHECK_NE(count(), 0);
  DOCS_DCHECK_LT(count(), -1);
  DOCS_DCHECK_LE(count(), -1);
  DOCS_DCHECK_GT(count(), 999);
  DOCS_DCHECK_GE(count(), 999);
  EXPECT_EQ(evaluations, 0)
      << "disabled debug contracts must not evaluate operands";
#endif
}

TEST(DCheckTest, ValidatorMacrosRespectBuildConfiguration) {
  const std::vector<double> bogus = {kNan, 0.5};
#if DOCS_DEBUG_CHECKS
  EXPECT_DEATH(DOCS_DCHECK_SIMPLEX(bogus, 1e-9, "bogus"), "not finite");
  EXPECT_DEATH(DOCS_DCHECK_FINITE(bogus, "bogus"), "CheckFinite failed");
#else
  DOCS_DCHECK_SIMPLEX(bogus, 1e-9, "bogus");
  DOCS_DCHECK_UNIT_INTERVAL(bogus, 0.0, "bogus");
  DOCS_DCHECK_FINITE(bogus, "bogus");
#endif
}

// --- Test hook -------------------------------------------------------------

TEST(CheckTest, FailureHandlerInterceptsInProcess) {
  auto thrower = [](const std::string& message) {
    throw std::runtime_error(message);
  };
  internal_check::CheckFailureHandler previous =
      internal_check::SetCheckFailureHandler(+thrower);
  std::string captured;
  try {
    DOCS_CHECK_EQ(6 * 7, 41) << "hook context";
  } catch (const std::runtime_error& error) {
    captured = error.what();
  }
  internal_check::SetCheckFailureHandler(previous);
  EXPECT_NE(captured.find("6 * 7 == 41 (42 vs. 41)"), std::string::npos)
      << captured;
  EXPECT_NE(captured.find("hook context"), std::string::npos) << captured;
  EXPECT_NE(captured.find("check_test.cc"), std::string::npos) << captured;
}

// --- CheckSimplex ----------------------------------------------------------

TEST(SimplexValidatorTest, AcceptsExactAndToleratedSimplices) {
  CheckSimplex(std::vector<double>{1.0});
  CheckSimplex(std::vector<double>{0.25, 0.25, 0.5});
  // Entries of -0.0 are inside [-tol, 1 + tol] for every tol >= 0.
  CheckSimplex(std::vector<double>{-0.0, 1.0, -0.0});
  // Exactly on the tolerance boundary (exactly-representable values so the
  // sum carries no rounding): |sum - 1| == tol passes.
  CheckSimplex(std::vector<double>{0.5, 0.75}, 0.25);
  CheckSimplex(std::vector<double>{0.5, 0.25}, 0.25);
}

TEST(SimplexValidatorDeathTest, RejectsEmptySpan) {
  EXPECT_DEATH(CheckSimplex(std::vector<double>{}, 1e-9, "prior"),
               "prior is empty");
}

TEST(SimplexValidatorDeathTest, RejectsJustPastToleranceBoundary) {
  EXPECT_DEATH(CheckSimplex(std::vector<double>{0.5, 0.8125}, 0.25),
               "sums to");
}

TEST(SimplexValidatorDeathTest, RejectsNegativeMass) {
  EXPECT_DEATH(CheckSimplex(std::vector<double>{-0.25, 1.25}, 1e-9, "prior"),
               "prior\\[0\\] = -0.25 outside");
}

TEST(SimplexValidatorDeathTest, RejectsNaNAndInf) {
  EXPECT_DEATH(CheckSimplex(std::vector<double>{kNan, 1.0}, 1e-9, "prior"),
               "prior\\[0\\] = .*not finite");
  EXPECT_DEATH(CheckSimplex(std::vector<double>{kInf, 1.0}, 1e-9, "prior"),
               "prior\\[0\\] = .*not finite");
}

// --- CheckUnitInterval -----------------------------------------------------

TEST(UnitIntervalValidatorTest, AcceptsBoundariesAndNegativeZero) {
  CheckUnitInterval(0.0);
  CheckUnitInterval(-0.0);
  CheckUnitInterval(1.0);
  CheckUnitInterval(1.0 + 1e-9, 1e-9);  // exactly on the tolerance boundary
  CheckUnitInterval(std::vector<double>{0.0, 0.5, 1.0});
}

TEST(UnitIntervalValidatorDeathTest, RejectsOutOfRangeAndNaN) {
  EXPECT_DEATH(CheckUnitInterval(1.0 + 1e-6, 0.0, "quality"),
               "quality = 1\\.000001 outside");
  EXPECT_DEATH(CheckUnitInterval(-0.5, 1e-9, "quality"), "quality = -0.5");
  EXPECT_DEATH(CheckUnitInterval(kNan, 1e-9, "quality"), "quality = ");
  EXPECT_DEATH(
      CheckUnitInterval(std::vector<double>{0.5, 2.0}, 0.0, "quality"),
      "quality\\[1\\] = 2 outside");
}

// --- CheckFinite -----------------------------------------------------------

TEST(FiniteValidatorTest, AcceptsFiniteInputs) {
  CheckFinite(0.0);
  CheckFinite(-1e308);
  CheckFinite(std::vector<double>{});  // empty span: nothing to reject
  CheckFinite(std::vector<double>{1.0, -2.0});
  CheckFinite(Matrix(2, 2, 0.25));
  CheckFinite(Matrix());  // empty matrix
}

TEST(FiniteValidatorDeathTest, RejectsNaNAndInfWithLocation) {
  EXPECT_DEATH(CheckFinite(kNan, "benefit"), "benefit = ");
  EXPECT_DEATH(CheckFinite(std::vector<double>{0.0, kInf}, "scores"),
               "scores\\[1\\] = inf");
  Matrix poisoned(2, 3, 0.0);
  poisoned(1, 2) = kNan;
  EXPECT_DEATH(CheckFinite(poisoned, "truth_matrix"),
               "truth_matrix\\(1, 2\\) = ");
}

}  // namespace
}  // namespace docs
