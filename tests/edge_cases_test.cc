#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>

#include "baselines/assigners.h"
#include "baselines/dawid_skene.h"
#include "baselines/zencrowd.h"
#include "common/table_printer.h"
#include "core/docs_system.h"
#include "crowd/campaign.h"
#include "crowd/worker_pool.h"
#include "datasets/dataset.h"
#include "kb/synthetic_kb.h"
#include "nlp/entity_linker.h"
#include "storage/log_store.h"
#include "topicmodel/lda.h"

namespace docs {
namespace {

class EdgeCasesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new kb::SyntheticKb(kb::BuildSyntheticKb());
  }
  static void TearDownTestSuite() {
    delete kb_;
    kb_ = nullptr;
  }
  static kb::SyntheticKb* kb_;
};

kb::SyntheticKb* EdgeCasesTest::kb_ = nullptr;

// --- DocsSystem redundancy cap ------------------------------------------------

TEST_F(EdgeCasesTest, MaxAnswersPerTaskClosesTasks) {
  core::DocsSystemOptions options;
  options.golden_count = 0;
  options.max_answers_per_task = 2;
  core::DocsSystem system(&kb_->knowledge_base, options);
  std::vector<core::TaskInput> inputs = {
      {"Is Stephen Curry a point guard?", 2},
      {"Did Leonardo DiCaprio star in Titanic?", 2},
  };
  ASSERT_TRUE(system.AddTasks(inputs).ok());
  // Task 0 absorbs two answers and must then disappear from assignments.
  system.OnAnswer(system.WorkerIndex("a"), 0, 0);
  system.OnAnswer(system.WorkerIndex("b"), 0, 0);
  const size_t fresh = system.WorkerIndex("c");
  auto selected = system.SelectTasks(fresh, 2);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0], 1u);
}

TEST_F(EdgeCasesTest, ExhaustedSystemReturnsNoTasks) {
  core::DocsSystemOptions options;
  options.golden_count = 0;
  options.max_answers_per_task = 1;
  core::DocsSystem system(&kb_->knowledge_base, options);
  std::vector<core::TaskInput> inputs = {{"Is K2 in Asia?", 2}};
  ASSERT_TRUE(system.AddTasks(inputs).ok());
  system.OnAnswer(system.WorkerIndex("a"), 0, 0);
  EXPECT_TRUE(system.SelectTasks(system.WorkerIndex("b"), 5).empty());
}

TEST_F(EdgeCasesTest, SelectTasksForUnknownWorkerIsEmpty) {
  core::DocsSystem system(&kb_->knowledge_base);
  std::vector<core::TaskInput> inputs = {{"Is K2 in Asia?", 2}};
  ASSERT_TRUE(system.AddTasks(inputs).ok());
  EXPECT_TRUE(system.SelectTasks(/*worker=*/99, 3).empty());
}

// --- Campaign driver under over-budget ----------------------------------------

TEST_F(EdgeCasesTest, CampaignTerminatesWhenBudgetExceedsSupply) {
  // 4 tasks, 3 workers: at most 12 answers exist, but we ask for 40. The
  // stall guard must end the campaign instead of spinning forever.
  datasets::Dataset dataset;
  dataset.name = "tiny";
  dataset.domain_labels = {"X"};
  dataset.label_to_domain = {0};
  for (int i = 0; i < 4; ++i) {
    datasets::TaskSpec task;
    task.text = "t" + std::to_string(i);
    task.choices = {"a", "b"};
    task.truth = 0;
    task.label = 0;
    task.true_domain = 0;
    dataset.tasks.push_back(std::move(task));
  }
  crowd::WorkerPoolOptions pool_options;
  pool_options.num_workers = 3;
  auto workers = crowd::MakeWorkerPool(1, {0}, pool_options, 6);
  baselines::RandomAssigner policy({2, 2, 2, 2}, 7);
  crowd::CampaignOptions campaign;
  campaign.total_answers_per_policy = 40;
  auto outcomes =
      crowd::RunAssignmentCampaign(dataset, workers, {&policy}, campaign);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].answers_collected, 12u);
}

// --- LogStore corruption mid-file ----------------------------------------------

TEST(LogStoreEdgeTest, CorruptMiddleRecordIsDataLossCorruptTailTruncates) {
  const std::string path = ::testing::TempDir() + "/mid_corrupt.log";
  const auto write_log_with_corrupt = [&](const std::string& victim) {
    std::remove(path.c_str());
    {
      auto log = storage::LogStore::Open(path, nullptr);
      ASSERT_TRUE(log.ok());
      ASSERT_TRUE(log->Append("first").ok());
      ASSERT_TRUE(log->Append("second").ok());
      ASSERT_TRUE(log->Append("third").ok());
      ASSERT_TRUE(log->Flush().ok());
    }
    // Flip a byte inside the victim record's payload.
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string contents = buffer.str();
    const size_t pos = contents.find(victim);
    ASSERT_NE(pos, std::string::npos);
    contents[pos] = 'X';
    std::ofstream out(path, std::ios::trunc);
    out << contents;
  };

  // Corruption strictly inside the file cannot be a torn write — valid
  // records follow it — so Open refuses with kDataLoss instead of silently
  // dropping the acked suffix.
  write_log_with_corrupt("second");
  std::vector<std::string> replayed;
  const auto replay = [&](const std::string& payload) {
    replayed.push_back(payload);
  };
  auto mid = storage::LogStore::Open(path, replay);
  ASSERT_FALSE(mid.ok());
  EXPECT_EQ(mid.status().code(), StatusCode::kDataLoss);

  // The same corruption in the *last* record is indistinguishable from a
  // crash mid-append: the intact prefix is recovered and the tail flagged.
  write_log_with_corrupt("third");
  replayed.clear();
  bool torn = false;
  auto tail = storage::LogStore::Open(path, replay, &torn);
  ASSERT_TRUE(tail.ok());
  EXPECT_TRUE(torn);
  EXPECT_EQ(replayed, (std::vector<std::string>{"first", "second"}));
}

// --- Entity linker corner cases --------------------------------------------------

TEST_F(EdgeCasesTest, MentionAtEndOfText) {
  nlp::EntityLinker linker(&kb_->knowledge_base);
  auto entities = linker.Link("Tell me about Kobe Bryant");
  ASSERT_EQ(entities.size(), 1u);
  EXPECT_EQ(entities[0].mention, "kobe bryant");
}

TEST_F(EdgeCasesTest, AdjacentMentionsDoNotOverlap) {
  nlp::EntityLinker linker(&kb_->knowledge_base);
  auto entities = linker.Link("Kobe Bryant Stephen Curry");
  ASSERT_EQ(entities.size(), 2u);
  EXPECT_EQ(entities[0].mention, "kobe bryant");
  EXPECT_EQ(entities[1].mention, "stephen curry");
}

TEST_F(EdgeCasesTest, RepeatedMentionYieldsOneEntityPerOccurrence) {
  nlp::EntityLinker linker(&kb_->knowledge_base);
  auto entities = linker.Link("Is Honey sweeter than Honey?");
  EXPECT_EQ(entities.size(), 2u);
}

// --- EM baselines with degenerate inputs -----------------------------------------

TEST(BaselineEdgeTest, ZenCrowdHandlesNoAnswers) {
  baselines::ZenCrowd engine;
  auto result = engine.Run({2, 3}, 4, {});
  ASSERT_EQ(result.inferred_choice.size(), 2u);
  for (const auto& s : result.task_truth) {
    for (double v : s) EXPECT_GT(v, 0.0);
  }
}

TEST(BaselineEdgeTest, DawidSkeneHandlesSingleWorker) {
  baselines::DawidSkene engine;
  std::vector<core::Answer> answers = {{0, 0, 1}, {1, 0, 0}};
  auto result = engine.Run({2, 2}, 1, answers);
  // A single worker's answers are taken at face value (diagonal prior).
  EXPECT_EQ(result.inferred_choice[0], 1u);
  EXPECT_EQ(result.inferred_choice[1], 0u);
}

TEST(BaselineEdgeTest, ZenCrowdWorkerWithNoAnswersKeepsSeed) {
  baselines::ZenCrowd engine;
  std::vector<core::Answer> answers = {{0, 0, 1}};
  std::vector<double> seeds = {0.8, 0.33};
  auto result = engine.Run({2}, 2, answers, &seeds);
  EXPECT_NEAR(result.worker_quality[1], 0.33, 1e-12);
}

// --- Topic models on degenerate corpora -------------------------------------------

TEST(TopicModelEdgeTest, SingleTopicCorpus) {
  topic::Corpus corpus;
  for (int d = 0; d < 10; ++d) corpus.AddDocumentText("alpha beta gamma");
  topic::LdaOptions options;
  options.num_topics = 1;
  options.iterations = 10;
  topic::LdaModel model(options);
  model.Fit(corpus);
  for (const auto& theta : model.doc_topic()) {
    ASSERT_EQ(theta.size(), 1u);
    EXPECT_NEAR(theta[0], 1.0, 1e-9);
  }
}

// --- TablePrinter ragged rows -------------------------------------------------------

TEST(TablePrinterEdgeTest, ExtraCellsWidenTable) {
  TablePrinter table({"a"});
  table.AddRow({"1", "2", "3"});
  std::ostringstream out;
  table.Print(out);
  EXPECT_NE(out.str().find("| 3"), std::string::npos);
}

// --- Dataset / linker integration: QA is entity-dense ------------------------------

TEST_F(EdgeCasesTest, QaTasksAreEntityDense) {
  auto dataset = datasets::MakeQaDataset(*kb_, 100);
  nlp::EntityLinker linker(&kb_->knowledge_base);
  size_t total_entities = 0;
  for (const auto& task : dataset.tasks) {
    total_entities += linker.Link(task.text).size();
  }
  // Table 3's enumeration blow-up needs several entities per QA task.
  EXPECT_GE(static_cast<double>(total_entities) / dataset.tasks.size(), 4.0);
}

}  // namespace
}  // namespace docs
