#include <gtest/gtest.h>

#include <errno.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/math_utils.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_utils.h"
#include "common/table_printer.h"

namespace docs {
namespace {

// --- Status ------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = InvalidArgumentError("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, OkStatusDropsMessage) {
  Status status(StatusCode::kOk, "ignored");
  EXPECT_TRUE(status.ok());
  EXPECT_TRUE(status.message().empty());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(NotFoundError("missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, OkStatusBecomesInternalError) {
  StatusOr<int> result(/*status=*/OkStatus());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

// --- Rng ---------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (a.NextUint64() != b.NextUint64()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(RngTest, UniformIntRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int v = rng.UniformIntRange(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    saw_lo |= (v == 3);
    saw_hi |= (v == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(RngTest, SampleDiscreteRespectsWeights) {
  Rng rng(23);
  std::vector<double> weights = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.SampleDiscrete(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(counts[2] / static_cast<double>(counts[1]), 3.0, 0.3);
}

TEST(RngTest, SampleDiscreteZeroWeightsUniform) {
  Rng rng(29);
  std::vector<double> weights = {0.0, 0.0, 0.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 3000; ++i) ++counts[rng.SampleDiscrete(weights)];
  for (int c : counts) EXPECT_GT(c, 500);
}

TEST(RngTest, DirichletSumsToOne) {
  Rng rng(31);
  auto v = rng.Dirichlet(8, 0.5);
  EXPECT_TRUE(IsDistribution(v, 1e-9));
}

TEST(RngTest, BetaInUnitInterval) {
  Rng rng(37);
  for (int i = 0; i < 200; ++i) {
    double v = rng.Beta(2.0, 5.0);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7};
  auto copy = items;
  rng.Shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, copy);
}

// --- math_utils ----------------------------------------------------------------

TEST(MathTest, EntropyUniformIsLogN) {
  std::vector<double> p = {0.25, 0.25, 0.25, 0.25};
  EXPECT_NEAR(Entropy(p), std::log(4.0), 1e-12);
}

TEST(MathTest, EntropyDegenerateIsZero) {
  std::vector<double> p = {1.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(Entropy(p), 0.0);
}

TEST(MathTest, KlOfIdenticalIsZero) {
  std::vector<double> p = {0.3, 0.7};
  EXPECT_NEAR(KlDivergence(p, p), 0.0, 1e-12);
}

TEST(MathTest, KlNonNegative) {
  Rng rng(43);
  for (int i = 0; i < 50; ++i) {
    auto p = rng.Dirichlet(5, 1.0);
    auto q = rng.Dirichlet(5, 1.0);
    EXPECT_GE(KlDivergence(p, q), -1e-12);
  }
}

TEST(MathTest, KlInfiniteOnZeroSupport) {
  std::vector<double> p = {0.5, 0.5};
  std::vector<double> q = {1.0, 0.0};
  EXPECT_TRUE(std::isinf(KlDivergence(p, q)));
}

TEST(MathTest, NormalizeInPlace) {
  std::vector<double> v = {1.0, 3.0};
  double sum = NormalizeInPlace(v);
  EXPECT_DOUBLE_EQ(sum, 4.0);
  EXPECT_DOUBLE_EQ(v[0], 0.25);
  EXPECT_DOUBLE_EQ(v[1], 0.75);
}

TEST(MathTest, NormalizeZeroVectorBecomesUniform) {
  std::vector<double> v = {0.0, 0.0, 0.0, 0.0};
  NormalizeInPlace(v);
  for (double x : v) EXPECT_DOUBLE_EQ(x, 0.25);
}

TEST(MathTest, ArgMaxFirstOnTies) {
  std::vector<double> v = {0.2, 0.5, 0.5};
  EXPECT_EQ(ArgMax(v), 1u);
}

TEST(MathTest, LogSumExpStable) {
  std::vector<double> x = {-1000.0, -1000.0};
  EXPECT_NEAR(LogSumExp(x), -1000.0 + std::log(2.0), 1e-9);
}

TEST(MathTest, LogSumExpMatchesNaive) {
  std::vector<double> x = {0.1, 0.7, -0.5};
  double naive = std::log(std::exp(0.1) + std::exp(0.7) + std::exp(-0.5));
  EXPECT_NEAR(LogSumExp(x), naive, 1e-12);
}

TEST(MathTest, IsDistribution) {
  EXPECT_TRUE(IsDistribution({0.5, 0.5}));
  EXPECT_FALSE(IsDistribution({0.5, 0.6}));
  EXPECT_FALSE(IsDistribution({1.5, -0.5}));
}

// --- Matrix --------------------------------------------------------------------

TEST(MatrixTest, FillAndAccess) {
  Matrix m(2, 3, 0.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m(1, 2) = 0.9;
  EXPECT_DOUBLE_EQ(m(1, 2), 0.9);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.5);
}

TEST(MatrixTest, RowRoundTrip) {
  Matrix m(2, 2);
  m.SetRow(1, {0.3, 0.7});
  EXPECT_EQ(m.Row(1), (std::vector<double>{0.3, 0.7}));
}

TEST(MatrixTest, NormalizeRows) {
  Matrix m(2, 2);
  m.SetRow(0, {2.0, 2.0});
  m.SetRow(1, {0.0, 0.0});  // degenerate row becomes uniform
  m.NormalizeRows();
  EXPECT_DOUBLE_EQ(m(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(m(1, 1), 0.5);
}

TEST(MatrixTest, LeftMultiplyMatchesManual) {
  Matrix m(2, 3);
  m.SetRow(0, {1.0, 2.0, 3.0});
  m.SetRow(1, {4.0, 5.0, 6.0});
  auto out = m.LeftMultiply({0.5, 0.5});
  EXPECT_NEAR(out[0], 2.5, 1e-12);
  EXPECT_NEAR(out[1], 3.5, 1e-12);
  EXPECT_NEAR(out[2], 4.5, 1e-12);
}

TEST(MatrixTest, MaxAbsDiff) {
  Matrix a(1, 2, 0.0), b(1, 2, 0.0);
  b(0, 1) = 0.25;
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b), 0.25);
}

// --- string utils ----------------------------------------------------------------

TEST(StringTest, ToLower) { EXPECT_EQ(ToLower("AbC dE"), "abc de"); }

TEST(StringTest, SplitDropsEmpty) {
  EXPECT_EQ(Split("a,,b,", ","), (std::vector<std::string>{"a", "b"}));
}

TEST(StringTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StringTest, Trim) {
  EXPECT_EQ(Trim("  x y \t"), "x y");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringTest, TokenizeWords) {
  EXPECT_EQ(TokenizeWords("Does Michael Jordan win? NBA-titles!"),
            (std::vector<std::string>{"does", "michael", "jordan", "win",
                                      "nba", "titles"}));
}

TEST(StringTest, TokenizeKeepsDigits) {
  EXPECT_EQ(TokenizeWords("K2 and 911"),
            (std::vector<std::string>{"k2", "and", "911"}));
}

TEST(StringTest, ErrnoStringMatchesStrerror) {
  // Same text as the libc rendering for real errnos, but from an owned
  // buffer (std::strerror returns static storage — concurrency-mt-unsafe —
  // which is why every multi-threaded error-format site uses this instead).
  for (int errnum : {EINVAL, ENOENT, EAGAIN, 0}) {
    EXPECT_EQ(ErrnoString(errnum), std::strerror(errnum));
  }
  // Bogus errno values still produce a non-empty, non-crashing description.
  EXPECT_FALSE(ErrnoString(-12345).empty());
}

TEST(StringTest, ErrnoStringIsThreadSafe) {
  // Concurrent calls with different errnos must not smear each other's text
  // (the failure mode of the shared strerror buffer). TSan runs in CI give
  // this real teeth; the value checks catch cross-thread smearing anywhere.
  std::vector<std::thread> threads;
  std::atomic<bool> mismatch{false};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t, &mismatch] {
      const int errnum = (t % 2 == 0) ? EINVAL : ENOENT;
      const std::string want = ErrnoString(errnum);
      for (int i = 0; i < 2000; ++i) {
        if (ErrnoString(errnum) != want) mismatch.store(true);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(mismatch.load());
}

// --- TablePrinter ---------------------------------------------------------------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer", "2.5"});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| name"), std::string::npos);
  EXPECT_NE(text.find("| longer"), std::string::npos);
}

TEST(TablePrinterTest, FmtPrecision) {
  EXPECT_EQ(TablePrinter::Fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::Fmt(2.0, 0), "2");
}

// --- Contract regressions (math_utils) ---------------------------------------

TEST(MathTest, EntropyPropagatesNaN) {
  // Regression: `x > 0.0` is false for NaN, so a NaN probability used to be
  // silently skipped and the entropy came back looking healthy. A poisoned
  // distribution must poison the entropy so downstream benefit scores (and
  // the CheckFinite guards around them) can see it.
  const double nan = std::nan("");
  EXPECT_TRUE(std::isnan(Entropy({0.5, nan, 0.25})));
  EXPECT_TRUE(std::isnan(Entropy({nan})));
  // Zeros are still fine (0 log 0 = 0 by convention).
  EXPECT_DOUBLE_EQ(Entropy({1.0, 0.0}), 0.0);
}

TEST(MathDeathTest, ArgMaxOfEmptyVectorDies) {
  EXPECT_DEATH(ArgMax({}), "ArgMax of an empty vector");
}

TEST(MathDeathTest, KlDivergenceMismatchedSupportsDies) {
  EXPECT_DEATH(KlDivergence({0.5, 0.5}, {1.0}), "mismatched supports");
}

TEST(MathDeathTest, L1DistanceMismatchedSupportsDies) {
  EXPECT_DEATH(L1Distance({0.5, 0.5}, {1.0}), "mismatched supports");
}

}  // namespace
}  // namespace docs
