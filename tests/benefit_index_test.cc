// Equivalence suite for the per-worker ordered benefit index (DESIGN.md §16).
//
// The index is a lazily repaired max-heap over the epoch-tagged benefit cache
// rows; a warm RequestTasks reads the top-k eligible tasks off it in
// O(k log n) instead of scanning all n cached scores. The contract is that an
// index-served selection is BITWISE identical to the scan path (index off)
// and to the cache-off path — after every mutation class: answer submissions
// (including the §4.2 retro-update fan-out repaired from the engine's
// mutation log), lease expiry (which must invalidate nothing), the periodic
// full re-inference (which must invalidate everything with ONE generation
// bump, never an O(n) epoch walk), mid-campaign WorkerStore reseeds, and
// redundancy-cap churn that exhausts the heap walk's budget and falls back
// to the scan. Every comparison is exact (operator== on doubles), not a
// tolerance check. scripts/ci.sh additionally runs this binary under TSan
// and under DOCS_DEBUG_CHECKS (which compiles in the O(n) heap audit).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "client/crowd_client.h"
#include "common/math_utils.h"
#include "common/rng.h"
#include "core/concurrent_docs_system.h"
#include "core/docs_system.h"
#include "crowd/worker_pool.h"
#include "datasets/dataset.h"
#include "kb/synthetic_kb.h"
#include "server/crowd_gateway.h"
#include "storage/worker_store.h"

namespace docs::core {
namespace {

constexpr size_t kThreadSweep[] = {1, 2, 4, 8};
constexpr SelectionRule kAllRules[] = {
    SelectionRule::kBenefit, SelectionRule::kDomainMax,
    SelectionRule::kUncertainty, SelectionRule::kQualityBlind};

std::vector<std::tuple<size_t, size_t, uint64_t>> Flatten(
    const std::vector<ExpiredLease>& leases) {
  std::vector<std::tuple<size_t, size_t, uint64_t>> out;
  out.reserve(leases.size());
  for (const auto& lease : leases) {
    out.emplace_back(lease.worker, lease.task, lease.deadline);
  }
  return out;
}

class BenefitIndexTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new kb::SyntheticKb(kb::BuildSyntheticKb());
  }
  static void TearDownTestSuite() {
    delete kb_;
    kb_ = nullptr;
  }
  static kb::SyntheticKb* kb_;
};

kb::SyntheticKb* BenefitIndexTest::kb_ = nullptr;

/// The sync lockstep oracle: an index-on, an index-off (scan), and a
/// cache-off DocsSystem driven through one identical scripted campaign must
/// agree on every observable at every step. The script hits every
/// invalidation class the index must survive: retro fan-out across
/// co-answering workers, abandoned grants reclaimed by ExpireLeases, the
/// periodic RunFullInference (the O(1) generation invalidation), and
/// mid-campaign WorkerStore reseeds.
TEST_F(BenefitIndexTest, IndexedServingIsBitIdenticalAcrossRulesAndThreads) {
  const auto dataset = datasets::MakeItemDataset(*kb_);
  const auto truths = dataset.Truths();
  std::vector<TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }

  crowd::WorkerPoolOptions pool_options;
  pool_options.num_workers = 8;
  const auto personas = crowd::MakeWorkerPool(
      kb_->knowledge_base.num_domains(), dataset.label_to_domain, pool_options,
      77);

  const size_t m = kb_->knowledge_base.num_domains();
  auto store = storage::WorkerStore::InMemory(m);
  storage::WorkerQualityRecord record;
  record.quality.assign(m, 0.85);
  record.weight.assign(m, 3.0);
  ASSERT_TRUE(store.Put("veteran", record).ok());
  ASSERT_TRUE(store.Put("vet2", record).ok());

  for (SelectionRule rule : kAllRules) {
    for (size_t threads : kThreadSweep) {
      SCOPED_TRACE("rule " + std::to_string(static_cast<int>(rule)) + ", " +
                   std::to_string(threads) + " threads");
      DocsSystemOptions options;
      options.golden_count = 5;
      options.reinfer_every = 25;  // several O(1) invalidations mid-campaign
      options.lease_duration = 3;
      options.selection_rule = rule;
      options.num_threads = threads;
      ASSERT_TRUE(options.benefit_cache);
      ASSERT_TRUE(options.benefit_index);
      DocsSystemOptions scan_options = options;
      scan_options.benefit_index = false;
      DocsSystemOptions cold_options = scan_options;
      cold_options.benefit_cache = false;

      auto indexed =
          std::make_unique<DocsSystem>(&kb_->knowledge_base, options);
      auto scan =
          std::make_unique<DocsSystem>(&kb_->knowledge_base, scan_options);
      auto cold =
          std::make_unique<DocsSystem>(&kb_->knowledge_base, cold_options);
      for (DocsSystem* system : {indexed.get(), scan.get(), cold.get()}) {
        ASSERT_TRUE(system->AddTasks(inputs, &truths).ok());
        ASSERT_TRUE(system->LoadWorker("veteran", store).ok());
      }

      std::vector<std::string> ids = {"w0", "w1", "w2",      "w3",
                                      "w4", "w5", "veteran"};
      Rng rng(61);  // one stream serves all systems: selections are asserted
                    // equal before any answer is generated
      for (size_t round = 0; round < 30; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        if (round == 15) {
          // Mid-campaign reseeds: an active worker's quality is replaced
          // from the store (worker-epoch bump -> index rebuild), and a new
          // veteran joins past the golden phase.
          for (DocsSystem* system : {indexed.get(), scan.get(), cold.get()}) {
            ASSERT_TRUE(system->LoadWorker("veteran", store).ok());
            ASSERT_TRUE(system->LoadWorker("vet2", store).ok());
          }
          ids.push_back("vet2");
        }
        const std::string& id = ids[round % ids.size()];
        const size_t w = indexed->WorkerIndex(id);
        ASSERT_EQ(scan->WorkerIndex(id), w);
        ASSERT_EQ(cold->WorkerIndex(id), w);

        const auto selected = indexed->SelectTasks(w, 4);
        ASSERT_EQ(scan->SelectTasks(w, 4), selected);
        ASSERT_EQ(cold->SelectTasks(w, 4), selected);

        if (round % 5 == 0) {
          // Full-score probe: the cached pass and the bypass pass must agree
          // bit for bit on the indexed system too (the probe walks the cache
          // rows the index is built over).
          const auto warm = indexed->ScoreAllTasks(w, /*bypass_cache=*/false);
          EXPECT_EQ(indexed->ScoreAllTasks(w, /*bypass_cache=*/true), warm);
          EXPECT_EQ(scan->ScoreAllTasks(w, /*bypass_cache=*/false), warm);
        }

        for (size_t s = 0; s < selected.size(); ++s) {
          // Every third round the worker abandons the last granted task, so
          // ExpireLeases below has real work to reclaim.
          if (round % 3 == 2 && s + 1 == selected.size()) continue;
          const size_t task = selected[s];
          const size_t choice = crowd::GenerateAnswer(
              personas[round % personas.size()],
              dataset.tasks[task].true_domain, dataset.tasks[task].truth,
              dataset.tasks[task].num_choices(), rng);
          for (DocsSystem* system : {indexed.get(), scan.get(), cold.get()}) {
            ASSERT_TRUE(system->SubmitAnswer(w, task, choice).ok());
          }
        }

        if (round == 10 || round == 20) {
          const auto swept =
              Flatten(indexed->ExpireLeases(indexed->lease_clock()));
          EXPECT_EQ(Flatten(scan->ExpireLeases(scan->lease_clock())), swept);
          EXPECT_EQ(Flatten(cold->ExpireLeases(cold->lease_clock())), swept);
        }
      }

      EXPECT_EQ(indexed->InferredChoices(), scan->InferredChoices());
      EXPECT_EQ(indexed->InferredChoices(), cold->InferredChoices());
      ASSERT_EQ(indexed->inference().num_workers(),
                scan->inference().num_workers());
      for (size_t w = 0; w < indexed->inference().num_workers(); ++w) {
        ASSERT_EQ(indexed->inference().worker_quality(w).quality,
                  scan->inference().worker_quality(w).quality)
            << "worker " << w;
        ASSERT_EQ(indexed->inference().worker_quality(w).weight,
                  scan->inference().worker_quality(w).weight)
            << "worker " << w;
      }

      // The index actually served: heap reads and rebuilds happened, and the
      // periodic full inference registered as generation invalidations. A
      // disabled index counts nothing.
      EXPECT_GT(indexed->benefit_index_pops(), 0u);
      EXPECT_GT(indexed->benefit_index_rebuilds(), 0u);
      EXPECT_GT(indexed->benefit_index_generation_invalidations(), 0u);
      EXPECT_EQ(scan->benefit_index_pops(), 0u);
      EXPECT_EQ(scan->benefit_index_repairs(), 0u);
      EXPECT_EQ(scan->benefit_index_rebuilds(), 0u);
    }
  }
}

/// The async lockstep oracle: with the inference decoupled onto the
/// background service (DESIGN.md §15), an index-on and an index-off async
/// facade — and the sync index-on facade — must produce bit-identical
/// selections when drained before every comparison. The indexed async path
/// exercises the snapshot branch of the index (repair from the snapshot's
/// changed-task diff, rebuild tagged with the publish epoch).
TEST_F(BenefitIndexTest, DrainedAsyncIndexedServingMatchesScanAndSync) {
  const auto dataset = datasets::MakeItemDataset(*kb_);
  const auto truths = dataset.Truths();
  std::vector<TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }

  crowd::WorkerPoolOptions pool_options;
  pool_options.num_workers = 8;
  const auto personas = crowd::MakeWorkerPool(
      kb_->knowledge_base.num_domains(), dataset.label_to_domain, pool_options,
      77);

  const size_t m = kb_->knowledge_base.num_domains();
  auto store = storage::WorkerStore::InMemory(m);
  storage::WorkerQualityRecord record;
  record.quality.assign(m, 0.85);
  record.weight.assign(m, 3.0);
  ASSERT_TRUE(store.Put("veteran", record).ok());

  for (SelectionRule rule : kAllRules) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      SCOPED_TRACE("rule " + std::to_string(static_cast<int>(rule)) + ", " +
                   std::to_string(threads) + " threads");
      DocsSystemOptions options;
      options.golden_count = 5;
      options.reinfer_every = 25;
      options.lease_duration = 3;
      options.selection_rule = rule;
      options.num_threads = threads;
      ASSERT_TRUE(options.benefit_index);
      DocsSystemOptions async_options = options;
      async_options.async_inference = true;
      DocsSystemOptions async_scan_options = async_options;
      async_scan_options.benefit_index = false;

      ConcurrentDocsSystem sync_system(&kb_->knowledge_base, options);
      ConcurrentDocsSystem async_indexed(&kb_->knowledge_base, async_options);
      ConcurrentDocsSystem async_scan(&kb_->knowledge_base,
                                      async_scan_options);
      for (ConcurrentDocsSystem* system :
           {&sync_system, &async_indexed, &async_scan}) {
        ASSERT_TRUE(system->AddTasks(inputs, &truths).ok());
        ASSERT_TRUE(system->LoadWorker("veteran", store).ok());
      }

      std::vector<std::string> ids = {"w0", "w1", "w2",      "w3",
                                      "w4", "w5", "veteran"};
      Rng rng(61);
      for (size_t round = 0; round < 24; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        const std::string& id = ids[round % ids.size()];

        // Quiesce before comparing: the contract is drained-state equality,
        // not mid-flight equality (the async systems are allowed to serve
        // stale between publishes).
        async_indexed.Drain();
        async_scan.Drain();
        const auto selected = sync_system.RequestTasks(id, 4);
        ASSERT_EQ(async_indexed.RequestTasks(id, 4), selected);
        ASSERT_EQ(async_scan.RequestTasks(id, 4), selected);

        for (size_t s = 0; s < selected.size(); ++s) {
          if (round % 3 == 2 && s + 1 == selected.size()) continue;
          const size_t task = selected[s];
          const size_t choice = crowd::GenerateAnswer(
              personas[round % personas.size()],
              dataset.tasks[task].true_domain, dataset.tasks[task].truth,
              dataset.tasks[task].num_choices(), rng);
          for (ConcurrentDocsSystem* system :
               {&sync_system, &async_indexed, &async_scan}) {
            ASSERT_TRUE(system->SubmitAnswer(id, task, choice).ok());
          }
        }

        if (round == 10 || round == 20) {
          async_indexed.Drain();
          async_scan.Drain();
          const auto swept =
              Flatten(sync_system.ExpireLeases(sync_system.lease_clock()));
          EXPECT_EQ(
              Flatten(async_indexed.ExpireLeases(async_indexed.lease_clock())),
              swept);
          EXPECT_EQ(
              Flatten(async_scan.ExpireLeases(async_scan.lease_clock())),
              swept);
        }
      }

      async_indexed.Drain();
      async_scan.Drain();
      EXPECT_EQ(async_indexed.InferredChoices(), sync_system.InferredChoices());
      EXPECT_EQ(async_scan.InferredChoices(), sync_system.InferredChoices());
      const size_t workers = sync_system.WithLocked(
          [](DocsSystem& s) { return s.inference().num_workers(); });
      for (size_t w = 0; w < workers; ++w) {
        const auto quality = sync_system.WithLocked([&](DocsSystem& s) {
          return s.inference().worker_quality(w).quality;
        });
        ASSERT_EQ(async_indexed.WithLocked([&](DocsSystem& s) {
          return s.inference().worker_quality(w).quality;
        }),
                  quality)
            << "worker " << w;
        ASSERT_EQ(async_scan.WithLocked([&](DocsSystem& s) {
          return s.inference().worker_quality(w).quality;
        }),
                  quality)
            << "worker " << w;
      }

      // The snapshot branch of the index actually served.
      EXPECT_GT(async_indexed.benefit_index_pops(), 0u);
      EXPECT_GT(async_indexed.benefit_index_rebuilds(), 0u);
      EXPECT_EQ(async_scan.benefit_index_pops(), 0u);
      EXPECT_EQ(async_scan.benefit_index_rebuilds(), 0u);
    }
  }
}

/// The lockstep oracle over the wire, across reactor counts AND index
/// modes: index-on gateways with 1, 2, and 4 reactors must reproduce the
/// index-off single-reactor baseline bit for bit, and the index counters
/// must surface through GatewayStats.
TEST_F(BenefitIndexTest, GatewayServingIsBitIdenticalAcrossReactorsAndModes) {
  const auto dataset = datasets::MakeItemDataset(*kb_);
  const auto truths = dataset.Truths();
  std::vector<TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }
  crowd::WorkerPoolOptions pool_options;
  pool_options.num_workers = 6;
  const auto personas = crowd::MakeWorkerPool(
      kb_->knowledge_base.num_domains(), dataset.label_to_domain, pool_options,
      77);

  struct Outcome {
    std::vector<std::vector<uint64_t>> selections;
    std::vector<size_t> choices;
  };
  auto drive = [&](bool index_on, size_t reactors) {
    DocsSystemOptions options;
    options.golden_count = 5;
    options.reinfer_every = 25;
    options.num_threads = 2;
    options.benefit_index = index_on;
    ConcurrentDocsSystem system(&kb_->knowledge_base, options);
    EXPECT_TRUE(system.AddTasks(inputs, &truths).ok());
    server::CrowdGatewayOptions gateway_options;
    gateway_options.num_reactors = reactors;
    server::CrowdGateway gateway(&system, gateway_options);
    EXPECT_TRUE(gateway.Start().ok());

    client::CrowdClientOptions client_options;
    client_options.recv_timeout_ms = 5000;
    std::vector<std::unique_ptr<client::CrowdClient>> conns;
    for (size_t w = 0; w < 6; ++w) {
      conns.push_back(std::make_unique<client::CrowdClient>(client_options));
      EXPECT_TRUE(conns[w]->Connect("127.0.0.1", gateway.port()).ok());
    }

    Outcome outcome;
    Rng rng(61);
    for (size_t round = 0; round < 18; ++round) {
      const size_t w = round % 6;
      const std::string id = "w" + std::to_string(w);
      std::vector<uint64_t> hit;
      EXPECT_TRUE(conns[w]->RequestTasks(id, 4, &hit).ok());
      outcome.selections.push_back(hit);
      for (uint64_t task : hit) {
        const size_t choice = crowd::GenerateAnswer(
            personas[w], dataset.tasks[task].true_domain,
            dataset.tasks[task].truth, dataset.tasks[task].num_choices(), rng);
        EXPECT_TRUE(
            conns[w]->SubmitAnswer(id, task, static_cast<uint32_t>(choice))
                .ok());
      }
    }
    const server::GatewayStats stats = gateway.stats();
    if (index_on) {
      EXPECT_GT(stats.benefit_index_pops + stats.benefit_index_rebuilds, 0u);
    } else {
      EXPECT_EQ(stats.benefit_index_pops, 0u);
      EXPECT_EQ(stats.benefit_index_repairs, 0u);
      EXPECT_EQ(stats.benefit_index_rebuilds, 0u);
    }
    gateway.Stop();
    outcome.choices = system.InferredChoices();
    return outcome;
  };

  const Outcome baseline = drive(/*index_on=*/false, /*reactors=*/1);
  for (size_t reactors : {size_t{1}, size_t{2}, size_t{4}}) {
    SCOPED_TRACE("indexed, " + std::to_string(reactors) + " reactors");
    const Outcome swept = drive(/*index_on=*/true, reactors);
    EXPECT_EQ(swept.selections, baseline.selections);
    EXPECT_EQ(swept.choices, baseline.choices);
  }
}

/// The O(1)-invalidation regression: RunFullInference must stale every
/// cached score and every index with a single generation bump — the
/// per-task and per-worker epoch arrays must not move (the seed-era
/// implementation walked them, which is exactly the O(n) cost the
/// generation counter removes). The next serving pass rebuilds the index
/// once and stays bit-identical to a cache-off twin.
TEST_F(BenefitIndexTest, FullInferenceInvalidatesWithOneGenerationBump) {
  const auto dataset = datasets::MakeQaDataset(*kb_, 60, 11);
  std::vector<TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }
  DocsSystemOptions options;
  options.golden_count = 0;  // straight to OTA scoring
  options.reinfer_every = 0;  // full inference only when called explicitly
  options.num_threads = 1;
  ASSERT_TRUE(options.benefit_index);
  DocsSystemOptions cold_options = options;
  cold_options.benefit_cache = false;
  DocsSystem system(&kb_->knowledge_base, options);
  DocsSystem cold(&kb_->knowledge_base, cold_options);
  ASSERT_TRUE(system.AddTasks(inputs).ok());
  ASSERT_TRUE(cold.AddTasks(inputs).ok());

  const size_t w = system.WorkerIndex("w");
  ASSERT_EQ(cold.WorkerIndex("w"), w);
  auto step = [&](size_t k) {
    const auto selected = system.SelectTasks(w, k);
    EXPECT_EQ(cold.SelectTasks(w, k), selected);
    return selected;
  };

  // Warm up: select, answer, select (the answer bumped w's worker epoch, so
  // this rebuilds), then a quiet repeat that is served off the fresh heap.
  const auto first = step(2);
  ASSERT_EQ(first.size(), 2u);
  ASSERT_TRUE(system.SubmitAnswer(w, first[0], 0).ok());
  ASSERT_TRUE(cold.SubmitAnswer(w, first[0], 0).ok());
  (void)step(2);
  const uint64_t rebuilds_warm = system.benefit_index_rebuilds();
  const uint64_t pops_warm = system.benefit_index_pops();
  (void)step(2);
  EXPECT_EQ(system.benefit_index_rebuilds(), rebuilds_warm);
  EXPECT_GT(system.benefit_index_pops(), pops_warm);

  // The invalidation itself: one generation bump, zero epoch movement, and
  // the mutation log resets (nothing to replay across a generation change).
  const auto task_epochs_before = system.inference().task_epochs();
  const uint64_t worker_epoch_before = system.inference().worker_epoch(w);
  const uint64_t generation_before = system.inference().generation();
  const uint64_t invalidations_before =
      system.benefit_index_generation_invalidations();
  system.RunFullInference();
  cold.RunFullInference();
  EXPECT_EQ(system.inference().generation(), generation_before + 1);
  EXPECT_EQ(system.benefit_index_generation_invalidations(),
            invalidations_before + 1);
  EXPECT_EQ(system.inference().task_epochs(), task_epochs_before);
  EXPECT_EQ(system.inference().worker_epoch(w), worker_epoch_before);
  EXPECT_EQ(system.inference().mutation_log_begin(),
            system.inference().mutation_log_end());

  // The stale index is detected by the generation tag alone: exactly one
  // rebuild, still bit-identical, and quiet repeats are warm again.
  const uint64_t rebuilds_before = system.benefit_index_rebuilds();
  (void)step(2);
  EXPECT_EQ(system.benefit_index_rebuilds(), rebuilds_before + 1);
  (void)step(2);
  EXPECT_EQ(system.benefit_index_rebuilds(), rebuilds_before + 1);
}

/// Lease expiry must invalidate nothing: benefit scores do not depend on
/// leases, so reclaiming abandoned grants leaves every index fresh — the
/// next pass neither rebuilds nor repairs, and the reclaimed tasks simply
/// become selectable again at their unchanged scores.
TEST_F(BenefitIndexTest, LeaseExpiryLeavesEveryIndexFresh) {
  const auto dataset = datasets::MakeQaDataset(*kb_, 40, 13);
  std::vector<TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }
  DocsSystemOptions options;
  options.golden_count = 0;
  options.reinfer_every = 0;
  options.num_threads = 1;
  options.lease_duration = 1;
  options.max_answers_per_task = 1;  // outstanding leases gate eligibility
  DocsSystem system(&kb_->knowledge_base, options);
  ASSERT_TRUE(system.AddTasks(inputs).ok());

  // w leases the top two tasks and abandons them; x (same default quality,
  // so the identical ranking) must take the next two.
  const size_t w = system.WorkerIndex("w");
  const size_t x = system.WorkerIndex("x");
  const auto first = system.SelectTasks(w, 2);
  ASSERT_EQ(first.size(), 2u);
  const auto other = system.SelectTasks(x, 2);
  ASSERT_EQ(other.size(), 2u);
  EXPECT_NE(other, first);

  // Only w's grants have reached their deadline (clock advanced once since).
  const auto expired = system.ExpireLeases(system.lease_clock());
  ASSERT_EQ(expired.size(), 2u);
  EXPECT_EQ(expired[0].worker, w);
  EXPECT_EQ(expired[1].worker, w);

  // The sweep moved no epochs and no generation: w's next pass is served
  // off the still-fresh heap (no rebuild, no repair) and re-grants exactly
  // the tasks the expiry returned to the pool.
  const uint64_t rebuilds_before = system.benefit_index_rebuilds();
  const uint64_t repairs_before = system.benefit_index_repairs();
  const uint64_t pops_before = system.benefit_index_pops();
  EXPECT_EQ(system.SelectTasks(w, 2), first);
  EXPECT_EQ(system.benefit_index_rebuilds(), rebuilds_before);
  EXPECT_EQ(system.benefit_index_repairs(), repairs_before);
  EXPECT_GT(system.benefit_index_pops(), pops_before);
}

/// The mutation-log repair path: a submission by worker A bumps the epochs
/// of the tasks it touched (including the §4.2 retro fan-out) and appends
/// them to the engine's mutation log. An uninvolved worker B's index — same
/// worker epoch, same generation — must catch up by replaying exactly that
/// log tail (repairs, no rebuild), while A's own next pass rebuilds (her
/// quality moved). A WorkerStore reseed is the other worker-epoch edge:
/// rebuild, not repair. Selections stay lockstep with a scan twin
/// throughout.
TEST_F(BenefitIndexTest, RetroFanOutRepairsFromTheMutationLog) {
  const auto dataset = datasets::MakeQaDataset(*kb_, 60, 11);
  std::vector<TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }
  DocsSystemOptions options;
  options.golden_count = 0;
  options.reinfer_every = 0;
  options.num_threads = 1;
  DocsSystemOptions scan_options = options;
  scan_options.benefit_index = false;
  DocsSystem system(&kb_->knowledge_base, options);
  DocsSystem twin(&kb_->knowledge_base, scan_options);
  ASSERT_TRUE(system.AddTasks(inputs).ok());
  ASSERT_TRUE(twin.AddTasks(inputs).ok());

  const size_t a = system.WorkerIndex("a");
  const size_t b = system.WorkerIndex("b");
  ASSERT_EQ(twin.WorkerIndex("a"), a);
  ASSERT_EQ(twin.WorkerIndex("b"), b);
  auto step = [&](size_t worker, size_t k) {
    const auto selected = system.SelectTasks(worker, k);
    EXPECT_EQ(twin.SelectTasks(worker, k), selected);
    return selected;
  };

  (void)step(b, 4);  // b's index: built
  const auto granted = step(a, 1);  // a's index: built
  ASSERT_EQ(granted.size(), 1u);
  ASSERT_TRUE(system.SubmitAnswer(a, granted[0], 0).ok());
  ASSERT_TRUE(twin.SubmitAnswer(a, granted[0], 0).ok());

  // b is uninvolved: her worker epoch did not move, so her index repairs
  // the logged tasks in place instead of rebuilding.
  const uint64_t rebuilds_before = system.benefit_index_rebuilds();
  const uint64_t repairs_before = system.benefit_index_repairs();
  (void)step(b, 4);
  EXPECT_EQ(system.benefit_index_rebuilds(), rebuilds_before);
  EXPECT_GT(system.benefit_index_repairs(), repairs_before);

  // a answered, so her quality (worker epoch) moved: full rebuild.
  (void)step(a, 4);
  EXPECT_EQ(system.benefit_index_rebuilds(), rebuilds_before + 1);

  // A mid-campaign reseed is the other worker-epoch bump: rebuild too.
  const size_t m = kb_->knowledge_base.num_domains();
  auto store = storage::WorkerStore::InMemory(m);
  storage::WorkerQualityRecord record;
  record.quality.assign(m, 0.85);
  record.weight.assign(m, 3.0);
  ASSERT_TRUE(store.Put("b", record).ok());
  ASSERT_TRUE(system.LoadWorker("b", store).ok());
  ASSERT_TRUE(twin.LoadWorker("b", store).ok());
  const uint64_t rebuilds_mid = system.benefit_index_rebuilds();
  (void)step(b, 4);
  EXPECT_EQ(system.benefit_index_rebuilds(), rebuilds_mid + 1);
}

/// Budget exhaustion under cap churn: when enough of the heap's top entries
/// are ineligible (here: leased out under a redundancy cap of one), the
/// frontier walk gives up within its visit budget and the pass falls back
/// to the scan — which must select exactly what a cache-off twin selects.
/// The fallback is observable as row-cache traffic (a successful index pass
/// performs zero row lookups) with the index left fresh (no rebuild).
TEST_F(BenefitIndexTest, CapChurnFallsBackToTheScanBitIdentically) {
  const auto dataset = datasets::MakeQaDataset(*kb_, 120, 17);
  std::vector<TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }
  DocsSystemOptions options;
  options.golden_count = 0;
  options.reinfer_every = 0;
  options.num_threads = 1;
  // Worker-independent ranking: every worker leases from the same global
  // order, so the v-workers below deterministically occupy w's top ranks.
  options.selection_rule = SelectionRule::kUncertainty;
  options.lease_duration = 100;  // nothing expires during the test
  options.max_answers_per_task = 1;
  DocsSystemOptions cold_options = options;
  cold_options.benefit_cache = false;
  DocsSystem system(&kb_->knowledge_base, options);
  DocsSystem cold(&kb_->knowledge_base, cold_options);
  ASSERT_TRUE(system.AddTasks(inputs).ok());
  ASSERT_TRUE(cold.AddTasks(inputs).ok());

  auto step = [&](const std::string& id, size_t k) {
    const size_t worker = system.WorkerIndex(id);
    EXPECT_EQ(cold.WorkerIndex(id), worker);
    const auto selected = system.SelectTasks(worker, k);
    EXPECT_EQ(cold.SelectTasks(worker, k), selected);
    return selected;
  };

  // w warms her index (and leases the global top task); twenty other
  // workers then lease the next 80 ranks. No answers are submitted, so no
  // epoch or generation ever moves: w's index stays fresh throughout.
  const auto top = step("w", 1);
  ASSERT_EQ(top.size(), 1u);
  for (size_t v = 0; v < 20; ++v) {
    ASSERT_EQ(step("v" + std::to_string(v), 4).size(), 4u);
  }

  // w's next request: the 81 best-ranked tasks are all ineligible, which
  // exceeds the k=1 walk budget (64 visits) — the pass must fall back to
  // the scan without rebuilding the still-fresh index, and still match the
  // cache-off twin bit for bit.
  const uint64_t rebuilds_before = system.benefit_index_rebuilds();
  const uint64_t row_traffic_before =
      system.benefit_cache_hits() + system.benefit_cache_misses();
  const auto fallback = step("w", 1);
  ASSERT_EQ(fallback.size(), 1u);
  EXPECT_NE(fallback, top);
  EXPECT_EQ(system.benefit_index_rebuilds(), rebuilds_before);
  EXPECT_GT(system.benefit_cache_hits() + system.benefit_cache_misses(),
            row_traffic_before);
}

// --- Standalone TaskAssigner index overload ---------------------------------

// Random small OTA instance: tasks with random domain vectors and truth
// matrices, plus a random worker quality vector (same recipe as
// tests/ota_test.cc).
struct OtaInstance {
  std::vector<Task> tasks;
  std::vector<Matrix> matrices;
  std::vector<std::vector<double>> truths;
  std::vector<double> worker_quality;
};

OtaInstance MakeInstance(size_t n, size_t m, size_t max_choices, Rng& rng) {
  OtaInstance instance;
  for (size_t i = 0; i < n; ++i) {
    Task task;
    task.domain_vector = rng.Dirichlet(m, 1.0);
    task.num_choices = 2 + rng.UniformInt(max_choices - 1);
    Matrix truth_matrix(m, task.num_choices, 0.0);
    for (size_t k = 0; k < m; ++k) {
      truth_matrix.SetRow(k, rng.Dirichlet(task.num_choices, 1.0));
    }
    std::vector<double> s = truth_matrix.LeftMultiply(task.domain_vector);
    NormalizeInPlace(s);
    instance.tasks.push_back(std::move(task));
    instance.matrices.push_back(std::move(truth_matrix));
    instance.truths.push_back(std::move(s));
  }
  instance.worker_quality.resize(m);
  for (auto& q : instance.worker_quality) q = rng.UniformDoubleRange(0.3, 0.95);
  return instance;
}

/// The assigner-level equivalence surface: the index-accelerated SelectTopK
/// overload must return exactly what the cacheless and the cache-only
/// overloads return — cold, warm, after a targeted task-epoch bump, after a
/// worker-epoch bump, and after a bare generation bump.
TEST(TaskAssignerIndexTest, IndexOverloadMatchesScanAndCachelessOverloads) {
  Rng rng(311);
  auto instance = MakeInstance(60, 5, 4, rng);
  std::vector<uint8_t> eligible(60, 1);
  for (size_t i = 0; i < 60; i += 9) eligible[i] = 0;
  TaskAssignerOptions options;
  options.num_threads = 1;
  TaskAssigner assigner(options);

  std::vector<uint64_t> task_epochs(60, 1);
  uint64_t worker_epoch = 1;
  uint64_t generation = 7;
  std::vector<CachedBenefit> scan_cache(60);
  std::vector<CachedBenefit> index_cache(60);
  BenefitIndex index;

  auto expect_all_equal = [&]() {
    const auto plain =
        assigner.SelectTopK(instance.tasks, instance.matrices, instance.truths,
                            instance.worker_quality, eligible, 12);
    const auto scan = assigner.SelectTopK(
        instance.tasks, instance.matrices, instance.truths,
        instance.worker_quality, eligible, 12, &task_epochs, worker_epoch,
        &scan_cache, generation);
    const auto indexed = assigner.SelectTopK(
        instance.tasks, instance.matrices, instance.truths,
        instance.worker_quality, eligible, 12, &task_epochs, worker_epoch,
        &index_cache, generation, &index);
    EXPECT_EQ(scan, plain);
    EXPECT_EQ(indexed, plain);
  };

  expect_all_equal();  // cold: index built from scratch
  expect_all_equal();  // warm: served off the fresh heap

  // Targeted staleness: swap two tasks' inference state and bump exactly
  // their epochs — the index repairs those two entries in place.
  std::swap(instance.tasks[5], instance.tasks[6]);
  std::swap(instance.matrices[5], instance.matrices[6]);
  std::swap(instance.truths[5], instance.truths[6]);
  ++task_epochs[5];
  ++task_epochs[6];
  expect_all_equal();

  // Worker staleness: a new quality vector invalidates every entry.
  for (auto& q : instance.worker_quality) {
    q = rng.UniformDoubleRange(0.3, 0.95);
  }
  worker_epoch = 2;
  expect_all_equal();

  // Generation staleness: nothing else changed, but a bumped generation
  // must still force a full rescore (the O(1) invalidation contract).
  generation = 8;
  expect_all_equal();
}

}  // namespace
}  // namespace docs::core
