// Equivalence and liveness suite for async inference mode (DESIGN.md §15).
//
// The contract under test has two halves. Equivalence: a drained async
// system — every acked answer applied and published — is BITWISE identical
// to a sync system fed the same campaign: same selections, same task
// posteriors, same worker qualities, same inferred choices, across all four
// selection rules and the scoring-thread sweep. Liveness: the serving calls
// never wait on the background inference thread — SubmitAnswer acks after
// enqueue, and RequestTasks for a servable worker completes against the
// published snapshot even while an apply/EM pass is deliberately blocked.
// scripts/ci.sh additionally runs this binary under TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/concurrent_docs_system.h"
#include "core/docs_system.h"
#include "core/inference_service.h"
#include "crowd/worker_pool.h"
#include "datasets/dataset.h"
#include "kb/synthetic_kb.h"
#include "storage/worker_store.h"

namespace docs::core {
namespace {

constexpr size_t kThreadSweep[] = {1, 2, 4, 8};
constexpr SelectionRule kAllRules[] = {
    SelectionRule::kBenefit, SelectionRule::kDomainMax,
    SelectionRule::kUncertainty, SelectionRule::kQualityBlind};

class InferenceServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new kb::SyntheticKb(kb::BuildSyntheticKb());
  }
  static void TearDownTestSuite() {
    delete kb_;
    kb_ = nullptr;
  }
  static kb::SyntheticKb* kb_;
};

kb::SyntheticKb* InferenceServiceTest::kb_ = nullptr;

/// Drives a sync and an async facade through one identical scripted
/// campaign in lockstep. After every round the async system is drained, so
/// each RequestTasks comparison pins down the full state: any divergence in
/// the apply order, the submission books, or the snapshot scoring path
/// shows up as a selection mismatch in the round that caused it. The script
/// covers golden probing, retro fan-out across co-answering workers, lease
/// abandonment + expiry sweeps, the periodic full EM, and mid-campaign
/// WorkerStore loads.
TEST_F(InferenceServiceTest, DrainedAsyncIsBitIdenticalToSyncAcrossRulesAndThreads) {
  const auto dataset = datasets::MakeItemDataset(*kb_);
  const auto truths = dataset.Truths();
  std::vector<TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }

  crowd::WorkerPoolOptions pool_options;
  pool_options.num_workers = 8;
  const auto personas = crowd::MakeWorkerPool(
      kb_->knowledge_base.num_domains(), dataset.label_to_domain, pool_options,
      77);

  const size_t m = kb_->knowledge_base.num_domains();
  auto store = storage::WorkerStore::InMemory(m);
  storage::WorkerQualityRecord record;
  record.quality.assign(m, 0.85);
  record.weight.assign(m, 3.0);
  ASSERT_TRUE(store.Put("veteran", record).ok());

  for (SelectionRule rule : kAllRules) {
    for (size_t threads : kThreadSweep) {
      SCOPED_TRACE("rule " + std::to_string(static_cast<int>(rule)) + ", " +
                   std::to_string(threads) + " threads");
      DocsSystemOptions options;
      options.golden_count = 5;
      options.reinfer_every = 25;  // several full EM passes mid-campaign
      options.lease_duration = 3;
      options.selection_rule = rule;
      options.num_threads = threads;
      DocsSystemOptions async_options = options;
      async_options.async_inference = true;

      ConcurrentDocsSystem sync_system(&kb_->knowledge_base, options);
      ConcurrentDocsSystem async_system(&kb_->knowledge_base, async_options);
      ASSERT_TRUE(sync_system.AddTasks(inputs, &truths).ok());
      ASSERT_TRUE(async_system.AddTasks(inputs, &truths).ok());
      ASSERT_TRUE(sync_system.LoadWorker("veteran", store).ok());
      ASSERT_TRUE(async_system.LoadWorker("veteran", store).ok());

      std::vector<std::string> ids = {"w0", "w1", "w2",      "w3",
                                      "w4", "w5", "veteran"};
      Rng rng(61);  // one stream serves both systems: selections are
                    // asserted equal before any answer is generated
      for (size_t round = 0; round < 24; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        const std::string& id = ids[round % ids.size()];

        // Quiesce before comparing: the contract is drained-state equality,
        // not mid-flight equality (the async system is allowed to serve
        // stale between publishes).
        async_system.Drain();
        const auto selected = sync_system.RequestTasks(id, 4);
        ASSERT_EQ(async_system.RequestTasks(id, 4), selected);

        for (size_t s = 0; s < selected.size(); ++s) {
          // Every third round the worker abandons the last granted task, so
          // the expiry sweep below has real work to reclaim.
          if (round % 3 == 2 && s + 1 == selected.size()) continue;
          const size_t task = selected[s];
          const size_t choice = crowd::GenerateAnswer(
              personas[round % personas.size()],
              dataset.tasks[task].true_domain, dataset.tasks[task].truth,
              dataset.tasks[task].num_choices(), rng);
          ASSERT_TRUE(sync_system.SubmitAnswer(id, task, choice).ok());
          ASSERT_TRUE(async_system.SubmitAnswer(id, task, choice).ok());
        }

        if (round == 10 || round == 20) {
          async_system.Drain();
          const auto sync_swept =
              sync_system.ExpireLeases(sync_system.lease_clock());
          const auto async_swept =
              async_system.ExpireLeases(async_system.lease_clock());
          ASSERT_EQ(async_swept.size(), sync_swept.size());
          for (size_t i = 0; i < sync_swept.size(); ++i) {
            EXPECT_EQ(async_swept[i].worker, sync_swept[i].worker);
            EXPECT_EQ(async_swept[i].task, sync_swept[i].task);
            EXPECT_EQ(async_swept[i].deadline, sync_swept[i].deadline);
          }
        }
      }

      async_system.Drain();
      EXPECT_EQ(async_system.InferredChoices(), sync_system.InferredChoices());
      EXPECT_EQ(async_system.num_answers(), sync_system.num_answers());

      // Posteriors and worker qualities, exact to the last bit.
      const size_t num_tasks = inputs.size();
      for (size_t t = 0; t < num_tasks; ++t) {
        const auto sync_truth = sync_system.WithLocked(
            [&](DocsSystem& s) { return s.inference().task_truth(t); });
        const auto async_truth = async_system.WithLocked(
            [&](DocsSystem& s) { return s.inference().task_truth(t); });
        ASSERT_EQ(async_truth, sync_truth) << "task " << t;
      }
      const size_t workers = sync_system.WithLocked(
          [](DocsSystem& s) { return s.inference().num_workers(); });
      ASSERT_EQ(async_system.WithLocked([](DocsSystem& s) {
        return s.inference().num_workers();
      }),
                workers);
      for (size_t w = 0; w < workers; ++w) {
        const auto sync_quality = sync_system.WithLocked(
            [&](DocsSystem& s) { return s.inference().worker_quality(w); });
        const auto async_quality = async_system.WithLocked(
            [&](DocsSystem& s) { return s.inference().worker_quality(w); });
        ASSERT_EQ(async_quality.quality, sync_quality.quality) << "worker " << w;
        ASSERT_EQ(async_quality.weight, sync_quality.weight) << "worker " << w;
      }
    }
  }
}

/// SubmitAnswer acks synchronously with the same status codes and messages
/// as sync mode — the wire contract must not change with the execution
/// model, and a duplicate must be caught at ack time from the submission
/// books, before the answer is ever applied.
TEST_F(InferenceServiceTest, RejectionsAreSynchronousAndMatchSyncCodes) {
  const auto dataset = datasets::MakeQaDataset(*kb_, 40, 13);
  std::vector<TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }
  DocsSystemOptions options;
  options.golden_count = 0;
  options.reinfer_every = 0;
  options.num_threads = 1;
  DocsSystemOptions async_options = options;
  async_options.async_inference = true;
  ConcurrentDocsSystem sync_system(&kb_->knowledge_base, options);
  ConcurrentDocsSystem async_system(&kb_->knowledge_base, async_options);
  ASSERT_TRUE(sync_system.AddTasks(inputs).ok());
  ASSERT_TRUE(async_system.AddTasks(inputs).ok());

  const auto sync_hit = sync_system.RequestTasks("w", 2);
  const auto async_hit = async_system.RequestTasks("w", 2);
  ASSERT_EQ(async_hit, sync_hit);
  ASSERT_GE(sync_hit.size(), 2u);

  // A worker id never seen by RequestTasks/LoadWorker.
  const Status sync_ghost = sync_system.SubmitAnswer("ghost", sync_hit[0], 0);
  const Status async_ghost = async_system.SubmitAnswer("ghost", sync_hit[0], 0);
  EXPECT_EQ(async_ghost.code(), sync_ghost.code());
  EXPECT_FALSE(async_ghost.ok());

  // Unknown task and out-of-range choice: identical code AND message.
  EXPECT_EQ(async_system.SubmitAnswer("w", 9999, 0),
            sync_system.SubmitAnswer("w", 9999, 0));
  EXPECT_EQ(async_system.SubmitAnswer("w", sync_hit[0], 999),
            sync_system.SubmitAnswer("w", sync_hit[0], 999));

  // Duplicate detection is immediate — no Drain between the two submits, so
  // the first answer is likely still in the queue when the retry arrives.
  ASSERT_TRUE(sync_system.SubmitAnswer("w", sync_hit[0], 0).ok());
  ASSERT_TRUE(async_system.SubmitAnswer("w", sync_hit[0], 0).ok());
  EXPECT_EQ(async_system.SubmitAnswer("w", sync_hit[0], 1),
            sync_system.SubmitAnswer("w", sync_hit[0], 1));
  EXPECT_EQ(async_system.SubmitAnswer("w", sync_hit[0], 1).code(),
            StatusCode::kAlreadyExists);

  // Only the accepted answer reached inference.
  async_system.Drain();
  EXPECT_EQ(async_system.num_answers(), sync_system.num_answers());
  EXPECT_EQ(async_system.num_answers(), 1u);
}

/// Staleness observability: the counters expose exactly how far behind the
/// published snapshot is, and a drain settles them to zero-pending with the
/// epoch advanced past every acked answer.
TEST_F(InferenceServiceTest, StalenessCountersTrackQueueAndPublishes) {
  const auto dataset = datasets::MakeQaDataset(*kb_, 40, 13);
  std::vector<TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }
  DocsSystemOptions options;
  options.golden_count = 0;
  options.reinfer_every = 10;
  options.num_threads = 1;
  options.async_inference = true;
  ConcurrentDocsSystem system(&kb_->knowledge_base, options);

  // Sync mode (and pre-ingest) reports disabled and all-zero.
  ConcurrentDocsSystem sync_system(&kb_->knowledge_base, DocsSystemOptions{});
  ASSERT_TRUE(sync_system.AddTasks(inputs).ok());
  EXPECT_FALSE(sync_system.async_stats().enabled);
  EXPECT_EQ(sync_system.async_stats().service.snapshot_epoch, 0u);

  ASSERT_TRUE(system.AddTasks(inputs).ok());
  const AsyncInferenceStats boot = system.async_stats();
  EXPECT_TRUE(boot.enabled);
  EXPECT_EQ(boot.service.snapshot_epoch, 1u);  // the ingest-time publish
  EXPECT_EQ(boot.service.answers_enqueued, 0u);

  const auto hit = system.RequestTasks("w", 4);
  ASSERT_GE(hit.size(), 3u);
  for (size_t s = 0; s < 3; ++s) {
    ASSERT_TRUE(system.SubmitAnswer("w", hit[s], 0).ok());
  }
  system.Drain();

  const AsyncInferenceStats drained = system.async_stats();
  EXPECT_EQ(drained.service.answers_enqueued, 3u);
  EXPECT_EQ(drained.service.answers_applied, 3u);
  EXPECT_EQ(drained.service.answers_pending, 0u);
  EXPECT_GT(drained.service.snapshot_epoch, boot.service.snapshot_epoch);
  EXPECT_GE(drained.service.publishes, 1u);

  // The lease sweep records which snapshot epoch it was consistent with.
  (void)system.ExpireLeases(system.lease_clock());
  EXPECT_EQ(system.async_stats().last_sweep_epoch,
            drained.service.snapshot_epoch);
}

/// Backpressure: a tiny queue plus a deliberately slow apply hook forces
/// producers to block in Enqueue instead of growing memory without bound —
/// and every acked answer still lands exactly once.
TEST_F(InferenceServiceTest, BoundedQueueBackpressureLosesNothing) {
  const auto dataset = datasets::MakeQaDataset(*kb_, 60, 11);
  std::vector<TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }
  DocsSystemOptions options;
  options.golden_count = 0;
  options.reinfer_every = 0;
  options.num_threads = 1;
  options.async_inference = true;
  options.async_queue_capacity = 4;
  ConcurrentDocsSystem system(&kb_->knowledge_base, options);
  system.SetAsyncApplyHookForTest([](const PendingAnswer&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  ASSERT_TRUE(system.AddTasks(inputs).ok());

  constexpr size_t kProducers = 4;
  constexpr size_t kAnswersEach = 30;
  for (size_t p = 0; p < kProducers; ++p) {
    // Register up front (registration is the cold, state-locked path).
    ASSERT_FALSE(system.RequestTasks("p" + std::to_string(p), 1).empty());
  }
  std::vector<std::thread> producers;
  std::atomic<size_t> accepted{0};
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      const std::string id = "p" + std::to_string(p);
      for (size_t t = 0; t < kAnswersEach; ++t) {
        if (system.SubmitAnswer(id, t, 0).ok()) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : producers) thread.join();
  system.Drain();

  const AsyncInferenceStats stats = system.async_stats();
  EXPECT_EQ(accepted.load(), kProducers * kAnswersEach);
  EXPECT_EQ(stats.service.answers_enqueued, accepted.load());
  EXPECT_EQ(stats.service.answers_applied, accepted.load());
  EXPECT_EQ(stats.service.answers_pending, 0u);
  EXPECT_GT(stats.service.enqueue_waits, 0u);
  EXPECT_EQ(system.num_answers(), accepted.load());
}

/// The headline regression: RequestTasks for a servable worker completes
/// while the background thread is parked mid-apply (standing in for a slow
/// retro-update + full EM pass holding the state lock exclusively), and
/// SubmitAnswer acks without waiting for that pass either. In sync mode
/// both calls would queue behind the EM.
TEST_F(InferenceServiceTest, ServingNeverBlocksOnSlowApply) {
  const auto dataset = datasets::MakeQaDataset(*kb_, 60, 11);
  std::vector<TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }
  DocsSystemOptions options;
  options.golden_count = 0;
  options.reinfer_every = 1;  // every answer triggers the full EM
  options.num_threads = 2;
  options.async_inference = true;
  ConcurrentDocsSystem system(&kb_->knowledge_base, options);
  std::atomic<bool> gate{false};
  std::atomic<bool> parked{false};
  system.SetAsyncApplyHookForTest([&](const PendingAnswer&) {
    if (!gate.load(std::memory_order_acquire)) return;
    parked.store(true, std::memory_order_release);
    while (gate.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  ASSERT_TRUE(system.AddTasks(inputs).ok());

  // Warm-up: register, answer once, drain — the published snapshot now
  // carries the worker as servable.
  const auto first = system.RequestTasks("w", 2);
  ASSERT_GE(first.size(), 2u);
  ASSERT_TRUE(system.SubmitAnswer("w", first[0], 0).ok());
  system.Drain();
  const uint64_t epoch_before = system.async_stats().service.snapshot_epoch;

  // Park the apply thread on the next answer, holding state + pool the way
  // a long EM pass does.
  gate.store(true, std::memory_order_release);
  const auto ack_start = std::chrono::steady_clock::now();
  ASSERT_TRUE(system.SubmitAnswer("w", first[1], 0).ok());
  const auto ack_elapsed = std::chrono::steady_clock::now() - ack_start;
  EXPECT_LT(ack_elapsed, std::chrono::seconds(5));
  while (!parked.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Serve from the stale snapshot. A state-lock dependency anywhere on this
  // path would deadlock here (the apply thread holds it until the gate
  // opens) — the 300 s ctest timeout is the backstop.
  const auto serve_start = std::chrono::steady_clock::now();
  const auto served = system.RequestTasks("w", 2);
  const auto serve_elapsed = std::chrono::steady_clock::now() - serve_start;
  EXPECT_FALSE(served.empty());
  EXPECT_LT(serve_elapsed, std::chrono::seconds(5));
  EXPECT_EQ(system.async_stats().service.snapshot_epoch, epoch_before);

  // The lease sweep is equally independent of the parked apply.
  (void)system.ExpireLeases(system.lease_clock());

  gate.store(false, std::memory_order_release);
  system.Drain();
  EXPECT_GT(system.async_stats().service.snapshot_epoch, epoch_before);
  EXPECT_EQ(system.num_answers(), 2u);
}

}  // namespace
}  // namespace docs::core
