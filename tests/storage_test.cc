#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "storage/worker_store.h"

namespace docs::storage {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(WorkerQualityRecordTest, FreshRecord) {
  auto record = WorkerQualityRecord::Fresh(3, 0.7);
  EXPECT_EQ(record.quality, (std::vector<double>{0.7, 0.7, 0.7}));
  EXPECT_EQ(record.weight, (std::vector<double>{0.0, 0.0, 0.0}));
}

TEST(WorkerQualityRecordTest, Theorem1WeightedMerge) {
  WorkerQualityRecord stored;
  stored.quality = {0.8, 0.5};
  stored.weight = {4.0, 2.0};
  WorkerQualityRecord fresh;
  fresh.quality = {0.6, 0.9};
  fresh.weight = {1.0, 2.0};
  stored.MergeTheorem1(fresh);
  // (0.8*4 + 0.6*1)/5 = 0.76 ; (0.5*2 + 0.9*2)/4 = 0.7
  EXPECT_NEAR(stored.quality[0], 0.76, 1e-12);
  EXPECT_NEAR(stored.quality[1], 0.7, 1e-12);
  EXPECT_NEAR(stored.weight[0], 5.0, 1e-12);
  EXPECT_NEAR(stored.weight[1], 4.0, 1e-12);
}

TEST(WorkerQualityRecordTest, Theorem1ZeroWeightsTakeFreshQuality) {
  WorkerQualityRecord stored;
  stored.quality = {0.8};
  stored.weight = {0.0};
  WorkerQualityRecord fresh;
  fresh.quality = {0.4};
  fresh.weight = {0.0};
  stored.MergeTheorem1(fresh);
  EXPECT_NEAR(stored.quality[0], 0.4, 1e-12);
  EXPECT_NEAR(stored.weight[0], 0.0, 1e-12);
}

TEST(WorkerStoreTest, InMemoryPutGet) {
  auto store = WorkerStore::InMemory(2);
  WorkerQualityRecord record;
  record.quality = {0.9, 0.6};
  record.weight = {3.0, 1.0};
  ASSERT_TRUE(store.Put("alice", record).ok());
  auto loaded = store.Get("alice");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->quality, record.quality);
  EXPECT_EQ(loaded->weight, record.weight);
}

TEST(WorkerStoreTest, GetUnknownIsNotFound) {
  auto store = WorkerStore::InMemory(2);
  EXPECT_EQ(store.Get("ghost").status().code(), StatusCode::kNotFound);
}

TEST(WorkerStoreTest, ArityMismatchRejected) {
  auto store = WorkerStore::InMemory(2);
  WorkerQualityRecord record;
  record.quality = {0.9};
  record.weight = {3.0};
  EXPECT_FALSE(store.Put("alice", record).ok());
}

TEST(WorkerStoreTest, MergeOnMissingWorkerInserts) {
  auto store = WorkerStore::InMemory(1);
  WorkerQualityRecord record;
  record.quality = {0.9};
  record.weight = {2.0};
  ASSERT_TRUE(store.Merge("bob", record).ok());
  EXPECT_NEAR(store.Get("bob")->quality[0], 0.9, 1e-12);
}

TEST(WorkerStoreTest, MergeAppliesTheorem1) {
  auto store = WorkerStore::InMemory(1);
  WorkerQualityRecord first;
  first.quality = {0.8};
  first.weight = {4.0};
  WorkerQualityRecord second;
  second.quality = {0.6};
  second.weight = {1.0};
  ASSERT_TRUE(store.Put("bob", first).ok());
  ASSERT_TRUE(store.Merge("bob", second).ok());
  EXPECT_NEAR(store.Get("bob")->quality[0], 0.76, 1e-12);
  EXPECT_NEAR(store.Get("bob")->weight[0], 5.0, 1e-12);
}

TEST(WorkerStoreTest, PersistsAcrossReopen) {
  const std::string path = TempPath("persist.log");
  std::remove(path.c_str());
  {
    auto store = WorkerStore::Open(path, 2);
    ASSERT_TRUE(store.ok());
    WorkerQualityRecord record;
    record.quality = {0.9, 0.4};
    record.weight = {2.0, 5.0};
    ASSERT_TRUE(store->Put("alice", record).ok());
    ASSERT_TRUE(store->Flush().ok());
  }
  auto reopened = WorkerStore::Open(path, 2);
  ASSERT_TRUE(reopened.ok());
  auto loaded = reopened->Get("alice");
  ASSERT_TRUE(loaded.ok());
  EXPECT_NEAR(loaded->quality[0], 0.9, 1e-12);
  EXPECT_NEAR(loaded->weight[1], 5.0, 1e-12);
}

TEST(WorkerStoreTest, LastRecordWinsOnReplay) {
  const std::string path = TempPath("lastwins.log");
  std::remove(path.c_str());
  {
    auto store = WorkerStore::Open(path, 1);
    ASSERT_TRUE(store.ok());
    WorkerQualityRecord a;
    a.quality = {0.5};
    a.weight = {1.0};
    WorkerQualityRecord b;
    b.quality = {0.9};
    b.weight = {2.0};
    ASSERT_TRUE(store->Put("w", a).ok());
    ASSERT_TRUE(store->Put("w", b).ok());
    ASSERT_TRUE(store->Flush().ok());
    EXPECT_EQ(store->log_records(), 2u);
  }
  auto reopened = WorkerStore::Open(path, 1);
  ASSERT_TRUE(reopened.ok());
  EXPECT_NEAR(reopened->Get("w")->quality[0], 0.9, 1e-12);
}

TEST(WorkerStoreTest, TornTailIsIgnoredOnRecovery) {
  const std::string path = TempPath("torn.log");
  std::remove(path.c_str());
  {
    auto store = WorkerStore::Open(path, 1);
    ASSERT_TRUE(store.ok());
    WorkerQualityRecord record;
    record.quality = {0.5};
    record.weight = {1.0};
    ASSERT_TRUE(store->Put("w", record).ok());
    ASSERT_TRUE(store->Flush().ok());
  }
  // Simulate a crash mid-append: garbage partial record at the tail.
  {
    std::ofstream out(path, std::ios::app);
    out << "PUT w 1 0.99";  // no weight fields, no checksum, no newline
  }
  auto reopened = WorkerStore::Open(path, 1);
  ASSERT_TRUE(reopened.ok());
  ASSERT_TRUE(reopened->Contains("w"));
  EXPECT_NEAR(reopened->Get("w")->quality[0], 0.5, 1e-12);
}

TEST(WorkerStoreTest, ChecksumMismatchStopsReplay) {
  const std::string path = TempPath("checksum.log");
  std::remove(path.c_str());
  {
    std::ofstream out(path);
    out << "PUT w 1 0.5 1.0 #12345\n";  // wrong checksum
  }
  auto reopened = WorkerStore::Open(path, 1);
  ASSERT_TRUE(reopened.ok());
  EXPECT_FALSE(reopened->Contains("w"));
}

TEST(WorkerStoreTest, CompactShrinksLog) {
  const std::string path = TempPath("compact.log");
  std::remove(path.c_str());
  auto store = WorkerStore::Open(path, 1);
  ASSERT_TRUE(store.ok());
  WorkerQualityRecord record;
  record.quality = {0.5};
  record.weight = {1.0};
  for (int i = 0; i < 10; ++i) {
    record.quality[0] = 0.5 + 0.01 * i;
    ASSERT_TRUE(store->Put("w", record).ok());
  }
  EXPECT_EQ(store->log_records(), 10u);
  ASSERT_TRUE(store->Compact().ok());
  EXPECT_EQ(store->log_records(), 1u);
  EXPECT_NEAR(store->Get("w")->quality[0], 0.59, 1e-12);

  // Store still writable after compaction, and state survives reopen.
  record.quality[0] = 0.77;
  ASSERT_TRUE(store->Put("w", record).ok());
  ASSERT_TRUE(store->Flush().ok());
  auto reopened = WorkerStore::Open(path, 1);
  ASSERT_TRUE(reopened.ok());
  EXPECT_NEAR(reopened->Get("w")->quality[0], 0.77, 1e-12);
}

TEST(WorkerStoreTest, WorkerIdsListsAll) {
  auto store = WorkerStore::InMemory(1);
  WorkerQualityRecord record;
  record.quality = {0.5};
  record.weight = {1.0};
  ASSERT_TRUE(store.Put("a", record).ok());
  ASSERT_TRUE(store.Put("b", record).ok());
  auto ids = store.WorkerIds();
  EXPECT_EQ(ids.size(), 2u);
  EXPECT_EQ(store.size(), 2u);
}

}  // namespace
}  // namespace docs::storage
