// Durability and exactly-once tests (DESIGN.md §12): answer-WAL recovery
// (empty dir, torn tail at every byte, corruption, duplicate request ids),
// the dedup window (idempotent retries, FIFO bound, checkpoint carry),
// injected WAL faults, checkpoint/submit races, and in-process gateway
// crash/recover cycles with resilient clients riding through — asserting
// zero lost answers, zero duplicates, and bit-identical recovered
// posteriors.

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "client/resilient_client.h"
#include "common/fault_injection.h"
#include "common/sync.h"
#include "core/concurrent_docs_system.h"
#include "core/durable_docs_system.h"
#include "datasets/dataset.h"
#include "kb/synthetic_kb.h"
#include "net/wire.h"
#include "server/crowd_gateway.h"
#include "storage/answer_wal.h"
#include "storage/log_store.h"

namespace docs::core {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

/// (worker, task, choice) triple for multiset equality between what clients
/// were acknowledged and what recovery reconstructed.
using Acked = std::tuple<std::string, size_t, size_t>;

class DurabilityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new kb::SyntheticKb(kb::BuildSyntheticKb());
    dataset_ = new datasets::Dataset(datasets::MakeItemDataset(*kb_));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete kb_;
    dataset_ = nullptr;
    kb_ = nullptr;
  }
  void TearDown() override { FaultInjector::Global().DisarmAll(); }

  /// A fresh recovery directory under the test tempdir (old state removed).
  static std::string FreshDir(const std::string& name) {
    const std::string dir = ::testing::TempDir() + "/" + name;
    ::mkdir(dir.c_str(), 0755);
    std::remove((dir + "/state.ckpt").c_str());
    std::remove((dir + "/answers.wal").c_str());
    return dir;
  }

  static DocsSystemOptions CampaignOptions() {
    DocsSystemOptions options;
    options.golden_count = 4;
    options.lease_duration = 0;
    options.reinfer_every = 10;
    return options;
  }

  /// A facade with the item campaign ingested.
  static std::unique_ptr<ConcurrentDocsSystem> LoadedSystem() {
    auto system = std::make_unique<ConcurrentDocsSystem>(
        &kb_->knowledge_base, CampaignOptions());
    std::vector<TaskInput> inputs;
    for (const auto& task : dataset_->tasks) {
      inputs.push_back({task.text, task.num_choices()});
    }
    auto truths = dataset_->Truths();
    EXPECT_TRUE(system->AddTasks(inputs, &truths).ok());
    return system;
  }

  /// An empty facade (recovery loads the campaign from the checkpoint).
  static std::unique_ptr<ConcurrentDocsSystem> EmptySystem() {
    return std::make_unique<ConcurrentDocsSystem>(&kb_->knowledge_base,
                                                  CampaignOptions());
  }

  /// Registers `worker` (durable `reg` record) by requesting a batch.
  static void Register(DurableDocsSystem& durable, const std::string& worker) {
    std::vector<size_t> tasks;
    ASSERT_TRUE(durable.RequestTasks(worker, 2, &tasks).ok());
  }

  /// The full-inference posterior over every task, for bitwise comparison.
  static std::vector<std::vector<double>> Posterior(
      ConcurrentDocsSystem& system) {
    system.RunFullInference();
    return system.WithLocked([](DocsSystem& inner) {
      std::vector<std::vector<double>> all;
      for (size_t t = 0; t < inner.tasks().size(); ++t) {
        all.push_back(inner.inference().task_truth(t));
      }
      return all;
    });
  }

  static bool BitwiseEqual(const std::vector<std::vector<double>>& a,
                           const std::vector<std::vector<double>>& b) {
    if (a.size() != b.size()) return false;
    for (size_t t = 0; t < a.size(); ++t) {
      if (a[t].size() != b[t].size() ||
          std::memcmp(a[t].data(), b[t].data(),
                      a[t].size() * sizeof(double)) != 0) {
        return false;
      }
    }
    return true;
  }

  /// Every recovered answer as (external id, task, choice), in arrival
  /// order — the order inference iterates, which fixes float summation.
  static std::vector<Acked> RecoveredAnswers(ConcurrentDocsSystem& system) {
    const std::vector<std::string> ids = system.WorkerIds();
    return system.WithLocked([&](DocsSystem& inner) {
      std::vector<Acked> answers;
      for (const Answer& answer : inner.inference().answers()) {
        answers.emplace_back(ids[answer.worker], answer.task, answer.choice);
      }
      return answers;
    });
  }

  static std::vector<Acked> Sorted(std::vector<Acked> answers) {
    std::sort(answers.begin(), answers.end());
    return answers;
  }

  static kb::SyntheticKb* kb_;
  static datasets::Dataset* dataset_;
};

kb::SyntheticKb* DurabilityTest::kb_ = nullptr;
datasets::Dataset* DurabilityTest::dataset_ = nullptr;

// --- Recovery basics ---------------------------------------------------------

TEST_F(DurabilityTest, EmptyDirectoryBootstrapsAndGuardsDoubleRecover) {
  const std::string dir = FreshDir("dur_bootstrap");
  auto system = LoadedSystem();
  DurableDocsSystem durable(system.get(), {dir});

  // Nothing serves before recovery.
  std::vector<size_t> tasks;
  EXPECT_EQ(durable.RequestTasks("w0", 2, &tasks).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(durable.SubmitAnswer("w0", 0, 0, 1).code(),
            StatusCode::kFailedPrecondition);

  ASSERT_TRUE(durable.Recover().ok());
  EXPECT_TRUE(durable.recovered());
  EXPECT_EQ(durable.Recover().code(), StatusCode::kFailedPrecondition);

  Register(durable, "w0");
  EXPECT_TRUE(durable.SubmitAnswer("w0", 0, 0, 1).ok());
  EXPECT_EQ(system->num_answers(), 1u);
}

TEST_F(DurabilityTest, WalWithoutCheckpointOrTasksIsDataLoss) {
  const std::string dir = FreshDir("dur_orphan_wal");
  {
    storage::AnswerWal::Contents contents;
    auto wal = storage::AnswerWal::Open(dir + "/answers.wal", &contents);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->AppendRegistration("w0").ok());
    ASSERT_TRUE(wal->AppendAnswer("w0", 1, 0, 0).ok());
  }
  auto empty = EmptySystem();  // no AddTasks, no checkpoint on disk
  DurableDocsSystem durable(empty.get(), {dir});
  EXPECT_EQ(durable.Recover().code(), StatusCode::kDataLoss);
}

TEST_F(DurabilityTest, ReplayReconstructsBitIdenticalState) {
  const std::string dir = FreshDir("dur_replay");
  std::vector<Acked> acked;
  {
    auto system = LoadedSystem();
    DurableDocsSystem durable(system.get(), {dir});
    ASSERT_TRUE(durable.Recover().ok());
    // Interleaved registration and answering, the way live serving arrives.
    uint64_t rid = 0;
    for (size_t w = 0; w < 3; ++w) {
      const std::string worker = "worker-" + std::to_string(w);
      Register(durable, worker);
      for (size_t i = 0; i < 6; ++i) {
        const size_t task = w * 6 + i;
        const size_t choice = task % 2;
        ASSERT_TRUE(durable.SubmitAnswer(worker, task, choice, ++rid).ok());
        acked.emplace_back(worker, task, choice);
      }
    }
    ASSERT_EQ(durable.stats().wal_appends, 3u + acked.size());
  }

  // Recover into an empty facade: checkpoint is absent (never called), the
  // WAL alone rebuilds the campaign on top of freshly ingested tasks.
  auto replayed = LoadedSystem();
  DurableDocsSystem recovered(replayed.get(), {dir});
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_EQ(recovered.stats().answers_recovered, acked.size());
  EXPECT_EQ(replayed->num_answers(), acked.size());
  EXPECT_EQ(replayed->WorkerIds(),
            (std::vector<std::string>{"worker-0", "worker-1", "worker-2"}));
  // Stronger than multiset equality: replay preserves the arrival order.
  EXPECT_EQ(RecoveredAnswers(*replayed), acked);

  // The uninterrupted reference: same registrations, same answers, no crash.
  auto reference = LoadedSystem();
  reference->WithLocked([&](DocsSystem& inner) {
    for (size_t w = 0; w < 3; ++w) {
      (void)inner.WorkerIndex("worker-" + std::to_string(w));
    }
    return 0;
  });
  for (const Acked& answer : acked) {
    ASSERT_TRUE(reference
                    ->SubmitAnswer(std::get<0>(answer), std::get<1>(answer),
                                   std::get<2>(answer))
                    .ok());
  }
  EXPECT_TRUE(BitwiseEqual(Posterior(*replayed), Posterior(*reference)));
  EXPECT_EQ(replayed->InferredChoices(), reference->InferredChoices());
}

// --- WAL edge cases ----------------------------------------------------------

TEST_F(DurabilityTest, TornTailAtEveryByteRecoversIntactPrefix) {
  const std::string dir = FreshDir("dur_torn");
  {
    auto system = LoadedSystem();
    DurableDocsSystem durable(system.get(), {dir});
    ASSERT_TRUE(durable.Recover().ok());
    ASSERT_TRUE(durable.Checkpoint().ok());  // empty campaign checkpoint
    Register(durable, "w0");
    ASSERT_TRUE(durable.SubmitAnswer("w0", 0, 0, 11).ok());
    ASSERT_TRUE(durable.SubmitAnswer("w0", 1, 1, 12).ok());
    ASSERT_TRUE(durable.SubmitAnswer("w0", 2, 0, 13).ok());
  }
  const std::string checkpoint = ReadFileBytes(dir + "/state.ckpt");
  const std::string full = ReadFileBytes(dir + "/answers.wal");
  ASSERT_FALSE(full.empty());
  // Start of the final record (the third answer): past the 3rd newline
  // (reg, ans, ans precede it).
  size_t last_start = 0;
  for (int newline = 0; newline < 3; ++newline) {
    last_start = full.find('\n', last_start) + 1;
    ASSERT_NE(last_start, 0u);
  }
  ASSERT_LT(last_start, full.size());

  // A crash at any byte inside the final append loses exactly that answer,
  // never more, and recovery self-heals the file. Cutting only the trailing
  // newline keeps the record but must ALSO trigger the repair (an append
  // onto a newline-less tail would fuse two records).
  const std::string cut_dir = FreshDir("dur_torn_cut");
  for (size_t cut = last_start; cut < full.size(); ++cut) {
    WriteFileBytes(cut_dir + "/state.ckpt", checkpoint);
    WriteFileBytes(cut_dir + "/answers.wal", full.substr(0, cut));
    auto system = EmptySystem();
    DurableDocsSystem durable(system.get(), {cut_dir});
    ASSERT_TRUE(durable.Recover().ok()) << "cut=" << cut;
    const size_t expect = cut == full.size() - 1 ? 3u : 2u;
    EXPECT_EQ(system->num_answers(), expect) << "cut=" << cut;
    // The surviving prefix still dedups: retrying an already-applied id is
    // acknowledged without touching state.
    EXPECT_TRUE(durable.SubmitAnswer("w0", 1, 1, 12).ok());
    EXPECT_EQ(system->num_answers(), expect) << "cut=" << cut;
    EXPECT_EQ(durable.stats().answers_deduped, 1u);
    // And the repaired WAL is append-safe: a fresh answer lands cleanly.
    EXPECT_TRUE(durable.SubmitAnswer("w0", 5, 1, 14).ok()) << "cut=" << cut;
    EXPECT_EQ(system->num_answers(), expect + 1) << "cut=" << cut;
  }
}

TEST_F(DurabilityTest, ChecksumValidGarbageRecordIsDataLoss) {
  const std::string dir = FreshDir("dur_garbage");
  {
    auto log = storage::LogStore::Open(dir + "/answers.wal", nullptr);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->Append("ans not-a-number 0 0 7730").ok());
    ASSERT_TRUE(log->Flush().ok());
  }
  auto system = LoadedSystem();
  DurableDocsSystem durable(system.get(), {dir});
  EXPECT_EQ(durable.Recover().code(), StatusCode::kDataLoss);
}

TEST_F(DurabilityTest, DuplicateRequestIdInWalIsDataLoss) {
  const std::string dir = FreshDir("dur_dup_rid");
  {
    auto log = storage::LogStore::Open(dir + "/answers.wal", nullptr);
    ASSERT_TRUE(log.ok());
    // 7730 = hex("w0"); the same (worker, request_id) appended twice can
    // only mean the log was corrupted or mis-spliced — SubmitAnswer never
    // writes a duplicate (the window check precedes the append).
    ASSERT_TRUE(log->Append("ans 9 0 0 7730").ok());
    ASSERT_TRUE(log->Append("ans 9 1 1 7730").ok());
    ASSERT_TRUE(log->Flush().ok());
  }
  auto system = LoadedSystem();
  DurableDocsSystem durable(system.get(), {dir});
  EXPECT_EQ(durable.Recover().code(), StatusCode::kDataLoss);
}

TEST_F(DurabilityTest, MidWalCorruptionIsDataLossNotSilentTruncation) {
  const std::string dir = FreshDir("dur_mid_corrupt");
  {
    auto system = LoadedSystem();
    DurableDocsSystem durable(system.get(), {dir});
    ASSERT_TRUE(durable.Recover().ok());
    Register(durable, "w0");
    ASSERT_TRUE(durable.SubmitAnswer("w0", 0, 0, 41).ok());
    ASSERT_TRUE(durable.SubmitAnswer("w0", 1, 1, 42).ok());
  }
  // Bit rot strictly inside the file: an acked answer (42) still follows the
  // damaged record, so this cannot be a torn tail. Truncating there would
  // silently drop answer 42 — recovery must refuse instead of guessing.
  std::string wal = ReadFileBytes(dir + "/answers.wal");
  const size_t pos = wal.find("ans 41");
  ASSERT_NE(pos, std::string::npos);
  wal[pos] = 'X';
  WriteFileBytes(dir + "/answers.wal", wal);

  auto system = LoadedSystem();
  DurableDocsSystem durable(system.get(), {dir});
  EXPECT_EQ(durable.Recover().code(), StatusCode::kDataLoss);
}

// --- Dedup window ------------------------------------------------------------

TEST_F(DurabilityTest, RetriesAreAnsweredFromWindowWithOriginalStatus) {
  const std::string dir = FreshDir("dur_dedup");
  auto system = LoadedSystem();
  DurableDocsSystem durable(system.get(), {dir});
  ASSERT_TRUE(durable.Recover().ok());
  Register(durable, "w0");

  ASSERT_TRUE(durable.SubmitAnswer("w0", 0, 0, 21).ok());
  // Retry: same request_id, even a different body — the window answers.
  EXPECT_TRUE(durable.SubmitAnswer("w0", 3, 1, 21).ok());
  EXPECT_EQ(system->num_answers(), 1u);
  EXPECT_EQ(durable.stats().answers_deduped, 1u);

  // A rejected submit is WAL'd and its verdict is replayed to retries too:
  // "ghost" never registered, so the facade said kInvalidArgument — and
  // keeps saying it, deterministically, from the window.
  ASSERT_EQ(durable.SubmitAnswer("ghost", 0, 0, 22).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(durable.SubmitAnswer("ghost", 0, 0, 22).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(durable.stats().answers_deduped, 2u);

  // The verdicts survive a crash: recovery replays the `ans` records and
  // re-derives the same window.
  auto replayed = LoadedSystem();
  DurableDocsSystem recovered(replayed.get(), {dir});
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_EQ(replayed->num_answers(), 1u);
  EXPECT_TRUE(recovered.SubmitAnswer("w0", 0, 0, 21).ok());
  EXPECT_EQ(recovered.SubmitAnswer("ghost", 0, 0, 22).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(replayed->num_answers(), 1u);
}

TEST_F(DurabilityTest, WindowEvictsFifoAtTheConfiguredBound) {
  const std::string dir = FreshDir("dur_window_bound");
  auto system = LoadedSystem();
  DurableOptions options;
  options.dir = dir;
  options.dedup_window = 2;
  DurableDocsSystem durable(system.get(), options);
  ASSERT_TRUE(durable.Recover().ok());
  Register(durable, "w0");

  ASSERT_TRUE(durable.SubmitAnswer("w0", 0, 0, 31).ok());
  ASSERT_TRUE(durable.SubmitAnswer("w0", 1, 1, 32).ok());
  ASSERT_TRUE(durable.SubmitAnswer("w0", 2, 0, 33).ok());  // evicts 31

  // Inside the window: answered idempotently.
  EXPECT_TRUE(durable.SubmitAnswer("w0", 2, 0, 33).ok());
  EXPECT_EQ(durable.stats().answers_deduped, 1u);
  // Past the horizon the request_id is forgotten; the retry falls through to
  // the facade, whose (worker, task) duplicate check still refuses to
  // double-apply — the bound trades a precise ack for safety, never for a
  // second application.
  EXPECT_EQ(durable.SubmitAnswer("w0", 0, 0, 31).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(system->num_answers(), 3u);
}

TEST_F(DurabilityTest, CheckpointTruncatesWalAndCarriesWindow) {
  const std::string dir = FreshDir("dur_checkpoint");
  auto system = LoadedSystem();
  DurableDocsSystem durable(system.get(), {dir});
  ASSERT_TRUE(durable.Recover().ok());
  Register(durable, "w0");
  ASSERT_TRUE(durable.SubmitAnswer("w0", 0, 0, 41).ok());
  ASSERT_TRUE(durable.SubmitAnswer("w0", 1, 1, 42).ok());
  ASSERT_TRUE(durable.SubmitAnswer("w0", 2, 0, 43).ok());
  EXPECT_EQ(durable.stats().wal_records, 4u);  // reg + 3 ans

  ASSERT_TRUE(durable.Checkpoint().ok());
  EXPECT_EQ(durable.stats().checkpoints, 1u);
  EXPECT_EQ(durable.stats().wal_records, 3u);  // just the carried window

  // In-flight retries of pre-checkpoint submits still dedup.
  EXPECT_TRUE(durable.SubmitAnswer("w0", 1, 1, 42).ok());
  EXPECT_EQ(system->num_answers(), 3u);

  // And the carry is itself durable: a post-checkpoint crash recovers the
  // answers from the checkpoint (nothing to replay) and the window from the
  // dedup records.
  auto replayed = EmptySystem();
  DurableDocsSystem recovered(replayed.get(), {dir});
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_EQ(recovered.stats().answers_recovered, 0u);
  EXPECT_EQ(replayed->num_answers(), 3u);
  EXPECT_TRUE(recovered.SubmitAnswer("w0", 2, 0, 43).ok());
  EXPECT_EQ(replayed->num_answers(), 3u);
  EXPECT_EQ(recovered.stats().answers_deduped, 1u);
}

TEST_F(DurabilityTest, PeriodicCheckpointFiresEveryN) {
  const std::string dir = FreshDir("dur_periodic");
  auto system = LoadedSystem();
  DurableOptions options;
  options.dir = dir;
  options.checkpoint_every = 2;
  DurableDocsSystem durable(system.get(), options);
  ASSERT_TRUE(durable.Recover().ok());
  Register(durable, "w0");
  for (size_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(durable.SubmitAnswer("w0", i, i % 2, 50 + i).ok());
  }
  EXPECT_EQ(durable.stats().checkpoints, 3u);
}

// --- Injected faults ---------------------------------------------------------

TEST_F(DurabilityTest, WalAppendFaultRejectsRetryablyWithoutApplying) {
  const std::string dir = FreshDir("dur_append_fault");
  auto system = LoadedSystem();
  DurableDocsSystem durable(system.get(), {dir});
  ASSERT_TRUE(durable.Recover().ok());
  Register(durable, "w0");

  FaultInjector::Global().ArmOneShot(storage::kFaultWalAppend);
  const Status rejected = durable.SubmitAnswer("w0", 0, 0, 61);
  EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(client::ResilientCrowdClient::IsRetryable(rejected.code()));
  EXPECT_EQ(system->num_answers(), 0u);
  EXPECT_EQ(durable.stats().wal_append_failures, 1u);

  // The client-side remedy: retry the same request_id once the log heals.
  EXPECT_TRUE(durable.SubmitAnswer("w0", 0, 0, 61).ok());
  EXPECT_EQ(system->num_answers(), 1u);
  EXPECT_EQ(durable.stats().answers_deduped, 0u);  // fresh apply, not dedup
}

TEST_F(DurabilityTest, FlushFaultRollsBackSoTheRetryCannotDuplicate) {
  const std::string dir = FreshDir("dur_flush_fault");
  {
    auto system = LoadedSystem();
    DurableDocsSystem durable(system.get(), {dir});
    ASSERT_TRUE(durable.Recover().ok());
    Register(durable, "w0");

    FaultInjector::Global().ArmOneShot(storage::kFaultFlush);
    const Status rejected = durable.SubmitAnswer("w0", 0, 0, 81);
    EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
    EXPECT_TRUE(client::ResilientCrowdClient::IsRetryable(rejected.code()));
    EXPECT_EQ(system->num_answers(), 0u);
    FaultInjector::Global().DisarmAll();

    // The record whose flush failed was physically rolled back, so the
    // same-request_id retry re-logs it: a fresh apply, not a dedup hit, and
    // never a duplicate (worker, request_id) pair in the file.
    EXPECT_TRUE(durable.SubmitAnswer("w0", 0, 0, 81).ok());
    EXPECT_EQ(system->num_answers(), 1u);
    EXPECT_EQ(durable.stats().answers_deduped, 0u);
  }
  // The WAL reopens cleanly — a duplicate pair would be kDataLoss and brick
  // every future restart.
  auto replayed = LoadedSystem();
  DurableDocsSystem recovered(replayed.get(), {dir});
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_EQ(replayed->num_answers(), 1u);
}

TEST_F(DurabilityTest, DirtyTailRefusesAppendsUntilScrubSucceeds) {
  const std::string path = FreshDir("dur_dirty_tail") + "/answers.wal";
  storage::AnswerWal::Contents contents;
  auto wal = storage::AnswerWal::Open(path, &contents);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->AppendAnswer("w0", 91, 0, 0).ok());

  // A torn append whose in-place repair also fails leaves unscrubbed bytes
  // in the file.
  FaultInjector::Global().ArmOneShot(storage::kFaultAppend);
  FaultInjector::Global().ArmEveryNth(storage::kFaultCompactWrite, 1);
  EXPECT_FALSE(wal->AppendAnswer("w0", 92, 1, 1).ok());

  // While the scrub keeps failing every append is refused as retryable:
  // appending onto the torn bytes would fuse two records into one
  // checksum-invalid line and silently lose an acked answer.
  EXPECT_EQ(wal->AppendAnswer("w0", 92, 1, 1).code(),
            StatusCode::kUnavailable);

  // Once compaction works again the tail is scrubbed and the append lands.
  FaultInjector::Global().Disarm(storage::kFaultCompactWrite);
  EXPECT_TRUE(wal->AppendAnswer("w0", 92, 1, 1).ok());

  storage::AnswerWal::Contents reopened;
  auto again = storage::AnswerWal::Open(path, &reopened);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(reopened.tail_truncated);
  ASSERT_EQ(reopened.records.size(), 2u);
  EXPECT_EQ(reopened.records[0].request_id, 91u);
  EXPECT_EQ(reopened.records[1].request_id, 92u);
}

TEST_F(DurabilityTest, WalReplayFaultFailsRecoverThenRetrySucceeds) {
  const std::string dir = FreshDir("dur_replay_fault");
  {
    auto system = LoadedSystem();
    DurableDocsSystem durable(system.get(), {dir});
    ASSERT_TRUE(durable.Recover().ok());
    Register(durable, "w0");
    ASSERT_TRUE(durable.SubmitAnswer("w0", 0, 0, 71).ok());
  }
  auto system = LoadedSystem();
  DurableDocsSystem durable(system.get(), {dir});
  FaultInjector::Global().ArmOneShot(storage::kFaultWalReplay);
  EXPECT_FALSE(durable.Recover().ok());
  EXPECT_FALSE(durable.recovered());
  // A failed Recover holds no WAL handle; once the cause clears it retries.
  ASSERT_TRUE(durable.Recover().ok());
  EXPECT_EQ(system->num_answers(), 1u);
}

TEST_F(DurabilityTest, GatewayRecoverFaultAbortsStartBeforeBind) {
  const std::string dir = FreshDir("dur_gateway_recover");
  auto system = LoadedSystem();
  DurableDocsSystem durable(system.get(), {dir});
  server::CrowdGateway gateway(&durable);

  FaultInjector::Global().ArmOneShot(server::kFaultGatewayRecover);
  EXPECT_FALSE(gateway.Start().ok());
  EXPECT_FALSE(gateway.running());
  EXPECT_FALSE(durable.recovered());
  EXPECT_EQ(gateway.stats().faults_injected, 1u);

  ASSERT_TRUE(gateway.Start().ok());
  EXPECT_TRUE(durable.recovered());
  gateway.Stop();
}

// --- Concurrency -------------------------------------------------------------

TEST_F(DurabilityTest, CheckpointRacesSubmittersSafely) {
  const std::string dir = FreshDir("dur_race");
  auto system = LoadedSystem();
  DurableDocsSystem durable(system.get(), {dir});
  ASSERT_TRUE(durable.Recover().ok());
  constexpr size_t kWorkers = 4;
  constexpr size_t kPerWorker = 25;
  for (size_t w = 0; w < kWorkers; ++w) {
    Register(durable, "racer-" + std::to_string(w));
  }

  std::atomic<bool> done{false};
  std::thread checkpointer([&] {
    while (!done.load(std::memory_order_acquire)) {
      const Status saved = durable.Checkpoint();
      ASSERT_TRUE(saved.ok()) << saved.ToString();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::vector<std::thread> submitters;
  for (size_t w = 0; w < kWorkers; ++w) {
    submitters.emplace_back([&, w] {
      const std::string worker = "racer-" + std::to_string(w);
      for (size_t i = 0; i < kPerWorker; ++i) {
        const size_t task = w * kPerWorker + i;
        const uint64_t rid = 1000 + task;
        const Status submitted =
            durable.SubmitAnswer(worker, task, task % 2, rid);
        ASSERT_TRUE(submitted.ok()) << submitted.ToString();
        // Every answer is retryable mid-race without double-applying.
        ASSERT_TRUE(durable.SubmitAnswer(worker, task, task % 2, rid).ok());
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  done.store(true, std::memory_order_release);
  checkpointer.join();
  EXPECT_EQ(system->num_answers(), kWorkers * kPerWorker);

  auto replayed = EmptySystem();
  DurableDocsSystem recovered(replayed.get(), {dir});
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_EQ(replayed->num_answers(), kWorkers * kPerWorker);
  EXPECT_EQ(RecoveredAnswers(*replayed), RecoveredAnswers(*system));
}

// --- In-process gateway chaos ------------------------------------------------

// Serving stack that a "crash" destroys wholesale and a restart rebuilds
// from the recovery directory, the way a respawned process would.
struct DurableServing {
  std::unique_ptr<ConcurrentDocsSystem> system;
  std::unique_ptr<DurableDocsSystem> durable;
  std::unique_ptr<server::CrowdGateway> gateway;
};

TEST_F(DurabilityTest, GatewayRestartCyclesLoseNothingAndStayBitIdentical) {
  const std::string dir = FreshDir("dur_chaos");
  {
    // Seed the directory: campaign ingested, initial checkpoint written.
    auto bootstrap = LoadedSystem();
    DurableDocsSystem durable(bootstrap.get(), {dir});
    ASSERT_TRUE(durable.Recover().ok());
    ASSERT_TRUE(durable.Checkpoint().ok());
  }

  auto boot = [&](uint16_t port) {
    auto serving = std::make_unique<DurableServing>();
    serving->system = EmptySystem();
    DurableOptions options;
    options.dir = dir;
    options.checkpoint_every = 16;
    serving->durable = std::make_unique<DurableDocsSystem>(
        serving->system.get(), options);
    server::CrowdGatewayOptions gateway_options;
    gateway_options.port = port;
    serving->gateway = std::make_unique<server::CrowdGateway>(
        serving->durable.get(), gateway_options);
    Status started = OkStatus();
    for (int attempt = 0; attempt < 100; ++attempt) {
      started = serving->gateway->Start();
      if (started.ok()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_TRUE(started.ok()) << started.ToString();
    return serving;
  };

  std::unique_ptr<DurableServing> serving = boot(0);
  const uint16_t port = serving->gateway->port();
  ASSERT_NE(port, 0);

  constexpr size_t kClients = 2;
  constexpr size_t kRounds = 12;
  docs::Mutex acked_mutex;
  std::vector<Acked> acked;
  std::atomic<size_t> acked_count{0};

  // A little write-fault chaos on top of the restarts: some responses are
  // dropped after the request was served, forcing the ack-lost retry path.
  FaultInjector::Global().ArmProbabilistic(server::kFaultGatewayWrite, 0.02);

  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      client::ResilientClientOptions options;
      options.port = port;
      options.socket.recv_timeout_ms = 2000;
      options.socket.send_timeout_ms = 2000;
      options.max_attempts = 400;
      options.op_deadline_ms = 60000;
      options.max_backoff_ms = 50;
      options.nonce = 0xFACE0000 + c;
      client::ResilientCrowdClient client(options);
      const std::string worker = "chaos-" + std::to_string(c);
      for (size_t round = 0; round < kRounds; ++round) {
        std::vector<uint64_t> hit;
        const Status requested = client.RequestTasks(worker, 2, &hit);
        ASSERT_TRUE(requested.ok()) << requested.ToString();
        for (uint64_t task : hit) {
          const uint32_t choice = static_cast<uint32_t>(task % 2);
          const Status submitted = client.SubmitAnswer(worker, task, choice);
          ASSERT_TRUE(submitted.ok()) << submitted.ToString();
          docs::MutexLock lock(&acked_mutex);
          acked.emplace_back(worker, task, choice);
          acked_count.fetch_add(1);
        }
      }
    });
  }

  // Three crash/recover cycles spread across the campaign. The wall-clock
  // escape keeps a wedged client (its ASSERTs only exit its own thread)
  // from spinning this loop forever.
  constexpr size_t kCycles = 3;
  const auto chaos_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(90);
  for (size_t cycle = 1; cycle <= kCycles; ++cycle) {
    const size_t mark = cycle * (kClients * kRounds * 2) / (kCycles + 1);
    while (acked_count.load() < mark &&
           std::chrono::steady_clock::now() < chaos_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    serving.reset();  // Stop() + teardown: the "crash"
    serving = boot(port);
  }
  for (auto& thread : clients) thread.join();
  FaultInjector::Global().DisarmAll();
  serving.reset();

  // Recover once more and hold the exactly-once contract.
  auto replayed = EmptySystem();
  DurableDocsSystem recovered(replayed.get(), {dir});
  ASSERT_TRUE(recovered.Recover().ok());
  const std::vector<Acked> replayed_answers = RecoveredAnswers(*replayed);
  EXPECT_EQ(Sorted(replayed_answers), Sorted(acked));

  auto reference = LoadedSystem();
  const std::vector<std::string> worker_ids = replayed->WorkerIds();
  reference->WithLocked([&](DocsSystem& inner) {
    for (const std::string& id : worker_ids) (void)inner.WorkerIndex(id);
    return 0;
  });
  for (const Acked& answer : replayed_answers) {
    ASSERT_TRUE(reference
                    ->SubmitAnswer(std::get<0>(answer), std::get<1>(answer),
                                   std::get<2>(answer))
                    .ok());
  }
  EXPECT_TRUE(BitwiseEqual(Posterior(*replayed), Posterior(*reference)));
  EXPECT_EQ(replayed->InferredChoices(), reference->InferredChoices());
}

TEST_F(DurabilityTest, WireStatsCarryDurabilityCounters) {
  const std::string dir = FreshDir("dur_wire_stats");
  auto system = LoadedSystem();
  DurableDocsSystem durable(system.get(), {dir});
  server::CrowdGateway gateway(&durable);
  ASSERT_TRUE(gateway.Start().ok());

  client::CrowdClientOptions options;
  options.recv_timeout_ms = 5000;
  client::CrowdClient client(options);
  ASSERT_TRUE(client.Connect("127.0.0.1", gateway.port()).ok());
  std::vector<uint64_t> tasks;
  ASSERT_TRUE(client.RequestTasks("w0", 2, &tasks).ok());
  ASSERT_TRUE(client.SubmitAnswer("w0", 0, 0, 81).ok());
  ASSERT_TRUE(client.SubmitAnswer("w0", 0, 0, 81).ok());  // deduped

  net::StatsResp stats;
  ASSERT_TRUE(client.Stats(&stats).ok());
  EXPECT_EQ(stats.answers_deduped, 1u);
  EXPECT_GE(stats.wal_records, 2u);  // reg + ans
  EXPECT_EQ(stats.num_answers, 1u);
  gateway.Stop();
}

}  // namespace
}  // namespace docs::core
