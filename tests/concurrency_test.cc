#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "core/concurrent_docs_system.h"
#include "crowd/worker_pool.h"
#include "datasets/dataset.h"
#include "kb/synthetic_kb.h"
#include "storage/worker_store.h"

namespace docs::core {
namespace {

class ConcurrencyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new kb::SyntheticKb(kb::BuildSyntheticKb());
  }
  static void TearDownTestSuite() {
    delete kb_;
    kb_ = nullptr;
  }
  static kb::SyntheticKb* kb_;
};

kb::SyntheticKb* ConcurrencyTest::kb_ = nullptr;

TEST_F(ConcurrencyTest, ParallelWorkersDriveOneSystemConsistently) {
  auto dataset = datasets::MakeItemDataset(*kb_);
  DocsSystemOptions options;
  options.golden_count = 8;
  options.reinfer_every = 50;
  ConcurrentDocsSystem system(&kb_->knowledge_base, options);
  std::vector<TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }
  auto truths = dataset.Truths();
  ASSERT_TRUE(system.AddTasks(inputs, &truths).ok());

  crowd::WorkerPoolOptions pool_options;
  pool_options.num_workers = 8;
  auto workers = crowd::MakeWorkerPool(26, dataset.label_to_domain,
                                       pool_options, 91);

  // Each thread plays one simulated worker: request a HIT, answer it,
  // repeat. Threads interleave arbitrarily; the facade must keep every
  // invariant (no duplicate (worker, task) answers, consistent counters).
  std::atomic<size_t> total_answers{0};
  auto play_worker = [&](size_t w) {
    Rng rng(1000 + w);
    for (int round = 0; round < 10; ++round) {
      auto hit = system.RequestTasks(workers[w].id, 4);
      if (hit.empty()) break;
      for (size_t task : hit) {
        const auto& spec = dataset.tasks[task];
        const Status submitted = system.SubmitAnswer(
            workers[w].id, task,
            crowd::GenerateAnswer(workers[w], spec.true_domain, spec.truth,
                                  spec.num_choices(), rng));
        // Each thread owns one worker and only answers its own grants, so
        // every submission must be accepted.
        EXPECT_TRUE(submitted.ok()) << submitted.ToString();
        if (submitted.ok()) total_answers.fetch_add(1);
      }
    }
  };
  std::vector<std::thread> threads;
  for (size_t w = 0; w < workers.size(); ++w) {
    threads.emplace_back(play_worker, w);
  }
  for (auto& thread : threads) thread.join();

  // Every submitted answer was accepted exactly once (no duplicates were
  // possible because each thread owns one worker, and the facade never lost
  // an update).
  EXPECT_EQ(system.num_answers(), total_answers.load());
  EXPECT_EQ(system.InferredChoices().size(), dataset.tasks.size());

  // The per-(worker, task) uniqueness invariant survived the interleaving.
  system.WithLocked([&](DocsSystem& inner) {
    std::set<std::pair<size_t, size_t>> seen;
    for (const auto& answer : inner.inference().answers()) {
      EXPECT_TRUE(seen.insert({answer.worker, answer.task}).second);
    }
    return 0;
  });
}

TEST_F(ConcurrencyTest, ConcurrentReadersDuringWrites) {
  auto dataset = datasets::MakeQaDataset(*kb_, 60, 92);
  DocsSystemOptions options;
  options.golden_count = 0;
  ConcurrentDocsSystem system(&kb_->knowledge_base, options);
  std::vector<TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }
  ASSERT_TRUE(system.AddTasks(inputs).ok());

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      auto choices = system.InferredChoices();
      ASSERT_EQ(choices.size(), dataset.tasks.size());
    }
  });
  Rng rng(93);
  for (int i = 0; i < 200; ++i) {
    const std::string worker = "w" + std::to_string(i % 5);
    auto hit = system.RequestTasks(worker, 2);
    for (size_t task : hit) {
      const Status submitted = system.SubmitAnswer(
          worker, task, rng.UniformInt(dataset.tasks[task].num_choices()));
      EXPECT_TRUE(submitted.ok()) << submitted.ToString();
    }
  }
  stop.store(true);
  reader.join();
  EXPECT_GT(system.num_answers(), 0u);
}

TEST_F(ConcurrencyTest, SubmitAnswerRejectsWorkersNeverSeen) {
  auto dataset = datasets::MakeQaDataset(*kb_, 20, 95);
  DocsSystemOptions options;
  options.golden_count = 0;
  ConcurrentDocsSystem system(&kb_->knowledge_base, options);
  std::vector<TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }
  ASSERT_TRUE(system.AddTasks(inputs).ok());

  // A malformed/forged id arriving over the network must not silently mint
  // a fresh worker (regression: SubmitAnswer used to call WorkerIndex).
  const Status ghost = system.SubmitAnswer("ghost", 0, 0);
  EXPECT_EQ(ghost.code(), StatusCode::kInvalidArgument);
  const bool registered = system.WithLocked([](DocsSystem& inner) {
    return inner.FindWorker("ghost").has_value();
  });
  EXPECT_FALSE(registered);

  // The legitimate path — RequestTasks first — still works, and so does a
  // worker registered via LoadWorker.
  auto hit = system.RequestTasks("ghost", 1);
  ASSERT_FALSE(hit.empty());
  EXPECT_TRUE(system.SubmitAnswer("ghost", hit[0], 0).ok());

  auto store = storage::WorkerStore::InMemory(kb_->knowledge_base.num_domains());
  storage::WorkerQualityRecord record;
  record.quality.assign(kb_->knowledge_base.num_domains(), 0.7);
  record.weight.assign(kb_->knowledge_base.num_domains(), 10.0);
  ASSERT_TRUE(store.Put("returning", record).ok());
  ASSERT_TRUE(system.LoadWorker("returning", store).ok());
  EXPECT_TRUE(system.SubmitAnswer("returning", 1, 0).ok());
}

TEST_F(ConcurrencyTest, ExpireLeasesRacesServingCalls) {
  auto dataset = datasets::MakeItemDataset(*kb_);
  DocsSystemOptions options;
  options.golden_count = 0;
  options.lease_duration = 2;
  options.reinfer_every = 30;
  ConcurrentDocsSystem system(&kb_->knowledge_base, options);
  std::vector<TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }
  ASSERT_TRUE(system.AddTasks(inputs).ok());

  // Serving-shaped load: worker threads request and (mostly) answer while a
  // reaper thread sweeps expired leases and a reader polls the counters.
  // The facade must keep the lease books consistent under any interleaving.
  std::atomic<size_t> answers{0};
  std::atomic<size_t> expired{0};
  std::atomic<bool> stop{false};
  auto serve = [&](size_t w) {
    Rng rng(500 + w);
    const std::string id = "srv" + std::to_string(w);
    for (int round = 0; round < 15; ++round) {
      auto hit = system.RequestTasks(id, 3);
      if (hit.empty()) break;
      for (size_t idx = 0; idx < hit.size(); ++idx) {
        // Abandon roughly a third of the grants so the reaper has work.
        if (rng.UniformInt(3) == 0) continue;
        const Status submitted = system.SubmitAnswer(id, hit[idx], 0);
        EXPECT_TRUE(submitted.ok()) << submitted.ToString();
        if (submitted.ok()) answers.fetch_add(1);
      }
    }
  };
  std::thread reaper([&] {
    while (!stop.load()) {
      expired.fetch_add(system.ExpireLeases(system.lease_clock()).size());
      std::this_thread::yield();
    }
  });
  std::thread reader([&] {
    while (!stop.load()) {
      EXPECT_LE(system.outstanding_leases(), dataset.tasks.size() * 4);
    }
  });
  std::vector<std::thread> threads;
  for (size_t w = 0; w < 4; ++w) threads.emplace_back(serve, w);
  for (auto& thread : threads) thread.join();
  stop.store(true);
  reaper.join();
  reader.join();

  // A final sweep past every possible deadline must leave zero leases: each
  // grant was either answered (released) or reclaimed exactly once.
  expired.fetch_add(
      system
          .ExpireLeases(system.lease_clock() + options.lease_duration)
          .size());
  EXPECT_EQ(system.outstanding_leases(), 0u);
  EXPECT_EQ(system.num_answers(), answers.load());
  // Double accounting would violate per-(worker, task) uniqueness.
  system.WithLocked([&](DocsSystem& inner) {
    std::set<std::pair<size_t, size_t>> seen;
    for (const auto& answer : inner.inference().answers()) {
      EXPECT_TRUE(seen.insert({answer.worker, answer.task}).second);
    }
    return 0;
  });
}

TEST_F(ConcurrencyTest, ShardedServingPathHammeredByRequestersAndMutators) {
  // Targets the sharded RequestTasks fast path (DESIGN.md §13): workers are
  // first primed past the golden phase sequentially so CanServeSharded
  // holds for every one of them, then many requester threads score
  // concurrently under shared state locks — including worker pairs that
  // collide on the same shard stripe — while answers, periodic full
  // re-inference (reinfer_every), lease sweeps, and checkpoints interleave.
  auto dataset = datasets::MakeItemDataset(*kb_);
  DocsSystemOptions options;
  options.golden_count = 4;
  options.reinfer_every = 20;  // exclusive-path RunFullInference mid-hammer
  options.lease_duration = 4;
  options.num_threads = 2;  // scoring-pool contention exercises the try-lock
                            // serial fallback
  ConcurrentDocsSystem system(&kb_->knowledge_base, options);
  std::vector<TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }
  auto truths = dataset.Truths();
  ASSERT_TRUE(system.AddTasks(inputs, &truths).ok());

  // 18 workers over 16 shard stripes: indices 16 and 17 share stripes with
  // 0 and 1, so same-shard serialization is exercised, not just disjoint
  // stripes.
  constexpr size_t kWorkers = 18;
  std::vector<std::string> ids;
  for (size_t w = 0; w < kWorkers; ++w) {
    ids.push_back("shard" + std::to_string(w));
  }

  // Sequential priming: two 4-task rounds put every worker past golden and
  // size its benefit-cache row, making the sharded fast path reachable.
  std::atomic<size_t> answers{0};
  for (const auto& id : ids) {
    for (int round = 0; round < 2; ++round) {
      auto hit = system.RequestTasks(id, 4);
      ASSERT_FALSE(hit.empty());
      for (size_t task : hit) {
        ASSERT_TRUE(system.SubmitAnswer(id, task, 0).ok());
        answers.fetch_add(1);
      }
    }
  }
  system.WithLocked([&](DocsSystem& inner) {
    for (const auto& id : ids) {
      const auto worker = inner.FindWorker(id);
      EXPECT_TRUE(worker.has_value() && inner.CanServeSharded(*worker))
          << id << " not primed for the sharded path";
    }
    return 0;
  });

  std::atomic<bool> stop{false};
  auto request_and_answer = [&](size_t w) {
    Rng rng(700 + w);
    for (int round = 0; round < 12; ++round) {
      auto hit = system.RequestTasks(ids[w], 3);
      if (hit.empty()) break;
      for (size_t task : hit) {
        if (rng.UniformInt(4) == 0) continue;  // abandon some grants
        const Status submitted = system.SubmitAnswer(ids[w], task, 0);
        EXPECT_TRUE(submitted.ok()) << submitted.ToString();
        if (submitted.ok()) answers.fetch_add(1);
      }
    }
  };
  std::thread reaper([&] {
    while (!stop.load()) {
      (void)system.ExpireLeases(system.lease_clock());
      std::this_thread::yield();
    }
  });
  const std::string path = ::testing::TempDir() + "/sharded_hammer_ckpt.log";
  std::remove(path.c_str());
  std::thread checkpointer([&] {
    while (!stop.load()) {
      const Status saved = system.SaveCheckpoint(path);
      EXPECT_TRUE(saved.ok()) << saved.ToString();
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> threads;
  for (size_t w = 0; w < kWorkers; ++w) {
    threads.emplace_back(request_and_answer, w);
  }
  for (auto& thread : threads) thread.join();
  stop.store(true);
  reaper.join();
  checkpointer.join();

  // Same invariants as the monolithic-path hammers: every accepted answer
  // counted once, leases fully settled after a final sweep, and no
  // duplicate (worker, task) pair slipped through a commit race.
  (void)system.ExpireLeases(system.lease_clock() + options.lease_duration);
  EXPECT_EQ(system.outstanding_leases(), 0u);
  EXPECT_EQ(system.num_answers(), answers.load());
  system.WithLocked([&](DocsSystem& inner) {
    std::set<std::pair<size_t, size_t>> seen;
    for (const auto& answer : inner.inference().answers()) {
      EXPECT_TRUE(seen.insert({answer.worker, answer.task}).second);
    }
    return 0;
  });

  // The checkpoint taken under fire is loadable and self-consistent.
  DocsSystem restored(&kb_->knowledge_base, options);
  ASSERT_TRUE(restored.LoadCheckpoint(path).ok());
  EXPECT_EQ(restored.tasks().size(), dataset.tasks.size());
}

TEST_F(ConcurrencyTest, CheckpointUnderLoadIsConsistent) {
  auto dataset = datasets::MakeItemDataset(*kb_);
  DocsSystemOptions options;
  options.golden_count = 4;
  ConcurrentDocsSystem system(&kb_->knowledge_base, options);
  std::vector<TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }
  auto truths = dataset.Truths();
  ASSERT_TRUE(system.AddTasks(inputs, &truths).ok());

  const std::string path = ::testing::TempDir() + "/concurrent_ckpt.log";
  std::remove(path.c_str());

  std::thread writer([&] {
    Rng rng(94);
    for (int i = 0; i < 120; ++i) {
      const std::string worker = "w" + std::to_string(i % 6);
      auto hit = system.RequestTasks(worker, 2);
      for (size_t task : hit) {
        const Status submitted = system.SubmitAnswer(worker, task, 0);
        EXPECT_TRUE(submitted.ok()) << submitted.ToString();
      }
    }
  });
  // Checkpoints taken mid-stream must each be loadable and self-consistent.
  for (int snap = 0; snap < 5; ++snap) {
    Status status = system.SaveCheckpoint(path);
    ASSERT_TRUE(status.ok()) << status.ToString();
    DocsSystem restored(&kb_->knowledge_base, options);
    ASSERT_TRUE(restored.LoadCheckpoint(path).ok());
    EXPECT_EQ(restored.tasks().size(), dataset.tasks.size());
  }
  writer.join();
}

}  // namespace
}  // namespace docs::core
