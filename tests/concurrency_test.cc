#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "core/concurrent_docs_system.h"
#include "crowd/worker_pool.h"
#include "datasets/dataset.h"
#include "kb/synthetic_kb.h"

namespace docs::core {
namespace {

class ConcurrencyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new kb::SyntheticKb(kb::BuildSyntheticKb());
  }
  static void TearDownTestSuite() {
    delete kb_;
    kb_ = nullptr;
  }
  static kb::SyntheticKb* kb_;
};

kb::SyntheticKb* ConcurrencyTest::kb_ = nullptr;

TEST_F(ConcurrencyTest, ParallelWorkersDriveOneSystemConsistently) {
  auto dataset = datasets::MakeItemDataset(*kb_);
  DocsSystemOptions options;
  options.golden_count = 8;
  options.reinfer_every = 50;
  ConcurrentDocsSystem system(&kb_->knowledge_base, options);
  std::vector<TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }
  auto truths = dataset.Truths();
  ASSERT_TRUE(system.AddTasks(inputs, &truths).ok());

  crowd::WorkerPoolOptions pool_options;
  pool_options.num_workers = 8;
  auto workers = crowd::MakeWorkerPool(26, dataset.label_to_domain,
                                       pool_options, 91);

  // Each thread plays one simulated worker: request a HIT, answer it,
  // repeat. Threads interleave arbitrarily; the facade must keep every
  // invariant (no duplicate (worker, task) answers, consistent counters).
  std::atomic<size_t> total_answers{0};
  auto play_worker = [&](size_t w) {
    Rng rng(1000 + w);
    for (int round = 0; round < 10; ++round) {
      auto hit = system.RequestTasks(workers[w].id, 4);
      if (hit.empty()) break;
      for (size_t task : hit) {
        const auto& spec = dataset.tasks[task];
        const Status submitted = system.SubmitAnswer(
            workers[w].id, task,
            crowd::GenerateAnswer(workers[w], spec.true_domain, spec.truth,
                                  spec.num_choices(), rng));
        // Each thread owns one worker and only answers its own grants, so
        // every submission must be accepted.
        EXPECT_TRUE(submitted.ok()) << submitted.ToString();
        if (submitted.ok()) total_answers.fetch_add(1);
      }
    }
  };
  std::vector<std::thread> threads;
  for (size_t w = 0; w < workers.size(); ++w) {
    threads.emplace_back(play_worker, w);
  }
  for (auto& thread : threads) thread.join();

  // Every submitted answer was accepted exactly once (no duplicates were
  // possible because each thread owns one worker, and the facade never lost
  // an update).
  EXPECT_EQ(system.num_answers(), total_answers.load());
  EXPECT_EQ(system.InferredChoices().size(), dataset.tasks.size());

  // The per-(worker, task) uniqueness invariant survived the interleaving.
  system.WithLocked([&](DocsSystem& inner) {
    std::set<std::pair<size_t, size_t>> seen;
    for (const auto& answer : inner.inference().answers()) {
      EXPECT_TRUE(seen.insert({answer.worker, answer.task}).second);
    }
    return 0;
  });
}

TEST_F(ConcurrencyTest, ConcurrentReadersDuringWrites) {
  auto dataset = datasets::MakeQaDataset(*kb_, 60, 92);
  DocsSystemOptions options;
  options.golden_count = 0;
  ConcurrentDocsSystem system(&kb_->knowledge_base, options);
  std::vector<TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }
  ASSERT_TRUE(system.AddTasks(inputs).ok());

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      auto choices = system.InferredChoices();
      ASSERT_EQ(choices.size(), dataset.tasks.size());
    }
  });
  Rng rng(93);
  for (int i = 0; i < 200; ++i) {
    const std::string worker = "w" + std::to_string(i % 5);
    auto hit = system.RequestTasks(worker, 2);
    for (size_t task : hit) {
      const Status submitted = system.SubmitAnswer(
          worker, task, rng.UniformInt(dataset.tasks[task].num_choices()));
      EXPECT_TRUE(submitted.ok()) << submitted.ToString();
    }
  }
  stop.store(true);
  reader.join();
  EXPECT_GT(system.num_answers(), 0u);
}

TEST_F(ConcurrencyTest, CheckpointUnderLoadIsConsistent) {
  auto dataset = datasets::MakeItemDataset(*kb_);
  DocsSystemOptions options;
  options.golden_count = 4;
  ConcurrentDocsSystem system(&kb_->knowledge_base, options);
  std::vector<TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }
  auto truths = dataset.Truths();
  ASSERT_TRUE(system.AddTasks(inputs, &truths).ok());

  const std::string path = ::testing::TempDir() + "/concurrent_ckpt.log";
  std::remove(path.c_str());

  std::thread writer([&] {
    Rng rng(94);
    for (int i = 0; i < 120; ++i) {
      const std::string worker = "w" + std::to_string(i % 6);
      auto hit = system.RequestTasks(worker, 2);
      for (size_t task : hit) {
        const Status submitted = system.SubmitAnswer(worker, task, 0);
        EXPECT_TRUE(submitted.ok()) << submitted.ToString();
      }
    }
  });
  // Checkpoints taken mid-stream must each be loadable and self-consistent.
  for (int snap = 0; snap < 5; ++snap) {
    Status status = system.SaveCheckpoint(path);
    ASSERT_TRUE(status.ok()) << status.ToString();
    DocsSystem restored(&kb_->knowledge_base, options);
    ASSERT_TRUE(restored.LoadCheckpoint(path).ok());
    EXPECT_EQ(restored.tasks().size(), dataset.tasks.size());
  }
  writer.join();
}

}  // namespace
}  // namespace docs::core
