#include <gtest/gtest.h>

#include <cmath>

#include "common/math_utils.h"
#include "common/rng.h"
#include "topicmodel/corpus.h"
#include "topicmodel/lda.h"
#include "topicmodel/twitter_lda.h"

namespace docs::topic {
namespace {

// Builds a corpus with two cleanly separated vocabularies: documents 0..n/2
// use "sports" words, the rest "food" words.
Corpus TwoTopicCorpus(size_t docs_per_topic, size_t words_per_doc,
                      uint64_t seed) {
  const std::vector<std::string> sports = {"dunk",  "court", "coach",
                                           "score", "team",  "league"};
  const std::vector<std::string> food = {"sugar", "flavor", "baked",
                                         "spicy", "sauce",  "recipe"};
  Rng rng(seed);
  Corpus corpus;
  for (size_t topic = 0; topic < 2; ++topic) {
    const auto& vocab = topic == 0 ? sports : food;
    for (size_t d = 0; d < docs_per_topic; ++d) {
      std::vector<std::string> tokens;
      for (size_t w = 0; w < words_per_doc; ++w) {
        tokens.push_back(vocab[rng.UniformInt(vocab.size())]);
      }
      corpus.AddDocumentTokens(tokens);
    }
  }
  return corpus;
}

// Fraction of document pairs from the same group whose argmax topics agree,
// minus cross-group agreement (1.0 = perfect separation).
double SeparationScore(const std::vector<std::vector<double>>& doc_topic,
                       size_t docs_per_topic) {
  auto topic_of = [&](size_t d) { return ArgMax(doc_topic[d]); };
  size_t same_agree = 0, same_total = 0, cross_agree = 0, cross_total = 0;
  const size_t n = doc_topic.size();
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      const bool same_group = (a < docs_per_topic) == (b < docs_per_topic);
      const bool agree = topic_of(a) == topic_of(b);
      if (same_group) {
        ++same_total;
        same_agree += agree;
      } else {
        ++cross_total;
        cross_agree += agree;
      }
    }
  }
  return static_cast<double>(same_agree) / same_total -
         static_cast<double>(cross_agree) / cross_total;
}

TEST(CorpusTest, InternsWords) {
  Corpus corpus;
  int a = corpus.AddWord("x");
  int b = corpus.AddWord("y");
  int a2 = corpus.AddWord("x");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(corpus.vocabulary_size(), 2u);
  EXPECT_EQ(corpus.word(a), "x");
  EXPECT_EQ(corpus.WordId("y"), b);
  EXPECT_EQ(corpus.WordId("zzz"), -1);
}

TEST(CorpusTest, AddDocumentText) {
  Corpus corpus;
  corpus.AddDocumentText("Hello, World! hello");
  ASSERT_EQ(corpus.num_documents(), 1u);
  EXPECT_EQ(corpus.document(0).size(), 3u);
  EXPECT_EQ(corpus.document(0)[0], corpus.document(0)[2]);  // "hello" twice
}

TEST(LdaTest, DocTopicDistributionsAreValid) {
  Corpus corpus = TwoTopicCorpus(20, 12, 5);
  LdaOptions options;
  options.num_topics = 2;
  options.iterations = 100;
  LdaModel model(options);
  model.Fit(corpus);
  ASSERT_EQ(model.doc_topic().size(), corpus.num_documents());
  for (const auto& theta : model.doc_topic()) {
    EXPECT_TRUE(IsDistribution(theta, 1e-6));
  }
  for (const auto& phi : model.topic_word()) {
    EXPECT_TRUE(IsDistribution(phi, 1e-6));
  }
}

TEST(LdaTest, SeparatesDisjointVocabularies) {
  Corpus corpus = TwoTopicCorpus(25, 15, 6);
  LdaOptions options;
  options.num_topics = 2;
  options.iterations = 150;
  LdaModel model(options);
  model.Fit(corpus);
  EXPECT_GT(SeparationScore(model.doc_topic(), 25), 0.8);
}

TEST(LdaTest, DeterministicForSameSeed) {
  Corpus corpus = TwoTopicCorpus(10, 8, 7);
  LdaOptions options;
  options.num_topics = 2;
  options.iterations = 30;
  LdaModel a(options), b(options);
  a.Fit(corpus);
  b.Fit(corpus);
  for (size_t d = 0; d < corpus.num_documents(); ++d) {
    for (size_t k = 0; k < 2; ++k) {
      EXPECT_DOUBLE_EQ(a.doc_topic()[d][k], b.doc_topic()[d][k]);
    }
  }
}

TEST(TwitterLdaTest, PosteriorsAreValidDistributions) {
  Corpus corpus = TwoTopicCorpus(20, 10, 8);
  TwitterLdaOptions options;
  options.num_topics = 2;
  options.iterations = 100;
  TwitterLdaModel model(options);
  model.Fit(corpus);
  ASSERT_EQ(model.doc_topic().size(), corpus.num_documents());
  for (const auto& theta : model.doc_topic()) {
    EXPECT_TRUE(IsDistribution(theta, 1e-6));
  }
  ASSERT_EQ(model.doc_assignment().size(), corpus.num_documents());
}

TEST(TwitterLdaTest, SeparatesDisjointVocabularies) {
  Corpus corpus = TwoTopicCorpus(25, 12, 9);
  TwitterLdaOptions options;
  options.num_topics = 2;
  options.iterations = 150;
  TwitterLdaModel model(options);
  model.Fit(corpus);
  EXPECT_GT(SeparationScore(model.doc_topic(), 25), 0.8);
}

TEST(TwitterLdaTest, AssignmentMatchesArgmaxPosterior) {
  Corpus corpus = TwoTopicCorpus(10, 8, 10);
  TwitterLdaOptions options;
  options.num_topics = 2;
  options.iterations = 50;
  TwitterLdaModel model(options);
  model.Fit(corpus);
  for (size_t d = 0; d < corpus.num_documents(); ++d) {
    EXPECT_EQ(static_cast<size_t>(model.doc_assignment()[d]),
              ArgMax(model.doc_topic()[d]));
  }
}

TEST(CosineSimilarityTest, Basics) {
  EXPECT_NEAR(CosineSimilarity({1.0, 0.0}, {1.0, 0.0}), 1.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity({1.0, 0.0}, {0.0, 1.0}), 0.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity({0.0, 0.0}, {1.0, 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity({1.0, 1.0}, {2.0, 2.0}), 1.0, 1e-12);
}

}  // namespace
}  // namespace docs::topic
