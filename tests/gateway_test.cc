// Loopback integration tests for the networked serving path: a CrowdGateway
// and its clients in one process, exercising the full campaign round trip
// (register, request, submit, lease expiry, stats), torn frames, pipelining,
// overload shedding, injected I/O faults, and graceful shutdown.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/crowd_client.h"
#include "common/fault_injection.h"
#include "common/rng.h"
#include "common/string_utils.h"
#include "core/concurrent_docs_system.h"
#include "crowd/worker_pool.h"
#include "datasets/dataset.h"
#include "kb/synthetic_kb.h"
#include "net/wire.h"
#include "server/crowd_gateway.h"
#include "storage/worker_store.h"

namespace docs::server {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

client::CrowdClientOptions TestClientOptions() {
  client::CrowdClientOptions options;
  options.recv_timeout_ms = 5000;  // a hung gateway fails the test, not CI
  return options;
}

class GatewayTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new kb::SyntheticKb(kb::BuildSyntheticKb());
  }
  static void TearDownTestSuite() {
    delete kb_;
    kb_ = nullptr;
  }
  void TearDown() override { FaultInjector::Global().DisarmAll(); }

  /// A campaign-loaded system behind a freshly started gateway.
  struct Serving {
    datasets::Dataset dataset;
    std::unique_ptr<core::ConcurrentDocsSystem> system;
    std::unique_ptr<CrowdGateway> gateway;
  };

  Serving StartServing(core::DocsSystemOptions options,
                       CrowdGatewayOptions gateway_options = {}) {
    Serving serving;
    serving.dataset = datasets::MakeItemDataset(*kb_);
    serving.system = std::make_unique<core::ConcurrentDocsSystem>(
        &kb_->knowledge_base, options);
    std::vector<core::TaskInput> inputs;
    for (const auto& task : serving.dataset.tasks) {
      inputs.push_back({task.text, task.num_choices()});
    }
    auto truths = serving.dataset.Truths();
    EXPECT_TRUE(serving.system->AddTasks(inputs, &truths).ok());
    serving.gateway = std::make_unique<CrowdGateway>(serving.system.get(),
                                                     gateway_options);
    const Status started = serving.gateway->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    return serving;
  }

  /// Raw blocking loopback socket for byte-level protocol tests.
  static int RawConnect(uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    timeval tv{};
    tv.tv_sec = 5;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0)
        << ErrnoString(errno);
    return fd;
  }

  /// Reads whole frames off a raw socket until `count` arrived or 5s passed.
  static std::vector<net::Frame> ReadFrames(int fd, size_t count) {
    std::vector<net::Frame> frames;
    net::FrameDecoder decoder;
    char buf[4096];
    while (frames.size() < count) {
      net::Frame frame;
      const auto result = decoder.Next(&frame);
      if (result == net::FrameDecoder::Result::kFrame) {
        frames.push_back(frame);
        continue;
      }
      if (result == net::FrameDecoder::Result::kError) break;
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      decoder.Append(buf, static_cast<size_t>(n));
    }
    return frames;
  }

  static kb::SyntheticKb* kb_;
};

kb::SyntheticKb* GatewayTest::kb_ = nullptr;

TEST_F(GatewayTest, FullCampaignRoundTripOverLoopback) {
  core::DocsSystemOptions options;
  options.golden_count = 8;
  options.lease_duration = 4;
  options.reinfer_every = 40;
  Serving serving = StartServing(options);

  // Register a returning worker server-side from the persistent store: she
  // skips the golden probe exactly as with the in-process facade.
  auto store = storage::WorkerStore::InMemory(kb_->knowledge_base.num_domains());
  storage::WorkerQualityRecord record;
  record.quality.assign(kb_->knowledge_base.num_domains(), 0.8);
  record.weight.assign(kb_->knowledge_base.num_domains(), 20.0);
  ASSERT_TRUE(store.Put("returning", record).ok());
  ASSERT_TRUE(serving.system->LoadWorker("returning", store).ok());

  crowd::WorkerPoolOptions pool_options;
  pool_options.num_workers = 4;
  auto workers = crowd::MakeWorkerPool(kb_->knowledge_base.num_domains(),
                                       serving.dataset.label_to_domain,
                                       pool_options, 7);

  size_t submitted = 0;
  Rng rng(11);
  for (size_t w = 0; w < workers.size(); ++w) {
    client::CrowdClient conn(TestClientOptions());
    ASSERT_TRUE(conn.Connect("127.0.0.1", serving.gateway->port()).ok());
    const std::string& id = (w == 0) ? "returning" : workers[w].id;
    for (int round = 0; round < 6; ++round) {
      std::vector<uint64_t> hit;
      ASSERT_TRUE(conn.RequestTasks(id, 3, &hit).ok());
      if (hit.empty()) break;
      for (uint64_t task : hit) {
        const auto& spec = serving.dataset.tasks[task];
        const Status answer = conn.SubmitAnswer(
            id, task,
            static_cast<uint32_t>(crowd::GenerateAnswer(
                workers[w], spec.true_domain, spec.truth, spec.num_choices(),
                rng)));
        ASSERT_TRUE(answer.ok()) << answer.ToString();
        ++submitted;
      }
    }
  }
  ASSERT_GT(submitted, 0u);

  // One more worker accepts a HIT and vanishes; a wire-driven expiry sweep
  // reclaims the abandoned grants.
  client::CrowdClient abandoner(TestClientOptions());
  ASSERT_TRUE(abandoner.Connect("127.0.0.1", serving.gateway->port()).ok());
  std::vector<uint64_t> abandoned;
  ASSERT_TRUE(abandoner.RequestTasks("no-show", 3, &abandoned).ok());
  ASSERT_FALSE(abandoned.empty());

  net::StatsResp stats;
  ASSERT_TRUE(abandoner.Stats(&stats).ok());
  EXPECT_EQ(stats.num_tasks, serving.dataset.tasks.size());
  EXPECT_EQ(stats.num_answers, submitted);
  EXPECT_GE(stats.outstanding_leases, abandoned.size());
  EXPECT_GT(stats.requests_served, 0u);

  std::vector<net::WireExpiredLease> expired;
  ASSERT_TRUE(
      abandoner
          .ExpireLeases(stats.lease_clock + options.lease_duration, &expired)
          .ok());
  EXPECT_GE(expired.size(), abandoned.size());
  ASSERT_TRUE(abandoner.Stats(&stats).ok());
  EXPECT_EQ(stats.outstanding_leases, 0u);

  // The engine behind the gateway saw a real campaign.
  EXPECT_EQ(serving.system->InferredChoices().size(),
            serving.dataset.tasks.size());
  EXPECT_EQ(serving.system->num_answers(), submitted);
  serving.gateway->Stop();
  EXPECT_FALSE(serving.gateway->running());
}

TEST_F(GatewayTest, ServerStatusCodesTravelTheWire) {
  core::DocsSystemOptions options;
  options.golden_count = 0;
  Serving serving = StartServing(options);
  client::CrowdClient conn(TestClientOptions());
  ASSERT_TRUE(conn.Connect("127.0.0.1", serving.gateway->port()).ok());

  // Never-seen worker: rejected instead of silently registered (the
  // facade-level regression is in concurrency_test; this is the wire view).
  Status status = conn.SubmitAnswer("ghost", 0, 0);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("never seen"), std::string::npos);

  std::vector<uint64_t> hit;
  ASSERT_TRUE(conn.RequestTasks("real", 2, &hit).ok());
  ASSERT_FALSE(hit.empty());
  ASSERT_TRUE(conn.SubmitAnswer("real", hit[0], 0).ok());
  // Duplicate answer and out-of-range choice keep their codes end-to-end.
  EXPECT_EQ(conn.SubmitAnswer("real", hit[0], 0).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(conn.SubmitAnswer("real", hit[1], 99).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(conn.SubmitAnswer("real", 1u << 30, 0).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(GatewayTest, TornFramesAndPipelinedRequests) {
  core::DocsSystemOptions options;
  options.golden_count = 0;
  Serving serving = StartServing(options);
  const int fd = RawConnect(serving.gateway->port());

  // One frame delivered in three separated slices: the gateway must buffer
  // the partial reads and answer once the frame completes.
  const std::string request = net::EncodeFrame(net::EncodeStatsReq());
  const size_t cuts[] = {5, 11, request.size()};  // mid-header, mid-length
  size_t start = 0;
  for (size_t cut : cuts) {
    ASSERT_GT(::send(fd, request.data() + start, cut - start, MSG_NOSIGNAL),
              0);
    start = cut;
    std::this_thread::sleep_for(milliseconds(20));
  }
  auto frames = ReadFrames(fd, 1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, net::MessageType::kStatsResp);
  EXPECT_EQ(frames[0].status, StatusCode::kOk);

  // Three pipelined requests in a single send: three responses, in order.
  std::string burst;
  net::RequestTasksReq tasks_req;
  tasks_req.worker_id = "pipelined";
  tasks_req.k = 2;
  burst += net::EncodeFrame(net::EncodeStatsReq());
  burst += net::EncodeFrame(net::EncodeRequestTasksReq(tasks_req));
  burst += net::EncodeFrame(net::EncodeStatsReq());
  ASSERT_EQ(::send(fd, burst.data(), burst.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(burst.size()));
  frames = ReadFrames(fd, 3);
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].type, net::MessageType::kStatsResp);
  EXPECT_EQ(frames[1].type, net::MessageType::kRequestTasksResp);
  EXPECT_EQ(frames[2].type, net::MessageType::kStatsResp);
  ::close(fd);
}

// A v1 peer must be able to decode what comes back, not just be decoded:
// its strict decoder rejects any frame stamped with a newer version, so the
// gateway mirrors the requester's version onto responses and re-shapes
// versioned bodies (StatsResp) to the v1 layout.
TEST_F(GatewayTest, V1PeerGetsV1ResponsesItCanDecode) {
  core::DocsSystemOptions options;
  options.golden_count = 0;
  Serving serving = StartServing(options);
  const int fd = RawConnect(serving.gateway->port());

  net::RequestTasksReq tasks_req;
  tasks_req.worker_id = "legacy";
  tasks_req.k = 2;
  net::Frame tasks_frame = net::EncodeRequestTasksReq(tasks_req);
  tasks_frame.version = 1;
  net::Frame stats_frame = net::EncodeStatsReq();
  stats_frame.version = 1;
  const std::string burst =
      net::EncodeFrame(tasks_frame) + net::EncodeFrame(stats_frame);
  ASSERT_EQ(::send(fd, burst.data(), burst.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(burst.size()));

  auto frames = ReadFrames(fd, 2);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, net::MessageType::kRequestTasksResp);
  EXPECT_EQ(frames[0].version, 1);
  ASSERT_EQ(frames[1].type, net::MessageType::kStatsResp);
  EXPECT_EQ(frames[1].version, 1);
  // v1 layout: six u64 counters, no v2 durability trailer (which a v1
  // decoder would reject as trailing garbage).
  EXPECT_EQ(frames[1].payload.size(), 48u);
  net::StatsResp stats;
  ASSERT_TRUE(net::DecodeStatsResp(frames[1], &stats).ok());
  EXPECT_GT(stats.num_tasks, 0u);
  ::close(fd);
}

TEST_F(GatewayTest, GarbageBytesCloseTheConnection) {
  core::DocsSystemOptions options;
  options.golden_count = 0;
  Serving serving = StartServing(options);
  const int fd = RawConnect(serving.gateway->port());
  const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_GT(::send(fd, garbage, sizeof(garbage) - 1, MSG_NOSIGNAL), 0);
  char buf[64];
  EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0);  // orderly close, no reply
  ::close(fd);
  EXPECT_GE(serving.gateway->stats().protocol_errors, 1u);
}

TEST_F(GatewayTest, OverloadShedsWithUnavailableInsteadOfQueueing) {
  core::DocsSystemOptions options;
  options.golden_count = 0;
  CrowdGatewayOptions gateway_options;
  gateway_options.max_inflight = 2;
  Serving serving = StartServing(options, gateway_options);
  const int fd = RawConnect(serving.gateway->port());

  constexpr size_t kBurst = 10;
  std::string burst;
  for (size_t i = 0; i < kBurst; ++i) {
    burst += net::EncodeFrame(net::EncodeStatsReq());
  }
  // One send, no reads in between: the whole burst lands in one batch, so
  // everything past max_inflight must be shed with kUnavailable.
  ASSERT_EQ(::send(fd, burst.data(), burst.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(burst.size()));
  const auto frames = ReadFrames(fd, kBurst);
  ASSERT_EQ(frames.size(), kBurst);
  size_t ok = 0;
  size_t unavailable = 0;
  for (const auto& frame : frames) {
    EXPECT_EQ(frame.type, net::MessageType::kStatsResp);
    if (frame.status == StatusCode::kOk) ++ok;
    if (frame.status == StatusCode::kUnavailable) ++unavailable;
  }
  EXPECT_EQ(ok + unavailable, kBurst);
  EXPECT_GE(unavailable, 1u);
  const GatewayStats stats = serving.gateway->stats();
  EXPECT_EQ(stats.requests_served + stats.requests_shed, kBurst);
  EXPECT_EQ(stats.requests_shed, unavailable);
  // max_inflight is a per-reactor bound; with one reactor the per-reactor
  // contract is exactly the historical global one.
  const auto per_reactor = serving.gateway->reactor_stats();
  ASSERT_EQ(per_reactor.size(), 1u);
  EXPECT_EQ(per_reactor[0].requests_served, stats.requests_served);
  EXPECT_EQ(per_reactor[0].requests_shed, stats.requests_shed);
  ::close(fd);
}

TEST_F(GatewayTest, OverloadSheddingIsEvaluatedPerReactor) {
  core::DocsSystemOptions options;
  options.golden_count = 0;
  CrowdGatewayOptions gateway_options;
  gateway_options.num_reactors = 2;
  gateway_options.max_inflight = 2;
  Serving serving = StartServing(options, gateway_options);

  // Sequential connects land round-robin: one connection per reactor.
  const int fd0 = RawConnect(serving.gateway->port());
  const int fd1 = RawConnect(serving.gateway->port());

  constexpr size_t kBurst = 10;
  std::string burst;
  for (size_t i = 0; i < kBurst; ++i) {
    burst += net::EncodeFrame(net::EncodeStatsReq());
  }
  for (int fd : {fd0, fd1}) {
    ASSERT_EQ(::send(fd, burst.data(), burst.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(burst.size()));
  }
  for (int fd : {fd0, fd1}) {
    const auto frames = ReadFrames(fd, kBurst);
    ASSERT_EQ(frames.size(), kBurst);
    size_t ok = 0;
    size_t unavailable = 0;
    for (const auto& frame : frames) {
      EXPECT_EQ(frame.type, net::MessageType::kStatsResp);
      if (frame.status == StatusCode::kOk) ++ok;
      if (frame.status == StatusCode::kUnavailable) ++unavailable;
    }
    EXPECT_EQ(ok + unavailable, kBurst);
    EXPECT_GE(unavailable, 1u);
  }
  // Each reactor evaluated the in-flight bound against only the burst it
  // owns: its shedding never depends on what the other reactor is serving.
  const auto per_reactor = serving.gateway->reactor_stats();
  ASSERT_EQ(per_reactor.size(), 2u);
  for (const auto& reactor : per_reactor) {
    EXPECT_EQ(reactor.connections_accepted, 1u);
    EXPECT_EQ(reactor.requests_served + reactor.requests_shed, kBurst);
    EXPECT_GE(reactor.requests_shed, 1u);
  }
  const GatewayStats total = serving.gateway->stats();
  EXPECT_EQ(total.requests_served + total.requests_shed, 2 * kBurst);
  ::close(fd0);
  ::close(fd1);
}

TEST_F(GatewayTest, MultiReactorCampaignSpreadsConnectionsAndServesAll) {
  core::DocsSystemOptions options;
  options.golden_count = 0;
  options.reinfer_every = 25;
  CrowdGatewayOptions gateway_options;
  gateway_options.num_reactors = 4;
  Serving serving = StartServing(options, gateway_options);

  constexpr size_t kClients = 8;
  std::atomic<size_t> submitted{0};
  std::atomic<size_t> failures{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      client::CrowdClient conn(TestClientOptions());
      if (!conn.Connect("127.0.0.1", serving.gateway->port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      const std::string id = "rr-worker-" + std::to_string(c);
      for (int round = 0; round < 4; ++round) {
        std::vector<uint64_t> hit;
        if (!conn.RequestTasks(id, 3, &hit).ok()) {
          failures.fetch_add(1);
          return;
        }
        if (hit.empty()) break;  // pool drained
        for (uint64_t task : hit) {
          if (conn.SubmitAnswer(id, task, 0).ok()) submitted.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : clients) thread.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(submitted.load(), 0u);
  EXPECT_EQ(serving.system->num_answers(), submitted.load());

  // Round-robin admission spread the 8 connections over all 4 reactors
  // exactly evenly, and every reactor really served traffic.
  const auto per_reactor = serving.gateway->reactor_stats();
  ASSERT_EQ(per_reactor.size(), 4u);
  uint64_t accepted = 0;
  uint64_t served = 0;
  for (const auto& reactor : per_reactor) {
    EXPECT_EQ(reactor.connections_accepted, kClients / 4);
    EXPECT_GT(reactor.requests_served, 0u);
    accepted += reactor.connections_accepted;
    served += reactor.requests_served;
  }
  GatewayStats total = serving.gateway->stats();
  EXPECT_EQ(total.connections_accepted, accepted);
  EXPECT_EQ(total.requests_served, served);

  // Counters survive shutdown: Stop() folds the per-reactor blocks into the
  // cumulative aggregate even though the reactors themselves are gone.
  serving.gateway->Stop();
  EXPECT_EQ(serving.gateway->stats().requests_served, served);
  EXPECT_TRUE(serving.gateway->reactor_stats().empty());
}

TEST_F(GatewayTest, KillingOneReactorsConnectionLeavesOthersServing) {
  core::DocsSystemOptions options;
  options.golden_count = 0;
  options.lease_duration = 8;
  CrowdGatewayOptions gateway_options;
  gateway_options.num_reactors = 2;
  Serving serving = StartServing(options, gateway_options);

  // Sequential connects land round-robin: doomed on reactor 0, survivor on
  // reactor 1.
  client::CrowdClient doomed(TestClientOptions());
  ASSERT_TRUE(doomed.Connect("127.0.0.1", serving.gateway->port()).ok());
  client::CrowdClient survivor(TestClientOptions());
  ASSERT_TRUE(survivor.Connect("127.0.0.1", serving.gateway->port()).ok());

  // Both are mid-campaign with leases outstanding when one dies.
  std::vector<uint64_t> doomed_hit;
  ASSERT_TRUE(doomed.RequestTasks("doomed", 2, &doomed_hit).ok());
  ASSERT_FALSE(doomed_hit.empty());
  std::vector<uint64_t> survivor_hit;
  ASSERT_TRUE(survivor.RequestTasks("survivor", 2, &survivor_hit).ok());
  ASSERT_FALSE(survivor_hit.empty());
  doomed.Close();

  // The other reactor keeps serving uninterrupted.
  for (uint64_t task : survivor_hit) {
    const Status answered = survivor.SubmitAnswer("survivor", task, 0);
    ASSERT_TRUE(answered.ok()) << answered.ToString();
  }
  net::StatsResp stats;
  ASSERT_TRUE(survivor.Stats(&stats).ok());
  EXPECT_EQ(stats.num_answers, survivor_hit.size());

  // The dead connection's slot frees up and fresh clients are admitted.
  client::CrowdClient replacement(TestClientOptions());
  ASSERT_TRUE(replacement.Connect("127.0.0.1", serving.gateway->port()).ok());
  EXPECT_TRUE(replacement.Stats(&stats).ok());
}

TEST_F(GatewayTest, InjectedAcceptFaultDropsOneConnectionNotTheServer) {
  core::DocsSystemOptions options;
  options.golden_count = 0;
  Serving serving = StartServing(options);
  FaultInjector::Global().ArmOneShot(kFaultGatewayAccept);

  client::CrowdClient first(TestClientOptions());
  ASSERT_TRUE(first.Connect("127.0.0.1", serving.gateway->port()).ok());
  net::StatsResp stats;
  EXPECT_EQ(first.Stats(&stats).code(), StatusCode::kIoError);

  client::CrowdClient second(TestClientOptions());
  ASSERT_TRUE(second.Connect("127.0.0.1", serving.gateway->port()).ok());
  EXPECT_TRUE(second.Stats(&stats).ok());
  EXPECT_GE(serving.gateway->stats().faults_injected, 1u);
}

TEST_F(GatewayTest, InjectedReadFaultDropsOneConnectionNotTheServer) {
  core::DocsSystemOptions options;
  options.golden_count = 0;
  Serving serving = StartServing(options);

  client::CrowdClient victim(TestClientOptions());
  ASSERT_TRUE(victim.Connect("127.0.0.1", serving.gateway->port()).ok());
  FaultInjector::Global().ArmOneShot(kFaultGatewayRead);
  net::StatsResp stats;
  EXPECT_EQ(victim.Stats(&stats).code(), StatusCode::kIoError);
  FaultInjector::Global().DisarmAll();

  client::CrowdClient survivor(TestClientOptions());
  ASSERT_TRUE(survivor.Connect("127.0.0.1", serving.gateway->port()).ok());
  EXPECT_TRUE(survivor.Stats(&stats).ok());
  EXPECT_GE(serving.gateway->stats().faults_injected, 1u);
}

TEST_F(GatewayTest, PeriodicLeaseSweepReclaimsAbandonedGrants) {
  core::DocsSystemOptions options;
  options.golden_count = 0;
  options.lease_duration = 1;
  CrowdGatewayOptions gateway_options;
  gateway_options.lease_expiry_interval_ms = 10;
  Serving serving = StartServing(options, gateway_options);

  client::CrowdClient conn(TestClientOptions());
  ASSERT_TRUE(conn.Connect("127.0.0.1", serving.gateway->port()).ok());
  // The no-show accepts a HIT and vanishes (logical deadline = clock + 1).
  std::vector<uint64_t> hit;
  ASSERT_TRUE(conn.RequestTasks("no-show", 2, &hit).ok());
  ASSERT_FALSE(hit.empty());
  // A diligent worker keeps the logical clock moving past that deadline;
  // only the gateway's periodic sweep may reclaim — no explicit expiry call.
  for (int round = 0; round < 3; ++round) {
    std::vector<uint64_t> work;
    ASSERT_TRUE(conn.RequestTasks("diligent", 1, &work).ok());
    for (uint64_t task : work) {
      const Status answered = conn.SubmitAnswer("diligent", task, 0);
      ASSERT_TRUE(answered.ok()) << answered.ToString();
    }
  }
  const auto deadline = steady_clock::now() + milliseconds(5000);
  net::StatsResp stats;
  do {
    std::this_thread::sleep_for(milliseconds(20));
    ASSERT_TRUE(conn.Stats(&stats).ok());
  } while (stats.outstanding_leases > 0 && steady_clock::now() < deadline);
  EXPECT_EQ(stats.outstanding_leases, 0u);
  EXPECT_GE(serving.gateway->stats().leases_expired, hit.size());
}

/// Regression for the async sweep-vs-publish race (DESIGN.md §15): the
/// reactor's periodic lease sweep runs at its tightest cadence while every
/// submission triggers a full EM pass on the inference thread, so sweeps
/// continuously overlap snapshot publication and the state-exclusive apply
/// window. The sweep must neither block behind the EM (it reads the clock
/// and books under the assign lock only) nor observe half-applied
/// retro-updates (it never touches inference state; it just records the
/// snapshot epoch it ran against). scripts/ci.sh runs this under TSan,
/// which is the half of the assertion a green run cannot show.
TEST_F(GatewayTest, AsyncLeaseSweepRacesPublishesCleanly) {
  core::DocsSystemOptions options;
  options.golden_count = 0;
  options.lease_duration = 1;
  options.reinfer_every = 1;  // every answer republishes through a full EM
  options.async_inference = true;
  CrowdGatewayOptions gateway_options;
  gateway_options.lease_expiry_interval_ms = 1;
  Serving serving = StartServing(options, gateway_options);

  client::CrowdClient conn(TestClientOptions());
  ASSERT_TRUE(conn.Connect("127.0.0.1", serving.gateway->port()).ok());
  // The no-show's grant must be reclaimed by the periodic sweep alone,
  // while publishes churn underneath it.
  std::vector<uint64_t> hit;
  ASSERT_TRUE(conn.RequestTasks("no-show", 2, &hit).ok());
  ASSERT_FALSE(hit.empty());
  size_t submitted = 0;
  for (int round = 0; round < 8; ++round) {
    std::vector<uint64_t> work;
    ASSERT_TRUE(conn.RequestTasks("diligent", 1, &work).ok());
    for (uint64_t task : work) {
      const Status answered = conn.SubmitAnswer("diligent", task, 0);
      ASSERT_TRUE(answered.ok()) << answered.ToString();
      ++submitted;
    }
  }
  const auto deadline = steady_clock::now() + milliseconds(5000);
  net::StatsResp stats;
  do {
    std::this_thread::sleep_for(milliseconds(20));
    ASSERT_TRUE(conn.Stats(&stats).ok());
  } while (stats.outstanding_leases > 0 && steady_clock::now() < deadline);
  EXPECT_EQ(stats.outstanding_leases, 0u);
  EXPECT_GE(serving.gateway->stats().leases_expired, hit.size());

  // Every acked answer is applied once quiesced, and the staleness fields
  // surfaced through GatewayStats show real publish + sweep progress.
  serving.system->Drain();
  EXPECT_EQ(serving.system->num_answers(), submitted);
  const GatewayStats gateway_stats = serving.gateway->stats();
  // Publishes batch (one epoch can absorb several queued answers), so the
  // bound is progress past the ingest-time snapshot, not one-per-answer.
  EXPECT_GT(gateway_stats.async_snapshot_epoch, 1u);
  EXPECT_GE(gateway_stats.async_publishes, 1u);
  EXPECT_EQ(gateway_stats.async_answers_pending, 0u);
  EXPECT_GE(gateway_stats.async_last_sweep_epoch, 1u);
}

TEST_F(GatewayTest, GracefulShutdownClosesClientsCleanly) {
  core::DocsSystemOptions options;
  options.golden_count = 0;
  Serving serving = StartServing(options);
  client::CrowdClient conn(TestClientOptions());
  ASSERT_TRUE(conn.Connect("127.0.0.1", serving.gateway->port()).ok());
  net::StatsResp stats;
  ASSERT_TRUE(conn.Stats(&stats).ok());

  serving.gateway->Stop();
  EXPECT_FALSE(serving.gateway->running());
  // The drained connection reports an orderly close, not a wedged stream.
  EXPECT_EQ(conn.Stats(&stats).code(), StatusCode::kIoError);
  // Stop is idempotent and a stopped gateway can be restarted.
  serving.gateway->Stop();
  ASSERT_TRUE(serving.gateway->Start().ok());
  client::CrowdClient again(TestClientOptions());
  ASSERT_TRUE(again.Connect("127.0.0.1", serving.gateway->port()).ok());
  EXPECT_TRUE(again.Stats(&stats).ok());
  serving.gateway->Stop();
}

TEST_F(GatewayTest, ConnectionCapRejectsTheOverflowConnection) {
  core::DocsSystemOptions options;
  options.golden_count = 0;
  CrowdGatewayOptions gateway_options;
  gateway_options.max_connections = 1;
  Serving serving = StartServing(options, gateway_options);

  client::CrowdClient first(TestClientOptions());
  ASSERT_TRUE(first.Connect("127.0.0.1", serving.gateway->port()).ok());
  net::StatsResp stats;
  ASSERT_TRUE(first.Stats(&stats).ok());

  // The overflow connection completes its TCP handshake (the kernel backlog
  // holds it) but the gateway does not serve it while at the cap.
  client::CrowdClientOptions impatient;
  impatient.recv_timeout_ms = 200;
  client::CrowdClient second(impatient);
  ASSERT_TRUE(second.Connect("127.0.0.1", serving.gateway->port()).ok());
  EXPECT_EQ(second.Stats(&stats).code(), StatusCode::kIoError);
  second.Close();

  // Once the first connection departs, capacity frees up.
  first.Close();
  const auto deadline = steady_clock::now() + milliseconds(5000);
  Status admitted = IoError("never tried");
  while (steady_clock::now() < deadline) {
    client::CrowdClient retry(TestClientOptions());
    ASSERT_TRUE(retry.Connect("127.0.0.1", serving.gateway->port()).ok());
    admitted = retry.Stats(&stats);
    if (admitted.ok()) break;
    std::this_thread::sleep_for(milliseconds(20));
  }
  EXPECT_TRUE(admitted.ok()) << admitted.ToString();
}

TEST_F(GatewayTest, StatsStaysCallableConcurrentlyWithStop) {
  // stats() and reactor_stats() hold only lifecycle_mutex_, and Stop()
  // deliberately joins the drain through a reactor snapshot *without* that
  // lock (see CrowdGateway::Stop) — so a monitoring thread polling stats
  // during shutdown must neither deadlock nor block for the drain timeout.
  // The DOCS_EXCLUDES(lifecycle_mutex_) contract on stats() is the static
  // half of this guarantee; this test pins the dynamic half.
  core::DocsSystemOptions options;
  options.golden_count = 0;
  CrowdGatewayOptions gateway_options;
  gateway_options.num_reactors = 2;
  gateway_options.drain_timeout_ms = 500;
  Serving serving = StartServing(options, gateway_options);

  client::CrowdClient conn(TestClientOptions());
  ASSERT_TRUE(conn.Connect("127.0.0.1", serving.gateway->port()).ok());
  net::StatsResp wire_stats;
  ASSERT_TRUE(conn.Stats(&wire_stats).ok());
  const uint64_t served_before = serving.gateway->stats().requests_served;
  ASSERT_GE(served_before, 1u);

  // Poll stats from a second thread for the whole Stop() window, with the
  // connection above still open so the reactors actually walk the drain
  // path. A lost wakeup or a stats-vs-drain lock coupling turns into a test
  // timeout here (gateway_test runs under TSan in CI as well).
  std::atomic<bool> monitoring{true};
  std::atomic<uint64_t> polls{0};
  std::thread monitor([&] {
    while (monitoring.load(std::memory_order_acquire)) {
      const GatewayStats snapshot = serving.gateway->stats();
      EXPECT_GE(snapshot.requests_served, served_before);
      (void)serving.gateway->reactor_stats();
      polls.fetch_add(1);
    }
  });
  // Give the monitor a head start so Stop() is guaranteed to overlap it.
  while (polls.load() == 0) std::this_thread::sleep_for(milliseconds(1));
  serving.gateway->Stop();
  monitoring.store(false, std::memory_order_release);
  monitor.join();
  EXPECT_GE(polls.load(), 1u);

  // The Stop() fold into retired_ keeps the totals cumulative: nothing
  // served before shutdown may vanish from a post-shutdown snapshot.
  EXPECT_GE(serving.gateway->stats().requests_served, served_before);
  EXPECT_TRUE(serving.gateway->reactor_stats().empty());
}

}  // namespace
}  // namespace docs::server
