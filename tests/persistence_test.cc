#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/docs_system.h"
#include "crowd/worker_pool.h"
#include "datasets/dataset.h"
#include "kb/kb_io.h"
#include "kb/synthetic_kb.h"
#include "storage/log_store.h"
#include "storage/state_checkpoint.h"

namespace docs {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

// --- LogStore -----------------------------------------------------------------

TEST(LogStoreTest, AppendAndReplay) {
  const std::string path = TempPath("log_basic.log");
  std::remove(path.c_str());
  {
    auto log = storage::LogStore::Open(path, nullptr);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->Append("alpha 1").ok());
    ASSERT_TRUE(log->Append("beta 2").ok());
    ASSERT_TRUE(log->Flush().ok());
    EXPECT_EQ(log->record_count(), 2u);
  }
  std::vector<std::string> replayed;
  auto log = storage::LogStore::Open(
      path, [&](const std::string& payload) { replayed.push_back(payload); });
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(replayed, (std::vector<std::string>{"alpha 1", "beta 2"}));
}

TEST(LogStoreTest, RejectsNewlinePayload) {
  const std::string path = TempPath("log_newline.log");
  std::remove(path.c_str());
  auto log = storage::LogStore::Open(path, nullptr);
  ASSERT_TRUE(log.ok());
  EXPECT_FALSE(log->Append("two\nlines").ok());
}

TEST(LogStoreTest, TornTailDropped) {
  const std::string path = TempPath("log_torn.log");
  std::remove(path.c_str());
  {
    auto log = storage::LogStore::Open(path, nullptr);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->Append("good record").ok());
    ASSERT_TRUE(log->Flush().ok());
  }
  {
    std::ofstream out(path, std::ios::app);
    out << "PUT torn rec";  // no checksum, no newline
  }
  std::vector<std::string> replayed;
  auto log = storage::LogStore::Open(
      path, [&](const std::string& payload) { replayed.push_back(payload); });
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(replayed, (std::vector<std::string>{"good record"}));
}

TEST(LogStoreTest, CompactRewritesAtomically) {
  const std::string path = TempPath("log_compact.log");
  std::remove(path.c_str());
  auto log = storage::LogStore::Open(path, nullptr);
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(log->Append("r" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(log->Compact({"only survivor"}).ok());
  EXPECT_EQ(log->record_count(), 1u);
  ASSERT_TRUE(log->Append("post-compact").ok());
  ASSERT_TRUE(log->Flush().ok());
  std::vector<std::string> replayed;
  auto reopened = storage::LogStore::Open(
      path, [&](const std::string& payload) { replayed.push_back(payload); });
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(replayed,
            (std::vector<std::string>{"only survivor", "post-compact"}));
}

TEST(LogStoreTest, TruncationAtEveryByteRecoversIntactPrefix) {
  const std::string path = TempPath("log_truncate_sweep.log");
  std::remove(path.c_str());
  {
    auto log = storage::LogStore::Open(path, nullptr);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->Append("alpha 1").ok());
    ASSERT_TRUE(log->Append("beta 2").ok());
    ASSERT_TRUE(log->Append("gamma 3").ok());
    ASSERT_TRUE(log->Flush().ok());
  }
  const std::string full = ReadFile(path);
  ASSERT_FALSE(full.empty());
  // Start of the third (final) record: just past the second newline.
  size_t last_start = full.find('\n');
  ASSERT_NE(last_start, std::string::npos);
  last_start = full.find('\n', last_start + 1);
  ASSERT_NE(last_start, std::string::npos);
  ++last_start;
  ASSERT_LT(last_start, full.size());

  // Simulate a crash at every byte offset inside the final record: replay
  // must recover exactly the intact prefix — the torn tail is dropped, never
  // misparsed. (Cutting only the trailing newline leaves the record whole.)
  const std::string truncated_path = TempPath("log_truncate_sweep_cut.log");
  for (size_t cut = last_start; cut < full.size(); ++cut) {
    WriteFile(truncated_path, full.substr(0, cut));
    std::vector<std::string> replayed;
    auto log = storage::LogStore::Open(
        truncated_path,
        [&](const std::string& payload) { replayed.push_back(payload); });
    ASSERT_TRUE(log.ok()) << "cut=" << cut;
    const std::vector<std::string> with_tail = {"alpha 1", "beta 2", "gamma 3"};
    const std::vector<std::string> without_tail = {"alpha 1", "beta 2"};
    EXPECT_EQ(replayed, cut == full.size() - 1 ? with_tail : without_tail)
        << "cut=" << cut;
  }
}

// --- StateCheckpoint ------------------------------------------------------------

storage::StateCheckpoint MakeCheckpoint() {
  storage::StateCheckpoint checkpoint;
  storage::StateCheckpoint::TaskState t0;
  t0.domain_vector = {0.25, 0.75};
  t0.num_choices = 3;
  t0.known_truth = 1;
  storage::StateCheckpoint::TaskState t1;
  t1.domain_vector = {1.0, 0.0};
  t1.num_choices = 2;
  t1.known_truth = -1;
  checkpoint.tasks = {t0, t1};
  checkpoint.golden_tasks = {0};
  storage::StateCheckpoint::WorkerState w0;
  w0.external_id = "alice";
  w0.seed_quality = {0.9, 0.6};
  w0.seed_weight = {3.0, 1.0};
  w0.golden_done = true;
  checkpoint.workers = {w0};
  checkpoint.answers = {{0, 0, 2}, {1, 0, 1}};
  return checkpoint;
}

TEST(StateCheckpointTest, RoundTrip) {
  const std::string path = TempPath("checkpoint_roundtrip.log");
  std::remove(path.c_str());
  auto original = MakeCheckpoint();
  ASSERT_TRUE(storage::SaveStateCheckpoint(original, path).ok());
  auto loaded = storage::LoadStateCheckpoint(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->tasks.size(), 2u);
  EXPECT_EQ(loaded->tasks[0].domain_vector, original.tasks[0].domain_vector);
  EXPECT_EQ(loaded->tasks[0].known_truth, 1);
  EXPECT_EQ(loaded->tasks[1].known_truth, -1);
  EXPECT_EQ(loaded->golden_tasks, original.golden_tasks);
  ASSERT_EQ(loaded->workers.size(), 1u);
  EXPECT_EQ(loaded->workers[0].external_id, "alice");
  EXPECT_TRUE(loaded->workers[0].golden_done);
  EXPECT_EQ(loaded->workers[0].seed_quality, original.workers[0].seed_quality);
  ASSERT_EQ(loaded->answers.size(), 2u);
  EXPECT_EQ(loaded->answers[1].choice, 1u);
}

TEST(StateCheckpointTest, RejectsDanglingAnswer) {
  const std::string path = TempPath("checkpoint_dangling.log");
  std::remove(path.c_str());
  auto checkpoint = MakeCheckpoint();
  checkpoint.answers.push_back({9, 0, 0});  // unknown task
  ASSERT_TRUE(storage::SaveStateCheckpoint(checkpoint, path).ok());
  EXPECT_EQ(storage::LoadStateCheckpoint(path).status().code(),
            StatusCode::kDataLoss);
}

TEST(StateCheckpointTest, RejectsSpaceInWorkerId) {
  auto checkpoint = MakeCheckpoint();
  checkpoint.workers[0].external_id = "has space";
  EXPECT_FALSE(storage::SaveStateCheckpoint(
                   checkpoint, TempPath("checkpoint_space.log"))
                   .ok());
}

TEST(StateCheckpointTest, SaveIsAtomicOverwrite) {
  const std::string path = TempPath("checkpoint_overwrite.log");
  std::remove(path.c_str());
  auto checkpoint = MakeCheckpoint();
  ASSERT_TRUE(storage::SaveStateCheckpoint(checkpoint, path).ok());
  checkpoint.answers.clear();
  ASSERT_TRUE(storage::SaveStateCheckpoint(checkpoint, path).ok());
  auto loaded = storage::LoadStateCheckpoint(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->answers.empty());
}

TEST(StateCheckpointTest, TruncationAtEveryByteKeepsIntactAnswerPrefix) {
  const std::string path = TempPath("checkpoint_truncate_sweep.log");
  std::remove(path.c_str());
  // MakeCheckpoint serializes its two answer records last, so the final
  // line on disk is the second answer.
  ASSERT_TRUE(storage::SaveStateCheckpoint(MakeCheckpoint(), path).ok());
  const std::string full = ReadFile(path);
  const size_t last_start = full.rfind("PUT answer");
  ASSERT_NE(last_start, std::string::npos);

  // A crash at any byte of the final answer record tears only that record:
  // the load still succeeds with every task/worker/golden record and the
  // intact answer prefix. (Cutting only the trailing newline leaves the
  // record whole.)
  const std::string truncated_path = TempPath("checkpoint_truncate_cut.log");
  for (size_t cut = last_start; cut < full.size(); ++cut) {
    WriteFile(truncated_path, full.substr(0, cut));
    auto loaded = storage::LoadStateCheckpoint(truncated_path);
    ASSERT_TRUE(loaded.ok()) << "cut=" << cut << ": "
                             << loaded.status().ToString();
    EXPECT_EQ(loaded->answers.size(), cut == full.size() - 1 ? 2u : 1u)
        << "cut=" << cut;
    EXPECT_EQ(loaded->tasks.size(), 2u);
    EXPECT_EQ(loaded->workers.size(), 1u);
    EXPECT_EQ(loaded->golden_tasks.size(), 1u);
    EXPECT_EQ(loaded->answers[0].choice, 2u);
  }
}

// --- KB dump ---------------------------------------------------------------------

TEST(KbIoTest, RoundTripSmallKb) {
  kb::DomainTaxonomy taxonomy = kb::DomainTaxonomy::FromNames({"A", "B"});
  ASSERT_TRUE(taxonomy.AddCategory("/x/a", 0).ok());
  kb::KnowledgeBase original(std::move(taxonomy));
  kb::Concept c;
  c.title = "Michael Jordan";
  c.domain_indicator = {1, 0};
  c.popularity = 0.75;
  c.context_keywords = {"basketball", "nba"};
  auto id = original.AddConcept(c);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(original.AddAlias("Michael Jordan", id.value(), 1.0).ok());
  ASSERT_TRUE(original.AddAlias("MJ", id.value(), 0.4).ok());

  const std::string path = TempPath("kb_roundtrip.txt");
  ASSERT_TRUE(kb::SaveKnowledgeBase(original, path).ok());
  auto loaded = kb::LoadKnowledgeBase(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_domains(), 2u);
  EXPECT_EQ(loaded->num_concepts(), 1u);
  EXPECT_EQ(loaded->num_aliases(), 2u);
  const auto& concept_data = loaded->GetConcept(0);
  EXPECT_EQ(concept_data.title, "Michael Jordan");
  EXPECT_DOUBLE_EQ(concept_data.popularity, 0.75);
  EXPECT_EQ(concept_data.domain_indicator, (std::vector<uint8_t>{1, 0}));
  EXPECT_EQ(concept_data.context_keywords,
            (std::vector<std::string>{"basketball", "nba"}));
  ASSERT_TRUE(loaded->HasAlias("mj"));
  EXPECT_DOUBLE_EQ(loaded->LookupAlias("mj")[0].prior, 0.4);
  EXPECT_EQ(loaded->taxonomy().DomainOfCategory("/x/a").value(), 0u);
}

TEST(KbIoTest, RoundTripSyntheticKbPreservesStructure) {
  kb::SyntheticKbOptions options;
  options.filler_concepts_per_domain = 3;
  options.minor_persons_per_sphere = 5;
  auto synthetic = kb::BuildSyntheticKb(options);
  const std::string path = TempPath("kb_synthetic.txt");
  ASSERT_TRUE(kb::SaveKnowledgeBase(synthetic.knowledge_base, path).ok());
  auto loaded = kb::LoadKnowledgeBase(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_concepts(), synthetic.knowledge_base.num_concepts());
  EXPECT_EQ(loaded->num_aliases(), synthetic.knowledge_base.num_aliases());
  EXPECT_EQ(loaded->num_domains(), 26u);
  // Ambiguity survives the round trip.
  EXPECT_EQ(loaded->LookupAlias("michael jordan").size(),
            synthetic.knowledge_base.LookupAlias("michael jordan").size());
}

TEST(KbIoTest, RejectsBadHeader) {
  const std::string path = TempPath("kb_badheader.txt");
  {
    std::ofstream out(path, std::ios::trunc);
    out << "not a kb dump\n";
  }
  EXPECT_EQ(kb::LoadKnowledgeBase(path).status().code(),
            StatusCode::kDataLoss);
}

TEST(KbIoTest, RejectsMalformedConceptLine) {
  const std::string path = TempPath("kb_badconcept.txt");
  {
    std::ofstream out(path, std::ios::trunc);
    out << "docskb 1\ndomain A\nconcept oops\n";
  }
  EXPECT_EQ(kb::LoadKnowledgeBase(path).status().code(),
            StatusCode::kDataLoss);
}

TEST(KbIoTest, RejectsArityMismatch) {
  const std::string path = TempPath("kb_badarity.txt");
  {
    std::ofstream out(path, std::ios::trunc);
    out << "docskb 1\ndomain A\nconcept 0.5 11 - Two Bits\n";
  }
  EXPECT_EQ(kb::LoadKnowledgeBase(path).status().code(),
            StatusCode::kDataLoss);
}

// --- DocsSystem checkpointing --------------------------------------------------

class SystemCheckpointTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new kb::SyntheticKb(kb::BuildSyntheticKb());
  }
  static void TearDownTestSuite() {
    delete kb_;
    kb_ = nullptr;
  }
  static kb::SyntheticKb* kb_;
};

kb::SyntheticKb* SystemCheckpointTest::kb_ = nullptr;

TEST_F(SystemCheckpointTest, ResumesMidCampaignExactly) {
  auto dataset = datasets::MakeItemDataset(*kb_);
  core::DocsSystemOptions options;
  options.golden_count = 6;
  options.reinfer_every = 40;

  core::DocsSystem original(&kb_->knowledge_base, options);
  std::vector<core::TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }
  auto truths = dataset.Truths();
  ASSERT_TRUE(original.AddTasks(inputs, &truths).ok());

  crowd::WorkerPoolOptions pool_options;
  pool_options.num_workers = 12;
  auto workers = crowd::MakeWorkerPool(26, dataset.label_to_domain,
                                       pool_options, 51);
  Rng rng(52);
  // Run a partial campaign: a few HITs per worker.
  for (int round = 0; round < 4; ++round) {
    for (size_t w = 0; w < workers.size(); ++w) {
      const size_t worker = original.WorkerIndex(workers[w].id);
      for (size_t task : original.SelectTasks(worker, 3)) {
        const auto& spec = dataset.tasks[task];
        original.OnAnswer(worker, task,
                          crowd::GenerateAnswer(workers[w], spec.true_domain,
                                                spec.truth,
                                                spec.num_choices(), rng));
      }
    }
  }

  const std::string path = TempPath("system_checkpoint.log");
  std::remove(path.c_str());
  ASSERT_TRUE(original.SaveCheckpoint(path).ok());

  core::DocsSystem resumed(&kb_->knowledge_base, options);
  ASSERT_TRUE(resumed.LoadCheckpoint(path).ok());

  // The restored session reproduces the original's inferred truths and
  // worker qualities (up to the converged re-run both sides perform).
  original.OnAnswer(0, 0, 0);  // no-op guard: avoid accidental divergence
  core::DocsSystem reference(&kb_->knowledge_base, options);
  ASSERT_TRUE(reference.LoadCheckpoint(path).ok());

  EXPECT_EQ(resumed.tasks().size(), dataset.tasks.size());
  EXPECT_EQ(resumed.golden_tasks().size(), 6u);
  EXPECT_EQ(resumed.inference().num_answers(),
            reference.inference().num_answers());
  EXPECT_EQ(resumed.InferredChoices(), reference.InferredChoices());

  // Restored workers keep their ids and can continue answering.
  const size_t worker = resumed.WorkerIndex(workers[0].id);
  auto next = resumed.SelectTasks(worker, 3);
  for (size_t task : next) {
    EXPECT_FALSE(resumed.inference().HasAnswered(worker, task));
  }
}

TEST_F(SystemCheckpointTest, CheckpointBeforeAddTasksFails) {
  core::DocsSystem system(&kb_->knowledge_base);
  EXPECT_FALSE(system.SaveCheckpoint(TempPath("nope.log")).ok());
}

TEST_F(SystemCheckpointTest, LoadIntoPopulatedSystemFails) {
  auto dataset = datasets::MakeItemDataset(*kb_);
  core::DocsSystem system(&kb_->knowledge_base);
  std::vector<core::TaskInput> inputs = {{"Is K2 tall?", 2}};
  ASSERT_TRUE(system.AddTasks(inputs).ok());
  const std::string path = TempPath("system_checkpoint2.log");
  ASSERT_TRUE(system.SaveCheckpoint(path).ok());
  EXPECT_FALSE(system.LoadCheckpoint(path).ok());
}

TEST_F(SystemCheckpointTest, GoldenPhaseSurvivesRestore) {
  auto dataset = datasets::MakeItemDataset(*kb_);
  core::DocsSystemOptions options;
  options.golden_count = 4;
  core::DocsSystem original(&kb_->knowledge_base, options);
  std::vector<core::TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }
  auto truths = dataset.Truths();
  ASSERT_TRUE(original.AddTasks(inputs, &truths).ok());

  // Worker answers 2 of 4 golden tasks, then the system restarts.
  const size_t worker = original.WorkerIndex("w");
  auto first = original.SelectTasks(worker, 2);
  ASSERT_EQ(first.size(), 2u);
  for (size_t task : first) {
    original.OnAnswer(worker, task, dataset.tasks[task].truth);
  }
  const std::string path = TempPath("system_checkpoint3.log");
  std::remove(path.c_str());
  ASSERT_TRUE(original.SaveCheckpoint(path).ok());

  core::DocsSystem resumed(&kb_->knowledge_base, options);
  ASSERT_TRUE(resumed.LoadCheckpoint(path).ok());
  const size_t restored = resumed.WorkerIndex("w");
  // The remaining golden tasks come first after the restart.
  auto next = resumed.SelectTasks(restored, 4);
  std::set<size_t> golden(resumed.golden_tasks().begin(),
                          resumed.golden_tasks().end());
  ASSERT_EQ(next.size(), 2u);
  for (size_t task : next) {
    EXPECT_TRUE(golden.count(task));
    EXPECT_FALSE(resumed.inference().HasAnswered(restored, task));
  }
}

// --- Corrupt-checkpoint validation (DataLoss, never an abort) ----------------

TEST_F(SystemCheckpointTest, LoadRejectsCheckpointWithTooFewChoices) {
  storage::StateCheckpoint corrupt;
  storage::StateCheckpoint::TaskState task;
  task.domain_vector = {1.0};
  task.num_choices = 1;  // below the 2-choice floor AddTasks enforces
  corrupt.tasks.push_back(task);
  const std::string path = TempPath("corrupt_choices.log");
  ASSERT_TRUE(storage::SaveStateCheckpoint(corrupt, path).ok());

  core::DocsSystem system(&kb_->knowledge_base);
  EXPECT_EQ(system.LoadCheckpoint(path).code(), StatusCode::kDataLoss);
}

TEST_F(SystemCheckpointTest, LoadRejectsCorruptDomainVectorEntry) {
  // File data flows into the CHECK-guarded incremental-TI constructor; a
  // corrupt domain vector must surface as DataLoss before it gets there.
  storage::StateCheckpoint corrupt;
  storage::StateCheckpoint::TaskState task;
  task.domain_vector = {2.0};  // probabilities live in [0, 1]
  task.num_choices = 2;
  corrupt.tasks.push_back(task);
  const std::string path = TempPath("corrupt_domain.log");
  ASSERT_TRUE(storage::SaveStateCheckpoint(corrupt, path).ok());

  core::DocsSystem system(&kb_->knowledge_base);
  EXPECT_EQ(system.LoadCheckpoint(path).code(), StatusCode::kDataLoss);
}

TEST_F(SystemCheckpointTest, LoadRejectsGoldenIndexOutOfRange) {
  // Regression: a golden index past the task list used to index is_golden_
  // out of bounds on restore.
  storage::StateCheckpoint corrupt;
  storage::StateCheckpoint::TaskState task;
  task.domain_vector = {1.0};
  task.num_choices = 2;
  corrupt.tasks.push_back(task);
  corrupt.golden_tasks = {5};  // only one task exists
  const std::string path = TempPath("corrupt_golden.log");
  ASSERT_TRUE(storage::SaveStateCheckpoint(corrupt, path).ok());

  core::DocsSystem system(&kb_->knowledge_base);
  EXPECT_EQ(system.LoadCheckpoint(path).code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace docs
