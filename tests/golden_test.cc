#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "core/golden_selection.h"

namespace docs::core {
namespace {

std::vector<Task> TasksFromDomains(const std::vector<size_t>& domains,
                                   size_t m) {
  std::vector<Task> tasks;
  for (size_t d : domains) {
    Task task;
    task.domain_vector.assign(m, 0.0);
    task.domain_vector[d] = 1.0;
    task.num_choices = 2;
    tasks.push_back(std::move(task));
  }
  return tasks;
}

TEST(AggregateDistributionTest, AveragesDomainVectors) {
  auto tasks = TasksFromDomains({0, 0, 1, 1, 1, 2}, 3);
  auto tau = AggregateDomainDistribution(tasks);
  EXPECT_NEAR(tau[0], 2.0 / 6.0, 1e-12);
  EXPECT_NEAR(tau[1], 3.0 / 6.0, 1e-12);
  EXPECT_NEAR(tau[2], 1.0 / 6.0, 1e-12);
}

TEST(GoldenObjectiveTest, PerfectMatchIsZero) {
  std::vector<double> tau = {0.5, 0.25, 0.25};
  EXPECT_NEAR(GoldenObjective({2, 1, 1}, tau), 0.0, 1e-12);
}

TEST(GoldenObjectiveTest, ZeroCountsContributeNothing) {
  std::vector<double> tau = {0.5, 0.5};
  const double d = GoldenObjective({4, 0}, tau);
  EXPECT_NEAR(d, std::log(2.0), 1e-12);  // sigma = [1,0]; 1*ln(1/0.5)
}

TEST(GoldenObjectiveTest, PositiveCountOnZeroTauIsInfinite) {
  std::vector<double> tau = {1.0, 0.0};
  EXPECT_TRUE(std::isinf(GoldenObjective({1, 1}, tau)));
}

TEST(ApproximateCountsTest, SumsToNPrime) {
  Rng rng(55);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t m = 2 + rng.UniformInt(9);
    const size_t n_prime = 1 + rng.UniformInt(30);
    auto tau = rng.Dirichlet(m, 1.0);
    auto counts = ApproximateGoldenCounts(tau, n_prime);
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), size_t{0}),
              n_prime);
  }
}

TEST(ApproximateCountsTest, ProportionalForExactDivisors) {
  std::vector<double> tau = {0.5, 0.3, 0.2};
  auto counts = ApproximateGoldenCounts(tau, 10);
  EXPECT_EQ(counts, (std::vector<size_t>{5, 3, 2}));
}

TEST(ApproximateCountsTest, AvoidsZeroTauDomains) {
  std::vector<double> tau = {0.7, 0.3, 0.0};
  auto counts = ApproximateGoldenCounts(tau, 7);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), size_t{0}), 7u);
}

TEST(EnumerationTest, FindsExactOptimumOnTinyCase) {
  std::vector<double> tau = {0.6, 0.4};
  auto best = OptimalGoldenCountsByEnumeration(tau, 5);
  // sigma = [3/5, 2/5] matches tau exactly -> D = 0.
  EXPECT_EQ(best, (std::vector<size_t>{3, 2}));
  EXPECT_NEAR(GoldenObjective(best, tau), 0.0, 1e-12);
}

// Fig. 7(a): the approximation is within a tiny gap of the enumerated
// optimum (the paper reports an average ratio gamma under 0.1%).
class ApproximationQualityTest : public ::testing::TestWithParam<int> {};

TEST_P(ApproximationQualityTest, NearOptimal) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 2953 + 17);
  const size_t m = 2 + rng.UniformInt(5);       // up to 6 domains
  const size_t n_prime = 4 + rng.UniformInt(9); // up to 12 golden tasks
  auto tau = rng.Dirichlet(m, 2.0);
  auto approx = ApproximateGoldenCounts(tau, n_prime);
  auto optimal = OptimalGoldenCountsByEnumeration(tau, n_prime);
  const double d_approx = GoldenObjective(approx, tau);
  const double d_optimal = GoldenObjective(optimal, tau);
  EXPECT_GE(d_approx, d_optimal - 1e-12);
  EXPECT_LE(d_approx - d_optimal, 0.02);  // absolute nats gap
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, ApproximationQualityTest,
                         ::testing::Range(0, 30));

TEST(SelectGoldenTasksTest, PicksMostRepresentativeTasksPerDomain) {
  // 12 tasks, skewed 6/3/3 across three domains.
  auto tasks = TasksFromDomains({0, 0, 0, 0, 0, 0, 1, 1, 1, 2, 2, 2}, 3);
  auto result = SelectGoldenTasks(tasks, 4);
  EXPECT_EQ(result.tasks.size(), 4u);
  EXPECT_EQ(std::accumulate(result.counts.begin(), result.counts.end(),
                            size_t{0}),
            4u);
  // Guideline 2: counts approximate tau = [0.5, 0.25, 0.25].
  EXPECT_EQ(result.counts[0], 2u);
  EXPECT_EQ(result.counts[1], 1u);
  EXPECT_EQ(result.counts[2], 1u);
  // Guideline 1: the selected tasks are maximally related to their domain.
  for (size_t idx : result.tasks) {
    double mx = 0.0;
    for (double v : tasks[idx].domain_vector) mx = std::max(mx, v);
    EXPECT_NEAR(mx, 1.0, 1e-12);
  }
}

TEST(SelectGoldenTasksTest, TasksAreDistinct) {
  Rng rng(59);
  std::vector<Task> tasks(50);
  for (auto& task : tasks) {
    task.domain_vector = rng.Dirichlet(4, 0.7);
    task.num_choices = 2;
  }
  auto result = SelectGoldenTasks(tasks, 20);
  EXPECT_EQ(result.tasks.size(), 20u);
  std::vector<uint8_t> seen(50, 0);
  for (size_t idx : result.tasks) {
    EXPECT_FALSE(seen[idx]);
    seen[idx] = 1;
  }
}

TEST(SelectGoldenTasksTest, EdgeCases) {
  EXPECT_TRUE(SelectGoldenTasks({}, 5).tasks.empty());
  auto tasks = TasksFromDomains({0, 1}, 2);
  EXPECT_TRUE(SelectGoldenTasks(tasks, 0).tasks.empty());
  // n' > n clamps to n.
  EXPECT_EQ(SelectGoldenTasks(tasks, 10).tasks.size(), 2u);
}

TEST(GoldenContractDeathTest, AggregateRejectsMismatchedDomainVectors) {
  // Regression: a task whose domain vector is shorter than the first task's
  // used to be read out of bounds inside the averaging loop.
  auto tasks = TasksFromDomains({0, 1}, 3);
  tasks[1].domain_vector = {1.0};  // wrong dimensionality
  EXPECT_DEATH(AggregateDomainDistribution(tasks), "domain_vector.size");
}

TEST(GoldenContractDeathTest, ObjectiveRejectsMismatchedCounts) {
  // counts and tau are parallel per-domain arrays; a short counts vector
  // used to walk past its end.
  EXPECT_DEATH(GoldenObjective({1, 2, 3}, {0.5, 0.5}), "counts.size");
}

}  // namespace
}  // namespace docs::core
