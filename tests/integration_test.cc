#include <gtest/gtest.h>

#include <memory>

#include "baselines/assigners.h"
#include "baselines/majority_vote.h"
#include "core/docs_system.h"
#include "core/truth_inference.h"
#include "crowd/campaign.h"
#include "crowd/worker_pool.h"
#include "datasets/dataset.h"
#include "kb/synthetic_kb.h"

namespace docs {
namespace {

double Accuracy(const std::vector<size_t>& inferred,
                const std::vector<size_t>& truths) {
  size_t correct = 0;
  for (size_t i = 0; i < truths.size(); ++i) correct += inferred[i] == truths[i];
  return static_cast<double>(correct) / truths.size();
}

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new kb::SyntheticKb(kb::BuildSyntheticKb());
  }
  static void TearDownTestSuite() {
    delete kb_;
    kb_ = nullptr;
  }
  static kb::SyntheticKb* kb_;
};

kb::SyntheticKb* IntegrationTest::kb_ = nullptr;

// End-to-end TI pipeline: DVE over real task text, simulated collection,
// golden initialization, iterative inference — and it beats majority vote.
TEST_F(IntegrationTest, DveAndTiPipelineBeatsMajorityVote) {
  auto dataset = datasets::MakeItemDataset(*kb_);
  crowd::WorkerPoolOptions pool_options;
  pool_options.num_workers = 80;
  pool_options.spammer_fraction = 0.2;
  auto workers =
      crowd::MakeWorkerPool(26, dataset.label_to_domain, pool_options, 31);
  crowd::CollectionOptions collection;
  collection.answers_per_task = 6;
  auto collected = crowd::CollectAnswers(dataset, workers, collection);

  // DVE over the real text.
  core::DomainVectorEstimator estimator(&kb_->knowledge_base);
  std::vector<core::Task> tasks;
  for (const auto& spec : dataset.tasks) {
    core::Task task;
    task.domain_vector = estimator.Estimate(spec.text);
    task.num_choices = spec.num_choices();
    tasks.push_back(std::move(task));
  }

  // Golden initialization from 20 selected golden tasks.
  auto golden = core::SelectGoldenTasks(tasks, 20);
  std::vector<size_t> golden_truth;
  for (size_t idx : golden.tasks) golden_truth.push_back(dataset.tasks[idx].truth);
  auto seeds = core::InitializeQualityFromGolden(
      tasks, workers.size(), collected.answers, golden.tasks, golden_truth);

  core::TruthInference engine;
  auto result =
      engine.Run(tasks, workers.size(), collected.answers, &seeds);

  std::vector<size_t> num_choices;
  for (const auto& spec : dataset.tasks) num_choices.push_back(spec.num_choices());
  const double docs_accuracy =
      Accuracy(result.inferred_choice, dataset.Truths());
  const double mv_accuracy = Accuracy(
      baselines::MajorityVote(num_choices, collected.answers),
      dataset.Truths());
  EXPECT_GT(docs_accuracy, 0.8);
  EXPECT_GE(docs_accuracy, mv_accuracy - 0.01);
}

// End-to-end assignment campaign with DOCS vs the random Baseline: same
// budget, DOCS should not lose.
TEST_F(IntegrationTest, CampaignDocsBeatsRandomBaseline) {
  auto dataset = datasets::MakeQaDataset(*kb_, 120, 33);
  crowd::WorkerPoolOptions pool_options;
  pool_options.num_workers = 60;
  pool_options.spammer_fraction = 0.25;
  auto workers =
      crowd::MakeWorkerPool(26, dataset.label_to_domain, pool_options, 34);

  core::DocsSystemOptions options;
  options.golden_count = 8;
  options.reinfer_every = 100;
  core::DocsSystem docs_system(&kb_->knowledge_base, options);
  std::vector<core::TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }
  auto truths = dataset.Truths();
  ASSERT_TRUE(docs_system.AddTasks(inputs, &truths).ok());
  // Map simulated worker index -> DOCS worker index 1:1 up front.
  for (size_t w = 0; w < workers.size(); ++w) {
    ASSERT_EQ(docs_system.WorkerIndex(workers[w].id), w);
  }

  std::vector<size_t> num_choices;
  for (const auto& task : dataset.tasks) num_choices.push_back(task.num_choices());
  baselines::RandomAssigner baseline(num_choices, 35);

  crowd::CampaignOptions campaign;
  campaign.total_answers_per_policy = dataset.tasks.size() * 5;
  campaign.tasks_per_policy_per_hit = 3;
  auto outcomes = crowd::RunAssignmentCampaign(
      dataset, workers, {&docs_system, &baseline}, campaign);
  ASSERT_EQ(outcomes.size(), 2u);

  const double docs_accuracy =
      Accuracy(outcomes[0].inferred_choices, dataset.Truths());
  const double baseline_accuracy =
      Accuracy(outcomes[1].inferred_choices, dataset.Truths());
  EXPECT_GE(docs_accuracy, baseline_accuracy - 0.03);
  EXPECT_GT(docs_accuracy, 0.6);
  EXPECT_EQ(outcomes[0].answers_collected, campaign.total_answers_per_policy);
}

// The six-policy protocol of Section 6.1 runs end to end on a small slice.
TEST_F(IntegrationTest, SixPolicyParallelCampaignRuns) {
  auto dataset = datasets::MakeQaDataset(*kb_, 60, 36);
  crowd::WorkerPoolOptions pool_options;
  pool_options.num_workers = 40;
  auto workers =
      crowd::MakeWorkerPool(26, dataset.label_to_domain, pool_options, 37);

  std::vector<core::TaskInput> inputs;
  std::vector<size_t> num_choices;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
    num_choices.push_back(task.num_choices());
  }
  auto truths = dataset.Truths();

  core::DocsSystemOptions docs_options;
  docs_options.golden_count = 5;
  core::DocsSystem docs_system(&kb_->knowledge_base, docs_options);
  ASSERT_TRUE(docs_system.AddTasks(inputs, &truths).ok());
  for (size_t w = 0; w < workers.size(); ++w) docs_system.WorkerIndex(workers[w].id);

  core::DocsSystemOptions dmax_options;
  dmax_options.golden_count = 5;
  dmax_options.selection_rule = core::SelectionRule::kDomainMax;
  dmax_options.display_name = "D-Max";
  core::DocsSystem dmax_system(&kb_->knowledge_base, dmax_options);
  ASSERT_TRUE(dmax_system.AddTasks(inputs, &truths).ok());
  for (size_t w = 0; w < workers.size(); ++w) dmax_system.WorkerIndex(workers[w].id);

  baselines::RandomAssigner baseline(num_choices, 38);
  baselines::AskItAssigner askit(num_choices);
  std::vector<std::vector<double>> one_hot(dataset.tasks.size(),
                                           std::vector<double>(4, 0.0));
  for (size_t i = 0; i < dataset.tasks.size(); ++i) {
    one_hot[i][dataset.tasks[i].label] = 1.0;
  }
  baselines::ICrowdAssigner icrowd(num_choices, one_hot, 10);
  baselines::QascaAssigner qasca(num_choices);

  crowd::CampaignOptions campaign;
  campaign.total_answers_per_policy = dataset.tasks.size() * 4;
  auto outcomes = crowd::RunAssignmentCampaign(
      dataset, workers,
      {&baseline, &askit, &icrowd, &qasca, &dmax_system, &docs_system},
      campaign);
  ASSERT_EQ(outcomes.size(), 6u);
  for (const auto& outcome : outcomes) {
    EXPECT_EQ(outcome.inferred_choices.size(), dataset.tasks.size())
        << outcome.name;
    EXPECT_GT(Accuracy(outcome.inferred_choices, dataset.Truths()), 0.3)
        << outcome.name;
  }
}

}  // namespace
}  // namespace docs
