// Equivalence suite for the epoch-tagged benefit cache (DESIGN.md §11).
//
// The cache memoizes per-(worker, task) benefit scores keyed on the pair of
// inference epochs; the contract is that a cached serving path is BITWISE
// identical to recomputing every score from live inference state — after
// every mutation class the system supports: answer submissions (including
// the §4.2 retro-update fan-out onto co-answering workers), lease expiry,
// the periodic full re-inference, and mid-campaign WorkerStore reseeds.
// Every comparison below is exact (operator== on doubles), not a tolerance
// check. scripts/ci.sh additionally runs this binary under TSan.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "client/crowd_client.h"
#include "common/rng.h"
#include "core/concurrent_docs_system.h"
#include "core/docs_system.h"
#include "crowd/worker_pool.h"
#include "datasets/dataset.h"
#include "kb/synthetic_kb.h"
#include "server/crowd_gateway.h"
#include "storage/worker_store.h"

namespace docs::core {
namespace {

constexpr size_t kThreadSweep[] = {1, 2, 4, 8};
constexpr SelectionRule kAllRules[] = {
    SelectionRule::kBenefit, SelectionRule::kDomainMax,
    SelectionRule::kUncertainty, SelectionRule::kQualityBlind};

std::vector<std::tuple<size_t, size_t, uint64_t>> Flatten(
    const std::vector<ExpiredLease>& leases) {
  std::vector<std::tuple<size_t, size_t, uint64_t>> out;
  out.reserve(leases.size());
  for (const auto& lease : leases) {
    out.emplace_back(lease.worker, lease.task, lease.deadline);
  }
  return out;
}

class BenefitCacheTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new kb::SyntheticKb(kb::BuildSyntheticKb());
  }
  static void TearDownTestSuite() {
    delete kb_;
    kb_ = nullptr;
  }
  static kb::SyntheticKb* kb_;
};

kb::SyntheticKb* BenefitCacheTest::kb_ = nullptr;

/// Drives a cache-enabled and a cache-disabled DocsSystem through one
/// identical scripted campaign and asserts every observable is equal at
/// every step. The script deliberately hits all invalidation classes:
///  - SubmitAnswer, with several workers sharing tasks (retro fan-out);
///  - abandoned grants reclaimed by ExpireLeases (which must NOT need any
///    invalidation — benefit scores do not depend on leases);
///  - the periodic RunFullInference every reinfer_every answers;
///  - a WorkerStore reseed of an active worker plus a fresh veteran joining
///    mid-campaign (worker-epoch bumps outside the answer path).
TEST_F(BenefitCacheTest, CachedServingPathIsBitIdenticalAcrossRulesAndThreads) {
  const auto dataset = datasets::MakeItemDataset(*kb_);
  const auto truths = dataset.Truths();
  std::vector<TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }

  crowd::WorkerPoolOptions pool_options;
  pool_options.num_workers = 8;
  const auto personas = crowd::MakeWorkerPool(
      kb_->knowledge_base.num_domains(), dataset.label_to_domain, pool_options,
      77);

  const size_t m = kb_->knowledge_base.num_domains();
  auto store = storage::WorkerStore::InMemory(m);
  storage::WorkerQualityRecord record;
  record.quality.assign(m, 0.85);
  record.weight.assign(m, 3.0);
  ASSERT_TRUE(store.Put("veteran", record).ok());
  ASSERT_TRUE(store.Put("vet2", record).ok());

  for (SelectionRule rule : kAllRules) {
    for (size_t threads : kThreadSweep) {
      SCOPED_TRACE("rule " + std::to_string(static_cast<int>(rule)) + ", " +
                   std::to_string(threads) + " threads");
      DocsSystemOptions options;
      options.golden_count = 5;
      options.reinfer_every = 25;  // several full re-runs mid-campaign
      options.lease_duration = 3;
      options.selection_rule = rule;
      options.num_threads = threads;
      ASSERT_TRUE(options.benefit_cache);
      // This suite pins the SCAN path's row-level counters (a warm index
      // pass performs zero row lookups, which would break the hit pins
      // below); the index-on lockstep lives in tests/benefit_index_test.cc.
      options.benefit_index = false;
      DocsSystemOptions cold_options = options;
      cold_options.benefit_cache = false;

      auto cached = std::make_unique<DocsSystem>(&kb_->knowledge_base, options);
      auto uncached =
          std::make_unique<DocsSystem>(&kb_->knowledge_base, cold_options);
      ASSERT_TRUE(cached->AddTasks(inputs, &truths).ok());
      ASSERT_TRUE(uncached->AddTasks(inputs, &truths).ok());
      ASSERT_TRUE(cached->LoadWorker("veteran", store).ok());
      ASSERT_TRUE(uncached->LoadWorker("veteran", store).ok());

      std::vector<std::string> ids = {"w0", "w1", "w2",      "w3",
                                      "w4", "w5", "veteran"};
      Rng rng(61);  // one stream serves both systems: selections are asserted
                    // equal before any answer is generated
      for (size_t round = 0; round < 30; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        if (round == 15) {
          // Mid-campaign reseeds: an active worker's quality is replaced
          // from the store, and a new veteran joins past the golden phase.
          ASSERT_TRUE(cached->LoadWorker("veteran", store).ok());
          ASSERT_TRUE(uncached->LoadWorker("veteran", store).ok());
          ASSERT_TRUE(cached->LoadWorker("vet2", store).ok());
          ASSERT_TRUE(uncached->LoadWorker("vet2", store).ok());
          ids.push_back("vet2");
        }
        const std::string& id = ids[round % ids.size()];
        const size_t w = cached->WorkerIndex(id);
        ASSERT_EQ(uncached->WorkerIndex(id), w);

        const auto selected = cached->SelectTasks(w, 4);
        ASSERT_EQ(uncached->SelectTasks(w, 4), selected);

        if (round % 5 == 0) {
          // Full-score probe: the warm (cache-served) pass, the bypass pass
          // on the same system, and the cache-disabled system must agree on
          // every task's score bit for bit.
          const auto warm = cached->ScoreAllTasks(w, /*bypass_cache=*/false);
          EXPECT_EQ(cached->ScoreAllTasks(w, /*bypass_cache=*/true), warm);
          EXPECT_EQ(uncached->ScoreAllTasks(w, /*bypass_cache=*/false), warm);
        }

        for (size_t s = 0; s < selected.size(); ++s) {
          // Every third round the worker abandons the last granted task, so
          // ExpireLeases below has real work to reclaim.
          if (round % 3 == 2 && s + 1 == selected.size()) continue;
          const size_t task = selected[s];
          const size_t choice = crowd::GenerateAnswer(
              personas[round % personas.size()],
              dataset.tasks[task].true_domain, dataset.tasks[task].truth,
              dataset.tasks[task].num_choices(), rng);
          ASSERT_TRUE(cached->SubmitAnswer(w, task, choice).ok());
          ASSERT_TRUE(uncached->SubmitAnswer(w, task, choice).ok());
        }

        if (round == 10 || round == 20) {
          EXPECT_EQ(Flatten(cached->ExpireLeases(cached->lease_clock())),
                    Flatten(uncached->ExpireLeases(uncached->lease_clock())));
        }
      }

      EXPECT_EQ(cached->InferredChoices(), uncached->InferredChoices());
      ASSERT_EQ(cached->inference().num_workers(),
                uncached->inference().num_workers());
      for (size_t w = 0; w < cached->inference().num_workers(); ++w) {
        ASSERT_EQ(cached->inference().worker_quality(w).quality,
                  uncached->inference().worker_quality(w).quality)
            << "worker " << w;
        ASSERT_EQ(cached->inference().worker_quality(w).weight,
                  uncached->inference().worker_quality(w).weight)
            << "worker " << w;
      }

      // A quiet repeat request is served from the cache (the first call
      // refreshes every stale pair; nothing moves in between).
      const size_t probe = cached->WorkerIndex("w0");
      const auto first = cached->SelectTasks(probe, 4);
      const uint64_t hits_before = cached->benefit_cache_hits();
      EXPECT_EQ(cached->SelectTasks(probe, 4), first);
      EXPECT_GT(cached->benefit_cache_hits(), hits_before);

      // The disabled cache never counts anything.
      EXPECT_EQ(uncached->benefit_cache_hits(), 0u);
      EXPECT_EQ(uncached->benefit_cache_misses(), 0u);
    }
  }
}

TEST_F(BenefitCacheTest, InvalidationIsPreciseForUninvolvedWorkers) {
  // A submission by worker A on task t must stale exactly one entry of an
  // uninvolved worker B's row (task t's epoch moved; B's worker epoch did
  // not), so B's next pass rescores one task and serves the rest cached.
  const auto dataset = datasets::MakeQaDataset(*kb_, 60, 11);
  std::vector<TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }
  DocsSystemOptions options;
  options.golden_count = 0;  // straight to OTA scoring
  options.reinfer_every = 0;
  options.num_threads = 1;
  options.benefit_index = false;  // row-counter pins assume the scan path
  DocsSystem system(&kb_->knowledge_base, options);
  ASSERT_TRUE(system.AddTasks(inputs).ok());

  const size_t a = system.WorkerIndex("a");
  const size_t b = system.WorkerIndex("b");
  const auto granted = system.SelectTasks(a, 1);
  ASSERT_EQ(granted.size(), 1u);
  (void)system.SelectTasks(b, 4);  // warms b's entire row (60 tasks)

  const uint64_t hits_before = system.benefit_cache_hits();
  const uint64_t misses_before = system.benefit_cache_misses();
  ASSERT_TRUE(system.SubmitAnswer(a, granted[0], 0).ok());
  (void)system.SelectTasks(b, 4);
  // b never answered granted[0], so only that task's epoch bump reaches her
  // row; every other entry is still fresh.
  EXPECT_EQ(system.benefit_cache_misses() - misses_before, 1u);
  EXPECT_EQ(system.benefit_cache_hits() - hits_before, 59u);

  // a's own row is fully stale: her quality (worker epoch) moved.
  const uint64_t misses_mid = system.benefit_cache_misses();
  (void)system.SelectTasks(a, 4);
  // 59 eligible tasks (she answered one), all rescored.
  EXPECT_EQ(system.benefit_cache_misses() - misses_mid, 59u);
}

/// Regression for the counter split: the old single hit/miss pair mixed
/// per-entry lookups into one number, so "hit rate" computed from it said
/// 98% on a system where every serving pass recomputed something. Row-level
/// counters tally individual score lookups; request-level counters tally
/// whole serving passes (a pass with even one recompute is a request miss).
/// Dashboards want request_hits / (request_hits + request_misses).
TEST_F(BenefitCacheTest, RequestCountersTallyServingPassesNotRowLookups) {
  const auto dataset = datasets::MakeQaDataset(*kb_, 60, 11);
  std::vector<TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }
  DocsSystemOptions options;
  options.golden_count = 0;
  options.reinfer_every = 0;
  options.num_threads = 1;
  options.benefit_index = false;  // row-counter pins assume the scan path
  DocsSystem system(&kb_->knowledge_base, options);
  ASSERT_TRUE(system.AddTasks(inputs).ok());

  // Cold pass: every row entry recomputes — 60 row misses, ONE request miss.
  const size_t b = system.WorkerIndex("b");
  (void)system.SelectTasks(b, 4);
  EXPECT_EQ(system.benefit_cache_misses(), 60u);
  EXPECT_EQ(system.benefit_cache_request_misses(), 1u);
  EXPECT_EQ(system.benefit_cache_request_hits(), 0u);

  // Quiet repeat: fully cache-served — 60 row hits, ONE request hit.
  (void)system.SelectTasks(b, 4);
  EXPECT_EQ(system.benefit_cache_hits(), 60u);
  EXPECT_EQ(system.benefit_cache_request_hits(), 1u);
  EXPECT_EQ(system.benefit_cache_request_misses(), 1u);

  // One stale entry in an otherwise warm row: 59 row hits + 1 row miss, but
  // the pass was not fully cache-served, so it is a request MISS. This is
  // exactly the case the fused counter got wrong (59/60 row "hit rate" for
  // a pass that had to touch live inference state).
  const size_t a = system.WorkerIndex("a");
  const auto granted = system.SelectTasks(a, 1);
  ASSERT_EQ(granted.size(), 1u);
  const uint64_t request_hits_warm = system.benefit_cache_request_hits();
  const uint64_t request_misses_warm = system.benefit_cache_request_misses();
  ASSERT_TRUE(system.SubmitAnswer(a, granted[0], 0).ok());
  const uint64_t row_hits_before = system.benefit_cache_hits();
  const uint64_t row_misses_before = system.benefit_cache_misses();
  (void)system.SelectTasks(b, 4);
  EXPECT_EQ(system.benefit_cache_hits() - row_hits_before, 59u);
  EXPECT_EQ(system.benefit_cache_misses() - row_misses_before, 1u);
  EXPECT_EQ(system.benefit_cache_request_misses(), request_misses_warm + 1);
  EXPECT_EQ(system.benefit_cache_request_hits(), request_hits_warm);

  // The full-score test hook is not a serving pass: row counters move (it
  // walks every entry) but the request tally must not.
  const uint64_t request_hits_probe = system.benefit_cache_request_hits();
  const uint64_t request_misses_probe = system.benefit_cache_request_misses();
  (void)system.ScoreAllTasks(b, /*bypass_cache=*/false);
  EXPECT_EQ(system.benefit_cache_request_hits(), request_hits_probe);
  EXPECT_EQ(system.benefit_cache_request_misses(), request_misses_probe);

  // A disabled cache counts nothing at either level.
  DocsSystemOptions cold_options = options;
  cold_options.benefit_cache = false;
  DocsSystem cold(&kb_->knowledge_base, cold_options);
  ASSERT_TRUE(cold.AddTasks(inputs).ok());
  (void)cold.SelectTasks(cold.WorkerIndex("b"), 4);
  EXPECT_EQ(cold.benefit_cache_request_hits(), 0u);
  EXPECT_EQ(cold.benefit_cache_request_misses(), 0u);
}

/// The lockstep oracle over the wire, across reactor counts: a cached and
/// an uncached system behind gateways with 1, 2, and 4 reactors must all
/// produce bit-identical selections, posteriors, and worker qualities when
/// driven through the same sequential TCP campaign. The cached gateways
/// additionally surface the request-level counters through stats().
TEST_F(BenefitCacheTest, GatewayLockstepIsBitIdenticalAcrossReactorCounts) {
  const auto dataset = datasets::MakeItemDataset(*kb_);
  const auto truths = dataset.Truths();
  std::vector<TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }
  crowd::WorkerPoolOptions pool_options;
  pool_options.num_workers = 6;
  const auto personas = crowd::MakeWorkerPool(
      kb_->knowledge_base.num_domains(), dataset.label_to_domain, pool_options,
      77);

  struct Outcome {
    std::vector<std::vector<uint64_t>> selections;
    std::vector<size_t> choices;
    std::vector<std::vector<double>> qualities;
  };
  auto drive = [&](bool cache_on, size_t reactors) {
    DocsSystemOptions options;
    options.golden_count = 5;
    options.reinfer_every = 25;
    options.num_threads = 2;
    options.benefit_cache = cache_on;
    ConcurrentDocsSystem system(&kb_->knowledge_base, options);
    EXPECT_TRUE(system.AddTasks(inputs, &truths).ok());
    server::CrowdGatewayOptions gateway_options;
    gateway_options.num_reactors = reactors;
    server::CrowdGateway gateway(&system, gateway_options);
    EXPECT_TRUE(gateway.Start().ok());

    client::CrowdClientOptions client_options;
    client_options.recv_timeout_ms = 5000;
    std::vector<std::unique_ptr<client::CrowdClient>> conns;
    for (size_t w = 0; w < 6; ++w) {
      conns.push_back(std::make_unique<client::CrowdClient>(client_options));
      EXPECT_TRUE(conns[w]->Connect("127.0.0.1", gateway.port()).ok());
    }

    Outcome outcome;
    Rng rng(61);
    for (size_t round = 0; round < 18; ++round) {
      const size_t w = round % 6;
      const std::string id = "w" + std::to_string(w);
      std::vector<uint64_t> hit;
      EXPECT_TRUE(conns[w]->RequestTasks(id, 4, &hit).ok());
      outcome.selections.push_back(hit);
      for (uint64_t task : hit) {
        const size_t choice = crowd::GenerateAnswer(
            personas[w], dataset.tasks[task].true_domain,
            dataset.tasks[task].truth, dataset.tasks[task].num_choices(), rng);
        EXPECT_TRUE(
            conns[w]->SubmitAnswer(id, task, static_cast<uint32_t>(choice))
                .ok());
      }
    }
    const server::GatewayStats stats = gateway.stats();
    if (cache_on) {
      EXPECT_GT(stats.benefit_cache_request_hits +
                    stats.benefit_cache_request_misses,
                0u);
    } else {
      EXPECT_EQ(stats.benefit_cache_request_hits, 0u);
      EXPECT_EQ(stats.benefit_cache_request_misses, 0u);
      EXPECT_EQ(stats.benefit_cache_hits, 0u);
      EXPECT_EQ(stats.benefit_cache_misses, 0u);
    }
    gateway.Stop();
    outcome.choices = system.InferredChoices();
    for (size_t w = 0; w < 6; ++w) {
      outcome.qualities.push_back(system.WithLocked([&](DocsSystem& inner) {
        return inner.inference().worker_quality(w).quality;
      }));
    }
    return outcome;
  };

  const Outcome baseline = drive(/*cache_on=*/false, /*reactors=*/1);
  for (size_t reactors : {size_t{1}, size_t{2}, size_t{4}}) {
    for (bool cache_on : {false, true}) {
      if (!cache_on && reactors == 1) continue;  // the baseline itself
      SCOPED_TRACE(std::string(cache_on ? "cached" : "uncached") + ", " +
                   std::to_string(reactors) + " reactors");
      const Outcome swept = drive(cache_on, reactors);
      EXPECT_EQ(swept.selections, baseline.selections);
      EXPECT_EQ(swept.choices, baseline.choices);
      ASSERT_EQ(swept.qualities, baseline.qualities);
    }
  }
}

TEST_F(BenefitCacheTest, WarmRequestsKeepHittingUnderEveryRule) {
  // Rule-independence smoke: all four selection rules route through the
  // cache, and a quiet system serves repeats entirely from it.
  const auto dataset = datasets::MakeQaDataset(*kb_, 40, 13);
  std::vector<TaskInput> inputs;
  for (const auto& task : dataset.tasks) {
    inputs.push_back({task.text, task.num_choices()});
  }
  for (SelectionRule rule : kAllRules) {
    SCOPED_TRACE(static_cast<int>(rule));
    DocsSystemOptions options;
    options.golden_count = 0;
    options.reinfer_every = 0;
    options.num_threads = 1;
    options.selection_rule = rule;
    options.benefit_index = false;  // row-counter pins assume the scan path
    DocsSystem system(&kb_->knowledge_base, options);
    ASSERT_TRUE(system.AddTasks(inputs).ok());
    const size_t w = system.WorkerIndex("w");
    const auto first = system.SelectTasks(w, 5);
    const uint64_t misses_after_first = system.benefit_cache_misses();
    for (int repeat = 0; repeat < 3; ++repeat) {
      EXPECT_EQ(system.SelectTasks(w, 5), first);
    }
    EXPECT_EQ(system.benefit_cache_misses(), misses_after_first);
    EXPECT_EQ(system.benefit_cache_hits(), 3u * 40u);
  }
}

}  // namespace
}  // namespace docs::core
