#include <gtest/gtest.h>

#include <cmath>

#include "baselines/assigners.h"
#include "baselines/dawid_skene.h"
#include "baselines/faitcrowd.h"
#include "baselines/icrowd.h"
#include "baselines/majority_vote.h"
#include "baselines/zencrowd.h"
#include "common/rng.h"
#include "crowd/worker_pool.h"

namespace docs::baselines {
namespace {

using core::Answer;

// Simulated 2-domain setup shared by the EM baselines.
struct Sim {
  std::vector<size_t> num_choices;
  std::vector<size_t> truths;
  std::vector<size_t> domains;  // hard true domain per task
  std::vector<crowd::SimulatedWorker> workers;
  std::vector<Answer> answers;
};

Sim MakeSim(size_t n, size_t num_workers, size_t answers_per_task,
            uint64_t seed) {
  Sim sim;
  Rng rng(seed);
  crowd::WorkerPoolOptions pool_options;
  pool_options.num_workers = num_workers;
  sim.workers = crowd::MakeWorkerPool(2, {0, 1}, pool_options, seed);
  for (size_t i = 0; i < n; ++i) {
    sim.num_choices.push_back(2);
    sim.truths.push_back(rng.UniformInt(2));
    sim.domains.push_back(i % 2);
  }
  for (size_t i = 0; i < n; ++i) {
    std::vector<size_t> order(num_workers);
    for (size_t w = 0; w < num_workers; ++w) order[w] = w;
    rng.Shuffle(order);
    for (size_t a = 0; a < answers_per_task && a < num_workers; ++a) {
      const size_t w = order[a];
      sim.answers.push_back(
          {i, w,
           crowd::GenerateAnswer(sim.workers[w], sim.domains[i], sim.truths[i],
                                 2, rng)});
    }
  }
  return sim;
}

double Accuracy(const std::vector<size_t>& inferred,
                const std::vector<size_t>& truths) {
  size_t correct = 0;
  for (size_t i = 0; i < truths.size(); ++i) correct += inferred[i] == truths[i];
  return static_cast<double>(correct) / truths.size();
}

// --- Majority vote ----------------------------------------------------------

TEST(MajorityVoteTest, PicksMostFrequent) {
  std::vector<size_t> num_choices = {3, 2};
  std::vector<Answer> answers = {{0, 0, 2}, {0, 1, 2}, {0, 2, 0}, {1, 0, 1}};
  auto choices = MajorityVote(num_choices, answers);
  EXPECT_EQ(choices[0], 2u);
  EXPECT_EQ(choices[1], 1u);
}

TEST(MajorityVoteTest, UnansweredTaskDefaultsToZero) {
  auto choices = MajorityVote({2, 2}, {{0, 0, 1}});
  EXPECT_EQ(choices[1], 0u);
}

TEST(MajorityVoteTest, HistogramsCount) {
  auto histograms = AnswerHistograms({2}, {{0, 0, 1}, {0, 1, 1}, {0, 2, 0}});
  EXPECT_EQ(histograms[0], (std::vector<size_t>{1, 2}));
}

// --- ZenCrowd ----------------------------------------------------------------

TEST(ZenCrowdTest, BeatsOrMatchesMajorityVote) {
  auto sim = MakeSim(200, 50, 10, 21);
  ZenCrowd engine;
  auto result = engine.Run(sim.num_choices, sim.workers.size(), sim.answers);
  const double zc = Accuracy(result.inferred_choice, sim.truths);
  const double mv =
      Accuracy(MajorityVote(sim.num_choices, sim.answers), sim.truths);
  EXPECT_GE(zc, mv - 0.02);
  EXPECT_GT(zc, 0.8);
}

TEST(ZenCrowdTest, QualitiesInUnitInterval) {
  auto sim = MakeSim(80, 30, 8, 22);
  ZenCrowd engine;
  auto result = engine.Run(sim.num_choices, sim.workers.size(), sim.answers);
  for (double q : result.worker_quality) {
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 1.0);
  }
}

TEST(ZenCrowdTest, TruthsAreDistributions) {
  auto sim = MakeSim(50, 20, 6, 23);
  ZenCrowd engine;
  auto result = engine.Run(sim.num_choices, sim.workers.size(), sim.answers);
  for (const auto& s : result.task_truth) {
    double total = 0.0;
    for (double v : s) total += v;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(ZenCrowdTest, InitialQualitySeedsAccepted) {
  auto sim = MakeSim(40, 10, 5, 24);
  std::vector<double> seeds(sim.workers.size(), 0.9);
  ZenCrowd engine;
  auto result =
      engine.Run(sim.num_choices, sim.workers.size(), sim.answers, &seeds);
  EXPECT_EQ(result.inferred_choice.size(), 40u);
}

// --- Dawid-Skene -------------------------------------------------------------

TEST(DawidSkeneTest, BeatsOrMatchesMajorityVote) {
  auto sim = MakeSim(200, 50, 10, 25);
  DawidSkene engine;
  auto result = engine.Run(sim.num_choices, sim.workers.size(), sim.answers);
  const double ds = Accuracy(result.inferred_choice, sim.truths);
  const double mv =
      Accuracy(MajorityVote(sim.num_choices, sim.answers), sim.truths);
  EXPECT_GE(ds, mv - 0.02);
}

TEST(DawidSkeneTest, ConfusionRowsAreDistributions) {
  auto sim = MakeSim(60, 20, 8, 26);
  DawidSkene engine;
  auto result = engine.Run(sim.num_choices, sim.workers.size(), sim.answers);
  for (const auto& pi : result.confusion) {
    for (size_t j = 0; j < pi.rows(); ++j) {
      double total = 0.0;
      for (size_t a = 0; a < pi.cols(); ++a) total += pi(j, a);
      EXPECT_NEAR(total, 1.0, 1e-9);
    }
  }
}

TEST(DawidSkeneTest, HandlesMixedChoiceCounts) {
  std::vector<size_t> num_choices = {2, 4, 3};
  std::vector<Answer> answers = {{0, 0, 1}, {1, 0, 3}, {2, 0, 2},
                                 {0, 1, 1}, {1, 1, 3}, {2, 1, 2}};
  DawidSkene engine;
  auto result = engine.Run(num_choices, 2, answers);
  EXPECT_EQ(result.inferred_choice[0], 1u);
  EXPECT_EQ(result.inferred_choice[1], 3u);
  EXPECT_EQ(result.inferred_choice[2], 2u);
}

// --- iCrowd ------------------------------------------------------------------

TEST(ICrowdTest, WeightedVoteBeatsPlainVoteWithDomainExperts) {
  auto sim = MakeSim(200, 40, 10, 27);
  // One-hot topic vectors = ground-truth domains (the Section 6.3 favor).
  std::vector<std::vector<double>> topics(sim.num_choices.size(),
                                          std::vector<double>(2, 0.0));
  for (size_t i = 0; i < topics.size(); ++i) topics[i][sim.domains[i]] = 1.0;
  ICrowdInference engine;
  auto result =
      engine.Run(sim.num_choices, topics, sim.workers.size(), sim.answers);
  const double ic = Accuracy(result.inferred_choice, sim.truths);
  const double mv =
      Accuracy(MajorityVote(sim.num_choices, sim.answers), sim.truths);
  EXPECT_GE(ic, mv - 0.02);
}

TEST(ICrowdTest, PerAnswerQualityInUnitInterval) {
  auto sim = MakeSim(60, 20, 6, 28);
  std::vector<std::vector<double>> topics(sim.num_choices.size(),
                                          std::vector<double>(2, 0.5));
  ICrowdInference engine;
  auto result =
      engine.Run(sim.num_choices, topics, sim.workers.size(), sim.answers);
  ASSERT_EQ(result.per_answer_quality.size(), sim.answers.size());
  for (double q : result.per_answer_quality) {
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 1.0);
  }
}

// --- FaitCrowd ---------------------------------------------------------------

TEST(FaitCrowdTest, RecoversTruthWithTopicExperts) {
  auto sim = MakeSim(200, 40, 10, 29);
  FaitCrowd engine;
  auto result = engine.Run(sim.num_choices, sim.domains, 2,
                           sim.workers.size(), sim.answers);
  EXPECT_GT(Accuracy(result.inferred_choice, sim.truths), 0.8);
}

TEST(FaitCrowdTest, QualityDimensionsMatchTopics) {
  auto sim = MakeSim(40, 10, 5, 30);
  FaitCrowd engine;
  auto result =
      engine.Run(sim.num_choices, sim.domains, 2, sim.workers.size(),
                 sim.answers);
  ASSERT_EQ(result.worker_topic_quality.size(), sim.workers.size());
  for (const auto& q : result.worker_topic_quality) {
    ASSERT_EQ(q.size(), 2u);
  }
}

// --- Assignment policies ------------------------------------------------------

TEST(RandomAssignerTest, NeverRepeatsTasksForAWorker) {
  RandomAssigner assigner({2, 2, 2, 2}, 5);
  auto first = assigner.SelectTasks(0, 2);
  for (size_t task : first) assigner.OnAnswer(0, task, 0);
  auto second = assigner.SelectTasks(0, 4);
  for (size_t task : second) {
    for (size_t prior : first) EXPECT_NE(task, prior);
  }
}

TEST(AskItAssignerTest, PrefersUncertainTasks) {
  AskItAssigner assigner({2, 2, 2});
  // Task 0 gets 4 unanimous answers (confident); tasks 1-2 stay open.
  for (size_t w = 0; w < 4; ++w) assigner.OnAnswer(w, 0, 1);
  auto selected = assigner.SelectTasks(10, 2);
  ASSERT_EQ(selected.size(), 2u);
  for (size_t task : selected) EXPECT_NE(task, 0u);
}

TEST(AskItAssignerTest, SplitVoteIsMoreUncertainThanUnanimous) {
  AskItAssigner assigner({2, 2});
  // Task 0: 2-2 split. Task 1: 4-0 unanimous.
  assigner.OnAnswer(0, 0, 0);
  assigner.OnAnswer(1, 0, 0);
  assigner.OnAnswer(2, 0, 1);
  assigner.OnAnswer(3, 0, 1);
  for (size_t w = 0; w < 4; ++w) assigner.OnAnswer(w, 1, 0);
  auto selected = assigner.SelectTasks(10, 1);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0], 0u);
}

TEST(ICrowdAssignerTest, EnforcesEqualTimesConstraint) {
  std::vector<std::vector<double>> topics(3, std::vector<double>(2, 0.5));
  ICrowdAssigner assigner({2, 2, 2}, topics, /*answers_per_task=*/2);
  // Task 0 reaches the cap of 2 answers.
  assigner.OnAnswer(0, 0, 0);
  assigner.OnAnswer(1, 0, 0);
  auto selected = assigner.SelectTasks(5, 3);
  for (size_t task : selected) EXPECT_NE(task, 0u);
}

TEST(QascaAssignerTest, SelectsWithinEligibleSet) {
  QascaAssigner assigner({2, 2, 2, 2}, /*refresh_every=*/2);
  assigner.OnAnswer(0, 1, 0);
  assigner.OnAnswer(1, 1, 0);  // triggers a model refresh
  auto selected = assigner.SelectTasks(0, 2);
  ASSERT_EQ(selected.size(), 2u);
  for (size_t task : selected) EXPECT_NE(task, 1u);  // worker 0 answered 1
  // InferredChoices covers every task.
  EXPECT_EQ(assigner.InferredChoices().size(), 4u);
}

TEST(BaseAssignerTest, IgnoresDuplicateAndInvalidAnswers) {
  RandomAssigner assigner({2, 2}, 3);
  assigner.OnAnswer(0, 0, 1);
  assigner.OnAnswer(0, 0, 1);   // duplicate
  assigner.OnAnswer(0, 9, 0);   // bad task
  assigner.OnAnswer(0, 1, 9);   // bad choice
  EXPECT_EQ(assigner.total_answers(), 1u);
}

}  // namespace
}  // namespace docs::baselines
