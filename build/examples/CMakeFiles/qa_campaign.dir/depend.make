# Empty dependencies file for qa_campaign.
# This may be replaced when dependencies are built.
