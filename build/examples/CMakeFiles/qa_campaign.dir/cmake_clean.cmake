file(REMOVE_RECURSE
  "CMakeFiles/qa_campaign.dir/qa_campaign.cpp.o"
  "CMakeFiles/qa_campaign.dir/qa_campaign.cpp.o.d"
  "qa_campaign"
  "qa_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qa_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
