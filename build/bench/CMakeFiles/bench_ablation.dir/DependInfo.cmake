
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation.cc" "bench/CMakeFiles/bench_ablation.dir/bench_ablation.cc.o" "gcc" "bench/CMakeFiles/bench_ablation.dir/bench_ablation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/docs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/docs_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/crowd/CMakeFiles/docs_crowd.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/docs_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/topicmodel/CMakeFiles/docs_topicmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/docs_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/docs_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/docs_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/docs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
