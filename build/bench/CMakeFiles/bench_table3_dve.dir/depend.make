# Empty dependencies file for bench_table3_dve.
# This may be replaced when dependencies are built.
