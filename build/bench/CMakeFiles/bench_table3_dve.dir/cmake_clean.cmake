file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_dve.dir/bench_table3_dve.cc.o"
  "CMakeFiles/bench_table3_dve.dir/bench_table3_dve.cc.o.d"
  "bench_table3_dve"
  "bench_table3_dve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_dve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
