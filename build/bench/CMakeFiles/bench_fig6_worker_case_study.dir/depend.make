# Empty dependencies file for bench_fig6_worker_case_study.
# This may be replaced when dependencies are built.
