file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_ti_aspects.dir/bench_fig4_ti_aspects.cc.o"
  "CMakeFiles/bench_fig4_ti_aspects.dir/bench_fig4_ti_aspects.cc.o.d"
  "bench_fig4_ti_aspects"
  "bench_fig4_ti_aspects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_ti_aspects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
