# Empty dependencies file for bench_fig4_ti_aspects.
# This may be replaced when dependencies are built.
