# Empty dependencies file for bench_fig3_domain_detection.
# This may be replaced when dependencies are built.
