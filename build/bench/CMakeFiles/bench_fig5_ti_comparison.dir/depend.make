# Empty dependencies file for bench_fig5_ti_comparison.
# This may be replaced when dependencies are built.
