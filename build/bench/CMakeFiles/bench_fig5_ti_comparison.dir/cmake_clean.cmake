file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_ti_comparison.dir/bench_fig5_ti_comparison.cc.o"
  "CMakeFiles/bench_fig5_ti_comparison.dir/bench_fig5_ti_comparison.cc.o.d"
  "bench_fig5_ti_comparison"
  "bench_fig5_ti_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_ti_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
