# Empty compiler generated dependencies file for bench_fig7_golden_selection.
# This may be replaced when dependencies are built.
