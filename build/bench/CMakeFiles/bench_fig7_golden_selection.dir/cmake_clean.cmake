file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_golden_selection.dir/bench_fig7_golden_selection.cc.o"
  "CMakeFiles/bench_fig7_golden_selection.dir/bench_fig7_golden_selection.cc.o.d"
  "bench_fig7_golden_selection"
  "bench_fig7_golden_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_golden_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
