file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_ota.dir/bench_fig8_ota.cc.o"
  "CMakeFiles/bench_fig8_ota.dir/bench_fig8_ota.cc.o.d"
  "bench_fig8_ota"
  "bench_fig8_ota.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_ota.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
