file(REMOVE_RECURSE
  "libdocs_kb.a"
)
