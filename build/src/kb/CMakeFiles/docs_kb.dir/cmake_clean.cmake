file(REMOVE_RECURSE
  "CMakeFiles/docs_kb.dir/domain_taxonomy.cc.o"
  "CMakeFiles/docs_kb.dir/domain_taxonomy.cc.o.d"
  "CMakeFiles/docs_kb.dir/kb_io.cc.o"
  "CMakeFiles/docs_kb.dir/kb_io.cc.o.d"
  "CMakeFiles/docs_kb.dir/knowledge_base.cc.o"
  "CMakeFiles/docs_kb.dir/knowledge_base.cc.o.d"
  "CMakeFiles/docs_kb.dir/synthetic_kb.cc.o"
  "CMakeFiles/docs_kb.dir/synthetic_kb.cc.o.d"
  "libdocs_kb.a"
  "libdocs_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/docs_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
