# Empty compiler generated dependencies file for docs_kb.
# This may be replaced when dependencies are built.
