file(REMOVE_RECURSE
  "CMakeFiles/docs_common.dir/logging.cc.o"
  "CMakeFiles/docs_common.dir/logging.cc.o.d"
  "CMakeFiles/docs_common.dir/math_utils.cc.o"
  "CMakeFiles/docs_common.dir/math_utils.cc.o.d"
  "CMakeFiles/docs_common.dir/matrix.cc.o"
  "CMakeFiles/docs_common.dir/matrix.cc.o.d"
  "CMakeFiles/docs_common.dir/rng.cc.o"
  "CMakeFiles/docs_common.dir/rng.cc.o.d"
  "CMakeFiles/docs_common.dir/status.cc.o"
  "CMakeFiles/docs_common.dir/status.cc.o.d"
  "CMakeFiles/docs_common.dir/string_utils.cc.o"
  "CMakeFiles/docs_common.dir/string_utils.cc.o.d"
  "CMakeFiles/docs_common.dir/table_printer.cc.o"
  "CMakeFiles/docs_common.dir/table_printer.cc.o.d"
  "libdocs_common.a"
  "libdocs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/docs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
