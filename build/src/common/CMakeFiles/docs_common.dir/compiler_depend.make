# Empty compiler generated dependencies file for docs_common.
# This may be replaced when dependencies are built.
