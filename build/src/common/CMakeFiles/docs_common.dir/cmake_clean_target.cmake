file(REMOVE_RECURSE
  "libdocs_common.a"
)
