file(REMOVE_RECURSE
  "CMakeFiles/docs_datasets.dir/dataset.cc.o"
  "CMakeFiles/docs_datasets.dir/dataset.cc.o.d"
  "CMakeFiles/docs_datasets.dir/dataset_io.cc.o"
  "CMakeFiles/docs_datasets.dir/dataset_io.cc.o.d"
  "libdocs_datasets.a"
  "libdocs_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/docs_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
