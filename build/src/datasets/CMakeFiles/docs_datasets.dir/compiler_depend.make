# Empty compiler generated dependencies file for docs_datasets.
# This may be replaced when dependencies are built.
