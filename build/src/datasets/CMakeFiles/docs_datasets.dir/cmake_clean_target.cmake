file(REMOVE_RECURSE
  "libdocs_datasets.a"
)
