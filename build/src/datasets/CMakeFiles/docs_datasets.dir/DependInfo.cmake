
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datasets/dataset.cc" "src/datasets/CMakeFiles/docs_datasets.dir/dataset.cc.o" "gcc" "src/datasets/CMakeFiles/docs_datasets.dir/dataset.cc.o.d"
  "/root/repo/src/datasets/dataset_io.cc" "src/datasets/CMakeFiles/docs_datasets.dir/dataset_io.cc.o" "gcc" "src/datasets/CMakeFiles/docs_datasets.dir/dataset_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/docs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/docs_kb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
