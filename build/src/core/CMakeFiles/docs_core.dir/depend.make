# Empty dependencies file for docs_core.
# This may be replaced when dependencies are built.
