file(REMOVE_RECURSE
  "libdocs_core.a"
)
