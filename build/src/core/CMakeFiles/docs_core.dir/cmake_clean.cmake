file(REMOVE_RECURSE
  "CMakeFiles/docs_core.dir/docs_system.cc.o"
  "CMakeFiles/docs_core.dir/docs_system.cc.o.d"
  "CMakeFiles/docs_core.dir/domain_vector.cc.o"
  "CMakeFiles/docs_core.dir/domain_vector.cc.o.d"
  "CMakeFiles/docs_core.dir/golden_selection.cc.o"
  "CMakeFiles/docs_core.dir/golden_selection.cc.o.d"
  "CMakeFiles/docs_core.dir/incremental_ti.cc.o"
  "CMakeFiles/docs_core.dir/incremental_ti.cc.o.d"
  "CMakeFiles/docs_core.dir/task_assignment.cc.o"
  "CMakeFiles/docs_core.dir/task_assignment.cc.o.d"
  "CMakeFiles/docs_core.dir/truth_inference.cc.o"
  "CMakeFiles/docs_core.dir/truth_inference.cc.o.d"
  "libdocs_core.a"
  "libdocs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/docs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
