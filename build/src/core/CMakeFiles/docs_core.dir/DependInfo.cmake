
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/docs_system.cc" "src/core/CMakeFiles/docs_core.dir/docs_system.cc.o" "gcc" "src/core/CMakeFiles/docs_core.dir/docs_system.cc.o.d"
  "/root/repo/src/core/domain_vector.cc" "src/core/CMakeFiles/docs_core.dir/domain_vector.cc.o" "gcc" "src/core/CMakeFiles/docs_core.dir/domain_vector.cc.o.d"
  "/root/repo/src/core/golden_selection.cc" "src/core/CMakeFiles/docs_core.dir/golden_selection.cc.o" "gcc" "src/core/CMakeFiles/docs_core.dir/golden_selection.cc.o.d"
  "/root/repo/src/core/incremental_ti.cc" "src/core/CMakeFiles/docs_core.dir/incremental_ti.cc.o" "gcc" "src/core/CMakeFiles/docs_core.dir/incremental_ti.cc.o.d"
  "/root/repo/src/core/task_assignment.cc" "src/core/CMakeFiles/docs_core.dir/task_assignment.cc.o" "gcc" "src/core/CMakeFiles/docs_core.dir/task_assignment.cc.o.d"
  "/root/repo/src/core/truth_inference.cc" "src/core/CMakeFiles/docs_core.dir/truth_inference.cc.o" "gcc" "src/core/CMakeFiles/docs_core.dir/truth_inference.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/docs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/docs_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/docs_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/docs_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
