# Empty compiler generated dependencies file for docs_core.
# This may be replaced when dependencies are built.
