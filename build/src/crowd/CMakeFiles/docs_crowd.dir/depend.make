# Empty dependencies file for docs_crowd.
# This may be replaced when dependencies are built.
