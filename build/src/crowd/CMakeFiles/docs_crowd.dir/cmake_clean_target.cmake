file(REMOVE_RECURSE
  "libdocs_crowd.a"
)
