file(REMOVE_RECURSE
  "CMakeFiles/docs_crowd.dir/campaign.cc.o"
  "CMakeFiles/docs_crowd.dir/campaign.cc.o.d"
  "CMakeFiles/docs_crowd.dir/worker_pool.cc.o"
  "CMakeFiles/docs_crowd.dir/worker_pool.cc.o.d"
  "libdocs_crowd.a"
  "libdocs_crowd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/docs_crowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
