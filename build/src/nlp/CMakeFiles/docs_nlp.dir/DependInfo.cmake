
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nlp/entity_linker.cc" "src/nlp/CMakeFiles/docs_nlp.dir/entity_linker.cc.o" "gcc" "src/nlp/CMakeFiles/docs_nlp.dir/entity_linker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/docs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/docs_kb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
