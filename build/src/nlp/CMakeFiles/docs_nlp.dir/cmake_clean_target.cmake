file(REMOVE_RECURSE
  "libdocs_nlp.a"
)
