# Empty compiler generated dependencies file for docs_nlp.
# This may be replaced when dependencies are built.
