file(REMOVE_RECURSE
  "CMakeFiles/docs_nlp.dir/entity_linker.cc.o"
  "CMakeFiles/docs_nlp.dir/entity_linker.cc.o.d"
  "libdocs_nlp.a"
  "libdocs_nlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/docs_nlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
