file(REMOVE_RECURSE
  "CMakeFiles/docs_topicmodel.dir/corpus.cc.o"
  "CMakeFiles/docs_topicmodel.dir/corpus.cc.o.d"
  "CMakeFiles/docs_topicmodel.dir/lda.cc.o"
  "CMakeFiles/docs_topicmodel.dir/lda.cc.o.d"
  "CMakeFiles/docs_topicmodel.dir/twitter_lda.cc.o"
  "CMakeFiles/docs_topicmodel.dir/twitter_lda.cc.o.d"
  "libdocs_topicmodel.a"
  "libdocs_topicmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/docs_topicmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
