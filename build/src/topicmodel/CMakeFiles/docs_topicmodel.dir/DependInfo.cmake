
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topicmodel/corpus.cc" "src/topicmodel/CMakeFiles/docs_topicmodel.dir/corpus.cc.o" "gcc" "src/topicmodel/CMakeFiles/docs_topicmodel.dir/corpus.cc.o.d"
  "/root/repo/src/topicmodel/lda.cc" "src/topicmodel/CMakeFiles/docs_topicmodel.dir/lda.cc.o" "gcc" "src/topicmodel/CMakeFiles/docs_topicmodel.dir/lda.cc.o.d"
  "/root/repo/src/topicmodel/twitter_lda.cc" "src/topicmodel/CMakeFiles/docs_topicmodel.dir/twitter_lda.cc.o" "gcc" "src/topicmodel/CMakeFiles/docs_topicmodel.dir/twitter_lda.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/docs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
