file(REMOVE_RECURSE
  "libdocs_topicmodel.a"
)
