# Empty compiler generated dependencies file for docs_topicmodel.
# This may be replaced when dependencies are built.
