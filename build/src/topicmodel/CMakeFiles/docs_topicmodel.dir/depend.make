# Empty dependencies file for docs_topicmodel.
# This may be replaced when dependencies are built.
