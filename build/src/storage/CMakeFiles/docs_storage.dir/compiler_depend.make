# Empty compiler generated dependencies file for docs_storage.
# This may be replaced when dependencies are built.
