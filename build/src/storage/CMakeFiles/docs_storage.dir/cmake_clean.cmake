file(REMOVE_RECURSE
  "CMakeFiles/docs_storage.dir/log_store.cc.o"
  "CMakeFiles/docs_storage.dir/log_store.cc.o.d"
  "CMakeFiles/docs_storage.dir/state_checkpoint.cc.o"
  "CMakeFiles/docs_storage.dir/state_checkpoint.cc.o.d"
  "CMakeFiles/docs_storage.dir/worker_store.cc.o"
  "CMakeFiles/docs_storage.dir/worker_store.cc.o.d"
  "libdocs_storage.a"
  "libdocs_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/docs_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
