file(REMOVE_RECURSE
  "libdocs_storage.a"
)
