file(REMOVE_RECURSE
  "libdocs_baselines.a"
)
