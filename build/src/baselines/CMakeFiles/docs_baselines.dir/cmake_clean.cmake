file(REMOVE_RECURSE
  "CMakeFiles/docs_baselines.dir/assigners.cc.o"
  "CMakeFiles/docs_baselines.dir/assigners.cc.o.d"
  "CMakeFiles/docs_baselines.dir/dawid_skene.cc.o"
  "CMakeFiles/docs_baselines.dir/dawid_skene.cc.o.d"
  "CMakeFiles/docs_baselines.dir/faitcrowd.cc.o"
  "CMakeFiles/docs_baselines.dir/faitcrowd.cc.o.d"
  "CMakeFiles/docs_baselines.dir/icrowd.cc.o"
  "CMakeFiles/docs_baselines.dir/icrowd.cc.o.d"
  "CMakeFiles/docs_baselines.dir/majority_vote.cc.o"
  "CMakeFiles/docs_baselines.dir/majority_vote.cc.o.d"
  "CMakeFiles/docs_baselines.dir/zencrowd.cc.o"
  "CMakeFiles/docs_baselines.dir/zencrowd.cc.o.d"
  "libdocs_baselines.a"
  "libdocs_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/docs_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
