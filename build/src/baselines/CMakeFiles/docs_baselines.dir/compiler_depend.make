# Empty compiler generated dependencies file for docs_baselines.
# This may be replaced when dependencies are built.
