
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/assigners.cc" "src/baselines/CMakeFiles/docs_baselines.dir/assigners.cc.o" "gcc" "src/baselines/CMakeFiles/docs_baselines.dir/assigners.cc.o.d"
  "/root/repo/src/baselines/dawid_skene.cc" "src/baselines/CMakeFiles/docs_baselines.dir/dawid_skene.cc.o" "gcc" "src/baselines/CMakeFiles/docs_baselines.dir/dawid_skene.cc.o.d"
  "/root/repo/src/baselines/faitcrowd.cc" "src/baselines/CMakeFiles/docs_baselines.dir/faitcrowd.cc.o" "gcc" "src/baselines/CMakeFiles/docs_baselines.dir/faitcrowd.cc.o.d"
  "/root/repo/src/baselines/icrowd.cc" "src/baselines/CMakeFiles/docs_baselines.dir/icrowd.cc.o" "gcc" "src/baselines/CMakeFiles/docs_baselines.dir/icrowd.cc.o.d"
  "/root/repo/src/baselines/majority_vote.cc" "src/baselines/CMakeFiles/docs_baselines.dir/majority_vote.cc.o" "gcc" "src/baselines/CMakeFiles/docs_baselines.dir/majority_vote.cc.o.d"
  "/root/repo/src/baselines/zencrowd.cc" "src/baselines/CMakeFiles/docs_baselines.dir/zencrowd.cc.o" "gcc" "src/baselines/CMakeFiles/docs_baselines.dir/zencrowd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/docs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/docs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topicmodel/CMakeFiles/docs_topicmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/docs_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/docs_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/docs_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
