file(REMOVE_RECURSE
  "CMakeFiles/ota_test.dir/ota_test.cc.o"
  "CMakeFiles/ota_test.dir/ota_test.cc.o.d"
  "ota_test"
  "ota_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ota_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
