# Empty dependencies file for ti_test.
# This may be replaced when dependencies are built.
