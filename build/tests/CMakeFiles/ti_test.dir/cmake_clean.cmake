file(REMOVE_RECURSE
  "CMakeFiles/ti_test.dir/ti_test.cc.o"
  "CMakeFiles/ti_test.dir/ti_test.cc.o.d"
  "ti_test"
  "ti_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ti_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
