file(REMOVE_RECURSE
  "CMakeFiles/docs_system_test.dir/docs_system_test.cc.o"
  "CMakeFiles/docs_system_test.dir/docs_system_test.cc.o.d"
  "docs_system_test"
  "docs_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/docs_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
