# Empty compiler generated dependencies file for docs_system_test.
# This may be replaced when dependencies are built.
