# Empty compiler generated dependencies file for topicmodel_test.
# This may be replaced when dependencies are built.
