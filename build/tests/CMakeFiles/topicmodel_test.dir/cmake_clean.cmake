file(REMOVE_RECURSE
  "CMakeFiles/topicmodel_test.dir/topicmodel_test.cc.o"
  "CMakeFiles/topicmodel_test.dir/topicmodel_test.cc.o.d"
  "topicmodel_test"
  "topicmodel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topicmodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
