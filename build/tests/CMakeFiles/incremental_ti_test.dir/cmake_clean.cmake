file(REMOVE_RECURSE
  "CMakeFiles/incremental_ti_test.dir/incremental_ti_test.cc.o"
  "CMakeFiles/incremental_ti_test.dir/incremental_ti_test.cc.o.d"
  "incremental_ti_test"
  "incremental_ti_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_ti_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
