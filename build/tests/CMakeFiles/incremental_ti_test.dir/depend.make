# Empty dependencies file for incremental_ti_test.
# This may be replaced when dependencies are built.
