# Empty dependencies file for dve_test.
# This may be replaced when dependencies are built.
