file(REMOVE_RECURSE
  "CMakeFiles/dve_test.dir/dve_test.cc.o"
  "CMakeFiles/dve_test.dir/dve_test.cc.o.d"
  "dve_test"
  "dve_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
