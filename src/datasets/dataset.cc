#include "datasets/dataset.h"

#include <algorithm>

#include "common/rng.h"

namespace docs::datasets {
namespace {

using kb::CanonicalDomains;
using kb::SyntheticKb;

// Draws two distinct entities from `pool`.
std::pair<std::string, std::string> DrawPair(
    const std::vector<std::string>& pool, Rng& rng) {
  const size_t a = rng.UniformInt(pool.size());
  size_t b = rng.UniformInt(pool.size() - 1);
  if (b >= a) ++b;
  return {pool[a], pool[b]};
}

// Draws `count` distinct entities from `pool` (requires pool >= count).
std::vector<std::string> DrawDistinct(const std::vector<std::string>& pool,
                                      size_t count, Rng& rng) {
  std::vector<size_t> indices(pool.size());
  for (size_t i = 0; i < pool.size(); ++i) indices[i] = i;
  rng.Shuffle(indices);
  std::vector<std::string> out;
  out.reserve(count);
  for (size_t i = 0; i < count && i < pool.size(); ++i) {
    out.push_back(pool[indices[i]]);
  }
  return out;
}

// Appends a binary comparison task "template(A, B)" with choices {A, B}.
void AddComparison(Dataset& dataset, const std::string& text,
                   const std::string& a, const std::string& b, size_t label,
                   size_t domain, Rng& rng) {
  TaskSpec task;
  task.text = text;
  task.choices = {a, b};
  task.truth = rng.UniformInt(2);
  task.label = label;
  task.true_domain = domain;
  dataset.tasks.push_back(std::move(task));
}

void AddYesNo(Dataset& dataset, const std::string& text, size_t label,
              size_t domain, Rng& rng) {
  TaskSpec task;
  task.text = text;
  task.choices = {"yes", "no"};
  task.truth = rng.UniformInt(2);
  task.label = label;
  task.true_domain = domain;
  dataset.tasks.push_back(std::move(task));
}

}  // namespace

std::vector<size_t> Dataset::Truths() const {
  std::vector<size_t> truths;
  truths.reserve(tasks.size());
  for (const auto& task : tasks) truths.push_back(task.truth);
  return truths;
}

std::vector<size_t> Dataset::TrueDomains() const {
  std::vector<size_t> domains;
  domains.reserve(tasks.size());
  for (const auto& task : tasks) domains.push_back(task.true_domain);
  return domains;
}

Dataset MakeItemDataset(const SyntheticKb& synthetic_kb, uint64_t seed) {
  Rng rng(seed);
  const CanonicalDomains canon =
      CanonicalDomains::Resolve(synthetic_kb.knowledge_base.taxonomy());
  const auto& pools = synthetic_kb.pools;

  Dataset dataset;
  dataset.name = "Item";
  dataset.domain_labels = {"NBA", "Food", "Auto", "Country"};
  dataset.label_to_domain = {canon.sports, canon.food, canon.cars,
                             canon.travel};
  constexpr size_t kPerDomain = 90;

  for (size_t i = 0; i < kPerDomain; ++i) {
    auto [a, b] = DrawPair(pools.nba_players, rng);
    AddComparison(dataset,
                  "Which player wins more NBA championships, " + a + " or " +
                      b + "?",
                  a, b, 0, canon.sports, rng);
  }
  for (size_t i = 0; i < kPerDomain; ++i) {
    auto [a, b] = DrawPair(pools.foods, rng);
    AddComparison(dataset,
                  "Which food contains more calories, " + a + " or " + b + "?",
                  a, b, 1, canon.food, rng);
  }
  for (size_t i = 0; i < kPerDomain; ++i) {
    auto [a, b] = DrawPair(pools.cars, rng);
    AddComparison(dataset,
                  "Which car has a higher top speed, the " + a + " or the " +
                      b + "?",
                  a, b, 2, canon.cars, rng);
  }
  for (size_t i = 0; i < kPerDomain; ++i) {
    auto [a, b] = DrawPair(pools.countries, rng);
    AddComparison(dataset,
                  "Which country has a larger population, " + a + " or " + b +
                      "?",
                  a, b, 3, canon.travel, rng);
  }
  return dataset;
}

Dataset MakeFourDomainDataset(const SyntheticKb& synthetic_kb, uint64_t seed) {
  Rng rng(seed);
  const CanonicalDomains canon =
      CanonicalDomains::Resolve(synthetic_kb.knowledge_base.taxonomy());
  const auto& pools = synthetic_kb.pools;

  Dataset dataset;
  dataset.name = "4D";
  dataset.domain_labels = {"NBA", "Car", "Film", "Mountain"};
  dataset.label_to_domain = {canon.sports, canon.cars, canon.entertain,
                             canon.science};
  constexpr size_t kPerDomain = 100;

  // NBA: varied forms, including the height comparison that collides with
  // the Mountain template on surface similarity.
  for (size_t i = 0; i < kPerDomain; ++i) {
    switch (i % 5) {
      case 0: {
        auto [a, b] = DrawPair(pools.nba_players, rng);
        AddComparison(dataset, "Compare the height of " + a + " and " + b + ".",
                      a, b, 0, canon.sports, rng);
        break;
      }
      case 1: {
        const auto& p = pools.nba_players[rng.UniformInt(pools.nba_players.size())];
        AddYesNo(dataset, "Is " + p + " a point guard?", 0, canon.sports, rng);
        break;
      }
      case 2: {
        auto [a, b] = DrawPair(pools.nba_teams, rng);
        AddComparison(dataset,
                      "Which team wins more championships, the " + a +
                          " or the " + b + "?",
                      a, b, 0, canon.sports, rng);
        break;
      }
      case 3: {
        auto [a, b] = DrawPair(pools.nba_players, rng);
        AddYesNo(dataset, "Is " + a + " older than " + b + "?", 0,
                 canon.sports, rng);
        break;
      }
      default: {
        const auto& p = pools.nba_players[rng.UniformInt(pools.nba_players.size())];
        const auto& t = pools.nba_teams[rng.UniformInt(pools.nba_teams.size())];
        AddYesNo(dataset, "Did " + p + " ever play for the " + t + "?", 0,
                 canon.sports, rng);
        break;
      }
    }
  }
  // Car.
  for (size_t i = 0; i < kPerDomain; ++i) {
    switch (i % 5) {
      case 0: {
        auto [a, b] = DrawPair(pools.cars, rng);
        AddYesNo(dataset, "Is the " + a + " faster than the " + b + "?", 1,
                 canon.cars, rng);
        break;
      }
      case 1: {
        auto [a, b] = DrawPair(pools.cars, rng);
        AddComparison(dataset,
                      "Compare the fuel economy of the " + a + " and the " + b +
                          ".",
                      a, b, 1, canon.cars, rng);
        break;
      }
      case 2: {
        const auto& c = pools.cars[rng.UniformInt(pools.cars.size())];
        AddYesNo(dataset, "Does the " + c + " come with a hybrid engine?", 1,
                 canon.cars, rng);
        break;
      }
      case 3: {
        auto [a, b] = DrawPair(pools.cars, rng);
        AddComparison(dataset,
                      "Which costs more, the " + a + " or the " + b + "?", a,
                      b, 1, canon.cars, rng);
        break;
      }
      default: {
        const auto& c = pools.cars[rng.UniformInt(pools.cars.size())];
        AddYesNo(dataset, "Is the " + c + " an electric vehicle?", 1,
                 canon.cars, rng);
        break;
      }
    }
  }
  // Film.
  for (size_t i = 0; i < kPerDomain; ++i) {
    switch (i % 5) {
      case 0: {
        const auto& a = pools.actors[rng.UniformInt(pools.actors.size())];
        const auto& f = pools.films[rng.UniformInt(pools.films.size())];
        AddYesNo(dataset, "Did " + a + " star in " + f + "?", 2,
                 canon.entertain, rng);
        break;
      }
      case 1: {
        auto [a, b] = DrawPair(pools.films, rng);
        AddComparison(dataset,
                      "Compare the box office of " + a + " and " + b + ".", a,
                      b, 2, canon.entertain, rng);
        break;
      }
      case 2: {
        auto [a, b] = DrawPair(pools.films, rng);
        AddYesNo(dataset, "Was " + a + " released before " + b + "?", 2,
                 canon.entertain, rng);
        break;
      }
      case 3: {
        const auto& f = pools.films[rng.UniformInt(pools.films.size())];
        AddYesNo(dataset, "Did " + f + " win the Oscar for best picture?", 2,
                 canon.entertain, rng);
        break;
      }
      default: {
        auto [a, b] = DrawPair(pools.actors, rng);
        const auto& f = pools.films[rng.UniformInt(pools.films.size())];
        AddComparison(dataset,
                      "Who is the lead actor of " + f + ", " + a + " or " + b +
                          "?",
                      a, b, 2, canon.entertain, rng);
        break;
      }
    }
  }
  // Mountain: note the height-comparison trap templates.
  for (size_t i = 0; i < kPerDomain; ++i) {
    switch (i % 5) {
      case 0: {
        auto [a, b] = DrawPair(pools.mountains, rng);
        AddComparison(dataset, "Compare the height of " + a + " and " + b + ".",
                      a, b, 3, canon.science, rng);
        break;
      }
      case 1: {
        const auto& m = pools.mountains[rng.UniformInt(pools.mountains.size())];
        AddYesNo(dataset, "Is " + m + " located in Asia?", 3, canon.science,
                 rng);
        break;
      }
      case 2: {
        auto [a, b] = DrawPair(pools.mountains, rng);
        AddYesNo(dataset, "Is " + a + " taller than " + b + "?", 3,
                 canon.science, rng);
        break;
      }
      case 3: {
        const auto& m = pools.mountains[rng.UniformInt(pools.mountains.size())];
        AddYesNo(dataset, "Has " + m + " ever been climbed in winter?", 3,
                 canon.science, rng);
        break;
      }
      default: {
        auto [a, b] = DrawPair(pools.mountains, rng);
        AddComparison(dataset,
                      "Compare the elevation of " + a + " and " + b + ".", a,
                      b, 3, canon.science, rng);
        break;
      }
    }
  }
  return dataset;
}

Dataset MakeQaDataset(const SyntheticKb& synthetic_kb, size_t num_tasks,
                      uint64_t seed) {
  Rng rng(seed);
  const CanonicalDomains canon =
      CanonicalDomains::Resolve(synthetic_kb.knowledge_base.taxonomy());
  const auto& pools = synthetic_kb.pools;

  Dataset dataset;
  dataset.name = "QA";
  dataset.domain_labels = {"Entertain", "Science", "Sports", "Business"};
  dataset.label_to_domain = {canon.entertain, canon.science, canon.sports,
                             canon.business};

  // A little filler vocabulary so the question text is not purely templated.
  const std::vector<std::string> lead_ins = {
      "I was wondering,", "Quick question:", "Can anyone tell me",
      "Does anybody know", "Help me settle a bet:", "Serious question,"};

  for (size_t i = 0; i < num_tasks; ++i) {
    const size_t label = i % 4;
    const std::string& lead = lead_ins[rng.UniformInt(lead_ins.size())];
    TaskSpec task;
    task.label = label;
    task.true_domain = dataset.label_to_domain[label];
    switch (label) {
      case 0: {  // Entertain
        switch (rng.UniformInt(3)) {
          case 0: {
            auto [a, b] = DrawPair(pools.actors, rng);
            const auto& f = pools.films[rng.UniformInt(pools.films.size())];
            task.text = lead + " who starred in " + f + ", " + a + " or " + b +
                        "?";
            task.choices = {a, b};
            break;
          }
          case 1: {
            auto [a, b] = DrawPair(pools.musicians, rng);
            const auto& c = pools.musicians[rng.UniformInt(pools.musicians.size())];
            task.text = lead + " which singer released an album with " + c +
                        ", " + a + " or " + b + "?";
            task.choices = {a, b};
            break;
          }
          default: {
            auto three = DrawDistinct(pools.films, 3, rng);
            task.text = lead + " which movie premiered first, " + three[0] +
                        ", " + three[1] + " or " + three[2] + "?";
            task.choices = three;
            break;
          }
        }
        break;
      }
      case 1: {  // Science
        switch (rng.UniformInt(3)) {
          case 0: {
            auto [a, b] = DrawPair(pools.mountains, rng);
            task.text = lead + " which mountain has the higher summit, " + a +
                        " or " + b + "?";
            task.choices = {a, b};
            break;
          }
          case 1: {
            auto [a, b] = DrawPair(pools.scientists, rng);
            task.text = lead + " who proposed the famous theory first, " + a +
                        " or " + b + "?";
            task.choices = {a, b};
            break;
          }
          default: {
            auto three = DrawDistinct(pools.mountains, 3, rng);
            task.text = lead + " which peak has the highest elevation in "
                        "meters, " + three[0] + ", " + three[1] + " or " +
                        three[2] + "?";
            task.choices = three;
            break;
          }
        }
        break;
      }
      case 2: {  // Sports
        switch (rng.UniformInt(3)) {
          case 0: {
            auto [a, b] = DrawPair(pools.nba_players, rng);
            task.text = lead + " who scored more points in the finals, " + a +
                        " or " + b + "?";
            task.choices = {a, b};
            break;
          }
          case 1: {
            const auto& p =
                pools.nba_players[rng.UniformInt(pools.nba_players.size())];
            auto [a, b] = DrawPair(pools.nba_teams, rng);
            task.text = lead + " which team drafted " + p + ", the " + a +
                        " or the " + b + "?";
            task.choices = {a, b};
            break;
          }
          default: {
            auto three = DrawDistinct(pools.nba_teams, 3, rng);
            task.text = lead + " which team won the championship that "
                        "season, the " + three[0] + ", the " + three[1] +
                        " or the " + three[2] + "?";
            task.choices = three;
            break;
          }
        }
        break;
      }
      default: {  // Business
        switch (rng.UniformInt(3)) {
          case 0: {
            auto [a, b] = DrawPair(pools.business_people, rng);
            task.text = lead + " which founder built the larger company, " + a +
                        " or " + b + "?";
            task.choices = {a, b};
            break;
          }
          case 1: {
            auto [a, b] = DrawPair(pools.business_people, rng);
            task.text = lead + " who has the higher net worth on the fortune "
                        "list, " + a + " or " + b + "?";
            task.choices = {a, b};
            break;
          }
          default: {
            auto three = DrawDistinct(pools.business_people, 3, rng);
            task.text = lead + " which ceo ran the company with the higher "
                        "revenue, " + three[0] + ", " + three[1] + " or " +
                        three[2] + "?";
            task.choices = three;
            break;
          }
        }
        break;
      }
    }
    // QA questions are entity-dense: askers pad their question with
    // context naming more entities ("I read about X and Y..."), mostly from
    // the same sphere as the question (related stories) with an occasional
    // off-topic mention. This is what blows up the enumeration of Eq. 1 on
    // QA in Table 3, and the off-topic mentions are why QA's domain vectors
    // are soft rather than one-hot.
    const std::vector<const std::vector<std::string>*> same_domain_pools = {
        &pools.films, &pools.mountains, &pools.nba_players,
        &pools.business_people};
    const std::vector<const std::vector<std::string>*> any_pools = {
        &pools.films, &pools.nba_players, &pools.mountains,
        &pools.business_people, &pools.countries, &pools.musicians};
    const size_t extra = 2 + rng.UniformInt(2);
    std::string context = " I first read about this next to a story on";
    for (size_t e = 0; e < extra; ++e) {
      const auto& pool =
          rng.Bernoulli(0.75)
              ? *same_domain_pools[label]
              : *any_pools[rng.UniformInt(any_pools.size())];
      context += (e == 0 ? " " : " and ") + pool[rng.UniformInt(pool.size())];
    }
    task.text += context + ".";
    task.truth = rng.UniformInt(task.choices.size());
    dataset.tasks.push_back(std::move(task));
  }
  return dataset;
}

Dataset MakeSfvDataset(const SyntheticKb& synthetic_kb, uint64_t seed) {
  Rng rng(seed);
  const CanonicalDomains canon =
      CanonicalDomains::Resolve(synthetic_kb.knowledge_base.taxonomy());
  const auto& pools = synthetic_kb.pools;

  Dataset dataset;
  dataset.name = "SFV";
  dataset.domain_labels = {"Entertain", "Business", "Sports", "Politics"};
  dataset.label_to_domain = {canon.entertain, canon.business, canon.sports,
                             canon.politics};
  constexpr size_t kNumTasks = 328;

  const std::vector<std::string> attributes = {"age", "height in centimeters",
                                               "birth year", "net worth rank"};

  for (size_t i = 0; i < kNumTasks; ++i) {
    const size_t label = i % 4;
    TaskSpec task;
    task.label = label;
    task.true_domain = dataset.label_to_domain[label];
    // SFV asks about renowned and long-tail persons alike; drawing mostly
    // from the long-tail pools gives the name sparsity of the real dataset
    // (few repeated names -> no co-occurrence signal for topic models).
    std::string person;
    const std::vector<std::string>* sphere = nullptr;
    const bool famous = rng.Bernoulli(0.25);
    switch (label) {
      case 0:
        sphere = famous ? ((i % 8 < 4) ? &pools.actors : &pools.musicians)
                        : &pools.minor_entertainers;
        break;
      case 1:
        sphere = famous ? &pools.business_people : &pools.minor_executives;
        break;
      case 2:
        sphere = famous ? &pools.nba_players : &pools.minor_athletes;
        break;
      default:
        sphere = famous ? &pools.politicians : &pools.minor_politicians;
        break;
    }
    person = (*sphere)[rng.UniformInt(sphere->size())];
    const std::string& attribute = attributes[rng.UniformInt(attributes.size())];
    task.text = "What is the " + attribute + " of " + person + "?";
    // SFV tasks display the extracted evidence sentence, which names other
    // entities from the subject's own sphere (co-mentioned peers) — the
    // reason enumeration struggles on SFV in Table 3.
    const size_t witnesses = 3 + rng.UniformInt(2);
    std::string evidence = " Evidence: mentioned alongside";
    for (size_t e = 0; e < witnesses; ++e) {
      evidence +=
          (e == 0 ? " " : ", ") + (*sphere)[rng.UniformInt(sphere->size())];
    }
    task.text += evidence + ".";
    // Choices mimic values collected from different QA systems: 3-6 distinct
    // numeric strings.
    const size_t num_choices = 3 + rng.UniformInt(4);
    const int base = 20 + static_cast<int>(rng.UniformInt(160));
    for (size_t c = 0; c < num_choices; ++c) {
      task.choices.push_back(std::to_string(base + static_cast<int>(c) * 3));
    }
    task.truth = rng.UniformInt(task.choices.size());
    dataset.tasks.push_back(std::move(task));
  }
  return dataset;
}

Dataset MakeDatasetByName(const std::string& name,
                          const SyntheticKb& synthetic_kb) {
  if (name == "Item") return MakeItemDataset(synthetic_kb);
  if (name == "4D") return MakeFourDomainDataset(synthetic_kb);
  if (name == "QA") return MakeQaDataset(synthetic_kb);
  if (name == "SFV") return MakeSfvDataset(synthetic_kb);
  return Dataset{};
}

std::vector<std::string> AllDatasetNames() {
  return {"Item", "4D", "QA", "SFV"};
}

}  // namespace docs::datasets
