#ifndef DOCS_DATASETS_DATASET_H_
#define DOCS_DATASETS_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kb/synthetic_kb.h"

namespace docs::datasets {

/// One generated task: the text shown to workers, the multiple choices, the
/// ground-truth choice, and the latent ground-truth domain (used by the
/// worker simulator and by the Fig. 3 domain-detection evaluation).
struct TaskSpec {
  std::string text;
  std::vector<std::string> choices;
  size_t truth = 0;        ///< index into `choices`
  size_t label = 0;        ///< index into Dataset::domain_labels
  size_t true_domain = 0;  ///< canonical index in the 26-domain taxonomy
  /// Intrinsic difficulty in [0, 1]: 0 = a worker performs at her domain
  /// quality, 1 = everyone guesses uniformly. The paper's worker model
  /// (Eq. 4) does not model difficulty; the simulator supports it so the
  /// robustness ablation can stress that assumption.
  double difficulty = 0.0;

  size_t num_choices() const { return choices.size(); }
};

/// A synthetic stand-in for one of the paper's four datasets.
struct Dataset {
  std::string name;
  std::vector<TaskSpec> tasks;
  /// Human labels of the dataset's domains (e.g. NBA, Food, Auto, Country).
  std::vector<std::string> domain_labels;
  /// Canonical 26-domain index each label maps onto.
  std::vector<size_t> label_to_domain;

  std::vector<size_t> Truths() const;
  std::vector<size_t> TrueDomains() const;
};

/// ItemCompare (360 tasks, domains NBA/Food/Auto/Country, 90 each): every
/// task in a domain follows the *same* comparison template, so intra-domain
/// text similarity is very high — the regime where LDA-style domain
/// detection works (Fig. 3(a)).
Dataset MakeItemDataset(const kb::SyntheticKb& synthetic_kb, uint64_t seed = 1);

/// 4-Domain (400 tasks, domains NBA/Car/Film/Mountain, 100 each): several
/// templates per domain, including cross-domain lookalikes ("Compare the
/// height of <player>/<mountain> ...") that defeat string-similarity-based
/// domain detection (Fig. 3(b)).
Dataset MakeFourDomainDataset(const kb::SyntheticKb& synthetic_kb,
                              uint64_t seed = 2);

/// Yahoo QA (default 1000 tasks over Entertain/Science/Sports/Business):
/// free-form question answering with 2-4 choices and entity-dense text
/// (Fig. 3(c); the large |E_t| regime of Table 3).
Dataset MakeQaDataset(const kb::SyntheticKb& synthetic_kb,
                      size_t num_tasks = 1000, uint64_t seed = 3);

/// SFV (328 tasks over Entertain/Business/Sports/Politics): each task asks
/// an attribute of a renowned person, with up to 6 choices collected from
/// QA systems (Fig. 3(d)).
Dataset MakeSfvDataset(const kb::SyntheticKb& synthetic_kb, uint64_t seed = 4);

/// Builds one of the four datasets by its paper name ("Item", "4D", "QA",
/// "SFV"); unknown names return an empty dataset.
Dataset MakeDatasetByName(const std::string& name,
                          const kb::SyntheticKb& synthetic_kb);

/// The four paper dataset names in presentation order.
std::vector<std::string> AllDatasetNames();

}  // namespace docs::datasets

#endif  // DOCS_DATASETS_DATASET_H_
