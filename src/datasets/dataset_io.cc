#include "datasets/dataset_io.h"

#include <fstream>
#include <sstream>

#include "common/string_utils.h"

namespace docs::datasets {
namespace {

bool HasForbidden(const std::string& value, bool forbid_pipe) {
  for (char c : value) {
    if (c == '\t' || c == '\n') return true;
    if (forbid_pipe && c == '|') return true;
  }
  return false;
}

}  // namespace

Status SaveDatasetTsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return IoError("cannot open " + path);
  out << "# docstasks 1\n";
  out << "# name " << dataset.name << '\n';
  for (size_t label = 0; label < dataset.domain_labels.size(); ++label) {
    out << "# label " << label << ' ' << dataset.label_to_domain[label] << ' '
        << dataset.domain_labels[label] << '\n';
  }
  for (const auto& task : dataset.tasks) {
    if (HasForbidden(task.text, /*forbid_pipe=*/false)) {
      return InvalidArgumentError("task text contains tab/newline");
    }
    out << task.label << '\t' << task.truth << '\t';
    for (size_t c = 0; c < task.choices.size(); ++c) {
      if (HasForbidden(task.choices[c], /*forbid_pipe=*/true)) {
        return InvalidArgumentError("choice contains tab/newline/pipe");
      }
      if (c > 0) out << '|';
      out << task.choices[c];
    }
    out << '\t' << task.text << '\n';
  }
  out.flush();
  if (!out.good()) return IoError("write failed: " + path);
  return OkStatus();
}

StatusOr<Dataset> LoadDatasetTsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return IoError("cannot open " + path);

  auto malformed = [&path](size_t line_number, const std::string& what) {
    return DataLossError("bad dataset TSV " + path + " line " +
                         std::to_string(line_number) + ": " + what);
  };

  Dataset dataset;
  std::string line;
  size_t line_number = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream fields(line.substr(1));
      std::string directive;
      fields >> directive;
      if (directive == "docstasks") {
        saw_header = true;
      } else if (directive == "name") {
        std::string rest;
        std::getline(fields, rest);
        dataset.name = Trim(rest);
      } else if (directive == "label") {
        size_t index = 0, domain = 0;
        std::string name;
        if (!(fields >> index >> domain >> name)) {
          return malformed(line_number, "label directive");
        }
        if (dataset.domain_labels.size() <= index) {
          dataset.domain_labels.resize(index + 1);
          dataset.label_to_domain.resize(index + 1, 0);
        }
        dataset.domain_labels[index] = name;
        dataset.label_to_domain[index] = domain;
      } else {
        return malformed(line_number, "unknown directive '" + directive + "'");
      }
      continue;
    }
    if (!saw_header) {
      return DataLossError("missing '# docstasks 1' header: " + path);
    }
    const auto columns = Split(line, "\t");
    if (columns.size() != 4) {
      return malformed(line_number, "expected 4 tab-separated columns");
    }
    TaskSpec task;
    std::istringstream label_field(columns[0]);
    std::istringstream truth_field(columns[1]);
    if (!(label_field >> task.label) || !(truth_field >> task.truth)) {
      return malformed(line_number, "non-numeric label/truth");
    }
    if (task.label >= dataset.domain_labels.size()) {
      return malformed(line_number, "label out of range");
    }
    task.true_domain = dataset.label_to_domain[task.label];
    task.choices = Split(columns[2], "|");
    if (task.choices.size() < 2) {
      return malformed(line_number, "fewer than 2 choices");
    }
    if (task.truth >= task.choices.size()) {
      return malformed(line_number, "truth out of range");
    }
    task.text = columns[3];
    dataset.tasks.push_back(std::move(task));
  }
  if (!saw_header) {
    return DataLossError("missing '# docstasks 1' header: " + path);
  }
  return dataset;
}

}  // namespace docs::datasets
