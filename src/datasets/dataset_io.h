#ifndef DOCS_DATASETS_DATASET_IO_H_
#define DOCS_DATASETS_DATASET_IO_H_

#include <string>

#include "common/status.h"
#include "datasets/dataset.h"

namespace docs::datasets {

/// Writes a dataset as a TSV file:
///
///   # docstasks 1
///   # name <dataset name>
///   # label <index> <canonical_domain_index> <label name>
///   <label>\t<truth>\t<choice|choice|...>\t<text>
///
/// Choices may contain anything except tab, newline and '|'; the text may
/// contain anything except tab and newline. This lets a downstream user run
/// the full pipeline (DVE, TI, OTA, the benches) on their own exported
/// crowdsourcing tasks instead of the synthetic generators.
[[nodiscard]] Status SaveDatasetTsv(const Dataset& dataset, const std::string& path);

/// Loads a dataset written by SaveDatasetTsv (or hand-authored in the same
/// format). Structural problems (unknown label, truth out of range, bad
/// column count) fail with DataLoss naming the offending line.
[[nodiscard]] StatusOr<Dataset> LoadDatasetTsv(const std::string& path);

}  // namespace docs::datasets

#endif  // DOCS_DATASETS_DATASET_IO_H_
