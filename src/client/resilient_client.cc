#include "client/resilient_client.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace docs::client {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool IsTimeout(const Status& status) {
  return status.message().find("timed out") != std::string::npos;
}

}  // namespace

ResilientCrowdClient::ResilientCrowdClient(ResilientClientOptions options)
    : options_(std::move(options)), client_(options_.socket) {
  if (options_.nonce == 0) {
    options_.nonce = NowMs() ^ (reinterpret_cast<uintptr_t>(this) << 16);
  }
  jitter_state_ = options_.nonce;
  if (options_.max_attempts == 0) options_.max_attempts = 1;
}

bool ResilientCrowdClient::IsRetryable(StatusCode code) {
  // kUnavailable: the gateway said "try again" (overload, draining, WAL
  // briefly unwritable). kIoError: the transport died or timed out — the
  // request may or may not have been applied, which is exactly what the
  // request_id dedup makes safe to retry. kDataLoss: the response stream
  // lost framing (a crash mid-write); same uncertainty, same remedy.
  return code == StatusCode::kUnavailable || code == StatusCode::kIoError ||
         code == StatusCode::kDataLoss;
}

double ResilientCrowdClient::NextJitter() {
  // Top 53 bits → [0, 1), mapped to [0.5, 1.5).
  const double unit =
      static_cast<double>(SplitMix64(&jitter_state_) >> 11) / 9007199254740992.0;
  return 0.5 + unit;
}

Status ResilientCrowdClient::EnsureConnected() {
  if (client_.connected()) return OkStatus();
  Status connected = client_.Connect(options_.host, options_.port);
  if (connected.ok()) {
    if (ever_connected_) reconnects_.fetch_add(1, std::memory_order_relaxed);
    ever_connected_ = true;
  }
  return connected;
}

Status ResilientCrowdClient::RunWithRetry(
    const std::function<Status(size_t attempt)>& op) {
  const uint64_t start_ms = NowMs();
  double backoff_ms = static_cast<double>(options_.initial_backoff_ms);
  Status last = OkStatus();
  for (size_t attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      const double capped =
          std::min(backoff_ms, static_cast<double>(options_.max_backoff_ms));
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(capped * NextJitter()));
      backoff_ms *= options_.backoff_multiplier;
    }
    last = EnsureConnected();
    if (last.ok()) {
      last = op(attempt);
      if (last.ok() || !IsRetryable(last.code())) return last;
    }
    if (IsTimeout(last)) timeouts_.fetch_add(1, std::memory_order_relaxed);
    if (options_.op_deadline_ms > 0 &&
        NowMs() - start_ms >= options_.op_deadline_ms) {
      break;  // budget exhausted: surface the last transient error
    }
  }
  return last;
}

Status ResilientCrowdClient::RequestTasks(const std::string& worker_id,
                                          uint32_t k,
                                          std::vector<uint64_t>* tasks) {
  return RunWithRetry([&](size_t) {
    if (tasks != nullptr) tasks->clear();
    return client_.RequestTasks(worker_id, k, tasks);
  });
}

Status ResilientCrowdClient::SubmitAnswer(const std::string& worker_id,
                                          uint64_t task, uint32_t choice) {
  // Same id across every retry of this submission; never 0 (0 opts out of
  // dedup). The namespace in the high half folds *both* halves of the nonce
  // so clients whose nonces differ only in the top 32 bits still draw from
  // disjoint id spaces; low bits count submissions.
  const uint64_t ns = ((options_.nonce >> 32) ^ options_.nonce) | 1;
  const uint64_t request_id =
      (ns << 32) | static_cast<uint32_t>(++next_request_seq_);
  return RunWithRetry([&](size_t attempt) {
    Status submitted =
        client_.SubmitAnswer(worker_id, task, choice, request_id);
    if (attempt > 0 && submitted.code() == StatusCode::kAlreadyExists) {
      // An earlier attempt was applied but its ack never arrived (or the
      // dedup window was rebuilt across a checkpoint hole and the duplicate
      // surfaced from the (worker, task) check instead). Either way the
      // answer is in: this retry succeeded.
      duplicate_acks_.fetch_add(1, std::memory_order_relaxed);
      return OkStatus();
    }
    return submitted;
  });
}

Status ResilientCrowdClient::ExpireLeases(
    uint64_t now, std::vector<net::WireExpiredLease>* expired) {
  return RunWithRetry(
      [&](size_t) { return client_.ExpireLeases(now, expired); });
}

Status ResilientCrowdClient::Stats(net::StatsResp* stats) {
  return RunWithRetry([&](size_t) { return client_.Stats(stats); });
}

ResilientClientStats ResilientCrowdClient::stats() const {
  ResilientClientStats out;
  out.retries = retries_.load(std::memory_order_relaxed);
  out.reconnects = reconnects_.load(std::memory_order_relaxed);
  out.timeouts = timeouts_.load(std::memory_order_relaxed);
  out.duplicate_acks = duplicate_acks_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace docs::client
