#include "client/crowd_client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "common/string_utils.h"

namespace docs::client {
namespace {

Status Errno(const char* what) {
  return IoError(std::string(what) + ": " + ErrnoString(errno));
}

}  // namespace

CrowdClient::CrowdClient(CrowdClientOptions options) : options_(options) {}

CrowdClient::~CrowdClient() { Close(); }

Status CrowdClient::Connect(const std::string& host, uint16_t port) {
  if (connected()) return FailedPreconditionError("already connected");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("not an IPv4 address: " + host);
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Errno("socket");
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = Errno("connect");
    Close();
    return status;
  }
  const int enable = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  const auto to_timeval = [](uint64_t ms) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
    return tv;
  };
  if (options_.recv_timeout_ms > 0) {
    const timeval tv = to_timeval(options_.recv_timeout_ms);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  if (options_.send_timeout_ms > 0) {
    const timeval tv = to_timeval(options_.send_timeout_ms);
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  if (options_.send_buffer_bytes > 0) {
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &options_.send_buffer_bytes,
                 sizeof(options_.send_buffer_bytes));
  }
  decoder_ = net::FrameDecoder();
  return OkStatus();
}

void CrowdClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status CrowdClient::Call(const net::Frame& request, net::Frame* response) {
  if (!connected()) return FailedPreconditionError("not connected");
  const net::MessageType expect = net::ResponseTypeFor(request.type);
  const std::string encoded = net::EncodeFrame(request);
  size_t sent = 0;
  while (sent < encoded.size()) {
    const ssize_t n = ::send(fd_, encoded.data() + sent,
                             encoded.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = (errno == EAGAIN || errno == EWOULDBLOCK)
                          ? IoError("send timed out")
                          : Errno("send");
      Close();
      return status;
    }
    sent += static_cast<size_t>(n);
  }
  char buf[4096];
  for (;;) {
    std::string error;
    const net::FrameDecoder::Result result = decoder_.Next(response, &error);
    if (result == net::FrameDecoder::Result::kFrame) {
      if (response->type != expect) {
        Close();
        return DataLossError("out-of-order response frame from gateway");
      }
      return OkStatus();
    }
    if (result == net::FrameDecoder::Result::kError) {
      Close();
      return DataLossError("malformed response from gateway: " + error);
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      Close();
      return IoError("gateway closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = (errno == EAGAIN || errno == EWOULDBLOCK)
                          ? IoError("receive timed out")
                          : Errno("recv");
      Close();
      return status;
    }
    decoder_.Append(buf, static_cast<size_t>(n));
  }
}

Status CrowdClient::RequestTasks(const std::string& worker_id, uint32_t k,
                                 std::vector<uint64_t>* tasks) {
  net::RequestTasksReq req;
  req.worker_id = worker_id;
  req.k = k;
  net::Frame response;
  Status called = Call(net::EncodeRequestTasksReq(req), &response);
  if (!called.ok()) return called;
  Status server = net::FrameStatus(response);
  if (!server.ok()) return server;
  net::RequestTasksResp resp;
  Status decoded = net::DecodeRequestTasksResp(response, &resp);
  if (!decoded.ok()) return decoded;
  if (tasks != nullptr) *tasks = std::move(resp.tasks);
  return OkStatus();
}

Status CrowdClient::SubmitAnswer(const std::string& worker_id, uint64_t task,
                                 uint32_t choice, uint64_t request_id) {
  net::SubmitAnswerReq req;
  req.worker_id = worker_id;
  req.task = task;
  req.choice = choice;
  req.request_id = request_id;
  net::Frame response;
  Status called = Call(net::EncodeSubmitAnswerReq(req), &response);
  if (!called.ok()) return called;
  return net::FrameStatus(response);
}

Status CrowdClient::ExpireLeases(uint64_t now,
                                 std::vector<net::WireExpiredLease>* expired) {
  net::ExpireLeasesReq req;
  req.now = now;
  net::Frame response;
  Status called = Call(net::EncodeExpireLeasesReq(req), &response);
  if (!called.ok()) return called;
  Status server = net::FrameStatus(response);
  if (!server.ok()) return server;
  net::ExpireLeasesResp resp;
  Status decoded = net::DecodeExpireLeasesResp(response, &resp);
  if (!decoded.ok()) return decoded;
  if (expired != nullptr) {
    expired->insert(expired->end(), resp.expired.begin(), resp.expired.end());
  }
  return OkStatus();
}

Status CrowdClient::Stats(net::StatsResp* stats) {
  net::Frame response;
  Status called = Call(net::EncodeStatsReq(), &response);
  if (!called.ok()) return called;
  Status server = net::FrameStatus(response);
  if (!server.ok()) return server;
  return net::DecodeStatsResp(response, stats);
}

}  // namespace docs::client
