#ifndef DOCS_CLIENT_RESILIENT_CLIENT_H_
#define DOCS_CLIENT_RESILIENT_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "client/crowd_client.h"
#include "common/status.h"
#include "net/wire.h"

namespace docs::client {

struct ResilientClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Socket options for each underlying connection. Always set a receive
  /// timeout: a gateway killed mid-response otherwise blocks the retry loop
  /// until TCP gives up.
  CrowdClientOptions socket;
  /// Attempt budget per operation (first try + retries).
  size_t max_attempts = 8;
  /// Exponential backoff between attempts, with ±50% deterministic jitter
  /// so a fleet of clients retrying into a restarting gateway does not
  /// stampede in lockstep.
  uint64_t initial_backoff_ms = 2;
  double backoff_multiplier = 2.0;
  uint64_t max_backoff_ms = 250;
  /// Per-operation wall-clock budget in milliseconds; once exceeded no
  /// further retry is attempted (the last error is returned). 0 = only the
  /// attempt budget bounds the operation.
  uint64_t op_deadline_ms = 30000;
  /// Namespace for generated request ids and jitter seed. 0 derives one
  /// from the clock and object identity; set it explicitly for
  /// reproducibility.
  uint64_t nonce = 0;
};

/// Counters exposed for the chaos harness and bench_server reporting.
struct ResilientClientStats {
  uint64_t retries = 0;         ///< attempts after the first, any op
  uint64_t reconnects = 0;      ///< successful re-Connects after a drop
  uint64_t timeouts = 0;        ///< attempts that failed on a send/recv timeout
  uint64_t duplicate_acks = 0;  ///< retried submits acked as already-applied
};

/// Retry/reconnect wrapper over CrowdClient: the client side of the
/// exactly-once contract (DESIGN.md §12).
///
/// Retry policy: kUnavailable (overload shed, WAL unavailable, draining
/// restart), kIoError (torn connection, timeout) and kDataLoss (response
/// stream lost framing mid-crash) are retried with exponential backoff +
/// jitter after reconnecting; every other code is the server's verdict on a
/// delivered request and is returned as-is. A SubmitAnswer retry resends
/// the *same* request_id, so the gateway's dedup window (or, after a
/// checkpoint-hole recovery, the duplicate-answer check) acknowledges it
/// without double-applying; kAlreadyExists on a retry therefore counts as
/// success (`duplicate_acks`).
///
/// Not thread-safe: one instance per driving thread, like CrowdClient.
class ResilientCrowdClient {
 public:
  explicit ResilientCrowdClient(ResilientClientOptions options);

  [[nodiscard]] Status RequestTasks(const std::string& worker_id, uint32_t k,
                                    std::vector<uint64_t>* tasks);
  /// Assigns a fresh request_id from this client's nonce namespace and
  /// submits with retry. Exactly-once: the answer is applied at most once
  /// server-side no matter how many transport failures the retries ride
  /// through.
  [[nodiscard]] Status SubmitAnswer(const std::string& worker_id,
                                    uint64_t task, uint32_t choice);
  [[nodiscard]] Status ExpireLeases(uint64_t now,
                                    std::vector<net::WireExpiredLease>*
                                        expired);
  [[nodiscard]] Status Stats(net::StatsResp* stats);

  void Close() { client_.Close(); }
  bool connected() const { return client_.connected(); }

  ResilientClientStats stats() const;

  /// True for the codes the retry loop considers transient.
  static bool IsRetryable(StatusCode code);

 private:
  /// Runs `op` under the retry policy. `op` gets the 0-based attempt index
  /// (SubmitAnswer uses it to treat kAlreadyExists on a retry as a
  /// duplicate ack).
  [[nodiscard]] Status RunWithRetry(
      const std::function<Status(size_t attempt)>& op);
  [[nodiscard]] Status EnsureConnected();
  /// Deterministic jitter in [0.5, 1.5) from the nonce-seeded sequence.
  double NextJitter();

  ResilientClientOptions options_;
  CrowdClient client_;
  uint64_t jitter_state_ = 0;
  uint64_t next_request_seq_ = 0;
  bool ever_connected_ = false;

  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> duplicate_acks_{0};
};

}  // namespace docs::client

#endif  // DOCS_CLIENT_RESILIENT_CLIENT_H_
