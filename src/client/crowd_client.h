#ifndef DOCS_CLIENT_CROWD_CLIENT_H_
#define DOCS_CLIENT_CROWD_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/wire.h"

namespace docs::client {

struct CrowdClientOptions {
  /// Receive timeout per call in milliseconds (SO_RCVTIMEO); 0 blocks
  /// forever. A hung server then surfaces as IoError instead of a wedged
  /// caller — tests and the load generator always set this.
  uint64_t recv_timeout_ms = 0;
  /// Send timeout in milliseconds (SO_SNDTIMEO); 0 blocks forever. A peer
  /// that stops *reading* fills the socket buffers and would otherwise
  /// block send() indefinitely — the slow-peer regression test covers this.
  uint64_t send_timeout_ms = 0;
  /// When nonzero, shrinks the kernel send buffer (SO_SNDBUF). Test hook:
  /// the slow-peer test uses a tiny buffer to make send() block quickly.
  int send_buffer_bytes = 0;
};

/// Blocking client for the crowd gateway: one TCP connection, one
/// request/response in flight at a time (the wire protocol supports
/// pipelining; this client keeps the simple synchronous discipline the
/// simulated workers and the load generator want).
///
/// Every call returns the server-reported Status verbatim when the round
/// trip succeeds — kInvalidArgument from a bad submission is the *server's*
/// verdict, transported over the wire. Transport failures (connect, torn
/// connection, timeout) come back as IoError; a response that breaks
/// framing is DataLoss.
class CrowdClient {
 public:
  explicit CrowdClient(CrowdClientOptions options = {});
  ~CrowdClient();

  CrowdClient(const CrowdClient&) = delete;
  CrowdClient& operator=(const CrowdClient&) = delete;

  /// Connects to `host:port` (IPv4 dotted-quad, e.g. "127.0.0.1").
  [[nodiscard]] Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Asks the gateway for up to `k` tasks for `worker_id` (registering the
  /// worker on first contact, exactly like the in-process facade).
  [[nodiscard]] Status RequestTasks(const std::string& worker_id, uint32_t k,
                                    std::vector<uint64_t>* tasks);

  /// `request_id`, when nonzero, is the exactly-once dedup key: a retry
  /// that resends the same id against a durable gateway is acknowledged
  /// without double-applying (ResilientCrowdClient relies on this).
  [[nodiscard]] Status SubmitAnswer(const std::string& worker_id,
                                    uint64_t task, uint32_t choice,
                                    uint64_t request_id = 0);

  /// Drives a lease-expiry sweep with logical time `now`; the reclaimed
  /// grants are appended to `*expired` (may be null when only the side
  /// effect matters).
  [[nodiscard]] Status ExpireLeases(uint64_t now,
                                    std::vector<net::WireExpiredLease>*
                                        expired);

  [[nodiscard]] Status Stats(net::StatsResp* stats);

  /// The raw socket fd (-1 when disconnected). Test hook only.
  int native_handle() const { return fd_; }

 private:
  /// One synchronous round trip: send `request`, read frames until the
  /// matching response arrives. Closes the connection on transport errors
  /// (the stream state is unknown afterwards).
  [[nodiscard]] Status Call(const net::Frame& request, net::Frame* response);

  CrowdClientOptions options_;
  int fd_ = -1;
  net::FrameDecoder decoder_;
};

}  // namespace docs::client

#endif  // DOCS_CLIENT_CROWD_CLIENT_H_
