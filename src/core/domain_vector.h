#ifndef DOCS_CORE_DOMAIN_VECTOR_H_
#define DOCS_CORE_DOMAIN_VECTOR_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "kb/knowledge_base.h"
#include "nlp/entity_linker.h"

namespace docs::core {

/// The step-1 output of DVE for one detected entity e_i: the candidate-link
/// distribution p_i and the indicator vector h_{i,j} of each candidate
/// concept (Section 3, Table 2).
struct EntityObservation {
  /// p_i: probability that the link to the j-th candidate is correct.
  std::vector<double> link_probabilities;
  /// h_{i,j} in {0,1}^m, parallel to link_probabilities.
  std::vector<std::vector<uint8_t>> indicators;
};

/// Computes the domain vector r^t via Algorithm 1 in O(c * m^2 * |E_t|^3)
/// time. Follows the paper exactly, including the dm != 0 guard: linkings
/// whose aggregated indicator is all-zero contribute nothing, so the result
/// may sum to less than 1 when such linkings have positive probability.
/// Returns a vector of m zeros when `entities` is empty.
std::vector<double> ComputeDomainVector(
    const std::vector<EntityObservation>& entities, size_t num_domains);

/// Reference implementation of Equation 1 by enumerating all |Ω| = prod |p_i|
/// linkings — exponential; used as the correctness oracle in tests and as the
/// "Enumeration" column of Table 3. `max_linkings` caps the work: when |Ω|
/// exceeds it the function returns an empty vector (the Table 3 harness
/// reports these as "> cap", mirroring the paper's "> 1 day" entries).
std::vector<double> ComputeDomainVectorByEnumeration(
    const std::vector<EntityObservation>& entities, size_t num_domains,
    uint64_t max_linkings = UINT64_MAX);

/// Number of linkings |Ω| for an entity set (saturates at UINT64_MAX).
uint64_t CountLinkings(const std::vector<EntityObservation>& entities);

/// End-to-end DVE: entity linking against the KB followed by Algorithm 1.
/// This is the DVE box of Figure 1.
class DomainVectorEstimator {
 public:
  /// `knowledge_base` must outlive the estimator.
  explicit DomainVectorEstimator(const kb::KnowledgeBase* knowledge_base,
                                 nlp::EntityLinkerOptions linker_options = {});

  /// Converts linker output into step-1 observations.
  static std::vector<EntityObservation> ObservationsFromLinkedEntities(
      const kb::KnowledgeBase& knowledge_base,
      const std::vector<nlp::LinkedEntity>& entities);

  /// Returns the task's domain vector. The raw Algorithm-1 output is
  /// normalized; when the text contains no linkable entity (or every linking
  /// is domain-less) the result is the uniform distribution, so downstream
  /// modules always receive a valid distribution.
  std::vector<double> Estimate(std::string_view text) const;

  /// Same, but also exposes the detected entities for callers that want them.
  std::vector<double> EstimateWithEntities(
      std::string_view text, std::vector<nlp::LinkedEntity>* entities) const;

  const nlp::EntityLinker& linker() const { return linker_; }

 private:
  const kb::KnowledgeBase* kb_;
  nlp::EntityLinker linker_;
};

}  // namespace docs::core

#endif  // DOCS_CORE_DOMAIN_VECTOR_H_
