#include "core/domain_vector.h"

#include <unordered_map>

#include "common/check.h"
#include "common/math_utils.h"

namespace docs::core {
namespace {

// Packs a (numerator, denominator) hash-map key. nm <= |E_t| and
// dm <= m * |E_t|, so 32 bits per half is ample.
uint64_t PackKey(uint32_t nm, uint32_t dm) {
  return (static_cast<uint64_t>(nm) << 32) | dm;
}

// Caller contract shared by both Algorithm 1 implementations: every candidate
// has an indicator row spanning all domains, and link probabilities are
// probabilities. Both DP and enumeration index indicators[j][k] for every
// j < |probabilities| and k < m, so a short row is an out-of-bounds read.
void CheckObservations(const std::vector<EntityObservation>& entities,
                       size_t num_domains) {
  for (const auto& entity : entities) {
    DOCS_CHECK_EQ(entity.indicators.size(), entity.link_probabilities.size())
        << "every link candidate needs a domain-indicator row";
    for (const auto& indicator : entity.indicators) {
      DOCS_CHECK_GE(indicator.size(), num_domains)
          << "domain indicator shorter than the KB domain count";
    }
    CheckUnitInterval(entity.link_probabilities, 1e-9,
                      "entity link probabilities");
  }
}

}  // namespace

uint64_t CountLinkings(const std::vector<EntityObservation>& entities) {
  uint64_t count = 1;
  for (const auto& entity : entities) {
    const uint64_t c = entity.link_probabilities.size();
    if (c == 0) return 0;
    if (count > UINT64_MAX / c) return UINT64_MAX;
    count *= c;
  }
  return count;
}

std::vector<double> ComputeDomainVector(
    const std::vector<EntityObservation>& entities, size_t num_domains) {
  CheckObservations(entities, num_domains);
  std::vector<double> result(num_domains, 0.0);
  if (entities.empty()) return result;

  // Pre-compute x_{i,j} = sum_k h_{i,j,k} (line 1 of Algorithm 1).
  std::vector<std::vector<uint32_t>> x(entities.size());
  for (size_t i = 0; i < entities.size(); ++i) {
    x[i].resize(entities[i].indicators.size());
    for (size_t j = 0; j < entities[i].indicators.size(); ++j) {
      uint32_t total = 0;
      for (uint8_t h : entities[i].indicators[j]) total += h;
      x[i][j] = total;
    }
  }

  std::unordered_map<uint64_t, double> map;
  std::unordered_map<uint64_t, double> tmp;
  for (size_t k = 0; k < num_domains; ++k) {
    map.clear();
    map[PackKey(0, 0)] = 1.0;  // line 5
    for (size_t i = 0; i < entities.size(); ++i) {  // lines 6-14
      tmp.clear();
      const auto& probs = entities[i].link_probabilities;
      const auto& inds = entities[i].indicators;
      for (const auto& [key, value] : map) {
        const uint32_t nm = static_cast<uint32_t>(key >> 32);
        const uint32_t dm = static_cast<uint32_t>(key & 0xffffffffULL);
        for (size_t j = 0; j < probs.size(); ++j) {
          const uint64_t new_key = PackKey(nm + inds[j][k], dm + x[i][j]);
          tmp[new_key] += value * probs[j];
        }
      }
      map.swap(tmp);
    }
    for (const auto& [key, value] : map) {  // lines 15-17
      const uint32_t nm = static_cast<uint32_t>(key >> 32);
      const uint32_t dm = static_cast<uint32_t>(key & 0xffffffffULL);
      if (dm != 0) {
        result[k] += (static_cast<double>(nm) / static_cast<double>(dm)) * value;
      }
    }
  }
  return result;
}

std::vector<double> ComputeDomainVectorByEnumeration(
    const std::vector<EntityObservation>& entities, size_t num_domains,
    uint64_t max_linkings) {
  CheckObservations(entities, num_domains);
  if (entities.empty()) return std::vector<double>(num_domains, 0.0);
  const uint64_t total_linkings = CountLinkings(entities);
  if (total_linkings == 0 || total_linkings > max_linkings) return {};

  std::vector<double> result(num_domains, 0.0);
  std::vector<size_t> pi(entities.size(), 0);  // current linking
  for (;;) {
    // Aggregate indicator and probability of this linking.
    double probability = 1.0;
    std::vector<uint32_t> aggregate(num_domains, 0);
    for (size_t i = 0; i < entities.size(); ++i) {
      probability *= entities[i].link_probabilities[pi[i]];
      const auto& h = entities[i].indicators[pi[i]];
      for (size_t k = 0; k < num_domains; ++k) aggregate[k] += h[k];
    }
    uint64_t denom = 0;
    for (uint32_t a : aggregate) denom += a;
    if (denom != 0) {
      for (size_t k = 0; k < num_domains; ++k) {
        result[k] += probability * static_cast<double>(aggregate[k]) /
                     static_cast<double>(denom);
      }
    }
    // Advance the odometer.
    size_t i = 0;
    while (i < entities.size()) {
      if (++pi[i] < entities[i].link_probabilities.size()) break;
      pi[i] = 0;
      ++i;
    }
    if (i == entities.size()) break;
  }
  return result;
}

DomainVectorEstimator::DomainVectorEstimator(
    const kb::KnowledgeBase* knowledge_base,
    nlp::EntityLinkerOptions linker_options)
    : kb_(knowledge_base), linker_(knowledge_base, linker_options) {}

std::vector<EntityObservation>
DomainVectorEstimator::ObservationsFromLinkedEntities(
    const kb::KnowledgeBase& knowledge_base,
    const std::vector<nlp::LinkedEntity>& entities) {
  std::vector<EntityObservation> observations;
  observations.reserve(entities.size());
  for (const auto& entity : entities) {
    EntityObservation obs;
    obs.link_probabilities.reserve(entity.candidates.size());
    obs.indicators.reserve(entity.candidates.size());
    for (const auto& candidate : entity.candidates) {
      obs.link_probabilities.push_back(candidate.probability);
      obs.indicators.push_back(
          knowledge_base.GetConcept(candidate.concept_id).domain_indicator);
    }
    if (!obs.link_probabilities.empty()) {
      observations.push_back(std::move(obs));
    }
  }
  return observations;
}

std::vector<double> DomainVectorEstimator::Estimate(
    std::string_view text) const {
  return EstimateWithEntities(text, nullptr);
}

std::vector<double> DomainVectorEstimator::EstimateWithEntities(
    std::string_view text, std::vector<nlp::LinkedEntity>* entities) const {
  std::vector<nlp::LinkedEntity> linked = linker_.Link(text);
  std::vector<EntityObservation> observations =
      ObservationsFromLinkedEntities(*kb_, linked);
  if (entities != nullptr) *entities = std::move(linked);

  const size_t m = kb_->num_domains();
  if (observations.empty()) return UniformDistribution(m);
  std::vector<double> r = ComputeDomainVector(observations, m);
  if (Sum(r) <= 1e-12) return UniformDistribution(m);
  NormalizeInPlace(r);
  DOCS_DCHECK_SIMPLEX(r, 1e-6, "DVE domain vector (Eq. 1)");
  return r;
}

}  // namespace docs::core
