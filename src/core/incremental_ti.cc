#include "core/incremental_ti.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_utils.h"

namespace docs::core {
namespace {

double Clamp(double q, double clamp) {
  return std::min(1.0 - clamp, std::max(clamp, q));
}

/// Mutation-log bound: past this many un-replayed entries a catching-up
/// benefit index would approach the cost of a rebuild anyway, so the log is
/// trimmed wholesale and stragglers rebuild (DESIGN.md §16).
constexpr size_t kMutationLogCapacity = 4096;

}  // namespace

IncrementalTruthInference::IncrementalTruthInference(
    std::vector<Task> tasks, TruthInferenceOptions options)
    : tasks_(std::move(tasks)), options_(options) {
  const size_t n = tasks_.size();
  log_numerators_.reserve(n);
  truth_matrices_.reserve(n);
  task_truth_.reserve(n);
  task_epoch_.assign(n, 1);
  answers_of_task_.resize(n);
  for (const Task& task : tasks_) {
    CheckUnitInterval(task.domain_vector, 1e-9,
                      "task domain vector (incremental TI prior)");
    const size_t m = task.domain_vector.size();
    const size_t l = task.num_choices;
    log_numerators_.emplace_back(m, l, 0.0);
    Matrix uniform(m, l, l == 0 ? 0.0 : 1.0 / static_cast<double>(l));
    truth_matrices_.push_back(uniform);
    std::vector<double> s = uniform.LeftMultiply(task.domain_vector);
    NormalizeInPlace(s);
    task_truth_.push_back(std::move(s));
  }
}

void IncrementalTruthInference::EnsureWorker(size_t worker) {
  while (workers_.size() <= worker) {
    WorkerState state;
    const size_t m = tasks_.empty() ? 0 : tasks_[0].domain_vector.size();
    state.stats.quality.assign(m, options_.default_quality);
    state.stats.weight.assign(m, 0.0);
    state.seed = state.stats;
    // state.answered stays empty: registration is O(m), not O(n).
    workers_.push_back(std::move(state));
  }
}

Status IncrementalTruthInference::SetWorkerQuality(
    size_t worker, const WorkerQuality& quality) {
  const size_t m = tasks_.empty() ? 0 : tasks_[0].domain_vector.size();
  if (quality.quality.size() != m || quality.weight.size() != m) {
    return InvalidArgumentError(
        "worker quality dimension mismatch: got " +
        std::to_string(quality.quality.size()) + " qualities / " +
        std::to_string(quality.weight.size()) + " weights, tasks span " +
        std::to_string(m) + " domains");
  }
  // Value validation stays Status-grade: seeds arrive from stores and
  // checkpoints, so a corrupt record must be reportable, not a crash.
  for (size_t k = 0; k < m; ++k) {
    const double q = quality.quality[k];
    if (!std::isfinite(q) || q < -1e-9 || q > 1.0 + 1e-9) {
      return InvalidArgumentError("worker quality[" + std::to_string(k) +
                                  "] = " + std::to_string(q) +
                                  " outside [0, 1]");
    }
    const double weight = quality.weight[k];
    if (!std::isfinite(weight) || weight < 0.0) {
      return InvalidArgumentError("worker weight[" + std::to_string(k) +
                                  "] = " + std::to_string(weight) +
                                  " is not a finite non-negative mass");
    }
  }
  EnsureWorker(worker);
  workers_[worker].stats = quality;
  workers_[worker].seed = quality;
  ++workers_[worker].epoch;  // quality vector replaced
  return OkStatus();
}

bool IncrementalTruthInference::HasAnswered(size_t worker, size_t task) const {
  // Out-of-range indices (a forged wire request, a stale caller) must read
  // as "not answered", never out of bounds; a task index past tasks_.size()
  // simply cannot be in the sorted answered list.
  if (worker >= workers_.size()) return false;
  const std::vector<size_t>& answered = workers_[worker].answered;
  return std::binary_search(answered.begin(), answered.end(), task);
}

const std::vector<size_t>& IncrementalTruthInference::answered_tasks(
    size_t worker) const {
  static const std::vector<size_t> kEmpty;
  if (worker >= workers_.size()) return kEmpty;
  return workers_[worker].answered;
}

Status IncrementalTruthInference::OnAnswer(size_t worker, size_t task,
                                           size_t choice) {
  if (task >= tasks_.size()) return InvalidArgumentError("task out of range");
  if (choice >= tasks_[task].num_choices) {
    return InvalidArgumentError("choice out of range");
  }
  EnsureWorker(worker);
  if (HasAnswered(worker, task)) {
    return FailedPreconditionError("worker already answered this task");
  }

  const Task& t = tasks_[task];
  const size_t m = t.domain_vector.size();
  const size_t l = t.num_choices;
  // s̃_i snapshot into reusable scratch: the update below needs the truth
  // vector from before this answer.
  old_truth_scratch_.assign(task_truth_[task].begin(), task_truth_[task].end());
  const std::vector<double>& old_truth = old_truth_scratch_;

  // --- Step 1: update M̂^(i), M^(i) and s_i only. -------------------------
  Matrix& log_numer = log_numerators_[task];
  Matrix& truth_matrix = truth_matrices_[task];
  row_scratch_.assign(l, 0.0);
  std::vector<double>& row = row_scratch_;
  for (size_t k = 0; k < m; ++k) {
    const double q =
        Clamp(workers_[worker].stats.quality[k], options_.quality_clamp);
    const double log_correct = std::log(q);
    const double log_wrong =
        std::log((1.0 - q) / static_cast<double>(l > 1 ? l - 1 : 1));
    for (size_t j = 0; j < l; ++j) {
      log_numer(k, j) += (j == choice) ? log_correct : log_wrong;
      row[j] = log_numer(k, j);
    }
    const double lse = LogSumExp(row);
    for (size_t j = 0; j < l; ++j) {
      truth_matrix(k, j) = std::exp(row[j] - lse);
    }
  }
  truth_matrix.LeftMultiplyInto(t.domain_vector, &task_truth_[task]);
  NormalizeInPlace(task_truth_[task]);
  const std::vector<double>& new_truth = task_truth_[task];

  // --- Step 2: update the qualities touched by this answer. ---------------
  // The effective mass behind a quality estimate is the accumulated weight
  // (seed weight + answered r-mass) plus the MAP prior pseudo-count; see
  // TruthInferenceOptions::quality_prior_strength.
  const double prior = options_.quality_prior_strength;
  // (1) The submitting worker w.
  WorkerQuality& wq = workers_[worker].stats;
  for (size_t k = 0; k < m; ++k) {
    const double rk = t.domain_vector[k];
    const double mass = wq.weight[k] + prior;
    const double denom = mass + rk;
    if (denom > 0.0) {
      wq.quality[k] =
          (wq.quality[k] * mass + new_truth[choice] * rk) / denom;
    }
    wq.weight[k] += rk;
  }
  DOCS_DCHECK_SIMPLEX(new_truth, 1e-6, "incremental task truth (Eq. 4)");
  DOCS_DCHECK_UNIT_INTERVAL(wq.quality, 1e-9,
                            "incremental worker quality (Eq. 5)");
  // (2) Every worker who answered this task before: their s_{i,j} moved from
  // s̃_{i,j} to s_{i,j}.
  for (const Answer& prior_answer : answers_of_task_[task]) {
    WorkerQuality& pq = workers_[prior_answer.worker].stats;
    const size_t j = prior_answer.choice;
    for (size_t k = 0; k < m; ++k) {
      const double rk = t.domain_vector[k];
      const double mass = pq.weight[k] + prior;
      if (mass <= 0.0 || rk == 0.0) continue;
      pq.quality[k] += (new_truth[j] - old_truth[j]) * rk / mass;
      // The retro-delta is a first-order correction, not a convex update:
      // across many answers the per-task telescoping sums can compound past
      // the probability range (and Eq. 4 then takes log of a negative
      // number). Clamp after every delta; RunFullInference replaces these
      // estimates with the exact batch values periodically.
      pq.quality[k] = std::clamp(pq.quality[k], 0.0, 1.0);
    }
  }

  Answer answer{task, worker, choice};
  answers_of_task_[task].push_back(answer);
  answers_.push_back(answer);
  std::vector<size_t>& answered = workers_[worker].answered;
  answered.insert(std::lower_bound(answered.begin(), answered.end(), task),
                  task);

  // Epoch bumps for the benefit cache: this task's inference state moved
  // (step 1), and so did the quality vector of the submitting worker and of
  // every retro-updated prior worker (step 2). The prior list names each
  // worker at most once (one answer per (worker, task)), so nobody is bumped
  // twice for one submission. The task also lands in the mutation log so
  // benefit indexes can repair it in place instead of rebuilding.
  ++task_epoch_[task];
  if (mutation_log_.size() >= kMutationLogCapacity) {
    mutation_log_begin_ += mutation_log_.size();
    mutation_log_.clear();
  }
  mutation_log_.push_back(task);
  ++workers_[worker].epoch;
  for (const Answer& prior_answer : answers_of_task_[task]) {
    if (prior_answer.worker != worker) ++workers_[prior_answer.worker].epoch;
  }
  return OkStatus();
}

void IncrementalTruthInference::RecomputeTask(size_t task) {
  DOCS_CHECK_LT(task, tasks_.size()) << "RecomputeTask on unknown task";
  const Task& t = tasks_[task];
  const size_t m = t.domain_vector.size();
  const size_t l = t.num_choices;
  Matrix& log_numer = log_numerators_[task];
  log_numer.Fill(0.0);
  for (size_t k = 0; k < m; ++k) {
    for (const Answer& answer : answers_of_task_[task]) {
      const double q = Clamp(workers_[answer.worker].stats.quality[k],
                             options_.quality_clamp);
      const double log_correct = std::log(q);
      const double log_wrong =
          std::log((1.0 - q) / static_cast<double>(l > 1 ? l - 1 : 1));
      for (size_t j = 0; j < l; ++j) {
        log_numer(k, j) += (j == answer.choice) ? log_correct : log_wrong;
      }
    }
  }
  Matrix& truth_matrix = truth_matrices_[task];
  // Per-thread scratch: RecomputeTask runs inside the RunFullInference
  // ParallelFor fan-out, so a member buffer would race; the row only carries
  // intermediates within one (task, domain) step, so reuse cannot affect the
  // result.
  thread_local std::vector<double> row;
  row.assign(l, 0.0);
  for (size_t k = 0; k < m; ++k) {
    for (size_t j = 0; j < l; ++j) row[j] = log_numer(k, j);
    const double lse = LogSumExp(row);
    for (size_t j = 0; j < l; ++j) {
      truth_matrix(k, j) = std::exp(row[j] - lse);
    }
  }
  truth_matrix.LeftMultiplyInto(t.domain_vector, &task_truth_[task]);
  NormalizeInPlace(task_truth_[task]);
  // No epoch bump here: RecomputeTask only runs inside the RunFullInference
  // fan-out, whose single generation bump already invalidates every cached
  // score in O(1) — walking the epoch array again would defeat that.
  DOCS_DCHECK_SIMPLEX(task_truth_[task], 1e-6,
                      "recomputed task truth (Eq. 4)");
}

void IncrementalTruthInference::RunFullInference() {
  const size_t threads = EffectiveThreadCount(options_.num_threads);
  if (threads > 1 &&
      (pool_ == nullptr || pool_->num_threads() != threads)) {
    pool_ = std::make_unique<ThreadPool>(threads);
  }
  RunFullInference(threads > 1 ? pool_.get() : nullptr);
}

void IncrementalTruthInference::RunFullInference(ThreadPool* pool) {
  std::vector<WorkerQuality> seeds;
  seeds.reserve(workers_.size());
  for (const auto& state : workers_) seeds.push_back(state.seed);

  TruthInference engine(options_);
  TruthInferenceResult result =
      engine.Run(tasks_, workers_.size(), answers_, &seeds, pool);

  for (size_t w = 0; w < workers_.size(); ++w) {
    workers_[w].stats = result.worker_quality[w];
  }
  // O(1) invalidation: the batch re-run replaces every quality vector and
  // every posterior at once, so instead of walking all task and worker
  // epochs (the pre-§16 behavior) a single generation bump stales every
  // cached (task, worker) benefit and every benefit index. The mutation log
  // is trimmed too — the entries it held are subsumed by the rebuilds the
  // generation bump forces.
  ++generation_;
  mutation_log_begin_ += mutation_log_.size();
  mutation_log_.clear();
  // Rebuild the incremental caches so later OnAnswer calls continue from the
  // converged state. Every task owns its cache slots, so the fan-out is
  // bit-identical to the sequential loop for any thread count.
  ParallelFor(pool, tasks_.size(), [&](size_t i) { RecomputeTask(i); });
}

std::vector<size_t> IncrementalTruthInference::InferredChoices() const {
  std::vector<size_t> choices(tasks_.size(), 0);
  for (size_t i = 0; i < tasks_.size(); ++i) {
    if (!task_truth_[i].empty()) choices[i] = ArgMax(task_truth_[i]);
  }
  return choices;
}

}  // namespace docs::core
