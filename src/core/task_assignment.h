#ifndef DOCS_CORE_TASK_ASSIGNMENT_H_
#define DOCS_CORE_TASK_ASSIGNMENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/matrix.h"
#include "common/parallel.h"
#include "core/types.h"

namespace docs::core {

/// Reusable scratch arena for the fused benefit kernel. One instance per
/// thread: the serving loops keep a thread_local arena so repeated Benefit
/// calls never touch the heap once the vectors have grown to the campaign's
/// (m, l) shape. Contents are meaningless between calls.
struct BenefitScratch {
  std::vector<double> clamped;       // Clamp(q_k) per domain
  std::vector<double> wrong_answer;  // Theorem 2's (1-q)/(l-1) term per domain
  std::vector<double> wrong_update;  // Theorem 3's off-answer factor per domain
  std::vector<double> posterior;     // r x M^(i)|a, one choice at a time
};

/// Theorem 2: probability that worker with quality `q` gives choice `a` to
/// the task, given its current matrix M^(i):
///   Pr(v^w_i = a | V(i)) = sum_k r_k [ q_k M_{k,a} + (1-q_k)/(l-1) (1-M_{k,a}) ].
double AnswerProbability(const Task& task, const Matrix& truth_matrix,
                         const std::vector<double>& worker_quality, size_t a,
                         double quality_clamp = 0.01);

/// Theorem 3: the updated matrix M^(i)|a after the worker answers `a`.
Matrix UpdatedTruthMatrix(const Task& task, const Matrix& truth_matrix,
                          const std::vector<double>& worker_quality, size_t a,
                          double quality_clamp = 0.01);

/// Equation 8: the expected posterior entropy
///   H(ŝ_i) = sum_a H(r x M^(i)|a) Pr(v^w_i = a | V(i)).
double ExpectedPosteriorEntropy(const Task& task, const Matrix& truth_matrix,
                                const std::vector<double>& worker_quality,
                                double quality_clamp = 0.01);

/// Fused Eq. 8: one pass per (choice, domain) that folds Theorems 2-3 and
/// the posterior projection together without materializing M^(i)|a. The
/// per-(worker, domain) clamp+wrong-factor precomputation is hoisted out of
/// the choice loop into `scratch`, and every intermediate lives in the
/// scratch arena — zero heap allocations once the arena has warmed up.
/// Bit-identical to the allocating reference above (same floating-point
/// operations in the same order); tests/ota_test.cc asserts exact equality.
double ExpectedPosteriorEntropy(const Task& task, const Matrix& truth_matrix,
                                const std::vector<double>& worker_quality,
                                double quality_clamp, BenefitScratch* scratch);

/// Definition 5: B(t_i) = H(s_i) - H(ŝ_i), the expected ambiguity reduction
/// if the worker answers the task.
double Benefit(const Task& task, const Matrix& truth_matrix,
               const std::vector<double>& task_truth,
               const std::vector<double>& worker_quality,
               double quality_clamp = 0.01);

/// Definition 5 on the fused, allocation-free kernel. The reference overload
/// above is retained as the spec oracle (tests prove the two bit-identical)
/// and as the seed-era cold path for benchmarks.
double Benefit(const Task& task, const Matrix& truth_matrix,
               const std::vector<double>& task_truth,
               const std::vector<double>& worker_quality,
               double quality_clamp, BenefitScratch* scratch);

/// Equation 10 computed by brute force: enumerates all prod l_ti answer
/// combinations phi for the given task subset and sums Bphi weighted by the
/// combination probability. Exponential — used in tests to validate
/// Theorem 4 (B(Tk) = sum B(ti)) on small instances.
double BenefitOfSetBruteForce(const std::vector<Task>& tasks,
                              const std::vector<Matrix>& matrices,
                              const std::vector<std::vector<double>>& truths,
                              const std::vector<size_t>& subset,
                              const std::vector<double>& worker_quality,
                              double quality_clamp = 0.01);

/// One memoized benefit score of the epoch-tagged benefit cache. A task's
/// benefit for a given worker depends only on the task's inference state
/// (truth matrix + truth vector, versioned by a task epoch) and the worker's
/// quality vector (versioned by a worker epoch), so a cached score is valid
/// exactly while both epochs — and the engine's global invalidation
/// generation, which a full re-inference bumps instead of walking the epoch
/// arrays — still match. Live epochs start at 1; the zero-initialized entry
/// therefore never matches and reads as "never scored". Invalidation rules
/// are documented in DESIGN.md §11 and §16.
struct CachedBenefit {
  uint64_t task_epoch = 0;
  uint64_t worker_epoch = 0;
  uint64_t generation = 0;
  double benefit = 0.0;
};

/// One scored task, shared by every top-k selection path: the scan fallback,
/// the PICK helper below, and the per-worker benefit index's heap order.
struct ScoredTask {
  size_t task = 0;
  double value = 0.0;
};

/// THE tie-break order of every selection path: value descending, task index
/// ascending. A total order (no two distinct tasks ever compare equal), which
/// is what lets a heap ordered by it emit entries in exactly the sequence the
/// scan's nth_element + prefix sort produces — the bit-identity contract the
/// benefit index rests on (DESIGN.md §16).
inline bool BetterScored(const ScoredTask& a, const ScoredTask& b) {
  if (a.value != b.value) return a.value > b.value;
  return a.task < b.task;
}

/// PICK (shared): isolates the top `take = min(k, scored->size())` entries of
/// `*scored` with a linear nth_element, orders that prefix by BetterScored,
/// and returns the task indices. The scan paths in DocsSystem::RankCore and
/// TaskAssigner::SelectTopK both route through this one helper so their
/// tie-break order can never drift from the index's.
std::vector<size_t> SelectTopKFromScored(std::vector<ScoredTask>* scored,
                                         size_t k);

/// Per-worker ordered benefit index (DESIGN.md §16): a binary max-heap over
/// the worker's cached benefit scores, ordered by BetterScored, plus a
/// task -> heap-slot map so a stale score can be repaired in place (sift) in
/// O(log n). A fully warm RequestTasks then reads the top k eligible tasks
/// off the heap in O(k log n) instead of scanning and nth_element-ing all n
/// scores.
///
/// Freshness is tagged, never assumed: the index remembers which source
/// (live engine / published snapshot / standalone assigner), worker epoch and
/// invalidation generation it was built under, plus a cursor into that
/// source's change feed (the engine's mutation log, or the snapshot publish
/// epoch). The owner revalidates the tags before every use — a mismatch
/// means Rebuild, a cursor gap means targeted Repair of exactly the tasks
/// the feed names. Instances are NOT thread-safe; the owner serializes
/// access per worker (DocsSystem: the worker's shard stripe or the exclusive
/// lock).
class BenefitIndex {
 public:
  /// Which state the indexed scores were computed against. Tag mismatch =
  /// rebuild: scores from different sources are not comparable even when the
  /// numeric epochs coincide.
  enum class Source : uint8_t { kNone = 0, kLive, kSnapshot, kStandalone };

  /// True when the index still describes (source, worker_epoch, generation)
  /// over `num_tasks` tasks and only cursor catch-up may be needed.
  bool Fresh(Source source, uint64_t worker_epoch, uint64_t generation,
             size_t num_tasks) const {
    return source_ == source && worker_epoch_tag_ == worker_epoch &&
           generation_tag_ == generation && pos_.size() == num_tasks;
  }

  /// Change-feed cursor: the absolute mutation-log sequence (live source) or
  /// publish epoch (snapshot source) the heap is synced to.
  uint64_t cursor() const { return cursor_; }
  void set_cursor(uint64_t cursor) { cursor_ = cursor; }

  /// Number of indexed (non-excluded) tasks.
  size_t size() const { return heap_.size(); }
  bool contains(size_t task) const {
    return task < pos_.size() && pos_[task] != 0;
  }

  /// Rebuilds the heap from scratch for the given tags: every task except
  /// those in `exclude_sorted` (ascending; nullptr = none) is scored via
  /// `score` — fanned out over `pool` when non-null; each slot is
  /// independent, so the heap contents are thread-count invariant — then
  /// heapified bottom-up in O(n).
  void Rebuild(size_t num_tasks, Source source, uint64_t worker_epoch,
               uint64_t generation, uint64_t cursor,
               const std::vector<size_t>* exclude_sorted,
               const std::function<double(size_t)>& score, ThreadPool* pool);

  /// Replaces `task`'s indexed value and restores the heap invariant with
  /// one sift (O(log n)). No-op for tasks the index does not contain.
  void Repair(size_t task, double value);

  /// Reads the top `k` tasks satisfying `eligible` off the heap WITHOUT
  /// popping: a candidate-frontier walk that visits nodes in exact
  /// BetterScored order (the heap order is total, so a parent strictly
  /// precedes both children). Appends visited-node count to `*pops` and
  /// fills `*out` (cleared first). Returns false — partial `*out`, caller
  /// must fall back to the scan — once more than `budget` nodes were visited
  /// (a churn-heavy pass where many top entries are ineligible). Warm calls
  /// allocate nothing: the frontier scratch is a reused member.
  bool TrySelect(const std::function<bool(size_t)>& eligible, size_t k,
                 size_t budget, std::vector<size_t>* out, uint64_t* pops);

  /// O(n) heap-property + position-map audit behind DOCS_DCHECK; call sites
  /// compile it in only under DOCS_DEBUG_CHECKS builds (scripts/ci.sh strict
  /// stage).
  void CheckInvariant() const;

 private:
  void SiftUp(size_t slot);
  void SiftDown(size_t slot);
  void PlaceAt(size_t slot, const ScoredTask& entry) {
    heap_[slot] = entry;
    pos_[entry.task] = static_cast<uint32_t>(slot + 1);
  }

  std::vector<ScoredTask> heap_;
  /// task -> heap slot + 1; 0 = task not indexed (excluded at rebuild).
  std::vector<uint32_t> pos_;
  /// TrySelect's candidate frontier (heap slots), reused across calls.
  std::vector<uint32_t> frontier_;
  Source source_ = Source::kNone;
  uint64_t worker_epoch_tag_ = 0;
  uint64_t generation_tag_ = 0;
  uint64_t cursor_ = 0;
};

struct TaskAssignerOptions {
  double quality_clamp = 0.01;
  /// Threads applied to benefit scoring in SelectTopK. 0 = hardware
  /// concurrency, 1 = sequential. Each eligible task's benefit lands in its
  /// own slot before the (serial) top-k selection, so the returned ranking
  /// is identical for every thread count.
  size_t num_threads = 0;
};

/// The OTA module (Section 5.1): scores every eligible task with Definition
/// 5's benefit and returns the k best. Selection is linear via
/// std::nth_element (the PICK algorithm of the paper); the returned indices
/// are ordered by decreasing benefit.
class TaskAssigner {
 public:
  explicit TaskAssigner(TaskAssignerOptions options = {});

  /// Selects up to `k` tasks for the coming worker. `eligible[i]` marks the
  /// tasks in T - T(w) (not yet answered by the worker and still open).
  /// `matrices` and `truths` are the current M^(i) and s_i.
  std::vector<size_t> SelectTopK(const std::vector<Task>& tasks,
                                 const std::vector<Matrix>& matrices,
                                 const std::vector<std::vector<double>>& truths,
                                 const std::vector<double>& worker_quality,
                                 const std::vector<uint8_t>& eligible,
                                 size_t k) const;

  /// Epoch-aware SelectTopK: `task_epochs[i]` versions matrices[i]/truths[i]
  /// and `worker_epoch` versions worker_quality; `cache` (sized to the task
  /// count by the caller) carries scores across calls, each entry
  /// additionally tagged with `generation` so the caller can invalidate the
  /// whole cache by bumping one counter (DESIGN.md §16). Only tasks whose
  /// (task, worker, generation) key went stale are rescored — on a quiet
  /// system a repeat call costs O(eligible) cache probes plus the top-k
  /// selection instead of O(n l m l) benefit evaluations. Scores and
  /// therefore the returned ranking are bit-identical to the cacheless
  /// overload. Pass nullptrs to disable caching (the plain overload does
  /// exactly that).
  std::vector<size_t> SelectTopK(const std::vector<Task>& tasks,
                                 const std::vector<Matrix>& matrices,
                                 const std::vector<std::vector<double>>& truths,
                                 const std::vector<double>& worker_quality,
                                 const std::vector<uint8_t>& eligible, size_t k,
                                 const std::vector<uint64_t>* task_epochs,
                                 uint64_t worker_epoch,
                                 std::vector<CachedBenefit>* cache,
                                 uint64_t generation = 0) const;

  /// Index-accelerated SelectTopK for standalone assigner use: keeps `index`
  /// synced to the cache by an O(n) integer epoch scan (repairing any
  /// indexed task whose cache entry went stale; rebuilding on a worker-epoch
  /// or generation change) and then reads the top-k eligible tasks off the
  /// heap — so the expensive part, the O(n l m l) benefit evaluation, runs
  /// only for stale tasks, and a warm call does no benefit math at all.
  /// Selections are bit-identical to both overloads above. `index`, `cache`
  /// and `task_epochs` are all required. The serving system does better than
  /// the O(n) sync scan (it repairs from the engine's mutation log); this
  /// overload is the assigner-level building block and equivalence-test
  /// surface.
  std::vector<size_t> SelectTopK(const std::vector<Task>& tasks,
                                 const std::vector<Matrix>& matrices,
                                 const std::vector<std::vector<double>>& truths,
                                 const std::vector<double>& worker_quality,
                                 const std::vector<uint8_t>& eligible, size_t k,
                                 const std::vector<uint64_t>* task_epochs,
                                 uint64_t worker_epoch,
                                 std::vector<CachedBenefit>* cache,
                                 uint64_t generation, BenefitIndex* index) const;

  const TaskAssignerOptions& options() const { return options_; }

 private:
  TaskAssignerOptions options_;
  /// Lazy scoring pool (see TaskAssignerOptions::num_threads). Mutable
  /// because SelectTopK is logically const; a TaskAssigner instance is not
  /// itself safe for concurrent use.
  mutable std::unique_ptr<ThreadPool> pool_;
};

}  // namespace docs::core

#endif  // DOCS_CORE_TASK_ASSIGNMENT_H_
