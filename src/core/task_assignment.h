#ifndef DOCS_CORE_TASK_ASSIGNMENT_H_
#define DOCS_CORE_TASK_ASSIGNMENT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/matrix.h"
#include "common/parallel.h"
#include "core/types.h"

namespace docs::core {

/// Reusable scratch arena for the fused benefit kernel. One instance per
/// thread: the serving loops keep a thread_local arena so repeated Benefit
/// calls never touch the heap once the vectors have grown to the campaign's
/// (m, l) shape. Contents are meaningless between calls.
struct BenefitScratch {
  std::vector<double> clamped;       // Clamp(q_k) per domain
  std::vector<double> wrong_answer;  // Theorem 2's (1-q)/(l-1) term per domain
  std::vector<double> wrong_update;  // Theorem 3's off-answer factor per domain
  std::vector<double> posterior;     // r x M^(i)|a, one choice at a time
};

/// Theorem 2: probability that worker with quality `q` gives choice `a` to
/// the task, given its current matrix M^(i):
///   Pr(v^w_i = a | V(i)) = sum_k r_k [ q_k M_{k,a} + (1-q_k)/(l-1) (1-M_{k,a}) ].
double AnswerProbability(const Task& task, const Matrix& truth_matrix,
                         const std::vector<double>& worker_quality, size_t a,
                         double quality_clamp = 0.01);

/// Theorem 3: the updated matrix M^(i)|a after the worker answers `a`.
Matrix UpdatedTruthMatrix(const Task& task, const Matrix& truth_matrix,
                          const std::vector<double>& worker_quality, size_t a,
                          double quality_clamp = 0.01);

/// Equation 8: the expected posterior entropy
///   H(ŝ_i) = sum_a H(r x M^(i)|a) Pr(v^w_i = a | V(i)).
double ExpectedPosteriorEntropy(const Task& task, const Matrix& truth_matrix,
                                const std::vector<double>& worker_quality,
                                double quality_clamp = 0.01);

/// Fused Eq. 8: one pass per (choice, domain) that folds Theorems 2-3 and
/// the posterior projection together without materializing M^(i)|a. The
/// per-(worker, domain) clamp+wrong-factor precomputation is hoisted out of
/// the choice loop into `scratch`, and every intermediate lives in the
/// scratch arena — zero heap allocations once the arena has warmed up.
/// Bit-identical to the allocating reference above (same floating-point
/// operations in the same order); tests/ota_test.cc asserts exact equality.
double ExpectedPosteriorEntropy(const Task& task, const Matrix& truth_matrix,
                                const std::vector<double>& worker_quality,
                                double quality_clamp, BenefitScratch* scratch);

/// Definition 5: B(t_i) = H(s_i) - H(ŝ_i), the expected ambiguity reduction
/// if the worker answers the task.
double Benefit(const Task& task, const Matrix& truth_matrix,
               const std::vector<double>& task_truth,
               const std::vector<double>& worker_quality,
               double quality_clamp = 0.01);

/// Definition 5 on the fused, allocation-free kernel. The reference overload
/// above is retained as the spec oracle (tests prove the two bit-identical)
/// and as the seed-era cold path for benchmarks.
double Benefit(const Task& task, const Matrix& truth_matrix,
               const std::vector<double>& task_truth,
               const std::vector<double>& worker_quality,
               double quality_clamp, BenefitScratch* scratch);

/// Equation 10 computed by brute force: enumerates all prod l_ti answer
/// combinations phi for the given task subset and sums Bphi weighted by the
/// combination probability. Exponential — used in tests to validate
/// Theorem 4 (B(Tk) = sum B(ti)) on small instances.
double BenefitOfSetBruteForce(const std::vector<Task>& tasks,
                              const std::vector<Matrix>& matrices,
                              const std::vector<std::vector<double>>& truths,
                              const std::vector<size_t>& subset,
                              const std::vector<double>& worker_quality,
                              double quality_clamp = 0.01);

/// One memoized benefit score of the epoch-tagged benefit cache. A task's
/// benefit for a given worker depends only on the task's inference state
/// (truth matrix + truth vector, versioned by a task epoch) and the worker's
/// quality vector (versioned by a worker epoch), so a cached score is valid
/// exactly while both epochs still match. Live epochs start at 1; the
/// zero-initialized entry therefore never matches and reads as "never
/// scored". Invalidation rules are documented in DESIGN.md §11.
struct CachedBenefit {
  uint64_t task_epoch = 0;
  uint64_t worker_epoch = 0;
  double benefit = 0.0;
};

struct TaskAssignerOptions {
  double quality_clamp = 0.01;
  /// Threads applied to benefit scoring in SelectTopK. 0 = hardware
  /// concurrency, 1 = sequential. Each eligible task's benefit lands in its
  /// own slot before the (serial) top-k selection, so the returned ranking
  /// is identical for every thread count.
  size_t num_threads = 0;
};

/// The OTA module (Section 5.1): scores every eligible task with Definition
/// 5's benefit and returns the k best. Selection is linear via
/// std::nth_element (the PICK algorithm of the paper); the returned indices
/// are ordered by decreasing benefit.
class TaskAssigner {
 public:
  explicit TaskAssigner(TaskAssignerOptions options = {});

  /// Selects up to `k` tasks for the coming worker. `eligible[i]` marks the
  /// tasks in T - T(w) (not yet answered by the worker and still open).
  /// `matrices` and `truths` are the current M^(i) and s_i.
  std::vector<size_t> SelectTopK(const std::vector<Task>& tasks,
                                 const std::vector<Matrix>& matrices,
                                 const std::vector<std::vector<double>>& truths,
                                 const std::vector<double>& worker_quality,
                                 const std::vector<uint8_t>& eligible,
                                 size_t k) const;

  /// Epoch-aware SelectTopK: `task_epochs[i]` versions matrices[i]/truths[i]
  /// and `worker_epoch` versions worker_quality; `cache` (sized to the task
  /// count by the caller) carries scores across calls. Only tasks whose
  /// (task, worker) epoch pair went stale are rescored — on a quiet system a
  /// repeat call costs O(eligible) cache probes plus the top-k selection
  /// instead of O(n l m l) benefit evaluations. Scores and therefore the
  /// returned ranking are bit-identical to the cacheless overload. Pass
  /// nullptrs to disable caching (the plain overload does exactly that).
  std::vector<size_t> SelectTopK(const std::vector<Task>& tasks,
                                 const std::vector<Matrix>& matrices,
                                 const std::vector<std::vector<double>>& truths,
                                 const std::vector<double>& worker_quality,
                                 const std::vector<uint8_t>& eligible, size_t k,
                                 const std::vector<uint64_t>* task_epochs,
                                 uint64_t worker_epoch,
                                 std::vector<CachedBenefit>* cache) const;

  const TaskAssignerOptions& options() const { return options_; }

 private:
  TaskAssignerOptions options_;
  /// Lazy scoring pool (see TaskAssignerOptions::num_threads). Mutable
  /// because SelectTopK is logically const; a TaskAssigner instance is not
  /// itself safe for concurrent use.
  mutable std::unique_ptr<ThreadPool> pool_;
};

}  // namespace docs::core

#endif  // DOCS_CORE_TASK_ASSIGNMENT_H_
