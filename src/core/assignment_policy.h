#ifndef DOCS_CORE_ASSIGNMENT_POLICY_H_
#define DOCS_CORE_ASSIGNMENT_POLICY_H_

#include <cstddef>
#include <string>
#include <vector>

namespace docs::core {

/// Interface between a task-assignment method and the crowdsourcing
/// platform. The end-to-end comparison of Fig. 8 runs six implementations
/// (Baseline, AskIt!, IC, QASCA, D-Max, DOCS) in parallel against the same
/// simulated workers, exactly as Section 6.1 does on AMT.
class AssignmentPolicy {
 public:
  virtual ~AssignmentPolicy() = default;

  /// Display name ("DOCS", "QASCA", ...).
  virtual std::string name() const = 0;

  /// Called when worker `worker` requests a HIT: returns up to `k` distinct
  /// task indices that this worker has not answered under this policy.
  virtual std::vector<size_t> SelectTasks(size_t worker, size_t k) = 0;

  /// Called when the worker submits `choice` for `task`.
  virtual void OnAnswer(size_t worker, size_t task, size_t choice) = 0;

  /// Current inferred truth per task (0-based choice indices).
  virtual std::vector<size_t> InferredChoices() = 0;
};

}  // namespace docs::core

#endif  // DOCS_CORE_ASSIGNMENT_POLICY_H_
