#ifndef DOCS_CORE_TRUTH_INFERENCE_H_
#define DOCS_CORE_TRUTH_INFERENCE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/matrix.h"
#include "common/parallel.h"
#include "core/types.h"

namespace docs::core {

struct TruthInferenceOptions {
  /// The paper observes convergence within ~20 iterations (Section 6.3).
  size_t max_iterations = 20;
  /// Early-exit threshold on the parameter change Delta of Section 6.3.
  double tolerance = 1e-7;
  /// Quality assumed for a worker in domains where nothing is known yet.
  double default_quality = 0.7;
  /// Qualities are clamped into [clamp, 1 - clamp] when used inside
  /// Equation 4, keeping the likelihood well-defined for perfect workers.
  double quality_clamp = 0.01;
  /// MAP shrinkage on Equation 5: each quality estimate is pulled toward
  /// the worker's seed quality (golden/WorkerStore profile, or
  /// default_quality) with this pseudo-count mass. Equation 5 becomes
  ///   q_k = (sum r s + m0 (prior + u0)) / (sum r + prior + u0)
  /// where (m0, u0) are the seed mean and weight. Without it, a worker with
  /// little mass in a domain can get a spurious q < 1/l and Eq. 4 then
  /// actively inverts her votes. 0 recovers the paper's exact formula.
  double quality_prior_strength = 1.0;
  /// Threads applied to the EM sweep (step 1 per-task matrices, step 2
  /// per-worker quality estimation). 0 = hardware concurrency, 1 = the
  /// sequential loops. Results are bit-identical for every value: step 1
  /// writes only task-owned slots and step 2 accumulates each worker's
  /// evidence in the same global answer order the sequential sweep used.
  size_t num_threads = 0;
};

struct TruthInferenceResult {
  /// s_i per task: the probabilistic truth distribution over choices.
  std::vector<std::vector<double>> task_truth;
  /// M^(i) per task (m x l_ti), the per-domain truth distributions of Eq. 3.
  std::vector<Matrix> truth_matrices;
  /// argmax_j s_{i,j} per task (the inferred truth v*_i).
  std::vector<size_t> inferred_choice;
  /// Final per-worker quality vectors q^w and weights u^w (Eq. 5).
  std::vector<WorkerQuality> worker_quality;
  /// Delta after each iteration (the convergence curve of Fig. 4(a)).
  std::vector<double> delta_history;
  size_t iterations_run = 0;
};

/// Computes M^(i) for one task from the answers it received and the current
/// worker qualities (Equations 3-4), in log space. `task_answers` must all
/// refer to this task. With no answers every row is uniform.
///
/// Stray answers — a worker index with no quality vector of the task's
/// dimension, or a choice outside [0, l) — are skipped instead of indexing
/// out of bounds (the baselines call this directly with caller-supplied
/// answer lists). `skipped_answers`, when non-null, receives the skip count.
Matrix ComputeTruthMatrix(const Task& task,
                          const std::vector<Answer>& task_answers,
                          const std::vector<WorkerQuality>& qualities,
                          double quality_clamp = 0.01,
                          size_t* skipped_answers = nullptr);

/// As above but writes into caller-owned storage: `*out` is reshaped to
/// (m, l_ti) and every cell overwritten, so EM sweeps can reuse one Matrix
/// per task across iterations instead of allocating a fresh one each time.
/// The answer filter and softmax row live in thread_local scratch (the
/// function runs inside ParallelFor bodies). Bit-identical to
/// ComputeTruthMatrix, which forwards here.
void ComputeTruthMatrixInto(const Task& task,
                            const std::vector<Answer>& task_answers,
                            const std::vector<WorkerQuality>& qualities,
                            double quality_clamp, Matrix* out,
                            size_t* skipped_answers = nullptr);

/// Initializes worker qualities from their answers to golden tasks
/// (Section 5.2): per domain, the r-weighted fraction of correct golden
/// answers, smoothed toward `options.default_quality`. Weights u are the
/// r-mass of golden tasks answered.
/// Stray inputs — a golden index outside the task list, a golden_tasks entry
/// with no matching golden_truth label (the arrays are parallel; the excess
/// of the longer one is dropped), an answer whose task or worker is out of
/// range — are skipped instead of indexing out of bounds; `skipped_answers`,
/// when non-null, receives the number of ignored entries.
std::vector<WorkerQuality> InitializeQualityFromGolden(
    const std::vector<Task>& tasks, size_t num_workers,
    const std::vector<Answer>& answers,
    const std::vector<size_t>& golden_tasks,
    const std::vector<size_t>& golden_truth, double default_quality = 0.7,
    double smoothing = 1.0, size_t* skipped_answers = nullptr);

/// The iterative truth-inference algorithm of Section 4.1: alternates
/// step 1 (qualities -> probabilistic truth, Eq. 2-4) and step 2
/// (probabilistic truth -> qualities, Eq. 5) until convergence.
class TruthInference {
 public:
  explicit TruthInference(TruthInferenceOptions options = {});

  /// Runs inference over `tasks` (with their domain vectors) and `answers`
  /// from `num_workers` workers. `initial_quality`, when provided, seeds the
  /// worker qualities (e.g. from golden tasks or the WorkerStore); otherwise
  /// every worker starts at options.default_quality.
  TruthInferenceResult Run(
      const std::vector<Task>& tasks, size_t num_workers,
      const std::vector<Answer>& answers,
      const std::vector<WorkerQuality>* initial_quality = nullptr) const;

  /// As above but executes on a caller-provided pool (ignoring
  /// options().num_threads), so a surrounding engine can reuse one pool
  /// across repeated runs. `pool == nullptr` runs sequentially.
  TruthInferenceResult Run(const std::vector<Task>& tasks, size_t num_workers,
                           const std::vector<Answer>& answers,
                           const std::vector<WorkerQuality>* initial_quality,
                           ThreadPool* pool) const;

  const TruthInferenceOptions& options() const { return options_; }

 private:
  TruthInferenceOptions options_;
  /// Lazily built pool of options().num_threads threads, reused across Run()
  /// calls. Mutable because Run() is logically const; TruthInference itself
  /// is not safe for concurrent use from multiple threads (the serving path
  /// already serializes on ConcurrentDocsSystem's mutex).
  mutable std::unique_ptr<ThreadPool> pool_;
};

}  // namespace docs::core

#endif  // DOCS_CORE_TRUTH_INFERENCE_H_
