#include "core/task_assignment.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_utils.h"

namespace docs::core {
namespace {

double Clamp(double q, double clamp) {
  return std::min(1.0 - clamp, std::max(clamp, q));
}

}  // namespace

double AnswerProbability(const Task& task, const Matrix& truth_matrix,
                         const std::vector<double>& worker_quality, size_t a,
                         double quality_clamp) {
  const size_t m = task.domain_vector.size();
  DOCS_DCHECK_GE(worker_quality.size(), m);
  DOCS_DCHECK_EQ(truth_matrix.rows(), m);
  const double l = static_cast<double>(task.num_choices);
  double probability = 0.0;
  for (size_t k = 0; k < m; ++k) {
    const double rk = task.domain_vector[k];
    if (rk == 0.0) continue;
    const double q = Clamp(worker_quality[k], quality_clamp);
    const double mka = truth_matrix(k, a);
    const double wrong = l > 1.0 ? (1.0 - q) / (l - 1.0) : 0.0;
    probability += rk * (q * mka + wrong * (1.0 - mka));
  }
  return probability;
}

Matrix UpdatedTruthMatrix(const Task& task, const Matrix& truth_matrix,
                          const std::vector<double>& worker_quality, size_t a,
                          double quality_clamp) {
  DOCS_DCHECK_EQ(task.domain_vector.size(), truth_matrix.rows());
  const size_t m = truth_matrix.rows();
  const size_t l = truth_matrix.cols();
  Matrix updated(m, l, 0.0);
  for (size_t k = 0; k < m; ++k) {
    const double q = Clamp(worker_quality[k], quality_clamp);
    const double wrong =
        l > 1 ? (1.0 - q) / static_cast<double>(l - 1) : 1.0 - q;
    double denom = 0.0;
    for (size_t j = 0; j < l; ++j) {
      const double factor = (j == a) ? q : wrong;
      const double value = truth_matrix(k, j) * factor;
      updated(k, j) = value;
      denom += value;
    }
    if (denom > 0.0) {
      for (size_t j = 0; j < l; ++j) updated(k, j) /= denom;
    } else {
      for (size_t j = 0; j < l; ++j) {
        updated(k, j) = 1.0 / static_cast<double>(l);
      }
    }
  }
  return updated;
}

double ExpectedPosteriorEntropy(const Task& task, const Matrix& truth_matrix,
                                const std::vector<double>& worker_quality,
                                double quality_clamp) {
  double expected = 0.0;
  for (size_t a = 0; a < task.num_choices; ++a) {
    const double pa =
        AnswerProbability(task, truth_matrix, worker_quality, a, quality_clamp);
    if (pa <= 0.0) continue;
    Matrix updated =
        UpdatedTruthMatrix(task, truth_matrix, worker_quality, a, quality_clamp);
    std::vector<double> posterior = updated.LeftMultiply(task.domain_vector);
    NormalizeInPlace(posterior);
    expected += pa * Entropy(posterior);
  }
  return expected;
}

double ExpectedPosteriorEntropy(const Task& task, const Matrix& truth_matrix,
                                const std::vector<double>& worker_quality,
                                double quality_clamp,
                                BenefitScratch* scratch) {
  const size_t m = task.domain_vector.size();
  const size_t l = task.num_choices;
  DOCS_DCHECK_GE(worker_quality.size(), m);
  DOCS_DCHECK_EQ(truth_matrix.rows(), m);
  // Hoist the per-(worker, domain) clamp and wrong-answer factors out of the
  // choice loop: they are invariant across the l choices the reference path
  // recomputes them for. The two "wrong" factors are kept separate because
  // the reference kernels disagree on the degenerate l == 1 case (Theorem 2
  // uses 0, Theorem 3 uses 1-q) and bit-identity is the contract.
  scratch->clamped.resize(m);
  scratch->wrong_answer.resize(m);
  scratch->wrong_update.resize(m);
  const double ld = static_cast<double>(l);
  for (size_t k = 0; k < m; ++k) {
    const double q = Clamp(worker_quality[k], quality_clamp);
    scratch->clamped[k] = q;
    scratch->wrong_answer[k] = ld > 1.0 ? (1.0 - q) / (ld - 1.0) : 0.0;
    scratch->wrong_update[k] =
        l > 1 ? (1.0 - q) / static_cast<double>(l - 1) : 1.0 - q;
  }
  scratch->posterior.resize(l);
  std::vector<double>& posterior = scratch->posterior;
  double expected = 0.0;
  for (size_t a = 0; a < l; ++a) {
    // Theorem 2, same operation order as AnswerProbability.
    double pa = 0.0;
    for (size_t k = 0; k < m; ++k) {
      const double rk = task.domain_vector[k];
      if (rk == 0.0) continue;
      const double mka = truth_matrix(k, a);
      pa += rk * (scratch->clamped[k] * mka +
                  scratch->wrong_answer[k] * (1.0 - mka));
    }
    if (pa <= 0.0) continue;
    // Theorem 3 fused with the posterior projection r x M^(i)|a: row k of
    // the updated matrix is produced and consumed in place of being stored.
    // Rows with r_k == 0 contribute exactly +0.0 to every posterior entry in
    // the reference path, so skipping them is bit-identical.
    std::fill(posterior.begin(), posterior.end(), 0.0);
    for (size_t k = 0; k < m; ++k) {
      const double rk = task.domain_vector[k];
      if (rk == 0.0) continue;
      const double q = scratch->clamped[k];
      const double wrong = scratch->wrong_update[k];
      double denom = 0.0;
      for (size_t j = 0; j < l; ++j) {
        denom += truth_matrix(k, j) * ((j == a) ? q : wrong);
      }
      if (denom > 0.0) {
        for (size_t j = 0; j < l; ++j) {
          posterior[j] +=
              rk * ((truth_matrix(k, j) * ((j == a) ? q : wrong)) / denom);
        }
      } else {
        const double uniform = 1.0 / static_cast<double>(l);
        for (size_t j = 0; j < l; ++j) posterior[j] += rk * uniform;
      }
    }
    NormalizeInPlace(posterior);
    expected += pa * Entropy(posterior);
  }
  return expected;
}

double Benefit(const Task& task, const Matrix& truth_matrix,
               const std::vector<double>& task_truth,
               const std::vector<double>& worker_quality,
               double quality_clamp) {
  return Entropy(task_truth) -
         ExpectedPosteriorEntropy(task, truth_matrix, worker_quality,
                                  quality_clamp);
}

double Benefit(const Task& task, const Matrix& truth_matrix,
               const std::vector<double>& task_truth,
               const std::vector<double>& worker_quality, double quality_clamp,
               BenefitScratch* scratch) {
  return Entropy(task_truth) -
         ExpectedPosteriorEntropy(task, truth_matrix, worker_quality,
                                  quality_clamp, scratch);
}

double BenefitOfSetBruteForce(const std::vector<Task>& tasks,
                              const std::vector<Matrix>& matrices,
                              const std::vector<std::vector<double>>& truths,
                              const std::vector<size_t>& subset,
                              const std::vector<double>& worker_quality,
                              double quality_clamp) {
  DOCS_CHECK_EQ(matrices.size(), tasks.size());
  DOCS_CHECK_EQ(truths.size(), tasks.size());
  for (size_t i : subset) {
    DOCS_CHECK_LT(i, tasks.size()) << "assignment subset names unknown task";
  }
  if (subset.empty()) return 0.0;
  // Odometer over all answer combinations phi in Phi (Eq. 9-10).
  std::vector<size_t> phi(subset.size(), 0);
  double expected_benefit = 0.0;
  for (;;) {
    double probability = 1.0;
    double benefit = 0.0;
    for (size_t idx = 0; idx < subset.size(); ++idx) {
      const size_t i = subset[idx];
      const size_t a = phi[idx];
      probability *= AnswerProbability(tasks[i], matrices[i], worker_quality,
                                       a, quality_clamp);
      Matrix updated = UpdatedTruthMatrix(tasks[i], matrices[i],
                                          worker_quality, a, quality_clamp);
      std::vector<double> posterior =
          updated.LeftMultiply(tasks[i].domain_vector);
      NormalizeInPlace(posterior);
      benefit += Entropy(truths[i]) - Entropy(posterior);
    }
    expected_benefit += probability * benefit;
    size_t idx = 0;
    while (idx < subset.size()) {
      if (++phi[idx] < tasks[subset[idx]].num_choices) break;
      phi[idx] = 0;
      ++idx;
    }
    if (idx == subset.size()) break;
  }
  return expected_benefit;
}

TaskAssigner::TaskAssigner(TaskAssignerOptions options) : options_(options) {}

std::vector<size_t> TaskAssigner::SelectTopK(
    const std::vector<Task>& tasks, const std::vector<Matrix>& matrices,
    const std::vector<std::vector<double>>& truths,
    const std::vector<double>& worker_quality,
    const std::vector<uint8_t>& eligible, size_t k) const {
  return SelectTopK(tasks, matrices, truths, worker_quality, eligible, k,
                    nullptr, 0, nullptr);
}

std::vector<size_t> TaskAssigner::SelectTopK(
    const std::vector<Task>& tasks, const std::vector<Matrix>& matrices,
    const std::vector<std::vector<double>>& truths,
    const std::vector<double>& worker_quality,
    const std::vector<uint8_t>& eligible, size_t k,
    const std::vector<uint64_t>* task_epochs, uint64_t worker_epoch,
    std::vector<CachedBenefit>* cache) const {
  // All four parallel arrays must describe the same task list; a mismatch
  // would read a stale eligibility bit (or out of bounds) for some task.
  DOCS_CHECK_EQ(eligible.size(), tasks.size());
  DOCS_CHECK_EQ(matrices.size(), tasks.size());
  DOCS_CHECK_EQ(truths.size(), tasks.size());
  CheckUnitInterval(worker_quality, 1e-9, "OTA worker quality (Eq. 5)");
  if (cache != nullptr) {
    DOCS_CHECK(task_epochs != nullptr)
        << "benefit cache requires task epochs";
    DOCS_CHECK_EQ(task_epochs->size(), tasks.size());
    DOCS_CHECK_EQ(cache->size(), tasks.size());
  }
  struct Scored {
    size_t task;
    double benefit;
  };
  std::vector<Scored> scored;
  scored.reserve(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    if (!eligible[i]) continue;
    scored.push_back({i, 0.0});
  }
  // Parallel scoring: each eligible task owns one slot (and its own cache
  // entry), so the benefit vector (and the selection below) is identical for
  // any thread count. The scratch arena is per thread; it only carries
  // intermediates within one Benefit call, so which thread scores a task
  // cannot affect the result.
  const size_t threads = EffectiveThreadCount(options_.num_threads);
  if (threads > 1 &&
      (pool_ == nullptr || pool_->num_threads() != threads)) {
    pool_ = std::make_unique<ThreadPool>(threads);
  }
  ParallelFor(threads > 1 ? pool_.get() : nullptr, scored.size(),
              [&](size_t s) {
                const size_t i = scored[s].task;
                if (cache != nullptr) {
                  CachedBenefit& entry = (*cache)[i];
                  if (entry.task_epoch == (*task_epochs)[i] &&
                      entry.worker_epoch == worker_epoch) {
                    scored[s].benefit = entry.benefit;
                    return;
                  }
                }
                thread_local BenefitScratch scratch;
                scored[s].benefit =
                    Benefit(tasks[i], matrices[i], truths[i], worker_quality,
                            options_.quality_clamp, &scratch);
                // A NaN benefit would poison the nth_element comparator
                // (strict weak ordering) below.
                DOCS_DCHECK_FINITE(scored[s].benefit, "task benefit (Eq. 8)");
                if (cache != nullptr) {
                  (*cache)[i] = {(*task_epochs)[i], worker_epoch,
                                 scored[s].benefit};
                }
              });
  const size_t take = std::min(k, scored.size());
  if (take == 0) return {};
  auto by_benefit_desc = [](const Scored& a, const Scored& b) {
    if (a.benefit != b.benefit) return a.benefit > b.benefit;
    return a.task < b.task;
  };
  // Linear selection of the top-k (PICK), then order the selected few.
  std::nth_element(scored.begin(), scored.begin() + (take - 1), scored.end(),
                   by_benefit_desc);
  std::sort(scored.begin(), scored.begin() + take, by_benefit_desc);
  std::vector<size_t> selected;
  selected.reserve(take);
  for (size_t i = 0; i < take; ++i) selected.push_back(scored[i].task);
  return selected;
}

}  // namespace docs::core
