#include "core/task_assignment.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_utils.h"

namespace docs::core {
namespace {

double Clamp(double q, double clamp) {
  return std::min(1.0 - clamp, std::max(clamp, q));
}

}  // namespace

double AnswerProbability(const Task& task, const Matrix& truth_matrix,
                         const std::vector<double>& worker_quality, size_t a,
                         double quality_clamp) {
  const size_t m = task.domain_vector.size();
  DOCS_DCHECK_GE(worker_quality.size(), m);
  DOCS_DCHECK_EQ(truth_matrix.rows(), m);
  const double l = static_cast<double>(task.num_choices);
  double probability = 0.0;
  for (size_t k = 0; k < m; ++k) {
    const double rk = task.domain_vector[k];
    if (rk == 0.0) continue;
    const double q = Clamp(worker_quality[k], quality_clamp);
    const double mka = truth_matrix(k, a);
    const double wrong = l > 1.0 ? (1.0 - q) / (l - 1.0) : 0.0;
    probability += rk * (q * mka + wrong * (1.0 - mka));
  }
  return probability;
}

Matrix UpdatedTruthMatrix(const Task& task, const Matrix& truth_matrix,
                          const std::vector<double>& worker_quality, size_t a,
                          double quality_clamp) {
  DOCS_DCHECK_EQ(task.domain_vector.size(), truth_matrix.rows());
  const size_t m = truth_matrix.rows();
  const size_t l = truth_matrix.cols();
  Matrix updated(m, l, 0.0);
  for (size_t k = 0; k < m; ++k) {
    const double q = Clamp(worker_quality[k], quality_clamp);
    const double wrong =
        l > 1 ? (1.0 - q) / static_cast<double>(l - 1) : 1.0 - q;
    double denom = 0.0;
    for (size_t j = 0; j < l; ++j) {
      const double factor = (j == a) ? q : wrong;
      const double value = truth_matrix(k, j) * factor;
      updated(k, j) = value;
      denom += value;
    }
    if (denom > 0.0) {
      for (size_t j = 0; j < l; ++j) updated(k, j) /= denom;
    } else {
      for (size_t j = 0; j < l; ++j) {
        updated(k, j) = 1.0 / static_cast<double>(l);
      }
    }
  }
  return updated;
}

double ExpectedPosteriorEntropy(const Task& task, const Matrix& truth_matrix,
                                const std::vector<double>& worker_quality,
                                double quality_clamp) {
  double expected = 0.0;
  for (size_t a = 0; a < task.num_choices; ++a) {
    const double pa =
        AnswerProbability(task, truth_matrix, worker_quality, a, quality_clamp);
    if (pa <= 0.0) continue;
    Matrix updated =
        UpdatedTruthMatrix(task, truth_matrix, worker_quality, a, quality_clamp);
    std::vector<double> posterior = updated.LeftMultiply(task.domain_vector);
    NormalizeInPlace(posterior);
    expected += pa * Entropy(posterior);
  }
  return expected;
}

double ExpectedPosteriorEntropy(const Task& task, const Matrix& truth_matrix,
                                const std::vector<double>& worker_quality,
                                double quality_clamp,
                                BenefitScratch* scratch) {
  const size_t m = task.domain_vector.size();
  const size_t l = task.num_choices;
  DOCS_DCHECK_GE(worker_quality.size(), m);
  DOCS_DCHECK_EQ(truth_matrix.rows(), m);
  // Hoist the per-(worker, domain) clamp and wrong-answer factors out of the
  // choice loop: they are invariant across the l choices the reference path
  // recomputes them for. The two "wrong" factors are kept separate because
  // the reference kernels disagree on the degenerate l == 1 case (Theorem 2
  // uses 0, Theorem 3 uses 1-q) and bit-identity is the contract.
  scratch->clamped.resize(m);
  scratch->wrong_answer.resize(m);
  scratch->wrong_update.resize(m);
  const double ld = static_cast<double>(l);
  for (size_t k = 0; k < m; ++k) {
    const double q = Clamp(worker_quality[k], quality_clamp);
    scratch->clamped[k] = q;
    scratch->wrong_answer[k] = ld > 1.0 ? (1.0 - q) / (ld - 1.0) : 0.0;
    scratch->wrong_update[k] =
        l > 1 ? (1.0 - q) / static_cast<double>(l - 1) : 1.0 - q;
  }
  scratch->posterior.resize(l);
  std::vector<double>& posterior = scratch->posterior;
  double expected = 0.0;
  for (size_t a = 0; a < l; ++a) {
    // Theorem 2, same operation order as AnswerProbability.
    double pa = 0.0;
    for (size_t k = 0; k < m; ++k) {
      const double rk = task.domain_vector[k];
      if (rk == 0.0) continue;
      const double mka = truth_matrix(k, a);
      pa += rk * (scratch->clamped[k] * mka +
                  scratch->wrong_answer[k] * (1.0 - mka));
    }
    if (pa <= 0.0) continue;
    // Theorem 3 fused with the posterior projection r x M^(i)|a: row k of
    // the updated matrix is produced and consumed in place of being stored.
    // Rows with r_k == 0 contribute exactly +0.0 to every posterior entry in
    // the reference path, so skipping them is bit-identical.
    std::fill(posterior.begin(), posterior.end(), 0.0);
    for (size_t k = 0; k < m; ++k) {
      const double rk = task.domain_vector[k];
      if (rk == 0.0) continue;
      const double q = scratch->clamped[k];
      const double wrong = scratch->wrong_update[k];
      double denom = 0.0;
      for (size_t j = 0; j < l; ++j) {
        denom += truth_matrix(k, j) * ((j == a) ? q : wrong);
      }
      if (denom > 0.0) {
        for (size_t j = 0; j < l; ++j) {
          posterior[j] +=
              rk * ((truth_matrix(k, j) * ((j == a) ? q : wrong)) / denom);
        }
      } else {
        const double uniform = 1.0 / static_cast<double>(l);
        for (size_t j = 0; j < l; ++j) posterior[j] += rk * uniform;
      }
    }
    NormalizeInPlace(posterior);
    expected += pa * Entropy(posterior);
  }
  return expected;
}

double Benefit(const Task& task, const Matrix& truth_matrix,
               const std::vector<double>& task_truth,
               const std::vector<double>& worker_quality,
               double quality_clamp) {
  return Entropy(task_truth) -
         ExpectedPosteriorEntropy(task, truth_matrix, worker_quality,
                                  quality_clamp);
}

double Benefit(const Task& task, const Matrix& truth_matrix,
               const std::vector<double>& task_truth,
               const std::vector<double>& worker_quality, double quality_clamp,
               BenefitScratch* scratch) {
  return Entropy(task_truth) -
         ExpectedPosteriorEntropy(task, truth_matrix, worker_quality,
                                  quality_clamp, scratch);
}

double BenefitOfSetBruteForce(const std::vector<Task>& tasks,
                              const std::vector<Matrix>& matrices,
                              const std::vector<std::vector<double>>& truths,
                              const std::vector<size_t>& subset,
                              const std::vector<double>& worker_quality,
                              double quality_clamp) {
  DOCS_CHECK_EQ(matrices.size(), tasks.size());
  DOCS_CHECK_EQ(truths.size(), tasks.size());
  for (size_t i : subset) {
    DOCS_CHECK_LT(i, tasks.size()) << "assignment subset names unknown task";
  }
  if (subset.empty()) return 0.0;
  // Odometer over all answer combinations phi in Phi (Eq. 9-10).
  std::vector<size_t> phi(subset.size(), 0);
  double expected_benefit = 0.0;
  for (;;) {
    double probability = 1.0;
    double benefit = 0.0;
    for (size_t idx = 0; idx < subset.size(); ++idx) {
      const size_t i = subset[idx];
      const size_t a = phi[idx];
      probability *= AnswerProbability(tasks[i], matrices[i], worker_quality,
                                       a, quality_clamp);
      Matrix updated = UpdatedTruthMatrix(tasks[i], matrices[i],
                                          worker_quality, a, quality_clamp);
      std::vector<double> posterior =
          updated.LeftMultiply(tasks[i].domain_vector);
      NormalizeInPlace(posterior);
      benefit += Entropy(truths[i]) - Entropy(posterior);
    }
    expected_benefit += probability * benefit;
    size_t idx = 0;
    while (idx < subset.size()) {
      if (++phi[idx] < tasks[subset[idx]].num_choices) break;
      phi[idx] = 0;
      ++idx;
    }
    if (idx == subset.size()) break;
  }
  return expected_benefit;
}

std::vector<size_t> SelectTopKFromScored(std::vector<ScoredTask>* scored,
                                         size_t k) {
  const size_t take = std::min(k, scored->size());
  if (take == 0) return {};
  // Linear selection of the top-k (PICK), then order the selected few.
  std::nth_element(scored->begin(), scored->begin() + (take - 1), scored->end(),
                   BetterScored);
  std::sort(scored->begin(), scored->begin() + take, BetterScored);
  std::vector<size_t> selected;
  selected.reserve(take);
  for (size_t i = 0; i < take; ++i) selected.push_back((*scored)[i].task);
  return selected;
}

void BenefitIndex::SiftUp(size_t slot) {
  ScoredTask entry = heap_[slot];
  while (slot > 0) {
    const size_t parent = (slot - 1) / 2;
    if (!BetterScored(entry, heap_[parent])) break;
    PlaceAt(slot, heap_[parent]);
    slot = parent;
  }
  PlaceAt(slot, entry);
}

void BenefitIndex::SiftDown(size_t slot) {
  ScoredTask entry = heap_[slot];
  const size_t n = heap_.size();
  for (;;) {
    size_t best = 2 * slot + 1;
    if (best >= n) break;
    if (best + 1 < n && BetterScored(heap_[best + 1], heap_[best])) ++best;
    if (!BetterScored(heap_[best], entry)) break;
    PlaceAt(slot, heap_[best]);
    slot = best;
  }
  PlaceAt(slot, entry);
}

void BenefitIndex::Rebuild(size_t num_tasks, Source source,
                           uint64_t worker_epoch, uint64_t generation,
                           uint64_t cursor,
                           const std::vector<size_t>* exclude_sorted,
                           const std::function<double(size_t)>& score,
                           ThreadPool* pool) {
  // pos_ packs heap slots into uint32_t (+1 for the "absent" sentinel).
  DOCS_CHECK_LT(num_tasks, size_t{0xffffffff});
  heap_.clear();
  heap_.reserve(num_tasks);
  pos_.assign(num_tasks, 0);
  size_t e = 0;
  for (size_t task = 0; task < num_tasks; ++task) {
    if (exclude_sorted != nullptr) {
      while (e < exclude_sorted->size() && (*exclude_sorted)[e] < task) ++e;
      if (e < exclude_sorted->size() && (*exclude_sorted)[e] == task) continue;
    }
    heap_.push_back({task, 0.0});
  }
  // Each slot is scored independently (its own cache entry, per-thread
  // kernel scratch), so the fan-out is thread-count invariant.
  ParallelFor(pool, heap_.size(),
              [&](size_t s) { heap_[s].value = score(heap_[s].task); });
  for (size_t s = 0; s < heap_.size(); ++s) {
    pos_[heap_[s].task] = static_cast<uint32_t>(s + 1);
  }
  // Floyd heapify: bottom-up sift-down, O(n) total.
  for (size_t s = heap_.size() / 2; s-- > 0;) SiftDown(s);
  source_ = source;
  worker_epoch_tag_ = worker_epoch;
  generation_tag_ = generation;
  cursor_ = cursor;
}

void BenefitIndex::Repair(size_t task, double value) {
  if (!contains(task)) return;
  const size_t slot = pos_[task] - 1;
  if (heap_[slot].value == value) return;  // bitwise-identical score: no-op
  const bool rose = value > heap_[slot].value;
  heap_[slot].value = value;
  if (rose) {
    SiftUp(slot);
  } else {
    SiftDown(slot);
  }
}

bool BenefitIndex::TrySelect(const std::function<bool(size_t)>& eligible,
                             size_t k, size_t budget, std::vector<size_t>* out,
                             uint64_t* pops) {
  out->clear();
  if (k == 0 || heap_.empty()) return true;
  // Candidate-frontier traversal: the frontier holds heap slots whose
  // parents were already emitted, ordered (as a little heap of its own) by
  // the indexed entries' total order. Because BetterScored is total and the
  // main heap satisfies it parent-over-child strictly, the best frontier
  // slot is better than every other unvisited node — so emission happens in
  // exact global rank order, matching the scan's sorted prefix bit for bit.
  frontier_.clear();
  auto frontier_order = [this](uint32_t a, uint32_t b) {
    // std::push/pop_heap keep the *largest* element first under "less-than";
    // "less" here means "worse score".
    return BetterScored(heap_[b], heap_[a]);
  };
  frontier_.push_back(0);
  uint64_t visited = 0;
  while (!frontier_.empty()) {
    std::pop_heap(frontier_.begin(), frontier_.end(), frontier_order);
    const uint32_t slot = frontier_.back();
    frontier_.pop_back();
    ++visited;
    if (visited > budget) {
      *pops += visited;
      return false;
    }
    if (eligible(heap_[slot].task)) {
      out->push_back(heap_[slot].task);
      if (out->size() == k) break;
    }
    for (uint32_t child = 2 * slot + 1;
         child <= 2 * slot + 2 && child < heap_.size(); ++child) {
      frontier_.push_back(child);
      std::push_heap(frontier_.begin(), frontier_.end(), frontier_order);
    }
  }
  *pops += visited;
  return true;
}

void BenefitIndex::CheckInvariant() const {
  size_t indexed = 0;
  for (size_t task = 0; task < pos_.size(); ++task) {
    if (pos_[task] == 0) continue;
    ++indexed;
    DOCS_DCHECK_LE(pos_[task], heap_.size());
    DOCS_DCHECK_EQ(heap_[pos_[task] - 1].task, task);
  }
  DOCS_DCHECK_EQ(indexed, heap_.size());
  for (size_t slot = 1; slot < heap_.size(); ++slot) {
    DOCS_DCHECK(BetterScored(heap_[(slot - 1) / 2], heap_[slot]))
        << "benefit index heap property violated at slot " << slot;
  }
}

TaskAssigner::TaskAssigner(TaskAssignerOptions options) : options_(options) {}

std::vector<size_t> TaskAssigner::SelectTopK(
    const std::vector<Task>& tasks, const std::vector<Matrix>& matrices,
    const std::vector<std::vector<double>>& truths,
    const std::vector<double>& worker_quality,
    const std::vector<uint8_t>& eligible, size_t k) const {
  return SelectTopK(tasks, matrices, truths, worker_quality, eligible, k,
                    nullptr, 0, nullptr);
}

std::vector<size_t> TaskAssigner::SelectTopK(
    const std::vector<Task>& tasks, const std::vector<Matrix>& matrices,
    const std::vector<std::vector<double>>& truths,
    const std::vector<double>& worker_quality,
    const std::vector<uint8_t>& eligible, size_t k,
    const std::vector<uint64_t>* task_epochs, uint64_t worker_epoch,
    std::vector<CachedBenefit>* cache, uint64_t generation) const {
  // All four parallel arrays must describe the same task list; a mismatch
  // would read a stale eligibility bit (or out of bounds) for some task.
  DOCS_CHECK_EQ(eligible.size(), tasks.size());
  DOCS_CHECK_EQ(matrices.size(), tasks.size());
  DOCS_CHECK_EQ(truths.size(), tasks.size());
  CheckUnitInterval(worker_quality, 1e-9, "OTA worker quality (Eq. 5)");
  if (cache != nullptr) {
    DOCS_CHECK(task_epochs != nullptr)
        << "benefit cache requires task epochs";
    DOCS_CHECK_EQ(task_epochs->size(), tasks.size());
    DOCS_CHECK_EQ(cache->size(), tasks.size());
  }
  std::vector<ScoredTask> scored;
  scored.reserve(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    if (!eligible[i]) continue;
    scored.push_back({i, 0.0});
  }
  // Parallel scoring: each eligible task owns one slot (and its own cache
  // entry), so the benefit vector (and the selection below) is identical for
  // any thread count. The scratch arena is per thread; it only carries
  // intermediates within one Benefit call, so which thread scores a task
  // cannot affect the result.
  const size_t threads = EffectiveThreadCount(options_.num_threads);
  if (threads > 1 &&
      (pool_ == nullptr || pool_->num_threads() != threads)) {
    pool_ = std::make_unique<ThreadPool>(threads);
  }
  ParallelFor(threads > 1 ? pool_.get() : nullptr, scored.size(),
              [&](size_t s) {
                const size_t i = scored[s].task;
                if (cache != nullptr) {
                  CachedBenefit& entry = (*cache)[i];
                  if (entry.task_epoch == (*task_epochs)[i] &&
                      entry.worker_epoch == worker_epoch &&
                      entry.generation == generation) {
                    scored[s].value = entry.benefit;
                    return;
                  }
                }
                thread_local BenefitScratch scratch;
                scored[s].value =
                    Benefit(tasks[i], matrices[i], truths[i], worker_quality,
                            options_.quality_clamp, &scratch);
                // A NaN benefit would poison the nth_element comparator
                // (strict weak ordering) below.
                DOCS_DCHECK_FINITE(scored[s].value, "task benefit (Eq. 8)");
                if (cache != nullptr) {
                  (*cache)[i] = {(*task_epochs)[i], worker_epoch, generation,
                                 scored[s].value};
                }
              });
  return SelectTopKFromScored(&scored, k);
}

std::vector<size_t> TaskAssigner::SelectTopK(
    const std::vector<Task>& tasks, const std::vector<Matrix>& matrices,
    const std::vector<std::vector<double>>& truths,
    const std::vector<double>& worker_quality,
    const std::vector<uint8_t>& eligible, size_t k,
    const std::vector<uint64_t>* task_epochs, uint64_t worker_epoch,
    std::vector<CachedBenefit>* cache, uint64_t generation,
    BenefitIndex* index) const {
  DOCS_CHECK_EQ(eligible.size(), tasks.size());
  DOCS_CHECK_EQ(matrices.size(), tasks.size());
  DOCS_CHECK_EQ(truths.size(), tasks.size());
  CheckUnitInterval(worker_quality, 1e-9, "OTA worker quality (Eq. 5)");
  DOCS_CHECK(index != nullptr) << "index overload requires an index";
  DOCS_CHECK(cache != nullptr) << "benefit index requires the benefit cache";
  DOCS_CHECK(task_epochs != nullptr) << "benefit cache requires task epochs";
  DOCS_CHECK_EQ(task_epochs->size(), tasks.size());
  DOCS_CHECK_EQ(cache->size(), tasks.size());

  // Cache-through scoring: the cache row stays the single source of score
  // values, so entries written here are interchangeable with the scan
  // overload's — the two paths can alternate on one cache freely.
  auto score_fresh = [&](size_t i) {
    CachedBenefit& entry = (*cache)[i];
    if (entry.task_epoch == (*task_epochs)[i] &&
        entry.worker_epoch == worker_epoch && entry.generation == generation) {
      return entry.benefit;
    }
    thread_local BenefitScratch scratch;
    const double value = Benefit(tasks[i], matrices[i], truths[i],
                                 worker_quality, options_.quality_clamp,
                                 &scratch);
    DOCS_DCHECK_FINITE(value, "task benefit (Eq. 8)");
    entry = {(*task_epochs)[i], worker_epoch, generation, value};
    return value;
  };

  const size_t threads = EffectiveThreadCount(options_.num_threads);
  if (threads > 1 && (pool_ == nullptr || pool_->num_threads() != threads)) {
    pool_ = std::make_unique<ThreadPool>(threads);
  }
  if (!index->Fresh(BenefitIndex::Source::kStandalone, worker_epoch,
                    generation, tasks.size())) {
    index->Rebuild(tasks.size(), BenefitIndex::Source::kStandalone,
                   worker_epoch, generation, /*cursor=*/0,
                   /*exclude_sorted=*/nullptr, score_fresh,
                   threads > 1 ? pool_.get() : nullptr);
  } else {
    // Same tags, so only individual task epochs can have moved: an O(n)
    // integer scan repairs exactly the stale entries. (The serving system
    // avoids even this scan via the engine's mutation log; standalone
    // callers have no change feed.)
    for (size_t i = 0; i < tasks.size(); ++i) {
      const CachedBenefit& entry = (*cache)[i];
      if (entry.task_epoch == (*task_epochs)[i] &&
          entry.worker_epoch == worker_epoch &&
          entry.generation == generation) {
        continue;
      }
      if (!index->contains(i)) continue;
      index->Repair(i, score_fresh(i));
    }
  }
#if DOCS_DEBUG_CHECKS
  index->CheckInvariant();
#endif
  std::vector<size_t> selected;
  uint64_t pops = 0;
  // Unbounded budget: each node is visited at most once, so the walk always
  // completes; standalone callers have no scan fallback to hand off to.
  const bool complete = index->TrySelect(
      [&eligible](size_t task) { return eligible[task] != 0; }, k,
      /*budget=*/tasks.size(), &selected, &pops);
  DOCS_CHECK(complete);
  return selected;
}

}  // namespace docs::core
