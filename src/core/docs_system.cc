#include "core/docs_system.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/check.h"
#include "common/logging.h"
#include "common/math_utils.h"

namespace docs::core {

DocsSystem::DocsSystem(const kb::KnowledgeBase* knowledge_base,
                       DocsSystemOptions options)
    : kb_(knowledge_base),
      options_(std::move(options)),
      dve_(knowledge_base, options_.linker) {
  // One knob steers every hot loop: a nonzero system-level thread count
  // overrides the embedded engines' settings. The pool is shared too — the
  // periodic re-inference runs on ScoringPool() rather than letting the
  // embedded engine build a second hardware-sized pool of its own.
  if (options_.num_threads != 0) {
    options_.truth_inference.num_threads = options_.num_threads;
    options_.assigner.num_threads = options_.num_threads;
  }
}

ThreadPool* DocsSystem::ScoringPool() {
  const size_t threads = EffectiveThreadCount(options_.num_threads);
  if (threads <= 1) return nullptr;
  if (pool_ == nullptr || pool_->num_threads() != threads) {
    pool_ = std::make_unique<ThreadPool>(threads);
  }
  return pool_.get();
}

std::vector<CachedBenefit>* DocsSystem::CacheRow(size_t worker) {
  if (!options_.benefit_cache) return nullptr;
  if (benefit_cache_.size() <= worker) benefit_cache_.resize(worker + 1);
  std::vector<CachedBenefit>* row = &benefit_cache_[worker];
  // Zero-initialized entries carry epoch 0, which live epochs (starting at
  // 1) never match — a freshly sized row reads as "never scored".
  if (row->size() != tasks_.size()) row->resize(tasks_.size());
  return row;
}

BenefitIndex* DocsSystem::IndexRow(size_t worker) {
  if (!options_.benefit_index || !options_.benefit_cache) return nullptr;
  if (benefit_index_.size() <= worker) benefit_index_.resize(worker + 1);
  return &benefit_index_[worker];
}

double DocsSystem::ScoreOne(size_t task,
                            const std::function<double(size_t)>& score,
                            std::vector<CachedBenefit>* cache,
                            uint64_t worker_epoch,
                            const uint64_t* task_epochs, uint64_t generation,
                            std::atomic<bool>* saw_miss) {
  if (cache == nullptr) return score(task);
  CachedBenefit& entry = (*cache)[task];
  const uint64_t task_epoch = task_epochs[task];
  if (entry.task_epoch == task_epoch && entry.worker_epoch == worker_epoch &&
      entry.generation == generation) {
    benefit_cache_hits_.fetch_add(1, std::memory_order_relaxed);
    return entry.benefit;
  }
  const double value = score(task);
  entry = {task_epoch, worker_epoch, generation, value};
  benefit_cache_misses_.fetch_add(1, std::memory_order_relaxed);
  if (saw_miss != nullptr) saw_miss->store(true, std::memory_order_relaxed);
  return value;
}

std::vector<size_t> DocsSystem::RankCore(
    const std::vector<uint8_t>& eligible, size_t k,
    const std::function<double(size_t)>& score,
    std::vector<CachedBenefit>* cache, uint64_t worker_epoch,
    const uint64_t* task_epochs, uint64_t generation, ThreadPool* pool,
    std::atomic<bool>* saw_miss, bool* had_candidates) {
  DOCS_CHECK_EQ(eligible.size(), tasks_.size());
  std::vector<ScoredTask> scored;
  scored.reserve(tasks_.size());
  for (size_t i = 0; i < tasks_.size(); ++i) {
    if (eligible[i]) scored.push_back({i, 0.0});
  }
  *had_candidates = !scored.empty();
  ParallelFor(pool, scored.size(), [&](size_t s) {
    scored[s].value = ScoreOne(scored[s].task, score, cache, worker_epoch,
                               task_epochs, generation, saw_miss);
  });
  return SelectTopKFromScored(&scored, k);
}

std::optional<std::vector<size_t>> DocsSystem::TryRankViaIndex(
    size_t worker, BenefitIndex* index, size_t k,
    const std::function<double(size_t)>& score,
    std::vector<CachedBenefit>* cache, uint64_t worker_epoch,
    const uint64_t* task_epochs, uint64_t generation,
    const std::function<bool(size_t)>& eligible_one, ThreadPool* pool,
    const InferenceSnapshot* snap, std::atomic<bool>* saw_miss) {
  const size_t n = tasks_.size();
  auto score_one = [&](size_t task) {
    return ScoreOne(task, score, cache, worker_epoch, task_epochs, generation,
                    saw_miss);
  };
  const BenefitIndex::Source source = snap == nullptr
                                          ? BenefitIndex::Source::kLive
                                          : BenefitIndex::Source::kSnapshot;
  // Sync the index: tags fresh + feed caught up = nothing to do; tags fresh
  // with a bounded feed gap = targeted repairs; anything else = rebuild.
  bool synced = false;
  if (index->Fresh(source, worker_epoch, generation, n)) {
    size_t repaired = 0;
    if (snap == nullptr) {
      // Live source: replay the engine's mutation log from our cursor. Any
      // entry we don't contain belongs to this worker's own answered set
      // (excluded at build time); duplicates re-probe a now-fresh cache
      // entry, which is cheap and idempotent.
      const uint64_t log_begin = inference_->mutation_log_begin();
      const uint64_t log_end = inference_->mutation_log_end();
      if (index->cursor() >= log_begin && index->cursor() <= log_end) {
        const std::vector<size_t>& log = inference_->mutation_log();
        for (uint64_t seq = index->cursor(); seq < log_end; ++seq) {
          const size_t task = log[seq - log_begin];
          if (!index->contains(task)) continue;
          index->Repair(task, score_one(task));
          ++repaired;
        }
        index->set_cursor(log_end);
        synced = true;
      }
    } else {
      // Snapshot source: publishes are totally ordered, so an index exactly
      // one publish behind catches up off the changed-task diff.
      if (index->cursor() == snap->epoch) {
        synced = true;
      } else if (index->cursor() + 1 == snap->epoch) {
        for (size_t task : snap->changed_tasks) {
          if (!index->contains(task)) continue;
          index->Repair(task, score_one(task));
          ++repaired;
        }
        index->set_cursor(snap->epoch);
        synced = true;
      }
    }
    if (repaired > 0) {
      benefit_index_repairs_.fetch_add(repaired, std::memory_order_relaxed);
    }
  }
  if (!synced) {
    // Live rebuilds exclude the worker's answered tasks — they can never
    // become eligible again, so scoring them would be pure waste. (Safe to
    // read here: the answered list only grows via her own submissions, each
    // of which bumps her worker epoch and forces the next rebuild.) Snapshot
    // rebuilds exclude nothing: the async answered books are assign-guarded
    // and the snapshot path must not touch them; the eligibility predicate
    // skips those entries and the budget bounds the cost.
    const std::vector<size_t>* exclude =
        snap == nullptr ? &inference_->answered_tasks(worker) : nullptr;
    const uint64_t cursor =
        snap == nullptr ? inference_->mutation_log_end() : snap->epoch;
    index->Rebuild(n, source, worker_epoch, generation, cursor, exclude,
                   score_one, pool);
    benefit_index_rebuilds_.fetch_add(1, std::memory_order_relaxed);
  }
#if DOCS_DEBUG_CHECKS
  index->CheckInvariant();
#endif
  std::vector<size_t> selected;
  uint64_t pops = 0;
  // The frontier walk may skip ineligible entries (leased-out tasks, capped
  // tasks, the answered set on the snapshot path); past this budget the pass
  // is churn-bound and the O(n) scan is the better tool.
  const size_t budget = std::max<size_t>(64, 8 * k);
  const bool complete =
      index->TrySelect(eligible_one, k, budget, &selected, &pops);
  benefit_index_pops_.fetch_add(pops, std::memory_order_relaxed);
  if (!complete) return std::nullopt;
  return selected;
}

std::vector<size_t> DocsSystem::RankWithIndex(
    size_t worker, BenefitIndex* index, size_t k,
    const std::function<double(size_t)>& score,
    std::vector<CachedBenefit>* cache, uint64_t worker_epoch,
    const uint64_t* task_epochs, uint64_t generation,
    const std::function<bool(size_t)>& eligible_one,
    const std::function<const std::vector<uint8_t>&()>& eligible_bitmap,
    ThreadPool* pool, const InferenceSnapshot* snap) {
  // One saw-miss flag spans the repair phase AND the scan fallback: a pass
  // that recomputed any score anywhere is a request miss, exactly as on the
  // pre-index scan path.
  std::atomic<bool> saw_miss{false};
  bool had_candidates = false;
  std::vector<size_t> selected;
  bool served = false;
  if (index != nullptr) {
    auto ranked =
        TryRankViaIndex(worker, index, k, score, cache, worker_epoch,
                        task_epochs, generation, eligible_one, pool, snap,
                        &saw_miss);
    if (ranked.has_value()) {
      selected = std::move(*ranked);
      had_candidates = index->size() > 0;
      served = true;
    }
  }
  if (!served) {
    selected = RankCore(eligible_bitmap(), k, score, cache, worker_epoch,
                        task_epochs, generation, pool, &saw_miss,
                        &had_candidates);
  }
  // Request-level accounting: the whole pass is one lookup from the serving
  // path's point of view — fully cache-served or not.
  if (cache != nullptr && had_candidates) {
    if (saw_miss.load(std::memory_order_relaxed)) {
      benefit_cache_request_misses_.fetch_add(1, std::memory_order_relaxed);
    } else {
      benefit_cache_request_hits_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return selected;
}

Status DocsSystem::AddTasks(const std::vector<TaskInput>& inputs,
                            const std::vector<size_t>* known_truths) {
  if (inference_ != nullptr) {
    return FailedPreconditionError("AddTasks may be called once");
  }
  if (known_truths != nullptr && known_truths->size() != inputs.size()) {
    return InvalidArgumentError("known_truths size mismatch");
  }
  tasks_.reserve(inputs.size());
  known_truth_.reserve(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (inputs[i].num_choices < 2) {
      return InvalidArgumentError("tasks need at least 2 choices");
    }
    Task task;
    task.domain_vector = dve_.Estimate(inputs[i].text);  // DVE (Section 3)
    // DVE postcondition (Eq. 1): everything downstream — golden selection,
    // TI, OTA — assumes the domain vector is a probability simplex.
    CheckSimplex(task.domain_vector, 1e-6, "DVE domain vector");
    task.num_choices = inputs[i].num_choices;
    tasks_.push_back(std::move(task));
    known_truth_.push_back(
        known_truths != nullptr ? static_cast<int>((*known_truths)[i]) : -1);
  }

  // Golden tasks are chosen after DVE (Section 5.2). Only tasks whose truth
  // the requester knows are eligible; when no truths were given the golden
  // phase is disabled.
  is_golden_.assign(tasks_.size(), 0);
  if (known_truths != nullptr && options_.golden_count > 0) {
    golden_ = SelectGoldenTasks(tasks_, options_.golden_count);
    for (size_t idx : golden_.tasks) is_golden_[idx] = 1;
  }

  inference_ = std::make_unique<IncrementalTruthInference>(
      tasks_, options_.truth_inference);
  answers_per_task_.assign(tasks_.size(), 0);
  lease_count_.assign(tasks_.size(), 0);
  return OkStatus();
}

size_t DocsSystem::WorkerIndex(const std::string& external_id) {
  auto it = worker_index_.find(external_id);
  if (it != worker_index_.end()) return it->second;
  const size_t index = workers_.size();
  worker_index_.emplace(external_id, index);
  WorkerProfile profile;
  profile.external_id = external_id;
  profile.golden_done = golden_.tasks.empty();
  profile.golden_correct.assign(kb_->num_domains(), 0.0);
  profile.golden_total.assign(kb_->num_domains(), 0.0);
  workers_.push_back(std::move(profile));
  inference_->EnsureWorker(index);
  return index;
}

std::optional<size_t> DocsSystem::FindWorker(
    const std::string& external_id) const {
  auto it = worker_index_.find(external_id);
  if (it == worker_index_.end()) return std::nullopt;
  return it->second;
}

Status DocsSystem::LoadWorker(const std::string& external_id,
                              const storage::WorkerStore& store) {
  if (inference_ == nullptr) {
    return FailedPreconditionError("no tasks ingested");
  }
  auto record = store.Get(external_id);
  if (!record.ok()) return record.status();
  // Validate before registering the worker: a record written against a
  // different domain count (an old KB revision, a foreign store) would later
  // index out of bounds inside the incremental quality updates.
  const size_t m = kb_->num_domains();
  if (record->quality.size() != m || record->weight.size() != m) {
    return InvalidArgumentError(
        "worker record for " + external_id + " spans " +
        std::to_string(record->quality.size()) + " quality / " +
        std::to_string(record->weight.size()) + " weight domains, KB has " +
        std::to_string(m));
  }
  const size_t worker = WorkerIndex(external_id);
  WorkerQuality quality;
  quality.quality = record->quality;
  quality.weight = record->weight;
  Status status = inference_->SetWorkerQuality(worker, quality);
  if (!status.ok()) return status;
  // A returning worker's quality profile is already known; skip the golden
  // probe.
  workers_[worker].golden_done = true;
  return OkStatus();
}

Status DocsSystem::SaveWorker(const std::string& external_id,
                              storage::WorkerStore* store) const {
  auto it = worker_index_.find(external_id);
  if (it == worker_index_.end()) {
    return NotFoundError("unknown worker: " + external_id);
  }
  const WorkerQuality& stats = inference_->worker_quality(it->second);
  storage::WorkerQualityRecord record;
  record.quality = stats.quality;
  record.weight = stats.weight;
  return store->Put(external_id, record);
}

std::vector<size_t> DocsSystem::SelectTasks(size_t worker, size_t k) {
  if (worker >= workers_.size() || inference_ == nullptr) return {};
  ++lease_clock_;
  WorkerProfile& profile = workers_[worker];

  // Golden phase first: probe the new worker's per-domain quality. The
  // answered view runs through the submission books in async mode, so an
  // acked-but-unapplied golden answer is not re-granted.
  if (!profile.golden_done) {
    std::vector<size_t> pending;
    for (size_t idx : golden_.tasks) {
      if (!HasAnsweredView(worker, idx)) pending.push_back(idx);
      if (pending.size() == k) break;
    }
    if (!pending.empty()) {
      GrantLeases(worker, pending);
      return pending;
    }
    profile.golden_done = true;  // All golden answered between calls.
  }

  // OTA over T - T(w), honoring the per-task redundancy cap if one is set.
  // Outstanding leases count as in-flight answers against the cap, so a task
  // already granted to enough workers is not over-assigned; abandoned grants
  // come back via ExpireLeases. Eligibility is a per-task predicate on the
  // index fast path (the frontier walk probes only the handful of tasks it
  // visits — an O(n) bitmap build here would swamp the O(k log n) walk); the
  // full bitmap is built lazily, only when the pass falls back to the scan.
  auto eligible_one = [this, worker](size_t task) {
    return !HasAnsweredView(worker, task) && !AtAnswerCap(task);
  };
  auto eligible_bitmap = [this, worker]() -> const std::vector<uint8_t>& {
    BuildEligibilityBitmap(worker, &eligible_scratch_);
    return eligible_scratch_;
  };

  // All four rules share the same shape — rank eligible tasks by score, take
  // the top k — so they all route through RankWithIndex: the per-worker
  // benefit index when it can serve the request (DESIGN.md §16), otherwise
  // the deterministic parallel scan over the epoch-tagged benefit cache.
  std::vector<CachedBenefit>* cache = CacheRow(worker);
  const uint64_t worker_epoch =
      cache != nullptr ? inference_->worker_epoch(worker) : 0;
  const uint64_t generation = cache != nullptr ? inference_->generation() : 0;
  auto selected = RankWithIndex(
      worker, IndexRow(worker), k, MakeScoreFn(worker), cache, worker_epoch,
      inference_->task_epochs().data(), generation, eligible_one,
      eligible_bitmap, ScoringPool(), nullptr);
  GrantLeases(worker, selected);
  return selected;
}

void DocsSystem::BuildEligibilityBitmap(size_t worker,
                                        std::vector<uint8_t>* eligible) {
  // Starts all-eligible and masks the worker's answered list in O(|T(w)|) —
  // no per-task membership probes — in reusable storage so a warm scan pass
  // allocates nothing. The answered view runs through the submission books
  // in async mode, so an acked-but-unapplied answer is not re-granted.
  eligible->assign(tasks_.size(), 1);
  for (size_t answered : AnsweredView(worker)) {
    (*eligible)[answered] = 0;
  }
  if (options_.max_answers_per_task > 0) {
    for (size_t i = 0; i < tasks_.size(); ++i) {
      if (AtAnswerCap(i)) (*eligible)[i] = 0;
    }
  }
}

std::function<double(size_t)> DocsSystem::MakeScoreFn(size_t worker) {
  return MakeScoreFn(worker, quality_scratch_);
}

std::function<double(size_t)> DocsSystem::MakeScoreFn(
    size_t worker, std::vector<double>& quality) {
  if (options_.selection_rule == SelectionRule::kDomainMax) {
    // D-Max: rank by domain match sum_k r_k q^w_k only.
    quality = inference_->worker_quality(worker).quality;
    return [this, &quality](size_t i) {
      double match = 0.0;
      for (size_t d = 0; d < quality.size(); ++d) {
        match += tasks_[i].domain_vector[d] * quality[d];
      }
      return match;
    };
  }

  if (options_.selection_rule == SelectionRule::kUncertainty) {
    // Ablation: most ambiguous tasks first, worker ignored.
    return [this](size_t i) { return Entropy(inference_->task_truth(i)); };
  }

  // Benefit rules score against the live inference state (no matrix copies),
  // exactly as TaskAssigner::SelectTopK does.
  quality = inference_->worker_quality(worker).quality;
  if (options_.selection_rule == SelectionRule::kQualityBlind) {
    // Ablation: flatten the worker's profile to its mean — the benefit
    // still reacts to confidence but no longer to domain match.
    double mean = 0.0;
    for (double q : quality) mean += q;
    mean /= std::max<size_t>(1, quality.size());
    std::fill(quality.begin(), quality.end(), mean);
  }
  if (options_.reference_kernel) {
    return [this, &quality](size_t i) {
      return Benefit(tasks_[i], inference_->truth_matrix(i),
                     inference_->task_truth(i), quality,
                     options_.assigner.quality_clamp);
    };
  }
  return [this, &quality](size_t i) {
    // Per-thread arena: the scoring pass fans out over the pool, and the
    // fused kernel's intermediates are private to one Benefit call.
    thread_local BenefitScratch scratch;
    return Benefit(tasks_[i], inference_->truth_matrix(i),
                   inference_->task_truth(i), quality,
                   options_.assigner.quality_clamp, &scratch);
  };
}

bool DocsSystem::CanServeSharded(size_t worker) const {
  if (inference_ == nullptr || worker >= workers_.size()) return false;
  // The golden probe mutates worker profiles and (on completion) seeds the
  // quality vector — exclusive-path work.
  if (!workers_[worker].golden_done) return false;
  // Row sizing mutates shared structure (deque growth, row allocation);
  // only the exclusive path may do it — sharded serving needs the row ready.
  if (options_.benefit_cache) {
    if (benefit_cache_.size() <= worker) return false;
    if (benefit_cache_[worker].size() != tasks_.size()) return false;
    // The index row, like the cache row, is allocated (deque growth) only on
    // the exclusive path; the sharded path may mutate its contents under the
    // worker's stripe but never the container.
    if (options_.benefit_index && benefit_index_.size() <= worker) return false;
  }
  return true;
}

void DocsSystem::BeginShardedSelect(size_t worker,
                                    std::vector<uint8_t>* eligible) {
  // Caller holds the assign lock: the clock tick and the lease-count reads
  // are serialized against every other grant and expiry.
  ++lease_clock_;
  BuildEligibilityBitmap(worker, eligible);
}

std::vector<size_t> DocsSystem::ScoreAndRankSharded(size_t worker,
                                                    ShardScratch& scratch,
                                                    size_t k,
                                                    ThreadPool* pool) {
  // CanServeSharded guaranteed the rows are sized; no CacheRow/IndexRow here —
  // those paths may resize, which only the exclusive lock permits.
  std::vector<CachedBenefit>* cache =
      options_.benefit_cache ? &benefit_cache_[worker] : nullptr;
  BenefitIndex* index = (cache != nullptr && options_.benefit_index)
                            ? &benefit_index_[worker]
                            : nullptr;
  const uint64_t worker_epoch =
      cache != nullptr ? inference_->worker_epoch(worker) : 0;
  const uint64_t generation = cache != nullptr ? inference_->generation() : 0;
  const std::function<double(size_t)> score =
      MakeScoreFn(worker, scratch.quality);
  // Eligibility was frozen into the scratch bitmap under the assign lock
  // (BeginShardedSelect); both the index walk and the scan fallback read that
  // same frozen view, so the two paths pick from an identical candidate set.
  auto eligible_one = [&scratch](size_t task) {
    return scratch.eligible[task] != 0;
  };
  auto eligible_bitmap = [&scratch]() -> const std::vector<uint8_t>& {
    return scratch.eligible;
  };
  return RankWithIndex(worker, index, k, score, cache, worker_epoch,
                       inference_->task_epochs().data(), generation,
                       eligible_one, eligible_bitmap, pool, nullptr);
}

bool DocsSystem::CommitShardedSelect(size_t worker,
                                     std::vector<size_t>* selected,
                                     bool force) {
  // Between snapshot and commit other shards may have granted leases; a
  // selected task pushed to the redundancy cap in that window must not be
  // over-assigned. Under sequential driving this never fires, which keeps
  // the sharded path bit-identical to the monolithic SelectTasks.
  if (options_.max_answers_per_task > 0) {
    bool conflict = false;
    for (size_t task : *selected) {
      if (AtAnswerCap(task)) {
        conflict = true;
        break;
      }
    }
    if (conflict) {
      if (!force) return false;
      std::vector<size_t> kept;
      kept.reserve(selected->size());
      for (size_t task : *selected) {
        if (!AtAnswerCap(task)) kept.push_back(task);
      }
      *selected = std::move(kept);
    }
  }
  GrantLeases(worker, *selected);
  return true;
}

std::vector<double> DocsSystem::ScoreAllTasks(size_t worker,
                                              bool bypass_cache) {
  std::vector<double> scores(tasks_.size(), 0.0);
  if (worker >= workers_.size() || inference_ == nullptr) return scores;
  const std::function<double(size_t)> score = MakeScoreFn(worker);
  std::vector<CachedBenefit>* cache = bypass_cache ? nullptr : CacheRow(worker);
  const uint64_t worker_epoch =
      cache != nullptr ? inference_->worker_epoch(worker) : 0;
  const uint64_t generation = cache != nullptr ? inference_->generation() : 0;
  ParallelFor(ScoringPool(), tasks_.size(), [&](size_t i) {
    // Test hook, not a serving pass: skip the request-level tally.
    scores[i] = ScoreOne(i, score, cache, worker_epoch,
                         inference_->task_epochs().data(), generation, nullptr);
  });
  return scores;
}

void DocsSystem::GrantLeases(size_t worker,
                             const std::vector<size_t>& granted) {
  if (options_.lease_duration == 0) return;
  const uint64_t deadline = lease_clock_ + options_.lease_duration;
  for (size_t task : granted) {
    auto [it, inserted] = leases_.try_emplace(LeaseKey(worker, task), deadline);
    if (inserted) {
      ++lease_count_[task];
    } else {
      it->second = deadline;  // Re-granted to the same worker: refresh.
    }
  }
}

void DocsSystem::ReleaseLease(size_t worker, size_t task) {
  if (leases_.empty()) return;
  auto it = leases_.find(LeaseKey(worker, task));
  if (it == leases_.end()) return;
  leases_.erase(it);
  --lease_count_[task];
}

std::vector<ExpiredLease> DocsSystem::ExpireLeases(uint64_t now) {
  std::vector<ExpiredLease> expired;
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (it->second <= now) {
      ExpiredLease lease;
      lease.worker = static_cast<size_t>(it->first >> 32);
      lease.task = static_cast<size_t>(it->first & 0xffffffffULL);
      lease.deadline = it->second;
      expired.push_back(lease);
      --lease_count_[lease.task];
      it = leases_.erase(it);
    } else {
      ++it;
    }
  }
  // Hash-map iteration order is not part of the contract; sort so chaos
  // campaigns replay identically across runs and standard libraries.
  std::sort(expired.begin(), expired.end(),
            [](const ExpiredLease& a, const ExpiredLease& b) {
              if (a.worker != b.worker) return a.worker < b.worker;
              return a.task < b.task;
            });
  return expired;
}

void DocsSystem::FinishGoldenPhase(size_t worker) {
  WorkerProfile& profile = workers_[worker];
  const size_t m = kb_->num_domains();
  WorkerQuality quality;
  quality.quality.resize(m);
  quality.weight.resize(m);
  const double smoothing = options_.golden_smoothing;
  const double default_quality = options_.truth_inference.default_quality;
  for (size_t k = 0; k < m; ++k) {
    // With golden_smoothing == 0 and no probe mass in domain k the ratio
    // would be 0/0; fall back to the default rather than minting a NaN seed.
    const double mass = profile.golden_total[k] + smoothing;
    quality.quality[k] =
        mass > 0.0
            ? (profile.golden_correct[k] + smoothing * default_quality) / mass
            : default_quality;
    quality.weight[k] = profile.golden_total[k];
  }
  DOCS_DCHECK_UNIT_INTERVAL(quality.quality, 1e-9,
                            "golden-phase quality seed");
  Status status = inference_->SetWorkerQuality(worker, quality);
  if (!status.ok()) {
    // Unreachable: the profile tallies are sized from the same KB the tasks
    // were vectorized against. Kept as a hard guard.
    DOCS_LOG(Warning) << "golden-phase seed rejected: " << status.ToString();
  }
  profile.golden_done = true;
}

Status DocsSystem::ValidateAnswer(size_t worker, size_t task,
                                  size_t choice) const {
  if (inference_ == nullptr) {
    return FailedPreconditionError("no tasks ingested");
  }
  if (worker >= workers_.size()) {
    return InvalidArgumentError("unknown worker " + std::to_string(worker));
  }
  // Bounds come first: a malformed task index must never reach
  // answers_per_task_[task] / tasks_[task] / is_golden_[task].
  if (task >= tasks_.size()) {
    return InvalidArgumentError("unknown task " + std::to_string(task));
  }
  if (choice >= tasks_[task].num_choices) {
    return OutOfRangeError("choice " + std::to_string(choice) +
                           " out of range for task " + std::to_string(task) +
                           " with " + std::to_string(tasks_[task].num_choices) +
                           " choices");
  }
  if (inference_->HasAnswered(worker, task)) {
    return AlreadyExistsError("duplicate answer from worker " +
                              std::to_string(worker) + " for task " +
                              std::to_string(task));
  }
  return OkStatus();
}

const std::vector<size_t>& DocsSystem::AnsweredView(size_t worker) const {
  if (options_.async_inference) {
    static const std::vector<size_t> kEmpty;
    if (worker >= async_answered_.size()) return kEmpty;
    return async_answered_[worker];
  }
  return inference_->answered_tasks(worker);
}

bool DocsSystem::HasAnsweredView(size_t worker, size_t task) const {
  if (options_.async_inference) {
    const std::vector<size_t>& answered = AnsweredView(worker);
    return std::binary_search(answered.begin(), answered.end(), task);
  }
  return inference_->HasAnswered(worker, task);
}

size_t DocsSystem::AnsweredCountView(size_t task) const {
  if (options_.async_inference) {
    return task < async_answers_per_task_.size() ? async_answers_per_task_[task]
                                                 : 0;
  }
  return answers_per_task_[task];
}

bool DocsSystem::AtAnswerCap(size_t task) const {
  return options_.max_answers_per_task > 0 &&
         AnsweredCountView(task) + lease_count_[task] >=
             options_.max_answers_per_task;
}

bool DocsSystem::AbsorbAnswerCore(size_t worker, size_t task, size_t choice) {
  WorkerProfile& profile = workers_[worker];
  const bool golden_answer =
      is_golden_[task] && known_truth_[task] >= 0 && !profile.golden_done;

  Status status = inference_->OnAnswer(worker, task, choice);
  if (!status.ok()) {
    // Unreachable after ValidateAnswer; kept as a hard guard.
    DOCS_LOG(Warning) << "inference rejected answer: " << status.ToString();
    return false;
  }

  if (golden_answer) {
    const auto& r = tasks_[task].domain_vector;
    const bool correct = static_cast<int>(choice) == known_truth_[task];
    for (size_t k = 0; k < r.size(); ++k) {
      profile.golden_total[k] += r[k];
      if (correct) profile.golden_correct[k] += r[k];
    }
    ++profile.golden_answered;
    if (profile.golden_answered >= golden_.tasks.size()) {
      FinishGoldenPhase(worker);
    }
  }
  return true;
}

void DocsSystem::AbsorbAnswer(size_t worker, size_t task, size_t choice) {
  if (!AbsorbAnswerCore(worker, task, choice)) return;
  ++answers_per_task_[task];
  ReleaseLease(worker, task);
}

Status DocsSystem::SubmitAnswer(size_t worker, size_t task, size_t choice) {
  Status status = ValidateAnswer(worker, task, choice);
  if (!status.ok()) return status;
  AbsorbAnswer(worker, task, choice);

  // Delayed full inference every z submissions (Section 4.2), on the shared
  // scoring pool — the embedded engine must not stack a second hardware-sized
  // pool on top of ours.
  if (options_.reinfer_every > 0 &&
      ++answers_since_reinfer_ >= options_.reinfer_every) {
    inference_->RunFullInference(ScoringPool());
    answers_since_reinfer_ = 0;
  }
  return OkStatus();
}

void DocsSystem::RebuildAsyncBooks() {
  async_answered_.assign(workers_.size(), {});
  if (inference_ == nullptr) {
    async_answers_per_task_.clear();
    return;
  }
  for (size_t w = 0; w < workers_.size(); ++w) {
    async_answered_[w] = inference_->answered_tasks(w);  // Already ascending.
  }
  async_answers_per_task_ = answers_per_task_;
}

Status DocsSystem::ValidateAsyncSubmission(size_t worker, size_t task,
                                           size_t choice) const {
  if (inference_ == nullptr) {
    return FailedPreconditionError("no tasks ingested");
  }
  // No unknown-worker check here: the facade resolved `worker` through its
  // registry before calling (probing workers_ would read state the serving
  // thread must not touch). Task metadata is immutable after AddTasks, so
  // the bounds checks below are safe without the state lock. Messages track
  // ValidateAnswer verbatim — async mode must not change the wire contract.
  if (task >= tasks_.size()) {
    return InvalidArgumentError("unknown task " + std::to_string(task));
  }
  if (choice >= tasks_[task].num_choices) {
    return OutOfRangeError("choice " + std::to_string(choice) +
                           " out of range for task " + std::to_string(task) +
                           " with " + std::to_string(tasks_[task].num_choices) +
                           " choices");
  }
  if (HasAnsweredView(worker, task)) {
    return AlreadyExistsError("duplicate answer from worker " +
                              std::to_string(worker) + " for task " +
                              std::to_string(task));
  }
  return OkStatus();
}

void DocsSystem::RecordAsyncSubmission(size_t worker, size_t task) {
  if (async_answered_.size() <= worker) async_answered_.resize(worker + 1);
  std::vector<size_t>& answered = async_answered_[worker];
  answered.insert(std::upper_bound(answered.begin(), answered.end(), task),
                  task);
  ++async_answers_per_task_[task];
  ReleaseLease(worker, task);
}

Status DocsSystem::ApplyAsyncAnswer(size_t worker, size_t task, size_t choice) {
  // Re-validate against the live engine as a hard guard; a correctly booked
  // answer can only pass (the books run ahead of the engine, never behind).
  Status status = ValidateAnswer(worker, task, choice);
  if (!status.ok()) return status;
  if (!AbsorbAnswerCore(worker, task, choice)) {
    return InternalError("inference rejected a booked answer");
  }
  ++answers_per_task_[task];
  // Same periodic full inference as the sync path — identical op sequence,
  // so post-Drain() state is bitwise-identical (DESIGN.md §15).
  if (options_.reinfer_every > 0 &&
      ++answers_since_reinfer_ >= options_.reinfer_every) {
    inference_->RunFullInference(ScoringPool());
    answers_since_reinfer_ = 0;
  }
  return OkStatus();
}

std::shared_ptr<const InferenceSnapshot> DocsSystem::BuildSnapshot(
    const InferenceSnapshot* prev) {
  auto snap = std::make_shared<InferenceSnapshot>();
  snap->epoch = prev != nullptr ? prev->epoch + 1 : 1;
  if (inference_ == nullptr) return snap;
  snap->answers_applied = inference_->num_answers();
  const uint64_t generation = inference_->generation();
  snap->generation = generation;
  // A full re-inference moves every posterior and quality vector behind a
  // single generation bump, leaving the per-task epochs untouched — so every
  // copy-on-write share below must also require the generation unchanged, or
  // the new snapshot would alias stale state.
  const bool same_generation = prev != nullptr && prev->generation == generation;

  // Tasks copy-on-write: a task whose inference epoch is unchanged shares
  // the previous snapshot's immutable posterior; only the tasks the applied
  // batch (or EM pass) actually moved are copied — and recorded in
  // changed_tasks, the diff a one-publish-stale index repairs from.
  const size_t n = tasks_.size();
  snap->task_epochs.resize(n);
  snap->tasks.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t epoch = inference_->task_epoch(i);
    snap->task_epochs[i] = epoch;
    if (same_generation && i < prev->task_epochs.size() &&
        prev->task_epochs[i] == epoch) {
      snap->tasks[i] = prev->tasks[i];
      continue;
    }
    auto task_snap = std::make_shared<TaskPosteriorSnapshot>();
    task_snap->truth_matrix = inference_->truth_matrix(i);
    task_snap->truth = inference_->task_truth(i);
    snap->tasks[i] = std::move(task_snap);
    snap->changed_tasks.push_back(i);
  }

  snap->workers.resize(workers_.size());
  for (size_t w = 0; w < workers_.size(); ++w) {
    // CacheRow/IndexRow size the rows under the exclusive lock held here, so
    // the snapshot path never has to (row growth is exclusive-path work,
    // exactly as on the sharded sync path). The row objects' addresses are
    // stable for the system's lifetime (deque) — safe to publish.
    std::vector<CachedBenefit>* row = CacheRow(w);
    BenefitIndex* index = IndexRow(w);
    const uint64_t epoch = inference_->worker_epoch(w);
    const bool servable = workers_[w].golden_done;
    if (same_generation && w < prev->workers.size() &&
        prev->workers[w] != nullptr && prev->workers[w]->epoch == epoch &&
        prev->workers[w]->servable == servable &&
        prev->workers[w]->cache_row == row && prev->workers[w]->index == index) {
      snap->workers[w] = prev->workers[w];
      continue;
    }
    auto view = std::make_shared<WorkerSnapshot>();
    view->quality = inference_->worker_quality(w).quality;
    view->epoch = epoch;
    view->servable = servable;
    view->cache_row = row;
    view->index = index;
    snap->workers[w] = std::move(view);
  }
  return snap;
}

std::function<double(size_t)> DocsSystem::MakeSnapshotScoreFn(
    const InferenceSnapshot& snap, const WorkerSnapshot& view,
    std::vector<double>& quality) {
  if (options_.selection_rule == SelectionRule::kDomainMax) {
    quality = view.quality;
    return [this, &quality](size_t i) {
      double match = 0.0;
      for (size_t d = 0; d < quality.size(); ++d) {
        match += tasks_[i].domain_vector[d] * quality[d];
      }
      return match;
    };
  }

  if (options_.selection_rule == SelectionRule::kUncertainty) {
    return [&snap](size_t i) { return Entropy(snap.tasks[i]->truth); };
  }

  quality = view.quality;
  if (options_.selection_rule == SelectionRule::kQualityBlind) {
    double mean = 0.0;
    for (double q : quality) mean += q;
    mean /= std::max<size_t>(1, quality.size());
    std::fill(quality.begin(), quality.end(), mean);
  }
  if (options_.reference_kernel) {
    return [this, &snap, &quality](size_t i) {
      return Benefit(tasks_[i], snap.tasks[i]->truth_matrix,
                     snap.tasks[i]->truth, quality,
                     options_.assigner.quality_clamp);
    };
  }
  return [this, &snap, &quality](size_t i) {
    thread_local BenefitScratch scratch;
    return Benefit(tasks_[i], snap.tasks[i]->truth_matrix, snap.tasks[i]->truth,
                   quality, options_.assigner.quality_clamp, &scratch);
  };
}

std::vector<size_t> DocsSystem::ScoreAndRankSnapshot(
    const InferenceSnapshot& snap, size_t worker, ShardScratch& scratch,
    size_t k, ThreadPool* pool) {
  const WorkerSnapshot& view = *snap.workers[worker];
  // The cache keys on the snapshot-copied epochs: epochs are monotonic, so
  // an entry written against a newer snapshot (or by the exclusive path)
  // self-invalidates here, and a hit always reproduces the score this
  // snapshot's posteriors would yield.
  std::vector<CachedBenefit>* cache =
      options_.benefit_cache ? view.cache_row : nullptr;
  BenefitIndex* index = cache != nullptr ? view.index : nullptr;
  const std::function<double(size_t)> score =
      MakeSnapshotScoreFn(snap, view, scratch.quality);
  // Same frozen-bitmap discipline as the sharded sync path: eligibility was
  // captured under the assign lock, and both the index walk and the scan
  // fallback pick from that one candidate set.
  auto eligible_one = [&scratch](size_t task) {
    return scratch.eligible[task] != 0;
  };
  auto eligible_bitmap = [&scratch]() -> const std::vector<uint8_t>& {
    return scratch.eligible;
  };
  return RankWithIndex(worker, index, k, score, cache, view.epoch,
                       snap.task_epochs.data(), snap.generation, eligible_one,
                       eligible_bitmap, pool, &snap);
}

void DocsSystem::OnAnswer(size_t worker, size_t task, size_t choice) {
  Status status = SubmitAnswer(worker, task, choice);
  if (!status.ok()) {
    DOCS_LOG(Warning) << "OnAnswer: " << status.ToString();
  }
}

std::vector<size_t> DocsSystem::InferredChoices() {
  if (inference_ == nullptr) return {};
  return inference_->InferredChoices();
}

void DocsSystem::RunFullInference() {
  if (inference_ == nullptr) return;
  inference_->RunFullInference(ScoringPool());
  answers_since_reinfer_ = 0;
}

std::vector<std::string> DocsSystem::WorkerIds() const {
  std::vector<std::string> ids;
  ids.reserve(workers_.size());
  for (const WorkerProfile& worker : workers_) {
    ids.push_back(worker.external_id);
  }
  return ids;
}

Status DocsSystem::SaveCheckpoint(const std::string& path) const {
  if (inference_ == nullptr) {
    return FailedPreconditionError("no tasks ingested");
  }
  storage::StateCheckpoint checkpoint;
  checkpoint.tasks.reserve(tasks_.size());
  for (size_t i = 0; i < tasks_.size(); ++i) {
    storage::StateCheckpoint::TaskState task;
    task.domain_vector = tasks_[i].domain_vector;
    task.num_choices = tasks_[i].num_choices;
    task.known_truth = known_truth_[i];
    checkpoint.tasks.push_back(std::move(task));
  }
  checkpoint.golden_tasks = golden_.tasks;
  checkpoint.workers.reserve(workers_.size());
  for (size_t w = 0; w < workers_.size(); ++w) {
    storage::StateCheckpoint::WorkerState worker;
    worker.external_id = workers_[w].external_id;
    worker.golden_done = workers_[w].golden_done;
    const WorkerQuality& seed = inference_->worker_seed(w);
    worker.seed_quality = seed.quality;
    worker.seed_weight = seed.weight;
    checkpoint.workers.push_back(std::move(worker));
  }
  checkpoint.answers.reserve(inference_->answers().size());
  for (const Answer& answer : inference_->answers()) {
    checkpoint.answers.push_back({answer.task, answer.worker, answer.choice});
  }
  return storage::SaveStateCheckpoint(checkpoint, path);
}

Status DocsSystem::LoadCheckpoint(const std::string& path) {
  if (inference_ != nullptr) {
    return FailedPreconditionError("system already holds tasks");
  }
  auto checkpoint = storage::LoadStateCheckpoint(path);
  if (!checkpoint.ok()) return checkpoint.status();

  // Checkpoint contents are file data: validate them Status-grade here, up
  // front, because past this point they flow into CHECK-guarded code (the
  // incremental-TI constructor asserts on the domain vectors) and into
  // is_golden_ indexing. A corrupt file must surface as DataLossError, not
  // as an abort or an out-of-bounds write.
  for (size_t i = 0; i < checkpoint->tasks.size(); ++i) {
    const auto& task = checkpoint->tasks[i];
    if (task.num_choices < 2) {
      return DataLossError("checkpoint task " + std::to_string(i) + " has " +
                           std::to_string(task.num_choices) + " choices");
    }
    for (double r : task.domain_vector) {
      if (!std::isfinite(r) || r < -1e-9 || r > 1.0 + 1e-9) {
        return DataLossError("checkpoint task " + std::to_string(i) +
                             " has a corrupt domain vector entry " +
                             std::to_string(r));
      }
    }
  }
  for (size_t idx : checkpoint->golden_tasks) {
    if (idx >= checkpoint->tasks.size()) {
      return DataLossError("checkpoint golden task index " +
                           std::to_string(idx) + " out of range");
    }
  }

  tasks_.clear();
  known_truth_.clear();
  for (const auto& task : checkpoint->tasks) {
    Task restored;
    restored.domain_vector = task.domain_vector;
    restored.num_choices = task.num_choices;
    tasks_.push_back(std::move(restored));
    known_truth_.push_back(task.known_truth);
  }
  golden_ = GoldenSelectionResult{};
  golden_.tasks = checkpoint->golden_tasks;
  is_golden_.assign(tasks_.size(), 0);
  for (size_t idx : golden_.tasks) is_golden_[idx] = 1;

  inference_ = std::make_unique<IncrementalTruthInference>(
      tasks_, options_.truth_inference);
  answers_per_task_.assign(tasks_.size(), 0);
  lease_count_.assign(tasks_.size(), 0);
  leases_.clear();  // Leases are volatile: a restore reclaims all grants.

  // Re-register workers in index order, restore their seed profiles and
  // golden progress flags.
  for (size_t w = 0; w < checkpoint->workers.size(); ++w) {
    const auto& stored = checkpoint->workers[w];
    const size_t index = WorkerIndex(stored.external_id);
    if (index != w) return DataLossError("worker index mismatch on restore");
    if (!stored.seed_quality.empty()) {
      WorkerQuality seed;
      seed.quality = stored.seed_quality;
      seed.weight = stored.seed_weight;
      Status seed_status = inference_->SetWorkerQuality(index, seed);
      if (!seed_status.ok()) {
        // Same policy as corrupt answer records: drop the bad seed (the
        // worker restarts from the default profile) instead of failing the
        // whole restore.
        DOCS_LOG(Warning) << "checkpoint seed for worker '"
                          << stored.external_id
                          << "' dropped: " << seed_status.ToString();
      }
    }
    workers_[index].golden_done =
        stored.golden_done || golden_.tasks.empty();
  }

  // Replay answers: inference state rebuilds exactly; golden tallies for
  // workers still mid-probe are recomputed from the golden answers. Records
  // that fail the same validation live submissions go through (out-of-range
  // task/choice, duplicate (worker, task)) are dropped individually — a
  // corrupted record must neither index out of range nor lose the session.
  size_t replayed = 0;
  size_t dropped = 0;
  for (const auto& answer : checkpoint->answers) {
    if (!ValidateAnswer(answer.worker, answer.task, answer.choice).ok()) {
      ++dropped;
      continue;
    }
    AbsorbAnswer(answer.worker, answer.task, answer.choice);
    ++replayed;
  }
  if (dropped > 0) {
    DOCS_LOG(Warning) << "checkpoint replay dropped " << dropped
                      << " invalid answer record(s), kept " << replayed;
  }
  if (replayed > 0) inference_->RunFullInference(ScoringPool());
  answers_since_reinfer_ = 0;
  return OkStatus();
}

}  // namespace docs::core
