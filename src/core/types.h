#ifndef DOCS_CORE_TYPES_H_
#define DOCS_CORE_TYPES_H_

#include <cstddef>
#include <vector>

namespace docs::core {

/// A crowdsourcing task as the inference modules see it (Definition 2): a
/// domain vector r^{t_i} over the m domains and the number of choices l_{t_i}.
struct Task {
  std::vector<double> domain_vector;
  size_t num_choices = 2;
};

/// One worker answer v^w_i (Definition 4). Choices are 0-based internally.
struct Answer {
  size_t task = 0;
  size_t worker = 0;
  size_t choice = 0;
};

/// Per-worker quality vector q^w plus the weights u^w of Section 4.2 (the
/// expected number of answered tasks related to each domain).
struct WorkerQuality {
  std::vector<double> quality;
  std::vector<double> weight;
};

}  // namespace docs::core

#endif  // DOCS_CORE_TYPES_H_
