#ifndef DOCS_CORE_INCREMENTAL_TI_H_
#define DOCS_CORE_INCREMENTAL_TI_H_

#include <memory>
#include <vector>

#include "common/matrix.h"
#include "common/parallel.h"
#include "common/status.h"
#include "core/truth_inference.h"
#include "core/types.h"

namespace docs::core {

/// The incremental truth-inference engine of Section 4.2. It keeps, per task,
/// the log-numerator matrix M̂^(i) (Eq. 3's numerator), the normalized M^(i)
/// and the probabilistic truth s_i; and per worker the (q^w, u^w) statistics.
/// Each submitted answer is absorbed in O(m * |V(i)|):
///   step 1 updates only task t_i's parameters;
///   step 2 updates the submitting worker's quality and adjusts the quality
///          of every worker who answered t_i before (their s_{i,j} changed).
/// RunFullInference() re-runs the iterative algorithm over all stored answers
/// (DOCS does this every z = 100 submissions).
class IncrementalTruthInference {
 public:
  /// Takes ownership of the task list (domain vectors + choice counts).
  explicit IncrementalTruthInference(std::vector<Task> tasks,
                                     TruthInferenceOptions options = {});

  size_t num_tasks() const { return tasks_.size(); }
  size_t num_workers() const { return workers_.size(); }
  size_t num_answers() const { return answers_.size(); }
  const std::vector<Task>& tasks() const { return tasks_; }
  const std::vector<Answer>& answers() const { return answers_; }

  /// Grows the worker table to include `worker`, seeding new entries with
  /// the default quality. Called implicitly by OnAnswer.
  void EnsureWorker(size_t worker);

  /// Seeds/overrides a worker's quality (e.g. from golden tasks or the
  /// persistent WorkerStore). Also records it as the worker's seed for
  /// subsequent RunFullInference() calls. Rejects vectors whose dimension
  /// does not match the task domain count with InvalidArgument — a
  /// WorkerStore record written against a different domain count would
  /// otherwise index out of bounds inside OnAnswer.
  [[nodiscard]] Status SetWorkerQuality(size_t worker, const WorkerQuality& quality);

  /// Absorbs one answer with the O(m * |V(i)|) update policy.
  [[nodiscard]] Status OnAnswer(size_t worker, size_t task, size_t choice);

  /// Re-runs the iterative algorithm of Section 4.1 on all stored answers,
  /// starting from the seed qualities, and replaces the incremental state
  /// with the converged parameters. Parallelized over a lazily built pool of
  /// options().num_threads threads.
  void RunFullInference();

  /// As above but executes on a caller-provided pool (ignoring
  /// options().num_threads and never building an own pool), so a surrounding
  /// system can serve every hot loop from one pool instead of stacking
  /// hardware-sized pools per engine. `pool == nullptr` runs sequentially.
  void RunFullInference(ThreadPool* pool);

  const std::vector<double>& task_truth(size_t task) const {
    return task_truth_[task];
  }
  const Matrix& truth_matrix(size_t task) const {
    return truth_matrices_[task];
  }
  const WorkerQuality& worker_quality(size_t worker) const {
    return workers_[worker].stats;
  }
  /// The seed profile RunFullInference() restarts from (set by
  /// SetWorkerQuality, default quality otherwise).
  const WorkerQuality& worker_seed(size_t worker) const {
    return workers_[worker].seed;
  }
  /// True once `worker` answered `task` (workers answer a task at most once).
  /// Out-of-range worker or task indices read as "not answered" instead of
  /// reading out of bounds.
  bool HasAnswered(size_t worker, size_t task) const;

  /// The tasks `worker` has answered, ascending. Empty for unknown workers.
  /// O(1); the serving loop uses it to mask eligibility in O(|answered|)
  /// instead of O(n) HasAnswered probes.
  const std::vector<size_t>& answered_tasks(size_t worker) const;

  /// Version tag of task `task`'s inference state (M^(i), s_i). Bumped by
  /// OnAnswer only; starts at 1. Together with worker_epoch AND generation()
  /// it keys the OTA benefit cache (DESIGN.md §11/§16): a cached benefit is
  /// valid exactly while all three are unchanged. The batch re-run
  /// (RunFullInference) replaces every posterior WITHOUT walking the epoch
  /// arrays — it bumps the generation instead, which invalidates everything
  /// in O(1).
  uint64_t task_epoch(size_t task) const { return task_epoch_[task]; }

  /// The full per-task epoch array (indexed by task); snapshot publication
  /// copies it wholesale so the async serving path keys the benefit cache
  /// without touching live engine state.
  const std::vector<uint64_t>& task_epochs() const { return task_epoch_; }

  /// Version tag of `worker`'s quality vector; starts at 1. Bumped whenever
  /// the quality estimate moves incrementally: her own submissions, the
  /// retro-update fan-out of other workers' submissions on shared tasks, and
  /// SetWorkerQuality reseeds. RunFullInference bumps generation() instead.
  uint64_t worker_epoch(size_t worker) const { return workers_[worker].epoch; }

  /// Global invalidation generation; starts at 1. Bumped once — a single
  /// counter increment, not a per-task or per-worker walk — by every
  /// RunFullInference, which replaces all posteriors and all quality vectors
  /// at once. Cache entries and benefit indexes carry the generation they
  /// were built under and go stale the moment it moves (DESIGN.md §16).
  uint64_t generation() const { return generation_; }

  /// Targeted-repair feed for the per-worker benefit indexes (DESIGN.md
  /// §16): every task whose posterior moved incrementally (one OnAnswer
  /// each) is appended here, tagged with an absolute, monotonically growing
  /// sequence number. An index that recorded sequence c while fresh can
  /// catch up by repairing exactly the tasks in [c, mutation_log_end()); a
  /// cursor older than mutation_log_begin() means the log was trimmed (or a
  /// full inference cleared it) and the index must rebuild. Entries may name
  /// the same task repeatedly — repair is idempotent.
  uint64_t mutation_log_begin() const { return mutation_log_begin_; }
  uint64_t mutation_log_end() const {
    return mutation_log_begin_ + mutation_log_.size();
  }
  const std::vector<size_t>& mutation_log() const { return mutation_log_; }

  /// argmax_j s_{i,j} for every task.
  std::vector<size_t> InferredChoices() const;

  const TruthInferenceOptions& options() const { return options_; }

 private:
  struct WorkerState {
    WorkerQuality stats;
    WorkerQuality seed;
    /// Tasks answered, ascending. A sorted vector costs O(|answered|) memory
    /// instead of the former O(n)-per-worker bitmap (which made every
    /// new-worker registration an O(n) allocation on the serving path);
    /// membership is a binary search, insertion a bounded memmove.
    std::vector<size_t> answered;
    /// Quality-vector version tag; see worker_epoch().
    uint64_t epoch = 1;
  };

  /// Rebuilds M̂, M and s of `task` from scratch given current qualities.
  void RecomputeTask(size_t task);

  std::vector<Task> tasks_;
  TruthInferenceOptions options_;
  std::vector<Matrix> log_numerators_;  // M̂^(i), in log space
  std::vector<Matrix> truth_matrices_;  // M^(i)
  std::vector<std::vector<double>> task_truth_;  // s_i
  std::vector<uint64_t> task_epoch_;  // see task_epoch()
  uint64_t generation_ = 1;           // see generation()
  /// Dirty-task feed; see mutation_log(). Bounded: once it reaches
  /// kMutationLogCapacity it is trimmed wholesale (begin jumps to end), which
  /// simply demotes every index catch-up to a rebuild.
  std::vector<size_t> mutation_log_;
  uint64_t mutation_log_begin_ = 0;
  std::vector<std::vector<Answer>> answers_of_task_;
  std::vector<Answer> answers_;
  std::vector<WorkerState> workers_;
  /// OnAnswer scratch (the facade serializes OnAnswer callers, so single
  /// buffers suffice): s̃_i snapshot and the per-domain log-numerator row.
  /// Reused across calls so the per-answer update is allocation-free.
  std::vector<double> old_truth_scratch_;
  std::vector<double> row_scratch_;
  /// Pool for RunFullInference (the batch EM plus the per-task recompute
  /// fan-out), built lazily from options_.num_threads and reused across the
  /// periodic re-runs.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace docs::core

#endif  // DOCS_CORE_INCREMENTAL_TI_H_
