#include "core/truth_inference.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "common/math_utils.h"
#include "common/parallel.h"

namespace docs::core {
namespace {

double Clamp(double q, double clamp) {
  return std::min(1.0 - clamp, std::max(clamp, q));
}

/// True when `answer` can be scored against a task with `m` domains and `l`
/// choices under `qualities` without indexing out of bounds.
bool AnswerInBounds(const Answer& answer,
                    const std::vector<WorkerQuality>& qualities, size_t m,
                    size_t l) {
  return answer.worker < qualities.size() &&
         qualities[answer.worker].quality.size() == m && answer.choice < l;
}

}  // namespace

Matrix ComputeTruthMatrix(const Task& task,
                          const std::vector<Answer>& task_answers,
                          const std::vector<WorkerQuality>& qualities,
                          double quality_clamp, size_t* skipped_answers) {
  Matrix truth_matrix;
  ComputeTruthMatrixInto(task, task_answers, qualities, quality_clamp,
                         &truth_matrix, skipped_answers);
  return truth_matrix;
}

void ComputeTruthMatrixInto(const Task& task,
                            const std::vector<Answer>& task_answers,
                            const std::vector<WorkerQuality>& qualities,
                            double quality_clamp, Matrix* out,
                            size_t* skipped_answers) {
  const size_t m = task.domain_vector.size();
  const size_t l = task.num_choices;
  Matrix& truth_matrix = *out;
  truth_matrix.Resize(m, l);
  // Per-thread scratch: this runs inside the EM ParallelFor fan-out. The
  // buffers carry no state across calls (valid is rebuilt, log_row zeroed
  // per domain), so reuse cannot affect the result.
  thread_local std::vector<const Answer*> valid;
  thread_local std::vector<double> log_row;
  // Stray answers (worker unknown to `qualities`, mismatched quality
  // dimension, out-of-range choice) are dropped up front: the baselines feed
  // this function caller-supplied answer lists.
  valid.clear();
  valid.reserve(task_answers.size());
  size_t skipped = 0;
  for (const Answer& answer : task_answers) {
    if (AnswerInBounds(answer, qualities, m, l)) {
      valid.push_back(&answer);
    } else {
      ++skipped;
    }
  }
  if (skipped_answers != nullptr) *skipped_answers = skipped;

  log_row.assign(l, 0.0);
  for (size_t k = 0; k < m; ++k) {
    std::fill(log_row.begin(), log_row.end(), 0.0);
    for (const Answer* answer : valid) {
      const double q =
          Clamp(qualities[answer->worker].quality[k], quality_clamp);
      const double log_correct = std::log(q);
      const double log_wrong =
          std::log((1.0 - q) / static_cast<double>(l - 1 == 0 ? 1 : l - 1));
      for (size_t j = 0; j < l; ++j) {
        log_row[j] += (answer->choice == j) ? log_correct : log_wrong;
      }
    }
    // Row-normalize (Eq. 3) via a stable softmax over the log numerators.
    const double lse = LogSumExp(log_row);
    for (size_t j = 0; j < l; ++j) {
      truth_matrix(k, j) = std::exp(log_row[j] - lse);
    }
  }
  DOCS_DCHECK_FINITE(truth_matrix, "truth matrix (Eq. 3)");
}

std::vector<WorkerQuality> InitializeQualityFromGolden(
    const std::vector<Task>& tasks, size_t num_workers,
    const std::vector<Answer>& answers,
    const std::vector<size_t>& golden_tasks,
    const std::vector<size_t>& golden_truth, double default_quality,
    double smoothing, size_t* skipped_answers) {
  CheckUnitInterval(default_quality, 0.0, "default quality");
  DOCS_CHECK_GE(smoothing, 0.0) << "negative smoothing pseudo-counts";
  const size_t m = tasks.empty() ? 0 : tasks[0].domain_vector.size();
  // Map task -> golden truth for O(1) membership tests. golden_tasks and
  // golden_truth are parallel arrays: entries past the shorter one have no
  // counterpart and are dropped (never read out of bounds), as are golden
  // indices outside the task list.
  std::vector<int> truth_of_task(tasks.size(), -1);
  const size_t golden_n = std::min(golden_tasks.size(), golden_truth.size());
  size_t skipped = golden_tasks.size() - golden_n;
  for (size_t g = 0; g < golden_n; ++g) {
    if (golden_tasks[g] >= tasks.size()) continue;
    truth_of_task[golden_tasks[g]] = static_cast<int>(golden_truth[g]);
  }

  std::vector<WorkerQuality> result(num_workers);
  std::vector<std::vector<double>> correct_mass(
      num_workers, std::vector<double>(m, 0.0));
  std::vector<std::vector<double>> total_mass(num_workers,
                                              std::vector<double>(m, 0.0));
  for (const Answer& answer : answers) {
    if (answer.task >= tasks.size() || answer.worker >= num_workers ||
        tasks[answer.task].domain_vector.size() != m) {
      ++skipped;
      continue;
    }
    const int truth = truth_of_task[answer.task];
    if (truth < 0) continue;
    const auto& r = tasks[answer.task].domain_vector;
    const bool correct = answer.choice == static_cast<size_t>(truth);
    for (size_t k = 0; k < m; ++k) {
      total_mass[answer.worker][k] += r[k];
      if (correct) correct_mass[answer.worker][k] += r[k];
    }
  }
  if (skipped_answers != nullptr) *skipped_answers = skipped;
  for (size_t w = 0; w < num_workers; ++w) {
    result[w].quality.resize(m);
    result[w].weight.resize(m);
    for (size_t k = 0; k < m; ++k) {
      // With smoothing == 0 and no golden evidence the ratio would be 0/0;
      // fall back to the default rather than minting a NaN quality.
      const double mass = total_mass[w][k] + smoothing;
      result[w].quality[k] =
          mass > 0.0
              ? (correct_mass[w][k] + smoothing * default_quality) / mass
              : default_quality;
      result[w].weight[k] = total_mass[w][k];
    }
    DOCS_DCHECK_UNIT_INTERVAL(result[w].quality, 1e-9,
                              "golden-seeded worker quality");
  }
  return result;
}

TruthInference::TruthInference(TruthInferenceOptions options)
    : options_(options) {}

TruthInferenceResult TruthInference::Run(
    const std::vector<Task>& tasks, size_t num_workers,
    const std::vector<Answer>& answers,
    const std::vector<WorkerQuality>* initial_quality) const {
  const size_t threads = EffectiveThreadCount(options_.num_threads);
  if (threads > 1 &&
      (pool_ == nullptr || pool_->num_threads() != threads)) {
    pool_ = std::make_unique<ThreadPool>(threads);
  }
  return Run(tasks, num_workers, answers, initial_quality,
             threads > 1 ? pool_.get() : nullptr);
}

TruthInferenceResult TruthInference::Run(
    const std::vector<Task>& tasks, size_t num_workers,
    const std::vector<Answer>& answers,
    const std::vector<WorkerQuality>* initial_quality, ThreadPool* pool) const {
  const size_t n = tasks.size();
  const size_t m = n == 0 ? 0 : tasks[0].domain_vector.size();

  // Caller contracts (programming errors, not recoverable input): options in
  // range and every TI prior a valid domain vector (Eq. 1). Tasks whose
  // dimension differs from tasks[0] are tolerated (their answers are skipped
  // below), but each vector's entries must still be probabilities.
  CheckUnitInterval(options_.default_quality, 0.0, "default quality");
  DOCS_CHECK_GE(options_.quality_clamp, 0.0);
  DOCS_CHECK_LE(options_.quality_clamp, 0.5);
  for (const Task& task : tasks) {
    CheckUnitInterval(task.domain_vector, 1e-9,
                      "task domain vector (TI prior)");
  }

  TruthInferenceResult result;
  result.task_truth.resize(n);
  result.truth_matrices.resize(n);
  result.inferred_choice.assign(n, 0);

  // Per-task answer lists. Answers that cannot be attributed (task or worker
  // out of range, impossible choice) are dropped once here so both EM steps
  // see the same filtered view instead of indexing out of bounds.
  std::vector<std::vector<Answer>> answers_of_task(n);
  size_t stray = 0;
  for (const Answer& answer : answers) {
    if (answer.task >= n || answer.worker >= num_workers ||
        answer.choice >= tasks[answer.task].num_choices ||
        tasks[answer.task].domain_vector.size() != m) {
      ++stray;
      continue;
    }
    answers_of_task[answer.task].push_back(answer);
  }
  if (stray > 0) {
    DOCS_LOG(Warning) << "TruthInference::Run ignored " << stray
                      << " out-of-range answer(s)";
  }

  // Per-worker answer lists for step 2, in the same global order the
  // sequential sweep visits them (task-major, then submission order within a
  // task): each worker's evidence accumulates in exactly that order, so the
  // parallel per-worker reduction is bit-identical to the sequential one.
  struct TaskChoice {
    size_t task;
    size_t choice;
  };
  std::vector<std::vector<TaskChoice>> answers_of_worker(num_workers);
  for (size_t i = 0; i < n; ++i) {
    for (const Answer& answer : answers_of_task[i]) {
      answers_of_worker[answer.worker].push_back({i, answer.choice});
    }
  }

  // Worker qualities: seeded from `initial_quality` or the default.
  result.worker_quality.resize(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    if (initial_quality != nullptr && w < initial_quality->size() &&
        (*initial_quality)[w].quality.size() == m) {
      CheckUnitInterval((*initial_quality)[w].quality, 1e-9,
                        "seeded worker quality (Eq. 5)");
      result.worker_quality[w] = (*initial_quality)[w];
    } else {
      result.worker_quality[w].quality.assign(m, options_.default_quality);
      result.worker_quality[w].weight.assign(m, 0.0);
    }
  }
  const std::vector<WorkerQuality> seeded_quality = result.worker_quality;

  // Previous-iteration snapshots for the convergence check. Both are rotated
  // by swap, not copied: step 1 overwrites every task_truth entry and step 2
  // every quality entry, so the stale contents left in `result` by a swap are
  // never read — only their storage is reused. Byte-identical to the
  // copy-based rotation (determinism_test covers this).
  std::vector<std::vector<double>> prev_truth(n);
  std::vector<WorkerQuality> prev_quality = result.worker_quality;

  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    // Rotate: prev_truth takes the last iteration's truth, and step 1 below
    // refills result.task_truth (through buffers recycled from two
    // iterations ago). On break the freshly written truth stays in `result`.
    std::swap(prev_truth, result.task_truth);

    // --- Step 1: infer the truth from qualities (Eq. 2-4). ----------------
    // Each task owns its result slots, so the parallel loop commutes with
    // the sequential one bit for bit.
    ParallelFor(pool, n, [&](size_t i) {
      ComputeTruthMatrixInto(tasks[i], answers_of_task[i],
                             result.worker_quality, options_.quality_clamp,
                             &result.truth_matrices[i]);
      result.truth_matrices[i].LeftMultiplyInto(tasks[i].domain_vector,
                                                &result.task_truth[i]);
      // The domain vector always sums to 1 for the wrapper-produced tasks,
      // but guard against callers passing sub-normalized vectors.
      NormalizeInPlace(result.task_truth[i]);
      DOCS_DCHECK_SIMPLEX(result.task_truth[i], 1e-6,
                          "inferred task truth (Eq. 4)");
    });

    // --- Step 2: estimate worker qualities from the truth (Eq. 5). --------
    // Parallel over workers: the Eq. 5 numerator/denominator of worker w sum
    // only w's own answers, accumulated in the same order as the sequential
    // task-major sweep — no cross-thread reduction is needed and the result
    // is identical for every thread count.
    std::swap(prev_quality, result.worker_quality);
    ParallelFor(pool, num_workers, [&](size_t w) {
      std::vector<double> numer(m, 0.0);
      std::vector<double> denom(m, 0.0);
      for (const TaskChoice& tc : answers_of_worker[w]) {
        const auto& r = tasks[tc.task].domain_vector;
        const double s_iv = result.task_truth[tc.task][tc.choice];
        for (size_t k = 0; k < m; ++k) {
          numer[k] += r[k] * s_iv;
          denom[k] += r[k];
        }
      }
      // Hierarchical prior mean: the worker's overall accuracy pooled over
      // all domains (and her seed profile). Spammers are bad everywhere, so
      // a domain with little direct evidence borrows strength from the
      // worker's track record elsewhere instead of defaulting to a constant.
      double overall_numer = options_.quality_prior_strength *
                             options_.default_quality;
      double overall_denom = options_.quality_prior_strength;
      for (size_t k = 0; k < m; ++k) {
        overall_numer += numer[k] +
                         seeded_quality[w].quality[k] *
                             seeded_quality[w].weight[k];
        overall_denom += denom[k] + seeded_quality[w].weight[k];
      }
      const double overall_quality =
          overall_denom > 0.0 ? overall_numer / overall_denom
                              : options_.default_quality;
      for (size_t k = 0; k < m; ++k) {
        // Seed evidence counts at its stored weight; the hierarchical pull
        // has quality_prior_strength pseudo-counts.
        const double seed_mass = seeded_quality[w].weight[k];
        const double prior_numer =
            seeded_quality[w].quality[k] * seed_mass +
            overall_quality * options_.quality_prior_strength;
        const double prior_mass =
            seed_mass + options_.quality_prior_strength;
        const double total_mass = denom[k] + prior_mass;
        if (total_mass > 0.0) {
          result.worker_quality[w].quality[k] =
              (numer[k] + prior_numer) / total_mass;
        } else {
          // Pure paper formula (prior strength 0) with no data: keep seed.
          result.worker_quality[w].quality[k] = seeded_quality[w].quality[k];
        }
        result.worker_quality[w].weight[k] = denom[k] + seed_mass;
      }
      DOCS_DCHECK_UNIT_INTERVAL(result.worker_quality[w].quality, 1e-9,
                                "worker quality (Eq. 5)");
    });

    // --- Convergence check (Delta of Section 6.3). -------------------------
    // Kept sequential: it is O(n l + |W| m) against the O(n m l R) steps
    // above, and a serial sum keeps the early-exit decision (and therefore
    // the iteration count) bit-identical to the historical behavior.
    double delta = 0.0;
    if (iter > 0) {
      double truth_change = 0.0;
      size_t truth_terms = 0;
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < result.task_truth[i].size(); ++j) {
          truth_change += std::fabs(result.task_truth[i][j] - prev_truth[i][j]);
          ++truth_terms;
        }
      }
      double quality_change = 0.0;
      for (size_t w = 0; w < num_workers; ++w) {
        for (size_t k = 0; k < m; ++k) {
          quality_change += std::fabs(result.worker_quality[w].quality[k] -
                                      prev_quality[w].quality[k]);
        }
      }
      delta = (truth_terms > 0 ? truth_change / static_cast<double>(truth_terms)
                               : 0.0) +
              (num_workers * m > 0
                   ? quality_change / static_cast<double>(num_workers * m)
                   : 0.0);
      result.delta_history.push_back(delta);
    }
    result.iterations_run = iter + 1;
    if (iter > 0 && delta < options_.tolerance) break;
  }

  for (size_t i = 0; i < n; ++i) {
    if (!result.task_truth[i].empty()) {
      result.inferred_choice[i] = ArgMax(result.task_truth[i]);
    }
  }
  return result;
}

}  // namespace docs::core
