#ifndef DOCS_CORE_GOLDEN_SELECTION_H_
#define DOCS_CORE_GOLDEN_SELECTION_H_

#include <cstddef>
#include <vector>

#include "core/types.h"

namespace docs::core {

/// The aggregated task-domain distribution tau of Section 5.2:
/// tau_k = (sum_i r^{t_i}_k) / n.
std::vector<double> AggregateDomainDistribution(const std::vector<Task>& tasks);

/// Objective of Equation 11 for a candidate composition `counts` (the n'_k):
/// D(sigma, tau) with sigma_k = n'_k / n'. Zero-count terms contribute 0; a
/// positive count facing tau_k == 0 yields +infinity.
double GoldenObjective(const std::vector<size_t>& counts,
                       const std::vector<double>& tau);

/// The paper's approximation algorithm for Equation 11: floor lower bounds
/// n'_k = floor(tau_k * n') followed by greedy unit increments on the domain
/// that minimizes the objective. Runs in O(m^2 * n') worst case but the
/// paper shows at most m increments are needed.
std::vector<size_t> ApproximateGoldenCounts(const std::vector<double>& tau,
                                            size_t n_prime);

/// Exact minimizer of Equation 11 by enumerating all compositions of n' into
/// m parts — C(n'+m-1, m-1) cases; used for the Fig. 7(a) comparison and the
/// approximation-ratio measurement.
std::vector<size_t> OptimalGoldenCountsByEnumeration(
    const std::vector<double>& tau, size_t n_prime);

struct GoldenSelectionResult {
  /// Chosen golden tasks (indices into the task vector), deduplicated.
  std::vector<size_t> tasks;
  /// Per-domain counts n'_k.
  std::vector<size_t> counts;
  /// Achieved KL objective D(sigma, tau).
  double objective = 0.0;
};

/// Full golden-task selection (Section 5.2): solves Equation 11
/// approximately, then picks, for each domain d_k, the top n'_k tasks by
/// r^{t_i}_k (guideline 1), never reusing a task across domains.
GoldenSelectionResult SelectGoldenTasks(const std::vector<Task>& tasks,
                                        size_t n_prime);

}  // namespace docs::core

#endif  // DOCS_CORE_GOLDEN_SELECTION_H_
