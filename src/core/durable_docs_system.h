#ifndef DOCS_CORE_DURABLE_DOCS_SYSTEM_H_
#define DOCS_CORE_DURABLE_DOCS_SYSTEM_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sync.h"
#include "core/concurrent_docs_system.h"
#include "storage/answer_wal.h"

namespace docs::core {

struct DurableOptions {
  /// Recovery directory; holds `state.ckpt` (checkpoint) and `answers.wal`.
  std::string dir;
  /// Checkpoint + WAL-truncate automatically after this many applied
  /// answers; 0 = only on explicit Checkpoint() calls.
  size_t checkpoint_every = 0;
  /// Bound on the (worker, request_id) dedup window. Retries older than
  /// this many accepted submissions are no longer recognized as duplicates
  /// — the bound is the exactly-once horizon, sized far beyond any client's
  /// in-flight window.
  size_t dedup_window = 1 << 16;
};

/// Durability counters (monotonic since Recover()).
struct DurableStats {
  uint64_t wal_appends = 0;          ///< records durably appended
  uint64_t wal_append_failures = 0;  ///< submits rejected: WAL unavailable
  uint64_t answers_applied = 0;      ///< submits applied to the facade
  uint64_t answers_deduped = 0;      ///< retries answered from the window
  uint64_t answers_recovered = 0;    ///< answers replayed from the WAL tail
  uint64_t checkpoints = 0;          ///< checkpoint + truncation cycles
  uint64_t wal_records = 0;          ///< records physically in the WAL now
};

/// Durable, exactly-once layer over ConcurrentDocsSystem (DESIGN.md §12).
///
/// Every SubmitAnswer is appended to a write-ahead log and flushed *before*
/// it is applied; only then is it acknowledged. A client that never saw the
/// ack retries with the same request_id and is answered from a bounded
/// (worker, request_id) → status window without double-applying. Recover()
/// reconstructs the exact pre-crash state: latest checkpoint, then the WAL
/// tail (worker registrations in original order, then answers), then the
/// carried dedup window — bit-identical posteriors, verified by the chaos
/// suite.
///
/// Lock order: the durable mutex is taken strictly outside the facade's
/// lock. RequestTasks for an already-registered worker goes through the
/// facade alone — the WAL stays entirely off the warm serving path. With
/// the facade in async-inference mode (DESIGN.md §15) the ordering
/// append+flush → enqueue → ack holds because the durable mutex is held
/// across the WAL append and the facade submit: the answer is durable
/// before the inference service ever sees it, and the ack only goes out
/// after the books recorded it. Checkpoints quiesce the service (the
/// facade drains before saving), so WAL truncation never strands an acked,
/// queued answer.
class DurableDocsSystem {
 public:
  /// `system` must outlive this object. The facade must not be mutated
  /// behind the durable layer's back once serving starts: registrations and
  /// submissions must flow through RequestTasks/SubmitAnswer here or they
  /// will not survive a crash.
  DurableDocsSystem(ConcurrentDocsSystem* system, DurableOptions options);

  /// One-shot startup recovery; must succeed before the first serve. On an
  /// empty directory this is a no-op bootstrap (fresh WAL). With state on
  /// disk it requires a facade that has not had AddTasks called, loads the
  /// checkpoint, replays the WAL tail, and rebuilds the dedup window.
  /// Idempotent failure: a failed Recover leaves no WAL handle, so it can
  /// be retried after the cause clears.
  [[nodiscard]] Status Recover() DOCS_EXCLUDES(mutex_);
  bool recovered() const { return recovered_.load(std::memory_order_acquire); }

  /// Exactly-once submit. A (worker_id, request_id) pair already in the
  /// dedup window is acknowledged with its originally recorded status code
  /// without touching state; a fresh pair is WAL-appended + flushed first
  /// and rejected as kUnavailable (retryable, state untouched) if the log
  /// cannot take it. request_id 0 opts out of dedup (v1 peers).
  [[nodiscard]] Status SubmitAnswer(const std::string& worker_id, size_t task,
                                    size_t choice, uint64_t request_id)
      DOCS_EXCLUDES(mutex_);

  /// Serve a task request. Known workers are served lock-free with respect
  /// to the durable layer (facade lock only). A first-contact worker is
  /// durably registered — `reg` record appended + flushed before the index
  /// is assigned — so recovery reproduces registration order.
  [[nodiscard]] Status RequestTasks(const std::string& worker_id, size_t k,
                                    std::vector<size_t>* tasks)
      DOCS_EXCLUDES(mutex_);

  /// Checkpoint + WAL truncation: saves the full facade state, then
  /// atomically replaces the WAL with just the live dedup window. A crash
  /// between the two steps is safe — replaying the stale WAL on top of the
  /// new checkpoint rejects each answer as a duplicate, which recovery
  /// records in the window instead of double-applying.
  [[nodiscard]] Status Checkpoint() DOCS_EXCLUDES(mutex_);

  DurableStats stats() const;

  /// The wrapped facade, for reads and non-durable calls (ExpireLeases,
  /// stats). Mutating registrations/answers through it bypasses the WAL.
  ConcurrentDocsSystem* facade() { return system_; }

  const std::string& checkpoint_path() const { return checkpoint_path_; }
  const std::string& wal_path() const { return wal_path_; }

 private:
  struct DedupEntry {
    std::string worker_id;
    uint64_t request_id = 0;
    StatusCode code = StatusCode::kOk;
  };

  static std::string DedupKey(const std::string& worker_id,
                              uint64_t request_id) {
    // request_id digits + '#' + raw id: unambiguous because the digit run
    // contains no '#'.
    return std::to_string(request_id) + '#' + worker_id;
  }

  /// Inserts into the window, evicting FIFO past options_.dedup_window.
  void RecordDedupLocked(const std::string& worker_id, uint64_t request_id,
                         StatusCode code) DOCS_REQUIRES(mutex_);
  [[nodiscard]] Status CheckpointLocked() DOCS_REQUIRES(mutex_);

  ConcurrentDocsSystem* system_;
  DurableOptions options_;
  std::string checkpoint_path_;
  std::string wal_path_;

  /// Durable-layer lock; taken strictly OUTSIDE (before) every facade lock
  /// — CheckpointLocked and the replay path call into the facade while
  /// holding it, and the facade never calls back up into this layer.
  mutable Mutex mutex_;
  /// null until Recover() succeeds; the WAL itself is thread-compatible and
  /// relies entirely on this pointer's guard for cross-thread use.
  std::unique_ptr<storage::AnswerWal> wal_ DOCS_GUARDED_BY(mutex_)
      DOCS_PT_GUARDED_BY(mutex_);
  std::deque<DedupEntry> window_ DOCS_GUARDED_BY(mutex_);  ///< FIFO, oldest 1st
  std::unordered_map<std::string, StatusCode> window_index_
      DOCS_GUARDED_BY(mutex_);
  size_t answers_since_checkpoint_ DOCS_GUARDED_BY(mutex_) = 0;

  std::atomic<bool> recovered_{false};
  std::atomic<uint64_t> wal_appends_{0};
  std::atomic<uint64_t> wal_append_failures_{0};
  std::atomic<uint64_t> answers_applied_{0};
  std::atomic<uint64_t> answers_deduped_{0};
  std::atomic<uint64_t> answers_recovered_{0};
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<uint64_t> wal_records_{0};
};

}  // namespace docs::core

#endif  // DOCS_CORE_DURABLE_DOCS_SYSTEM_H_
