#include "core/concurrent_docs_system.h"

#include <optional>
#include <thread>
#include <utility>

namespace docs::core {

Status ConcurrentDocsSystem::AddTasks(const std::vector<TaskInput>& inputs,
                                      const std::vector<size_t>* known_truths) {
  WriterLock lock(&state_mutex_);
  return system_.AddTasks(inputs, known_truths);
}

std::vector<size_t> ConcurrentDocsSystem::RequestTasks(
    const std::string& worker_id, size_t k) {
  {
    ReaderLock state(&state_mutex_);
    const std::optional<size_t> worker = system_.FindWorker(worker_id);
    if (worker.has_value() && system_.CanServeSharded(*worker)) {
      return ServeShardedLocked(*worker, k);
    }
  }
  // Slow path: first contact (registration grows shared structure), golden
  // probes, or a benefit-cache row not yet sized — all exclusive-lock work.
  // The eligibility re-check happens inside SelectTasks, so losing the lock
  // between the probe above and here costs a detour, never correctness.
  WriterLock lock(&state_mutex_);
  return system_.SelectTasks(system_.WorkerIndex(worker_id), k);
}

std::vector<size_t> ConcurrentDocsSystem::ServeShardedLocked(size_t worker,
                                                             size_t k) {
  WorkerShard& shard = shards_[worker % kNumShards];
  // The shard lock serializes same-row cache access and hands this request
  // exclusive use of the shard's scoring scratch.
  MutexLock shard_lock(&shard.mutex);
  for (int attempt = 0;; ++attempt) {
    {
      MutexLock assign(&assign_mutex_);
      system_.BeginShardedSelect(worker, &shard.scratch.eligible);
    }
    // One deterministic pool, many would-be users: the winner of the
    // try-lock fans the scoring pass out, everyone else scores serially.
    // Bit-identical either way (the ranking is thread-count invariant), so
    // contention degrades latency, never results. Explicit TryLock/Unlock
    // on the tracked boolean (not a scoped guard): the analysis follows the
    // branch on a try-acquire result, so both paths check out.
    const bool pool_locked = pool_mutex_.TryLock();
    ThreadPool* pool = pool_locked ? system_.ScoringPool() : nullptr;
    std::vector<size_t> selected =
        system_.ScoreAndRankSharded(worker, shard.scratch, k, pool);
    if (pool_locked) pool_mutex_.Unlock();
    {
      MutexLock assign(&assign_mutex_);
      // A commit conflict means another shard granted the last cap slot of a
      // selected task mid-scoring; rescore from a fresh snapshot, and after
      // two clean retries force through without the conflicted tasks.
      const bool force = attempt >= 2;
      if (system_.CommitShardedSelect(worker, &selected, force)) {
        return selected;
      }
    }
  }
}

Status ConcurrentDocsSystem::SubmitAnswer(const std::string& worker_id,
                                          size_t task, size_t choice) {
  WriterLock lock(&state_mutex_);
  const std::optional<size_t> worker = system_.FindWorker(worker_id);
  if (!worker.has_value()) {
    return InvalidArgumentError("unknown worker '" + worker_id +
                                "': never seen by RequestTasks/LoadWorker");
  }
  return system_.SubmitAnswer(*worker, task, choice);
}

std::vector<ExpiredLease> ConcurrentDocsSystem::ExpireLeases(uint64_t now) {
  ReaderLock state(&state_mutex_);
  MutexLock assign(&assign_mutex_);
  return system_.ExpireLeases(now);
}

Status ConcurrentDocsSystem::LoadWorker(const std::string& worker_id,
                                        const storage::WorkerStore& store) {
  WriterLock lock(&state_mutex_);
  return system_.LoadWorker(worker_id, store);
}

uint64_t ConcurrentDocsSystem::lease_clock() {
  ReaderLock state(&state_mutex_);
  MutexLock assign(&assign_mutex_);
  return system_.lease_clock();
}

size_t ConcurrentDocsSystem::num_tasks() {
  ReaderLock state(&state_mutex_);
  return system_.tasks().size();
}

size_t ConcurrentDocsSystem::outstanding_leases() {
  ReaderLock state(&state_mutex_);
  MutexLock assign(&assign_mutex_);
  return system_.outstanding_leases();
}

std::vector<size_t> ConcurrentDocsSystem::InferredChoices() {
  WriterLock lock(&state_mutex_);
  return system_.InferredChoices();
}

size_t ConcurrentDocsSystem::num_answers() {
  ReaderLock state(&state_mutex_);
  return system_.inference().num_answers();
}

void ConcurrentDocsSystem::RunFullInference() {
  WriterLock lock(&state_mutex_);
  system_.RunFullInference();
}

std::vector<std::string> ConcurrentDocsSystem::WorkerIds() {
  ReaderLock state(&state_mutex_);
  return system_.WorkerIds();
}

uint64_t ConcurrentDocsSystem::benefit_cache_hits() {
  ReaderLock state(&state_mutex_);
  return system_.benefit_cache_hits();
}

uint64_t ConcurrentDocsSystem::benefit_cache_misses() {
  ReaderLock state(&state_mutex_);
  return system_.benefit_cache_misses();
}

uint64_t ConcurrentDocsSystem::benefit_cache_request_hits() {
  ReaderLock state(&state_mutex_);
  return system_.benefit_cache_request_hits();
}

uint64_t ConcurrentDocsSystem::benefit_cache_request_misses() {
  ReaderLock state(&state_mutex_);
  return system_.benefit_cache_request_misses();
}

Status ConcurrentDocsSystem::SaveCheckpoint(const std::string& path) {
  // Snapshot state is everything the sharded path only reads (tasks, golden
  // set, seeds, answers) — leases are volatile by contract — so a shared
  // lock suffices and a save never stalls serving.
  ReaderLock state(&state_mutex_);
  return system_.SaveCheckpoint(path);
}

Status ConcurrentDocsSystem::LoadCheckpoint(const std::string& path) {
  WriterLock lock(&state_mutex_);
  return system_.LoadCheckpoint(path);
}

Status ConcurrentDocsSystem::SaveCheckpointWithRetry(
    const std::string& path, const CheckpointRetryOptions& retry) {
  const size_t attempts = retry.max_attempts > 0 ? retry.max_attempts : 1;
  std::chrono::duration<double, std::milli> backoff = retry.initial_backoff;
  Status status;
  for (size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(backoff);
      backoff *= retry.backoff_multiplier;
    }
    status = SaveCheckpoint(path);
    if (status.ok()) return status;
  }
  return status;
}

}  // namespace docs::core
