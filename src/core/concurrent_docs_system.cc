#include "core/concurrent_docs_system.h"

#include <optional>
#include <thread>
#include <utility>

#include "common/logging.h"

namespace docs::core {

ConcurrentDocsSystem::ConcurrentDocsSystem(
    const kb::KnowledgeBase* knowledge_base, DocsSystemOptions options)
    : async_(options.async_inference),
      async_queue_capacity_(options.async_queue_capacity),
      system_(knowledge_base, std::move(options)) {
  if (async_) {
    // Constructed here (started at ingest) so the pointer never changes
    // while another thread can observe it — async_stats() and the serving
    // paths read it lock-free.
    InferenceServiceOptions service_options;
    service_options.queue_capacity = async_queue_capacity_;
    service_ = std::make_unique<InferenceService>(
        [this](const std::vector<PendingAnswer>& batch) {
          return ApplyBatch(batch);
        },
        service_options);
  }
}

ConcurrentDocsSystem::~ConcurrentDocsSystem() {
  // Explicit for clarity only: service_ is declared last, so its destructor
  // (which drains and joins the apply thread) runs before system_ dies.
  if (service_ != nullptr) service_->Stop();
}

Status ConcurrentDocsSystem::AddTasks(const std::vector<TaskInput>& inputs,
                                      const std::vector<size_t>* known_truths) {
  WriterLock lock(&state_mutex_);
  Status status = system_.AddTasks(inputs, known_truths);
  if (status.ok() && async_) StartAsyncLocked();
  return status;
}

void ConcurrentDocsSystem::StartAsyncLocked() {
  {
    MutexLock assign(&assign_mutex_);
    system_.RebuildAsyncBooks();
  }
  // Built eagerly: once serving starts, the pool may only be built under
  // pool_mutex_, and the exclusive-path callers below this layer do not
  // take it in sync mode.
  system_.ScoringPool();
  SyncRegistryFromStateLocked();
  service_->Publish(system_.BuildSnapshot(nullptr));
  service_->Start();
}

void ConcurrentDocsSystem::SyncRegistryFromStateLocked() {
  const size_t count = system_.inference().num_workers();
  WriterLock reg(&registry_mutex_);
  for (size_t w = registered_count_; w < count; ++w) {
    async_registry_.emplace(system_.worker_external_id(w), w);
  }
  registered_count_ = count;
}

std::shared_ptr<const InferenceSnapshot> ConcurrentDocsSystem::ApplyBatch(
    const std::vector<PendingAnswer>& batch) {
  WriterLock lock(&state_mutex_);
  // The pool lock is held for the whole batch: the periodic full EM inside
  // ApplyAsyncAnswer fans out on the shared pool, and snapshot scorers
  // try-lock it (losing the race costs them a serial pass, never a stall).
  MutexLock pool(&pool_mutex_);
  for (const PendingAnswer& answer : batch) {
    if (async_apply_hook_) async_apply_hook_(answer);
    Status status =
        system_.ApplyAsyncAnswer(answer.worker, answer.task, answer.choice);
    if (!status.ok()) {
      // Unreachable for a correctly booked answer; surfaced, not silently
      // dropped, if it ever fires.
      DOCS_LOG(Warning) << "async apply rejected a booked answer: "
                        << status.ToString();
    }
  }
  std::shared_ptr<const InferenceSnapshot> prev = service_->snapshot();
  auto next = system_.BuildSnapshot(prev.get());
  // Workers registered by the exclusive path since the last publish become
  // resolvable without the state lock from here on.
  SyncRegistryFromStateLocked();
  return next;
}

std::vector<size_t> ConcurrentDocsSystem::RequestTasks(
    const std::string& worker_id, size_t k) {
  if (async_) return RequestTasksAsync(worker_id, k);
  {
    ReaderLock state(&state_mutex_);
    const std::optional<size_t> worker = system_.FindWorker(worker_id);
    if (worker.has_value() && system_.CanServeSharded(*worker)) {
      return ServeShardedLocked(*worker, k);
    }
  }
  // Slow path: first contact (registration grows shared structure), golden
  // probes, or a benefit-cache row not yet sized — all exclusive-lock work.
  // The eligibility re-check happens inside SelectTasks, so losing the lock
  // between the probe above and here costs a detour, never correctness.
  WriterLock lock(&state_mutex_);
  return system_.SelectTasks(system_.WorkerIndex(worker_id), k);
}

std::vector<size_t> ConcurrentDocsSystem::RequestTasksAsync(
    const std::string& worker_id, size_t k) {
  std::optional<size_t> worker;
  {
    ReaderLock reg(&registry_mutex_);
    auto it = async_registry_.find(worker_id);
    if (it != async_registry_.end()) worker = it->second;
  }
  if (worker.has_value()) {
    // Pin the current snapshot for the whole pass; a publish mid-pass
    // retires the old epoch without touching it.
    std::shared_ptr<const InferenceSnapshot> snap = service_->snapshot();
    if (snap != nullptr && *worker < snap->workers.size() &&
        snap->workers[*worker] != nullptr && snap->workers[*worker]->servable) {
      return ServeSnapshot(*snap, *worker, k);
    }
  }
  // Cold path: first contact, golden probes, or a worker not yet servable in
  // the published snapshot. Exclusive over state — serialized against the
  // apply thread — plus her shard stripe (a concurrent snapshot pass for the
  // same worker writes her cache row under it), the assign lock (lease books
  // + submission books), and the pool lock (snapshot scorers try-lock it).
  WriterLock lock(&state_mutex_);
  const size_t index = system_.WorkerIndex(worker_id);
  SyncRegistryFromStateLocked();
  MutexLock shard_lock(&shards_[index % kNumShards].mutex);
  MutexLock assign(&assign_mutex_);
  MutexLock pool(&pool_mutex_);
  return system_.SelectTasks(index, k);
}

std::vector<size_t> ConcurrentDocsSystem::ServeSnapshot(
    const InferenceSnapshot& snap, size_t worker, size_t k) {
  // Mirrors ServeShardedLocked, with the published snapshot standing in for
  // the live engine — no state lock anywhere on this path, so a concurrent
  // retro-update fan-out or full EM pass never blocks it.
  WorkerShard& shard = shards_[worker % kNumShards];
  MutexLock shard_lock(&shard.mutex);
  for (int attempt = 0;; ++attempt) {
    {
      MutexLock assign(&assign_mutex_);
      AsyncSystem().BeginShardedSelect(worker, &shard.scratch.eligible);
    }
    const bool pool_locked = pool_mutex_.TryLock();
    ThreadPool* pool = pool_locked ? AsyncSystem().ScoringPool() : nullptr;
    std::vector<size_t> selected =
        AsyncSystem().ScoreAndRankSnapshot(snap, worker, shard.scratch, k, pool);
    if (pool_locked) pool_mutex_.Unlock();
    {
      MutexLock assign(&assign_mutex_);
      const bool force = attempt >= 2;
      if (AsyncSystem().CommitShardedSelect(worker, &selected, force)) {
        return selected;
      }
    }
  }
}

std::vector<size_t> ConcurrentDocsSystem::ServeShardedLocked(size_t worker,
                                                             size_t k) {
  WorkerShard& shard = shards_[worker % kNumShards];
  // The shard lock serializes same-row cache access and hands this request
  // exclusive use of the shard's scoring scratch.
  MutexLock shard_lock(&shard.mutex);
  for (int attempt = 0;; ++attempt) {
    {
      MutexLock assign(&assign_mutex_);
      system_.BeginShardedSelect(worker, &shard.scratch.eligible);
    }
    // One deterministic pool, many would-be users: the winner of the
    // try-lock fans the scoring pass out, everyone else scores serially.
    // Bit-identical either way (the ranking is thread-count invariant), so
    // contention degrades latency, never results. Explicit TryLock/Unlock
    // on the tracked boolean (not a scoped guard): the analysis follows the
    // branch on a try-acquire result, so both paths check out.
    const bool pool_locked = pool_mutex_.TryLock();
    ThreadPool* pool = pool_locked ? system_.ScoringPool() : nullptr;
    std::vector<size_t> selected =
        system_.ScoreAndRankSharded(worker, shard.scratch, k, pool);
    if (pool_locked) pool_mutex_.Unlock();
    {
      MutexLock assign(&assign_mutex_);
      // A commit conflict means another shard granted the last cap slot of a
      // selected task mid-scoring; rescore from a fresh snapshot, and after
      // two clean retries force through without the conflicted tasks.
      const bool force = attempt >= 2;
      if (system_.CommitShardedSelect(worker, &selected, force)) {
        return selected;
      }
    }
  }
}

Status ConcurrentDocsSystem::SubmitAnswer(const std::string& worker_id,
                                          size_t task, size_t choice) {
  if (async_) {
    // Resolve without the state lock; fall back to the exclusive path for
    // workers registered behind the registry's back (checkpoint recovery).
    std::optional<size_t> worker;
    {
      ReaderLock reg(&registry_mutex_);
      auto it = async_registry_.find(worker_id);
      if (it != async_registry_.end()) worker = it->second;
    }
    if (!worker.has_value()) worker = ResolveWorkerAsync(worker_id);
    if (!worker.has_value()) {
      return InvalidArgumentError("unknown worker '" + worker_id +
                                  "': never seen by RequestTasks/LoadWorker");
    }
    // Validate + book under assign, then enqueue with no lock held (Enqueue
    // blocks on a full queue — backpressure must not pin the lease books).
    // The books make the sync-path side effects (duplicate rejection, cap
    // accounting, lease release) visible at ack time, before the engine
    // absorbs the answer.
    {
      MutexLock assign(&assign_mutex_);
      Status status = AsyncSystem().ValidateAsyncSubmission(*worker, task, choice);
      if (!status.ok()) return status;
      AsyncSystem().RecordAsyncSubmission(*worker, task);
    }
    service_->Enqueue({*worker, task, choice});
    return OkStatus();
  }
  WriterLock lock(&state_mutex_);
  const std::optional<size_t> worker = system_.FindWorker(worker_id);
  if (!worker.has_value()) {
    return InvalidArgumentError("unknown worker '" + worker_id +
                                "': never seen by RequestTasks/LoadWorker");
  }
  return system_.SubmitAnswer(*worker, task, choice);
}

std::optional<size_t> ConcurrentDocsSystem::ResolveWorkerAsync(
    const std::string& worker_id) {
  WriterLock lock(&state_mutex_);
  const std::optional<size_t> worker = system_.FindWorker(worker_id);
  if (worker.has_value()) SyncRegistryFromStateLocked();
  return worker;
}

bool ConcurrentDocsSystem::KnowsWorker(const std::string& worker_id) {
  {
    ReaderLock reg(&registry_mutex_);
    if (async_registry_.find(worker_id) != async_registry_.end()) return true;
  }
  ReaderLock state(&state_mutex_);
  return system_.FindWorker(worker_id).has_value();
}

void ConcurrentDocsSystem::Drain() {
  if (service_ != nullptr) service_->Drain();
}

AsyncInferenceStats ConcurrentDocsSystem::async_stats() const {
  AsyncInferenceStats out;
  out.enabled = async_;
  if (service_ != nullptr) out.service = service_->stats();
  out.last_sweep_epoch = last_sweep_epoch_.load(std::memory_order_relaxed);
  return out;
}

std::vector<ExpiredLease> ConcurrentDocsSystem::ExpireLeases(uint64_t now) {
  if (async_) {
    // The async sweep reads only assign-guarded lease books — never live
    // inference state — so it cannot observe a half-applied retro-update no
    // matter where the apply thread is. The snapshot epoch is sampled first
    // and recorded so observers can bound which publish the sweep was
    // consistent with (tests/gateway_test.cc races sweeps against
    // publishes; DESIGN.md §15).
    const uint64_t epoch =
        service_ != nullptr && service_->snapshot() != nullptr
            ? service_->snapshot()->epoch
            : 0;
    std::vector<ExpiredLease> expired;
    {
      MutexLock assign(&assign_mutex_);
      expired = AsyncSystem().ExpireLeases(now);
    }
    last_sweep_epoch_.store(epoch, std::memory_order_relaxed);
    return expired;
  }
  ReaderLock state(&state_mutex_);
  MutexLock assign(&assign_mutex_);
  return system_.ExpireLeases(now);
}

Status ConcurrentDocsSystem::LoadWorker(const std::string& worker_id,
                                        const storage::WorkerStore& store) {
  if (async_) {
    // The seed reshapes the worker's quality out-of-band; drain so it lands
    // on converged state (sync-mode timing), apply under the exclusive lock,
    // then force a publish so the snapshot serves the seeded profile.
    Drain();
    Status status;
    {
      WriterLock lock(&state_mutex_);
      status = system_.LoadWorker(worker_id, store);
      if (status.ok()) SyncRegistryFromStateLocked();
    }
    if (status.ok()) service_->RequestRepublish();
    return status;
  }
  WriterLock lock(&state_mutex_);
  return system_.LoadWorker(worker_id, store);
}

uint64_t ConcurrentDocsSystem::lease_clock() {
  // Async mode: the clock is assign-guarded and the reactor lease sweeps
  // read it on their serving threads — taking the state lock here would
  // stall a reactor behind a running EM pass.
  if (async_) {
    MutexLock assign(&assign_mutex_);
    return AsyncSystem().lease_clock();
  }
  ReaderLock state(&state_mutex_);
  MutexLock assign(&assign_mutex_);
  return system_.lease_clock();
}

size_t ConcurrentDocsSystem::num_tasks() {
  ReaderLock state(&state_mutex_);
  return system_.tasks().size();
}

size_t ConcurrentDocsSystem::outstanding_leases() {
  if (async_) {
    MutexLock assign(&assign_mutex_);
    return AsyncSystem().outstanding_leases();
  }
  ReaderLock state(&state_mutex_);
  MutexLock assign(&assign_mutex_);
  return system_.outstanding_leases();
}

std::vector<size_t> ConcurrentDocsSystem::InferredChoices() {
  // Quiesce first in async mode: the inferred truths must reflect every
  // acked answer, exactly as the sync path guarantees.
  if (async_) Drain();
  WriterLock lock(&state_mutex_);
  return system_.InferredChoices();
}

size_t ConcurrentDocsSystem::num_answers() {
  ReaderLock state(&state_mutex_);
  return system_.inference().num_answers();
}

void ConcurrentDocsSystem::RunFullInference() {
  if (async_) {
    // Drain → run on converged state; pool lock because snapshot scorers
    // try-lock the shared pool; republish so the snapshot serves the result.
    Drain();
    {
      WriterLock lock(&state_mutex_);
      MutexLock pool(&pool_mutex_);
      system_.RunFullInference();
    }
    service_->RequestRepublish();
    return;
  }
  WriterLock lock(&state_mutex_);
  system_.RunFullInference();
}

std::vector<std::string> ConcurrentDocsSystem::WorkerIds() {
  ReaderLock state(&state_mutex_);
  return system_.WorkerIds();
}

uint64_t ConcurrentDocsSystem::benefit_cache_hits() {
  ReaderLock state(&state_mutex_);
  return system_.benefit_cache_hits();
}

uint64_t ConcurrentDocsSystem::benefit_cache_misses() {
  ReaderLock state(&state_mutex_);
  return system_.benefit_cache_misses();
}

uint64_t ConcurrentDocsSystem::benefit_cache_request_hits() {
  ReaderLock state(&state_mutex_);
  return system_.benefit_cache_request_hits();
}

uint64_t ConcurrentDocsSystem::benefit_cache_request_misses() {
  ReaderLock state(&state_mutex_);
  return system_.benefit_cache_request_misses();
}

uint64_t ConcurrentDocsSystem::benefit_index_pops() {
  ReaderLock state(&state_mutex_);
  return system_.benefit_index_pops();
}

uint64_t ConcurrentDocsSystem::benefit_index_repairs() {
  ReaderLock state(&state_mutex_);
  return system_.benefit_index_repairs();
}

uint64_t ConcurrentDocsSystem::benefit_index_rebuilds() {
  ReaderLock state(&state_mutex_);
  return system_.benefit_index_rebuilds();
}

uint64_t ConcurrentDocsSystem::benefit_index_generation_invalidations() {
  ReaderLock state(&state_mutex_);
  return system_.benefit_index_generation_invalidations();
}

Status ConcurrentDocsSystem::SaveCheckpoint(const std::string& path) {
  // Async mode quiesces first so the checkpoint contains every acked answer
  // — the durable layer truncates its WAL after a checkpoint, and an acked
  // answer must never exist in neither.
  if (async_) Drain();
  // Snapshot state is everything the sharded path only reads (tasks, golden
  // set, seeds, answers) — leases are volatile by contract — so a shared
  // lock suffices and a save never stalls serving.
  ReaderLock state(&state_mutex_);
  return system_.SaveCheckpoint(path);
}

Status ConcurrentDocsSystem::LoadCheckpoint(const std::string& path) {
  WriterLock lock(&state_mutex_);
  Status status = system_.LoadCheckpoint(path);
  if (status.ok() && async_) StartAsyncLocked();
  return status;
}

Status ConcurrentDocsSystem::SaveCheckpointWithRetry(
    const std::string& path, const CheckpointRetryOptions& retry) {
  const size_t attempts = retry.max_attempts > 0 ? retry.max_attempts : 1;
  std::chrono::duration<double, std::milli> backoff = retry.initial_backoff;
  Status status;
  for (size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(backoff);
      backoff *= retry.backoff_multiplier;
    }
    status = SaveCheckpoint(path);
    if (status.ok()) return status;
  }
  return status;
}

}  // namespace docs::core
