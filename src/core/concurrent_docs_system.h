#ifndef DOCS_CORE_CONCURRENT_DOCS_SYSTEM_H_
#define DOCS_CORE_CONCURRENT_DOCS_SYSTEM_H_

#include <chrono>
#include <string>
#include <vector>

#include "common/sync.h"
#include "core/docs_system.h"

namespace docs::core {

/// Bounded retry policy for checkpoint saves: transient storage failures
/// (full disk, slow NFS, an injected fault) are retried with exponential
/// backoff instead of dropping the snapshot on the floor.
struct CheckpointRetryOptions {
  size_t max_attempts = 5;
  std::chrono::milliseconds initial_backoff{1};
  double backoff_multiplier = 2.0;
};

/// Thread-safe facade over DocsSystem for a serving deployment: the real
/// system sits behind a web frontend where AMT's callbacks (task requests,
/// answer submissions) arrive concurrently.
///
/// Sharded locking (DESIGN.md §13): steady-state RequestTasks — a returning,
/// golden-complete worker asking for her next HIT — is the hot path, and its
/// scoring pass only *reads* the inference posteriors while writing nothing
/// shared beyond her own benefit-cache row and the lease books. So the facade
/// runs it under a reader (shared) state lock, with the writes funneled
/// through two narrow mutexes:
///  - a per-worker shard lock (worker index mod kNumShards) guarding her
///    cache row and reusable scoring scratch, so concurrent requests from
///    different workers score genuinely in parallel;
///  - one assign lock guarding the lease books and logical clock, held only
///    for the O(n) eligibility snapshot and the O(k) grant commit.
/// Everything that mutates shared structure — answer submission (step 2 of
/// §4.2 touches the task's truth and every co-answering worker's quality),
/// first-contact registration, golden probes, checkpoint restore, full
/// inference — takes the state lock exclusively, which by itself excludes
/// all sharded readers; no finer lock is needed on that path.
///
/// The scoring thread pool stays engine-owned and deterministic (DESIGN.md
/// §8): sharded scorers try-lock a pool mutex, and the loser of the race
/// scores serially — bit-identical either way, because the ranking is
/// thread-count invariant.
///
/// Lock hierarchy (acquire left-to-right, never right-to-left; DESIGN.md
/// §14, machine-checked via the DOCS_* annotations below):
///   state (shared or exclusive) → shard → { assign | pool }.
class ConcurrentDocsSystem {
 public:
  ConcurrentDocsSystem(const kb::KnowledgeBase* knowledge_base,
                       DocsSystemOptions options = {})
      : system_(knowledge_base, std::move(options)) {}

  [[nodiscard]] Status AddTasks(const std::vector<TaskInput>& inputs,
                                const std::vector<size_t>* known_truths =
                                    nullptr) DOCS_EXCLUDES(state_mutex_);

  /// Atomically resolves the worker id and selects her next HIT. Known
  /// workers past the golden phase are served under the shared state lock
  /// (parallel across worker shards); first contact and golden probes fall
  /// back to the exclusive path.
  std::vector<size_t> RequestTasks(const std::string& worker_id, size_t k)
      DOCS_EXCLUDES(state_mutex_, assign_mutex_, pool_mutex_);

  /// Atomically resolves the worker id and submits one answer. Invalid
  /// submissions (unknown task, out-of-range choice, duplicate (worker,
  /// task) pair) are rejected with the reason instead of silently dropped —
  /// the web frontend can surface it to the platform. A worker id never seen
  /// by RequestTasks/LoadWorker is rejected too: resolving it here would
  /// silently register a fresh worker for every malformed or forged id the
  /// network delivers.
  [[nodiscard]] Status SubmitAnswer(const std::string& worker_id, size_t task,
                                    size_t choice)
      DOCS_EXCLUDES(state_mutex_);

  /// Reclaims every lease whose logical deadline is at or before `now`
  /// (workers who accepted a HIT and vanished); the freed tasks are
  /// immediately assignable again. Serving deployments call this on a timer.
  /// Touches only the lease books, so it runs under the shared state lock
  /// plus the assign lock — a sweep never stalls in-flight scoring.
  std::vector<ExpiredLease> ExpireLeases(uint64_t now)
      DOCS_EXCLUDES(state_mutex_, assign_mutex_);

  /// Seeds a returning worker's quality profile from the persistent store;
  /// the worker is registered and skips the golden probe (Theorem 1 state).
  [[nodiscard]] Status LoadWorker(const std::string& worker_id,
                                  const storage::WorkerStore& store)
      DOCS_EXCLUDES(state_mutex_);

  uint64_t lease_clock() DOCS_EXCLUDES(state_mutex_, assign_mutex_);
  size_t num_tasks() DOCS_EXCLUDES(state_mutex_);
  size_t outstanding_leases() DOCS_EXCLUDES(state_mutex_, assign_mutex_);
  std::vector<size_t> InferredChoices() DOCS_EXCLUDES(state_mutex_);
  size_t num_answers() DOCS_EXCLUDES(state_mutex_);

  /// Forces a full inference pass (the recovery bit-equality oracle; see
  /// DocsSystem::RunFullInference).
  void RunFullInference() DOCS_EXCLUDES(state_mutex_);

  /// Registered worker ids in registration order.
  std::vector<std::string> WorkerIds() DOCS_EXCLUDES(state_mutex_);

  /// Row- and request-level benefit-cache counters; see DocsSystem for the
  /// distinction (rows are the wrong unit for a hit-rate).
  uint64_t benefit_cache_hits() DOCS_EXCLUDES(state_mutex_);
  uint64_t benefit_cache_misses() DOCS_EXCLUDES(state_mutex_);
  uint64_t benefit_cache_request_hits() DOCS_EXCLUDES(state_mutex_);
  uint64_t benefit_cache_request_misses() DOCS_EXCLUDES(state_mutex_);

  [[nodiscard]] Status SaveCheckpoint(const std::string& path)
      DOCS_EXCLUDES(state_mutex_);
  [[nodiscard]] Status LoadCheckpoint(const std::string& path)
      DOCS_EXCLUDES(state_mutex_);

  /// SaveCheckpoint with bounded retry: sleeps between attempts with
  /// exponential backoff (outside the lock, so serving calls proceed while
  /// the saver waits out a transient storage failure). Returns the last
  /// attempt's status.
  [[nodiscard]] Status SaveCheckpointWithRetry(
      const std::string& path, const CheckpointRetryOptions& retry = {});

  /// Runs `fn` under the exclusive lock with direct access to the underlying
  /// system — for setup/inspection that needs several calls to be atomic.
  template <typename Fn>
  auto WithLocked(Fn&& fn) DOCS_EXCLUDES(state_mutex_) {
    WriterLock lock(&state_mutex_);
    return fn(system_);
  }

 private:
  /// Worker-shard count: a fixed power of two well above any realistic
  /// reactor count, so concurrent requests rarely collide on a shard.
  static constexpr size_t kNumShards = 16;

  /// One lock stripe: guards the scoring scratch below and the benefit-cache
  /// rows of every worker hashing to this shard. Cache-line aligned so two
  /// reactors hammering adjacent shards do not false-share.
  struct alignas(64) WorkerShard {
    Mutex mutex;
    /// Guarded by `mutex` (declared via the annotation so the analysis binds
    /// the scratch to its own stripe, not a sibling's).
    DocsSystem::ShardScratch scratch DOCS_GUARDED_BY(mutex);
  };

  /// The sharded fast path; caller holds the shared state lock and has
  /// verified CanServeSharded. Snapshot → score → commit, retrying on a
  /// commit-time redundancy-cap conflict (forced through, dropping only the
  /// conflicted tasks, on the final attempt so a hot task cannot livelock
  /// the request).
  std::vector<size_t> ServeShardedLocked(size_t worker, size_t k)
      DOCS_REQUIRES_SHARED(state_mutex_)
          DOCS_EXCLUDES(assign_mutex_, pool_mutex_);

  /// Top of the hierarchy: every other lock here is acquired strictly after
  /// it (shared for the sharded serve, exclusive for mutators).
  SharedMutex state_mutex_ DOCS_ACQUIRED_BEFORE(assign_mutex_, pool_mutex_);
  /// Lease books + logical clock; taken after state and any shard stripe,
  /// never before one.
  Mutex assign_mutex_ DOCS_ACQUIRED_BEFORE(pool_mutex_);
  /// Scoring-pool try-lock (DESIGN.md §13): the loser scores serially.
  Mutex pool_mutex_;
  WorkerShard shards_[kNumShards];
  /// The wrapped engine. Hold state_mutex_ — shared on read-mostly serving
  /// paths (per-shard writes are funneled through the stripe mutexes),
  /// exclusive for anything that mutates shared structure.
  DocsSystem system_ DOCS_GUARDED_BY(state_mutex_);
};

}  // namespace docs::core

#endif  // DOCS_CORE_CONCURRENT_DOCS_SYSTEM_H_
