#ifndef DOCS_CORE_CONCURRENT_DOCS_SYSTEM_H_
#define DOCS_CORE_CONCURRENT_DOCS_SYSTEM_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sync.h"
#include "core/docs_system.h"
#include "core/inference_service.h"

namespace docs::core {

/// Bounded retry policy for checkpoint saves: transient storage failures
/// (full disk, slow NFS, an injected fault) are retried with exponential
/// backoff instead of dropping the snapshot on the floor.
struct CheckpointRetryOptions {
  size_t max_attempts = 5;
  std::chrono::milliseconds initial_backoff{1};
  double backoff_multiplier = 2.0;
};

/// Staleness observability for async mode (DESIGN.md §15): the service's
/// counters plus the snapshot epoch the last lease sweep ran against. All
/// zero when async mode is off.
struct AsyncInferenceStats {
  bool enabled = false;
  InferenceServiceStats service;
  uint64_t last_sweep_epoch = 0;
};

/// Thread-safe facade over DocsSystem for a serving deployment: the real
/// system sits behind a web frontend where AMT's callbacks (task requests,
/// answer submissions) arrive concurrently.
///
/// Sharded locking (DESIGN.md §13): steady-state RequestTasks — a returning,
/// golden-complete worker asking for her next HIT — is the hot path, and its
/// scoring pass only *reads* the inference posteriors while writing nothing
/// shared beyond her own benefit-cache row and the lease books. So the facade
/// runs it under a reader (shared) state lock, with the writes funneled
/// through two narrow mutexes:
///  - a per-worker shard lock (worker index mod kNumShards) guarding her
///    cache row and reusable scoring scratch, so concurrent requests from
///    different workers score genuinely in parallel;
///  - one assign lock guarding the lease books and logical clock, held only
///    for the O(n) eligibility snapshot and the O(k) grant commit.
/// Everything that mutates shared structure — answer submission (step 2 of
/// §4.2 touches the task's truth and every co-answering worker's quality),
/// first-contact registration, golden probes, checkpoint restore, full
/// inference — takes the state lock exclusively, which by itself excludes
/// all sharded readers; no finer lock is needed on that path.
///
/// The scoring thread pool stays engine-owned and deterministic (DESIGN.md
/// §8): sharded scorers try-lock a pool mutex, and the loser of the race
/// scores serially — bit-identical either way, because the ranking is
/// thread-count invariant.
///
/// Async mode (DESIGN.md §15, DocsSystemOptions::async_inference): inference
/// absorption moves onto a background InferenceService thread. SubmitAnswer
/// validates against the submission books under the assign lock, enqueues,
/// and acks — it never takes the state lock. RequestTasks for a servable
/// worker scores against the last published immutable snapshot under only
/// her shard stripe (plus assign for the lease phases) — so neither serving
/// call ever waits on a retro-update fan-out or the periodic full EM.
///
/// Lock hierarchy (acquire left-to-right, never right-to-left; DESIGN.md
/// §14, machine-checked via the DOCS_* annotations below):
///   state (shared or exclusive) → shard → { assign | pool } → registry.
/// The InferenceService's queue and snapshot mutexes are leaves held by no
/// path that also holds any lock above (the service thread holds neither
/// while applying; producers hold nothing while enqueueing), so the queue
/// EXCLUDES the state lock by construction.
class ConcurrentDocsSystem {
 public:
  ConcurrentDocsSystem(const kb::KnowledgeBase* knowledge_base,
                       DocsSystemOptions options = {});
  ~ConcurrentDocsSystem();

  [[nodiscard]] Status AddTasks(const std::vector<TaskInput>& inputs,
                                const std::vector<size_t>* known_truths =
                                    nullptr) DOCS_EXCLUDES(state_mutex_);

  /// Atomically resolves the worker id and selects her next HIT. Known
  /// workers past the golden phase are served under the shared state lock
  /// (parallel across worker shards); first contact and golden probes fall
  /// back to the exclusive path.
  std::vector<size_t> RequestTasks(const std::string& worker_id, size_t k)
      DOCS_EXCLUDES(state_mutex_, assign_mutex_, pool_mutex_);

  /// Atomically resolves the worker id and submits one answer. Invalid
  /// submissions (unknown task, out-of-range choice, duplicate (worker,
  /// task) pair) are rejected with the reason instead of silently dropped —
  /// the web frontend can surface it to the platform. A worker id never seen
  /// by RequestTasks/LoadWorker is rejected too: resolving it here would
  /// silently register a fresh worker for every malformed or forged id the
  /// network delivers.
  [[nodiscard]] Status SubmitAnswer(const std::string& worker_id, size_t task,
                                    size_t choice)
      DOCS_EXCLUDES(state_mutex_);

  /// Reclaims every lease whose logical deadline is at or before `now`
  /// (workers who accepted a HIT and vanished); the freed tasks are
  /// immediately assignable again. Serving deployments call this on a timer.
  /// Touches only the lease books, so it runs under the shared state lock
  /// plus the assign lock — a sweep never stalls in-flight scoring.
  std::vector<ExpiredLease> ExpireLeases(uint64_t now)
      DOCS_EXCLUDES(state_mutex_, assign_mutex_);

  /// Seeds a returning worker's quality profile from the persistent store;
  /// the worker is registered and skips the golden probe (Theorem 1 state).
  [[nodiscard]] Status LoadWorker(const std::string& worker_id,
                                  const storage::WorkerStore& store)
      DOCS_EXCLUDES(state_mutex_);

  uint64_t lease_clock() DOCS_EXCLUDES(state_mutex_, assign_mutex_);
  size_t num_tasks() DOCS_EXCLUDES(state_mutex_);
  size_t outstanding_leases() DOCS_EXCLUDES(state_mutex_, assign_mutex_);
  std::vector<size_t> InferredChoices() DOCS_EXCLUDES(state_mutex_);
  size_t num_answers() DOCS_EXCLUDES(state_mutex_);

  /// Forces a full inference pass (the recovery bit-equality oracle; see
  /// DocsSystem::RunFullInference).
  void RunFullInference() DOCS_EXCLUDES(state_mutex_);

  /// Registered worker ids in registration order.
  std::vector<std::string> WorkerIds() DOCS_EXCLUDES(state_mutex_);

  /// Row- and request-level benefit-cache counters; see DocsSystem for the
  /// distinction (rows are the wrong unit for a hit-rate).
  uint64_t benefit_cache_hits() DOCS_EXCLUDES(state_mutex_);
  uint64_t benefit_cache_misses() DOCS_EXCLUDES(state_mutex_);
  uint64_t benefit_cache_request_hits() DOCS_EXCLUDES(state_mutex_);
  uint64_t benefit_cache_request_misses() DOCS_EXCLUDES(state_mutex_);

  /// Benefit-index effectiveness counters (DESIGN.md §16): heap pops served,
  /// targeted repairs, full rebuilds, and O(1) generation invalidations.
  uint64_t benefit_index_pops() DOCS_EXCLUDES(state_mutex_);
  uint64_t benefit_index_repairs() DOCS_EXCLUDES(state_mutex_);
  uint64_t benefit_index_rebuilds() DOCS_EXCLUDES(state_mutex_);
  uint64_t benefit_index_generation_invalidations() DOCS_EXCLUDES(state_mutex_);

  [[nodiscard]] Status SaveCheckpoint(const std::string& path)
      DOCS_EXCLUDES(state_mutex_);
  [[nodiscard]] Status LoadCheckpoint(const std::string& path)
      DOCS_EXCLUDES(state_mutex_);

  /// SaveCheckpoint with bounded retry: sleeps between attempts with
  /// exponential backoff (outside the lock, so serving calls proceed while
  /// the saver waits out a transient storage failure). Returns the last
  /// attempt's status.
  [[nodiscard]] Status SaveCheckpointWithRetry(
      const std::string& path, const CheckpointRetryOptions& retry = {});

  /// Runs `fn` under the exclusive lock with direct access to the underlying
  /// system — for setup/inspection that needs several calls to be atomic.
  /// Async-mode callers that read inference state should Drain() first: the
  /// lock serializes against the service thread, but queued answers are
  /// otherwise still in flight.
  template <typename Fn>
  auto WithLocked(Fn&& fn) DOCS_EXCLUDES(state_mutex_) {
    WriterLock lock(&state_mutex_);
    return fn(system_);
  }

  /// True when `worker_id` is already registered (async registry first, then
  /// the state table). The durable layer gates its lock-free warm path on
  /// this so registration stays on the recovery-ordered exclusive path.
  bool KnowsWorker(const std::string& worker_id)
      DOCS_EXCLUDES(state_mutex_, registry_mutex_);

  /// Async-mode quiesce barrier: returns once every answer acked before the
  /// call is applied and visible in a published snapshot. No-op in sync
  /// mode. Callers must hold no lock (the apply path takes state + pool).
  void Drain() DOCS_EXCLUDES(state_mutex_, assign_mutex_, pool_mutex_);

  /// Staleness counters; safe to call concurrently with serving. All-zero /
  /// disabled in sync mode.
  AsyncInferenceStats async_stats() const;

  /// Test hook: runs on the service thread immediately before each answer is
  /// applied (e.g. to slow an apply/EM pass down deliberately). Must be
  /// installed before AddTasks/LoadCheckpoint — the service reads it
  /// unsynchronized once running.
  void SetAsyncApplyHookForTest(std::function<void(const PendingAnswer&)> hook) {
    async_apply_hook_ = std::move(hook);
  }

 private:
  /// Worker-shard count: a fixed power of two well above any realistic
  /// reactor count, so concurrent requests rarely collide on a shard.
  static constexpr size_t kNumShards = 16;

  /// One lock stripe: guards the scoring scratch below and the benefit-cache
  /// rows of every worker hashing to this shard. Cache-line aligned so two
  /// reactors hammering adjacent shards do not false-share.
  struct alignas(64) WorkerShard {
    Mutex mutex;
    /// Guarded by `mutex` (declared via the annotation so the analysis binds
    /// the scratch to its own stripe, not a sibling's).
    DocsSystem::ShardScratch scratch DOCS_GUARDED_BY(mutex);
  };

  /// The sharded fast path; caller holds the shared state lock and has
  /// verified CanServeSharded. Snapshot → score → commit, retrying on a
  /// commit-time redundancy-cap conflict (forced through, dropping only the
  /// conflicted tasks, on the final attempt so a hot task cannot livelock
  /// the request).
  std::vector<size_t> ServeShardedLocked(size_t worker, size_t k)
      DOCS_REQUIRES_SHARED(state_mutex_)
          DOCS_EXCLUDES(assign_mutex_, pool_mutex_);

  /// Async serving (DESIGN.md §15). RequestTasksAsync resolves through the
  /// registry and serves from the published snapshot; ServeSnapshot is the
  /// lock-free-over-state variant of ServeShardedLocked (shard stripe →
  /// assign/pool only). ResolveWorkerAsync is the registry-miss fallback for
  /// workers registered behind the registry's back (checkpoint recovery).
  std::vector<size_t> RequestTasksAsync(const std::string& worker_id, size_t k)
      DOCS_EXCLUDES(state_mutex_, assign_mutex_, pool_mutex_, registry_mutex_);
  std::vector<size_t> ServeSnapshot(const InferenceSnapshot& snap,
                                    size_t worker, size_t k)
      DOCS_EXCLUDES(state_mutex_, assign_mutex_, pool_mutex_);
  std::optional<size_t> ResolveWorkerAsync(const std::string& worker_id)
      DOCS_EXCLUDES(state_mutex_, registry_mutex_);

  /// Mirrors newly registered workers into the async registry (incremental:
  /// only indices past the last sync).
  void SyncRegistryFromStateLocked() DOCS_REQUIRES(state_mutex_)
      DOCS_EXCLUDES(registry_mutex_);

  /// Books + registry + initial snapshot + service start, after a successful
  /// ingest/restore.
  void StartAsyncLocked() DOCS_REQUIRES(state_mutex_)
      DOCS_EXCLUDES(assign_mutex_, registry_mutex_);

  /// The InferenceService's apply callback: runs on the service thread,
  /// applies one FIFO batch under state (exclusive) + pool, and builds the
  /// next snapshot copy-on-write.
  std::shared_ptr<const InferenceSnapshot> ApplyBatch(
      const std::vector<PendingAnswer>& batch)
      DOCS_EXCLUDES(state_mutex_, pool_mutex_);

  /// Narrow, documented escape hatch from system_'s GUARDED_BY(state_mutex_)
  /// for the async paths that by design run without the state lock. Every
  /// member they reach is protected by a finer lock the caller holds (assign
  /// for books/leases, the shard stripe for cache rows) or is immutable
  /// after ingest (tasks, options) — see the locking notes on each
  /// DocsSystem async method.
  DocsSystem& AsyncSystem() DOCS_NO_THREAD_SAFETY_ANALYSIS { return system_; }

  /// Top of the hierarchy: every other lock here is acquired strictly after
  /// it (shared for the sharded serve, exclusive for mutators).
  SharedMutex state_mutex_
      DOCS_ACQUIRED_BEFORE(assign_mutex_, pool_mutex_, registry_mutex_);
  /// Lease books + logical clock; taken after state and any shard stripe,
  /// never before one. In async mode also guards the submission books and is
  /// the ONLY lock the lease paths (sweeps, grants, releases) need.
  Mutex assign_mutex_ DOCS_ACQUIRED_BEFORE(pool_mutex_);
  /// Scoring-pool try-lock (DESIGN.md §13): the loser scores serially.
  Mutex pool_mutex_;
  WorkerShard shards_[kNumShards];
  /// Async worker registry: external id → dense index, mirrored from the
  /// state table so async SubmitAnswer resolves ids without the state lock.
  /// Writers hold state (exclusive) + registry; readers registry alone.
  mutable SharedMutex registry_mutex_;
  std::unordered_map<std::string, size_t> async_registry_
      DOCS_GUARDED_BY(registry_mutex_);
  /// Worker count already mirrored (indices < this are in the registry).
  size_t registered_count_ DOCS_GUARDED_BY(registry_mutex_) = 0;
  /// Fixed at construction (copied before options move into system_).
  const bool async_;
  const size_t async_queue_capacity_;
  /// See SetAsyncApplyHookForTest: written before the service starts only.
  std::function<void(const PendingAnswer&)> async_apply_hook_;
  /// Snapshot epoch the last async lease sweep was consistent with.
  std::atomic<uint64_t> last_sweep_epoch_{0};
  /// The wrapped engine. Hold state_mutex_ — shared on read-mostly serving
  /// paths (per-shard writes are funneled through the stripe mutexes),
  /// exclusive for anything that mutates shared structure. Async paths go
  /// through AsyncSystem() under the finer-lock contract documented there.
  DocsSystem system_ DOCS_GUARDED_BY(state_mutex_);
  /// The background inference thread; constructed (not started) in the
  /// constructor when async mode is on, so the pointer is immutable while
  /// any other thread can observe it. Declared last: destroyed first, and
  /// its destructor joins the thread before system_ can die under it.
  std::unique_ptr<InferenceService> service_;
};

}  // namespace docs::core

#endif  // DOCS_CORE_CONCURRENT_DOCS_SYSTEM_H_
