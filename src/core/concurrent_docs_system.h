#ifndef DOCS_CORE_CONCURRENT_DOCS_SYSTEM_H_
#define DOCS_CORE_CONCURRENT_DOCS_SYSTEM_H_

#include <mutex>
#include <string>
#include <vector>

#include "core/docs_system.h"

namespace docs::core {

/// Thread-safe facade over DocsSystem for a serving deployment: the real
/// system sits behind a web frontend where AMT's callbacks (task requests,
/// answer submissions) arrive concurrently. DocsSystem itself is
/// single-threaded by design (the incremental-TI state is one shared
/// mutable structure), so this facade serializes access with a mutex and
/// exposes the two platform-facing calls plus snapshot reads.
///
/// Why a coarse lock rather than finer-grained concurrency: every answer
/// touches the shared truth/quality state of its task *and* of every worker
/// who answered that task before (step 2 of §4.2), so per-task locking
/// would still contend on workers; the per-call work is tens of
/// microseconds, which a single mutex sustains at far beyond any realistic
/// crowdsourcing answer rate.
class ConcurrentDocsSystem {
 public:
  ConcurrentDocsSystem(const kb::KnowledgeBase* knowledge_base,
                       DocsSystemOptions options = {})
      : system_(knowledge_base, std::move(options)) {}

  Status AddTasks(const std::vector<TaskInput>& inputs,
                  const std::vector<size_t>* known_truths = nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    return system_.AddTasks(inputs, known_truths);
  }

  /// Atomically resolves the worker id and selects her next HIT.
  std::vector<size_t> RequestTasks(const std::string& worker_id, size_t k) {
    std::lock_guard<std::mutex> lock(mutex_);
    return system_.SelectTasks(system_.WorkerIndex(worker_id), k);
  }

  /// Atomically resolves the worker id and submits one answer.
  void SubmitAnswer(const std::string& worker_id, size_t task, size_t choice) {
    std::lock_guard<std::mutex> lock(mutex_);
    system_.OnAnswer(system_.WorkerIndex(worker_id), task, choice);
  }

  std::vector<size_t> InferredChoices() {
    std::lock_guard<std::mutex> lock(mutex_);
    return system_.InferredChoices();
  }

  size_t num_answers() {
    std::lock_guard<std::mutex> lock(mutex_);
    return system_.inference().num_answers();
  }

  Status SaveCheckpoint(const std::string& path) {
    std::lock_guard<std::mutex> lock(mutex_);
    return system_.SaveCheckpoint(path);
  }

  Status LoadCheckpoint(const std::string& path) {
    std::lock_guard<std::mutex> lock(mutex_);
    return system_.LoadCheckpoint(path);
  }

  /// Runs `fn` under the lock with direct access to the underlying system —
  /// for setup/inspection that needs several calls to be atomic.
  template <typename Fn>
  auto WithLocked(Fn&& fn) {
    std::lock_guard<std::mutex> lock(mutex_);
    return fn(system_);
  }

 private:
  std::mutex mutex_;
  DocsSystem system_;
};

}  // namespace docs::core

#endif  // DOCS_CORE_CONCURRENT_DOCS_SYSTEM_H_
