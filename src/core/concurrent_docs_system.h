#ifndef DOCS_CORE_CONCURRENT_DOCS_SYSTEM_H_
#define DOCS_CORE_CONCURRENT_DOCS_SYSTEM_H_

#include <chrono>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/docs_system.h"

namespace docs::core {

/// Bounded retry policy for checkpoint saves: transient storage failures
/// (full disk, slow NFS, an injected fault) are retried with exponential
/// backoff instead of dropping the snapshot on the floor.
struct CheckpointRetryOptions {
  size_t max_attempts = 5;
  std::chrono::milliseconds initial_backoff{1};
  double backoff_multiplier = 2.0;
};

/// Thread-safe facade over DocsSystem for a serving deployment: the real
/// system sits behind a web frontend where AMT's callbacks (task requests,
/// answer submissions) arrive concurrently. DocsSystem itself is
/// single-threaded by design (the incremental-TI state is one shared
/// mutable structure), so this facade serializes access with a mutex and
/// exposes the two platform-facing calls plus snapshot reads.
///
/// Why a coarse lock rather than finer-grained concurrency: every answer
/// touches the shared truth/quality state of its task *and* of every worker
/// who answered that task before (step 2 of §4.2), so per-task locking
/// would still contend on workers; the per-call work is tens of
/// microseconds, which a single mutex sustains at far beyond any realistic
/// crowdsourcing answer rate.
///
/// The coarse lock does not make the engine single-threaded internally:
/// with DocsSystemOptions::num_threads != 1 the wrapped DocsSystem
/// parallelizes *within* a call (the EM sweep, the recompute fan-out, the
/// SelectTasks scoring loop) on its own deterministic pool (DESIGN.md §8).
/// The mutex serializes callers; each serialized call may fan out. The two
/// compose because the pool is owned entirely by the engine — worker
/// threads never touch system state outside the Run() region the caller
/// holds the lock for.
class ConcurrentDocsSystem {
 public:
  ConcurrentDocsSystem(const kb::KnowledgeBase* knowledge_base,
                       DocsSystemOptions options = {})
      : system_(knowledge_base, std::move(options)) {}

  [[nodiscard]] Status AddTasks(const std::vector<TaskInput>& inputs,
                  const std::vector<size_t>* known_truths = nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    return system_.AddTasks(inputs, known_truths);
  }

  /// Atomically resolves the worker id and selects her next HIT.
  std::vector<size_t> RequestTasks(const std::string& worker_id, size_t k) {
    std::lock_guard<std::mutex> lock(mutex_);
    return system_.SelectTasks(system_.WorkerIndex(worker_id), k);
  }

  /// Atomically resolves the worker id and submits one answer. Invalid
  /// submissions (unknown task, out-of-range choice, duplicate (worker,
  /// task) pair) are rejected with the reason instead of silently dropped —
  /// the web frontend can surface it to the platform. A worker id never seen
  /// by RequestTasks/LoadWorker is rejected too: resolving it here would
  /// silently register a fresh worker for every malformed or forged id the
  /// network delivers.
  [[nodiscard]] Status SubmitAnswer(const std::string& worker_id, size_t task,
                      size_t choice) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::optional<size_t> worker = system_.FindWorker(worker_id);
    if (!worker.has_value()) {
      return InvalidArgumentError("unknown worker '" + worker_id +
                                  "': never seen by RequestTasks/LoadWorker");
    }
    return system_.SubmitAnswer(*worker, task, choice);
  }

  /// Reclaims every lease whose logical deadline is at or before `now`
  /// (workers who accepted a HIT and vanished); the freed tasks are
  /// immediately assignable again. Serving deployments call this on a timer.
  std::vector<ExpiredLease> ExpireLeases(uint64_t now) {
    std::lock_guard<std::mutex> lock(mutex_);
    return system_.ExpireLeases(now);
  }

  /// Seeds a returning worker's quality profile from the persistent store;
  /// the worker is registered and skips the golden probe (Theorem 1 state).
  [[nodiscard]] Status LoadWorker(const std::string& worker_id,
                                  const storage::WorkerStore& store) {
    std::lock_guard<std::mutex> lock(mutex_);
    return system_.LoadWorker(worker_id, store);
  }

  uint64_t lease_clock() {
    std::lock_guard<std::mutex> lock(mutex_);
    return system_.lease_clock();
  }

  size_t num_tasks() {
    std::lock_guard<std::mutex> lock(mutex_);
    return system_.tasks().size();
  }

  size_t outstanding_leases() {
    std::lock_guard<std::mutex> lock(mutex_);
    return system_.outstanding_leases();
  }

  std::vector<size_t> InferredChoices() {
    std::lock_guard<std::mutex> lock(mutex_);
    return system_.InferredChoices();
  }

  size_t num_answers() {
    std::lock_guard<std::mutex> lock(mutex_);
    return system_.inference().num_answers();
  }

  /// Forces a full inference pass (the recovery bit-equality oracle; see
  /// DocsSystem::RunFullInference).
  void RunFullInference() {
    std::lock_guard<std::mutex> lock(mutex_);
    system_.RunFullInference();
  }

  /// Registered worker ids in registration order.
  std::vector<std::string> WorkerIds() {
    std::lock_guard<std::mutex> lock(mutex_);
    return system_.WorkerIds();
  }

  uint64_t benefit_cache_hits() {
    std::lock_guard<std::mutex> lock(mutex_);
    return system_.benefit_cache_hits();
  }

  uint64_t benefit_cache_misses() {
    std::lock_guard<std::mutex> lock(mutex_);
    return system_.benefit_cache_misses();
  }

  [[nodiscard]] Status SaveCheckpoint(const std::string& path) {
    std::lock_guard<std::mutex> lock(mutex_);
    return system_.SaveCheckpoint(path);
  }

  [[nodiscard]] Status LoadCheckpoint(const std::string& path) {
    std::lock_guard<std::mutex> lock(mutex_);
    return system_.LoadCheckpoint(path);
  }

  /// SaveCheckpoint with bounded retry: sleeps between attempts with
  /// exponential backoff (outside the lock, so serving calls proceed while
  /// the saver waits out a transient storage failure). Returns the last
  /// attempt's status.
  [[nodiscard]] Status SaveCheckpointWithRetry(const std::string& path,
                                 const CheckpointRetryOptions& retry = {}) {
    const size_t attempts = retry.max_attempts > 0 ? retry.max_attempts : 1;
    std::chrono::duration<double, std::milli> backoff =
        retry.initial_backoff;
    Status status;
    for (size_t attempt = 0; attempt < attempts; ++attempt) {
      if (attempt > 0) {
        std::this_thread::sleep_for(backoff);
        backoff *= retry.backoff_multiplier;
      }
      status = SaveCheckpoint(path);
      if (status.ok()) return status;
    }
    return status;
  }

  /// Runs `fn` under the lock with direct access to the underlying system —
  /// for setup/inspection that needs several calls to be atomic.
  template <typename Fn>
  auto WithLocked(Fn&& fn) {
    std::lock_guard<std::mutex> lock(mutex_);
    return fn(system_);
  }

 private:
  std::mutex mutex_;
  DocsSystem system_;
};

}  // namespace docs::core

#endif  // DOCS_CORE_CONCURRENT_DOCS_SYSTEM_H_
