#ifndef DOCS_CORE_INFERENCE_SERVICE_H_
#define DOCS_CORE_INFERENCE_SERVICE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/matrix.h"
#include "common/sync.h"
#include "core/task_assignment.h"

namespace docs::core {

/// Immutable posterior of one task as of a snapshot publish: the normalized
/// truth matrix M^(i) and the probabilistic truth s_i, copied verbatim from
/// the live engine. Shared (by shared_ptr) between consecutive snapshots
/// while the task's inference epoch is unchanged, so a publish copies only
/// the tasks an apply batch actually moved.
struct TaskPosteriorSnapshot {
  Matrix truth_matrix;
  std::vector<double> truth;
};

/// One worker's serving view as of a publish. `cache_row` points at the
/// worker's live benefit-cache row — the row's *address* is publish-stable
/// (rows are never moved or resized once sized; DESIGN.md §15) and access to
/// its contents stays guarded by the worker's shard stripe, exactly as on
/// the sync sharded path.
struct WorkerSnapshot {
  std::vector<double> quality;
  /// The worker's inference epoch at publish time; cache entries written by
  /// the snapshot scoring path carry it, so they self-invalidate the moment
  /// a newer snapshot (or the exclusive path) observes a later epoch.
  uint64_t epoch = 0;
  /// True when the snapshot path may serve this worker: registered, past the
  /// golden probe, cache row sized (the same gate as CanServeSharded).
  bool servable = false;
  std::vector<CachedBenefit>* cache_row = nullptr;
  /// The worker's live benefit index (DESIGN.md §16), published by pointer
  /// for the same reason as cache_row: the object's address is stable (deque
  /// row) and its contents stay guarded by the worker's shard stripe.
  /// Indexing the owner's container from the lock-free snapshot path would
  /// race container growth; the pointer cannot. nullptr when disabled.
  BenefitIndex* index = nullptr;
};

/// An immutable, epoch-tagged picture of the inference state, published by
/// the background service via shared_ptr swap (RCU-style: readers copy the
/// pointer under a leaf mutex and then read freely; the retiring snapshot
/// dies when its last reader drops it). Grown out of TruthInference::Run's
/// buffer-swap rotation: instead of two buffers swapped inside one EM pass,
/// an unbounded chain of copy-on-write snapshots swapped at publish points.
struct InferenceSnapshot {
  /// Publish sequence number, starting at 1 for the initial (empty) publish.
  uint64_t epoch = 0;
  /// Answers absorbed by the engine when this snapshot was built; the
  /// staleness of a serving decision is answers_enqueued - answers_applied.
  uint64_t answers_applied = 0;
  /// Per-task inference epochs at publish time; keys the benefit cache on
  /// the snapshot scoring path (DESIGN.md §11 semantics, snapshot edition).
  std::vector<uint64_t> task_epochs;
  /// The engine's invalidation generation at publish time (DESIGN.md §16):
  /// a full re-inference replaces every posterior without bumping the task
  /// epochs, so both the copy-on-write sharing below and the cache/index
  /// keys on the serving path must compare the generation too.
  uint64_t generation = 0;
  /// Tasks whose posterior was copied fresh for THIS publish (everything not
  /// shared from `prev`) — the snapshot edition of the engine's mutation
  /// log. An index synced to publish epoch-1 repairs exactly these entries
  /// to reach this epoch; any larger gap means rebuild.
  std::vector<size_t> changed_tasks;
  std::vector<std::shared_ptr<const TaskPosteriorSnapshot>> tasks;
  std::vector<std::shared_ptr<const WorkerSnapshot>> workers;
};

/// One validated answer awaiting application to the inference engine.
struct PendingAnswer {
  size_t worker = 0;
  size_t task = 0;
  size_t choice = 0;
};

struct InferenceServiceOptions {
  /// Bound on answers enqueued but not yet applied; producers block
  /// (backpressure) once the queue is full. Must be >= 1.
  size_t queue_capacity = 1024;
  /// Answers applied per state-lock acquisition: the service drains up to
  /// this many per cycle before publishing, so a burst amortizes both the
  /// exclusive lock and the snapshot copy.
  size_t max_batch = 256;
};

/// Staleness observability (GatewayStats / bench_server --json surface
/// these). Each field is an independent sample, not a consistent snapshot.
struct InferenceServiceStats {
  uint64_t snapshot_epoch = 0;
  uint64_t publishes = 0;
  uint64_t answers_enqueued = 0;
  uint64_t answers_applied = 0;
  uint64_t answers_pending = 0;
  /// Times a producer blocked on a full queue (backpressure events).
  uint64_t enqueue_waits = 0;
  /// Wall time between the two most recent publishes, microseconds.
  double last_publish_gap_us = 0.0;
};

/// The background inference thread (DESIGN.md §15): consumes submitted
/// answers from a bounded MPSC queue, applies them to the owner's engine via
/// the `apply` callback (which runs retro-updates and the periodic full EM
/// under the owner's exclusive state lock), and publishes the resulting
/// InferenceSnapshot. The serving path never waits on the apply: it reads
/// snapshot() — a leaf-mutex pointer copy — and scores against that.
///
/// Lock discipline (DESIGN.md §14/§15): queue_mutex_ and snapshot_mutex_ are
/// leaves of the serving hierarchy. The service thread holds NEITHER while
/// inside `apply` (which takes the state lock), and producers hold no state
/// lock while enqueueing — so the queue mutex EXCLUDES the state lock by
/// construction and a full queue can never deadlock against a running EM.
class InferenceService {
 public:
  /// Applies one FIFO batch to the owner's engine and returns the fresh
  /// snapshot to publish. Runs exclusively on the service thread; the owner
  /// acquires its own locks inside. An empty batch must still return a
  /// snapshot (forced republish after an out-of-band mutation).
  using ApplyFn = std::function<std::shared_ptr<const InferenceSnapshot>(
      const std::vector<PendingAnswer>&)>;

  explicit InferenceService(ApplyFn apply, InferenceServiceOptions options = {});
  ~InferenceService();

  InferenceService(const InferenceService&) = delete;
  InferenceService& operator=(const InferenceService&) = delete;

  /// Spawns the service thread. Call after the owner published the initial
  /// snapshot with Publish(); idempotent is NOT required — call once.
  void Start();

  /// Drains the queue (every enqueued answer is applied and published), then
  /// joins the thread. Producers must have quiesced first: an Enqueue racing
  /// Stop() may be dropped. Idempotent.
  void Stop();

  /// Installs `snapshot` as the current one (the owner's initial publish,
  /// made under its own locks before serving starts).
  void Publish(std::shared_ptr<const InferenceSnapshot> snapshot);

  /// The current snapshot; never nullptr after the initial Publish(). A leaf
  /// lock copy — callers keep the shared_ptr for the whole scoring pass.
  std::shared_ptr<const InferenceSnapshot> snapshot() const;

  /// Queues one validated answer, blocking while the queue is at capacity
  /// (backpressure). The caller must hold no lock the apply path takes.
  void Enqueue(const PendingAnswer& answer);

  /// Quiesce barrier: returns once every answer enqueued before the call is
  /// applied AND visible in a published snapshot.
  void Drain();

  /// Forces an apply/publish cycle (possibly with an empty batch) and waits
  /// for it — the owner calls this after mutating inference state outside
  /// the queue (worker reseed, forced full inference).
  void RequestRepublish();

  InferenceServiceStats stats() const;

 private:
  void ServiceLoop();

  const ApplyFn apply_;
  const InferenceServiceOptions options_;

  /// Guards the queue, sequence counters, and lifecycle flags. Leaf with
  /// respect to the owner's state lock: never held across apply_.
  mutable Mutex queue_mutex_;
  std::vector<PendingAnswer> queue_ DOCS_GUARDED_BY(queue_mutex_);
  /// FIFO cursor into queue_ (drained in batches; compacted when empty).
  size_t queue_head_ DOCS_GUARDED_BY(queue_mutex_) = 0;
  uint64_t enqueued_seq_ DOCS_GUARDED_BY(queue_mutex_) = 0;
  uint64_t applied_seq_ DOCS_GUARDED_BY(queue_mutex_) = 0;
  /// applied_seq_ as of the latest publish: Drain() waits on this, so a
  /// drained caller is guaranteed a snapshot that includes its answers.
  uint64_t published_seq_ DOCS_GUARDED_BY(queue_mutex_) = 0;
  uint64_t publishes_ DOCS_GUARDED_BY(queue_mutex_) = 0;
  uint64_t enqueue_waits_ DOCS_GUARDED_BY(queue_mutex_) = 0;
  double last_publish_gap_us_ DOCS_GUARDED_BY(queue_mutex_) = 0.0;
  bool republish_pending_ DOCS_GUARDED_BY(queue_mutex_) = false;
  bool stop_ DOCS_GUARDED_BY(queue_mutex_) = false;
  bool started_ DOCS_GUARDED_BY(queue_mutex_) = false;
  std::chrono::steady_clock::time_point last_publish_time_
      DOCS_GUARDED_BY(queue_mutex_);
  CondVar not_empty_;
  CondVar not_full_;
  CondVar progress_;

  /// Leaf of the whole serving hierarchy: guards only the snapshot pointer.
  /// Readers copy the shared_ptr and release immediately.
  mutable Mutex snapshot_mutex_;
  std::shared_ptr<const InferenceSnapshot> snapshot_
      DOCS_GUARDED_BY(snapshot_mutex_);

  std::thread thread_;
};

}  // namespace docs::core

#endif  // DOCS_CORE_INFERENCE_SERVICE_H_
