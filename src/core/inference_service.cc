#include "core/inference_service.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace docs::core {

InferenceService::InferenceService(ApplyFn apply,
                                   InferenceServiceOptions options)
    : apply_(std::move(apply)), options_(options) {
  DOCS_CHECK(apply_ != nullptr);
  DOCS_CHECK_GE(options_.queue_capacity, 1u);
  DOCS_CHECK_GE(options_.max_batch, 1u);
}

InferenceService::~InferenceService() { Stop(); }

void InferenceService::Start() {
  {
    MutexLock lock(&queue_mutex_);
    if (started_) return;
    started_ = true;
    stop_ = false;
    last_publish_time_ = std::chrono::steady_clock::now();
  }
  thread_ = std::thread([this] { ServiceLoop(); });
}

void InferenceService::Stop() {
  {
    MutexLock lock(&queue_mutex_);
    if (!started_) return;
    stop_ = true;
  }
  not_empty_.NotifyAll();
  not_full_.NotifyAll();
  if (thread_.joinable()) thread_.join();
  MutexLock lock(&queue_mutex_);
  started_ = false;
}

void InferenceService::Publish(
    std::shared_ptr<const InferenceSnapshot> snapshot) {
  {
    MutexLock lock(&snapshot_mutex_);
    snapshot_ = std::move(snapshot);
  }
  MutexLock lock(&queue_mutex_);
  ++publishes_;
  last_publish_time_ = std::chrono::steady_clock::now();
}

std::shared_ptr<const InferenceSnapshot> InferenceService::snapshot() const {
  MutexLock lock(&snapshot_mutex_);
  return snapshot_;
}

void InferenceService::Enqueue(const PendingAnswer& answer) {
  {
    MutexLock lock(&queue_mutex_);
    while (queue_.size() - queue_head_ >= options_.queue_capacity && !stop_) {
      ++enqueue_waits_;
      not_full_.Wait(queue_mutex_);
    }
    queue_.push_back(answer);
    ++enqueued_seq_;
  }
  not_empty_.NotifyOne();
}

void InferenceService::Drain() {
  MutexLock lock(&queue_mutex_);
  const uint64_t target = enqueued_seq_;
  while (published_seq_ < target) progress_.Wait(queue_mutex_);
}

void InferenceService::RequestRepublish() {
  MutexLock lock(&queue_mutex_);
  const uint64_t before = publishes_;
  republish_pending_ = true;
  not_empty_.NotifyOne();
  while (publishes_ <= before && started_ && !stop_) {
    progress_.Wait(queue_mutex_);
  }
}

InferenceServiceStats InferenceService::stats() const {
  InferenceServiceStats out;
  {
    MutexLock lock(&queue_mutex_);
    out.publishes = publishes_;
    out.answers_enqueued = enqueued_seq_;
    out.answers_applied = applied_seq_;
    out.answers_pending = enqueued_seq_ - applied_seq_;
    out.enqueue_waits = enqueue_waits_;
    out.last_publish_gap_us = last_publish_gap_us_;
  }
  MutexLock lock(&snapshot_mutex_);
  out.snapshot_epoch = snapshot_ != nullptr ? snapshot_->epoch : 0;
  return out;
}

void InferenceService::ServiceLoop() {
  std::vector<PendingAnswer> batch;
  while (true) {
    batch.clear();
    {
      MutexLock lock(&queue_mutex_);
      while (queue_head_ >= queue_.size() && !republish_pending_ && !stop_) {
        not_empty_.Wait(queue_mutex_);
      }
      // On stop, keep cycling until the queue is empty: every answer acked
      // before the shutdown still reaches the engine.
      if (queue_head_ >= queue_.size() && !republish_pending_ && stop_) return;
      const size_t take = std::min(options_.max_batch,
                                   queue_.size() - queue_head_);
      batch.assign(queue_.begin() + static_cast<ptrdiff_t>(queue_head_),
                   queue_.begin() + static_cast<ptrdiff_t>(queue_head_ + take));
      queue_head_ += take;
      if (queue_head_ >= queue_.size()) {
        queue_.clear();
        queue_head_ = 0;
      }
      republish_pending_ = false;
    }
    not_full_.NotifyAll();

    // The apply runs with no service lock held: the owner takes its state
    // lock inside, producers keep enqueueing, snapshot readers keep serving.
    std::shared_ptr<const InferenceSnapshot> next = apply_(batch);

    {
      MutexLock lock(&snapshot_mutex_);
      snapshot_ = std::move(next);
    }
    {
      MutexLock lock(&queue_mutex_);
      applied_seq_ += batch.size();
      published_seq_ = applied_seq_;
      ++publishes_;
      const auto now = std::chrono::steady_clock::now();
      last_publish_gap_us_ =
          std::chrono::duration<double, std::micro>(now - last_publish_time_)
              .count();
      last_publish_time_ = now;
    }
    progress_.NotifyAll();
  }
}

}  // namespace docs::core
