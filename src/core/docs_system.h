#ifndef DOCS_CORE_DOCS_SYSTEM_H_
#define DOCS_CORE_DOCS_SYSTEM_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "core/assignment_policy.h"
#include "core/domain_vector.h"
#include "core/golden_selection.h"
#include "core/incremental_ti.h"
#include "core/inference_service.h"
#include "core/task_assignment.h"
#include "core/types.h"
#include "kb/knowledge_base.h"
#include "storage/state_checkpoint.h"
#include "storage/worker_store.h"

namespace docs::core {

/// A task as a requester submits it: text plus the choice count. The
/// requester optionally knows the ground truth (needed only for the tasks
/// chosen as golden).
struct TaskInput {
  std::string text;
  size_t num_choices = 2;
};

/// How SelectTasks ranks eligible tasks.
///  * kBenefit       — DOCS's OTA (Def. 5): domains + worker quality +
///                     truth confidence.
///  * kDomainMax     — the D-Max baseline of Section 6.4: picks the tasks
///                     whose domains best match the worker (sum_k r_k q^w_k)
///                     and ignores how confident the truth already is.
///  * kUncertainty   — ablation: rank by current truth entropy H(s_i) only
///                     (ignores who the worker is).
///  * kQualityBlind  — ablation: Def. 5's benefit but with the worker's
///                     quality vector replaced by its mean (no domain
///                     awareness in the assignment step).
enum class SelectionRule {
  kBenefit,
  kDomainMax,
  kUncertainty,
  kQualityBlind,
};

/// A task grant that was never answered: ExpireLeases returns these so the
/// assignment pool can re-serve work abandoned by no-show workers.
struct ExpiredLease {
  size_t worker = 0;
  size_t task = 0;
  /// The logical deadline the lease missed (grant clock + lease_duration).
  uint64_t deadline = 0;
};

struct DocsSystemOptions {
  nlp::EntityLinkerOptions linker;
  TruthInferenceOptions truth_inference;
  TaskAssignerOptions assigner;
  /// Number of golden tasks selected after DVE (20 in the paper).
  size_t golden_count = 20;
  /// Lease duration for granted tasks, in logical ticks (each SelectTasks
  /// call advances the clock by one). While a lease is outstanding the task
  /// counts against `max_answers_per_task`, so OTA does not over-assign
  /// in-flight work; a grant not answered within the duration is considered
  /// abandoned and is reclaimed by ExpireLeases(). 0 disables leasing.
  /// Leases are intentionally volatile: a crash (checkpoint restore) drops
  /// them all, which simply returns the in-flight tasks to the pool.
  size_t lease_duration = 0;
  /// Re-run the full iterative inference every z answer submissions
  /// (z = 100 in DOCS); 0 disables the periodic re-run.
  size_t reinfer_every = 100;
  /// Laplace smoothing mass when initializing quality from golden answers.
  double golden_smoothing = 1.0;
  /// Upper bound on answers collected per task (0 = unlimited). DOCS itself
  /// lets the benefit function starve confident tasks, but requesters often
  /// want a hard redundancy cap as a budget guarantee.
  size_t max_answers_per_task = 0;
  SelectionRule selection_rule = SelectionRule::kBenefit;
  /// Display name override (the D-Max configuration reports "D-Max").
  std::string display_name = "DOCS";
  /// Threads applied to the serving hot loops: benefit/match/entropy scoring
  /// in SelectTasks, and the EM sweep / recompute fan-out of the embedded
  /// inference engine — all served by ONE pool of this size (the periodic
  /// re-inference runs on the scoring pool instead of building its own, so a
  /// DocsSystem never stacks multiple hardware-sized pools). When nonzero it
  /// also overrides truth_inference.num_threads for standalone engine use.
  /// 0 = hardware concurrency, 1 = the historical sequential behavior.
  /// Results are bit-identical for every value; see DESIGN.md §8.
  size_t num_threads = 0;
  /// Epoch-tagged benefit cache (DESIGN.md §11): SelectTasks memoizes each
  /// (worker, task) score and rescores only pairs whose task or worker
  /// inference state moved since. Selections are bit-identical with the
  /// cache on or off (tests/benefit_cache_test.cc proves it); the knob
  /// exists for that equivalence suite and for benchmarking the cold path.
  bool benefit_cache = true;
  /// Per-worker ordered benefit index over the cache rows (DESIGN.md §16): a
  /// warm RequestTasks reads the top-k eligible tasks off a lazily repaired
  /// max-heap — O(k log n) — instead of scanning all n cached scores.
  /// Requires benefit_cache (silently inert without it). Selections are
  /// bit-identical with the index on or off (tests/benefit_index_test.cc);
  /// the knob exists for that suite and for benchmarking the scan path.
  bool benefit_index = true;
  /// Routes benefit scoring through the allocating reference kernel instead
  /// of the fused scratch-arena kernel. The two are bit-identical; the
  /// reference is retained as the spec oracle and as the seed-era baseline
  /// for the allocation benchmarks. Only meaningful for kBenefit /
  /// kQualityBlind rules.
  bool reference_kernel = false;
  /// Decouple inference from serving (DESIGN.md §15): SubmitAnswer validates
  /// against the submission books and enqueues onto a background inference
  /// service, and RequestTasks scores against the last published immutable
  /// snapshot — so an answer burst (retro-update fan-out, the periodic full
  /// EM) never blocks a concurrent RequestTasks. Consumed by
  /// ConcurrentDocsSystem; a bare DocsSystem ignores everything but the
  /// book-keeping switches. Post-Drain() state is bitwise-identical to sync
  /// mode (tests/inference_service_test.cc).
  bool async_inference = false;
  /// Bound on answers acknowledged but not yet applied by the background
  /// service; submitters block (backpressure) once it is reached.
  size_t async_queue_capacity = 1024;
};

/// The complete DOCS pipeline of Figure 1:
///  - AddTasks() runs DVE over the submitted task text against the KB and
///    selects golden tasks;
///  - SelectTasks() serves worker requests: new workers receive the golden
///    tasks first (to probe their per-domain quality), then OTA picks the
///    k highest-benefit tasks;
///  - OnAnswer() feeds the incremental truth inference, initializes worker
///    quality once the golden phase completes, and re-runs the full
///    iterative inference every z submissions.
class DocsSystem : public AssignmentPolicy {
 public:
  /// `knowledge_base` must outlive the system.
  DocsSystem(const kb::KnowledgeBase* knowledge_base,
             DocsSystemOptions options = {});

  /// Ingests tasks: computes each task's domain vector via DVE and selects
  /// golden tasks. `known_truths`, when provided (parallel to `inputs`),
  /// supplies the requester-labeled ground truth used for golden grading.
  /// May be called once per system instance.
  [[nodiscard]] Status AddTasks(const std::vector<TaskInput>& inputs,
                  const std::vector<size_t>* known_truths = nullptr);

  const std::vector<Task>& tasks() const { return tasks_; }
  const std::vector<size_t>& golden_tasks() const { return golden_.tasks; }
  const IncrementalTruthInference& inference() const { return *inference_; }

  /// Maps an external (platform) worker id to a dense index, registering it
  /// on first use.
  size_t WorkerIndex(const std::string& external_id);

  /// Looks up an external worker id WITHOUT registering it; nullopt when the
  /// id has never been seen. The serving path uses this to reject
  /// submissions from workers that never requested tasks — a malformed id
  /// arriving over the network must not mint a fresh worker.
  std::optional<size_t> FindWorker(const std::string& external_id) const;

  /// Seeds a worker's quality from the persistent store (Theorem 1 state);
  /// NotFound if the store has no record. Returning workers skip the golden
  /// phase.
  [[nodiscard]] Status LoadWorker(const std::string& external_id,
                    const storage::WorkerStore& store);

  /// Persists a worker's accumulated (q, u) statistics.
  [[nodiscard]] Status SaveWorker(const std::string& external_id,
                    storage::WorkerStore* store) const;

  /// Writes a crash-consistent snapshot of the whole session (tasks with
  /// their DVE vectors, golden set, workers with seed profiles, all answers)
  /// to `path`. Derived inference state is rebuilt on load by replay.
  [[nodiscard]] Status SaveCheckpoint(const std::string& path) const;

  /// Restores a session saved with SaveCheckpoint. Must be called instead
  /// of AddTasks on a fresh system (same KB and options as the original).
  /// Answer records that fail validation (out-of-range task/choice,
  /// duplicate (worker, task) pair) are skipped with a warning rather than
  /// poisoning the whole restore — a corrupted record costs one answer, not
  /// the session.
  [[nodiscard]] Status LoadCheckpoint(const std::string& path);

  /// Validated answer submission: rejects answers against a system with no
  /// tasks (FailedPrecondition), unknown workers/tasks (InvalidArgument),
  /// out-of-range choices (OutOfRange) and duplicate (worker, task)
  /// submissions (AlreadyExists) — AMT retries and malformed callbacks must
  /// not corrupt inference state. On success the answer is absorbed and any
  /// lease the worker held on the task is released.
  [[nodiscard]] Status SubmitAnswer(size_t worker, size_t task, size_t choice);

  /// Releases every lease whose deadline is at or before `now` and returns
  /// the reclaimed grants; the freed tasks are immediately assignable again.
  std::vector<ExpiredLease> ExpireLeases(uint64_t now);

  /// Logical clock: the number of SelectTasks calls served so far.
  uint64_t lease_clock() const { return lease_clock_; }
  size_t outstanding_leases() const { return leases_.size(); }

  /// Benefit-cache effectiveness counters, at row granularity: individual
  /// (worker, task) scores answered from a still-valid cache entry vs.
  /// recomputed. One serving request touches O(n) rows, so these are the
  /// wrong unit for a hit-*rate* — use the request-level counters below for
  /// that. Monotonic over the system's lifetime; 0 with the cache disabled.
  uint64_t benefit_cache_hits() const {
    return benefit_cache_hits_.load(std::memory_order_relaxed);
  }
  uint64_t benefit_cache_misses() const {
    return benefit_cache_misses_.load(std::memory_order_relaxed);
  }

  /// Request-level cache counters: one count per serving scoring pass (a
  /// SelectTasks call that reached OTA ranking). A pass that recomputed
  /// nothing — every eligible task served from the cache — is a request
  /// hit; a pass that recomputed at least one score is a request miss.
  /// hit / (hit + miss) is the hit-rate a dashboard should display.
  /// Golden-phase grants and the ScoreAllTasks test hook do not count.
  /// Monotonic; 0 with the cache disabled.
  uint64_t benefit_cache_request_hits() const {
    return benefit_cache_request_hits_.load(std::memory_order_relaxed);
  }
  uint64_t benefit_cache_request_misses() const {
    return benefit_cache_request_misses_.load(std::memory_order_relaxed);
  }

  /// Benefit-index effectiveness counters (DESIGN.md §16). Pops counts heap
  /// nodes visited by index-served selections (the k-log-n work unit);
  /// repairs counts targeted in-place fixups driven by the engine's mutation
  /// log or a snapshot's changed-task diff; rebuilds counts full O(n)
  /// reconstructions (first contact, worker-epoch or generation staleness,
  /// feed-cursor gaps). Monotonic; 0 with the index or cache disabled.
  uint64_t benefit_index_pops() const {
    return benefit_index_pops_.load(std::memory_order_relaxed);
  }
  uint64_t benefit_index_repairs() const {
    return benefit_index_repairs_.load(std::memory_order_relaxed);
  }
  uint64_t benefit_index_rebuilds() const {
    return benefit_index_rebuilds_.load(std::memory_order_relaxed);
  }
  /// O(1) invalidation events: full re-inference runs that staled every
  /// cache row and index with one generation bump (the engine's generation
  /// starts at 1, so this is generation - 1). 0 before ingest.
  uint64_t benefit_index_generation_invalidations() const {
    return inference_ != nullptr ? inference_->generation() - 1 : 0;
  }

  /// Scores every task for `worker` under the configured selection rule and
  /// returns the raw scores (ignoring eligibility). With `bypass_cache` the
  /// pass recomputes from live inference state without reading or writing
  /// the benefit cache. Test hook: the cache-equivalence suite asserts the
  /// warm and bypass passes are bitwise equal after every mutation class.
  std::vector<double> ScoreAllTasks(size_t worker, bool bypass_cache);

  /// Re-runs the full iterative inference over all stored answers, restarting
  /// from the workers' seed profiles. The result depends only on (tasks,
  /// seeds, answer order), which makes it the bit-equality oracle for crash
  /// recovery: a recovered system and an uninterrupted reference converge to
  /// identical posteriors iff they hold identical answer sequences.
  void RunFullInference();

  /// External ids of every registered worker in registration (dense-index)
  /// order. Recovery replays registrations in this order so worker indices —
  /// and therefore inference's float summation order — are reproduced.
  std::vector<std::string> WorkerIds() const;

  // --- Sharded serving plumbing (DESIGN.md §13) ----------------------------
  // These split the steady-state SelectTasks into snapshot → score → commit
  // phases so ConcurrentDocsSystem can run the scoring phase of several
  // workers genuinely in parallel under a shared (reader) state lock.
  // Locking contract (enforced by the facade, not checked here):
  //  - CanServeSharded / ScoreAndRankSharded: shared state lock held, plus
  //    the worker's shard lock (the pass reads and refreshes her cache row).
  //  - BeginShardedSelect / CommitShardedSelect: the facade's assign lock on
  //    top of the shared state lock (they touch the lease books and clock).

  /// Reusable per-shard scoring buffers; guarded by the owning shard lock.
  struct ShardScratch {
    std::vector<uint8_t> eligible;
    std::vector<double> quality;
  };

  /// True when `worker` can be served without the exclusive lock: she is
  /// registered, past the golden phase, and (with the cache enabled) her
  /// cache row is already sized — first contact, golden probes, and row
  /// growth all mutate shared structure and take the exclusive path.
  bool CanServeSharded(size_t worker) const;

  /// Phase 1: advances the lease clock and snapshots the worker's
  /// eligibility bitmap into `eligible` (answered mask + redundancy cap).
  void BeginShardedSelect(size_t worker, std::vector<uint8_t>* eligible);

  /// Phase 2: scores the snapshot and returns the provisional top-k.
  /// `pool` is the shared scoring pool when the caller won it, nullptr to
  /// score serially — results are bit-identical either way (DESIGN.md §8).
  std::vector<size_t> ScoreAndRankSharded(size_t worker, ShardScratch& scratch,
                                          size_t k, ThreadPool* pool);

  /// Phase 3: re-validates the selection against leases granted since the
  /// snapshot and commits the grants. False (nothing committed) when a
  /// selected task lost redundancy-cap eligibility in between — the caller
  /// retries from phase 1 with a fresh snapshot. With `force` the conflicted
  /// tasks are dropped and the remainder committed instead.
  bool CommitShardedSelect(size_t worker, std::vector<size_t>* selected,
                           bool force);

  /// Lazily built pool shared by every hot loop the system drives —
  /// SelectTasks scoring and the embedded engine's periodic full inference;
  /// nullptr when configured sequential. Sharded callers must hold the
  /// facade's pool lock; exclusive callers need no extra lock.
  ThreadPool* ScoringPool();

  // --- Async inference plumbing (DESIGN.md §15) ---------------------------
  // With options.async_inference the facade splits SubmitAnswer into a
  // synchronous half (validate + book + lease release, under its assign
  // lock) and an asynchronous half (inference absorption on the service
  // thread, under its exclusive state lock). The submission books reproduce
  // the sync-mode timeline of "who answered what" at ack time, so
  // validation, eligibility, golden pacing, and redundancy caps behave
  // exactly as if the answer had been applied inline.

  /// Sizes the books from current inference state (registered workers'
  /// answered lists, per-task counts). Exclusive state lock + assign lock;
  /// called at ingest/restore time before the service starts.
  void RebuildAsyncBooks();

  /// Mirrors ValidateAnswer (same status codes and ordering) against the
  /// submission books instead of live inference state, so a duplicate is
  /// rejected synchronously even while the original is still queued.
  /// Assign lock held.
  [[nodiscard]] Status ValidateAsyncSubmission(size_t worker, size_t task,
                                               size_t choice) const;

  /// Books one validated submission: marks (worker, task) answered, counts
  /// it against the redundancy cap, releases the worker's lease — the
  /// sync-path side effects that must be visible at ack time. Assign lock
  /// held.
  void RecordAsyncSubmission(size_t worker, size_t task);

  /// Applies one queued answer on the service thread: inference absorption,
  /// golden accounting, and the same periodic full-inference trigger as the
  /// sync path — so the engine sees the identical operation sequence and
  /// post-Drain() state is bitwise-identical. Exclusive state lock held
  /// (plus the facade's pool lock, for the EM fan-out).
  [[nodiscard]] Status ApplyAsyncAnswer(size_t worker, size_t task,
                                        size_t choice);

  /// Builds the next snapshot copy-on-write against `prev`: tasks and
  /// workers whose inference epochs are unchanged share the previous
  /// snapshot's immutable pieces. Also sizes every registered worker's
  /// benefit-cache row so the snapshot path can serve her. Exclusive state
  /// lock held.
  std::shared_ptr<const InferenceSnapshot> BuildSnapshot(
      const InferenceSnapshot* prev);

  /// Scores `scratch.eligible` against `snap` (never touching live
  /// inference state) and returns the provisional top-k. Caller holds the
  /// worker's shard lock — NOT the state lock; that is the point.
  std::vector<size_t> ScoreAndRankSnapshot(const InferenceSnapshot& snap,
                                           size_t worker,
                                           ShardScratch& scratch, size_t k,
                                           ThreadPool* pool);

  /// External id of a registered worker (state lock held).
  const std::string& worker_external_id(size_t worker) const {
    return workers_[worker].external_id;
  }

  // --- AssignmentPolicy -----------------------------------------------------
  std::string name() const override { return options_.display_name; }
  std::vector<size_t> SelectTasks(size_t worker, size_t k) override;
  /// Platform-interface shim over SubmitAnswer: logs and drops rejected
  /// answers (the campaign protocols of Section 6.1 have no error channel).
  void OnAnswer(size_t worker, size_t task, size_t choice) override;
  std::vector<size_t> InferredChoices() override;

 private:
  struct WorkerProfile {
    std::string external_id;
    bool golden_done = false;
    size_t golden_answered = 0;
    /// Correct/total r-mass per domain accumulated on golden tasks.
    std::vector<double> golden_correct;
    std::vector<double> golden_total;
  };

  void FinishGoldenPhase(size_t worker);

  /// Builds the eligibility bitmap for `worker` into `*eligible` (all-open
  /// minus her answered view minus redundancy-capped tasks). Shared by the
  /// exclusive scan fallback and the sharded phase-1 snapshot.
  void BuildEligibilityBitmap(size_t worker, std::vector<uint8_t>* eligible);

  /// Builds the selection-rule scoring function for `worker`. Stages the
  /// worker's (possibly flattened) quality vector in quality_scratch_, so
  /// the returned callable must not outlive the current scoring pass.
  std::function<double(size_t)> MakeScoreFn(size_t worker);
  /// Same, staging the quality vector into caller-owned storage so sharded
  /// passes for different workers never share scratch. The callable borrows
  /// `quality` — it must outlive the scoring pass.
  std::function<double(size_t)> MakeScoreFn(size_t worker,
                                            std::vector<double>& quality);

  /// The scan ranking core: scores every eligible task (over `pool` when
  /// non-null), maintains the row-level cache counters, and returns the
  /// ordered top-k through the shared PICK helper. `task_epochs` keys the
  /// cache: the live engine's epochs on the sync paths, the published
  /// snapshot's copy on the async serving path. Sets `*had_candidates` when
  /// at least one task was eligible (the request-tally gate RankWithIndex
  /// applies).
  std::vector<size_t> RankCore(const std::vector<uint8_t>& eligible, size_t k,
                               const std::function<double(size_t)>& score,
                               std::vector<CachedBenefit>* cache,
                               uint64_t worker_epoch,
                               const uint64_t* task_epochs,
                               uint64_t generation, ThreadPool* pool,
                               std::atomic<bool>* saw_miss,
                               bool* had_candidates);

  /// The index-accelerated ranking attempt (DESIGN.md §16): syncs `index` to
  /// (worker_epoch, generation) — full rebuild on a tag mismatch or feed
  /// gap, targeted repairs from the engine's mutation log (`snap` null) or
  /// the snapshot's changed-task diff otherwise — then reads the top-k
  /// eligible tasks off the heap. nullopt when the frontier walk exceeded
  /// its skip budget; the caller falls back to the bit-identical scan.
  std::optional<std::vector<size_t>> TryRankViaIndex(
      size_t worker, BenefitIndex* index, size_t k,
      const std::function<double(size_t)>& score,
      std::vector<CachedBenefit>* cache, uint64_t worker_epoch,
      const uint64_t* task_epochs, uint64_t generation,
      const std::function<bool(size_t)>& eligible_one, ThreadPool* pool,
      const InferenceSnapshot* snap, std::atomic<bool>* saw_miss);

  /// The one ranking front door every serving path uses: tries the index
  /// (when non-null), falls back to the scan over `eligible_bitmap()` (built
  /// lazily — the index fast path never pays the O(n) bitmap fill), and
  /// tallies the request-level cache counters across whichever path served.
  std::vector<size_t> RankWithIndex(
      size_t worker, BenefitIndex* index, size_t k,
      const std::function<double(size_t)>& score,
      std::vector<CachedBenefit>* cache, uint64_t worker_epoch,
      const uint64_t* task_epochs, uint64_t generation,
      const std::function<bool(size_t)>& eligible_one,
      const std::function<const std::vector<uint8_t>&()>& eligible_bitmap,
      ThreadPool* pool, const InferenceSnapshot* snap);

  /// The worker's benefit-cache row sized to the task count, or nullptr when
  /// the cache is disabled.
  std::vector<CachedBenefit>* CacheRow(size_t worker);

  /// The worker's benefit index, growing the container as needed (exclusive
  /// path only — sharded and snapshot paths reach the index through
  /// pre-sized references/pointers); nullptr when the index or the cache is
  /// disabled.
  BenefitIndex* IndexRow(size_t worker);

  /// One cached score: probes `cache` (when non-null) under the live
  /// (task, worker, generation) key, recomputing and refreshing the entry on
  /// a miss (recorded in `*saw_miss` when provided). Thread-safe across
  /// distinct `task` values: each task owns its cache slot and the counters
  /// are atomic.
  double ScoreOne(size_t task, const std::function<double(size_t)>& score,
                  std::vector<CachedBenefit>* cache, uint64_t worker_epoch,
                  const uint64_t* task_epochs, uint64_t generation,
                  std::atomic<bool>* saw_miss);

  /// Shared validation for live submissions and checkpoint replay.
  [[nodiscard]] Status ValidateAnswer(size_t worker, size_t task, size_t choice) const;
  /// Absorbs one validated answer: inference update, redundancy counter,
  /// lease release, golden-phase accounting. Does not trigger the periodic
  /// re-inference (the caller decides; replay defers to one final run).
  void AbsorbAnswer(size_t worker, size_t task, size_t choice);
  /// The inference-side half of AbsorbAnswer (OnAnswer + golden accounting)
  /// without the redundancy counter or lease release — in async mode those
  /// already happened at book time on the serving thread. False when the
  /// engine rejected the answer (unreachable after validation).
  bool AbsorbAnswerCore(size_t worker, size_t task, size_t choice);

  /// Eligibility reads routed through the submission books in async mode
  /// (they lead live inference state by the queue depth) and through the
  /// engine otherwise.
  const std::vector<size_t>& AnsweredView(size_t worker) const;
  bool HasAnsweredView(size_t worker, size_t task) const;
  size_t AnsweredCountView(size_t task) const;
  bool AtAnswerCap(size_t task) const;

  /// Selection-rule scoring against a published snapshot: reads the
  /// snapshot's posteriors and the worker view's quality instead of the live
  /// engine. The callable borrows `snap` and `quality` (caller scratch, as
  /// with the sharded MakeScoreFn) — both must outlive the scoring pass.
  std::function<double(size_t)> MakeSnapshotScoreFn(
      const InferenceSnapshot& snap, const WorkerSnapshot& view,
      std::vector<double>& quality);

  /// Lease bookkeeping (no-ops while options_.lease_duration == 0).
  void GrantLeases(size_t worker, const std::vector<size_t>& granted);
  void ReleaseLease(size_t worker, size_t task);
  static uint64_t LeaseKey(size_t worker, size_t task) {
    return (static_cast<uint64_t>(worker) << 32) | static_cast<uint32_t>(task);
  }

  const kb::KnowledgeBase* kb_;
  DocsSystemOptions options_;
  DomainVectorEstimator dve_;
  std::vector<Task> tasks_;
  std::vector<int> known_truth_;  // -1 when unknown
  GoldenSelectionResult golden_;
  std::vector<uint8_t> is_golden_;
  std::unique_ptr<IncrementalTruthInference> inference_;
  std::unordered_map<std::string, size_t> worker_index_;
  std::vector<WorkerProfile> workers_;
  std::vector<size_t> answers_per_task_;
  size_t answers_since_reinfer_ = 0;
  uint64_t lease_clock_ = 0;
  /// (worker << 32 | task) -> logical deadline.
  std::unordered_map<uint64_t, uint64_t> leases_;
  /// Outstanding leases per task (kept in sync with leases_).
  std::vector<uint32_t> lease_count_;
  /// Async submission books (empty in sync mode): per-worker sorted answered
  /// task lists and per-task acked-answer counts, updated at ack time on the
  /// serving thread — they run AHEAD of the engine by the queue depth and
  /// reproduce the sync-mode eligibility timeline. Facade's assign lock.
  std::vector<std::vector<size_t>> async_answered_;
  std::vector<size_t> async_answers_per_task_;
  std::unique_ptr<ThreadPool> pool_;  // see ScoringPool()
  /// Per-worker rows of the epoch-tagged benefit cache, lazily sized on the
  /// worker's first scoring pass (DESIGN.md §11). Entries self-invalidate by
  /// epoch mismatch; nothing is ever erased. A deque (not a vector) so a row
  /// keeps its address when later workers register — published snapshots
  /// carry raw row pointers (DESIGN.md §15) and must never dangle.
  std::deque<std::vector<CachedBenefit>> benefit_cache_;
  /// Per-worker benefit indexes over the cache rows (DESIGN.md §16), same
  /// container discipline as benefit_cache_: a deque so an index keeps its
  /// address when later workers register — published snapshots carry raw
  /// index pointers and must never dangle. Grown on the exclusive path only
  /// (IndexRow); contents guarded by the worker's shard stripe.
  std::deque<BenefitIndex> benefit_index_;
  std::atomic<uint64_t> benefit_cache_hits_{0};
  std::atomic<uint64_t> benefit_cache_misses_{0};
  std::atomic<uint64_t> benefit_cache_request_hits_{0};
  std::atomic<uint64_t> benefit_cache_request_misses_{0};
  std::atomic<uint64_t> benefit_index_pops_{0};
  std::atomic<uint64_t> benefit_index_repairs_{0};
  std::atomic<uint64_t> benefit_index_rebuilds_{0};
  /// Serving-path scratch, reused across SelectTasks calls so a warm request
  /// allocates nothing: the eligibility bitmap and the staged quality vector
  /// MakeScoreFn's callables read from.
  std::vector<uint8_t> eligible_scratch_;
  std::vector<double> quality_scratch_;
};

}  // namespace docs::core

#endif  // DOCS_CORE_DOCS_SYSTEM_H_
