#include "core/durable_docs_system.h"

#include <fstream>
#include <utility>

#include "common/logging.h"

namespace docs::core {
namespace {

bool FileExists(const std::string& path) {
  std::ifstream in(path);
  return in.is_open();
}

}  // namespace

DurableDocsSystem::DurableDocsSystem(ConcurrentDocsSystem* system,
                                     DurableOptions options)
    : system_(system),
      options_(std::move(options)),
      checkpoint_path_(options_.dir + "/state.ckpt"),
      wal_path_(options_.dir + "/answers.wal") {}

Status DurableDocsSystem::Recover() {
  MutexLock lock(&mutex_);
  if (recovered_.load(std::memory_order_relaxed)) {
    return FailedPreconditionError("Recover() already ran");
  }

  storage::AnswerWal::Contents contents;
  StatusOr<storage::AnswerWal> wal =
      storage::AnswerWal::Open(wal_path_, &contents);
  if (!wal.ok()) return wal.status();

  if (FileExists(checkpoint_path_)) {
    Status loaded = system_->LoadCheckpoint(checkpoint_path_);
    if (!loaded.ok()) return loaded;
  } else if (!contents.records.empty() && system_->num_tasks() == 0) {
    // Answers exist but the campaign they belong to is gone: replaying them
    // into an empty system would silently discard every one.
    return DataLossError("WAL " + wal_path_ +
                         " has records but no checkpoint/tasks to replay into");
  }

  // Replay the tail in append order. Registrations re-mint worker indices
  // in their original order (float summation order depends on it); answers
  // go through the validated submit path; dedup records re-arm the window
  // for retries of already-checkpointed submissions.
  using Record = storage::AnswerWal::Record;
  for (const Record& record : contents.records) {
    switch (record.kind) {
      case Record::Kind::kRegister:
        system_->WithLocked([&](DocsSystem& system) {
          (void)system.WorkerIndex(record.worker_id);
          return 0;
        });
        break;
      case Record::Kind::kDedup:
        RecordDedupLocked(record.worker_id, record.request_id, record.code);
        break;
      case Record::Kind::kAnswer: {
        Status applied =
            system_->SubmitAnswer(record.worker_id, record.task,
                                  static_cast<size_t>(record.choice));
        RecordDedupLocked(record.worker_id, record.request_id, applied.code());
        if (applied.ok()) {
          answers_recovered_.fetch_add(1, std::memory_order_relaxed);
        } else {
          // Deterministic re-rejection (the record was logged before its
          // validation outcome was known) or a checkpoint/truncate crash
          // window duplicate. Either way the window carries the code so a
          // client retry is still answered consistently.
          DOCS_LOG(Warning) << "WAL replay: answer dropped: "
                            << applied.ToString();
        }
        break;
      }
    }
  }
  if (contents.tail_truncated) {
    DOCS_LOG(Warning) << "WAL " << wal_path_
                      << ": torn tail truncated at last valid record";
  }

  wal_ = std::make_unique<storage::AnswerWal>(std::move(wal).value());
  wal_records_.store(wal_->record_count(), std::memory_order_relaxed);
  answers_since_checkpoint_ = 0;
  recovered_.store(true, std::memory_order_release);
  return OkStatus();
}

Status DurableDocsSystem::SubmitAnswer(const std::string& worker_id,
                                       size_t task, size_t choice,
                                       uint64_t request_id) {
  MutexLock lock(&mutex_);
  if (wal_ == nullptr) {
    return FailedPreconditionError("DurableDocsSystem not recovered");
  }
  if (request_id != 0) {
    auto hit = window_index_.find(DedupKey(worker_id, request_id));
    if (hit != window_index_.end()) {
      answers_deduped_.fetch_add(1, std::memory_order_relaxed);
      if (hit->second == StatusCode::kOk) return OkStatus();
      return Status(hit->second, "duplicate submit (answered from dedup "
                                 "window with original status)");
    }
  }

  // WAL first: once the flush returns the answer survives a crash, so the
  // ack we send after applying can never be a lie.
  Status logged = wal_->AppendAnswer(worker_id, request_id, task,
                                     static_cast<uint32_t>(choice));
  if (!logged.ok()) {
    wal_append_failures_.fetch_add(1, std::memory_order_relaxed);
    // State untouched; the client should retry (same request_id) once the
    // log is writable again.
    return UnavailableError("answer log unavailable: " + logged.ToString());
  }
  wal_appends_.fetch_add(1, std::memory_order_relaxed);
  wal_records_.store(wal_->record_count(), std::memory_order_relaxed);

  Status applied = system_->SubmitAnswer(worker_id, task, choice);
  if (request_id != 0) {
    RecordDedupLocked(worker_id, request_id, applied.code());
  }
  if (!applied.ok()) return applied;

  answers_applied_.fetch_add(1, std::memory_order_relaxed);
  if (options_.checkpoint_every > 0 &&
      ++answers_since_checkpoint_ >= options_.checkpoint_every) {
    Status saved = CheckpointLocked();
    if (!saved.ok()) {
      // The answer itself is durable (WAL'd); a failed periodic checkpoint
      // only delays truncation. Log and keep serving.
      DOCS_LOG(Warning) << "periodic checkpoint failed: " << saved.ToString();
      answers_since_checkpoint_ = 0;  // back off until the next full period
    }
  }
  return OkStatus();
}

Status DurableDocsSystem::RequestTasks(const std::string& worker_id, size_t k,
                                       std::vector<size_t>* tasks) {
  if (!recovered_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("DurableDocsSystem not recovered");
  }
  // Warm path: a known worker is served through the facade alone — no
  // durable mutex, no WAL I/O. Routing through the facade's own RequestTasks
  // (not WithLocked + SelectTasks) matters in async mode: the facade serves
  // a snapshot-servable worker without the state lock, so a running EM pass
  // never blocks this request (DESIGN.md §15).
  if (system_->KnowsWorker(worker_id)) {
    *tasks = system_->RequestTasks(worker_id, k);
    return OkStatus();
  }

  // First contact: the registration must be durable before the index is
  // assigned, or recovery would renumber workers and change inference's
  // summation order.
  MutexLock lock(&mutex_);
  if (system_->KnowsWorker(worker_id)) {
    // Another thread registered meanwhile.
    *tasks = system_->RequestTasks(worker_id, k);
    return OkStatus();
  }
  Status logged = wal_->AppendRegistration(worker_id);
  if (!logged.ok()) {
    return UnavailableError("answer log unavailable: " + logged.ToString());
  }
  wal_appends_.fetch_add(1, std::memory_order_relaxed);
  wal_records_.store(wal_->record_count(), std::memory_order_relaxed);
  *tasks = system_->RequestTasks(worker_id, k);
  return OkStatus();
}

Status DurableDocsSystem::Checkpoint() {
  MutexLock lock(&mutex_);
  if (wal_ == nullptr) {
    return FailedPreconditionError("DurableDocsSystem not recovered");
  }
  return CheckpointLocked();
}

Status DurableDocsSystem::CheckpointLocked() {
  Status saved = system_->SaveCheckpoint(checkpoint_path_);
  if (!saved.ok()) return saved;
  // Carry the dedup window across the truncation: answers before the
  // checkpoint are now owned by the checkpoint file, but their request_ids
  // must keep deduping in-flight retries.
  std::vector<storage::AnswerWal::Record> carry;
  carry.reserve(window_.size());
  for (const DedupEntry& entry : window_) {
    storage::AnswerWal::Record record;
    record.kind = storage::AnswerWal::Record::Kind::kDedup;
    record.worker_id = entry.worker_id;
    record.request_id = entry.request_id;
    record.code = entry.code;
    carry.push_back(std::move(record));
  }
  Status reset = wal_->ResetTo(carry);
  if (!reset.ok()) return reset;
  wal_records_.store(wal_->record_count(), std::memory_order_relaxed);
  answers_since_checkpoint_ = 0;
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  return OkStatus();
}

void DurableDocsSystem::RecordDedupLocked(const std::string& worker_id,
                                          uint64_t request_id,
                                          StatusCode code) {
  if (request_id == 0) return;
  if (!window_index_.emplace(DedupKey(worker_id, request_id), code).second) {
    return;  // already present (replay after a checkpoint/truncate crash)
  }
  window_.push_back({worker_id, request_id, code});
  while (window_.size() > options_.dedup_window) {
    const DedupEntry& oldest = window_.front();
    window_index_.erase(DedupKey(oldest.worker_id, oldest.request_id));
    window_.pop_front();
  }
}

DurableStats DurableDocsSystem::stats() const {
  DurableStats out;
  out.wal_appends = wal_appends_.load(std::memory_order_relaxed);
  out.wal_append_failures =
      wal_append_failures_.load(std::memory_order_relaxed);
  out.answers_applied = answers_applied_.load(std::memory_order_relaxed);
  out.answers_deduped = answers_deduped_.load(std::memory_order_relaxed);
  out.answers_recovered = answers_recovered_.load(std::memory_order_relaxed);
  out.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  out.wal_records = wal_records_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace docs::core
