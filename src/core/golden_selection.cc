#include "core/golden_selection.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace docs::core {
namespace {

// One sigma_k ln(sigma_k / tau_k) term with the 0 ln 0 = 0 convention.
double Term(size_t count, size_t n_prime, double tau_k) {
  if (count == 0) return 0.0;
  if (tau_k <= 0.0) return std::numeric_limits<double>::infinity();
  const double sigma = static_cast<double>(count) / static_cast<double>(n_prime);
  return sigma * std::log(sigma / tau_k);
}

}  // namespace

std::vector<double> AggregateDomainDistribution(
    const std::vector<Task>& tasks) {
  if (tasks.empty()) return {};
  std::vector<double> tau(tasks[0].domain_vector.size(), 0.0);
  for (const Task& task : tasks) {
    // Previously an out-of-bounds read when a later task spanned fewer
    // domains than tasks[0]; now a declared contract.
    DOCS_CHECK_EQ(task.domain_vector.size(), tau.size())
        << "tasks disagree on the number of domains";
    CheckUnitInterval(task.domain_vector, 1e-9, "task domain vector (tau)");
    for (size_t k = 0; k < tau.size(); ++k) tau[k] += task.domain_vector[k];
  }
  for (auto& v : tau) v /= static_cast<double>(tasks.size());
  return tau;
}

double GoldenObjective(const std::vector<size_t>& counts,
                       const std::vector<double>& tau) {
  DOCS_CHECK_EQ(counts.size(), tau.size())
      << "golden counts and tau cover different domain sets";
  size_t n_prime = std::accumulate(counts.begin(), counts.end(), size_t{0});
  if (n_prime == 0) return 0.0;
  double objective = 0.0;
  for (size_t k = 0; k < counts.size(); ++k) {
    objective += Term(counts[k], n_prime, tau[k]);
  }
  return objective;
}

std::vector<size_t> ApproximateGoldenCounts(const std::vector<double>& tau,
                                            size_t n_prime) {
  // A NaN tau entry would corrupt every objective comparison in the greedy
  // and local-search loops below.
  CheckFinite(tau, "aggregate domain distribution tau");
  const size_t m = tau.size();
  std::vector<size_t> counts(m, 0);
  size_t assigned = 0;
  for (size_t k = 0; k < m; ++k) {
    counts[k] = static_cast<size_t>(
        std::floor(tau[k] * static_cast<double>(n_prime)));
    assigned += counts[k];
  }
  // Greedy unit increments: pick the domain whose increment minimizes the
  // objective (the `ind` rule of Section 5.2).
  while (assigned < n_prime) {
    size_t best = m;  // sentinel
    double best_objective = std::numeric_limits<double>::infinity();
    for (size_t k = 0; k < m; ++k) {
      if (tau[k] <= 0.0) continue;  // incrementing would make D infinite
      ++counts[k];
      const double objective = GoldenObjective(counts, tau);
      --counts[k];
      if (objective < best_objective) {
        best_objective = objective;
        best = k;
      }
    }
    if (best == m) {
      // Degenerate tau (all mass on zero-probability domains): spread the
      // remainder over the first domains to honor the sum constraint.
      for (size_t k = 0; k < m && assigned < n_prime; ++k) {
        ++counts[k];
        ++assigned;
      }
      break;
    }
    ++counts[best];
    ++assigned;
  }

  // Local-search polish: move one unit between domains while it improves the
  // objective. Keeps the result within a tiny gamma of the enumerated
  // optimum (the paper reports an average ratio under 0.1%).
  bool improved = true;
  size_t rounds = 0;
  while (improved && rounds < 4 * m) {
    improved = false;
    ++rounds;
    double current = GoldenObjective(counts, tau);
    for (size_t from = 0; from < m; ++from) {
      if (counts[from] == 0) continue;
      for (size_t to = 0; to < m; ++to) {
        if (to == from || tau[to] <= 0.0) continue;
        --counts[from];
        ++counts[to];
        const double candidate = GoldenObjective(counts, tau);
        if (candidate + 1e-15 < current) {
          current = candidate;
          improved = true;
        } else {
          ++counts[from];
          --counts[to];
        }
      }
    }
  }
  return counts;
}

namespace {

void EnumerateCompositions(size_t remaining, size_t k,
                           const std::vector<double>& tau,
                           std::vector<size_t>& current, double& best_objective,
                           std::vector<size_t>& best) {
  const size_t m = tau.size();
  if (k + 1 == m) {
    current[k] = remaining;
    const double objective = GoldenObjective(current, tau);
    if (objective < best_objective) {
      best_objective = objective;
      best = current;
    }
    return;
  }
  for (size_t c = 0; c <= remaining; ++c) {
    current[k] = c;
    EnumerateCompositions(remaining - c, k + 1, tau, current, best_objective,
                          best);
  }
}

}  // namespace

std::vector<size_t> OptimalGoldenCountsByEnumeration(
    const std::vector<double>& tau, size_t n_prime) {
  const size_t m = tau.size();
  if (m == 0) return {};
  std::vector<size_t> current(m, 0);
  std::vector<size_t> best(m, 0);
  best[0] = n_prime;
  double best_objective = std::numeric_limits<double>::infinity();
  EnumerateCompositions(n_prime, 0, tau, current, best_objective, best);
  return best;
}

GoldenSelectionResult SelectGoldenTasks(const std::vector<Task>& tasks,
                                        size_t n_prime) {
  GoldenSelectionResult result;
  if (tasks.empty() || n_prime == 0) return result;
  n_prime = std::min(n_prime, tasks.size());
  const std::vector<double> tau = AggregateDomainDistribution(tasks);
  result.counts = ApproximateGoldenCounts(tau, n_prime);
  result.objective = GoldenObjective(result.counts, tau);

  // Guideline 1: per domain, the tasks most related to it. Process domains
  // by decreasing demand so heavy domains get first pick; never reuse tasks.
  std::vector<size_t> domain_order(tau.size());
  std::iota(domain_order.begin(), domain_order.end(), size_t{0});
  std::sort(domain_order.begin(), domain_order.end(),
            [&](size_t a, size_t b) { return result.counts[a] > result.counts[b]; });
  std::vector<uint8_t> used(tasks.size(), 0);
  for (size_t k : domain_order) {
    if (result.counts[k] == 0) continue;
    std::vector<size_t> order(tasks.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return tasks[a].domain_vector[k] > tasks[b].domain_vector[k];
    });
    size_t taken = 0;
    for (size_t idx : order) {
      if (taken == result.counts[k]) break;
      if (used[idx]) continue;
      used[idx] = 1;
      result.tasks.push_back(idx);
      ++taken;
    }
  }
  return result;
}

}  // namespace docs::core
