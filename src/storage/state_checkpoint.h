#ifndef DOCS_STORAGE_STATE_CHECKPOINT_H_
#define DOCS_STORAGE_STATE_CHECKPOINT_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace docs::storage {

/// Fault point evaluated at the top of SaveStateCheckpoint: an injected
/// failure rejects the save before any byte is written (the on-disk
/// checkpoint keeps its previous contents). LogStore's compaction fault
/// points additionally cover mid-write and pre-rename crashes of a save.
inline constexpr char kFaultCheckpointSave[] = "checkpoint.save";

/// A durable snapshot of a running crowdsourcing session — the "database"
/// side of Figure 1 for tasks. It captures everything needed to resume
/// after a crash or restart: the tasks' domain vectors and choice counts,
/// the requester-known truths (for golden grading), the golden task set,
/// the registered workers with their seed profiles, and every received
/// answer in arrival order. All derived inference state (M̂, M, s, current
/// qualities) is rebuilt by replaying the answers.
struct StateCheckpoint {
  struct TaskState {
    std::vector<double> domain_vector;
    size_t num_choices = 2;
    int known_truth = -1;  ///< -1 when the requester does not know it
  };
  struct WorkerState {
    std::string external_id;
    std::vector<double> seed_quality;
    std::vector<double> seed_weight;
    bool golden_done = false;
  };
  struct AnswerRecord {
    size_t task = 0;
    size_t worker = 0;
    size_t choice = 0;
  };

  std::vector<TaskState> tasks;
  std::vector<size_t> golden_tasks;
  std::vector<WorkerState> workers;
  std::vector<AnswerRecord> answers;
};

/// Writes the checkpoint atomically (temp file + rename, checksummed
/// records).
[[nodiscard]] Status SaveStateCheckpoint(const StateCheckpoint& checkpoint,
                           const std::string& path);

/// Reads a checkpoint; fails with DataLoss on structural corruption (a torn
/// tail of answer records is tolerated, mirroring LogStore semantics).
[[nodiscard]] StatusOr<StateCheckpoint> LoadStateCheckpoint(const std::string& path);

}  // namespace docs::storage

#endif  // DOCS_STORAGE_STATE_CHECKPOINT_H_
