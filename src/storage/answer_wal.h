#ifndef DOCS_STORAGE_ANSWER_WAL_H_
#define DOCS_STORAGE_ANSWER_WAL_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/log_store.h"

namespace docs::storage {

/// Fault points for the answer write-ahead log. `wal/append` fails an
/// AppendAnswer cleanly before any byte reaches the file (the submit is
/// rejected as retryable and state is untouched); `wal/replay` fails Open,
/// modelling an unreadable WAL discovered during recovery.
inline constexpr char kFaultWalAppend[] = "wal/append";
inline constexpr char kFaultWalReplay[] = "wal/replay";

/// Write-ahead log of crowd answers for exactly-once serving (DESIGN.md
/// §12). Sits on a LogStore; each record is one of three line payloads:
///
///   reg <hex(worker_id)>                          worker first contact
///   ans <request_id> <task> <choice> <hex(worker_id)>   accepted submit
///   dedup <request_id> <CODE_NAME> <hex(worker_id)>     dedup-window carry
///
/// `reg` records preserve worker *registration order*, which fixes the
/// worker-index assignment and therefore the float summation order of
/// inference — required for bit-identical recovery. `ans` records are
/// logged before the answer is applied. `dedup` records appear only after a
/// checkpoint truncation: they carry the still-live dedup window (request_id
/// → apply status, by name) so a retry of an already-checkpointed submit is
/// still acknowledged idempotently. Worker ids are hex-encoded because
/// LogStore payloads are line-oriented and external ids may contain spaces
/// or newlines.
///
/// Open() is self-healing: a torn tail (crash mid-append) is detected via
/// LogStore and physically compacted away so later appends cannot fuse with
/// the torn bytes. Checksum-valid records that fail to parse, and duplicate
/// (worker, request_id) pairs, are data corruption — Open fails with
/// kDataLoss rather than guessing.
///
/// Thread-compatible, not thread-safe: every cross-thread use goes through
/// DurableDocsSystem, whose mutex guards the owning pointer (see the
/// DOCS_PT_GUARDED_BY annotation there). Adding a mutex here would only
/// duplicate that guard.
class AnswerWal {
 public:
  struct Record {
    enum class Kind { kRegister, kAnswer, kDedup };
    Kind kind = Kind::kAnswer;
    std::string worker_id;            ///< decoded external id
    uint64_t request_id = 0;          ///< ans/dedup; 0 = no dedup key
    uint64_t task = 0;                ///< ans only
    uint32_t choice = 0;              ///< ans only
    StatusCode code = StatusCode::kOk;  ///< dedup only: recorded apply status
  };

  struct Contents {
    std::vector<Record> records;  ///< valid records in append order
    bool tail_truncated = false;  ///< a torn tail was dropped (and repaired)
  };

  /// Opens (creating if needed) the WAL at `path`, filling `*contents` with
  /// every valid record. If the file ended in a torn record the tail is
  /// compacted away before returning, so the WAL is always append-safe.
  [[nodiscard]] static StatusOr<AnswerWal> Open(const std::string& path,
                                                Contents* contents);

  AnswerWal(AnswerWal&&) noexcept = default;
  AnswerWal& operator=(AnswerWal&&) noexcept = default;

  const std::string& path() const { return store_.path(); }
  size_t record_count() const { return store_.record_count(); }

  /// Durably logs a worker's first contact. Flushes before returning.
  [[nodiscard]] Status AppendRegistration(const std::string& worker_id);

  /// Durably logs one submitted answer. Flushes before returning: once this
  /// is OK the answer survives a crash. On failure nothing is logged as far
  /// as callers are concerned — a torn append is compacted back to the valid
  /// prefix and retried once, and a record whose flush failed is physically
  /// rolled back so a same-request_id retry re-logs it instead of creating a
  /// duplicate. If even the repair compaction fails the tail is marked dirty
  /// and every later append returns kUnavailable (after re-attempting the
  /// scrub) until a compaction succeeds — appending onto unscrubbed bytes
  /// would fuse records and silently lose an acked answer.
  [[nodiscard]] Status AppendAnswer(const std::string& worker_id,
                                    uint64_t request_id, uint64_t task,
                                    uint32_t choice);

  /// Post-checkpoint truncation: atomically replaces the log with only
  /// `window` (as dedup records, in order). Answers up to the checkpoint are
  /// now owned by the checkpoint file; the dedup window must outlive them so
  /// in-flight retries still dedup.
  [[nodiscard]] Status ResetTo(const std::vector<Record>& window);

 private:
  explicit AnswerWal(LogStore store) : store_(std::move(store)) {}

  [[nodiscard]] Status AppendPayload(const std::string& payload);

  LogStore store_;
  /// Mirror of every payload physically in the log, in order — the compact
  /// set for torn-tail self-repair.
  std::vector<std::string> payloads_;
  /// True while the file may hold bytes past the mirror (a failed append or
  /// rollback whose repair compaction also failed). Appends are refused
  /// until a compaction scrubs the tail.
  bool tail_dirty_ = false;
};

}  // namespace docs::storage

#endif  // DOCS_STORAGE_ANSWER_WAL_H_
