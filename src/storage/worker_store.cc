#include "storage/worker_store.h"

#include <sstream>

#include "storage/log_store.h"

namespace docs::storage {
namespace {

std::string SerializePayload(const std::string& worker_id,
                             const WorkerQualityRecord& record) {
  std::ostringstream out;
  out.precision(17);
  out << worker_id << ' ' << record.quality.size();
  for (double q : record.quality) out << ' ' << q;
  for (double u : record.weight) out << ' ' << u;
  return out.str();
}

// Parses a payload produced by SerializePayload; false on any mismatch.
bool ParsePayload(const std::string& payload, size_t num_domains,
                  std::string* worker_id, WorkerQualityRecord* record) {
  std::istringstream fields(payload);
  size_t m = 0;
  if (!(fields >> *worker_id >> m) || m != num_domains) return false;
  record->quality.resize(m);
  record->weight.resize(m);
  for (auto& q : record->quality) {
    if (!(fields >> q)) return false;
  }
  for (auto& u : record->weight) {
    if (!(fields >> u)) return false;
  }
  return true;
}

}  // namespace

WorkerQualityRecord WorkerQualityRecord::Fresh(size_t num_domains,
                                               double initial_quality) {
  WorkerQualityRecord record;
  record.quality.assign(num_domains, initial_quality);
  record.weight.assign(num_domains, 0.0);
  return record;
}

void WorkerQualityRecord::MergeTheorem1(const WorkerQualityRecord& fresh) {
  for (size_t k = 0; k < quality.size(); ++k) {
    const double denom = weight[k] + fresh.weight[k];
    if (denom <= 0.0) {
      quality[k] = fresh.quality[k];
      weight[k] = 0.0;
      continue;
    }
    quality[k] =
        (quality[k] * weight[k] + fresh.quality[k] * fresh.weight[k]) / denom;
    weight[k] = denom;
  }
}

struct WorkerStore::FileState {
  LogStore log;
  explicit FileState(LogStore log_in) : log(std::move(log_in)) {}
};

WorkerStore::WorkerStore(std::string path, size_t num_domains)
    : path_(std::move(path)), num_domains_(num_domains) {}

WorkerStore::~WorkerStore() = default;

WorkerStore WorkerStore::InMemory(size_t num_domains) {
  return WorkerStore("", num_domains);
}

StatusOr<WorkerStore> WorkerStore::Open(const std::string& path,
                                        size_t num_domains) {
  WorkerStore store(path, num_domains);
  auto log = LogStore::Open(path, [&store](const std::string& payload) {
    std::string worker_id;
    WorkerQualityRecord record;
    if (ParsePayload(payload, store.num_domains_, &worker_id, &record)) {
      store.index_[worker_id] = std::move(record);
    }
  });
  if (!log.ok()) return log.status();
  store.log_records_ = log->record_count();
  store.file_ = std::make_unique<FileState>(std::move(*log));
  return store;
}

bool WorkerStore::Contains(const std::string& worker_id) const {
  return index_.count(worker_id) > 0;
}

StatusOr<WorkerQualityRecord> WorkerStore::Get(
    const std::string& worker_id) const {
  auto it = index_.find(worker_id);
  if (it == index_.end()) {
    return NotFoundError("unknown worker: " + worker_id);
  }
  return it->second;
}

Status WorkerStore::AppendRecord(const std::string& worker_id,
                                 const WorkerQualityRecord& record) {
  ++log_records_;
  if (!file_) return OkStatus();  // In-memory store.
  return file_->log.Append(SerializePayload(worker_id, record));
}

Status WorkerStore::Put(const std::string& worker_id,
                        const WorkerQualityRecord& record) {
  if (record.quality.size() != num_domains_ ||
      record.weight.size() != num_domains_) {
    return InvalidArgumentError("record arity mismatch");
  }
  index_[worker_id] = record;
  return AppendRecord(worker_id, record);
}

Status WorkerStore::Merge(const std::string& worker_id,
                          const WorkerQualityRecord& fresh) {
  if (fresh.quality.size() != num_domains_ ||
      fresh.weight.size() != num_domains_) {
    return InvalidArgumentError("record arity mismatch");
  }
  auto it = index_.find(worker_id);
  if (it == index_.end()) {
    return Put(worker_id, fresh);
  }
  it->second.MergeTheorem1(fresh);
  return AppendRecord(worker_id, it->second);
}

std::vector<std::string> WorkerStore::WorkerIds() const {
  std::vector<std::string> ids;
  ids.reserve(index_.size());
  for (const auto& [id, record] : index_) ids.push_back(id);
  return ids;
}

Status WorkerStore::Compact() {
  if (!file_) {
    log_records_ = index_.size();
    return OkStatus();
  }
  std::vector<std::string> payloads;
  payloads.reserve(index_.size());
  for (const auto& [id, record] : index_) {
    payloads.push_back(SerializePayload(id, record));
  }
  Status status = file_->log.Compact(payloads);
  if (!status.ok()) return status;
  log_records_ = index_.size();
  return OkStatus();
}

Status WorkerStore::Flush() {
  if (!file_) return OkStatus();
  return file_->log.Flush();
}

}  // namespace docs::storage
