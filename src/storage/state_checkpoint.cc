#include "storage/state_checkpoint.h"

#include <sstream>

#include "common/fault_injection.h"
#include "storage/log_store.h"

namespace docs::storage {
namespace {

// Record kinds, one per payload line. Tasks/workers/answers may interleave
// in any order on disk; indices bind them together.
//   task <index> <known_truth> <num_choices> <m> r0 .. r{m-1}
//   golden <task_index>
//   worker <index> <external_id> <golden_done> <m> q0.. u0..
//   answer <task> <worker> <choice>

std::string SerializeTask(size_t index, const StateCheckpoint::TaskState& t) {
  std::ostringstream out;
  out.precision(17);
  out << "task " << index << ' ' << t.known_truth << ' ' << t.num_choices
      << ' ' << t.domain_vector.size();
  for (double r : t.domain_vector) out << ' ' << r;
  return out.str();
}

std::string SerializeWorker(size_t index,
                            const StateCheckpoint::WorkerState& w) {
  std::ostringstream out;
  out.precision(17);
  out << "worker " << index << ' ' << w.external_id << ' '
      << (w.golden_done ? 1 : 0) << ' ' << w.seed_quality.size();
  for (double q : w.seed_quality) out << ' ' << q;
  for (double u : w.seed_weight) out << ' ' << u;
  return out.str();
}

}  // namespace

Status SaveStateCheckpoint(const StateCheckpoint& checkpoint,
                           const std::string& path) {
  if (DOCS_FAULT_POINT(kFaultCheckpointSave)) {
    // Fails before anything is written: the previous checkpoint (if any)
    // stays intact, which is what retry-with-backoff relies on.
    return IoError("injected checkpoint save failure: " + path);
  }
  std::vector<std::string> payloads;
  payloads.reserve(checkpoint.tasks.size() + checkpoint.workers.size() +
                   checkpoint.answers.size() + checkpoint.golden_tasks.size());
  for (size_t i = 0; i < checkpoint.tasks.size(); ++i) {
    payloads.push_back(SerializeTask(i, checkpoint.tasks[i]));
  }
  for (size_t g : checkpoint.golden_tasks) {
    payloads.push_back("golden " + std::to_string(g));
  }
  for (size_t w = 0; w < checkpoint.workers.size(); ++w) {
    if (checkpoint.workers[w].external_id.find(' ') != std::string::npos) {
      return InvalidArgumentError("worker ids must not contain spaces");
    }
    payloads.push_back(SerializeWorker(w, checkpoint.workers[w]));
  }
  for (const auto& answer : checkpoint.answers) {
    payloads.push_back("answer " + std::to_string(answer.task) + ' ' +
                       std::to_string(answer.worker) + ' ' +
                       std::to_string(answer.choice));
  }
  auto log = LogStore::Open(path, nullptr);
  if (!log.ok()) return log.status();
  return log->Compact(payloads);
}

StatusOr<StateCheckpoint> LoadStateCheckpoint(const std::string& path) {
  StateCheckpoint checkpoint;
  bool corrupt = false;
  auto log = LogStore::Open(path, [&](const std::string& payload) {
    std::istringstream fields(payload);
    std::string kind;
    fields >> kind;
    if (kind == "task") {
      size_t index = 0, num_choices = 0, m = 0;
      int truth = -1;
      if (!(fields >> index >> truth >> num_choices >> m)) {
        corrupt = true;
        return;
      }
      if (checkpoint.tasks.size() <= index) {
        checkpoint.tasks.resize(index + 1);
      }
      auto& task = checkpoint.tasks[index];
      task.known_truth = truth;
      task.num_choices = num_choices;
      task.domain_vector.resize(m);
      for (auto& r : task.domain_vector) {
        if (!(fields >> r)) {
          corrupt = true;
          return;
        }
      }
    } else if (kind == "golden") {
      size_t index = 0;
      if (!(fields >> index)) {
        corrupt = true;
        return;
      }
      checkpoint.golden_tasks.push_back(index);
    } else if (kind == "worker") {
      size_t index = 0, m = 0;
      std::string id;
      int golden_done = 0;
      if (!(fields >> index >> id >> golden_done >> m)) {
        corrupt = true;
        return;
      }
      if (checkpoint.workers.size() <= index) {
        checkpoint.workers.resize(index + 1);
      }
      auto& worker = checkpoint.workers[index];
      worker.external_id = std::move(id);
      worker.golden_done = golden_done != 0;
      worker.seed_quality.resize(m);
      worker.seed_weight.resize(m);
      for (auto& q : worker.seed_quality) {
        if (!(fields >> q)) {
          corrupt = true;
          return;
        }
      }
      for (auto& u : worker.seed_weight) {
        if (!(fields >> u)) {
          corrupt = true;
          return;
        }
      }
    } else if (kind == "answer") {
      StateCheckpoint::AnswerRecord answer;
      if (!(fields >> answer.task >> answer.worker >> answer.choice)) {
        corrupt = true;
        return;
      }
      checkpoint.answers.push_back(answer);
    } else {
      corrupt = true;
    }
  });
  if (!log.ok()) return log.status();
  if (corrupt) return DataLossError("malformed checkpoint record: " + path);
  // Structural validation: every answer must reference known entities.
  for (const auto& answer : checkpoint.answers) {
    if (answer.task >= checkpoint.tasks.size() ||
        answer.worker >= checkpoint.workers.size() ||
        answer.choice >= checkpoint.tasks[answer.task].num_choices) {
      return DataLossError("dangling reference in checkpoint: " + path);
    }
  }
  for (size_t g : checkpoint.golden_tasks) {
    if (g >= checkpoint.tasks.size()) {
      return DataLossError("dangling golden task in checkpoint: " + path);
    }
  }
  return checkpoint;
}

}  // namespace docs::storage
