#ifndef DOCS_STORAGE_LOG_STORE_H_
#define DOCS_STORAGE_LOG_STORE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace docs::storage {

/// Fault points threaded through LogStore's file I/O (see
/// common/fault_injection.h). Tests arm these to force torn appends, failed
/// flushes, and crash-before-rename compactions; production pays one atomic
/// load per call when nothing is armed.
inline constexpr char kFaultAppend[] = "log_store.append";
inline constexpr char kFaultFlush[] = "log_store.flush";
inline constexpr char kFaultCompactWrite[] = "log_store.compact_write";
inline constexpr char kFaultCompactRename[] = "log_store.compact_rename";

/// A crash-safe append-only record log: the storage primitive under
/// WorkerStore and the DOCS system-state checkpoints.
///
/// Each record is a single line `PUT <payload> #<fnv1a(payload)>`. A torn
/// or corrupt *tail* is dropped on replay, so everything before a crash
/// point is recovered; corruption strictly inside the file fails Open (see
/// below). Compact() rewrites the log atomically (write temp + rename) with
/// a caller-provided record set.
///
/// Thread-compatible, not thread-safe: owners (AnswerWal, WorkerStore, the
/// checkpoint writers) serialize access under their own locks, so this layer
/// stays lock-free and single-purpose.
class LogStore {
 public:
  /// Opens (creating if needed) the log at `path` and replays existing
  /// records through `replay` in append order. Payloads containing newlines
  /// are rejected at append time, so replay yields them verbatim.
  ///
  /// When `tail_truncated` is non-null it is set to true if the file held
  /// bytes past the last valid record (a torn or corrupt tail, or a final
  /// record missing its newline). Such a tail is dropped from replay but
  /// still sits in the file: appending on top of it would fuse the torn
  /// bytes with the next record and corrupt it, so callers that intend to
  /// append after a crash must Compact() first (AnswerWal does this).
  ///
  /// Only a trailing run of bad bytes is treated as a torn tail. A corrupt
  /// record with checksum-valid records after it cannot be a torn write —
  /// that is mid-file corruption, and Open fails with kDataLoss rather than
  /// silently dropping the valid records behind it.
  [[nodiscard]] static StatusOr<LogStore> Open(
      const std::string& path,
      const std::function<void(const std::string& payload)>& replay,
      bool* tail_truncated = nullptr);

  LogStore(LogStore&&) noexcept;
  LogStore& operator=(LogStore&&) noexcept;
  LogStore(const LogStore&) = delete;
  LogStore& operator=(const LogStore&) = delete;
  ~LogStore();

  const std::string& path() const { return path_; }

  /// Number of records physically in the log (replayed + appended since
  /// open; reset by Compact()).
  size_t record_count() const { return record_count_; }

  /// Appends one payload with its checksum.
  [[nodiscard]] Status Append(const std::string& payload);

  /// Atomically replaces the log with exactly `payloads`.
  [[nodiscard]] Status Compact(const std::vector<std::string>& payloads);

  /// Flushes buffered appends to the OS.
  [[nodiscard]] Status Flush();

 private:
  explicit LogStore(std::string path);

  std::string path_;
  size_t record_count_ = 0;
  struct FileState;
  std::unique_ptr<FileState> file_;
};

}  // namespace docs::storage

#endif  // DOCS_STORAGE_LOG_STORE_H_
