#include "storage/answer_wal.h"

#include <cerrno>
#include <cstdlib>
#include <set>
#include <utility>

#include "common/fault_injection.h"
#include "common/string_utils.h"

namespace docs::storage {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

std::string ToHex(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() * 2);
  for (unsigned char c : raw) {
    out.push_back(kHexDigits[c >> 4]);
    out.push_back(kHexDigits[c & 0xf]);
  }
  return out;
}

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

bool FromHex(const std::string& hex, std::string* raw) {
  if (hex.size() % 2 != 0) return false;
  raw->clear();
  raw->reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = HexNibble(hex[i]);
    const int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    raw->push_back(static_cast<char>((hi << 4) | lo));
  }
  return true;
}

bool ParseU64(const std::string& field, uint64_t* value) {
  if (field.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(field.c_str(), &end, 10);
  if (errno != 0 || end != field.c_str() + field.size()) return false;
  *value = parsed;
  return true;
}

std::string SerializeRecord(const AnswerWal::Record& record) {
  using Kind = AnswerWal::Record::Kind;
  switch (record.kind) {
    case Kind::kRegister:
      return "reg " + ToHex(record.worker_id);
    case Kind::kAnswer:
      return "ans " + std::to_string(record.request_id) + ' ' +
             std::to_string(record.task) + ' ' +
             std::to_string(record.choice) + ' ' + ToHex(record.worker_id);
    case Kind::kDedup:
      return "dedup " + std::to_string(record.request_id) + ' ' +
             StatusCodeToString(record.code) + ' ' + ToHex(record.worker_id);
  }
  return "";
}

bool ParseWalRecord(const std::string& payload, AnswerWal::Record* record) {
  using Kind = AnswerWal::Record::Kind;
  const std::vector<std::string> fields = Split(payload, " ");
  if (fields.empty()) return false;
  if (fields[0] == "reg") {
    if (fields.size() != 2) return false;
    record->kind = Kind::kRegister;
    return FromHex(fields[1], &record->worker_id);
  }
  if (fields[0] == "ans") {
    uint64_t choice = 0;
    if (fields.size() != 5 || !ParseU64(fields[1], &record->request_id) ||
        !ParseU64(fields[2], &record->task) || !ParseU64(fields[3], &choice) ||
        choice > UINT32_MAX) {
      return false;
    }
    record->kind = Kind::kAnswer;
    record->choice = static_cast<uint32_t>(choice);
    return FromHex(fields[4], &record->worker_id);
  }
  if (fields[0] == "dedup") {
    if (fields.size() != 4 || !ParseU64(fields[1], &record->request_id)) {
      return false;
    }
    const std::optional<StatusCode> code = StatusCodeFromString(fields[2]);
    if (!code.has_value()) return false;
    record->kind = Kind::kDedup;
    record->code = *code;
    return FromHex(fields[3], &record->worker_id);
  }
  return false;
}

}  // namespace

StatusOr<AnswerWal> AnswerWal::Open(const std::string& path,
                                    Contents* contents) {
  if (DOCS_FAULT_POINT(kFaultWalReplay)) {
    return IoError("injected wal replay failure: " + path);
  }
  contents->records.clear();
  contents->tail_truncated = false;

  std::vector<std::string> payloads;
  std::string bad_payload;
  auto replay = [&](const std::string& payload) {
    if (!bad_payload.empty()) return;
    Record record;
    if (!ParseWalRecord(payload, &record)) {
      bad_payload = payload;
      return;
    }
    payloads.push_back(payload);
    contents->records.push_back(std::move(record));
  };
  bool torn = false;
  StatusOr<LogStore> store = LogStore::Open(path, replay, &torn);
  if (!store.ok()) return store.status();
  if (!bad_payload.empty()) {
    // Checksum-valid but unparseable: not a torn write (the checksum
    // matched), so this is corruption or a version skew — refuse to guess.
    return DataLossError("unparseable WAL record in " + path + ": " +
                         bad_payload);
  }
  // A (worker, request_id) pair may appear at most once across ans + dedup
  // records; a duplicate means an answer was double-logged.
  std::set<std::pair<std::string, uint64_t>> seen;
  for (const Record& record : contents->records) {
    if (record.kind == Record::Kind::kRegister || record.request_id == 0) {
      continue;
    }
    if (!seen.emplace(record.worker_id, record.request_id).second) {
      return DataLossError("duplicate request_id " +
                           std::to_string(record.request_id) +
                           " for worker in " + path);
    }
  }
  AnswerWal wal(std::move(store).value());
  wal.payloads_ = std::move(payloads);
  if (torn) {
    // Scrub the torn bytes now: appending on top of them would fuse the
    // torn prefix with the next record and lose both.
    Status repaired = wal.store_.Compact(wal.payloads_);
    if (!repaired.ok()) return repaired;
    contents->tail_truncated = true;
  }
  return wal;
}

Status AnswerWal::AppendRegistration(const std::string& worker_id) {
  Record record;
  record.kind = Record::Kind::kRegister;
  record.worker_id = worker_id;
  return AppendPayload(SerializeRecord(record));
}

Status AnswerWal::AppendAnswer(const std::string& worker_id,
                               uint64_t request_id, uint64_t task,
                               uint32_t choice) {
  if (DOCS_FAULT_POINT(kFaultWalAppend)) {
    return IoError("injected wal append failure: " + path());
  }
  Record record;
  record.kind = Record::Kind::kAnswer;
  record.worker_id = worker_id;
  record.request_id = request_id;
  record.task = task;
  record.choice = choice;
  return AppendPayload(SerializeRecord(record));
}

Status AnswerWal::AppendPayload(const std::string& payload) {
  if (tail_dirty_) {
    // An earlier failure left bytes past the mirror that a repair could not
    // scrub. Appending on top would fuse with them and corrupt both records,
    // so retry the scrub first and refuse the append while it keeps failing.
    Status repaired = store_.Compact(payloads_);
    if (!repaired.ok()) {
      return UnavailableError("answer log tail dirty: " + repaired.ToString());
    }
    tail_dirty_ = false;
  }
  Status appended = store_.Append(payload);
  if (!appended.ok()) {
    // The failed append may have left a torn half-record; rewrite the log
    // from the known-good mirror and try once more.
    Status repaired = store_.Compact(payloads_);
    if (!repaired.ok()) {
      tail_dirty_ = true;
      return appended;
    }
    appended = store_.Append(payload);
    if (!appended.ok()) {
      if (!store_.Compact(payloads_).ok()) tail_dirty_ = true;
      return appended;
    }
  }
  Status flushed = store_.Flush();
  if (!flushed.ok()) {
    // The record reached the stream but its durability is unknown, and the
    // caller records no dedup entry for a failed append — so a retry with
    // the same request_id will re-log it. Physically roll the record back
    // (Open rejects duplicate (worker, request_id) pairs as kDataLoss).
    if (!store_.Compact(payloads_).ok()) tail_dirty_ = true;
    return flushed;
  }
  payloads_.push_back(payload);
  return OkStatus();
}

Status AnswerWal::ResetTo(const std::vector<Record>& window) {
  std::vector<std::string> payloads;
  payloads.reserve(window.size());
  for (const Record& record : window) {
    if (record.request_id == 0) continue;  // never a dedup key
    Record dedup;
    dedup.kind = Record::Kind::kDedup;
    dedup.worker_id = record.worker_id;
    dedup.request_id = record.request_id;
    dedup.code = record.code;
    payloads.push_back(SerializeRecord(dedup));
  }
  Status compacted = store_.Compact(payloads);
  if (!compacted.ok()) return compacted;
  payloads_ = std::move(payloads);
  return OkStatus();
}

}  // namespace docs::storage
