#ifndef DOCS_STORAGE_WORKER_STORE_H_
#define DOCS_STORAGE_WORKER_STORE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace docs::storage {

/// The two statistics DOCS maintains per worker and domain (Section 4.2):
/// the quality q^w_k and its weight u^w_k, the expected number of answered
/// tasks related to domain d_k.
struct WorkerQualityRecord {
  std::vector<double> quality;
  std::vector<double> weight;

  /// A record with all-zero weights and `initial_quality` everywhere.
  static WorkerQualityRecord Fresh(size_t num_domains,
                                   double initial_quality = 0.0);

  /// Applies Theorem 1: quality <- (q̂·û + q·u)/(û + u), weight <- û + u,
  /// where (q̂, û) is *this and (q, u) is `fresh`. Domains where both weights
  /// are zero keep the fresh quality value.
  void MergeTheorem1(const WorkerQualityRecord& fresh);
};

/// Durable store for worker statistics: an in-memory hash index over an
/// append-only log file. This is the "DB" box of Figure 1 — it lets a worker
/// who returns under a later requester start from her accumulated quality
/// profile. Recovery tolerates a torn final record (crash mid-append);
/// Compact() rewrites the log with one record per live worker.
class WorkerStore {
 public:
  /// Opens (creating if needed) the store at `path` for vectors of
  /// `num_domains` entries; replays the log into memory.
  [[nodiscard]] static StatusOr<WorkerStore> Open(const std::string& path,
                                    size_t num_domains);

  /// A purely in-memory store (no durability) — used by simulations.
  static WorkerStore InMemory(size_t num_domains);

  WorkerStore(WorkerStore&&) = default;
  WorkerStore& operator=(WorkerStore&&) = default;
  WorkerStore(const WorkerStore&) = delete;
  WorkerStore& operator=(const WorkerStore&) = delete;
  ~WorkerStore();

  size_t num_domains() const { return num_domains_; }
  size_t size() const { return index_.size(); }
  bool Contains(const std::string& worker_id) const;

  /// Returns the stored record; NotFound for unknown workers.
  [[nodiscard]] StatusOr<WorkerQualityRecord> Get(const std::string& worker_id) const;

  /// Inserts or overwrites the record, appending it to the log.
  [[nodiscard]] Status Put(const std::string& worker_id, const WorkerQualityRecord& record);

  /// Merges `fresh` into the stored record via Theorem 1 (treating a missing
  /// record as all-zero weights) and persists the result.
  [[nodiscard]] Status Merge(const std::string& worker_id, const WorkerQualityRecord& fresh);

  /// All worker ids currently stored (unspecified order).
  std::vector<std::string> WorkerIds() const;

  /// Number of physical records in the log since opening (monotone until
  /// Compact() resets it). In-memory stores report number of Put/Merge calls.
  size_t log_records() const { return log_records_; }

  /// Rewrites the log to contain exactly one record per live worker.
  [[nodiscard]] Status Compact();

  /// Flushes buffered appends to the OS.
  [[nodiscard]] Status Flush();

 private:
  WorkerStore(std::string path, size_t num_domains);

  [[nodiscard]] Status AppendRecord(const std::string& worker_id,
                      const WorkerQualityRecord& record);

  std::string path_;  // empty for in-memory stores
  size_t num_domains_;
  size_t log_records_ = 0;
  std::unordered_map<std::string, WorkerQualityRecord> index_;
  struct FileState;
  std::unique_ptr<FileState> file_;
};

}  // namespace docs::storage

#endif  // DOCS_STORAGE_WORKER_STORE_H_
