#include "storage/log_store.h"

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <fstream>

#include "common/fault_injection.h"
#include "common/string_utils.h"

namespace docs::storage {
namespace {

uint64_t Fnv1a(const std::string& payload) {
  uint64_t hash = 1469598103934665603ULL;
  for (unsigned char c : payload) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

// Parses one log line; returns true and sets `payload` when the line is a
// well-formed, checksum-valid record.
bool ParseRecord(const std::string& line, std::string* payload) {
  if (!StartsWith(line, "PUT ")) return false;
  const size_t hash_pos = line.rfind(" #");
  if (hash_pos == std::string::npos || hash_pos < 4) return false;
  uint64_t stored = 0;
  if (std::sscanf(line.c_str() + hash_pos + 2, "%" SCNu64, &stored) != 1) {
    return false;
  }
  std::string body = line.substr(4, hash_pos - 4);
  if (Fnv1a(body) != stored) return false;
  *payload = std::move(body);
  return true;
}

}  // namespace

struct LogStore::FileState {
  std::ofstream out;
};

LogStore::LogStore(std::string path) : path_(std::move(path)) {}
LogStore::LogStore(LogStore&&) noexcept = default;
LogStore& LogStore::operator=(LogStore&&) noexcept = default;
LogStore::~LogStore() = default;

StatusOr<LogStore> LogStore::Open(
    const std::string& path,
    const std::function<void(const std::string& payload)>& replay,
    bool* tail_truncated) {
  if (tail_truncated) *tail_truncated = false;
  LogStore store(path);
  std::ifstream in(path, std::ios::binary);
  if (in.is_open()) {
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::string payload;
      if (!ParseRecord(line, &payload)) {
        // A torn write can only damage the end of the file. If any
        // checksum-valid record follows this line, the damage is mid-file
        // corruption (bit rot, partial overwrite); truncating here would
        // silently drop the valid records after it, so refuse to guess.
        std::string later;
        while (std::getline(in, line)) {
          if (!line.empty() && ParseRecord(line, &later)) {
            return DataLossError("corrupt record followed by valid records: " +
                                 path);
          }
        }
        if (tail_truncated) *tail_truncated = true;  // torn/corrupt tail
        break;
      }
      if (replay) replay(payload);
      ++store.record_count_;
    }
    if (tail_truncated && !*tail_truncated) {
      // Every line parsed, but a file not ending in '\n' means the last
      // record's newline was torn off: the next append would fuse with it.
      in.clear();
      in.seekg(0, std::ios::end);
      if (in.tellg() > std::streamoff(0)) {
        in.seekg(-1, std::ios::end);
        char last = '\0';
        if (in.get(last) && last != '\n') *tail_truncated = true;
      }
    }
  }
  store.file_ = std::make_unique<FileState>();
  store.file_->out.open(path, std::ios::app);
  if (!store.file_->out.is_open()) {
    return IoError("cannot open log: " + path);
  }
  return store;
}

Status LogStore::Append(const std::string& payload) {
  if (payload.find('\n') != std::string::npos) {
    return InvalidArgumentError("payload must not contain newlines");
  }
  if (DOCS_FAULT_POINT(kFaultAppend)) {
    // Simulate a crash mid-append: only a prefix of the record reaches the
    // file (no checksum, no newline), exactly what a torn write leaves.
    const std::string record =
        "PUT " + payload + " #" + std::to_string(Fnv1a(payload)) + '\n';
    file_->out << record.substr(0, record.size() / 2);
    file_->out.flush();
    return IoError("injected torn append: " + path_);
  }
  file_->out << "PUT " << payload << " #" << Fnv1a(payload) << '\n';
  if (!file_->out.good()) return IoError("append failed: " + path_);
  ++record_count_;
  return OkStatus();
}

Status LogStore::Compact(const std::vector<std::string>& payloads) {
  file_->out.close();
  const std::string tmp = path_ + ".compact";
  // On any failure the original log is untouched; reopen it for append so
  // the store stays usable and a later retry can run.
  auto fail = [this](std::string message) {
    file_->out.open(path_, std::ios::app);
    return IoError(std::move(message));
  };
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.is_open()) return fail("cannot open " + tmp);
    for (const auto& payload : payloads) {
      out << "PUT " << payload << " #" << Fnv1a(payload) << '\n';
    }
    if (DOCS_FAULT_POINT(kFaultCompactWrite)) {
      return fail("injected compaction write failure: " + path_);
    }
    if (!out.good()) return fail("compaction write failed");
  }
  if (DOCS_FAULT_POINT(kFaultCompactRename)) {
    // Crash before the rename: the fully written temp file is orphaned, the
    // live log keeps its old contents — the atomicity contract under test.
    return fail("injected crash before compaction rename: " + path_);
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    return fail("compaction rename failed");
  }
  record_count_ = payloads.size();
  file_->out.open(path_, std::ios::app);
  if (!file_->out.is_open()) return IoError("cannot reopen " + path_);
  return OkStatus();
}

Status LogStore::Flush() {
  if (DOCS_FAULT_POINT(kFaultFlush)) {
    return IoError("injected flush failure: " + path_);
  }
  file_->out.flush();
  if (!file_->out.good()) return IoError("flush failed: " + path_);
  return OkStatus();
}

}  // namespace docs::storage
