#ifndef DOCS_SERVER_CROWD_GATEWAY_H_
#define DOCS_SERVER_CROWD_GATEWAY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/concurrent_docs_system.h"
#include "core/durable_docs_system.h"
#include "net/wire.h"

namespace docs::server {

/// Fault points the gateway evaluates on its I/O edges (chaos tests arm
/// these to prove a flaky network cannot wedge the serving loop).
/// `gateway/recover` fires at the top of a durable Start(): an injected
/// failure aborts the boot before the socket binds, modelling a recovery
/// directory that cannot be read — Start() can simply be retried.
inline constexpr char kFaultGatewayAccept[] = "gateway/accept";
inline constexpr char kFaultGatewayRead[] = "gateway/read";
inline constexpr char kFaultGatewayWrite[] = "gateway/write";
inline constexpr char kFaultGatewayRecover[] = "gateway/recover";

struct CrowdGatewayOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it back
  /// with port() after Start()).
  uint16_t port = 0;
  int listen_backlog = 64;
  /// At the cap the gateway stops polling the acceptor, so further
  /// connections wait in the kernel backlog until a slot frees; a burst that
  /// outraces the cap check inside one accept sweep is closed immediately.
  size_t max_connections = 64;
  /// Bound on responses queued but not yet handed to the kernel, across all
  /// connections. Requests arriving past the bound are shed with a
  /// kUnavailable response instead of queueing without limit.
  size_t max_inflight = 256;
  /// On Stop(), how long to keep flushing buffered responses before closing
  /// the remaining connections hard.
  uint64_t drain_timeout_ms = 2000;
  /// When nonzero, the event loop sweeps expired leases roughly this often
  /// with now = the system's current lease clock. 0 disables the sweep
  /// (clients can still drive expiry explicitly over the wire).
  uint64_t lease_expiry_interval_ms = 0;
};

/// Monotonic counters exposed for tests, the load generator, and the wire
/// Stats response. Snapshot semantics: values are read individually.
struct GatewayStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;
  uint64_t requests_served = 0;
  uint64_t requests_shed = 0;
  uint64_t protocol_errors = 0;
  uint64_t faults_injected = 0;
  uint64_t leases_expired = 0;
  /// Benefit-cache effectiveness of the wrapped system (DESIGN.md §11),
  /// sampled at stats() time. Local observability only — the frozen wire
  /// Stats response does not carry these.
  uint64_t benefit_cache_hits = 0;
  uint64_t benefit_cache_misses = 0;
  /// Durability counters (wire StatsResp v2); 0 without a durable layer.
  uint64_t answers_deduped = 0;
  uint64_t wal_records = 0;
};

/// TCP serving layer in front of ConcurrentDocsSystem: one poll()-based
/// event loop thread owns every socket; request handling is inline (a
/// facade call is tens of microseconds behind one mutex, so a second stage
/// of worker threads would only add handoff latency — see DESIGN.md §10).
///
/// The loop handles torn frames (FrameDecoder buffers partial reads),
/// pipelined requests (every complete frame in a read batch is served, in
/// order), overload (bounded in-flight responses, kUnavailable past the
/// bound), protocol violations (the connection is closed; a byte stream
/// that lost framing cannot be resynchronized), and graceful shutdown
/// (Stop() stops accepting, flushes buffered responses within
/// drain_timeout_ms, then closes).
class CrowdGateway {
 public:
  /// `system` must outlive the gateway.
  CrowdGateway(core::ConcurrentDocsSystem* system,
               CrowdGatewayOptions options = {});

  /// Durable serving: Start() first runs `durable->Recover()` (when it has
  /// not run yet) so a killed gateway restarts into the same campaign, and
  /// SubmitAnswer/RequestTasks dispatch through the WAL + dedup layer.
  /// `durable` (and its facade) must outlive the gateway.
  CrowdGateway(core::DurableDocsSystem* durable,
               CrowdGatewayOptions options = {});
  ~CrowdGateway();

  CrowdGateway(const CrowdGateway&) = delete;
  CrowdGateway& operator=(const CrowdGateway&) = delete;

  /// Binds, listens, and spawns the event-loop thread. IoError when the
  /// socket setup fails; FailedPrecondition when already running.
  [[nodiscard]] Status Start();

  /// Graceful shutdown: stop accepting, drain buffered responses, close,
  /// join the loop thread. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (the ephemeral one when options.port was 0). Valid
  /// after a successful Start().
  uint16_t port() const { return port_; }

  GatewayStats stats() const;

 private:
  struct Connection {
    int fd = -1;
    net::FrameDecoder decoder;
    std::string outbuf;
    size_t out_offset = 0;
    /// Byte length of each response still (partially) in outbuf, in order;
    /// popped as the socket drains so the global in-flight count tracks
    /// responses the kernel has fully taken.
    std::deque<size_t> pending_responses;
  };

  void EventLoop();
  void AcceptReady();
  /// Reads and serves everything available on `conn`; false => close it.
  bool ReadReady(Connection& conn);
  /// Flushes buffered output; false => close the connection.
  bool WriteReady(Connection& conn);
  /// Serves one decoded frame: dispatch (or shed) and queue the response.
  void ServeFrame(Connection& conn, const net::Frame& request);
  net::Frame Dispatch(const net::Frame& request);
  void CloseConnection(size_t index);
  /// Runs the periodic lease sweep when its interval elapsed; returns the
  /// poll timeout (ms) until the next due sweep (-1 when disabled).
  int LeaseSweepTimeout();

  core::ConcurrentDocsSystem* system_;
  /// Non-null in durable deployments; answer/request dispatch then goes
  /// through the WAL + dedup layer instead of straight at the facade.
  core::DurableDocsSystem* durable_ = nullptr;
  CrowdGatewayOptions options_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;
  std::thread loop_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  /// Owned by the event-loop thread exclusively.
  std::vector<std::unique_ptr<Connection>> connections_;
  size_t inflight_ = 0;
  uint64_t next_sweep_ms_ = 0;

  // Stats counters are written by the loop thread and read from any thread.
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_rejected_{0};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> requests_shed_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> faults_injected_{0};
  std::atomic<uint64_t> leases_expired_{0};
};

}  // namespace docs::server

#endif  // DOCS_SERVER_CROWD_GATEWAY_H_
