#ifndef DOCS_SERVER_CROWD_GATEWAY_H_
#define DOCS_SERVER_CROWD_GATEWAY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "core/concurrent_docs_system.h"
#include "core/durable_docs_system.h"
#include "net/wire.h"

namespace docs::server {

/// Fault points the gateway evaluates on its I/O edges (chaos tests arm
/// these to prove a flaky network cannot wedge the serving loop).
/// `gateway/recover` fires at the top of a durable Start(): an injected
/// failure aborts the boot before the socket binds, modelling a recovery
/// directory that cannot be read — Start() can simply be retried.
inline constexpr char kFaultGatewayAccept[] = "gateway/accept";
inline constexpr char kFaultGatewayRead[] = "gateway/read";
inline constexpr char kFaultGatewayWrite[] = "gateway/write";
inline constexpr char kFaultGatewayRecover[] = "gateway/recover";

struct CrowdGatewayOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it back
  /// with port() after Start()).
  uint16_t port = 0;
  int listen_backlog = 64;
  /// Event-loop (reactor) threads behind the single acceptor; each owns its
  /// connections end to end. 1 keeps the historical single-loop behavior.
  size_t num_reactors = 1;
  /// Connection cap PER REACTOR. While every reactor is full the acceptor
  /// stops polling the listener, so further connections wait in the kernel
  /// backlog until a slot frees; a burst that outraces the capacity check
  /// inside one accept sweep is closed immediately.
  size_t max_connections = 64;
  /// Bound on responses queued but not yet handed to the kernel, PER
  /// REACTOR across its connections. Requests arriving past the bound are
  /// shed with a kUnavailable response instead of queueing without limit.
  /// Per-reactor (rather than gateway-global) keeps shedding deterministic:
  /// each reactor evaluates the bound against only the pipelined bursts it
  /// owns, with no cross-thread interleaving in the count.
  size_t max_inflight = 256;
  /// On Stop(), how long to keep flushing buffered responses before closing
  /// the remaining connections hard.
  uint64_t drain_timeout_ms = 2000;
  /// When nonzero, every reactor sweeps expired leases roughly this often
  /// with now = the system's current lease clock. 0 disables the sweep
  /// (clients can still drive expiry explicitly over the wire).
  uint64_t lease_expiry_interval_ms = 0;
};

/// Monotonic counters exposed for tests, the load generator, and the wire
/// Stats response. Snapshot semantics: each value is an independent atomic
/// load (the struct is not a consistent cross-counter snapshot); stats()
/// aggregates across reactors, reactor_stats() keeps them apart.
struct GatewayStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;
  uint64_t requests_served = 0;
  uint64_t requests_shed = 0;
  uint64_t protocol_errors = 0;
  uint64_t faults_injected = 0;
  uint64_t leases_expired = 0;
  /// Benefit-cache effectiveness of the wrapped system (DESIGN.md §11),
  /// sampled at stats() time. Row-level counts score recomputations;
  /// request-level counts whole scoring passes — hit-rate dashboards want
  /// request_hits / (request_hits + request_misses). Local observability
  /// only — the frozen wire Stats response does not carry these.
  uint64_t benefit_cache_hits = 0;
  uint64_t benefit_cache_misses = 0;
  uint64_t benefit_cache_request_hits = 0;
  uint64_t benefit_cache_request_misses = 0;
  /// Benefit-index effectiveness (DESIGN.md §16), sampled at stats() time:
  /// heap nodes visited by index-served selections, targeted repairs, full
  /// O(n) rebuilds, and O(1) generation invalidations (full re-inference
  /// runs staled wholesale). Local observability only — the frozen wire
  /// Stats response does not carry these.
  uint64_t benefit_index_pops = 0;
  uint64_t benefit_index_repairs = 0;
  uint64_t benefit_index_rebuilds = 0;
  uint64_t benefit_index_generation_invalidations = 0;
  /// Durability counters (wire StatsResp v2); 0 without a durable layer.
  uint64_t answers_deduped = 0;
  uint64_t wal_records = 0;
  /// Async-inference staleness counters (DESIGN.md §15), sampled from the
  /// facade at stats() time; all zero when async mode is off. Local
  /// observability only — the frozen wire Stats response does not carry
  /// them. `async_answers_pending` is the serving staleness in answers
  /// (acked but not yet reflected in the published snapshot);
  /// `async_last_sweep_epoch` records which publish the most recent lease
  /// sweep was consistent with.
  uint64_t async_snapshot_epoch = 0;
  uint64_t async_publishes = 0;
  uint64_t async_answers_pending = 0;
  uint64_t async_enqueue_waits = 0;
  uint64_t async_last_sweep_epoch = 0;
  double async_publish_gap_us = 0.0;
};

/// TCP serving layer in front of ConcurrentDocsSystem: one acceptor thread
/// owns the listening socket and hands each accepted connection to one of N
/// poll()-based reactor threads (round-robin over reactors with a free
/// slot, woken through their self-pipes). Each reactor owns its
/// connections' buffers, lease sweeps, and overload accounting end to end —
/// no socket is ever touched by two threads. Request handling stays inline
/// on the reactor (DESIGN.md §10); the facade's sharded locking (§13) lets
/// the reactors' RequestTasks calls score in parallel.
///
/// Each reactor handles torn frames (FrameDecoder buffers partial reads),
/// pipelined requests (every complete frame in a read batch is served, in
/// order), overload (bounded in-flight responses per reactor, kUnavailable
/// past the bound), protocol violations (the connection is closed; a byte
/// stream that lost framing cannot be resynchronized), and graceful
/// shutdown (Stop() stops accepting, flushes buffered responses within
/// drain_timeout_ms, then closes).
class CrowdGateway {
 public:
  /// `system` must outlive the gateway.
  CrowdGateway(core::ConcurrentDocsSystem* system,
               CrowdGatewayOptions options = {});

  /// Durable serving: Start() first runs `durable->Recover()` (when it has
  /// not run yet) so a killed gateway restarts into the same campaign, and
  /// SubmitAnswer/RequestTasks dispatch through the WAL + dedup layer.
  /// `durable` (and its facade) must outlive the gateway.
  CrowdGateway(core::DurableDocsSystem* durable,
               CrowdGatewayOptions options = {});
  ~CrowdGateway();

  CrowdGateway(const CrowdGateway&) = delete;
  CrowdGateway& operator=(const CrowdGateway&) = delete;

  /// Binds, listens, and spawns the acceptor and reactor threads. IoError
  /// when the socket setup fails; FailedPrecondition when already running.
  /// Start/Stop are externally serialized (one lifecycle owner); stats
  /// readers may race them freely.
  [[nodiscard]] Status Start() DOCS_EXCLUDES(lifecycle_mutex_);

  /// Graceful shutdown: stop accepting, drain buffered responses on every
  /// reactor, close, join all threads. Idempotent. Never holds
  /// lifecycle_mutex_ while joining, so concurrent stats() calls cannot
  /// block for the drain (pinned by gateway_test).
  void Stop() DOCS_EXCLUDES(lifecycle_mutex_);

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (the ephemeral one when options.port was 0). Valid
  /// after a successful Start().
  uint16_t port() const { return port_; }

  /// Gateway-wide counters: per-reactor blocks summed, plus the acceptor's.
  /// EXCLUDES makes a self-deadlock (a handler calling stats() from a
  /// context already under lifecycle_mutex_, e.g. inside a future Stop()
  /// hook) a compile error under -DDOCS_THREAD_SAFETY instead of a hang.
  GatewayStats stats() const DOCS_EXCLUDES(lifecycle_mutex_);
  /// One un-summed counter block per reactor (acceptor-level counters —
  /// rejections, accept/recover faults — appear only in the aggregate).
  /// Valid while the reactors exist, i.e. between Start() and Stop().
  std::vector<GatewayStats> reactor_stats() const
      DOCS_EXCLUDES(lifecycle_mutex_);

 private:
  struct Connection {
    int fd = -1;
    net::FrameDecoder decoder;
    std::string outbuf;
    size_t out_offset = 0;
    /// Byte length of each response still (partially) in outbuf, in order;
    /// popped as the socket drains so the reactor's in-flight count tracks
    /// responses the kernel has fully taken.
    std::deque<size_t> pending_responses;
  };

  /// One event loop: a self-pipe for wakeups/hand-off, its own connection
  /// table and overload accounting, and an atomic counter block the stats
  /// readers aggregate without stopping the loop.
  struct Reactor {
    int wake_pipe[2] = {-1, -1};
    std::thread thread;

    /// Hand-off lane from the acceptor: accepted fds awaiting adoption.
    /// Leaf lock — nothing else is ever acquired under it.
    Mutex handoff_mutex;
    std::vector<int> handoff DOCS_GUARDED_BY(handoff_mutex);
    /// Adopted connections + queued hand-offs; the acceptor reads this to
    /// pick a reactor with a free slot and to gate listener polling.
    std::atomic<size_t> live{0};

    /// Owned by this reactor's loop thread exclusively.
    std::vector<std::unique_ptr<Connection>> connections;
    size_t inflight = 0;
    uint64_t next_sweep_ms = 0;

    /// Written by this reactor (admissions by the acceptor), read anywhere.
    std::atomic<uint64_t> connections_accepted{0};
    std::atomic<uint64_t> requests_served{0};
    std::atomic<uint64_t> requests_shed{0};
    std::atomic<uint64_t> protocol_errors{0};
    std::atomic<uint64_t> faults_injected{0};
    std::atomic<uint64_t> leases_expired{0};
  };

  void AcceptorLoop() DOCS_EXCLUDES(lifecycle_mutex_);
  /// Drains one accept burst: admits each fd to a reactor with a free slot
  /// (round-robin from the last admission), closes the overflow. `reactors`
  /// is the acceptor's locked snapshot of the reactor set (stable between
  /// Start and Stop, which joins the acceptor before tearing it down).
  void AcceptReady(const std::vector<Reactor*>& reactors);
  /// Moves queued hand-off fds into the reactor's connection table.
  void AdoptHandoff(Reactor& reactor);
  void ReactorLoop(Reactor& reactor);
  /// Reads and serves everything available on `conn`; false => close it.
  bool ReadReady(Reactor& reactor, Connection& conn);
  /// Flushes buffered output; false => close the connection.
  bool WriteReady(Reactor& reactor, Connection& conn);
  /// Serves one decoded frame: dispatch (or shed) and queue the response.
  void ServeFrame(Reactor& reactor, Connection& conn,
                  const net::Frame& request);
  net::Frame Dispatch(Reactor& reactor, const net::Frame& request);
  void CloseConnection(Reactor& reactor, size_t index);
  /// Runs the reactor's periodic lease sweep when its interval elapsed;
  /// returns the poll timeout (ms) until the next due sweep (-1 when
  /// disabled).
  int LeaseSweepTimeout(Reactor& reactor);
  /// Wakes the acceptor (capacity freed / shutdown).
  void WakeAcceptor();
  /// Raw pointers to the current reactor set, taken under lifecycle_mutex_.
  /// The pointees outlive the snapshot holder: only Stop() destroys
  /// reactors, after joining every thread that could hold a snapshot.
  std::vector<Reactor*> SnapshotReactors() const
      DOCS_EXCLUDES(lifecycle_mutex_);
  /// Gateway-wide served/shed totals for the wire Stats response, read
  /// under lifecycle_mutex_ like every other retired_/reactors_ access.
  void SumWireCounters(uint64_t* served, uint64_t* shed) const
      DOCS_EXCLUDES(lifecycle_mutex_);

  core::ConcurrentDocsSystem* system_;
  /// Non-null in durable deployments; answer/request dispatch then goes
  /// through the WAL + dedup layer instead of straight at the facade.
  core::DurableDocsSystem* durable_ = nullptr;
  CrowdGatewayOptions options_;

  int listen_fd_ = -1;
  int acceptor_wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  /// Guards the reactor-set *structure* (rebuilt by Start, cleared by Stop)
  /// and the retired-counter fold below. Leaf with respect to the facade:
  /// never held across a call into ConcurrentDocsSystem/DurableDocsSystem.
  mutable Mutex lifecycle_mutex_;
  /// Sized in Start(), joined and cleared in Stop(). unique_ptr because a
  /// Reactor (mutex + atomics + thread) is neither movable nor copyable.
  /// Every access — including the acceptor's and the wire Stats read on a
  /// reactor thread — goes through the lock or a locked snapshot
  /// (SnapshotReactors); the pointees themselves are stable between Start
  /// and Stop.
  std::vector<std::unique_ptr<Reactor>> reactors_
      DOCS_GUARDED_BY(lifecycle_mutex_);
  /// Round-robin cursor for admissions; acceptor-thread only.
  size_t next_reactor_ = 0;
  /// Counters of reactors from finished runs, folded in by Stop() so
  /// stats() stays cumulative across Start/Stop cycles. Only the reactor
  /// counter fields are meaningful.
  GatewayStats retired_ DOCS_GUARDED_BY(lifecycle_mutex_);

  // Acceptor-level counters (reactor-level ones live in each Reactor).
  std::atomic<uint64_t> connections_rejected_{0};
  std::atomic<uint64_t> faults_injected_{0};
};

}  // namespace docs::server

#endif  // DOCS_SERVER_CROWD_GATEWAY_H_
