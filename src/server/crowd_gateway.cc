#include "server/crowd_gateway.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/string_utils.h"

namespace docs::server {
namespace {

uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void CloseFd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

void WakePipe(int write_fd) {
  const char byte = 1;
  // A full pipe already guarantees a pending wakeup; the write may fail.
  ssize_t ignored = ::write(write_fd, &byte, 1);
  (void)ignored;
}

void DrainPipe(int read_fd) {
  char drain[64];
  while (::read(read_fd, drain, sizeof(drain)) > 0) {
  }
}

}  // namespace

CrowdGateway::CrowdGateway(core::ConcurrentDocsSystem* system,
                           CrowdGatewayOptions options)
    : system_(system), options_(options) {
  if (options_.num_reactors == 0) options_.num_reactors = 1;
  if (options_.max_inflight == 0) options_.max_inflight = 1;
}

CrowdGateway::CrowdGateway(core::DurableDocsSystem* durable,
                           CrowdGatewayOptions options)
    : CrowdGateway(durable->facade(), options) {
  durable_ = durable;
}

CrowdGateway::~CrowdGateway() { Stop(); }

Status CrowdGateway::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("gateway already running");
  }
  if (durable_ != nullptr && !durable_->recovered()) {
    if (DOCS_FAULT_POINT(kFaultGatewayRecover)) {
      faults_injected_.fetch_add(1);
      return IoError("injected recovery failure");
    }
    // Recover before binding: no client can reach a gateway whose state is
    // not yet the pre-crash state. A failed recovery leaves the gateway
    // stopped; Start() can be retried once the cause clears.
    Status recovered = durable_->Recover();
    if (!recovered.ok()) return recovered;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    return IoError("socket: " + ErrnoString(errno));
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = IoError(std::string("bind: ") + ErrnoString(errno));
    CloseFd(listen_fd_);
    return status;
  }
  if (::listen(listen_fd_, options_.listen_backlog) < 0) {
    Status status = IoError(std::string("listen: ") + ErrnoString(errno));
    CloseFd(listen_fd_);
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) < 0) {
    Status status =
        IoError(std::string("getsockname: ") + ErrnoString(errno));
    CloseFd(listen_fd_);
    return status;
  }
  port_ = ntohs(addr.sin_port);
  if (::pipe2(acceptor_wake_pipe_, O_NONBLOCK | O_CLOEXEC) < 0) {
    Status status = IoError(std::string("pipe2: ") + ErrnoString(errno));
    CloseFd(listen_fd_);
    return status;
  }

  // Build the reactor set fresh on every (re)start; counters from previous
  // runs were folded into retired_ by Stop().
  std::vector<std::unique_ptr<Reactor>> reactors;
  reactors.reserve(options_.num_reactors);
  for (size_t i = 0; i < options_.num_reactors; ++i) {
    auto reactor = std::make_unique<Reactor>();
    if (::pipe2(reactor->wake_pipe, O_NONBLOCK | O_CLOEXEC) < 0) {
      Status status = IoError(std::string("pipe2: ") + ErrnoString(errno));
      for (auto& built : reactors) {
        CloseFd(built->wake_pipe[0]);
        CloseFd(built->wake_pipe[1]);
      }
      CloseFd(acceptor_wake_pipe_[0]);
      CloseFd(acceptor_wake_pipe_[1]);
      CloseFd(listen_fd_);
      return status;
    }
    reactors.push_back(std::move(reactor));
  }
  // Install under the lifecycle lock, then spawn from a snapshot taken in
  // the same critical section: the set is immutable until Stop() (which
  // joins every thread before touching it again), so loops hold raw
  // pointers instead of re-locking per iteration.
  std::vector<Reactor*> live;
  live.reserve(reactors.size());
  for (auto& reactor : reactors) live.push_back(reactor.get());
  {
    MutexLock lock(&lifecycle_mutex_);
    reactors_ = std::move(reactors);
  }
  next_reactor_ = 0;

  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  for (Reactor* reactor : live) {
    reactor->thread =
        std::thread(&CrowdGateway::ReactorLoop, this, std::ref(*reactor));
  }
  acceptor_ = std::thread(&CrowdGateway::AcceptorLoop, this);
  DOCS_LOG(Info) << "crowd gateway listening on 127.0.0.1:" << port_
                 << " with " << live.size() << " reactor(s)";
  return OkStatus();
}

void CrowdGateway::Stop() {
  if (!acceptor_.joinable() && SnapshotReactors().empty()) return;
  stop_requested_.store(true, std::memory_order_release);
  // The acceptor goes first so no new connections race the drain.
  WakeAcceptor();
  if (acceptor_.joinable()) acceptor_.join();
  // Wake and join through a snapshot so the (up to drain_timeout_ms) wait
  // happens outside lifecycle_mutex_ — a concurrent stats() call must never
  // block on the drain. The set itself cannot change underneath us: Start
  // and Stop are externally serialized, and only they write reactors_.
  const std::vector<Reactor*> live = SnapshotReactors();
  for (Reactor* reactor : live) WakePipe(reactor->wake_pipe[1]);
  for (Reactor* reactor : live) {
    if (reactor->thread.joinable()) reactor->thread.join();
  }
  {
    // Fold the finished reactors' counters into the retired block so
    // stats() stays cumulative across Start/Stop cycles, as it was when
    // the counters were plain members.
    MutexLock lock(&lifecycle_mutex_);
    for (auto& reactor : reactors_) {
      retired_.connections_accepted += reactor->connections_accepted.load();
      retired_.requests_served += reactor->requests_served.load();
      retired_.requests_shed += reactor->requests_shed.load();
      retired_.protocol_errors += reactor->protocol_errors.load();
      retired_.faults_injected += reactor->faults_injected.load();
      retired_.leases_expired += reactor->leases_expired.load();
      CloseFd(reactor->wake_pipe[0]);
      CloseFd(reactor->wake_pipe[1]);
    }
    reactors_.clear();
  }
  CloseFd(acceptor_wake_pipe_[0]);
  CloseFd(acceptor_wake_pipe_[1]);
  running_.store(false, std::memory_order_release);
}

std::vector<CrowdGateway::Reactor*> CrowdGateway::SnapshotReactors() const {
  MutexLock lock(&lifecycle_mutex_);
  std::vector<Reactor*> out;
  out.reserve(reactors_.size());
  for (const auto& reactor : reactors_) out.push_back(reactor.get());
  return out;
}

void CrowdGateway::SumWireCounters(uint64_t* served, uint64_t* shed) const {
  MutexLock lock(&lifecycle_mutex_);
  *served = retired_.requests_served;
  *shed = retired_.requests_shed;
  for (const auto& reactor : reactors_) {
    *served += reactor->requests_served.load();
    *shed += reactor->requests_shed.load();
  }
}

GatewayStats CrowdGateway::stats() const {
  GatewayStats out;
  {
    // Only the retired block and the live reactors' counters need the
    // lifecycle lock; the facade and durable reads below happen after it is
    // released so this lock never couples to the serving locks.
    MutexLock lock(&lifecycle_mutex_);
    out = retired_;
    for (const auto& reactor : reactors_) {
      out.connections_accepted += reactor->connections_accepted.load();
      out.requests_served += reactor->requests_served.load();
      out.requests_shed += reactor->requests_shed.load();
      out.protocol_errors += reactor->protocol_errors.load();
      out.faults_injected += reactor->faults_injected.load();
      out.leases_expired += reactor->leases_expired.load();
    }
  }
  out.connections_rejected += connections_rejected_.load();
  out.faults_injected += faults_injected_.load();
  out.benefit_cache_hits = system_->benefit_cache_hits();
  out.benefit_cache_misses = system_->benefit_cache_misses();
  out.benefit_cache_request_hits = system_->benefit_cache_request_hits();
  out.benefit_cache_request_misses = system_->benefit_cache_request_misses();
  out.benefit_index_pops = system_->benefit_index_pops();
  out.benefit_index_repairs = system_->benefit_index_repairs();
  out.benefit_index_rebuilds = system_->benefit_index_rebuilds();
  out.benefit_index_generation_invalidations =
      system_->benefit_index_generation_invalidations();
  if (durable_ != nullptr) {
    const core::DurableStats durable = durable_->stats();
    out.answers_deduped = durable.answers_deduped;
    out.wal_records = durable.wal_records;
  }
  // Async staleness sample (lock-free on the facade side; zeros in sync
  // mode) — taken after the lifecycle lock is released, like the facade
  // reads above.
  const core::AsyncInferenceStats async = system_->async_stats();
  if (async.enabled) {
    out.async_snapshot_epoch = async.service.snapshot_epoch;
    out.async_publishes = async.service.publishes;
    out.async_answers_pending = async.service.answers_pending;
    out.async_enqueue_waits = async.service.enqueue_waits;
    out.async_last_sweep_epoch = async.last_sweep_epoch;
    out.async_publish_gap_us = async.service.last_publish_gap_us;
  }
  return out;
}

std::vector<GatewayStats> CrowdGateway::reactor_stats() const {
  MutexLock lock(&lifecycle_mutex_);
  std::vector<GatewayStats> out;
  out.reserve(reactors_.size());
  for (const auto& reactor : reactors_) {
    GatewayStats stats;
    stats.connections_accepted = reactor->connections_accepted.load();
    stats.requests_served = reactor->requests_served.load();
    stats.requests_shed = reactor->requests_shed.load();
    stats.protocol_errors = reactor->protocol_errors.load();
    stats.faults_injected = reactor->faults_injected.load();
    stats.leases_expired = reactor->leases_expired.load();
    out.push_back(stats);
  }
  return out;
}

void CrowdGateway::WakeAcceptor() { WakePipe(acceptor_wake_pipe_[1]); }

int CrowdGateway::LeaseSweepTimeout(Reactor& reactor) {
  if (options_.lease_expiry_interval_ms == 0) return -1;
  const uint64_t now = NowMs();
  if (reactor.next_sweep_ms == 0) {
    reactor.next_sweep_ms = now + options_.lease_expiry_interval_ms;
  }
  if (now >= reactor.next_sweep_ms) {
    const size_t expired =
        system_->ExpireLeases(system_->lease_clock()).size();
    reactor.leases_expired.fetch_add(expired);
    reactor.next_sweep_ms = now + options_.lease_expiry_interval_ms;
  }
  return static_cast<int>(
      std::min<uint64_t>(reactor.next_sweep_ms - now, 1000));
}

void CrowdGateway::AcceptorLoop() {
  // One snapshot for the thread's lifetime: the reactor set is fixed
  // between Start() and Stop(), and Stop() joins this thread before it
  // mutates the set again.
  const std::vector<Reactor*> reactors = SnapshotReactors();
  for (;;) {
    if (stop_requested_.load(std::memory_order_acquire)) break;
    // Poll the listener only while some reactor has a free slot; while all
    // are full, further connections wait in the kernel backlog. A reactor
    // freeing a slot wakes this loop, and the bounded timeout backstops a
    // lost wakeup.
    bool capacity = false;
    for (const Reactor* reactor : reactors) {
      if (reactor->live.load(std::memory_order_acquire) <
          options_.max_connections) {
        capacity = true;
        break;
      }
    }
    pollfd fds[2];
    fds[0] = {acceptor_wake_pipe_[0], POLLIN, 0};
    nfds_t nfds = 1;
    if (capacity) {
      fds[1] = {listen_fd_, POLLIN, 0};
      nfds = 2;
    }
    const int ready = ::poll(fds, nfds, 250);
    if (ready < 0) {
      if (errno == EINTR) continue;
      DOCS_LOG(Error) << "gateway acceptor poll: " << ErrnoString(errno);
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) DrainPipe(acceptor_wake_pipe_[0]);
    if (capacity && (fds[1].revents & POLLIN) != 0) AcceptReady(reactors);
  }
  CloseFd(listen_fd_);
}

void CrowdGateway::AcceptReady(const std::vector<Reactor*>& reactors) {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      DOCS_LOG(Warning) << "gateway accept: " << ErrnoString(errno);
      return;
    }
    if (DOCS_FAULT_POINT(kFaultGatewayAccept)) {
      faults_injected_.fetch_add(1);
      ::close(fd);
      continue;
    }
    // Round-robin admission over reactors with a free slot, continuing from
    // the previous admission so consecutive connections spread out.
    Reactor* chosen = nullptr;
    for (size_t i = 0; i < reactors.size(); ++i) {
      Reactor& candidate = *reactors[(next_reactor_ + i) % reactors.size()];
      if (candidate.live.load(std::memory_order_acquire) <
          options_.max_connections) {
        chosen = &candidate;
        next_reactor_ = (next_reactor_ + i + 1) % reactors.size();
        break;
      }
    }
    if (chosen == nullptr) {
      // The burst outran the capacity gate: shed at the door.
      connections_rejected_.fetch_add(1);
      ::close(fd);
      continue;
    }
    const int enable = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    chosen->live.fetch_add(1, std::memory_order_acq_rel);
    chosen->connections_accepted.fetch_add(1);
    {
      MutexLock lock(&chosen->handoff_mutex);
      chosen->handoff.push_back(fd);
    }
    WakePipe(chosen->wake_pipe[1]);
  }
}

void CrowdGateway::AdoptHandoff(Reactor& reactor) {
  std::vector<int> adopted;
  {
    MutexLock lock(&reactor.handoff_mutex);
    adopted.swap(reactor.handoff);
  }
  for (int fd : adopted) {
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    reactor.connections.push_back(std::move(conn));
  }
}

void CrowdGateway::ReactorLoop(Reactor& reactor) {
  uint64_t drain_deadline_ms = 0;
  for (;;) {
    AdoptHandoff(reactor);
    const bool draining = stop_requested_.load(std::memory_order_acquire);
    if (draining) {
      if (drain_deadline_ms == 0) {
        drain_deadline_ms = NowMs() + options_.drain_timeout_ms;
      }
      // Drained (or out of budget): close everything and leave.
      bool pending = false;
      for (auto& conn : reactor.connections) {
        if (conn != nullptr && conn->out_offset < conn->outbuf.size()) {
          pending = true;
          break;
        }
      }
      if (!pending || NowMs() >= drain_deadline_ms) break;
    }

    std::vector<pollfd> fds;
    // Slot 0: wakeups (hand-off, freed capacity elsewhere, shutdown).
    fds.push_back({reactor.wake_pipe[0], POLLIN, 0});
    const size_t conn_base = fds.size();
    std::vector<size_t> conn_index;
    for (size_t i = 0; i < reactor.connections.size(); ++i) {
      Connection& conn = *reactor.connections[i];
      short events = draining ? 0 : POLLIN;
      if (conn.out_offset < conn.outbuf.size()) events |= POLLOUT;
      if (events == 0) continue;  // draining with nothing left to flush
      fds.push_back({conn.fd, events, 0});
      conn_index.push_back(i);
    }

    const int timeout = draining
                            ? static_cast<int>(std::min<uint64_t>(
                                  drain_deadline_ms - NowMs(), 50))
                            : LeaseSweepTimeout(reactor);
    const int ready = ::poll(fds.data(), fds.size(), timeout);
    if (ready < 0) {
      if (errno == EINTR) continue;
      DOCS_LOG(Error) << "gateway reactor poll: " << ErrnoString(errno);
      break;
    }

    if ((fds[0].revents & POLLIN) != 0) DrainPipe(reactor.wake_pipe[0]);

    std::vector<size_t> to_close;
    for (size_t slot = conn_base; slot < fds.size(); ++slot) {
      const size_t index = conn_index[slot - conn_base];
      Connection& conn = *reactor.connections[index];
      const short revents = fds[slot].revents;
      if (revents == 0) continue;
      bool alive = true;
      if ((revents & (POLLERR | POLLNVAL)) != 0) {
        alive = false;
      } else {
        // POLLHUP can accompany final readable data; read first.
        if (alive && (revents & (POLLIN | POLLHUP)) != 0) {
          alive = ReadReady(reactor, conn);
        }
        if (alive && (revents & POLLOUT) != 0) {
          alive = WriteReady(reactor, conn);
        }
      }
      if (!alive) to_close.push_back(index);
    }
    // Close in descending index order so earlier indices stay valid.
    std::sort(to_close.rbegin(), to_close.rend());
    for (size_t index : to_close) CloseConnection(reactor, index);
  }

  for (size_t i = reactor.connections.size(); i > 0; --i) {
    CloseConnection(reactor, i - 1);
  }
  // Admissions queued after the last adopt never became connections; close
  // them and return their capacity so the accounting balances.
  MutexLock lock(&reactor.handoff_mutex);
  for (int fd : reactor.handoff) {
    ::close(fd);
    reactor.live.fetch_sub(1, std::memory_order_acq_rel);
  }
  reactor.handoff.clear();
}

bool CrowdGateway::ReadReady(Reactor& reactor, Connection& conn) {
  char buf[4096];
  bool saw_eof = false;
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      if (DOCS_FAULT_POINT(kFaultGatewayRead)) {
        reactor.faults_injected.fetch_add(1);
        return false;
      }
      conn.decoder.Append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      saw_eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  // Serve every complete frame in this batch before flushing once: the
  // in-flight bound is evaluated against the whole pipelined burst, which
  // is what makes shedding deterministic under load.
  net::Frame frame;
  std::string error;
  for (;;) {
    const net::FrameDecoder::Result result = conn.decoder.Next(&frame, &error);
    if (result == net::FrameDecoder::Result::kNeedMore) break;
    if (result == net::FrameDecoder::Result::kError) {
      // Framing is gone; nothing further on this stream can be trusted or
      // even delimited, so the only safe response is to drop the link.
      reactor.protocol_errors.fetch_add(1);
      DOCS_LOG(Warning) << "gateway protocol error: " << error;
      return false;
    }
    ServeFrame(reactor, conn, frame);
  }
  if (!WriteReady(reactor, conn)) return false;
  return !saw_eof;
}

void CrowdGateway::ServeFrame(Reactor& reactor, Connection& conn,
                              const net::Frame& request) {
  net::Frame response;
  if (!net::IsRequestType(request.type)) {
    reactor.protocol_errors.fetch_add(1);
    response = net::MakeErrorFrame(
        request.type,
        InvalidArgumentError("response-typed frame sent to server"));
  } else if (reactor.inflight >= options_.max_inflight) {
    reactor.requests_shed.fetch_add(1);
    response = net::MakeErrorFrame(
        net::ResponseTypeFor(request.type),
        UnavailableError("gateway overloaded: in-flight limit reached"));
  } else {
    reactor.requests_served.fetch_add(1);
    response = Dispatch(reactor, request);
  }
  // Mirror the requester's wire version: a v1 peer's decoder rejects any
  // frame stamped with a newer version.
  response.version = request.version;
  const std::string encoded = net::EncodeFrame(response);
  conn.outbuf.append(encoded);
  conn.pending_responses.push_back(encoded.size());
  ++reactor.inflight;
}

net::Frame CrowdGateway::Dispatch(Reactor& reactor,
                                  const net::Frame& request) {
  const net::MessageType resp_type = net::ResponseTypeFor(request.type);
  switch (request.type) {
    case net::MessageType::kRequestTasksReq: {
      net::RequestTasksReq req;
      Status decoded = net::DecodeRequestTasksReq(request, &req);
      if (!decoded.ok()) return net::MakeErrorFrame(resp_type, decoded);
      net::RequestTasksResp resp;
      std::vector<size_t> tasks;
      if (durable_ != nullptr) {
        Status served = durable_->RequestTasks(req.worker_id, req.k, &tasks);
        if (!served.ok()) return net::MakeErrorFrame(resp_type, served);
      } else {
        tasks = system_->RequestTasks(req.worker_id, req.k);
      }
      for (size_t task : tasks) resp.tasks.push_back(task);
      return net::EncodeRequestTasksResp(resp);
    }
    case net::MessageType::kSubmitAnswerReq: {
      net::SubmitAnswerReq req;
      Status decoded = net::DecodeSubmitAnswerReq(request, &req);
      if (!decoded.ok()) return net::MakeErrorFrame(resp_type, decoded);
      Status submitted =
          durable_ != nullptr
              ? durable_->SubmitAnswer(req.worker_id,
                                       static_cast<size_t>(req.task),
                                       static_cast<size_t>(req.choice),
                                       req.request_id)
              : system_->SubmitAnswer(req.worker_id,
                                      static_cast<size_t>(req.task),
                                      static_cast<size_t>(req.choice));
      if (!submitted.ok()) return net::MakeErrorFrame(resp_type, submitted);
      return net::EncodeSubmitAnswerResp();
    }
    case net::MessageType::kExpireLeasesReq: {
      net::ExpireLeasesReq req;
      Status decoded = net::DecodeExpireLeasesReq(request, &req);
      if (!decoded.ok()) return net::MakeErrorFrame(resp_type, decoded);
      net::ExpireLeasesResp resp;
      for (const core::ExpiredLease& lease : system_->ExpireLeases(req.now)) {
        resp.expired.push_back({lease.worker, lease.task, lease.deadline});
      }
      reactor.leases_expired.fetch_add(resp.expired.size());
      return net::EncodeExpireLeasesResp(resp);
    }
    case net::MessageType::kStatsReq: {
      net::StatsResp resp;
      resp.num_tasks = system_->num_tasks();
      resp.num_answers = system_->num_answers();
      resp.outstanding_leases = system_->outstanding_leases();
      resp.lease_clock = system_->lease_clock();
      // Gateway-wide totals: every reactor's counters, plus runs already
      // folded by Stop(), summed under the lifecycle lock — reactor threads
      // may not read retired_/reactors_ bare.
      SumWireCounters(&resp.requests_served, &resp.requests_shed);
      if (durable_ != nullptr) {
        const core::DurableStats durable = durable_->stats();
        resp.answers_deduped = durable.answers_deduped;
        resp.wal_records = durable.wal_records;
      }
      // Encode at the requester's version: v1 peers take the six-counter
      // layout (the blanket version mirror above cannot re-shape a payload).
      return net::EncodeStatsResp(resp, request.version);
    }
    default:
      return net::MakeErrorFrame(
          resp_type, InternalError("unhandled request type"));
  }
}

bool CrowdGateway::WriteReady(Reactor& reactor, Connection& conn) {
  while (conn.out_offset < conn.outbuf.size()) {
    if (DOCS_FAULT_POINT(kFaultGatewayWrite)) {
      reactor.faults_injected.fetch_add(1);
      return false;
    }
    const ssize_t n =
        ::send(conn.fd, conn.outbuf.data() + conn.out_offset,
               conn.outbuf.size() - conn.out_offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    // Retire fully flushed responses from the in-flight account.
    size_t flushed = static_cast<size_t>(n);
    conn.out_offset += flushed;
    while (flushed > 0 && !conn.pending_responses.empty()) {
      size_t& front = conn.pending_responses.front();
      const size_t take = std::min(front, flushed);
      front -= take;
      flushed -= take;
      if (front == 0) {
        conn.pending_responses.pop_front();
        --reactor.inflight;
      }
    }
  }
  if (conn.out_offset == conn.outbuf.size()) {
    conn.outbuf.clear();
    conn.out_offset = 0;
  } else if (conn.out_offset > (1u << 16)) {
    conn.outbuf.erase(0, conn.out_offset);
    conn.out_offset = 0;
  }
  return true;
}

void CrowdGateway::CloseConnection(Reactor& reactor, size_t index) {
  Connection& conn = *reactor.connections[index];
  reactor.inflight -= conn.pending_responses.size();
  CloseFd(conn.fd);
  reactor.connections.erase(reactor.connections.begin() +
                            static_cast<std::ptrdiff_t>(index));
  reactor.live.fetch_sub(1, std::memory_order_acq_rel);
  // A freed slot may unblock the (possibly idle) acceptor.
  WakeAcceptor();
}

}  // namespace docs::server
