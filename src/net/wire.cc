#include "net/wire.h"

#include <algorithm>

namespace docs::net {
namespace {

// Little-endian append/read helpers. Byte-shifting (rather than memcpy of
// host integers) keeps the encoding identical on any host order.
void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(std::string* out, uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

/// Bounds-checked cursor over a frame payload. Every Read* returns false
/// once the payload ran short; the caller converts that to one DataLoss.
class Reader {
 public:
  explicit Reader(const std::string& payload) : data_(payload) {}

  bool ReadU16(uint16_t* v) {
    if (!Ensure(2)) return false;
    *v = static_cast<uint16_t>(Byte(0) | (Byte(1) << 8));
    pos_ += 2;
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (!Ensure(4)) return false;
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) out |= static_cast<uint32_t>(Byte(i)) << (8 * i);
    pos_ += 4;
    *v = out;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (!Ensure(8)) return false;
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) out |= static_cast<uint64_t>(Byte(i)) << (8 * i);
    pos_ += 8;
    *v = out;
    return true;
  }

  bool ReadBytes(size_t n, std::string* v) {
    if (!Ensure(n)) return false;
    v->assign(data_, pos_, n);
    pos_ += n;
    return true;
  }

  bool exhausted() const { return pos_ == data_.size(); }

 private:
  bool Ensure(size_t n) const { return data_.size() - pos_ >= n; }
  uint8_t Byte(size_t offset) const {
    return static_cast<uint8_t>(data_[pos_ + offset]);
  }

  const std::string& data_;
  size_t pos_ = 0;
};

Status Truncated(const char* what) {
  return DataLossError(std::string("truncated ") + what + " payload");
}

/// Shared decode preamble: the frame must carry the expected type, and a
/// non-OK frame carries a message, not a body.
Status CheckBody(const Frame& frame, MessageType expected, const char* what) {
  if (frame.type != expected) {
    return InvalidArgumentError(std::string("frame is not a ") + what);
  }
  if (frame.status != StatusCode::kOk) {
    return InvalidArgumentError(std::string(what) +
                                " decode on a non-OK frame; use FrameStatus");
  }
  return OkStatus();
}

bool AppendWorkerId(std::string* payload, const std::string& worker_id) {
  if (worker_id.size() > kMaxWorkerIdSize) return false;
  PutU16(payload, static_cast<uint16_t>(worker_id.size()));
  payload->append(worker_id);
  return true;
}

Status ReadWorkerId(Reader* reader, std::string* worker_id, const char* what) {
  uint16_t len = 0;
  if (!reader->ReadU16(&len)) return Truncated(what);
  if (len > kMaxWorkerIdSize) {
    return InvalidArgumentError("worker id exceeds kMaxWorkerIdSize");
  }
  if (!reader->ReadBytes(len, worker_id)) return Truncated(what);
  return OkStatus();
}

Status CheckExhausted(const Reader& reader, const char* what) {
  if (!reader.exhausted()) {
    return InvalidArgumentError(std::string("trailing bytes after ") + what +
                                " payload");
  }
  return OkStatus();
}

}  // namespace

bool IsKnownMessageType(uint8_t raw) {
  return raw >= static_cast<uint8_t>(MessageType::kRequestTasksReq) &&
         raw <= static_cast<uint8_t>(MessageType::kStatsResp);
}

bool IsRequestType(MessageType type) {
  return (static_cast<uint8_t>(type) & 1u) == 1u;
}

MessageType ResponseTypeFor(MessageType request) {
  return static_cast<MessageType>(static_cast<uint8_t>(request) + 1);
}

uint8_t StatusCodeToWire(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
      return 1;
    case StatusCode::kNotFound:
      return 2;
    case StatusCode::kAlreadyExists:
      return 3;
    case StatusCode::kFailedPrecondition:
      return 4;
    case StatusCode::kOutOfRange:
      return 5;
    case StatusCode::kInternal:
      return 6;
    case StatusCode::kIoError:
      return 7;
    case StatusCode::kDataLoss:
      return 8;
    case StatusCode::kUnavailable:
      return 9;
  }
  return 6;  // kInternal
}

StatusCode WireToStatusCode(uint8_t wire) {
  switch (wire) {
    case 0:
      return StatusCode::kOk;
    case 1:
      return StatusCode::kInvalidArgument;
    case 2:
      return StatusCode::kNotFound;
    case 3:
      return StatusCode::kAlreadyExists;
    case 4:
      return StatusCode::kFailedPrecondition;
    case 5:
      return StatusCode::kOutOfRange;
    case 6:
      return StatusCode::kInternal;
    case 7:
      return StatusCode::kIoError;
    case 8:
      return StatusCode::kDataLoss;
    case 9:
      return StatusCode::kUnavailable;
    default:
      return StatusCode::kInternal;
  }
}

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  out.reserve(kFrameHeaderSize + frame.payload.size());
  PutU16(&out, kWireMagic);
  out.push_back(static_cast<char>(frame.version));
  out.push_back(static_cast<char>(frame.type));
  out.push_back(static_cast<char>(StatusCodeToWire(frame.status)));
  out.append(3, '\0');  // reserved
  PutU32(&out, static_cast<uint32_t>(frame.payload.size()));
  out.append(frame.payload);
  return out;
}

Frame MakeErrorFrame(MessageType type, const Status& status) {
  Frame frame;
  frame.type = type;
  frame.status = status.ok() ? StatusCode::kInternal : status.code();
  frame.payload = status.message();
  return frame;
}

Status FrameStatus(const Frame& frame) {
  if (frame.status == StatusCode::kOk) return OkStatus();
  return Status(frame.status, frame.payload);
}

void FrameDecoder::Append(const void* data, size_t size) {
  buffer_.append(static_cast<const char*>(data), size);
}

FrameDecoder::Result FrameDecoder::Next(Frame* frame, std::string* error) {
  auto fail = [&](const std::string& message) {
    broken_ = true;
    error_ = message;
    if (error != nullptr) *error = error_;
    return Result::kError;
  };
  if (broken_) {
    if (error != nullptr) *error = error_;
    return Result::kError;
  }
  if (buffered() < kFrameHeaderSize) {
    // Reclaim consumed prefix while idle; amortized O(1) per byte.
    if (consumed_ > 0) {
      buffer_.erase(0, consumed_);
      consumed_ = 0;
    }
    return Result::kNeedMore;
  }
  const auto* head =
      reinterpret_cast<const uint8_t*>(buffer_.data() + consumed_);
  const uint16_t magic = static_cast<uint16_t>(head[0] | (head[1] << 8));
  if (magic != kWireMagic) return fail("bad magic");
  if (head[2] < kMinWireVersion || head[2] > kWireVersion) {
    return fail("unsupported protocol version " + std::to_string(head[2]));
  }
  if (!IsKnownMessageType(head[3])) {
    return fail("unknown message type " + std::to_string(head[3]));
  }
  if (head[5] != 0 || head[6] != 0 || head[7] != 0) {
    return fail("nonzero reserved header bytes");
  }
  uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<uint32_t>(head[8 + i]) << (8 * i);
  }
  if (payload_len > kMaxPayloadSize) {
    return fail("payload length " + std::to_string(payload_len) +
                " exceeds kMaxPayloadSize");
  }
  if (buffered() < kFrameHeaderSize + payload_len) return Result::kNeedMore;
  frame->type = static_cast<MessageType>(head[3]);
  frame->version = head[2];
  frame->status = WireToStatusCode(head[4]);
  frame->payload.assign(buffer_, consumed_ + kFrameHeaderSize, payload_len);
  consumed_ += kFrameHeaderSize + payload_len;
  if (consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  }
  return Result::kFrame;
}

Frame EncodeRequestTasksReq(const RequestTasksReq& msg) {
  Frame frame;
  frame.type = MessageType::kRequestTasksReq;
  if (!AppendWorkerId(&frame.payload, msg.worker_id)) {
    // Over-long ids are caught again server-side; truncating here would
    // silently answer for a different worker, so encode the length the
    // decoder will reject.
    frame.payload.clear();
    PutU16(&frame.payload, static_cast<uint16_t>(kMaxWorkerIdSize + 1));
  }
  PutU32(&frame.payload, msg.k);
  return frame;
}

Status DecodeRequestTasksReq(const Frame& frame, RequestTasksReq* msg) {
  Status check = CheckBody(frame, MessageType::kRequestTasksReq,
                           "RequestTasksReq");
  if (!check.ok()) return check;
  Reader reader(frame.payload);
  Status id = ReadWorkerId(&reader, &msg->worker_id, "RequestTasksReq");
  if (!id.ok()) return id;
  if (!reader.ReadU32(&msg->k)) return Truncated("RequestTasksReq");
  return CheckExhausted(reader, "RequestTasksReq");
}

Frame EncodeRequestTasksResp(const RequestTasksResp& msg) {
  Frame frame;
  frame.type = MessageType::kRequestTasksResp;
  PutU32(&frame.payload, static_cast<uint32_t>(msg.tasks.size()));
  for (uint64_t task : msg.tasks) PutU64(&frame.payload, task);
  return frame;
}

Status DecodeRequestTasksResp(const Frame& frame, RequestTasksResp* msg) {
  Status check = CheckBody(frame, MessageType::kRequestTasksResp,
                           "RequestTasksResp");
  if (!check.ok()) return check;
  Reader reader(frame.payload);
  uint32_t count = 0;
  if (!reader.ReadU32(&count)) return Truncated("RequestTasksResp");
  msg->tasks.clear();
  msg->tasks.reserve(std::min<size_t>(count, kMaxPayloadSize / 8));
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t task = 0;
    if (!reader.ReadU64(&task)) return Truncated("RequestTasksResp");
    msg->tasks.push_back(task);
  }
  return CheckExhausted(reader, "RequestTasksResp");
}

Frame EncodeSubmitAnswerReq(const SubmitAnswerReq& msg) {
  Frame frame;
  frame.type = MessageType::kSubmitAnswerReq;
  if (!AppendWorkerId(&frame.payload, msg.worker_id)) {
    frame.payload.clear();
    PutU16(&frame.payload, static_cast<uint16_t>(kMaxWorkerIdSize + 1));
  }
  PutU64(&frame.payload, msg.task);
  PutU32(&frame.payload, msg.choice);
  PutU64(&frame.payload, msg.request_id);
  return frame;
}

Status DecodeSubmitAnswerReq(const Frame& frame, SubmitAnswerReq* msg) {
  Status check = CheckBody(frame, MessageType::kSubmitAnswerReq,
                           "SubmitAnswerReq");
  if (!check.ok()) return check;
  Reader reader(frame.payload);
  Status id = ReadWorkerId(&reader, &msg->worker_id, "SubmitAnswerReq");
  if (!id.ok()) return id;
  if (!reader.ReadU64(&msg->task)) return Truncated("SubmitAnswerReq");
  if (!reader.ReadU32(&msg->choice)) return Truncated("SubmitAnswerReq");
  // v1 peers predate request ids: their submissions decode as id 0 (no
  // dedup) instead of being rejected, so an old client keeps working.
  msg->request_id = 0;
  if (frame.version >= 2 && !reader.ReadU64(&msg->request_id)) {
    return Truncated("SubmitAnswerReq");
  }
  return CheckExhausted(reader, "SubmitAnswerReq");
}

Frame EncodeSubmitAnswerResp() {
  Frame frame;
  frame.type = MessageType::kSubmitAnswerResp;
  return frame;
}

Frame EncodeExpireLeasesReq(const ExpireLeasesReq& msg) {
  Frame frame;
  frame.type = MessageType::kExpireLeasesReq;
  PutU64(&frame.payload, msg.now);
  return frame;
}

Status DecodeExpireLeasesReq(const Frame& frame, ExpireLeasesReq* msg) {
  Status check = CheckBody(frame, MessageType::kExpireLeasesReq,
                           "ExpireLeasesReq");
  if (!check.ok()) return check;
  Reader reader(frame.payload);
  if (!reader.ReadU64(&msg->now)) return Truncated("ExpireLeasesReq");
  return CheckExhausted(reader, "ExpireLeasesReq");
}

Frame EncodeExpireLeasesResp(const ExpireLeasesResp& msg) {
  Frame frame;
  frame.type = MessageType::kExpireLeasesResp;
  PutU32(&frame.payload, static_cast<uint32_t>(msg.expired.size()));
  for (const WireExpiredLease& lease : msg.expired) {
    PutU64(&frame.payload, lease.worker);
    PutU64(&frame.payload, lease.task);
    PutU64(&frame.payload, lease.deadline);
  }
  return frame;
}

Status DecodeExpireLeasesResp(const Frame& frame, ExpireLeasesResp* msg) {
  Status check = CheckBody(frame, MessageType::kExpireLeasesResp,
                           "ExpireLeasesResp");
  if (!check.ok()) return check;
  Reader reader(frame.payload);
  uint32_t count = 0;
  if (!reader.ReadU32(&count)) return Truncated("ExpireLeasesResp");
  msg->expired.clear();
  msg->expired.reserve(std::min<size_t>(count, kMaxPayloadSize / 24));
  for (uint32_t i = 0; i < count; ++i) {
    WireExpiredLease lease;
    if (!reader.ReadU64(&lease.worker) || !reader.ReadU64(&lease.task) ||
        !reader.ReadU64(&lease.deadline)) {
      return Truncated("ExpireLeasesResp");
    }
    msg->expired.push_back(lease);
  }
  return CheckExhausted(reader, "ExpireLeasesResp");
}

Frame EncodeStatsReq() {
  Frame frame;
  frame.type = MessageType::kStatsReq;
  return frame;
}

Frame EncodeStatsResp(const StatsResp& msg, uint8_t version) {
  Frame frame;
  frame.type = MessageType::kStatsResp;
  frame.version = version;
  PutU64(&frame.payload, msg.num_tasks);
  PutU64(&frame.payload, msg.num_answers);
  PutU64(&frame.payload, msg.outstanding_leases);
  PutU64(&frame.payload, msg.lease_clock);
  PutU64(&frame.payload, msg.requests_served);
  PutU64(&frame.payload, msg.requests_shed);
  if (version >= 2) {
    PutU64(&frame.payload, msg.answers_deduped);
    PutU64(&frame.payload, msg.wal_records);
  }
  return frame;
}

Status DecodeStatsResp(const Frame& frame, StatsResp* msg) {
  Status check = CheckBody(frame, MessageType::kStatsResp, "StatsResp");
  if (!check.ok()) return check;
  Reader reader(frame.payload);
  if (!reader.ReadU64(&msg->num_tasks) || !reader.ReadU64(&msg->num_answers) ||
      !reader.ReadU64(&msg->outstanding_leases) ||
      !reader.ReadU64(&msg->lease_clock) ||
      !reader.ReadU64(&msg->requests_served) ||
      !reader.ReadU64(&msg->requests_shed)) {
    return Truncated("StatsResp");
  }
  msg->answers_deduped = 0;
  msg->wal_records = 0;
  if (frame.version >= 2 &&
      (!reader.ReadU64(&msg->answers_deduped) ||
       !reader.ReadU64(&msg->wal_records))) {
    return Truncated("StatsResp");
  }
  return CheckExhausted(reader, "StatsResp");
}

}  // namespace docs::net
