#ifndef DOCS_NET_WIRE_H_
#define DOCS_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace docs::net {

/// Length-prefixed binary wire protocol for the crowd gateway (DESIGN.md
/// §10). Every message is one frame:
///
///   offset  size  field
///   0       2     magic 0xD0C5, little-endian
///   2       1     protocol version (kWireVersion)
///   3       1     message type (MessageType)
///   4       1     status code (StatusCodeToWire; 0/kOk in requests)
///   5       3     reserved, must be zero
///   8       4     payload length, little-endian
///   12      n     payload
///
/// The header is fixed-width (no varints) so a reader always knows it needs
/// exactly kFrameHeaderSize bytes before it can size the payload. All
/// multi-byte integers, here and in payloads, are little-endian regardless
/// of host order. On a non-OK status the payload is the UTF-8 error message
/// instead of the typed body.
///
/// Version history (a decoder accepts kMinWireVersion..kWireVersion and
/// surfaces the sender's version on the Frame so body decoders can apply the
/// older layout):
///   v1 — PR 4 baseline.
///   v2 — SubmitAnswerReq carries a trailing client-assigned request_id
///        (exactly-once dedup key); StatsResp carries trailing
///        answers_deduped + wal_records durability counters. A v1 peer's
///        frames decode with request_id = 0 (no dedup) and zeroed
///        durability counters, and the server mirrors the request's version
///        onto its response (encoding versioned bodies at that version), so
///        a v1 client also *receives* frames its decoder accepts.
inline constexpr uint16_t kWireMagic = 0xD0C5;
inline constexpr uint8_t kWireVersion = 2;
inline constexpr uint8_t kMinWireVersion = 1;
inline constexpr size_t kFrameHeaderSize = 12;
/// Upper bound a peer may claim for one payload; a larger length is a
/// protocol error, not an allocation request — garbage bytes must not make
/// the server reserve gigabytes.
inline constexpr uint32_t kMaxPayloadSize = 1u << 20;
/// Upper bound on an external worker-id string carried in a request.
inline constexpr size_t kMaxWorkerIdSize = 1024;

/// One request/response pair per facade entry point. Responses reuse the
/// request's shape with the low bit flipped, so ResponseTypeFor is pure
/// arithmetic and new pairs cannot drift.
enum class MessageType : uint8_t {
  kRequestTasksReq = 1,
  kRequestTasksResp = 2,
  kSubmitAnswerReq = 3,
  kSubmitAnswerResp = 4,
  kExpireLeasesReq = 5,
  kExpireLeasesResp = 6,
  kStatsReq = 7,
  kStatsResp = 8,
};

bool IsKnownMessageType(uint8_t raw);
bool IsRequestType(MessageType type);
MessageType ResponseTypeFor(MessageType request);

/// StatusCode <-> wire byte. The wire values are frozen independently of the
/// enum's declaration order (reordering StatusCode must not change the
/// protocol); unknown wire bytes decode as kInternal.
uint8_t StatusCodeToWire(StatusCode code);
StatusCode WireToStatusCode(uint8_t wire);

struct Frame {
  MessageType type = MessageType::kStatsReq;
  StatusCode status = StatusCode::kOk;
  /// Protocol version this frame was (or will be) encoded under. Decoders of
  /// versioned bodies consult it: a v1 SubmitAnswerReq has no request_id.
  uint8_t version = kWireVersion;
  std::string payload;
};

/// Renders a frame into wire bytes (header + payload).
std::string EncodeFrame(const Frame& frame);

/// A non-OK response of `type` carrying `status` and its message.
Frame MakeErrorFrame(MessageType type, const Status& status);
/// Reconstructs the Status a response frame carries (OkStatus for OK frames).
Status FrameStatus(const Frame& frame);

/// Incremental frame parser for a TCP byte stream. Feed whatever bytes
/// arrive; Next() yields complete frames and tolerates arbitrarily torn
/// delivery (a frame split at any byte boundary, several frames coalesced
/// into one read). A protocol violation (bad magic/version/type, oversized
/// payload) is sticky: the stream cannot be resynchronized, so every later
/// Next() keeps returning kError.
class FrameDecoder {
 public:
  enum class Result { kFrame, kNeedMore, kError };

  void Append(const void* data, size_t size);

  /// Extracts the next complete frame into `*frame`. On kError, `*error`
  /// (when non-null) describes the violation.
  Result Next(Frame* frame, std::string* error = nullptr);

  /// Bytes buffered but not yet consumed by Next().
  size_t buffered() const { return buffer_.size() - consumed_; }
  bool broken() const { return broken_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;
  bool broken_ = false;
  std::string error_;
};

// --- Typed message bodies ---------------------------------------------------
// Each body has a pure Encode (to a full Frame) and Decode (from a Frame's
// payload, validating length and bounds). Decoders never trust peer-supplied
// lengths beyond the payload they were handed.

struct RequestTasksReq {
  std::string worker_id;
  uint32_t k = 0;
};

struct RequestTasksResp {
  std::vector<uint64_t> tasks;
};

struct SubmitAnswerReq {
  std::string worker_id;
  uint64_t task = 0;
  uint32_t choice = 0;
  /// Client-assigned id for exactly-once submission (v2): a retry resends
  /// the same id and the server acknowledges without double-applying. 0 (and
  /// every v1 frame) means "no id" — no dedup protection.
  uint64_t request_id = 0;
};

struct ExpireLeasesReq {
  uint64_t now = 0;
};

struct WireExpiredLease {
  uint64_t worker = 0;
  uint64_t task = 0;
  uint64_t deadline = 0;
};

struct ExpireLeasesResp {
  std::vector<WireExpiredLease> expired;
};

struct StatsResp {
  uint64_t num_tasks = 0;
  uint64_t num_answers = 0;
  uint64_t outstanding_leases = 0;
  uint64_t lease_clock = 0;
  uint64_t requests_served = 0;
  uint64_t requests_shed = 0;
  /// v2 durability counters; 0 when the gateway serves without a durable
  /// layer (and when decoding a v1 frame).
  uint64_t answers_deduped = 0;
  uint64_t wal_records = 0;
};

Frame EncodeRequestTasksReq(const RequestTasksReq& msg);
[[nodiscard]] Status DecodeRequestTasksReq(const Frame& frame,
                                           RequestTasksReq* msg);

Frame EncodeRequestTasksResp(const RequestTasksResp& msg);
[[nodiscard]] Status DecodeRequestTasksResp(const Frame& frame,
                                            RequestTasksResp* msg);

Frame EncodeSubmitAnswerReq(const SubmitAnswerReq& msg);
[[nodiscard]] Status DecodeSubmitAnswerReq(const Frame& frame,
                                           SubmitAnswerReq* msg);

/// SubmitAnswerResp has no body: the header status byte is the result.
Frame EncodeSubmitAnswerResp();

Frame EncodeExpireLeasesReq(const ExpireLeasesReq& msg);
[[nodiscard]] Status DecodeExpireLeasesReq(const Frame& frame,
                                           ExpireLeasesReq* msg);

Frame EncodeExpireLeasesResp(const ExpireLeasesResp& msg);
[[nodiscard]] Status DecodeExpireLeasesResp(const Frame& frame,
                                            ExpireLeasesResp* msg);

Frame EncodeStatsReq();

/// `version` selects the payload layout (and is stamped on the frame): a
/// server answering a v1 peer must encode at the peer's version or the
/// peer's decoder rejects the frame outright. Versions below 2 omit the
/// trailing durability counters.
Frame EncodeStatsResp(const StatsResp& msg, uint8_t version = kWireVersion);
[[nodiscard]] Status DecodeStatsResp(const Frame& frame, StatsResp* msg);

}  // namespace docs::net

#endif  // DOCS_NET_WIRE_H_
