#include "baselines/faitcrowd.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_utils.h"

namespace docs::baselines {

FaitCrowd::FaitCrowd(FaitCrowdOptions options) : options_(options) {}

FaitCrowdResult FaitCrowd::Run(const std::vector<size_t>& num_choices,
                               const std::vector<size_t>& task_topics,
                               size_t num_topics, size_t num_workers,
                               const std::vector<core::Answer>& answers) const {
  const size_t n = num_choices.size();
  DOCS_CHECK_EQ(task_topics.size(), n) << "one hard topic per task";
  DOCS_CHECK_GT(num_topics, size_t{0});
  for (size_t topic : task_topics) {
    DOCS_CHECK_LT(topic, num_topics) << "task topic out of range";
  }
  FaitCrowdResult result;
  result.task_truth.resize(n);
  result.inferred_choice.assign(n, 0);
  result.worker_topic_quality.assign(
      num_workers, std::vector<double>(num_topics, options_.initial_quality));

  std::vector<std::vector<core::Answer>> answers_of_task(n);
  for (const auto& answer : answers) {
    DOCS_CHECK_LT(answer.task, n) << "answer names an unknown task";
    DOCS_CHECK_LT(answer.worker, num_workers)
        << "answer names an unknown worker";
    DOCS_CHECK_LT(answer.choice, num_choices[answer.task])
        << "answer choice out of range for its task";
    answers_of_task[answer.task].push_back(answer);
  }

  result.final_topics = task_topics;
  std::vector<size_t>& topics = result.final_topics;

  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    // E-step: truth posterior per task using the quality of its hard topic.
    for (size_t i = 0; i < n; ++i) {
      const size_t l = num_choices[i];
      const size_t topic = topics[i];
      std::vector<double> log_s(l, 0.0);
      for (const auto& answer : answers_of_task[i]) {
        const double q = std::min(
            1.0 - options_.quality_clamp,
            std::max(options_.quality_clamp,
                     result.worker_topic_quality[answer.worker][topic]));
        const double log_correct = std::log(q);
        const double log_wrong =
            std::log((1.0 - q) / static_cast<double>(l > 1 ? l - 1 : 1));
        for (size_t j = 0; j < l; ++j) {
          log_s[j] += (answer.choice == j) ? log_correct : log_wrong;
        }
      }
      const double lse = LogSumExp(log_s);
      result.task_truth[i].resize(l);
      for (size_t j = 0; j < l; ++j) {
        result.task_truth[i][j] = std::exp(log_s[j] - lse);
      }
    }

    // M-step: per-topic quality, pooling each worker's answers by topic.
    std::vector<std::vector<double>> numer(
        num_workers, std::vector<double>(num_topics, 0.0));
    std::vector<std::vector<double>> denom(
        num_workers, std::vector<double>(num_topics, 0.0));
    for (size_t i = 0; i < n; ++i) {
      const size_t topic = topics[i];
      for (const auto& answer : answers_of_task[i]) {
        numer[answer.worker][topic] += result.task_truth[i][answer.choice];
        denom[answer.worker][topic] += 1.0;
      }
    }
    double change = 0.0;
    for (size_t w = 0; w < num_workers; ++w) {
      for (size_t k = 0; k < num_topics; ++k) {
        const double updated =
            (numer[w][k] + options_.smoothing * options_.initial_quality) /
            (denom[w][k] + options_.smoothing);
        change += std::fabs(updated - result.worker_topic_quality[w][k]);
        result.worker_topic_quality[w][k] = updated;
      }
    }
    // Joint topic re-estimation: move each task to the topic that best
    // explains its answers, anchored to the initial assignment. This is the
    // coupling that lets bad quality estimates corrupt topics and vice
    // versa.
    if (options_.joint_topic_estimation) {
      const double anchor = std::log(options_.topic_prior_strength);
      const double other = std::log(
          (1.0 - options_.topic_prior_strength) /
          std::max<size_t>(1, num_topics - 1));
      for (size_t i = 0; i < n; ++i) {
        const size_t l = num_choices[i];
        double best_score = -1e300;
        size_t best_topic = topics[i];
        for (size_t k = 0; k < num_topics; ++k) {
          double score = (k == task_topics[i]) ? anchor : other;
          for (const auto& answer : answers_of_task[i]) {
            const double q = std::min(
                1.0 - options_.quality_clamp,
                std::max(options_.quality_clamp,
                         result.worker_topic_quality[answer.worker][k]));
            // Expected log-likelihood of the answer under topic k.
            const double s_correct = result.task_truth[i][answer.choice];
            score += s_correct * std::log(q) +
                     (1.0 - s_correct) *
                         std::log((1.0 - q) /
                                  static_cast<double>(l > 1 ? l - 1 : 1));
          }
          if (score > best_score) {
            best_score = score;
            best_topic = k;
          }
        }
        topics[i] = best_topic;
      }
    }

    result.iterations_run = iter + 1;
    if (iter > 0 &&
        change / std::max<size_t>(1, num_workers * num_topics) <
            options_.tolerance) {
      break;
    }
  }

  for (size_t i = 0; i < n; ++i) {
    if (!result.task_truth[i].empty()) {
      result.inferred_choice[i] = ArgMax(result.task_truth[i]);
    }
  }
  return result;
}

}  // namespace docs::baselines
