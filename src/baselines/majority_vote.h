#ifndef DOCS_BASELINES_MAJORITY_VOTE_H_
#define DOCS_BASELINES_MAJORITY_VOTE_H_

#include <vector>

#include "core/types.h"

namespace docs::baselines {

/// Per-task answer histograms (num_tasks rows; row i has l_ti counts).
std::vector<std::vector<size_t>> AnswerHistograms(
    const std::vector<size_t>& num_choices,
    const std::vector<core::Answer>& answers);

/// Majority Vote: each task's truth is the most frequent answer (lowest
/// index wins ties; tasks with no answers get choice 0). The weakest
/// baseline of Fig. 5 — it treats every worker as equally reliable.
std::vector<size_t> MajorityVote(const std::vector<size_t>& num_choices,
                                 const std::vector<core::Answer>& answers);

}  // namespace docs::baselines

#endif  // DOCS_BASELINES_MAJORITY_VOTE_H_
