#ifndef DOCS_BASELINES_ASSIGNERS_H_
#define DOCS_BASELINES_ASSIGNERS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/dawid_skene.h"
#include "baselines/icrowd.h"
#include "common/rng.h"
#include "core/assignment_policy.h"
#include "core/types.h"

namespace docs::baselines {

/// Shared bookkeeping for the online-assignment baselines: per-task answer
/// histograms and per-worker answered bitmaps (a worker answers a task at
/// most once).
class BaseAssigner : public core::AssignmentPolicy {
 public:
  explicit BaseAssigner(std::vector<size_t> num_choices);

  void OnAnswer(size_t worker, size_t task, size_t choice) override;

  size_t total_answers() const { return answers_.size(); }

 protected:
  bool HasAnswered(size_t worker, size_t task) const;
  /// Tasks the worker may still receive (optionally capped at
  /// `max_answers_per_task` total answers; 0 = no cap).
  std::vector<size_t> EligibleTasks(size_t worker,
                                    size_t max_answers_per_task = 0) const;

  std::vector<size_t> num_choices_;
  std::vector<std::vector<size_t>> histograms_;
  std::vector<size_t> answer_count_;
  std::vector<core::Answer> answers_;
  std::vector<std::vector<uint8_t>> answered_;  // [worker][task]
};

/// "Baseline" of Section 6.4: random assignment, Majority Vote truth.
class RandomAssigner : public BaseAssigner {
 public:
  RandomAssigner(std::vector<size_t> num_choices, uint64_t seed);

  std::string name() const override { return "Baseline"; }
  std::vector<size_t> SelectTasks(size_t worker, size_t k) override;
  std::vector<size_t> InferredChoices() override;

 private:
  Rng rng_;
};

/// AskIt! [Boim et al., ICDE'12]: assigns the k most *uncertain* tasks
/// (entropy of the current answer histogram), Majority Vote truth. Considers
/// the tasks' state but not the worker's quality.
class AskItAssigner : public BaseAssigner {
 public:
  explicit AskItAssigner(std::vector<size_t> num_choices);

  std::string name() const override { return "AskIt!"; }
  std::vector<size_t> SelectTasks(size_t worker, size_t k) override;
  std::vector<size_t> InferredChoices() override;
};

/// iCrowd's assigner [Fan et al., SIGMOD'15]: picks the tasks on which the
/// coming worker's estimated (similarity-diffused) accuracy is highest,
/// under the constraint that every task ends with the same number of
/// answers; weighted-majority-vote truth via ICrowdInference.
class ICrowdAssigner : public BaseAssigner {
 public:
  ICrowdAssigner(std::vector<size_t> num_choices,
                 std::vector<std::vector<double>> task_topics,
                 size_t answers_per_task, ICrowdOptions options = {});

  std::string name() const override { return "IC"; }
  std::vector<size_t> SelectTasks(size_t worker, size_t k) override;
  std::vector<size_t> InferredChoices() override;
  void OnAnswer(size_t worker, size_t task, size_t choice) override;

 private:
  void RefreshTruth();

  std::vector<std::vector<double>> task_topics_;
  size_t answers_per_task_;
  ICrowdOptions options_;
  std::vector<size_t> current_truth_;
  size_t answers_since_refresh_ = 0;
};

/// QASCA [Zheng et al., SIGMOD'15]: maintains a Dawid-Skene model and
/// assigns the k tasks with the highest expected improvement of the
/// Accuracy measure if answered by the coming worker.
class QascaAssigner : public BaseAssigner {
 public:
  QascaAssigner(std::vector<size_t> num_choices, size_t refresh_every = 100,
                DawidSkeneOptions options = {});

  std::string name() const override { return "QASCA"; }
  std::vector<size_t> SelectTasks(size_t worker, size_t k) override;
  std::vector<size_t> InferredChoices() override;
  void OnAnswer(size_t worker, size_t task, size_t choice) override;

 private:
  void RefreshModel();
  /// Expected gain in max_j s_j if `worker` answers `task` (using the
  /// worker's confusion matrix, default for unseen workers).
  double ExpectedAccuracyGain(size_t worker, size_t task) const;

  size_t refresh_every_;
  DawidSkeneOptions options_;
  DawidSkeneResult model_;
  Matrix default_confusion_;  // prior for workers the model has not seen
  size_t answers_since_refresh_ = 0;
  size_t label_space_ = 2;
};

}  // namespace docs::baselines

#endif  // DOCS_BASELINES_ASSIGNERS_H_
