#include "baselines/zencrowd.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_utils.h"

namespace docs::baselines {

ZenCrowd::ZenCrowd(ZenCrowdOptions options) : options_(options) {}

ZenCrowdResult ZenCrowd::Run(const std::vector<size_t>& num_choices,
                             size_t num_workers,
                             const std::vector<core::Answer>& answers,
                             const std::vector<double>* initial_quality) const {
  const size_t n = num_choices.size();
  ZenCrowdResult result;
  result.task_truth.resize(n);
  result.inferred_choice.assign(n, 0);
  result.worker_quality.assign(num_workers, options_.initial_quality);
  if (initial_quality != nullptr) {
    for (size_t w = 0; w < std::min(num_workers, initial_quality->size()); ++w) {
      result.worker_quality[w] = (*initial_quality)[w];
    }
  }

  std::vector<std::vector<core::Answer>> answers_of_task(n);
  for (const auto& answer : answers) {
    DOCS_CHECK_LT(answer.task, n) << "answer names an unknown task";
    DOCS_CHECK_LT(answer.worker, num_workers)
        << "answer names an unknown worker";
    DOCS_CHECK_LT(answer.choice, num_choices[answer.task])
        << "answer choice out of range for its task";
    answers_of_task[answer.task].push_back(answer);
  }
  std::vector<size_t> answers_of_worker(num_workers, 0);
  for (const auto& answer : answers) ++answers_of_worker[answer.worker];

  std::vector<std::vector<double>> prev_truth;
  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    // E-step: truth posteriors from reliabilities (log space).
    for (size_t i = 0; i < n; ++i) {
      const size_t l = num_choices[i];
      std::vector<double> log_s(l, 0.0);
      for (const auto& answer : answers_of_task[i]) {
        const double p = std::min(1.0 - options_.quality_clamp,
                                  std::max(options_.quality_clamp,
                                           result.worker_quality[answer.worker]));
        const double log_correct = std::log(p);
        const double log_wrong =
            std::log((1.0 - p) / static_cast<double>(l > 1 ? l - 1 : 1));
        for (size_t j = 0; j < l; ++j) {
          log_s[j] += (answer.choice == j) ? log_correct : log_wrong;
        }
      }
      const double lse = LogSumExp(log_s);
      result.task_truth[i].resize(l);
      for (size_t j = 0; j < l; ++j) {
        result.task_truth[i][j] = std::exp(log_s[j] - lse);
      }
    }

    // M-step: reliability = expected fraction of correct answers.
    std::vector<double> correct(num_workers, 0.0);
    for (size_t i = 0; i < n; ++i) {
      for (const auto& answer : answers_of_task[i]) {
        correct[answer.worker] += result.task_truth[i][answer.choice];
      }
    }
    double change = 0.0;
    for (size_t w = 0; w < num_workers; ++w) {
      const double updated =
          answers_of_worker[w] > 0
              ? correct[w] / static_cast<double>(answers_of_worker[w])
              : result.worker_quality[w];
      change += std::fabs(updated - result.worker_quality[w]);
      result.worker_quality[w] = updated;
    }
    result.iterations_run = iter + 1;
    if (iter > 0 && change / std::max<size_t>(1, num_workers) <
                        options_.tolerance) {
      break;
    }
    prev_truth = result.task_truth;
  }

  for (size_t i = 0; i < n; ++i) {
    if (!result.task_truth[i].empty()) {
      result.inferred_choice[i] = ArgMax(result.task_truth[i]);
    }
  }
  return result;
}

}  // namespace docs::baselines
