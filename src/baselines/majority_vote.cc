#include "baselines/majority_vote.h"

#include <algorithm>

#include "common/check.h"

namespace docs::baselines {

std::vector<std::vector<size_t>> AnswerHistograms(
    const std::vector<size_t>& num_choices,
    const std::vector<core::Answer>& answers) {
  std::vector<std::vector<size_t>> histograms(num_choices.size());
  for (size_t i = 0; i < num_choices.size(); ++i) {
    histograms[i].assign(num_choices[i], 0);
  }
  for (const auto& answer : answers) {
    DOCS_CHECK_LT(answer.task, histograms.size())
        << "answer names an unknown task";
    DOCS_CHECK_LT(answer.choice, num_choices[answer.task])
        << "answer choice out of range for its task";
    ++histograms[answer.task][answer.choice];
  }
  return histograms;
}

std::vector<size_t> MajorityVote(const std::vector<size_t>& num_choices,
                                 const std::vector<core::Answer>& answers) {
  const auto histograms = AnswerHistograms(num_choices, answers);
  std::vector<size_t> choices(num_choices.size(), 0);
  for (size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    if (!h.empty()) {
      choices[i] = static_cast<size_t>(
          std::distance(h.begin(), std::max_element(h.begin(), h.end())));
    }
  }
  return choices;
}

}  // namespace docs::baselines
