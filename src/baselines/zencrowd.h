#ifndef DOCS_BASELINES_ZENCROWD_H_
#define DOCS_BASELINES_ZENCROWD_H_

#include <vector>

#include "core/types.h"

namespace docs::baselines {

struct ZenCrowdOptions {
  size_t max_iterations = 50;
  double tolerance = 1e-7;
  double initial_quality = 0.7;
  double quality_clamp = 0.01;
};

struct ZenCrowdResult {
  std::vector<std::vector<double>> task_truth;
  std::vector<size_t> inferred_choice;
  std::vector<double> worker_quality;  ///< one scalar per worker
  size_t iterations_run = 0;
};

/// ZenCrowd [Demartini et al., WWW'12]: models each worker as a single
/// reliability value and runs EM — E-step computes the truth posterior from
/// worker reliabilities, M-step re-estimates each reliability as the
/// expected fraction of correct answers. Domain-oblivious by design.
class ZenCrowd {
 public:
  explicit ZenCrowd(ZenCrowdOptions options = {});

  /// `initial_quality`, when given, seeds per-worker reliabilities (e.g.
  /// from the shared golden tasks, as Section 6.3 does for fairness).
  ZenCrowdResult Run(const std::vector<size_t>& num_choices,
                     size_t num_workers,
                     const std::vector<core::Answer>& answers,
                     const std::vector<double>* initial_quality = nullptr) const;

 private:
  ZenCrowdOptions options_;
};

}  // namespace docs::baselines

#endif  // DOCS_BASELINES_ZENCROWD_H_
