#include "baselines/dawid_skene.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_utils.h"

namespace docs::baselines {

DawidSkene::DawidSkene(DawidSkeneOptions options) : options_(options) {}

DawidSkeneResult DawidSkene::Run(
    const std::vector<size_t>& num_choices, size_t num_workers,
    const std::vector<core::Answer>& answers,
    const std::vector<double>* initial_accuracy) const {
  const size_t n = num_choices.size();
  size_t label_space = 2;
  for (size_t l : num_choices) label_space = std::max(label_space, l);

  DawidSkeneResult result;
  result.task_truth.resize(n);
  result.inferred_choice.assign(n, 0);
  result.confusion.reserve(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    double diagonal = options_.initial_diagonal;
    if (initial_accuracy != nullptr && w < initial_accuracy->size()) {
      diagonal = std::min(0.99, std::max(0.01, (*initial_accuracy)[w]));
    }
    Matrix pi(label_space, label_space,
              label_space > 1 ? (1.0 - diagonal) / (label_space - 1) : 0.0);
    for (size_t j = 0; j < label_space; ++j) pi(j, j) = diagonal;
    result.confusion.push_back(std::move(pi));
  }

  std::vector<std::vector<core::Answer>> answers_of_task(n);
  for (const auto& answer : answers) {
    DOCS_CHECK_LT(answer.task, n) << "answer names an unknown task";
    DOCS_CHECK_LT(answer.worker, num_workers)
        << "answer names an unknown worker";
    DOCS_CHECK_LT(answer.choice, num_choices[answer.task])
        << "answer choice out of range for its task";
    answers_of_task[answer.task].push_back(answer);
  }

  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    // E-step: truth posteriors with a uniform prior.
    double change = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const size_t l = num_choices[i];
      std::vector<double> log_s(l, 0.0);
      for (const auto& answer : answers_of_task[i]) {
        const Matrix& pi = result.confusion[answer.worker];
        for (size_t j = 0; j < l; ++j) {
          log_s[j] += std::log(std::max(1e-12, pi(j, answer.choice)));
        }
      }
      const double lse = LogSumExp(log_s);
      std::vector<double> s(l, 0.0);
      for (size_t j = 0; j < l; ++j) s[j] = std::exp(log_s[j] - lse);
      if (!result.task_truth[i].empty()) {
        change += L1Distance(result.task_truth[i], s);
      }
      result.task_truth[i] = std::move(s);
    }

    // M-step: re-estimate confusion matrices with smoothing.
    std::vector<Matrix> counts(num_workers,
                               Matrix(label_space, label_space,
                                      options_.smoothing));
    for (size_t i = 0; i < n; ++i) {
      for (const auto& answer : answers_of_task[i]) {
        for (size_t j = 0; j < num_choices[i]; ++j) {
          counts[answer.worker](j, answer.choice) += result.task_truth[i][j];
        }
      }
    }
    for (size_t w = 0; w < num_workers; ++w) {
      counts[w].NormalizeRows();
      result.confusion[w] = std::move(counts[w]);
    }
    result.iterations_run = iter + 1;
    if (iter > 0 && change / std::max<size_t>(1, n) < options_.tolerance) break;
  }

  for (size_t i = 0; i < n; ++i) {
    if (!result.task_truth[i].empty()) {
      result.inferred_choice[i] = ArgMax(result.task_truth[i]);
    }
  }
  return result;
}

}  // namespace docs::baselines
