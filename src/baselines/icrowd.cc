#include "baselines/icrowd.h"

#include <algorithm>

#include "baselines/majority_vote.h"
#include "common/check.h"
#include "topicmodel/lda.h"

namespace docs::baselines {

ICrowdInference::ICrowdInference(ICrowdOptions options) : options_(options) {}

ICrowdResult ICrowdInference::Run(
    const std::vector<size_t>& num_choices,
    const std::vector<std::vector<double>>& task_topics, size_t num_workers,
    const std::vector<core::Answer>& answers) const {
  const size_t n = num_choices.size();
  DOCS_CHECK_EQ(task_topics.size(), n) << "one topic vector per task";
  ICrowdResult result;
  result.per_answer_quality.assign(answers.size(), options_.initial_quality);

  // Per-worker answer lists (indices into `answers`). MajorityVote below
  // asserts the task/choice bounds; the worker index is only used here.
  std::vector<std::vector<size_t>> answers_of_worker(num_workers);
  for (size_t a = 0; a < answers.size(); ++a) {
    DOCS_CHECK_LT(answers[a].worker, num_workers)
        << "answer names an unknown worker";
    answers_of_worker[answers[a].worker].push_back(a);
  }

  // Initial truth by plain majority voting.
  std::vector<size_t> truth = MajorityVote(num_choices, answers);

  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    // Per-task worker accuracy from similar answered tasks.
    for (size_t w = 0; w < num_workers; ++w) {
      const auto& mine = answers_of_worker[w];
      for (size_t a_idx : mine) {
        const size_t t = answers[a_idx].task;
        double numer = options_.smoothing * options_.initial_quality;
        double denom = options_.smoothing;
        for (size_t b_idx : mine) {
          if (b_idx == a_idx) continue;
          const size_t t2 = answers[b_idx].task;
          const double sim =
              topic::CosineSimilarity(task_topics[t], task_topics[t2]);
          if (sim < options_.similarity_threshold) continue;
          denom += sim;
          if (answers[b_idx].choice == truth[t2]) numer += sim;
        }
        result.per_answer_quality[a_idx] = numer / denom;
      }
    }

    // Weighted majority voting.
    std::vector<std::vector<double>> scores(n);
    for (size_t i = 0; i < n; ++i) scores[i].assign(num_choices[i], 0.0);
    for (size_t a = 0; a < answers.size(); ++a) {
      scores[answers[a].task][answers[a].choice] +=
          result.per_answer_quality[a];
    }
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      size_t best = 0;
      for (size_t j = 1; j < scores[i].size(); ++j) {
        if (scores[i][j] > scores[i][best]) best = j;
      }
      if (best != truth[i]) {
        truth[i] = best;
        changed = true;
      }
    }
    result.iterations_run = iter + 1;
    if (!changed) break;
  }

  result.inferred_choice = std::move(truth);
  return result;
}

}  // namespace docs::baselines
