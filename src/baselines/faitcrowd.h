#ifndef DOCS_BASELINES_FAITCROWD_H_
#define DOCS_BASELINES_FAITCROWD_H_

#include <vector>

#include "core/types.h"

namespace docs::baselines {

struct FaitCrowdOptions {
  size_t max_iterations = 50;
  double tolerance = 1e-7;
  double initial_quality = 0.7;
  double quality_clamp = 0.01;
  /// Smoothing mass for the per-topic quality estimate.
  double smoothing = 1.0;
  /// FaitCrowd estimates each task's latent topic *jointly* with the worker
  /// qualities (its Gibbs sampler moves topics toward whatever makes the
  /// answers most likely). When true, topics are re-assigned each iteration
  /// by answer likelihood, anchored to the provided topics with
  /// `topic_prior_strength` — the coupling the DOCS paper criticizes
  /// ("the estimation of worker's quality is highly affected by the
  /// inaccurate estimation of task's domains", Section 1).
  bool joint_topic_estimation = true;
  double topic_prior_strength = 0.6;
};

struct FaitCrowdResult {
  std::vector<std::vector<double>> task_truth;
  std::vector<size_t> inferred_choice;
  /// Final (possibly re-estimated) topic per task.
  std::vector<size_t> final_topics;
  /// worker_topic_quality[w][k]: quality of worker w on latent topic k.
  std::vector<std::vector<double>> worker_topic_quality;
  size_t iterations_run = 0;
};

/// FaitCrowd [Ma et al., KDD'15], fine-grained truth discovery: each task
/// carries a *hard* latent topic, each worker a quality per topic, and EM
/// alternates truth posteriors and per-topic qualities. Unlike DOCS's TI,
/// a task's truth only consults the worker quality of its single assigned
/// topic, and quality updates pool tasks by hard topic — the coupling the
/// paper criticizes as inaccurate (Section 1).
class FaitCrowd {
 public:
  explicit FaitCrowd(FaitCrowdOptions options = {});

  /// `task_topics[i]` is the *initial* hard topic id of task i (from
  /// TwitterLDA, or ground-truth domains in the Section 6.3 setup); topic
  /// ids must be dense in [0, num_topics). With joint_topic_estimation the
  /// model may move tasks to other topics during inference.
  FaitCrowdResult Run(const std::vector<size_t>& num_choices,
                      const std::vector<size_t>& task_topics,
                      size_t num_topics, size_t num_workers,
                      const std::vector<core::Answer>& answers) const;

 private:
  FaitCrowdOptions options_;
};

}  // namespace docs::baselines

#endif  // DOCS_BASELINES_FAITCROWD_H_
