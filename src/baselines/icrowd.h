#ifndef DOCS_BASELINES_ICROWD_H_
#define DOCS_BASELINES_ICROWD_H_

#include <vector>

#include "core/types.h"

namespace docs::baselines {

struct ICrowdOptions {
  /// Similarity threshold: tasks with cosine similarity below this do not
  /// contribute to a worker's per-task accuracy estimate.
  double similarity_threshold = 0.3;
  size_t max_iterations = 10;
  double initial_quality = 0.7;
  /// Smoothing mass pulling per-task accuracy toward initial_quality.
  double smoothing = 1.0;
};

struct ICrowdResult {
  std::vector<size_t> inferred_choice;
  /// q_w(t): estimated accuracy of worker w on task t, for answered pairs.
  /// Stored sparsely as (worker, task) -> value via parallel arrays in
  /// answer order (matching the input answers).
  std::vector<double> per_answer_quality;
  size_t iterations_run = 0;
};

/// iCrowd [Fan et al., SIGMOD'15]: estimates a worker's accuracy *per task*
/// from her performance on textually similar tasks (topic-vector cosine
/// similarity), then infers each task's truth by weighted majority voting.
/// Iterates: current truth -> per-task accuracies -> weighted vote -> ...
class ICrowdInference {
 public:
  explicit ICrowdInference(ICrowdOptions options = {});

  /// `task_topics` holds one topic/domain distribution per task (from LDA in
  /// the original system; Section 6.3 hands it the ground-truth domains).
  ICrowdResult Run(const std::vector<size_t>& num_choices,
                   const std::vector<std::vector<double>>& task_topics,
                   size_t num_workers,
                   const std::vector<core::Answer>& answers) const;

 private:
  ICrowdOptions options_;
};

}  // namespace docs::baselines

#endif  // DOCS_BASELINES_ICROWD_H_
