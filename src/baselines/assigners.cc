#include "baselines/assigners.h"

#include <algorithm>
#include <cmath>

#include "baselines/majority_vote.h"
#include "common/check.h"
#include "common/math_utils.h"
#include "topicmodel/lda.h"

namespace docs::baselines {

BaseAssigner::BaseAssigner(std::vector<size_t> num_choices)
    : num_choices_(std::move(num_choices)) {
  histograms_.resize(num_choices_.size());
  for (size_t i = 0; i < num_choices_.size(); ++i) {
    histograms_[i].assign(num_choices_[i], 0);
  }
  answer_count_.assign(num_choices_.size(), 0);
}

void BaseAssigner::OnAnswer(size_t worker, size_t task, size_t choice) {
  if (task >= num_choices_.size() || choice >= num_choices_[task]) return;
  while (answered_.size() <= worker) {
    answered_.emplace_back(num_choices_.size(), 0);
  }
  if (answered_[worker][task]) return;
  answered_[worker][task] = 1;
  ++histograms_[task][choice];
  ++answer_count_[task];
  answers_.push_back({task, worker, choice});
}

bool BaseAssigner::HasAnswered(size_t worker, size_t task) const {
  return worker < answered_.size() && answered_[worker][task] != 0;
}

std::vector<size_t> BaseAssigner::EligibleTasks(
    size_t worker, size_t max_answers_per_task) const {
  std::vector<size_t> eligible;
  eligible.reserve(num_choices_.size());
  for (size_t i = 0; i < num_choices_.size(); ++i) {
    if (HasAnswered(worker, i)) continue;
    if (max_answers_per_task > 0 && answer_count_[i] >= max_answers_per_task) {
      continue;
    }
    eligible.push_back(i);
  }
  return eligible;
}

// --- Baseline (random) ------------------------------------------------------

RandomAssigner::RandomAssigner(std::vector<size_t> num_choices, uint64_t seed)
    : BaseAssigner(std::move(num_choices)), rng_(seed) {}

std::vector<size_t> RandomAssigner::SelectTasks(size_t worker, size_t k) {
  std::vector<size_t> eligible = EligibleTasks(worker);
  rng_.Shuffle(eligible);
  if (eligible.size() > k) eligible.resize(k);
  return eligible;
}

std::vector<size_t> RandomAssigner::InferredChoices() {
  return MajorityVote(num_choices_, answers_);
}

// --- AskIt! -----------------------------------------------------------------

AskItAssigner::AskItAssigner(std::vector<size_t> num_choices)
    : BaseAssigner(std::move(num_choices)) {}

std::vector<size_t> AskItAssigner::SelectTasks(size_t worker, size_t k) {
  std::vector<size_t> eligible = EligibleTasks(worker);
  // Uncertainty = entropy of the (Laplace-smoothed) answer histogram; tasks
  // with no answers are maximally uncertain.
  auto uncertainty = [&](size_t task) {
    std::vector<double> p(histograms_[task].begin(), histograms_[task].end());
    for (auto& v : p) v += 1.0;
    NormalizeInPlace(p);
    return Entropy(p);
  };
  std::vector<double> score(num_choices_.size(), 0.0);
  for (size_t task : eligible) score[task] = uncertainty(task);
  const size_t take = std::min(k, eligible.size());
  std::partial_sort(eligible.begin(), eligible.begin() + take, eligible.end(),
                    [&](size_t a, size_t b) {
                      if (score[a] != score[b]) return score[a] > score[b];
                      return a < b;
                    });
  eligible.resize(take);
  return eligible;
}

std::vector<size_t> AskItAssigner::InferredChoices() {
  return MajorityVote(num_choices_, answers_);
}

// --- iCrowd -----------------------------------------------------------------

ICrowdAssigner::ICrowdAssigner(std::vector<size_t> num_choices,
                               std::vector<std::vector<double>> task_topics,
                               size_t answers_per_task, ICrowdOptions options)
    : BaseAssigner(std::move(num_choices)),
      task_topics_(std::move(task_topics)),
      answers_per_task_(answers_per_task),
      options_(options) {
  DOCS_CHECK_EQ(task_topics_.size(), num_choices_.size())
      << "one topic vector per task";
  current_truth_.assign(num_choices_.size(), 0);
}

void ICrowdAssigner::RefreshTruth() {
  ICrowdInference inference(options_);
  current_truth_ =
      inference
          .Run(num_choices_, task_topics_, answered_.size(), answers_)
          .inferred_choice;
}

void ICrowdAssigner::OnAnswer(size_t worker, size_t task, size_t choice) {
  BaseAssigner::OnAnswer(worker, task, choice);
  if (++answers_since_refresh_ >= 100) {
    RefreshTruth();
    answers_since_refresh_ = 0;
  }
}

std::vector<size_t> ICrowdAssigner::SelectTasks(size_t worker, size_t k) {
  // Equal-times constraint: tasks already at the target count are closed.
  std::vector<size_t> eligible = EligibleTasks(worker, answers_per_task_);
  if (eligible.empty()) return {};

  // The worker's estimated accuracy on task t: similarity-weighted agreement
  // with the current truth over her answered tasks.
  std::vector<const core::Answer*> mine;
  for (const auto& answer : answers_) {
    if (answer.worker == worker) mine.push_back(&answer);
  }
  auto estimated_quality = [&](size_t task) {
    double numer = options_.smoothing * options_.initial_quality;
    double denom = options_.smoothing;
    for (const core::Answer* answer : mine) {
      const double sim = topic::CosineSimilarity(task_topics_[task],
                                                 task_topics_[answer->task]);
      if (sim < options_.similarity_threshold) continue;
      denom += sim;
      if (answer->choice == current_truth_[answer->task]) numer += sim;
    }
    return numer / denom;
  };
  std::vector<double> score(num_choices_.size(), 0.0);
  for (size_t task : eligible) score[task] = estimated_quality(task);
  const size_t take = std::min(k, eligible.size());
  std::partial_sort(eligible.begin(), eligible.begin() + take, eligible.end(),
                    [&](size_t a, size_t b) {
                      if (score[a] != score[b]) return score[a] > score[b];
                      return a < b;
                    });
  eligible.resize(take);
  return eligible;
}

std::vector<size_t> ICrowdAssigner::InferredChoices() {
  RefreshTruth();
  return current_truth_;
}

// --- QASCA ------------------------------------------------------------------

QascaAssigner::QascaAssigner(std::vector<size_t> num_choices,
                             size_t refresh_every, DawidSkeneOptions options)
    : BaseAssigner(std::move(num_choices)),
      refresh_every_(refresh_every),
      options_(options) {
  for (size_t l : num_choices_) label_space_ = std::max(label_space_, l);
  default_confusion_ = Matrix(
      label_space_, label_space_,
      label_space_ > 1 ? (1.0 - options_.initial_diagonal) / (label_space_ - 1)
                       : 0.0);
  for (size_t j = 0; j < label_space_; ++j) {
    default_confusion_(j, j) = options_.initial_diagonal;
  }
  model_.task_truth.resize(num_choices_.size());
  for (size_t i = 0; i < num_choices_.size(); ++i) {
    model_.task_truth[i] = UniformDistribution(num_choices_[i]);
  }
}

void QascaAssigner::RefreshModel() {
  DawidSkene engine(options_);
  model_ = engine.Run(num_choices_, answered_.size(), answers_);
}

void QascaAssigner::OnAnswer(size_t worker, size_t task, size_t choice) {
  BaseAssigner::OnAnswer(worker, task, choice);
  if (++answers_since_refresh_ >= refresh_every_) {
    RefreshModel();
    answers_since_refresh_ = 0;
  }
}

double QascaAssigner::ExpectedAccuracyGain(size_t worker, size_t task) const {
  const size_t l = num_choices_[task];
  const std::vector<double>& s = model_.task_truth[task];
  const Matrix& pi = worker < model_.confusion.size()
                         ? model_.confusion[worker]
                         : default_confusion_;

  const double current_max = s.empty() ? 0.0 : *std::max_element(s.begin(), s.end());
  double expected_max = 0.0;
  for (size_t a = 0; a < l; ++a) {
    double pa = 0.0;
    double best_posterior = 0.0;
    double norm = 0.0;
    std::vector<double> posterior(l, 0.0);
    for (size_t j = 0; j < l; ++j) {
      const double value = s[j] * std::max(1e-12, pi(j, a));
      posterior[j] = value;
      norm += value;
      pa += value;
    }
    if (norm <= 0.0) continue;
    for (size_t j = 0; j < l; ++j) {
      best_posterior = std::max(best_posterior, posterior[j] / norm);
    }
    expected_max += pa * best_posterior;
  }
  return expected_max - current_max;
}

std::vector<size_t> QascaAssigner::SelectTasks(size_t worker, size_t k) {
  std::vector<size_t> eligible = EligibleTasks(worker);
  std::vector<double> score(num_choices_.size(), 0.0);
  for (size_t task : eligible) score[task] = ExpectedAccuracyGain(worker, task);
  const size_t take = std::min(k, eligible.size());
  std::partial_sort(eligible.begin(), eligible.begin() + take, eligible.end(),
                    [&](size_t a, size_t b) {
                      if (score[a] != score[b]) return score[a] > score[b];
                      return a < b;
                    });
  eligible.resize(take);
  return eligible;
}

std::vector<size_t> QascaAssigner::InferredChoices() {
  RefreshModel();
  return model_.inferred_choice;
}

}  // namespace docs::baselines
