#ifndef DOCS_BASELINES_DAWID_SKENE_H_
#define DOCS_BASELINES_DAWID_SKENE_H_

#include <vector>

#include "common/matrix.h"
#include "core/types.h"

namespace docs::baselines {

struct DawidSkeneOptions {
  size_t max_iterations = 50;
  double tolerance = 1e-7;
  /// Initial diagonal mass of each worker's confusion matrix.
  double initial_diagonal = 0.7;
  /// Laplace smoothing added to every confusion-matrix cell in the M-step.
  double smoothing = 0.01;
};

struct DawidSkeneResult {
  std::vector<std::vector<double>> task_truth;
  std::vector<size_t> inferred_choice;
  /// One L x L confusion matrix per worker, L = max_l num_choices; rows are
  /// true labels, columns observed answers.
  std::vector<Matrix> confusion;
  size_t iterations_run = 0;
};

/// Dawid & Skene [1979]: each worker is a full confusion matrix, estimated
/// with EM jointly with the task truths. Tasks with fewer than L choices use
/// the leading sub-block of the matrix.
class DawidSkene {
 public:
  explicit DawidSkene(DawidSkeneOptions options = {});

  DawidSkeneResult Run(const std::vector<size_t>& num_choices,
                       size_t num_workers,
                       const std::vector<core::Answer>& answers,
                       const std::vector<double>* initial_accuracy = nullptr)
      const;

 private:
  DawidSkeneOptions options_;
};

}  // namespace docs::baselines

#endif  // DOCS_BASELINES_DAWID_SKENE_H_
