#ifndef DOCS_COMMON_MATRIX_H_
#define DOCS_COMMON_MATRIX_H_

#include <cstddef>
#include <vector>

namespace docs {

/// Dense row-major matrix of doubles. Used for the per-task truth matrices
/// M^(i) (m x l_ti) of the paper and for worker confusion matrices in the
/// Dawid-Skene baseline.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Returns row `r` as a vector copy.
  std::vector<double> Row(size_t r) const;

  /// Overwrites row `r` with `values` (must have cols() entries).
  void SetRow(size_t r, const std::vector<double>& values);

  /// Normalizes each row to sum to 1 (rows summing to <= 0 become uniform).
  void NormalizeRows();

  /// Left-multiplies by a row vector: returns v * M, where v has rows()
  /// entries and the result has cols() entries. This is exactly the paper's
  /// s_i = r^{t_i} x M^(i) operation.
  std::vector<double> LeftMultiply(const std::vector<double>& v) const;

  /// LeftMultiply into a caller-provided buffer: `*out` is resized to cols()
  /// and overwritten. Accumulation order is identical to LeftMultiply, so the
  /// result is bit-identical; the point is that hot loops can reuse `*out`
  /// across calls instead of allocating a fresh vector each time.
  void LeftMultiplyInto(const std::vector<double>& v,
                        std::vector<double>* out) const;

  /// Reshapes to rows x cols. Element values are unspecified afterwards —
  /// callers overwrite every cell (this exists so hot loops can reuse one
  /// Matrix's storage instead of allocating a fresh one per call).
  void Resize(size_t rows, size_t cols);

  /// Fills the whole matrix with `value`.
  void Fill(double value);

  /// Max absolute elementwise difference against `other`; requires equal
  /// shapes.
  double MaxAbsDiff(const Matrix& other) const;

  const std::vector<double>& data() const { return data_; }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace docs

#endif  // DOCS_COMMON_MATRIX_H_
