#include "common/rng.h"

#include <cmath>

namespace docs {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  // Debiased modulo: rejects values in the tail range.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int Rng::UniformIntRange(int lo, int hi) {
  return lo + static_cast<int>(UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  // 53 high-quality bits mapped into [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDoubleRange(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Gaussian(double mean, double stddev) {
  // Box-Muller; uses one fresh pair per call for simplicity.
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  while (u1 <= 1e-300) u1 = UniformDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

size_t Rng::SampleDiscrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return UniformInt(weights.size());
  double r = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += (weights[i] > 0.0 ? weights[i] : 0.0);
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

double Rng::Gamma(double shape) {
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia-Tsang trick).
    double u = UniformDouble();
    while (u <= 1e-300) u = UniformDouble();
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = Gaussian(0.0, 1.0);
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = UniformDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double Rng::Beta(double alpha, double beta) {
  double x = Gamma(alpha);
  double y = Gamma(beta);
  if (x + y <= 0.0) return 0.5;
  return x / (x + y);
}

std::vector<double> Rng::Dirichlet(size_t n, double alpha) {
  std::vector<double> out(n, 0.0);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    out[i] = Gamma(alpha);
    total += out[i];
  }
  if (total <= 0.0) {
    for (auto& v : out) v = 1.0 / static_cast<double>(n);
    return out;
  }
  for (auto& v : out) v /= total;
  return out;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace docs
