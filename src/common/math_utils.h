#ifndef DOCS_COMMON_MATH_UTILS_H_
#define DOCS_COMMON_MATH_UTILS_H_

#include <cstddef>
#include <vector>

namespace docs {

/// Shannon entropy of a distribution, H(p) = -sum p_j ln p_j, in nats.
/// Zero entries contribute 0 (lim x->0 of x ln x). A NaN entry propagates to
/// a NaN result rather than being silently skipped; other values are not
/// validated — callers pass normalized distributions.
double Entropy(const std::vector<double>& p);

/// Kullback-Leibler divergence D(p || q) = sum p_i ln(p_i / q_i), in nats.
/// Entries with p_i == 0 contribute 0; a positive p_i facing q_i == 0 yields
/// +infinity, matching the mathematical definition.
double KlDivergence(const std::vector<double>& p, const std::vector<double>& q);

/// Normalizes `v` in place so its entries sum to 1. If the sum is <= 0 the
/// vector becomes uniform. Returns the pre-normalization sum.
double NormalizeInPlace(std::vector<double>& v);

/// Returns the index of the largest element (first one on ties). Requires a
/// non-empty vector.
size_t ArgMax(const std::vector<double>& v);

/// Returns log(sum(exp(x_i))) computed stably.
double LogSumExp(const std::vector<double>& x);

/// L1 distance sum |a_i - b_i|. Requires equal sizes.
double L1Distance(const std::vector<double>& a, const std::vector<double>& b);

/// Returns sum of elements.
double Sum(const std::vector<double>& v);

/// Returns a uniform distribution of length n (n >= 1).
std::vector<double> UniformDistribution(size_t n);

/// True if `v` is a probability distribution within `tol`: entries in
/// [-tol, 1 + tol] and |sum - 1| <= tol.
bool IsDistribution(const std::vector<double>& v, double tol = 1e-9);

}  // namespace docs

#endif  // DOCS_COMMON_MATH_UTILS_H_
