#ifndef DOCS_COMMON_FAULT_INJECTION_H_
#define DOCS_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sync.h"

namespace docs {

/// How an armed fault point decides whether a given evaluation fires.
///  * kProbabilistic — fires with probability `probability` per evaluation,
///    drawn from the injector's seeded RNG (deterministic per seed).
///  * kEveryNth     — fires on every Nth evaluation (the Nth, 2Nth, ...).
///  * kOneShot      — fires exactly once, on evaluation `skip` + 1.
struct FaultSpec {
  enum class Trigger { kProbabilistic, kEveryNth, kOneShot };
  Trigger trigger = Trigger::kOneShot;
  double probability = 1.0;  ///< kProbabilistic: per-evaluation fire chance.
  size_t nth = 1;            ///< kEveryNth: period (>= 1).
  size_t skip = 0;           ///< kOneShot: evaluations to let pass first.
};

/// A seeded registry of named fault points for deterministic failure testing.
///
/// Production code marks fallible spots with DOCS_FAULT_POINT("name"); tests
/// arm the named points with a trigger spec and assert that recovery paths
/// (torn-tail replay, checkpoint retry, crash/restore) behave. The fast path
/// is a single relaxed atomic load, so an unarmed build pays one predictable
/// branch per fault point — nothing allocates, locks, or hashes until a test
/// arms at least one point.
///
/// Thread-safe: arming, disarming, and evaluation may race freely (the
/// serving facade checkpoints from multiple threads in tests).
class FaultInjector {
 public:
  /// The process-wide registry used by DOCS_FAULT_POINT.
  static FaultInjector& Global();

  /// True when at least one fault point is armed (the fast path).
  bool armed() const {
    return armed_points_.load(std::memory_order_relaxed) > 0;
  }

  /// Arms `point` with `spec`, replacing any previous arming (and resetting
  /// its hit/fire counters).
  void Arm(const std::string& point, const FaultSpec& spec)
      DOCS_EXCLUDES(mutex_);

  /// Convenience wrappers for the three trigger kinds.
  void ArmProbabilistic(const std::string& point, double probability);
  void ArmEveryNth(const std::string& point, size_t nth);
  void ArmOneShot(const std::string& point, size_t skip = 0);

  /// Disarms one point (keeps its counters readable) / all points.
  void Disarm(const std::string& point) DOCS_EXCLUDES(mutex_);
  void DisarmAll() DOCS_EXCLUDES(mutex_);

  /// Reseeds the RNG behind probabilistic triggers (default seed 0).
  void SeedRng(uint64_t seed) DOCS_EXCLUDES(mutex_);

  /// Evaluates `point`: returns true when the armed trigger fires. Unarmed
  /// points never fire and are not counted. Prefer DOCS_FAULT_POINT, which
  /// short-circuits through armed() first.
  bool ShouldFail(const std::string& point) DOCS_EXCLUDES(mutex_);

  /// Times `point` was evaluated / fired since it was (re-)armed.
  size_t hits(const std::string& point) const DOCS_EXCLUDES(mutex_);
  size_t fires(const std::string& point) const DOCS_EXCLUDES(mutex_);
  /// Total fires across all points since the last DisarmAll().
  size_t total_fires() const { return total_fires_.load(); }

 private:
  struct PointState {
    FaultSpec spec;
    bool live = false;  ///< false once disarmed (counters stay readable)
    size_t hits = 0;
    size_t fires = 0;
  };

  mutable Mutex mutex_;
  std::atomic<size_t> armed_points_{0};
  std::atomic<size_t> total_fires_{0};
  std::unordered_map<std::string, PointState> points_ DOCS_GUARDED_BY(mutex_);
  /// splitmix64 state for probabilistic triggers
  uint64_t rng_state_ DOCS_GUARDED_BY(mutex_) = 0;
};

}  // namespace docs

/// Evaluates to true when the named fault point is armed and fires. Costs a
/// single relaxed atomic load when no faults are armed anywhere.
#define DOCS_FAULT_POINT(name)                    \
  (::docs::FaultInjector::Global().armed() &&     \
   ::docs::FaultInjector::Global().ShouldFail(name))

#endif  // DOCS_COMMON_FAULT_INJECTION_H_
