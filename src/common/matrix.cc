#include "common/matrix.h"

#include <cmath>

#include "common/check.h"

namespace docs {

std::vector<double> Matrix::Row(size_t r) const {
  DOCS_DCHECK_LT(r, rows_);
  return std::vector<double>(data_.begin() + r * cols_,
                             data_.begin() + (r + 1) * cols_);
}

void Matrix::SetRow(size_t r, const std::vector<double>& values) {
  DOCS_DCHECK_LT(r, rows_);
  DOCS_DCHECK_GE(values.size(), cols_);
  for (size_t c = 0; c < cols_; ++c) data_[r * cols_ + c] = values[c];
}

void Matrix::NormalizeRows() {
  for (size_t r = 0; r < rows_; ++r) {
    double total = 0.0;
    for (size_t c = 0; c < cols_; ++c) total += data_[r * cols_ + c];
    if (total <= 0.0) {
      const double u = cols_ == 0 ? 0.0 : 1.0 / static_cast<double>(cols_);
      for (size_t c = 0; c < cols_; ++c) data_[r * cols_ + c] = u;
    } else {
      for (size_t c = 0; c < cols_; ++c) data_[r * cols_ + c] /= total;
    }
  }
}

std::vector<double> Matrix::LeftMultiply(const std::vector<double>& v) const {
  DOCS_DCHECK_EQ(v.size(), rows_);
  std::vector<double> out(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double vr = v[r];
    if (vr == 0.0) continue;
    for (size_t c = 0; c < cols_; ++c) out[c] += vr * data_[r * cols_ + c];
  }
  return out;
}

void Matrix::LeftMultiplyInto(const std::vector<double>& v,
                              std::vector<double>* out) const {
  DOCS_DCHECK_EQ(v.size(), rows_);
  out->assign(cols_, 0.0);
  std::vector<double>& result = *out;
  for (size_t r = 0; r < rows_; ++r) {
    const double vr = v[r];
    if (vr == 0.0) continue;
    for (size_t c = 0; c < cols_; ++c) result[c] += vr * data_[r * cols_ + c];
  }
}

void Matrix::Resize(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

void Matrix::Fill(double value) {
  for (auto& x : data_) x = value;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  DOCS_CHECK_EQ(data_.size(), other.data_.size())
      << "MaxAbsDiff over mismatched shapes";
  double mx = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    mx = std::max(mx, std::fabs(data_[i] - other.data_[i]));
  }
  return mx;
}

}  // namespace docs
