#ifndef DOCS_COMMON_TABLE_PRINTER_H_
#define DOCS_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace docs {

/// Renders aligned plain-text tables. The experiment harnesses under bench/
/// use it to print the rows/series of each table and figure of the paper.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are kept and
  /// widen the table.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` digits after the point.
  static std::string Fmt(double value, int precision = 3);

  /// Writes the table with a header rule to `os`.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace docs

#endif  // DOCS_COMMON_TABLE_PRINTER_H_
