#include "common/string_utils.h"

#include <string.h>

#include <cctype>

namespace docs {
namespace {

// strerror_r comes in two flavors; overload resolution on the actual return
// type picks the right unpacking without feature-macro guesswork.
inline std::string UnpackStrerror(int rc, const char* buf) {
  return rc == 0 ? std::string(buf) : std::string("unknown error");  // XSI
}
inline std::string UnpackStrerror(const char* msg, const char* /*buf*/) {
  return std::string(msg);  // GNU: may return a static string, not buf
}

}  // namespace

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::vector<std::string> Split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  std::string current;
  for (char c : s) {
    if (delims.find(c) != std::string_view::npos) {
      if (!current.empty()) out.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::vector<std::string> TokenizeWords(std::string_view text) {
  std::vector<std::string> out;
  std::string current;
  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if (!current.empty()) {
      out.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

std::string ErrnoString(int errnum) {
  char buf[256] = {};
  return UnpackStrerror(::strerror_r(errnum, buf, sizeof(buf)), buf);
}

}  // namespace docs
