#ifndef DOCS_COMMON_PARALLEL_H_
#define DOCS_COMMON_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace docs {

/// Default chunk grain for ParallelFor/ParallelReduce: the index space is cut
/// into chunks of this many elements. The grain (and therefore the chunk
/// boundaries) depends only on the problem size, never on the thread count —
/// that invariance is what makes chunk-ordered reductions bit-identical for
/// any pool size. 16 keeps per-chunk dispatch overhead (one atomic fetch_add
/// plus one counter increment) negligible against the microseconds of work a
/// chunk of inference/scoring carries.
inline constexpr size_t kParallelGrain = 16;

/// std::thread::hardware_concurrency(), floored at 1 (the standard allows 0
/// when the count is unknowable).
size_t DefaultThreadCount();

/// Resolves a user-facing thread-count knob: 0 means "hardware default",
/// anything else is taken literally. Always >= 1.
size_t EffectiveThreadCount(size_t requested);

/// A fixed-size pool of worker threads executing indexed chunks. The pool is
/// created once and reused across parallel regions (thread creation costs tens
/// of microseconds; the hot loops run every answer submission). One Run() is
/// active at a time; the calling thread participates, so a pool constructed
/// with `num_threads` applies exactly `num_threads` threads to each region.
///
/// Determinism contract: Run(num_chunks, fn) invokes fn(c) exactly once for
/// every c in [0, num_chunks). *Which* thread runs a chunk is scheduling-
/// dependent, but callers that (a) write only to chunk-owned slots, or
/// (b) accumulate into per-chunk partials merged in chunk order afterwards,
/// produce results independent of both the schedule and the pool size.
class ThreadPool {
 public:
  /// `num_threads` counts the caller: a pool of 1 spawns no workers and runs
  /// everything inline; a pool of 0 resolves to DefaultThreadCount().
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads applied to a region, including the caller.
  size_t num_threads() const { return workers_.size() + 1; }

  /// Executes fn(c) for every chunk index c in [0, num_chunks), blocking until
  /// all chunks finished. Chunks are claimed dynamically (an idle thread takes
  /// the next index), so uneven chunk costs balance automatically. Not
  /// reentrant: fn must not call Run() on the same pool.
  ///
  /// If fn throws, the first exception (in completion order) is rethrown from
  /// Run() after every chunk has been accounted for and the pool state is
  /// reset — a chunk whose fn threw still counts as completed, so the pool
  /// stays usable for subsequent Run() calls. Exceptions thrown on worker
  /// threads are transported to the caller instead of terminating the
  /// process.
  void Run(size_t num_chunks, const std::function<void(size_t)>& fn)
      DOCS_EXCLUDES(mutex_);

 private:
  void WorkerLoop() DOCS_EXCLUDES(mutex_);
  /// Claims and executes chunks of the job tagged `generation` until none
  /// remain or the ticket's generation moves on; returns the number of chunks
  /// this thread completed. `fn` is dereferenced only after a successful
  /// claim, which proves the job (and the caller's fn) is still alive.
  size_t DrainChunks(uint64_t generation, const std::function<void(size_t)>* fn)
      DOCS_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar work_cv_;
  CondVar done_cv_;
  const std::function<void(size_t)>* job_ DOCS_GUARDED_BY(mutex_) = nullptr;
  /// Chunk-claim ticket: the job generation in the high 32 bits, the next
  /// unclaimed chunk index in the low 32. Claims are CAS increments that fail
  /// if the generation tag changed, so a worker that stalled after picking up
  /// a job but before claiming anything can never consume a chunk of (or run
  /// fn from) a later job — the tag mismatch fences it off. Wrap-around would
  /// need a worker to stall across exactly 2^32 Run() generations.
  std::atomic<uint64_t> ticket_{0};
  /// Chunk count of the active job. Atomic because stragglers from an older
  /// generation may load it while Run() resets it; the generation-checked
  /// claim ensures a stale value never admits an fn call.
  std::atomic<size_t> num_chunks_{0};
  size_t completed_ DOCS_GUARDED_BY(mutex_) = 0;
  uint64_t generation_ DOCS_GUARDED_BY(mutex_) = 0;  ///< bumped per Run()
  std::exception_ptr first_error_ DOCS_GUARDED_BY(mutex_);  ///< see Run()
  bool shutdown_ DOCS_GUARDED_BY(mutex_) = false;
};

/// Number of chunks a ParallelFor over `n` elements dispatches. Depends only
/// on `n` and `grain`.
inline size_t NumChunks(size_t n, size_t grain = kParallelGrain) {
  if (n == 0) return 0;
  if (grain == 0) grain = 1;
  return (n + grain - 1) / grain;
}

/// Runs body(i) for every i in [0, n). Within a chunk indices run in
/// ascending order on one thread; distinct chunks may run concurrently.
/// `pool == nullptr` (or a 1-thread pool, or a single chunk) degrades to the
/// plain sequential loop. Bodies that only touch state owned by index i are
/// bit-identical to the sequential loop for every pool size.
template <typename Body>
void ParallelFor(ThreadPool* pool, size_t n, const Body& body,
                 size_t grain = kParallelGrain) {
  const size_t chunks = NumChunks(n, grain);
  if (chunks == 0) return;
  auto run_chunk = [&](size_t c) {
    const size_t begin = c * grain;
    const size_t end = std::min(n, begin + grain);
    for (size_t i = begin; i < end; ++i) body(i);
  };
  if (pool == nullptr || pool->num_threads() <= 1 || chunks <= 1) {
    for (size_t c = 0; c < chunks; ++c) run_chunk(c);
    return;
  }
  pool->Run(chunks, run_chunk);
}

/// Deterministic chunked reduction: splits [0, n) into NumChunks(n, grain)
/// chunks, runs chunk_body(begin, end, partial) with a freshly
/// value-initialized Partial per chunk, then folds the partials into `result`
/// with merge(result, partial) in ascending chunk order on the calling
/// thread. Because the chunk boundaries and the merge order depend only on
/// (n, grain), the result is bit-identical for any thread count — including
/// the degenerate sequential execution.
template <typename Partial, typename ChunkBody, typename Merge>
void ParallelReduce(ThreadPool* pool, size_t n, Partial& result,
                    const ChunkBody& chunk_body, const Merge& merge,
                    size_t grain = kParallelGrain) {
  const size_t chunks = NumChunks(n, grain);
  if (chunks == 0) return;
  std::vector<Partial> partials(chunks);
  auto run_chunk = [&](size_t c) {
    const size_t begin = c * grain;
    const size_t end = std::min(n, begin + grain);
    chunk_body(begin, end, partials[c]);
  };
  if (pool == nullptr || pool->num_threads() <= 1 || chunks <= 1) {
    for (size_t c = 0; c < chunks; ++c) run_chunk(c);
  } else {
    pool->Run(chunks, run_chunk);
  }
  for (size_t c = 0; c < chunks; ++c) merge(result, partials[c]);
}

}  // namespace docs

#endif  // DOCS_COMMON_PARALLEL_H_
