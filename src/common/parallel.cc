#include "common/parallel.h"

namespace docs {

size_t DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

size_t EffectiveThreadCount(size_t requested) {
  return requested == 0 ? DefaultThreadCount() : requested;
}

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t total = EffectiveThreadCount(num_threads);
  workers_.reserve(total - 1);
  for (size_t t = 0; t + 1 < total; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

size_t ThreadPool::DrainChunks(const std::function<void(size_t)>& fn) {
  // num_chunks_ is stable for the lifetime of the job: it is written under
  // the mutex before workers are woken and only reset once every chunk has
  // been accounted for.
  size_t ran = 0;
  for (;;) {
    const size_t chunk = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= num_chunks_.load(std::memory_order_relaxed)) return ran;
    fn(chunk);
    ++ran;
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (job_ != nullptr && generation_ != seen_generation);
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
    }
    const size_t ran = DrainChunks(*job);
    if (ran > 0) {
      std::lock_guard<std::mutex> lock(mutex_);
      completed_ += ran;
      if (completed_ == num_chunks_.load(std::memory_order_relaxed)) {
        done_cv_.notify_all();
      }
    }
  }
}

void ThreadPool::Run(size_t num_chunks, const std::function<void(size_t)>& fn) {
  if (num_chunks == 0) return;
  if (workers_.empty() || num_chunks == 1) {
    for (size_t c = 0; c < num_chunks; ++c) fn(c);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    num_chunks_.store(num_chunks, std::memory_order_relaxed);
    next_chunk_.store(0, std::memory_order_relaxed);
    completed_ = 0;
    ++generation_;
  }
  work_cv_.notify_all();
  const size_t ran = DrainChunks(fn);
  std::unique_lock<std::mutex> lock(mutex_);
  completed_ += ran;
  done_cv_.wait(lock, [&] { return completed_ == num_chunks; });
  // With every chunk accounted for, no worker can still be inside fn: a
  // worker only touches fn between claiming a chunk and bumping completed_.
  job_ = nullptr;
  num_chunks_.store(0, std::memory_order_relaxed);
}

}  // namespace docs
