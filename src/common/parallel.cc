#include "common/parallel.h"

namespace docs {

size_t DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

size_t EffectiveThreadCount(size_t requested) {
  return requested == 0 ? DefaultThreadCount() : requested;
}

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t total = EffectiveThreadCount(num_threads);
  workers_.reserve(total - 1);
  for (size_t t = 0; t + 1 < total; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mutex_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

namespace {
// ticket_ layout: generation in the high 32 bits, next chunk in the low 32.
constexpr uint64_t kTicketGenShift = 32;
constexpr uint64_t kTicketChunkMask = 0xffffffffULL;
}  // namespace

size_t ThreadPool::DrainChunks(uint64_t generation,
                               const std::function<void(size_t)>* fn) {
  const uint64_t gen_tag = generation << kTicketGenShift;
  size_t ran = 0;
  uint64_t ticket = ticket_.load(std::memory_order_acquire);
  for (;;) {
    // The generation check and the claim are one atomic step: a straggler
    // still holding an old job sees the tag mismatch and backs off without
    // consuming an index of the new job or touching the old (possibly
    // destroyed) fn. A plain fetch_add could not give that guarantee — it
    // would burn a chunk of the new job before the check.
    if ((ticket & ~kTicketChunkMask) != gen_tag) return ran;
    const size_t chunk = static_cast<size_t>(ticket & kTicketChunkMask);
    if (chunk >= num_chunks_.load(std::memory_order_relaxed)) return ran;
    if (!ticket_.compare_exchange_weak(ticket, ticket + 1,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      continue;  // ticket was reloaded by the failed CAS
    }
    ticket += 1;
    // The successful claim proves *fn is alive: this chunk has not been
    // counted into completed_, so Run() is still blocked in its wait.
    try {
      (*fn)(chunk);
    } catch (...) {
      MutexLock lock(&mutex_);
      if (first_error_ == nullptr) first_error_ = std::current_exception();
    }
    // A chunk whose fn threw still counts as completed — Run() must never
    // wait for work nobody will redo.
    ++ran;
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(size_t)>* job = nullptr;
    {
      MutexLock lock(&mutex_);
      // Explicit predicate loop (not a wait-with-lambda): the guarded reads
      // stay in this function, where the analysis can see the lock is held.
      while (!shutdown_ &&
             !(job_ != nullptr && generation_ != seen_generation)) {
        work_cv_.Wait(mutex_);
      }
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
    }
    const size_t ran = DrainChunks(seen_generation, job);
    if (ran > 0) {
      // Having claimed a chunk of this generation pins Run() in its wait
      // until we report, so num_chunks_ still belongs to this job here.
      MutexLock lock(&mutex_);
      completed_ += ran;
      if (completed_ == num_chunks_.load(std::memory_order_relaxed)) {
        done_cv_.NotifyAll();
      }
    }
  }
}

void ThreadPool::Run(size_t num_chunks, const std::function<void(size_t)>& fn) {
  if (num_chunks == 0) return;
  // A chunk count overflowing the ticket's 32-bit chunk field (64G+ elements
  // at the default grain) would corrupt the generation tag; run it inline.
  if (workers_.empty() || num_chunks == 1 || num_chunks > kTicketChunkMask) {
    for (size_t c = 0; c < num_chunks; ++c) fn(c);
    return;
  }
  uint64_t generation;
  {
    MutexLock lock(&mutex_);
    job_ = &fn;
    num_chunks_.store(num_chunks, std::memory_order_relaxed);
    completed_ = 0;
    // The pool's own job-generation tag, unrelated to the inference engine's
    // invalidation counter of the same name.
    generation = ++generation_;  // NOLINT(docs-lint)
    // Publishing the new generation tag atomically invalidates any claim a
    // straggler from the previous job might still attempt (see DrainChunks).
    ticket_.store(generation << kTicketGenShift, std::memory_order_release);
  }
  work_cv_.NotifyAll();
  const size_t ran = DrainChunks(generation, &fn);
  std::exception_ptr error;
  {
    MutexLock lock(&mutex_);
    completed_ += ran;
    while (completed_ != num_chunks) done_cv_.Wait(mutex_);
    // Every chunk is accounted for. Workers that claimed chunks have left fn
    // (completion is only reported after fn returned or threw); workers that
    // claimed none are fenced off fn by the generation tag. Safe to drop the
    // job and let the caller's fn die.
    job_ = nullptr;
    num_chunks_.store(0, std::memory_order_relaxed);
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace docs
