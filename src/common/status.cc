#include "common/status.h"

namespace docs {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::optional<StatusCode> StatusCodeFromString(std::string_view name) {
  static constexpr StatusCode kAll[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kAlreadyExists,
      StatusCode::kFailedPrecondition, StatusCode::kOutOfRange,
      StatusCode::kInternal,     StatusCode::kIoError,
      StatusCode::kDataLoss,     StatusCode::kUnavailable,
  };
  for (StatusCode code : kAll) {
    if (name == StatusCodeToString(code)) return code;
  }
  return std::nullopt;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status OkStatus() { return Status(); }
Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status IoError(std::string message) {
  return Status(StatusCode::kIoError, std::move(message));
}
Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}

}  // namespace docs
