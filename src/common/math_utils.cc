#include "common/math_utils.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace docs {

double Entropy(const std::vector<double>& p) {
  double h = 0.0;
  for (double x : p) {
    // x > 0 is false for NaN too, so without this a poisoned distribution
    // would silently report a clean (and bogus) entropy.
    if (std::isnan(x)) return x;
    if (x > 0.0) h -= x * std::log(x);
  }
  return h;
}

double KlDivergence(const std::vector<double>& p, const std::vector<double>& q) {
  DOCS_CHECK_EQ(p.size(), q.size()) << "KL divergence over mismatched supports";
  double d = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] <= 0.0) continue;
    if (q[i] <= 0.0) return std::numeric_limits<double>::infinity();
    d += p[i] * std::log(p[i] / q[i]);
  }
  return d;
}

double NormalizeInPlace(std::vector<double>& v) {
  double total = 0.0;
  for (double x : v) total += x;
  if (total <= 0.0) {
    const double u = v.empty() ? 0.0 : 1.0 / static_cast<double>(v.size());
    for (auto& x : v) x = u;
    return total;
  }
  for (auto& x : v) x /= total;
  return total;
}

size_t ArgMax(const std::vector<double>& v) {
  DOCS_CHECK(!v.empty()) << "ArgMax of an empty vector has no answer";
  return static_cast<size_t>(
      std::distance(v.begin(), std::max_element(v.begin(), v.end())));
}

double LogSumExp(const std::vector<double>& x) {
  if (x.empty()) return -std::numeric_limits<double>::infinity();
  double mx = *std::max_element(x.begin(), x.end());
  if (!std::isfinite(mx)) return mx;
  double acc = 0.0;
  for (double v : x) acc += std::exp(v - mx);
  return mx + std::log(acc);
}

double L1Distance(const std::vector<double>& a, const std::vector<double>& b) {
  DOCS_CHECK_EQ(a.size(), b.size()) << "L1 distance over mismatched supports";
  double d = 0.0;
  for (size_t i = 0; i < a.size(); ++i) d += std::fabs(a[i] - b[i]);
  return d;
}

double Sum(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

std::vector<double> UniformDistribution(size_t n) {
  return std::vector<double>(n, n == 0 ? 0.0 : 1.0 / static_cast<double>(n));
}

bool IsDistribution(const std::vector<double>& v, double tol) {
  double total = 0.0;
  for (double x : v) {
    if (x < -tol || x > 1.0 + tol) return false;
    total += x;
  }
  return std::fabs(total - 1.0) <= tol;
}

}  // namespace docs
