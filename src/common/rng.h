#ifndef DOCS_COMMON_RNG_H_
#define DOCS_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace docs {

/// Deterministic pseudo-random number generator used everywhere randomness is
/// needed (simulated workers, synthetic datasets, Gibbs samplers, benchmark
/// workloads). A fixed seed reproduces an entire experiment bit-for-bit.
///
/// The engine is xoshiro256**, seeded through SplitMix64 so that small seeds
/// (0, 1, 2, ...) still produce well-mixed streams.
class Rng {
 public:
  /// Creates a generator from `seed`; equal seeds produce equal streams.
  explicit Rng(uint64_t seed);

  /// Returns the next raw 64-bit value.
  uint64_t NextUint64();

  /// Returns a uniform integer in [0, bound). `bound` must be > 0.
  uint64_t UniformInt(uint64_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int UniformIntRange(int lo, int hi);

  /// Returns a uniform double in [0, 1).
  double UniformDouble();

  /// Returns a uniform double in [lo, hi).
  double UniformDoubleRange(double lo, double hi);

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Returns a standard normal variate (Box-Muller, stateless per call pair).
  double Gaussian(double mean, double stddev);

  /// Samples an index from an unnormalized non-negative weight vector.
  /// Returns weights.size() - 1 if rounding runs off the end; a zero-sum
  /// weight vector yields a uniform draw.
  size_t SampleDiscrete(const std::vector<double>& weights);

  /// Samples from Beta(alpha, beta) via the ratio of Gamma variates.
  double Beta(double alpha, double beta);

  /// Samples from Gamma(shape, 1) using the Marsaglia-Tsang method.
  double Gamma(double shape);

  /// Returns a random probability vector of length `n` ~ Dirichlet(alpha * 1).
  std::vector<double> Dirichlet(size_t n, double alpha);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Forks a statistically independent child generator; advances this
  /// generator's state.
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace docs

#endif  // DOCS_COMMON_RNG_H_
