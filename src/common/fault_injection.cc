#include "common/fault_injection.h"

namespace docs {
namespace {

// SplitMix64: one multiply-xor-shift step per draw. The injector needs only
// a few bits of well-mixed randomness per probabilistic evaluation and must
// not share state with the experiment RNGs (arming a fault must not perturb
// simulated workers), so it keeps its own tiny stream.
uint64_t NextSplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double NextUniform(uint64_t& state) {
  return static_cast<double>(NextSplitMix64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(const std::string& point, const FaultSpec& spec) {
  MutexLock lock(&mutex_);
  PointState& state = points_[point];
  if (!state.live) armed_points_.fetch_add(1, std::memory_order_relaxed);
  state.spec = spec;
  state.live = true;
  state.hits = 0;
  state.fires = 0;
}

void FaultInjector::ArmProbabilistic(const std::string& point,
                                     double probability) {
  FaultSpec spec;
  spec.trigger = FaultSpec::Trigger::kProbabilistic;
  spec.probability = probability;
  Arm(point, spec);
}

void FaultInjector::ArmEveryNth(const std::string& point, size_t nth) {
  FaultSpec spec;
  spec.trigger = FaultSpec::Trigger::kEveryNth;
  spec.nth = nth > 0 ? nth : 1;
  Arm(point, spec);
}

void FaultInjector::ArmOneShot(const std::string& point, size_t skip) {
  FaultSpec spec;
  spec.trigger = FaultSpec::Trigger::kOneShot;
  spec.skip = skip;
  Arm(point, spec);
}

void FaultInjector::Disarm(const std::string& point) {
  MutexLock lock(&mutex_);
  auto it = points_.find(point);
  if (it == points_.end() || !it->second.live) return;
  it->second.live = false;
  armed_points_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultInjector::DisarmAll() {
  MutexLock lock(&mutex_);
  points_.clear();
  armed_points_.store(0, std::memory_order_relaxed);
  total_fires_.store(0);
}

void FaultInjector::SeedRng(uint64_t seed) {
  MutexLock lock(&mutex_);
  rng_state_ = seed;
}

bool FaultInjector::ShouldFail(const std::string& point) {
  MutexLock lock(&mutex_);
  auto it = points_.find(point);
  if (it == points_.end() || !it->second.live) return false;
  PointState& state = it->second;
  ++state.hits;
  bool fire = false;
  switch (state.spec.trigger) {
    case FaultSpec::Trigger::kProbabilistic:
      fire = NextUniform(rng_state_) < state.spec.probability;
      break;
    case FaultSpec::Trigger::kEveryNth:
      fire = state.hits % state.spec.nth == 0;
      break;
    case FaultSpec::Trigger::kOneShot:
      if (state.hits == state.spec.skip + 1) {
        fire = true;
        // The shot is spent: disarm so later evaluations are free again.
        state.live = false;
        armed_points_.fetch_sub(1, std::memory_order_relaxed);
      }
      break;
  }
  if (fire) {
    ++state.fires;
    total_fires_.fetch_add(1);
  }
  return fire;
}

size_t FaultInjector::hits(const std::string& point) const {
  MutexLock lock(&mutex_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

size_t FaultInjector::fires(const std::string& point) const {
  MutexLock lock(&mutex_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires;
}

}  // namespace docs
