#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace docs {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

void TablePrinter::Print(std::ostream& os) const {
  size_t ncols = headers_.size();
  for (const auto& row : rows_) ncols = std::max(ncols, row.size());
  std::vector<size_t> widths(ncols, 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < ncols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << "| " << cell << std::string(widths[c] - cell.size() + 1, ' ');
    }
    os << "|\n";
  };
  print_row(headers_);
  for (size_t c = 0; c < ncols; ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace docs
