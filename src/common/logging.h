#ifndef DOCS_COMMON_LOGGING_H_
#define DOCS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace docs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log line; emits to stderr on destruction if `level` passes
/// the global threshold. Used via the DOCS_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace docs

#define DOCS_LOG(level)                                                  \
  ::docs::internal_logging::LogMessage(::docs::LogLevel::k##level,       \
                                       __FILE__, __LINE__)               \
      .stream()

#endif  // DOCS_COMMON_LOGGING_H_
