#ifndef DOCS_COMMON_STATUS_H_
#define DOCS_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace docs {

/// Error space used across the library. Exceptions are not used; fallible
/// operations return Status (or StatusOr<T>) instead.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kIoError,
  kDataLoss,
  /// The service is temporarily unable to take the request (overload
  /// shedding, draining shutdown). Retryable, unlike the other codes.
  kUnavailable,
};

/// Returns a stable human-readable name for `code` ("OK", "INVALID_ARGUMENT",
/// ...).
const char* StatusCodeToString(StatusCode code);

/// Inverse of StatusCodeToString; nullopt for an unknown name. Used where a
/// code is persisted by name (the answer WAL's dedup records) so a reordered
/// enum cannot silently change on-disk meaning.
std::optional<StatusCode> StatusCodeFromString(std::string_view name);

/// A lightweight absl::Status-like value describing the outcome of an
/// operation: either OK, or an error code plus message.
///
/// [[nodiscard]] at class level: any call site that receives a Status by
/// value and drops it on the floor is a swallowed error and fails the build
/// under -Werror. Handle it or propagate it — never cast it to void.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with `code` and `message`. An empty message is
  /// allowed; `code` may be kOk, in which case the message is dropped.
  Status(StatusCode code, std::string message)
      : code_(code), message_(code == StatusCode::kOk ? "" : std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// Renders "OK" or "CODE: message" for logs and test failures.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Convenience factories mirroring absl's.
Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status InternalError(std::string message);
Status IoError(std::string message);
Status DataLossError(std::string message);
Status UnavailableError(std::string message);

/// Either a value of type T or an error Status. Callers must check ok()
/// before dereferencing. [[nodiscard]] for the same reason as Status: a
/// discarded StatusOr silently loses both the value and the error.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit construction from a value (mirrors absl::StatusOr).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status. Constructing from an OK
  /// status yields an internal error, since that would carry no value.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = InternalError("StatusOr constructed from OK status");
    }
  }

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace docs

#endif  // DOCS_COMMON_STATUS_H_
