#ifndef DOCS_COMMON_STOPWATCH_H_
#define DOCS_COMMON_STOPWATCH_H_

#include <chrono>

namespace docs {

/// Wall-clock stopwatch used by the experiment harnesses to report execution
/// times in the same units as the paper's figures.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement window.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace docs

#endif  // DOCS_COMMON_STOPWATCH_H_
