#ifndef DOCS_COMMON_SYNC_H_
#define DOCS_COMMON_SYNC_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace docs {

/// Annotated synchronization primitives (DESIGN.md §14).
///
/// Thin, zero-overhead wrappers over the std primitives that carry the Clang
/// Thread Safety Analysis capability attributes from
/// common/thread_annotations.h. All locking in this repository goes through
/// these types — scripts/lint.py rejects raw std::mutex / std::shared_mutex /
/// std::lock_guard / std::unique_lock / std::condition_variable anywhere
/// outside this file — so every GUARDED_BY / REQUIRES contract in the
/// serving core is machine-checked whenever the tree is built with
/// -DDOCS_THREAD_SAFETY=ON under clang.
///
/// Naming follows the capability model rather than the std API (Lock, not
/// lock) so a call site reads as what the analysis sees.

/// Tag selecting the non-blocking MutexLock constructor.
struct TryToLockT {
  explicit TryToLockT() = default;
};
inline constexpr TryToLockT kTryToLock{};

/// Exclusive mutex. Non-recursive, non-movable (a capability is an identity:
/// annotations name the object, so it cannot change address).
class DOCS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DOCS_ACQUIRE() { mu_.lock(); }
  void Unlock() DOCS_RELEASE() { mu_.unlock(); }
  /// True => the caller now holds the mutex. The analysis tracks a branch on
  /// the result: `if (mu.TryLock()) { ...guarded access...; mu.Unlock(); }`.
  bool TryLock() DOCS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Declares (to the analysis only — no runtime effect) that the calling
  /// thread already holds this mutex through some path the analysis cannot
  /// see. Use sparingly; prefer DOCS_REQUIRES on the function.
  void AssertHeld() const DOCS_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Reader/writer mutex: exclusive for mutators, shared for concurrent
/// readers (the facade's state lock).
class DOCS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() DOCS_ACQUIRE() { mu_.lock(); }
  void Unlock() DOCS_RELEASE() { mu_.unlock(); }
  bool TryLock() DOCS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void LockShared() DOCS_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() DOCS_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() DOCS_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

  void AssertHeld() const DOCS_ASSERT_CAPABILITY(this) {}
  void AssertReaderHeld() const DOCS_ASSERT_SHARED_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over a Mutex (std::lock_guard replacement). The
/// kTryToLock overload never blocks; check owns_lock() before touching
/// guarded state (the analysis checks the branch).
class DOCS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) DOCS_ACQUIRE(mu) : mu_(mu), owned_(true) {
    mu_->Lock();
  }
  MutexLock(Mutex* mu, TryToLockT) DOCS_TRY_ACQUIRE(true, mu)
      : mu_(mu), owned_(mu->TryLock()) {}
  ~MutexLock() DOCS_RELEASE() {
    if (owned_) mu_->Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  bool owns_lock() const { return owned_; }

 private:
  Mutex* mu_;
  bool owned_;
};

/// RAII exclusive lock over a SharedMutex (the facade's mutator paths).
class DOCS_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex* mu) DOCS_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterLock() DOCS_RELEASE() { mu_->Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// RAII shared lock over a SharedMutex (the facade's sharded serve path).
class DOCS_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex* mu) DOCS_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderLock() DOCS_RELEASE_GENERIC() { mu_->UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// Condition variable bound to docs::Mutex. Wait() requires the mutex held
/// and reacquires it before returning, exactly like std::condition_variable
/// — but the REQUIRES annotation makes the analysis enforce it, and forces
/// wait predicates into explicit `while (!pred) cv.Wait(mu);` loops in the
/// annotated caller where the guarded reads are visible to the analysis
/// (predicate lambdas are analyzed as separate, lock-free functions and
/// would defeat the check).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires `mu` before returning.
  /// Spurious wakeups happen; always re-check the predicate in a loop.
  void Wait(Mutex& mu) DOCS_REQUIRES(mu) {
    std::unique_lock<std::mutex> reacquire(mu.mu_, std::adopt_lock);
    cv_.wait(reacquire);
    // The caller's scope (MutexLock or explicit Lock) still owns the mutex;
    // release() keeps the RAII adapter from double-unlocking it.
    reacquire.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace docs

#endif  // DOCS_COMMON_SYNC_H_
