#include "common/logging.h"

#include <atomic>
#include <cstdio>

#include "common/sync.h"

namespace docs {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

/// Serializes emission so concurrent threads (the gateway event loop, worker
/// threads, checkpoint savers) cannot interleave partial lines on stderr.
Mutex& EmitMutex() {
  static Mutex* mutex = new Mutex;
  return *mutex;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < g_level.load(std::memory_order_relaxed)) return;
  // Assemble the whole line first, then emit it with a single fwrite under
  // the mutex: a multi-threaded server must never interleave two half-lines.
  stream_ << '\n';
  const std::string line = stream_.str();
  MutexLock lock(&EmitMutex());
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

}  // namespace internal_logging
}  // namespace docs
