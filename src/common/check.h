#ifndef DOCS_COMMON_CHECK_H_
#define DOCS_COMMON_CHECK_H_

#include <memory>
#include <span>
#include <sstream>
#include <string>

namespace docs {

class Matrix;

/// Contract-checking layer (see DESIGN.md §9).
///
/// `DOCS_CHECK(cond) << "context";` aborts with the expression text, the
/// streamed context and file:line when `cond` is false. The comparison forms
/// `DOCS_CHECK_{EQ,NE,LT,LE,GT,GE}(a, b)` additionally print both operand
/// values. `DOCS_DCHECK*` are the same contracts compiled out (operands not
/// evaluated) unless the build defines DOCS_DEBUG_CHECKS=1
/// (-DDOCS_DEBUG_CHECKS=ON in CMake) — use them on hot paths where the check
/// itself would be measurable.
///
/// Policy: CHECK states a *programming-error* invariant (caller contract,
/// algebraic postcondition); violations are bugs and must not limp onward.
/// Recoverable, input-dependent failures (user answers, files, records)
/// return Status instead — never CHECK on data a caller cannot statically
/// guarantee.

namespace internal_check {

/// Invoked with the fully composed failure message ("CHECK failed at
/// file:line: ..."). The default handler writes the message to stderr and
/// calls std::abort() — which is what gtest death tests intercept. A test
/// may install a throwing handler to examine messages in-process; the
/// handler must not return (if it does, the layer aborts anyway).
using CheckFailureHandler = void (*)(const std::string& message);

/// Installs `handler` (nullptr restores the default) and returns the
/// previously installed one. Not thread-safe; intended for test setup.
CheckFailureHandler SetCheckFailureHandler(CheckFailureHandler handler);

/// Composes the final message and dispatches to the installed handler.
[[noreturn]] void FailCheck(const char* file, int line,
                            const std::string& message);

/// Streaming collector for one failed check. The destructor fires the
/// failure, so `DOCS_CHECK(x) << "ctx"` gathers everything streamed into the
/// message first. noexcept(false): a test-installed handler may throw.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* description);
  CheckMessage(const char* file, int line, const std::string& description);
  ~CheckMessage() noexcept(false);

  CheckMessage(const CheckMessage&) = delete;
  CheckMessage& operator=(const CheckMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Swallows the stream expression so a check usable as a statement has type
/// void (the glog idiom; binds looser than << and tighter than ?:).
struct Voidify {
  void operator&(std::ostream&) {}
};

/// Stream precision used for operand values in failure messages: enough to
/// tell 1.000001 from 1.0 without the full 17-digit round-trip noise.
inline constexpr int kCheckMessagePrecision = 12;

/// Renders "expr_text (a vs. b)" for a failed comparison.
template <typename A, typename B>
std::string MakeCheckOpString(const A& a, const B& b, const char* expr_text) {
  std::ostringstream oss;
  oss.precision(kCheckMessagePrecision);
  oss << expr_text << " (" << a << " vs. " << b << ")";
  return oss.str();
}

/// One comparison check: returns nullptr on success, the failure description
/// otherwise. Operands are evaluated exactly once by the macro below.
#define DOCS_INTERNAL_DEFINE_CHECK_OP(name, op)                             \
  template <typename A, typename B>                                        \
  std::unique_ptr<std::string> name(const A& a, const B& b,                 \
                                    const char* expr_text) {                \
    if (a op b) return nullptr; /* NOLINT */                                \
    return std::make_unique<std::string>(                                   \
        MakeCheckOpString(a, b, expr_text));                                \
  }
DOCS_INTERNAL_DEFINE_CHECK_OP(CheckOpEq, ==)
DOCS_INTERNAL_DEFINE_CHECK_OP(CheckOpNe, !=)
DOCS_INTERNAL_DEFINE_CHECK_OP(CheckOpLt, <)
DOCS_INTERNAL_DEFINE_CHECK_OP(CheckOpLe, <=)
DOCS_INTERNAL_DEFINE_CHECK_OP(CheckOpGt, >)
DOCS_INTERNAL_DEFINE_CHECK_OP(CheckOpGe, >=)
#undef DOCS_INTERNAL_DEFINE_CHECK_OP

}  // namespace internal_check

// --- Always-on contracts ---------------------------------------------------

#define DOCS_CHECK(cond)                                                    \
  (cond) ? (void)0                                                          \
         : ::docs::internal_check::Voidify() &                              \
               ::docs::internal_check::CheckMessage(                        \
                   __FILE__, __LINE__, "DOCS_CHECK(" #cond ") failed")      \
                   .stream()

// `while` instead of `if` so a dangling `else` cannot bind to the macro; the
// body runs at most once (CheckMessage's destructor never returns normally).
#define DOCS_INTERNAL_CHECK_OP(fn, op, a, b)                                \
  while (auto docs_internal_result = ::docs::internal_check::fn(            \
             (a), (b), "DOCS_CHECK failed: " #a " " #op " " #b))            \
  ::docs::internal_check::Voidify() &                                       \
      ::docs::internal_check::CheckMessage(__FILE__, __LINE__,              \
                                           *docs_internal_result)           \
          .stream()

#define DOCS_CHECK_EQ(a, b) DOCS_INTERNAL_CHECK_OP(CheckOpEq, ==, a, b)
#define DOCS_CHECK_NE(a, b) DOCS_INTERNAL_CHECK_OP(CheckOpNe, !=, a, b)
#define DOCS_CHECK_LT(a, b) DOCS_INTERNAL_CHECK_OP(CheckOpLt, <, a, b)
#define DOCS_CHECK_LE(a, b) DOCS_INTERNAL_CHECK_OP(CheckOpLe, <=, a, b)
#define DOCS_CHECK_GT(a, b) DOCS_INTERNAL_CHECK_OP(CheckOpGt, >, a, b)
#define DOCS_CHECK_GE(a, b) DOCS_INTERNAL_CHECK_OP(CheckOpGe, >=, a, b)

// --- Debug-only contracts --------------------------------------------------
// Compiled out (operands unevaluated, but still type-checked) unless the
// build sets DOCS_DEBUG_CHECKS=1.

#ifndef DOCS_DEBUG_CHECKS
#define DOCS_DEBUG_CHECKS 0
#endif

#if DOCS_DEBUG_CHECKS
#define DOCS_DCHECK(cond) DOCS_CHECK(cond)
#define DOCS_DCHECK_EQ(a, b) DOCS_CHECK_EQ(a, b)
#define DOCS_DCHECK_NE(a, b) DOCS_CHECK_NE(a, b)
#define DOCS_DCHECK_LT(a, b) DOCS_CHECK_LT(a, b)
#define DOCS_DCHECK_LE(a, b) DOCS_CHECK_LE(a, b)
#define DOCS_DCHECK_GT(a, b) DOCS_CHECK_GT(a, b)
#define DOCS_DCHECK_GE(a, b) DOCS_CHECK_GE(a, b)
#else
#define DOCS_DCHECK(cond) \
  while (false) DOCS_CHECK(cond)
#define DOCS_DCHECK_EQ(a, b) \
  while (false) DOCS_CHECK_EQ(a, b)
#define DOCS_DCHECK_NE(a, b) \
  while (false) DOCS_CHECK_NE(a, b)
#define DOCS_DCHECK_LT(a, b) \
  while (false) DOCS_CHECK_LT(a, b)
#define DOCS_DCHECK_LE(a, b) \
  while (false) DOCS_CHECK_LE(a, b)
#define DOCS_DCHECK_GT(a, b) \
  while (false) DOCS_CHECK_GT(a, b)
#define DOCS_DCHECK_GE(a, b) \
  while (false) DOCS_CHECK_GE(a, b)
#endif  // DOCS_DEBUG_CHECKS

// --- Domain validators -----------------------------------------------------
// The numeric invariants the paper states (Eq. 1-3: probability simplices,
// Eq. 5: qualities in [0,1]) as callable contracts. Each aborts through the
// check layer with `what`, the offending index/value and file context baked
// into the message. All are O(n) scans — CHECK-grade at API boundaries,
// wrapped in DOCS_DCHECK-style call sites via DebugCheck* on per-answer hot
// paths.

/// Fails unless `v` is a probability simplex within `tol`: non-empty, every
/// entry finite and in [-tol, 1 + tol], and |sum - 1| <= tol.
void CheckSimplex(std::span<const double> v, double tol = 1e-6,
                  const char* what = "distribution");

/// Fails unless `x` is finite and within [-tol, 1 + tol].
void CheckUnitInterval(double x, double tol = 0.0,
                       const char* what = "value");

/// Fails unless every entry of `v` is finite and within [-tol, 1 + tol].
void CheckUnitInterval(std::span<const double> v, double tol = 0.0,
                       const char* what = "values");

/// Fails if `x` is NaN or infinite.
void CheckFinite(double x, const char* what = "value");

/// Fails on the first NaN/Inf entry of `v`.
void CheckFinite(std::span<const double> v, const char* what = "values");

/// Fails on the first NaN/Inf cell of `m`, reporting its (row, col).
void CheckFinite(const Matrix& m, const char* what = "matrix");

// Debug-only variants of the validators: the scan itself is compiled out
// unless DOCS_DEBUG_CHECKS=1 (an O(n) pass per call is measurable inside the
// EM loop edges and per-answer paths).
#if DOCS_DEBUG_CHECKS
#define DOCS_DCHECK_SIMPLEX(v, tol, what) ::docs::CheckSimplex((v), (tol), (what))
#define DOCS_DCHECK_UNIT_INTERVAL(v, tol, what) \
  ::docs::CheckUnitInterval((v), (tol), (what))
#define DOCS_DCHECK_FINITE(v, what) ::docs::CheckFinite((v), (what))
#else
#define DOCS_DCHECK_SIMPLEX(v, tol, what) (void)0
#define DOCS_DCHECK_UNIT_INTERVAL(v, tol, what) (void)0
#define DOCS_DCHECK_FINITE(v, what) (void)0
#endif  // DOCS_DEBUG_CHECKS

}  // namespace docs

#endif  // DOCS_COMMON_CHECK_H_
