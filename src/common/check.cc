#include "common/check.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/matrix.h"

namespace docs {
namespace internal_check {
namespace {

CheckFailureHandler g_handler = nullptr;

}  // namespace

CheckFailureHandler SetCheckFailureHandler(CheckFailureHandler handler) {
  CheckFailureHandler previous = g_handler;
  g_handler = handler;
  return previous;
}

void FailCheck(const char* file, int line, const std::string& message) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::ostringstream oss;
  oss << "[CHECK " << base << ":" << line << "] " << message;
  const std::string composed = oss.str();
  if (g_handler != nullptr) {
    g_handler(composed);
    // A conforming handler never returns (it throws or exits). If a broken
    // one does return, falling through to abort keeps [[noreturn]] honest.
  }
  std::fprintf(stderr, "%s\n", composed.c_str());
  std::fflush(stderr);
  std::abort();
}

CheckMessage::CheckMessage(const char* file, int line, const char* description)
    : file_(file), line_(line) {
  stream_.precision(kCheckMessagePrecision);
  stream_ << description;
}

CheckMessage::CheckMessage(const char* file, int line,
                           const std::string& description)
    : file_(file), line_(line) {
  stream_.precision(kCheckMessagePrecision);
  stream_ << description;
}

CheckMessage::~CheckMessage() noexcept(false) {
  FailCheck(file_, line_, stream_.str());
}

}  // namespace internal_check

void CheckSimplex(std::span<const double> v, double tol, const char* what) {
  if (v.empty()) {
    internal_check::CheckMessage(__FILE__, __LINE__, "CheckSimplex failed")
            .stream()
        << ": " << what << " is empty (a distribution needs >= 1 entry)";
  }
  double sum = 0.0;
  for (size_t i = 0; i < v.size(); ++i) {
    const double x = v[i];
    if (!std::isfinite(x)) {
      internal_check::CheckMessage(__FILE__, __LINE__, "CheckSimplex failed")
              .stream()
          << ": " << what << "[" << i << "] = " << x << " is not finite";
    }
    if (x < -tol || x > 1.0 + tol) {
      internal_check::CheckMessage(__FILE__, __LINE__, "CheckSimplex failed")
              .stream()
          << ": " << what << "[" << i << "] = " << x << " outside [-" << tol
          << ", 1 + " << tol << "]";
    }
    sum += x;
  }
  if (std::fabs(sum - 1.0) > tol) {
    internal_check::CheckMessage(__FILE__, __LINE__, "CheckSimplex failed")
            .stream()
        << ": " << what << " sums to " << sum << ", expected 1 within "
        << tol;
  }
}

void CheckUnitInterval(double x, double tol, const char* what) {
  if (!std::isfinite(x) || x < -tol || x > 1.0 + tol) {
    internal_check::CheckMessage(__FILE__, __LINE__,
                                 "CheckUnitInterval failed")
            .stream()
        << ": " << what << " = " << x << " outside [0, 1] (tol " << tol
        << ")";
  }
}

void CheckUnitInterval(std::span<const double> v, double tol,
                       const char* what) {
  for (size_t i = 0; i < v.size(); ++i) {
    const double x = v[i];
    if (!std::isfinite(x) || x < -tol || x > 1.0 + tol) {
      internal_check::CheckMessage(__FILE__, __LINE__,
                                   "CheckUnitInterval failed")
              .stream()
          << ": " << what << "[" << i << "] = " << x << " outside [0, 1] "
          << "(tol " << tol << ")";
    }
  }
}

void CheckFinite(double x, const char* what) {
  if (!std::isfinite(x)) {
    internal_check::CheckMessage(__FILE__, __LINE__, "CheckFinite failed")
            .stream()
        << ": " << what << " = " << x;
  }
}

void CheckFinite(std::span<const double> v, const char* what) {
  for (size_t i = 0; i < v.size(); ++i) {
    if (!std::isfinite(v[i])) {
      internal_check::CheckMessage(__FILE__, __LINE__, "CheckFinite failed")
              .stream()
          << ": " << what << "[" << i << "] = " << v[i];
    }
  }
}

void CheckFinite(const Matrix& m, const char* what) {
  for (size_t r = 0; r < m.rows(); ++r) {
    for (size_t c = 0; c < m.cols(); ++c) {
      if (!std::isfinite(m(r, c))) {
        internal_check::CheckMessage(__FILE__, __LINE__, "CheckFinite failed")
                .stream()
            << ": " << what << "(" << r << ", " << c << ") = " << m(r, c);
      }
    }
  }
}

}  // namespace docs
